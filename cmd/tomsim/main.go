// Command tomsim runs one workload under one system configuration and
// prints the measured statistics.
//
//	tomsim -workload LIB -config ctrl-tmap -scale 1.0
//	tomsim -workload LIB -policy coda                 # override the offload policy
//	tomsim -workload LIB -cache                       # replay from .tomcache/
//	tomsim -workload LIB -trace out.jsonl -metrics out.json
//	tomsim -workload LIB -trace out.trace -trace-format binary
//	tomsim -workload LIB -trace out.jsonl -trace-sample 64
//	tomsim -workload LIB -adapt                       # profile -> refine -> rerun
//	tomsim -workload LIB -adapt-iterate 3             # iterate to a fixed point
//	tomsim -workload LIB -cache -mapping-store        # install a stored data mapping
//	tomsim -list
//
// -trace streams the offload lifecycle (candidate → gate/send → spawn →
// ack → finish); -trace-format selects JSON lines (the default) or the
// compact binary encoding — decode, filter, or convert the latter with
// cmd/tomtrace. -trace-sample N keeps one event in N per kind, bounding
// trace volume on full-scale runs (the trace then ends with per-kind
// trace_sampled summaries of what was thinned). -metrics writes the
// end-of-run registry snapshot — per-interval off-chip traffic, per-stack
// pending-offload occupancy, link utilization, and queue depths. See
// docs/OBSERVABILITY.md for all three schemas. -cache persists and replays
// plain (unobserved) runs under -cache-dir; observed runs always execute,
// since only an execution can produce time series.
//
// -adapt runs the adaptive session: a reduced-scale profiling pass records
// each candidate's per-PC gate decisions, the compiler demotes candidates
// the runtime (almost) always gated and re-tags the bandwidth hint from
// observed trip counts, and the full run executes with the refined set.
// Adaptive runs cache under their own spec digest. -adapt is incompatible
// with -trace/-metrics (observe the static run instead).
//
// -adapt-iterate N iterates the loop to a fixed point: each pass profiles
// with the refinement accumulated so far, and the loop stops when the
// demoted/re-tagged candidate sets stabilize or after N passes. With
// -cache, the converged refinement persists under -cache-dir/feedback/ and
// a later invocation installs it without profiling.
//
// -mapping-store consults the persistent mapping registry under
// -cache-dir/mappings/ (see docs/RUNCACHE.md): a transparent-mapping run
// whose (workload, data-structure identity, configuration family) key has a
// stored record installs the learned bit before cycle 0 — no learning
// phase, no PCIe detour, only the one-time copy — and reports the avoided
// traffic. Fresh learning runs under -cache always seed the registry,
// whether or not -mapping-store is set.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	tom "repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/offload"
	"repro/internal/sim"
)

func main() {
	workload := flag.String("workload", "LIB", "workload abbreviation (see -list)")
	config := flag.String("config", string(tom.TOM), "system configuration name")
	policy := flag.String("policy", "", "offload-policy override: "+
		strings.Join(offload.Names(), ", ")+" (\"\" = the configuration's own)")
	scale := flag.Float64("scale", 1.0, "problem-size scale factor")
	compare := flag.Bool("compare", true, "also run the baseline and report speedup")
	list := flag.Bool("list", false, "list workloads and configurations")
	tracePath := flag.String("trace", "", "write offload-lifecycle events to this file")
	traceFormat := flag.String("trace-format", "jsonl", "trace encoding: jsonl or binary")
	traceSample := flag.Int("trace-sample", 1, "keep one trace event in N per event kind (1 = keep all)")
	metricsPath := flag.String("metrics", "", "write the metrics snapshot to this JSON file")
	interval := flag.Int64("interval", 0, "metrics sampling interval in cycles (0 = default)")
	cache := flag.Bool("cache", false, "persist and replay verified results under -cache-dir")
	noCache := flag.Bool("no-cache", false, "force-disable the persistent result cache")
	cacheDir := flag.String("cache-dir", ".tomcache", "persistent result cache directory")
	adapt := flag.Bool("adapt", false, "profile gate decisions, refine candidate marking, rerun")
	adaptIterate := flag.Int("adapt-iterate", 0, "iterate profile->refine to a fixed point, bounded by N passes")
	mapStore := flag.Bool("mapping-store", false,
		"install the learned data mapping from the persistent registry when available (requires -cache)")
	flag.Parse()

	if *adaptIterate < 0 {
		fatal(fmt.Errorf("-adapt-iterate must be positive"))
	}
	if *mapStore {
		if !*cache || *noCache {
			fatal(fmt.Errorf("-mapping-store requires -cache (the registry lives under -cache-dir/mappings)"))
		}
		if *adapt || *adaptIterate > 0 {
			fatal(fmt.Errorf("-mapping-store is incompatible with -adapt"))
		}
	}
	if (*adapt || *adaptIterate > 0) && (*tracePath != "" || *metricsPath != "") {
		fatal(fmt.Errorf("-adapt is incompatible with -trace/-metrics"))
	}
	if *policy != "" && (*adapt || *adaptIterate > 0) {
		fatal(fmt.Errorf("-policy is incompatible with -adapt (the feedback loop profiles the configuration's own policy)"))
	}

	if *list {
		fmt.Println("workloads:")
		for _, w := range tom.Workloads() {
			fmt.Printf("  %-4s %s — %s\n", w.Abbr, w.Name, w.Desc)
		}
		fmt.Println("configurations:")
		for _, c := range core.AllConfigNames() {
			fmt.Printf("  %s\n", c)
		}
		fmt.Println("policies (-policy):")
		for _, n := range offload.Names() {
			p, err := offload.ByName(n)
			if err != nil {
				fatal(err)
			}
			if params := p.Params(); params != "" {
				fmt.Printf("  %s (%s)\n", n, params)
			} else {
				fmt.Printf("  %s\n", n)
			}
		}
		return
	}

	opts := tom.SessionOptions{Scale: *scale}
	if *cache && !*noCache {
		opts.CacheDir = *cacheDir
	}
	opts.Progress = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	s := tom.NewSession(opts)

	var observer *obs.Observer
	var traceFile *os.File
	if *tracePath != "" || *metricsPath != "" {
		observer = obs.New()
		observer.SampleEvery = *interval
		if *tracePath != "" {
			format, err := obs.ParseFormat(*traceFormat)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			traceFile = f
			sink := obs.NewSink(f, format)
			if *traceSample > 1 {
				observer.Trace = obs.NewSamplingSink(sink, *traceSample)
			} else {
				observer.Trace = sink
			}
		}
	}

	var res *tom.Result
	var adaptive *tom.AdaptiveRun
	if *adaptIterate > 0 {
		ad, err := s.RunAdaptiveIterated(*workload, core.ConfigName(*config),
			tom.AdaptOptions{Iterations: *adaptIterate})
		if err != nil {
			fatal(err)
		}
		adaptive = ad
		res = ad.Result
	} else if *adapt {
		ad, err := s.RunAdaptive(*workload, core.ConfigName(*config), tom.AdaptOptions{})
		if err != nil {
			fatal(err)
		}
		adaptive = ad
		res = ad.Result
	} else {
		spec, err := s.SpecWithPolicy(*workload, core.ConfigName(*config), *policy)
		if err != nil {
			fatal(err)
		}
		if *mapStore {
			spec, err = s.WithStoredMapping(spec)
			if err != nil {
				fatal(err)
			}
		}
		r, err := s.RunSpecObserved(spec, observer)
		if err != nil {
			fatal(err)
		}
		res = r
	}
	if traceFile != nil {
		// Flushing the chain also makes a sampling sink append its per-kind
		// trace_sampled summaries before the encoder drains.
		if err := obs.Flush(observer.Trace); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		if err := traceFile.Close(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		if ss, ok := observer.Trace.(*obs.SamplingSink); ok {
			fmt.Fprintf(os.Stderr, "trace: sampled 1/%d per kind, dropped %d events\n",
				*traceSample, ss.Dropped())
		}
	}
	if *metricsPath != "" {
		data, err := json.MarshalIndent(observer.Registry.Snapshot(), "", " ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*metricsPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	st := &res.Stats
	fmt.Printf("workload       %s\nconfig         %s\n", res.Abbr, res.Config)
	if *policy != "" {
		fmt.Printf("policy         %s (override)\n", *policy)
	}
	fmt.Printf("cycles         %d\nIPC            %.2f\n", st.Cycles, st.IPC())
	fmt.Printf("thread instrs  %d (%.1f%% on stack SMs)\n", st.ThreadInstrs, st.OffloadedInstrFraction()*100)
	fmt.Printf("off-chip bytes %d (RX %d, TX %d, mem-mem %d)\n",
		st.OffChipBytes(), st.GPURXBytes, st.GPUTXBytes, st.CrossBytes)
	fmt.Printf("offloads       %d sent, %d acked, %d skipped (busy %d / full %d / cond %d / alu %d / nodest %d / destbound %d / split %d / vaultfull %d)\n",
		st.OffloadsSent, st.OffloadsAcked, st.OffloadsSkipped(),
		st.OffloadsSkippedBusy, st.OffloadsSkippedFull, st.OffloadsSkippedCond,
		st.OffloadsSkippedALU, st.OffloadsSkippedNoDest,
		st.OffloadsSkippedDestBound, st.OffloadsSkippedSplit, st.OffloadsSkippedVaultFull)
	fmt.Printf("caches         L1 %.1f%%, L2 %.1f%%, stack L1 %.1f%%\n",
		hitPct(st.L1Hits, st.L1Misses), hitPct(st.L2Hits, st.L2Misses), hitPct(st.StackL1Hits, st.StackL1Misses))
	fmt.Printf("DRAM           %d activations, %.1f%% row hits\n",
		st.DRAMActivations, hitPct(st.DRAMRowHits, st.DRAMActivations))
	fmt.Printf("energy         %.3f mJ (SMs %.3f, links %.3f, DRAM %.3f)\n",
		res.Energy.Total()*1e3, res.Energy.SMs*1e3, res.Energy.Links*1e3, res.Energy.DRAM*1e3)
	if st.LearnCycles > 0 {
		fmt.Printf("tmap learning  bit %d from %d instances in %d cycles; %d bytes re-mapped\n",
			st.LearnedBit, st.LearnInstances, st.LearnCycles, st.CopiedBytes)
	}
	if st.MappingSource == sim.MappingStored {
		fmt.Printf("tmap stored    bit %d installed from the registry (%d ranges); %d bytes copied, %d PCIe bytes saved\n",
			st.LearnedBit, len(st.MappedRanges), st.CopiedBytes, st.LearnPCIeSaved)
	}
	if adaptive != nil {
		// Report from the merged table, which exists whether the feedback
		// was profiled this process or restored from the persisted store.
		src := "profiled"
		if adaptive.FromStore {
			src = "from feedback store"
		}
		fmt.Printf("adaptive       %s (%d iterations); refined: %d demoted, %d re-tagged\n",
			src, adaptive.Iterations, st.RefineDemoted, st.RefineRetagged)
		for _, it := range adaptive.History {
			fmt.Printf("               iter %d: %d decisions, demoted %d, re-tagged %d\n",
				it.Iteration, it.Decisions, len(it.Demoted), len(it.Retagged))
		}
		if adaptive.Iterations > 1 || adaptive.Converged {
			outcome := "iteration bound hit before a fixed point"
			if adaptive.Converged {
				outcome = fmt.Sprintf("converged at iteration %d", adaptive.ConvergedAt)
			}
			fmt.Printf("               %s\n", outcome)
		}
		for _, pc := range adaptive.Feedback.PCs() {
			g := adaptive.Feedback[pc]
			if g.Decisions() == 0 {
				continue
			}
			fmt.Printf("               pc %-5d gated %5.1f%% (%d/%d decisions, mean trips %.0f)\n",
				pc, g.GateRate()*100, g.Gated(), g.Decisions(), g.MeanTrips())
		}
	}
	if *compare && res.Config != tom.Baseline {
		base, err := s.Run(*workload, tom.Baseline)
		if err != nil {
			fatal(fmt.Errorf("baseline: %w", err))
		}
		fmt.Printf("speedup        %.3fx over baseline (%d cycles)\n",
			st.IPC()/base.Stats.IPC(), base.Stats.Cycles)
	}
	if dir := s.CacheDir(); dir != "" {
		cs := s.CacheStats()
		fmt.Fprintf(os.Stderr, "cache: dir=%s hits=%d simulated=%d\n",
			dir, cs.DiskHits, cs.Simulated)
	}
	if *adaptIterate > 0 {
		fs := s.FeedbackStats()
		fmt.Fprintf(os.Stderr, "feedback: hits=%d misses=%d iterations=%d converged=%d\n",
			fs.StoreHits, fs.StoreMisses, fs.Iterations, fs.Converged)
	}
	if *mapStore {
		ms := s.MappingStats()
		fmt.Fprintf(os.Stderr, "mapping: hits=%d misses=%d writes=%d saved_bytes=%d\n",
			ms.StoreHits, ms.StoreMisses, ms.StoreWrites, ms.SavedBytes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tomsim:", err)
	os.Exit(1)
}

func hitPct(h, m uint64) float64 {
	if h+m == 0 {
		return 0
	}
	return 100 * float64(h) / float64(h+m)
}
