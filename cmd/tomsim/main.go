// Command tomsim runs one workload under one system configuration and
// prints the measured statistics.
//
//	tomsim -workload LIB -config ctrl-tmap -scale 1.0
//	tomsim -workload LIB -trace out.jsonl -metrics out.json
//	tomsim -list
//
// -trace streams the offload lifecycle (candidate → gate/send → spawn →
// ack → finish) as JSON lines; -metrics writes the end-of-run registry
// snapshot — per-interval off-chip traffic, per-stack pending-offload
// occupancy, link utilization, and queue depths. See docs/OBSERVABILITY.md
// for both schemas.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	tom "repro"
	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	workload := flag.String("workload", "LIB", "workload abbreviation (see -list)")
	config := flag.String("config", string(tom.TOM), "system configuration name")
	scale := flag.Float64("scale", 1.0, "problem-size scale factor")
	compare := flag.Bool("compare", true, "also run the baseline and report speedup")
	list := flag.Bool("list", false, "list workloads and configurations")
	tracePath := flag.String("trace", "", "write offload-lifecycle events to this JSONL file")
	metricsPath := flag.String("metrics", "", "write the metrics snapshot to this JSON file")
	interval := flag.Int64("interval", 0, "metrics sampling interval in cycles (0 = default)")
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range tom.Workloads() {
			fmt.Printf("  %-4s %s — %s\n", w.Abbr, w.Name, w.Desc)
		}
		fmt.Println("configurations:")
		for _, c := range core.AllConfigNames() {
			fmt.Printf("  %s\n", c)
		}
		return
	}

	r := tom.NewRunner(*scale)
	r.Progress = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	var observer *obs.Observer
	var sink *obs.JSONLSink
	var traceFile *os.File
	if *tracePath != "" || *metricsPath != "" {
		observer = obs.New()
		observer.SampleEvery = *interval
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			traceFile = f
			sink = obs.NewJSONLSink(f)
			observer.Trace = sink
		}
	}

	res, err := r.RunObserved(*workload, core.ConfigName(*config), observer)
	if err != nil {
		fatal(err)
	}
	if sink != nil {
		if err := sink.Flush(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		if err := traceFile.Close(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
	}
	if *metricsPath != "" {
		data, err := json.MarshalIndent(observer.Registry.Snapshot(), "", " ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*metricsPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	s := &res.Stats
	fmt.Printf("workload       %s\nconfig         %s\n", res.Abbr, res.Config)
	fmt.Printf("cycles         %d\nIPC            %.2f\n", s.Cycles, s.IPC())
	fmt.Printf("thread instrs  %d (%.1f%% on stack SMs)\n", s.ThreadInstrs, s.OffloadedInstrFraction()*100)
	fmt.Printf("off-chip bytes %d (RX %d, TX %d, mem-mem %d)\n",
		s.OffChipBytes(), s.GPURXBytes, s.GPUTXBytes, s.CrossBytes)
	fmt.Printf("offloads       %d sent, %d skipped (busy %d / full %d / cond %d)\n",
		s.OffloadsSent, s.OffloadsSkippedBusy+s.OffloadsSkippedFull+s.OffloadsSkippedCond,
		s.OffloadsSkippedBusy, s.OffloadsSkippedFull, s.OffloadsSkippedCond)
	fmt.Printf("caches         L1 %.1f%%, L2 %.1f%%, stack L1 %.1f%%\n",
		hitPct(s.L1Hits, s.L1Misses), hitPct(s.L2Hits, s.L2Misses), hitPct(s.StackL1Hits, s.StackL1Misses))
	fmt.Printf("DRAM           %d activations, %.1f%% row hits\n",
		s.DRAMActivations, hitPct(s.DRAMRowHits, s.DRAMActivations))
	fmt.Printf("energy         %.3f mJ (SMs %.3f, links %.3f, DRAM %.3f)\n",
		res.Energy.Total()*1e3, res.Energy.SMs*1e3, res.Energy.Links*1e3, res.Energy.DRAM*1e3)
	if s.LearnCycles > 0 {
		fmt.Printf("tmap learning  bit %d from %d instances in %d cycles; %d bytes re-mapped\n",
			s.LearnedBit, s.LearnInstances, s.LearnCycles, s.CopiedBytes)
	}
	if *compare && res.Config != tom.Baseline {
		base, err := r.Run(*workload, tom.Baseline)
		if err != nil {
			fatal(fmt.Errorf("baseline: %w", err))
		}
		fmt.Printf("speedup        %.3fx over baseline (%d cycles)\n",
			s.IPC()/base.Stats.IPC(), base.Stats.Cycles)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tomsim:", err)
	os.Exit(1)
}

func hitPct(h, m uint64) float64 {
	if h+m == 0 {
		return 0
	}
	return 100 * float64(h) / float64(h+m)
}
