// Command tomx regenerates the paper's figures and tables.
//
//	tomx                       # all experiments at default scale
//	tomx -exp fig8 -scale 0.5  # one experiment
//	tomx -markdown             # emit EXPERIMENTS.md-style markdown
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	tom "repro"
)

func main() {
	exp := flag.String("exp", "all", "experiment id ("+strings.Join(tom.ExperimentIDs(), ", ")+") or 'all'")
	scale := flag.Float64("scale", 1.0, "problem-size scale factor")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	quiet := flag.Bool("q", false, "suppress per-run progress")
	flag.Parse()

	r := tom.NewRunner(*scale)
	if !*quiet {
		r.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var tables []*tom.Table
	if *exp == "all" {
		ts, err := r.AllExperiments()
		if err != nil {
			fatal(err)
		}
		tables = ts
	} else {
		t, err := r.Experiment(*exp)
		if err != nil {
			fatal(err)
		}
		tables = []*tom.Table{t}
	}
	for _, t := range tables {
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tomx:", err)
	os.Exit(1)
}
