// Command tomx regenerates the paper's figures and tables.
//
//	tomx                                  # all experiments at default scale
//	tomx -exp fig8 -scale 0.5             # one experiment
//	tomx -exp fig8 -cache                 # reuse .tomcache/ results across runs
//	tomx -exp fig9 -metrics fig9.json     # plus the time-resolved traffic export
//	tomx -exp fig9 -trace fig9.trace -trace-format binary -trace-sample 16
//	tomx -exp adapt                       # static vs. gate-feedback-refined control
//	tomx -exp adapt -iterate 3            # iterate feedback to a fixed point
//	tomx -exp mapstore -cache             # TOM with the persistent mapping registry
//	tomx -markdown                        # emit EXPERIMENTS.md-style markdown
//
// -metrics and -trace work with any simulated experiment (-exp fig2..fig13,
// xstack, coherence, policies, mapstore): after the table, the experiment's
// configurations (plus the baseline) rerun with observers attached and the
// per-interval metric snapshots are exported. -trace captures every run's
// offload lifecycle into one stream, each event stamped with its
// "ABBR/config" run label; -trace-format binary selects the compact
// encoding (decode or convert with cmd/tomtrace) and -trace-sample N thins
// to one event in N per kind per run, with trace_sampled summaries saying
// what was dropped.
//
// With -cache, verified results persist under -cache-dir keyed by run-spec
// digest and build fingerprint (see docs/RUNCACHE.md): a second identical
// invocation replays every run from disk and prints byte-identical tables.
// With -cache plus -iterate, the converged per-workload refinement also
// persists (under -cache-dir/feedback/), so a later invocation installs the
// stored gate table without re-profiling at all; the "feedback:" summary
// line reports store hits/misses, iterations, and convergences.
//
// -exp mapstore exercises the persistent mapping registry: with -cache, the
// first invocation learns each workload's transparent mapping and seeds
// -cache-dir/mappings/; a second invocation installs every stored bit
// before cycle 0 ("stored" row = 1) with zero learning-phase PCIe traffic,
// and the "mapping:" summary line reports store hits/misses/writes and the
// PCIe bytes saved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	tom "repro"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment id ("+strings.Join(tom.ExperimentIDs(), ", ")+") or 'all'")
	scale := flag.Float64("scale", 1.0, "problem-size scale factor")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	quiet := flag.Bool("q", false, "suppress per-run progress")
	metrics := flag.String("metrics", "", "with -exp fig9: write per-interval off-chip traffic snapshots to this JSON file")
	trace := flag.String("trace", "", "with -exp fig9: write all runs' offload-lifecycle events to this file")
	traceFormat := flag.String("trace-format", "jsonl", "trace encoding: jsonl or binary")
	traceSample := flag.Int("trace-sample", 1, "keep one trace event in N per event kind per run (1 = keep all)")
	interval := flag.Int64("interval", 0, "metrics sampling interval in cycles (0 = default)")
	cache := flag.Bool("cache", false, "persist and replay verified results under -cache-dir")
	noCache := flag.Bool("no-cache", false, "force-disable the persistent result cache")
	cacheDir := flag.String("cache-dir", ".tomcache", "persistent result cache directory")
	iterate := flag.Int("iterate", 0, "with -exp adapt: iterate profile->refine to a fixed point, bounded by N passes")
	flag.Parse()

	if (*metrics != "" || *trace != "") && *exp == "all" {
		fatal(fmt.Errorf("-metrics/-trace export one experiment's timeline; pick it with -exp"))
	}
	if *iterate < 0 {
		fatal(fmt.Errorf("-iterate must be positive"))
	}
	if *iterate > 0 && *exp != "adapt" {
		fatal(fmt.Errorf("-iterate is the iterated adaptive loop; use it with -exp adapt"))
	}

	opts := tom.SessionOptions{Scale: *scale}
	if *cache && !*noCache {
		opts.CacheDir = *cacheDir
	}
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	s := tom.NewSession(opts)

	var tables []*tom.Table
	switch {
	case *exp == "all":
		ts, err := s.AllExperiments()
		if err != nil {
			fatal(err)
		}
		tables = ts
	case *iterate > 0:
		t, err := s.AdaptIterated(*iterate)
		if err != nil {
			fatal(err)
		}
		tables = []*tom.Table{t}
	default:
		t, err := s.Experiment(*exp)
		if err != nil {
			fatal(err)
		}
		tables = []*tom.Table{t}
	}
	for _, t := range tables {
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t)
		}
	}

	if *metrics != "" || *trace != "" {
		// The totals above came from memoized runs; the timeline reruns the
		// same configurations with observers to add the time axis (and,
		// with -trace, the labeled lifecycle stream).
		var sink obs.EventSink
		var traceFile *os.File
		if *trace != "" {
			format, err := obs.ParseFormat(*traceFormat)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			traceFile = f
			sink = obs.NewSink(f, format)
		}
		snaps, err := s.Timeline(*exp, *interval, sink, *traceSample)
		if err != nil {
			fatal(err)
		}
		if traceFile != nil {
			if err := obs.Flush(sink); err != nil {
				fatal(fmt.Errorf("trace: %w", err))
			}
			if err := traceFile.Close(); err != nil {
				fatal(fmt.Errorf("trace: %w", err))
			}
			fmt.Fprintf(os.Stderr, "wrote the lifecycle trace for %d runs to %s\n", len(snaps), *trace)
		}
		if *metrics != "" {
			data, err := json.MarshalIndent(snaps, "", " ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*metrics, append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote per-interval traffic for %d runs to %s\n", len(snaps), *metrics)
		}
	}

	if dir := s.CacheDir(); dir != "" {
		// Machine-parseable summary: the CI cold/warm replay job asserts
		// simulated=0 on the second pass.
		cs := s.CacheStats()
		fmt.Fprintf(os.Stderr, "cache: dir=%s hits=%d simulated=%d\n",
			dir, cs.DiskHits, cs.Simulated)
	}
	if *iterate > 0 {
		// Machine-parseable summary: the CI feedback-replay job asserts
		// hits>0 on the second pass.
		fs := s.FeedbackStats()
		fmt.Fprintf(os.Stderr, "feedback: hits=%d misses=%d iterations=%d converged=%d\n",
			fs.StoreHits, fs.StoreMisses, fs.Iterations, fs.Converged)
	}
	if *exp == "mapstore" {
		// Machine-parseable summary: the CI mapping-store replay job asserts
		// hits>0 and saved_bytes>0 on the second pass.
		ms := s.MappingStats()
		fmt.Fprintf(os.Stderr, "mapping: hits=%d misses=%d writes=%d saved_bytes=%d\n",
			ms.StoreHits, ms.StoreMisses, ms.StoreWrites, ms.SavedBytes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tomx:", err)
	os.Exit(1)
}
