package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

const testScale = 0.05

func newTestServer(t *testing.T, opts options) (*server, *httptest.Server) {
	t.Helper()
	if opts.scale == 0 {
		opts.scale = testScale
	}
	s := newServer(opts)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postBatch(t *testing.T, url string, req batchRequest) (*http.Response, batchResponse, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var out batchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("bad batch response: %v\n%s", err, raw)
		}
	}
	return resp, out, raw
}

// TestServerBatchCacheFastPath: the first POST of a batch simulates every
// run; the second POST of the same batch is served entirely from the cache
// layers (simulated=0) with results identical to the first — the warm-path
// acceptance check, HTTP edition.
func TestServerBatchCacheFastPath(t *testing.T) {
	_, ts := newTestServer(t, options{cacheDir: t.TempDir(), fingerprint: "test"})
	batch := batchRequest{Runs: []runRequest{
		{Workload: "LIB", Config: "baseline"},
		{Workload: "SP", Config: "ctrl-bmap"},
	}}

	resp, cold, _ := postBatch(t, ts.URL, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold batch: HTTP %d", resp.StatusCode)
	}
	if cold.Cache.Simulated != 2 || cold.Cache.Errors != 0 {
		t.Fatalf("cold batch summary = %+v, want 2 simulated", cold.Cache)
	}
	for i, r := range cold.Results {
		if r.Error != "" || r.Result == nil || r.Digest == "" {
			t.Fatalf("cold result %d incomplete: %+v", i, r)
		}
		if r.Source != core.SourceSimulated {
			t.Errorf("cold result %d source = %q, want simulated", i, r.Source)
		}
	}

	resp, warm, _ := postBatch(t, ts.URL, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm batch: HTTP %d", resp.StatusCode)
	}
	if warm.Cache.Simulated != 0 || warm.Cache.Hits != 2 || warm.Cache.Misses != 0 {
		t.Fatalf("warm batch summary = %+v, want 2 hits and nothing simulated", warm.Cache)
	}
	for i := range warm.Results {
		if warm.Results[i].Source != core.SourceMemo {
			t.Errorf("warm result %d source = %q, want memo", i, warm.Results[i].Source)
		}
		a, _ := json.Marshal(cold.Results[i].Result)
		b, _ := json.Marshal(warm.Results[i].Result)
		if !bytes.Equal(a, b) {
			t.Errorf("result %d changed between cold and warm batches:\n%s\n%s", i, a, b)
		}
	}
}

// TestServerDiskReplayAcrossInstances: a second server over the same cache
// directory replays from disk without simulating — the restart story.
func TestServerDiskReplayAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	batch := batchRequest{Runs: []runRequest{{Workload: "LIB", Config: "baseline"}}}

	_, ts1 := newTestServer(t, options{cacheDir: dir, fingerprint: "test"})
	if _, cold, _ := postBatch(t, ts1.URL, batch); cold.Cache.Simulated != 1 {
		t.Fatalf("cold summary = %+v", cold.Cache)
	}

	_, ts2 := newTestServer(t, options{cacheDir: dir, fingerprint: "test"})
	_, warm, _ := postBatch(t, ts2.URL, batch)
	if warm.Cache.Simulated != 0 || warm.Cache.Hits != 1 {
		t.Fatalf("restarted-server summary = %+v, want a disk hit", warm.Cache)
	}
	if warm.Results[0].Source != core.SourceDisk {
		t.Errorf("restarted-server source = %q, want disk", warm.Results[0].Source)
	}
}

// TestServerBatchErrors: malformed bodies are 400s; unknown workloads,
// configurations, and policies fail their own slot (and count as errors)
// without poisoning the rest of the batch.
func TestServerBatchErrors(t *testing.T) {
	_, ts := newTestServer(t, options{cacheDir: t.TempDir(), fingerprint: "test"})

	for _, body := range []string{"{nope", `{"runs":[]}`} {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}

	resp, out, _ := postBatch(t, ts.URL, batchRequest{Runs: []runRequest{
		{Workload: "LIB", Config: "baseline"},
		{Workload: "NOPE", Config: "baseline"},
		{Workload: "LIB", Config: "no-such-config"},
		{Workload: "LIB", Config: "baseline", Policy: "no-such-policy"},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch: HTTP %d", resp.StatusCode)
	}
	if out.Cache.Errors != 3 || out.Cache.Simulated != 1 {
		t.Fatalf("mixed batch summary = %+v, want 3 errors + 1 simulated", out.Cache)
	}
	if out.Results[0].Error != "" || out.Results[0].Result == nil {
		t.Errorf("good run infected by failing neighbours: %+v", out.Results[0])
	}
	for i, want := range map[int]string{1: "NOPE", 2: "no-such-config", 3: "no-such-policy"} {
		if !strings.Contains(out.Results[i].Error, want) {
			t.Errorf("result %d error = %q, want mention of %q", i, out.Results[i].Error, want)
		}
	}
}

// TestServerAdmissionQueue: with every admission slot held, batch and trace
// requests bounce with 429 + Retry-After instead of queueing; releasing a
// slot readmits.
func TestServerAdmissionQueue(t *testing.T) {
	s, ts := newTestServer(t, options{cacheDir: t.TempDir(), fingerprint: "test", queue: 2})
	for i := 0; i < cap(s.admit); i++ {
		s.admit <- struct{}{}
	}
	batch := batchRequest{Runs: []runRequest{{Workload: "LIB", Config: "baseline"}}}
	resp, _, _ := postBatch(t, ts.URL, batch)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	tr, err := http.Get(ts.URL + "/v1/runs/feedfeed/trace")
	if err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if tr.StatusCode != http.StatusTooManyRequests {
		t.Errorf("full queue trace: HTTP %d, want 429", tr.StatusCode)
	}

	<-s.admit
	if resp, out, _ := postBatch(t, ts.URL, batch); resp.StatusCode != http.StatusOK || out.Cache.Errors != 0 {
		t.Fatalf("after releasing a slot: HTTP %d %+v", resp.StatusCode, out.Cache)
	}
}

// TestServerBatchDeadline: a batch with a tiny timeout on a single-worker
// server reports the deadline in the slots that never started; the batch
// itself still answers 200 with per-run accounting.
func TestServerBatchDeadline(t *testing.T) {
	_, ts := newTestServer(t, options{cacheDir: t.TempDir(), fingerprint: "test", workers: 1})
	resp, out, _ := postBatch(t, ts.URL, batchRequest{
		TimeoutMS: 1,
		Runs: []runRequest{
			{Workload: "LIB", Config: "baseline"},
			{Workload: "SP", Config: "baseline"},
			{Workload: "LIB", Config: "ctrl-bmap"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline batch: HTTP %d", resp.StatusCode)
	}
	if out.Cache.Errors == 0 {
		t.Fatalf("1ms deadline over 3 cold runs on one worker produced no errors: %+v", out.Cache)
	}
	found := false
	for _, r := range out.Results {
		if strings.Contains(r.Error, "context deadline exceeded") {
			found = true
		}
	}
	if !found {
		t.Errorf("no slot reports the deadline: %+v", out.Results)
	}
}

// TestServerTransientFailureRetries is the end-to-end acceptance check for
// the singleflight fix: a batch that fails on a transient cache-read error
// succeeds when re-POSTed to the same server process after the condition
// clears. Before the fix the first error was memoized for the server's
// lifetime.
func TestServerTransientFailureRetries(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, options{cacheDir: dir, fingerprint: "test"})
	spec, err := core.NewRunSpec("LIB", testScale, core.CfgBaseline)
	if err != nil {
		t.Fatal(err)
	}
	blocker := filepath.Join(dir, spec.Digest()+".json")
	if err := os.MkdirAll(blocker, 0o755); err != nil {
		t.Fatal(err)
	}

	batch := batchRequest{Runs: []runRequest{{Workload: "LIB", Config: "baseline"}}}
	_, out, _ := postBatch(t, ts.URL, batch)
	if out.Cache.Errors != 1 || !strings.Contains(out.Results[0].Error, "cache: read") {
		t.Fatalf("blocked batch = %+v, want a cache read error", out.Results)
	}

	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	_, out, _ = postBatch(t, ts.URL, batch)
	if out.Cache.Errors != 0 || out.Cache.Simulated != 1 {
		t.Fatalf("retry after the failure cleared = %+v, want one clean simulation", out.Cache)
	}
}

// TestServerTraceStream: the trace endpoint re-executes a submitted run and
// streams a decodable trace whose events carry the run's label; sampling
// appends conservation summaries; unknown digests and bad parameters fail
// cleanly.
func TestServerTraceStream(t *testing.T) {
	_, ts := newTestServer(t, options{cacheDir: t.TempDir(), fingerprint: "test"})
	_, out, _ := postBatch(t, ts.URL, batchRequest{Runs: []runRequest{
		{Workload: "LIB", Config: "ctrl-bmap"},
	}})
	if len(out.Results) != 1 || out.Results[0].Digest == "" {
		t.Fatalf("batch gave no digest: %+v", out.Results)
	}
	digest := out.Results[0].Digest

	for _, q := range []string{"", "?format=jsonl", "?format=binary&sample=8"} {
		resp, err := http.Get(ts.URL + "/v1/runs/" + digest + "/trace" + q)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trace%s: HTTP %d", q, resp.StatusCode)
		}
		rd, err := obs.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("trace%s: %v", q, err)
		}
		events, summaries := 0, 0
		for {
			ev, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("trace%s: decode: %v", q, err)
			}
			if ev.Run != "LIB/ctrl-bmap" {
				t.Fatalf("trace%s: event with run label %q", q, ev.Run)
			}
			if ev.Kind == obs.EvTraceSampled {
				summaries++
			}
			events++
		}
		if events == 0 {
			t.Fatalf("trace%s: empty stream", q)
		}
		if strings.Contains(q, "sample") && summaries == 0 {
			t.Errorf("trace%s: sampled stream carries no trace_sampled summaries", q)
		}
	}

	for path, want := range map[string]int{
		"/v1/runs/0000dead/trace":                http.StatusNotFound,
		"/v1/runs/" + digest + "/trace?format=x": http.StatusBadRequest,
		"/v1/runs/" + digest + "/trace?sample=0": http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: HTTP %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestServerMetricsAndHealth: /healthz answers, and /metrics reflects the
// traffic the other tests of this server instance generated.
func TestServerMetricsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, options{cacheDir: t.TempDir(), fingerprint: "test"})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("/healthz: HTTP %d %q", resp.StatusCode, body)
	}

	postBatch(t, ts.URL, batchRequest{Runs: []runRequest{{Workload: "LIB", Config: "baseline"}}})
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Counters["http.batches"] != 1 || snap.Counters["runs.simulated"] != 1 {
		t.Fatalf("/metrics counters = %+v, want one batch and one simulation", snap.Counters)
	}
}

// TestServerMappingStoreOptIn: a mapping_store run consults the server's
// persistent mapping registry. The first such batch learns (mapping:
// "learned", seeding the store); a second server instance over the same
// cache directory installs the stored bit — mapping: "stored", zero
// learning-phase PCIe bytes, the avoided volume reported — while plain
// batches are untouched (their digests must not change).
func TestServerMappingStoreOptIn(t *testing.T) {
	dir := t.TempDir()
	plain := batchRequest{Runs: []runRequest{{Workload: "LIB", Config: "ctrl-tmap"}}}
	opted := batchRequest{Runs: []runRequest{{Workload: "LIB", Config: "ctrl-tmap", MappingStore: true}}}

	_, ts1 := newTestServer(t, options{cacheDir: dir, fingerprint: "test"})
	_, p1, _ := postBatch(t, ts1.URL, plain)
	if p1.Cache.Stored != 0 || p1.Results[0].Mapping != "learned" {
		t.Fatalf("plain cold batch: stored=%d mapping=%q", p1.Cache.Stored, p1.Results[0].Mapping)
	}
	// The plain run already learned and seeded the registry, so the opted
	// run on the same server installs it.
	_, o1, _ := postBatch(t, ts1.URL, opted)
	if o1.Results[0].Error != "" {
		t.Fatalf("opted batch failed: %s", o1.Results[0].Error)
	}
	if o1.Results[0].Mapping != "stored" || o1.Cache.Stored != 1 {
		t.Fatalf("opted batch: mapping=%q stored=%d, want a stored install",
			o1.Results[0].Mapping, o1.Cache.Stored)
	}
	if o1.Results[0].Digest == p1.Results[0].Digest {
		t.Error("stored-mapping run must not alias the fresh-learning run's digest")
	}
	st := &o1.Results[0].Result.Stats
	if st.PCIeBytes != 0 || st.LearnPCIeSaved == 0 {
		t.Errorf("stored run pcie=%d saved=%d, want 0 learning traffic and a reported saving",
			st.PCIeBytes, st.LearnPCIeSaved)
	}

	// Restart: the registry and both cache records persist. The plain run's
	// digest is unchanged (opt-in means existing clients see identical
	// responses) and the opted run replays from disk, still marked stored.
	_, ts2 := newTestServer(t, options{cacheDir: dir, fingerprint: "test"})
	_, p2, _ := postBatch(t, ts2.URL, plain)
	if p2.Results[0].Digest != p1.Results[0].Digest || p2.Results[0].Source != core.SourceDisk {
		t.Fatalf("plain warm batch: digest changed or not replayed (%q)", p2.Results[0].Source)
	}
	_, o2, _ := postBatch(t, ts2.URL, opted)
	if o2.Results[0].Source != core.SourceDisk || o2.Results[0].Mapping != "stored" {
		t.Fatalf("opted warm batch: source=%q mapping=%q, want a disk replay marked stored",
			o2.Results[0].Source, o2.Results[0].Mapping)
	}
	if o2.Cache.Stored != 1 {
		t.Errorf("opted warm summary stored=%d, want 1", o2.Cache.Stored)
	}
}
