// Command tomserve is the long-running sweep service: the Session cache
// architecture behind an HTTP/JSON API, so a figure pipeline (or several at
// once) can request run batches and pay simulation cost only for specs no
// prior request has produced.
//
//	tomserve -addr :8080 -cache-dir .tomcache
//
// Endpoints:
//
//	POST /v1/runs                 run a batch; per-run cache source + per-batch summary
//	GET  /v1/runs/{digest}/trace  re-execute one submitted run, streaming its trace
//	GET  /metrics                 server counters (obs registry snapshot, JSON)
//	GET  /healthz                 liveness
//
// A batch is {"runs":[{"workload":"LIB","config":"ctrl-tmap","policy":"",
// "scale":0.5}],"timeout_ms":0}. Results align with the request; each slot
// carries the spec digest, the satisfying cache layer (memo/disk/simulated),
// and the verified result or an error. The response's "cache" object is the
// HTTP counterpart of tomsim's "cache: hits=... simulated=..." line.
//
// Concurrency: every batch executes on one shared work-stealing scheduler
// bounded by -workers, so the simulation bound holds across concurrent
// batches; -queue bounds admitted requests, beyond which the server answers
// 429 + Retry-After immediately. -timeout caps each batch (runs that never
// started report the deadline error; running simulations always finish and
// land in the caches). On SIGINT/SIGTERM the server stops accepting work,
// drains in-flight batches, and exits. See docs/RUNCACHE.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	scale := flag.Float64("scale", 1.0, "default problem-size scale factor (per-run override allowed)")
	cacheDir := flag.String("cache-dir", ".tomcache", "persistent result cache directory (\"\" = memo only)")
	workers := flag.Int("workers", 0, "simulation concurrency bound (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 16, "admission bound: queued+running requests before 429")
	timeout := flag.Duration("timeout", 0, "default per-batch deadline (0 = none)")
	flushEvery := flag.Int("trace-flush", 64, "flush streamed traces every N events")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *cacheDir != "" {
		// Startup GC: drop records this build can never replay (foreign
		// fingerprints, torn writes) so a long-lived cache directory does not
		// accrete one dead record per digest per past build.
		if n, err := core.NewDiskCache(*cacheDir, "").Sweep(); err != nil {
			logf("tomserve: cache sweep: %v", err)
		} else if n > 0 {
			logf("tomserve: cache sweep removed %d dead records", n)
		}
	}

	srv := &http.Server{
		Addr: *addr,
		Handler: newServer(options{
			scale:      *scale,
			cacheDir:   *cacheDir,
			workers:    *workers,
			queue:      *queue,
			timeout:    *timeout,
			flushEvery: *flushEvery,
			logf:       logf,
		}).handler(),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	logf("tomserve: listening on %s (cache=%q workers=%d queue=%d)",
		*addr, *cacheDir, *workers, *queue)

	select {
	case err := <-done:
		logf("tomserve: %v", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, let in-flight batches run
	// to completion (their simulations land in the caches), then exit. The
	// grace period is generous — a second signal kills the process anyway.
	stop()
	logf("tomserve: draining in-flight requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logf("tomserve: drain: %v", err)
		os.Exit(1)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("tomserve: %v", err)
		os.Exit(1)
	}
	logf("tomserve: drained, bye")
}
