package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// options configures a server instance. The zero values of workers/queue/
// timeout select the defaults in newServer; tests construct these directly,
// main fills them from flags.
type options struct {
	scale       float64       // default problem scale (per-run override allowed)
	cacheDir    string        // persistent result cache root ("" = memo only)
	fingerprint string        // build-fingerprint override ("" = real build)
	workers     int           // simulation concurrency bound (<=0 = GOMAXPROCS)
	queue       int           // admission bound: queued+running batch requests
	timeout     time.Duration // default per-batch deadline (0 = no deadline)
	flushEvery  int           // trace streaming: flush encoder every N events
	logf        func(format string, args ...any)
}

// server is the sweep service: it accepts batches of runs over HTTP, executes
// them through per-scale Sessions sharing one persistent cache and one
// work-stealing Scheduler, and reports per-batch cache accounting. Cache hits
// are served with zero simulation; the global worker bound holds across every
// batch in flight.
type server struct {
	opts  options
	sched *core.Scheduler
	reg   *obs.Registry // server-level metrics, exposed at /metrics
	// admit bounds admitted batch work (batch posts and trace streams,
	// queued or running). Acquisition is non-blocking: a full channel is an
	// immediate 429, so a burst degrades into fast rejections instead of a
	// connection pile-up.
	admit chan struct{}

	mu       sync.Mutex
	sessions map[float64]*core.Session // lazily created, one per scale
	specs    map[string]specEntry      // digest -> resolved spec (trace endpoint)
}

// specEntry remembers a resolved spec and the scale whose session ran it.
type specEntry struct {
	spec  core.RunSpec
	scale float64
}

func newServer(opts options) *server {
	if opts.scale <= 0 {
		opts.scale = 1.0
	}
	if opts.queue <= 0 {
		opts.queue = 16
	}
	if opts.flushEvery <= 0 {
		opts.flushEvery = 64
	}
	if opts.logf == nil {
		opts.logf = func(string, ...any) {}
	}
	return &server{
		opts:     opts,
		sched:    core.NewScheduler(opts.workers),
		reg:      obs.NewRegistry(),
		admit:    make(chan struct{}, opts.queue),
		sessions: map[float64]*core.Session{},
		specs:    map[string]specEntry{},
	}
}

// session returns (creating once) the Session for a problem scale. All
// sessions share the cache directory: records are keyed by spec digest,
// which folds the scale, so they never collide.
func (s *server) session(scale float64) *core.Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[scale]; ok {
		return sess
	}
	sess := core.NewSession(core.Options{
		Scale:       scale,
		CacheDir:    s.opts.cacheDir,
		Fingerprint: s.opts.fingerprint,
		Progress:    s.opts.logf,
	})
	s.sessions[scale] = sess
	return sess
}

// handler builds the route table (go 1.22 method+wildcard patterns).
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleBatch)
	mux.HandleFunc("GET /v1/runs/{digest}/trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// batchRequest is the POST /v1/runs body.
type batchRequest struct {
	Runs []runRequest `json:"runs"`
	// TimeoutMS overrides the server's per-batch deadline for this batch
	// (0 keeps the server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// runRequest names one run; scale 0 selects the server default.
type runRequest struct {
	Workload string  `json:"workload"`
	Config   string  `json:"config"`
	Policy   string  `json:"policy,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	// MappingStore consults the server's persistent mapping registry for
	// this run (core.Session.WithStoredMapping): a transparent-mapping run
	// whose key has a stored record installs the learned bit before cycle 0
	// instead of learning it. Opt-in per run because the install folds into
	// the spec digest — the stored-mapping run is a different measurement
	// than the fresh-learning run and caches under its own record.
	MappingStore bool `json:"mapping_store,omitempty"`
}

// runResponse is one run's slot in the batch response, aligned with the
// request order. Source reports which cache layer satisfied the run.
type runResponse struct {
	Workload string         `json:"workload"`
	Config   string         `json:"config"`
	Policy   string         `json:"policy,omitempty"`
	Scale    float64        `json:"scale"`
	Digest   string         `json:"digest,omitempty"`
	Source   core.RunSource `json:"source,omitempty"`
	// Mapping reports the run's data-mapping provenance: "stored" (installed
	// from the persistent registry), "learned" (this run's learning phase),
	// "preset" (oracle/fixed-bit), or "baseline" (no bit mapping).
	Mapping string          `json:"mapping,omitempty"`
	Error   string          `json:"error,omitempty"`
	Result  *core.RunResult `json:"result,omitempty"`
}

// batchSummary is the per-batch cache accounting (the HTTP counterpart of
// tomsim's "cache: hits=... simulated=..." stderr line). Misses = simulated
// + errors: every run the cache layers could not satisfy.
type batchSummary struct {
	Hits      int `json:"hits"`
	Misses    int `json:"misses"`
	Simulated int `json:"simulated"`
	Errors    int `json:"errors"`
	// Stored counts runs that installed a mapping from the persistent
	// registry (omitted when zero, so batches without mapping_store runs
	// keep the historical summary shape).
	Stored int `json:"stored,omitempty"`
}

type batchResponse struct {
	Results []runResponse `json:"results"`
	Cache   batchSummary  `json:"cache"`
}

// tryAdmit acquires an admission slot without blocking; on failure it has
// already written the 429.
func (s *server) tryAdmit(w http.ResponseWriter) bool {
	select {
	case s.admit <- struct{}{}:
		return true
	default:
		s.reg.Counter("http.rejected").Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "admission queue full", http.StatusTooManyRequests)
		return false
	}
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.tryAdmit(w) {
		return
	}
	defer func() { <-s.admit }()
	s.reg.Counter("http.batches").Inc()

	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Runs) == 0 {
		http.Error(w, "bad batch: no runs", http.StatusBadRequest)
		return
	}

	// The deadline covers the whole batch; it also inherits the client's
	// disconnect through the request context, so an abandoned batch stops
	// claiming new scheduler slots (runs already simulating finish — a
	// simulation cannot be interrupted mid-run — and land in the caches).
	ctx := r.Context()
	timeout := s.opts.timeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	results := make([]runResponse, len(req.Runs))
	type job struct {
		idx   int
		spec  core.RunSpec
		scale float64
	}
	var jobs []job
	for i, rr := range req.Runs {
		scale := rr.Scale
		if scale <= 0 {
			scale = s.opts.scale
		}
		results[i] = runResponse{
			Workload: rr.Workload,
			Config:   rr.Config,
			Policy:   rr.Policy,
			Scale:    scale,
		}
		sess := s.session(scale)
		spec, err := sess.SpecWithPolicy(rr.Workload, core.ConfigName(rr.Config), rr.Policy)
		if err != nil {
			results[i].Error = err.Error()
			continue
		}
		if rr.MappingStore {
			spec, err = sess.WithStoredMapping(spec)
			if err != nil {
				results[i].Error = err.Error()
				continue
			}
		}
		results[i].Digest = spec.Digest()
		jobs = append(jobs, job{idx: i, spec: spec, scale: scale})
	}

	// Execute every resolvable run on the shared scheduler: concurrent
	// batches contend for the same worker slots, so the server-wide
	// simulation bound holds under load.
	errs := s.sched.ForEach(ctx, len(jobs), func(j int) error {
		res, src, err := s.session(jobs[j].scale).RunSpecTracked(jobs[j].spec)
		if err != nil {
			return err
		}
		results[jobs[j].idx].Source = src
		results[jobs[j].idx].Mapping = mappingLabel(res.Stats.MappingSource)
		results[jobs[j].idx].Result = res
		return nil
	})
	for j, err := range errs {
		if err != nil {
			results[jobs[j].idx].Error = err.Error()
		}
	}

	// Remember digests for the trace endpoint (successes only: a spec that
	// never ran cleanly is not worth re-executing under observation).
	s.mu.Lock()
	for j := range jobs {
		if results[jobs[j].idx].Error == "" {
			s.specs[jobs[j].spec.Digest()] = specEntry{spec: jobs[j].spec, scale: jobs[j].scale}
		}
	}
	s.mu.Unlock()

	var sum batchSummary
	for i := range results {
		switch {
		case results[i].Error != "":
			sum.Errors++
		case results[i].Source == core.SourceSimulated:
			sum.Simulated++
		default:
			sum.Hits++
		}
		if results[i].Mapping == sim.MappingStored {
			sum.Stored++
		}
	}
	sum.Misses = sum.Simulated + sum.Errors
	s.reg.Counter("runs.hits").Add(uint64(sum.Hits))
	s.reg.Counter("runs.simulated").Add(uint64(sum.Simulated))
	s.reg.Counter("runs.errors").Add(uint64(sum.Errors))
	if sum.Stored > 0 {
		s.reg.Counter("runs.mapping_stored").Add(uint64(sum.Stored))
	}

	s.writeJSON(w, batchResponse{Results: results, Cache: sum})
}

// handleTrace re-executes a previously-submitted run under observation and
// streams its lifecycle trace as it is produced. Observation requires an
// actual execution (only an execution yields events), so this endpoint
// always simulates — it admits through the same queue and scheduler as
// batches. The sink chain is Label → Sampling → AutoFlush → encoder; the
// AutoFlush layer bounds the client's lag behind the simulation, and the
// sampling sink's trace_sampled conservation summaries arrive at the end of
// the stream whether the run succeeds or fails.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	// Admission comes first: under saturation even lookup traffic bounces,
	// keeping the 429 the one overload signal.
	if !s.tryAdmit(w) {
		return
	}
	defer func() { <-s.admit }()
	digest := r.PathValue("digest")
	s.mu.Lock()
	ent, ok := s.specs[digest]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown run digest (submit it via POST /v1/runs first)", http.StatusNotFound)
		return
	}
	format, err := obs.ParseFormat(defaultStr(r.URL.Query().Get("format"), "binary"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sample := 1
	if q := r.URL.Query().Get("sample"); q != "" {
		if sample, err = strconv.Atoi(q); err != nil || sample < 1 {
			http.Error(w, "bad sample (want a positive integer)", http.StatusBadRequest)
			return
		}
	}
	s.reg.Counter("http.traces").Inc()

	if format == obs.FormatBinary {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	fw := &flushWriter{w: w}
	policy := core.ObsPolicy{
		Registry:    obs.NewRegistry(),
		Trace:       obs.NewAutoFlushSink(obs.NewSink(fw, format), s.opts.flushEvery),
		TraceSample: sample,
	}
	o, _ := policy.ObserverFor(ent.spec.Key())
	_, runErr := s.session(ent.scale).RunSpecObserved(ent.spec, o)
	// Flush on success and failure alike: a failed run has already streamed
	// events, and its conservation summaries must still reach the client.
	flushErr := obs.Flush(o.Trace)
	if err := errors.Join(runErr, flushErr); err != nil {
		// Once bytes are on the wire the status is spent; truncating the
		// stream is all HTTP allows. Before that, a clean 500 is possible.
		if !fw.wrote {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		s.opts.logf("trace %s: %v", ent.spec.Key(), err)
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, s.reg.Snapshot())
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		s.opts.logf("response encode: %v", err)
	}
}

// flushWriter forwards writes and, when the ResponseWriter supports it,
// flushes the HTTP layer after each one — writes only arrive here when the
// trace encoder itself flushes, so this is the trace streaming cadence.
type flushWriter struct {
	w     http.ResponseWriter
	wrote bool
}

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if n > 0 {
		f.wrote = true
	}
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}

func defaultStr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// mappingLabel renders a run's mapping provenance for the batch response:
// the simulator leaves MappingSource empty when no bit mapping was active
// (baseline interleave throughout).
func mappingLabel(src string) string {
	if src == "" {
		return "baseline"
	}
	return src
}
