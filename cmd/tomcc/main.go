// Command tomcc runs TOM's offload-candidate selection (the §3.1 compiler
// pass) over a kernel written in the project's PTX-like assembly and dumps
// the offloading metadata table.
//
//	tomcc kernel.s
//	tomcc -            # read from stdin
//	tomcc -workload LIB  # analyze a built-in workload's kernels
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/compiler"
	"repro/internal/isa"
	"repro/internal/workloads"
)

func main() {
	workload := flag.String("workload", "", "analyze a built-in workload instead of a source file")
	disasm := flag.Bool("d", false, "also print the disassembly")
	flag.Parse()

	var kernels []*isa.Kernel
	switch {
	case *workload != "":
		w, err := workloads.ByAbbr(*workload)
		if err != nil {
			fatal(err)
		}
		inst, err := w.Build(0.05)
		if err != nil {
			fatal(err)
		}
		seen := map[string]bool{}
		for _, l := range inst.Launches {
			if !seen[l.Kernel.Name] {
				seen[l.Kernel.Name] = true
				kernels = append(kernels, l.Kernel)
			}
		}
	case flag.NArg() == 1:
		var src []byte
		var err error
		if flag.Arg(0) == "-" {
			src, err = io.ReadAll(os.Stdin)
		} else {
			src, err = os.ReadFile(flag.Arg(0))
		}
		if err != nil {
			fatal(err)
		}
		kernels, err = isa.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: tomcc [-d] <kernel.s | -> | tomcc -workload ABBR")
		os.Exit(2)
	}

	for _, k := range kernels {
		if *disasm {
			fmt.Println(isa.Disassemble(k))
		}
		md, err := compiler.Analyze(k, compiler.DefaultCostParams())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("kernel %s: %d instructions, %d registers, %d offload candidates\n",
			k.Name, len(k.Instrs), k.NumRegs, len(md.Candidates))
		for _, c := range md.Candidates {
			fmt.Printf("  %s\n", c)
			fmt.Printf("    live-in mask %#x, live-out mask %#x, tag TX=%v RX=%v\n",
				c.LiveIn, c.LiveOut, c.SavesTX, c.SavesRX)
			if c.Conditional() {
				cond := c.Trip.Cond
				bound := fmt.Sprintf("r%d", cond.BoundReg)
				if !cond.BoundIsReg {
					bound = fmt.Sprintf("%d", cond.BoundImm)
				}
				fmt.Printf("    condition: trips(r%d %s %s, step %d) >= %d\n",
					cond.IndReg, cond.Cmp, bound, cond.Step, cond.MinTrips)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tomcc:", err)
	os.Exit(1)
}
