// Command tombench measures timing-simulator throughput over the Fig. 9
// workload×configuration matrix and commits the result as a benchmark
// trajectory file (BENCH_<date>.json).
//
// For every cell (workload abbreviation × named configuration) it runs the
// simulation once per requested loop mode ("event" — the default
// event-driven loop that jumps idle cycles — and "percycle" — the legacy
// tick-every-cycle loop) and records simulated cycles, wall time, simulated
// cycles per second, and heap allocations per simulated cycle.
//
// With -compare, tombench instead re-runs the matrix and checks the result
// against a previously committed baseline file, failing (exit 1) when a
// machine-independent metric regresses beyond -threshold:
//
//   - the event/percycle speedup ratio (how much work the event loop skips),
//   - allocations per simulated cycle (the hot-loop allocation budget),
//   - the simulated cycle count of every cell (a determinism check: any
//     drift means the model changed and the baseline must be regenerated).
//
// Wall-clock metrics are recorded for human inspection but never compared —
// they depend on the machine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// benchSchemaVersion identifies the BENCH_*.json layout.
const benchSchemaVersion = "tombench/v1"

// fig9Configs is the benchmark matrix's configuration axis: the paper's
// Fig. 9 set (baseline + the four offload/mapping policies). The tmap
// configurations exercise the learning phase (PCIe round trips, the
// end-of-learning freeze window) whose idle stretches the event-driven
// loop exists to skip.
var fig9Configs = []core.ConfigName{
	core.CfgBaseline,
	core.CfgNoCtrlBmap,
	core.CfgNoCtrlTmap,
	core.CfgCtrlBmap,
	core.CfgCtrlTmap,
}

// Cell is one (workload, config, loop-mode) measurement. Ticked/Skipped
// split the simulated cycles into ones the loop actually stepped versus
// ones it jumped over, so a speedup change can be attributed to either the
// model getting faster or the skip rate moving — the two are gated
// differently by -compare.
type Cell struct {
	Workload string  `json:"workload"`
	Config   string  `json:"config"`
	Loop     string  `json:"loop"`
	Cycles   int64   `json:"simulated_cycles"`
	Ticked   int64   `json:"cycles_ticked"`
	Skipped  int64   `json:"cycles_skipped"`
	WallNS   int64   `json:"wall_ns"`
	CyclesPS float64 `json:"cycles_per_sec"`
	Allocs   uint64  `json:"allocs"`
	AllocsPC float64 `json:"allocs_per_cycle"`
}

// LoopTotal aggregates one loop mode across the whole matrix.
type LoopTotal struct {
	Cycles   int64   `json:"simulated_cycles"`
	Ticked   int64   `json:"cycles_ticked"`
	Skipped  int64   `json:"cycles_skipped"`
	WallNS   int64   `json:"wall_ns"`
	CyclesPS float64 `json:"cycles_per_sec"`
	Allocs   uint64  `json:"allocs"`
	AllocsPC float64 `json:"allocs_per_cycle"`
}

// Report is the BENCH_<date>.json document.
type Report struct {
	Schema string  `json:"schema"`
	Date   string  `json:"date"`
	Scale  float64 `json:"scale"`
	// GoVersion and GOOS/GOARCH contextualize the wall-clock numbers;
	// comparisons never use them.
	GoVersion string               `json:"go_version"`
	Platform  string               `json:"platform"`
	Cells     []Cell               `json:"cells"`
	Totals    map[string]LoopTotal `json:"totals"`
	// Speedup is total event-loop cycles/sec over total per-cycle
	// cycles/sec; present only when both loop modes ran.
	Speedup float64 `json:"event_speedup,omitempty"`
}

func main() {
	var (
		scale     = flag.Float64("scale", 0.1, "problem-size scale for every workload")
		out       = flag.String("out", "", "output JSON path (default BENCH_<date>.json, or none with -compare)")
		loop      = flag.String("loop", "both", "loop modes to run: event, percycle, or both")
		compare   = flag.String("compare", "", "baseline BENCH_*.json to check against (regression mode)")
		threshold = flag.Float64("threshold", 0.15, "relative regression tolerance for -compare")
		date      = flag.String("date", time.Now().Format("2006-01-02"), "date stamp for the report")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the matrix run to this file")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tombench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "tombench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	var modes []string
	switch *loop {
	case "both":
		modes = []string{"event", "percycle"}
	case "event", "percycle":
		modes = []string{*loop}
	default:
		fmt.Fprintf(os.Stderr, "tombench: -loop must be event, percycle, or both (got %q)\n", *loop)
		os.Exit(2)
	}

	rep, err := runMatrix(*scale, modes, *date)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tombench: %v\n", err)
		os.Exit(1)
	}
	printSummary(rep)

	if *compare != "" {
		base, err := loadReport(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tombench: %v\n", err)
			os.Exit(1)
		}
		if errs := compareReports(base, rep, *threshold); len(errs) > 0 {
			fmt.Fprintf(os.Stderr, "\ntombench: %d regression(s) vs %s:\n", len(errs), *compare)
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "  - %s\n", e)
			}
			fmt.Fprintln(os.Stderr, "\nIf the simulation model intentionally changed (cycle counts moved),"+
				"\nregenerate the baseline: go run ./cmd/tombench -out <baseline>.json")
			os.Exit(1)
		}
		fmt.Printf("\nOK: no regressions vs %s (threshold %.0f%%)\n", *compare, *threshold*100)
		if *out == "" {
			return
		}
	}

	path := *out
	if path == "" {
		path = "BENCH_" + *date + ".json"
	}
	data, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "tombench: encode: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "tombench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", path)
}

// runMatrix executes every cell of the matrix for each loop mode and
// assembles the report. Workload instances are built once per abbreviation
// and cloned per run so all cells start from identical inputs.
func runMatrix(scale float64, modes []string, date string) (*Report, error) {
	rep := &Report{
		Schema:    benchSchemaVersion,
		Date:      date,
		Scale:     scale,
		GoVersion: runtime.Version(),
		Platform:  runtime.GOOS + "/" + runtime.GOARCH,
		Totals:    map[string]LoopTotal{},
	}
	for _, abbr := range core.Abbrs() {
		w, err := workloads.ByAbbr(abbr)
		if err != nil {
			return nil, err
		}
		inst, err := w.Build(scale)
		if err != nil {
			return nil, fmt.Errorf("%s: build: %w", abbr, err)
		}
		for _, name := range fig9Configs {
			sp, err := core.NewRunSpec(abbr, scale, name)
			if err != nil {
				return nil, err
			}
			for _, mode := range modes {
				cell, err := runCell(inst, sp, mode)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", abbr, name, mode, err)
				}
				rep.Cells = append(rep.Cells, cell)
				fmt.Printf("%-4s %-12s %-8s %12d cycles %10.0f cyc/s %7.2f allocs/cyc\n",
					abbr, name, mode, cell.Cycles, cell.CyclesPS, cell.AllocsPC)
			}
		}
	}
	for _, c := range rep.Cells {
		t := rep.Totals[c.Loop]
		t.Cycles += c.Cycles
		t.Ticked += c.Ticked
		t.Skipped += c.Skipped
		t.WallNS += c.WallNS
		t.Allocs += c.Allocs
		rep.Totals[c.Loop] = t
	}
	for mode, t := range rep.Totals {
		if t.WallNS > 0 {
			t.CyclesPS = float64(t.Cycles) / (float64(t.WallNS) / 1e9)
		}
		if t.Cycles > 0 {
			t.AllocsPC = float64(t.Allocs) / float64(t.Cycles)
		}
		rep.Totals[mode] = t
	}
	ev, okE := rep.Totals["event"]
	pc, okP := rep.Totals["percycle"]
	if okE && okP && pc.CyclesPS > 0 {
		rep.Speedup = ev.CyclesPS / pc.CyclesPS
	}
	return rep, nil
}

// runCell simulates one cell: clone the instance, run, and measure.
func runCell(inst *workloads.Instance, sp core.RunSpec, mode string) (Cell, error) {
	run := inst.Clone()
	cfg := sp.Cfg
	cfg.MaxCycles = 500_000_000
	sys := sim.New(cfg, run.Mem, run.Alloc)
	sys.SetPerCycleLoop(mode == "percycle")

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := sys.Run(run.Launches)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Cell{}, err
	}

	cycles := sys.Stats().Cycles
	ticked := sys.ExecutedCycles()
	cell := Cell{
		Workload: sp.Abbr,
		Config:   string(sp.Config),
		Loop:     mode,
		Cycles:   cycles,
		Ticked:   ticked,
		Skipped:  cycles - ticked,
		WallNS:   wall.Nanoseconds(),
		Allocs:   after.Mallocs - before.Mallocs,
	}
	if wall > 0 {
		cell.CyclesPS = float64(cycles) / wall.Seconds()
	}
	if cycles > 0 {
		cell.AllocsPC = float64(cell.Allocs) / float64(cycles)
	}
	return cell, nil
}

func printSummary(rep *Report) {
	fmt.Println()
	for _, mode := range []string{"event", "percycle"} {
		if t, ok := rep.Totals[mode]; ok {
			skip := 0.0
			if t.Cycles > 0 {
				skip = float64(t.Skipped) / float64(t.Cycles) * 100
			}
			fmt.Printf("%-8s total: %d cycles in %v — %.0f cycles/s, %.2f allocs/cycle, ticked %d / skipped %d (%.1f%%)\n",
				mode, t.Cycles, time.Duration(t.WallNS), t.CyclesPS, t.AllocsPC, t.Ticked, t.Skipped, skip)
		}
	}
	if rep.Speedup > 0 {
		fmt.Printf("event-driven speedup over per-cycle: %.2fx\n", rep.Speedup)
	}
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != benchSchemaVersion {
		return nil, fmt.Errorf("%s: schema %q, this binary expects %q", path, rep.Schema, benchSchemaVersion)
	}
	return &rep, nil
}

// compareReports checks cur against base and returns one message per
// violated machine-independent invariant.
func compareReports(base, cur *Report, threshold float64) []string {
	var errs []string
	if base.Scale != cur.Scale {
		errs = append(errs, fmt.Sprintf("scale mismatch: baseline %v, current %v — rerun with -scale %v",
			base.Scale, cur.Scale, base.Scale))
		return errs
	}

	// Determinism: every cell present in both reports must simulate the
	// exact same number of cycles. Any drift means the model changed.
	baseCells := map[string]Cell{}
	for _, c := range base.Cells {
		baseCells[c.Workload+"/"+c.Config+"/"+c.Loop] = c
	}
	for _, c := range cur.Cells {
		key := c.Workload + "/" + c.Config + "/" + c.Loop
		b, ok := baseCells[key]
		if !ok {
			continue
		}
		if b.Cycles != c.Cycles {
			errs = append(errs, fmt.Sprintf("%s: simulated %d cycles, baseline %d — model changed, baseline is stale",
				key, c.Cycles, b.Cycles))
		}
		// The executed-cycle split is as deterministic as the cycle count:
		// a drift means the wake-horizon computation changed. Guard on the
		// baseline actually carrying the field (older baselines predate it).
		if b.Ticked > 0 && b.Ticked != c.Ticked {
			errs = append(errs, fmt.Sprintf("%s: ticked %d cycles (skipped %d), baseline ticked %d (skipped %d) — skip rate changed, baseline is stale",
				key, c.Ticked, c.Skipped, b.Ticked, b.Skipped))
		}
	}

	// Allocation budget: allocs/cycle may not grow beyond threshold.
	for mode, bt := range base.Totals {
		ct, ok := cur.Totals[mode]
		if !ok {
			continue
		}
		if bt.AllocsPC > 0 && ct.AllocsPC > bt.AllocsPC*(1+threshold) {
			errs = append(errs, fmt.Sprintf("%s loop: %.3f allocs/cycle, baseline %.3f (+%.0f%% > %.0f%% tolerance)",
				mode, ct.AllocsPC, bt.AllocsPC, (ct.AllocsPC/bt.AllocsPC-1)*100, threshold*100))
		}
	}

	// Speedup ratio: machine-independent to first order (both loops run on
	// the same machine in the same process), may not shrink beyond threshold.
	if base.Speedup > 0 && cur.Speedup > 0 && cur.Speedup < base.Speedup*(1-threshold) {
		ev := cur.Totals["event"]
		errs = append(errs, fmt.Sprintf("event speedup %.2fx, baseline %.2fx (-%.0f%% > %.0f%% tolerance; event loop ticked %d / skipped %d of %d cycles)",
			cur.Speedup, base.Speedup, (1-cur.Speedup/base.Speedup)*100, threshold*100,
			ev.Ticked, ev.Skipped, ev.Cycles))
	}
	return errs
}
