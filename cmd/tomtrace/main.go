// Command tomtrace decodes, filters, and converts offload-lifecycle traces
// between the two encodings tomsim and tomx emit: JSON lines and the
// compact binary format (docs/OBSERVABILITY.md). The input encoding is
// detected from the file's leading bytes, so existing JSONL analysis
// scripts keep working against binary captures:
//
//	tomtrace trace.bin                         # decode to JSONL on stdout
//	tomtrace -to binary -o trace.bin big.jsonl # compact an old JSONL trace
//	tomtrace -kind send,ack -stack 2 trace.bin # lifecycle of one stack
//	tomtrace -run LIB/ctrl-tmap fig9.trace     # one run out of a shared trace
//	tomsim -workload LIB -trace - | tomtrace - # stdin works too
//
// Filters conjoin: an event must match every one given. -stack matches the
// event's stack id; use -stack -1 for events that fired before a
// destination stack was known (gate events with reason cond or nodest).
// Converting without filters is lossless and deterministic — a binary
// trace converted to JSONL is byte-identical to the JSONL the same run
// would have produced natively, and vice versa.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tomtrace:", err)
		os.Exit(1)
	}
}

// run is the testable body: flags and streams in, first error out (the
// named return lets the deferred output close report its error).
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("tomtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output file (default stdout)")
	to := fs.String("to", "jsonl", "output encoding: jsonl or binary")
	kinds := fs.String("kind", "", "keep only these comma-separated event kinds")
	runLabel := fs.String("run", "", "keep only events with this run label (\"ABBR/config\")")
	stack := fs.String("stack", "", "keep only events on this stack id (-1 = no destination)")
	quiet := fs.Bool("q", false, "suppress the event-count summary on stderr")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: tomtrace [flags] [trace-file|-]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("at most one input file (got %d)", fs.NArg())
	}

	format, err := obs.ParseFormat(*to)
	if err != nil {
		return err
	}
	filter := &obs.Filter{Run: *runLabel}
	if *kinds != "" {
		for _, k := range strings.Split(*kinds, ",") {
			if k = strings.TrimSpace(k); k != "" {
				filter.Kinds = append(filter.Kinds, k)
			}
		}
	}
	if *stack != "" {
		id, err := strconv.Atoi(*stack)
		if err != nil {
			return fmt.Errorf("-stack: %w", err)
		}
		filter.Stack = &id
	}

	in := stdin
	name := "-"
	if fs.NArg() == 1 && fs.Arg(0) != "-" {
		name = fs.Arg(0)
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}

	read, written, err := obs.Convert(in, w, format, filter)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if !*quiet {
		fmt.Fprintf(stderr, "tomtrace: %d events read, %d written (%s)\n", read, written, format)
	}
	return nil
}
