package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// traceEvents is the fixture stream: two runs, zero-valued ids, a learned
// bit of 0, and a pre-destination gate — the corners the conversion must
// not lose.
var traceEvents = []obs.Event{
	{Cycle: 10, Kind: obs.EvCandidate, Run: "LIB/ctrl-tmap", SM: 0, PC: 3},
	{Cycle: 12, Kind: obs.EvGate, Run: "LIB/ctrl-tmap", SM: 0, Stack: -1, PC: 3, Reason: "cond"},
	{Cycle: 40, Kind: obs.EvSend, Run: "LIB/ctrl-tmap", SM: 0, Stack: 0, PC: 3, Bytes: 160},
	{Cycle: 90, Kind: obs.EvAck, Run: "LIB/ctrl-tmap", SM: 64, Stack: 0, PC: 3, Bytes: 96},
	{Cycle: 95, Kind: obs.EvLearnEnd, Run: "BFS/ctrl-tmap", N: 128, Bit: obs.BitValue(0)},
	{Cycle: 99, Kind: obs.EvSend, Run: "BFS/ctrl-tmap", SM: 2, Stack: 3, PC: 7, Bytes: 160},
}

func encode(t *testing.T, format obs.Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewSink(&buf, format)
	for _, ev := range traceEvents {
		sink.Emit(ev)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runTool invokes the CLI body with stdin input and returns stdout.
func runTool(t *testing.T, args []string, stdin []byte) []byte {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, bytes.NewReader(stdin), &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, stderr.String())
	}
	return stdout.Bytes()
}

// TestConvertBinaryToJSONL: decoding a binary trace must reproduce the
// native JSONL encoding byte for byte, via both stdin and a file argument.
func TestConvertBinaryToJSONL(t *testing.T) {
	bin := encode(t, obs.FormatBinary)
	want := encode(t, obs.FormatJSONL)

	if got := runTool(t, []string{"-q"}, bin); !bytes.Equal(got, want) {
		t.Errorf("stdin conversion differs from native JSONL:\n got %s\nwant %s", got, want)
	}

	dir := t.TempDir()
	in := filepath.Join(dir, "trace.bin")
	out := filepath.Join(dir, "trace.jsonl")
	if err := os.WriteFile(in, bin, 0o644); err != nil {
		t.Fatal(err)
	}
	runTool(t, []string{"-q", "-o", out, in}, nil)
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("file conversion differs from native JSONL")
	}
}

// TestConvertRoundTrip: jsonl → binary → jsonl must be the identity, and
// the intermediate must match the native binary encoding.
func TestConvertRoundTrip(t *testing.T) {
	jsonl := encode(t, obs.FormatJSONL)
	bin := runTool(t, []string{"-q", "-to", "binary"}, jsonl)
	if want := encode(t, obs.FormatBinary); !bytes.Equal(bin, want) {
		t.Errorf("JSONL→binary differs from native binary encoding")
	}
	if back := runTool(t, []string{"-q"}, bin); !bytes.Equal(back, jsonl) {
		t.Errorf("jsonl→binary→jsonl is not the identity")
	}
}

// TestConvertEmptyTrace: a header-only binary trace converts to an empty
// JSONL stream and back.
func TestConvertEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewSink(&buf, obs.FormatBinary)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := runTool(t, []string{"-q"}, buf.Bytes()); len(got) != 0 {
		t.Errorf("empty binary trace decoded to %q", got)
	}
	if got := runTool(t, []string{"-q", "-to", "binary"}, nil); !bytes.Equal(got, buf.Bytes()) {
		t.Errorf("empty JSONL did not produce a header-only binary trace")
	}
}

// TestFilterFlags: -kind, -run, and -stack must conjoin, and -stack -1
// selects pre-destination gates.
func TestFilterFlags(t *testing.T) {
	bin := encode(t, obs.FormatBinary)
	lines := func(out []byte) []string {
		s := strings.TrimSuffix(string(out), "\n")
		if s == "" {
			return nil
		}
		return strings.Split(s, "\n")
	}

	if got := lines(runTool(t, []string{"-q", "-kind", "send,ack"}, bin)); len(got) != 3 {
		t.Errorf("-kind send,ack kept %d events, want 3", len(got))
	}
	if got := lines(runTool(t, []string{"-q", "-run", "BFS/ctrl-tmap"}, bin)); len(got) != 2 {
		t.Errorf("-run kept %d events, want 2", len(got))
	}
	got := lines(runTool(t, []string{"-q", "-stack", "-1"}, bin))
	if len(got) != 1 || !strings.Contains(got[0], `"kind":"gate"`) {
		t.Errorf("-stack -1 kept %v, want the cond gate", got)
	}
	got = lines(runTool(t, []string{"-q", "-kind", "send", "-run", "LIB/ctrl-tmap", "-stack", "0"}, bin))
	if len(got) != 1 || !strings.Contains(got[0], `"cycle":40`) {
		t.Errorf("conjoined filters kept %v, want the cycle-40 send", got)
	}
}

// TestRunErrors: bad flags and inputs must surface as errors, not panics.
func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-to", "protobuf"},          // unknown output format
		{"-stack", "two"},            // non-numeric stack id
		{"a.trace", "b.trace"},       // more than one input
		{filepath.Join(t.TempDir(), "missing.trace")}, // unreadable input
	}
	for _, args := range cases {
		if err := run(args, strings.NewReader(""), &out, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	// Truncated binary input: magic parses, first record is cut off.
	bin := encode(t, obs.FormatBinary)
	if err := run([]string{"-q"}, bytes.NewReader(bin[:len(bin)-3]), &out, &out); err == nil {
		t.Error("truncated binary input must fail")
	}
}
