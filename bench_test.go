package tom

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// The experiment benchmarks regenerate the paper's figures/tables through
// the same harness cmd/tomx uses. One shared runner memoizes runs across
// benchmarks, so the full-system simulations execute once per `go test
// -bench` invocation regardless of b.N.
//
// TOM_BENCH_SCALE overrides the problem-size scale (default 1.0, the
// EXPERIMENTS.md setting; use e.g. 0.25 for a quick pass).

var (
	benchOnce   sync.Once
	benchRunner *core.Runner
)

func benchScale() float64 {
	if s := os.Getenv("TOM_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 1.0
}

func sharedRunner(b *testing.B) *core.Runner {
	benchOnce.Do(func() {
		benchRunner = core.NewRunner(benchScale())
	})
	return benchRunner
}

// benchmarkExperiment regenerates one figure/table and reports its rows.
func benchmarkExperiment(b *testing.B, id string) {
	r := sharedRunner(b)
	var tab *core.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = r.Experiment(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Printf("\n%s\n", tab)
	// Report each row's AVG as a benchmark metric so regressions in the
	// reproduced numbers are visible in benchstat output.
	for _, row := range tab.Rows {
		if n := len(row.Values); n > 0 {
			b.ReportMetric(row.Values[n-1], sanitizeMetric(row.Label))
		}
	}
}

func sanitizeMetric(label string) string {
	out := make([]rune, 0, len(label))
	for _, c := range label {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out) + "/avg"
}

// --- one benchmark per paper figure/table ---

func BenchmarkFig02IdealSpeedup(b *testing.B)        { benchmarkExperiment(b, "fig2") }
func BenchmarkFig03IdealMapping(b *testing.B)        { benchmarkExperiment(b, "fig3") }
func BenchmarkFig05FixedOffset(b *testing.B)         { benchmarkExperiment(b, "fig5") }
func BenchmarkFig06LearnedMapping(b *testing.B)      { benchmarkExperiment(b, "fig6") }
func BenchmarkFig08Speedup(b *testing.B)             { benchmarkExperiment(b, "fig8") }
func BenchmarkFig09Traffic(b *testing.B)             { benchmarkExperiment(b, "fig9") }
func BenchmarkFig10Energy(b *testing.B)              { benchmarkExperiment(b, "fig10") }
func BenchmarkFig11WarpCapacity(b *testing.B)        { benchmarkExperiment(b, "fig11") }
func BenchmarkFig12WarpCapacityTraffic(b *testing.B) { benchmarkExperiment(b, "fig12") }
func BenchmarkFig13InternalBW(b *testing.B)          { benchmarkExperiment(b, "fig13") }
func BenchmarkSec65CrossStackBW(b *testing.B)        { benchmarkExperiment(b, "xstack") }
func BenchmarkSec442Coherence(b *testing.B)          { benchmarkExperiment(b, "coherence") }
func BenchmarkSec66Area(b *testing.B)                { benchmarkExperiment(b, "area") }

// --- substrate micro-benchmarks ---

// BenchmarkSimulatorThroughput measures timing-simulator speed in simulated
// cycles per second on a small baseline run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := workloads.ByAbbr("SP")
	if err != nil {
		b.Fatal(err)
	}
	inst, err := w.Build(0.1)
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := inst.Clone()
		sys := sim.New(sim.BaselineConfig(), c.Mem, c.Alloc)
		if err := sys.Run(c.Launches); err != nil {
			b.Fatal(err)
		}
		cycles += sys.Stats().Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkFunctionalInterpreter measures the SIMT interpreter in
// thread-instructions per second.
func BenchmarkFunctionalInterpreter(b *testing.B) {
	w, err := workloads.ByAbbr("RD")
	if err != nil {
		b.Fatal(err)
	}
	inst, err := w.Build(0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := inst.Clone()
		if err := exec.RunFunctionalAll(c.Mem, c.Launches); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompilerPass measures offload-candidate selection over all
// workload kernels.
func BenchmarkCompilerPass(b *testing.B) {
	var kernels []*isa.Kernel
	for _, w := range workloads.All() {
		inst, err := w.Build(0.02)
		if err != nil {
			b.Fatal(err)
		}
		seen := map[string]bool{}
		for _, l := range inst.Launches {
			if !seen[l.Kernel.Name] {
				seen[l.Kernel.Name] = true
				kernels = append(kernels, l.Kernel)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range kernels {
			if _, err := compiler.Analyze(k, compiler.DefaultCostParams()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFlatMemory measures the backing store.
func BenchmarkFlatMemory(b *testing.B) {
	m := mem.NewFlat()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%(1<<22)) * 4
		m.Store4(addr, uint32(i))
		if m.Load4(addr) != uint32(i) {
			b.Fatal("readback mismatch")
		}
	}
}
