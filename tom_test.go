package tom

import "testing"

func TestPublicAPISurface(t *testing.T) {
	ws := Workloads()
	if len(ws) != 10 {
		t.Fatalf("Workloads() = %d, want 10", len(ws))
	}
	if len(WorkloadAbbrs()) != 10 {
		t.Fatalf("WorkloadAbbrs() wrong length")
	}
	if got := len(ExperimentIDs()); got != 16 {
		t.Errorf("ExperimentIDs() = %d, want 16", got)
	}
	cfg := DefaultConfig()
	if cfg.MainSMs != 64 || cfg.Stacks != 4 {
		t.Errorf("DefaultConfig does not match Table 1: %+v", cfg)
	}
	base := BaselineConfig()
	if base.MainSMs != 68 {
		t.Errorf("BaselineConfig SMs = %d, want 68", base.MainSMs)
	}
}

func TestRunAndSpeedupSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system simulation")
	}
	r := NewRunner(0.1)
	base, err := r.Run("SP", Baseline)
	if err != nil {
		t.Fatal(err)
	}
	ndp, err := r.Run("SP", ControlledBmap)
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.Cycles == 0 || ndp.Stats.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
	if ndp.Stats.OffloadsSent == 0 {
		t.Error("NDP run should offload")
	}
}

func TestAreaExperimentThroughFacade(t *testing.T) {
	tab, err := Experiment("area", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "area" || len(tab.Rows) == 0 {
		t.Errorf("unexpected table: %+v", tab)
	}
	if _, err := Experiment("nope", 0.1); err == nil {
		t.Error("unknown experiment should fail")
	}
}
