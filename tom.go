// Package tom is the public API of the TOM reproduction — Hsieh et al.,
// "Transparent Offloading and Mapping (TOM): Enabling Programmer-Transparent
// Near-Data Processing in GPU Systems", ISCA 2016 — built on a from-scratch
// cycle-level GPU + 3D-stacked-memory simulator written in pure Go.
//
// The package wires together three layers:
//
//   - The compiler pass that statically selects offload-candidate
//     instruction blocks via the paper's bandwidth cost-benefit model
//     (internal/compiler over the PTX-like ISA of internal/isa).
//   - The full-system timing simulator: main GPU (SMs, L1s, banked L2),
//     four HMC-like memory stacks with logic-layer SMs and FR-FCFS vaults,
//     off-chip links, the dynamic offloading-aggressiveness controller, and
//     the learning-phase data-mapping machinery (internal/sim).
//   - The evaluation harness that reruns every figure and table of the
//     paper over the ten Table 2 workloads (internal/core,
//     internal/workloads).
//
// Quick start:
//
//	res, err := tom.Run("LIB", tom.TOM, 1.0)      // full TOM system
//	base, err := tom.Run("LIB", tom.Baseline, 1.0) // 68-SM baseline
//	fmt.Printf("speedup: %.2fx\n", res.IPC()/base.IPC())
package tom

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// System selects a named system configuration.
type System = core.ConfigName

// The main configurations. See core for the full sensitivity-study set.
const (
	// Baseline is the 68-SM GPU without near-data processing.
	Baseline = core.CfgBaseline
	// TOM is the paper's full proposal: controlled offloading plus
	// programmer-transparent data mapping (ctrl + tmap).
	TOM = core.CfgCtrlTmap
	// IdealNDP is the Fig. 2 idealization.
	IdealNDP = core.CfgIdeal
	// UncontrolledNDP always offloads every candidate (no-ctrl + tmap).
	UncontrolledNDP = core.CfgNoCtrlTmap
	// ControlledBmap is ctrl offloading with the baseline mapping.
	ControlledBmap = core.CfgCtrlBmap
)

// Result is one measured run.
type Result = core.RunResult

// Table is a reproduced figure/table.
type Table = core.Table

// Config re-exports the simulator configuration (DefaultConfig mirrors the
// paper's Table 1).
type Config = sim.Config

// DefaultConfig returns the Table 1 system with TOM enabled.
func DefaultConfig() Config { return sim.DefaultConfig() }

// BaselineConfig returns the 68-SM no-NDP baseline.
func BaselineConfig() Config { return sim.BaselineConfig() }

// Workloads returns the ten Table 2 workloads.
func Workloads() []workloads.Workload { return workloads.All() }

// WorkloadAbbrs lists the workload abbreviations in paper order.
func WorkloadAbbrs() []string { return core.Abbrs() }

// Run simulates one workload under a named system configuration at the
// given problem scale (1.0 = benchmark default). Every run is verified
// against the functional reference model before results are returned.
func Run(abbr string, system System, scale float64) (*Result, error) {
	r := core.NewRunner(scale)
	return r.Run(abbr, system)
}

// NewRunner returns an experiment runner that memoizes runs and profiles
// across configurations — use it (rather than repeated Run calls) when
// comparing several systems on the same workloads. It is a Session with
// only the in-memory layer enabled; see NewSession for persistence.
func NewRunner(scale float64) *core.Runner { return core.NewRunner(scale) }

// SessionOptions configures a run session: problem scale, the optional
// persistent result cache (CacheDir/Fingerprint), and a progress callback.
type SessionOptions = core.Options

// Session is a run pipeline that memoizes results in memory, optionally
// persists them under SessionOptions.CacheDir keyed by run-spec digest and
// build fingerprint (see docs/RUNCACHE.md), and supports parallel observed
// runs over one shared metrics registry.
type Session = core.Session

// NewSession returns a Session. With a zero CacheDir it behaves exactly
// like NewRunner(opts.Scale).
func NewSession(opts SessionOptions) *Session { return core.NewSession(opts) }

// AdaptOptions configures an adaptive (profile → refine → rerun) run: the
// profiling scale fraction, the gate-rate refinement thresholds and cost
// model, and — for RunAdaptiveIterated — the iteration bound. The zero
// value selects the defaults.
type AdaptOptions = core.AdaptOptions

// AdaptiveRun bundles the profiling passes and the refined full run of one
// adaptive measurement, including the iteration history and convergence
// outcome of iterated runs.
type AdaptiveRun = core.AdaptiveRun

// AdaptIteration summarizes one profile → refine iteration of an iterated
// adaptive run.
type AdaptIteration = core.AdaptIteration

// RunAdaptive closes the offload-marking loop for one workload: a short
// profiling run records where the runtime gated each candidate (per PC),
// the compiler demotes candidates whose observed gate rate shows static
// marking got it wrong and re-tags the 2-bit bandwidth hint from observed
// trip counts, and the full run executes with the refined candidate set.
func RunAdaptive(abbr string, system System, scale float64, o AdaptOptions) (*AdaptiveRun, error) {
	return core.NewRunner(scale).RunAdaptive(abbr, system, o)
}

// RunAdaptiveIterated iterates the profile → refine loop to a fixed point
// (bounded by o.Iterations passes): each pass profiles with the refinement
// accumulated so far, and the loop stops when the demoted/re-tagged
// candidate sets stabilize. Sessions with a persistent cache also persist
// the converged refinement per workload (see docs/RUNCACHE.md), letting a
// later session install it without profiling; use a Session directly for
// that — this convenience constructor has no persistent layer.
func RunAdaptiveIterated(abbr string, system System, scale float64, o AdaptOptions) (*AdaptiveRun, error) {
	return core.NewRunner(scale).RunAdaptiveIterated(abbr, system, o)
}

// Experiment reproduces one of the paper's figures/tables by ID: "fig2",
// "fig3", "fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12",
// "fig13", "xstack", "coherence", "policies", "adapt", "mapstore", or
// "area".
func Experiment(id string, scale float64) (*Table, error) {
	r := core.NewRunner(scale)
	return r.Experiment(id)
}

// ExperimentIDs lists the reproducible experiments in paper order.
func ExperimentIDs() []string { return core.ExperimentIDs() }

// Speedup is a convenience: IPC ratio of system over Baseline for one
// workload.
func Speedup(abbr string, system System, scale float64) (float64, error) {
	r := core.NewRunner(scale)
	base, err := r.Run(abbr, Baseline)
	if err != nil {
		return 0, err
	}
	res, err := r.Run(abbr, system)
	if err != nil {
		return 0, err
	}
	if base.Stats.IPC() == 0 {
		return 0, fmt.Errorf("tom: baseline produced no work")
	}
	return res.Stats.IPC() / base.Stats.IPC(), nil
}
