// Package cfgx provides control-flow analysis over isa kernels: basic
// blocks, dominators and post-dominators (used for SIMT reconvergence),
// natural-loop detection, and register liveness. The offload-candidate
// compiler pass and the warp executor are both built on it.
package cfgx

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"
)

// Block is a basic block covering instructions [Start, End).
type Block struct {
	ID         int
	Start, End int
	Succs      []int // successor block IDs; exitID denotes kernel exit
	Preds      []int
}

// Graph is the CFG of a kernel. Block 0 is the entry block. A virtual exit
// node with ID len(Blocks) gathers all OpExit terminators.
type Graph struct {
	Kernel  *isa.Kernel
	Blocks  []*Block
	BlockOf []int // instruction index -> block ID
}

// ExitID returns the ID of the virtual exit node.
func (g *Graph) ExitID() int { return len(g.Blocks) }

// Build constructs the CFG for k.
func Build(k *isa.Kernel) (*Graph, error) {
	n := len(k.Instrs)
	leader := make([]bool, n)
	leader[0] = true
	for pc, in := range k.Instrs {
		switch in.Op {
		case isa.OpBra:
			leader[in.Target] = true
			if pc+1 < n {
				leader[pc+1] = true
			}
		case isa.OpExit:
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}
	g := &Graph{Kernel: k, BlockOf: make([]int, n)}
	for pc := 0; pc < n; {
		end := pc + 1
		for end < n && !leader[end] {
			end++
		}
		b := &Block{ID: len(g.Blocks), Start: pc, End: end}
		g.Blocks = append(g.Blocks, b)
		for i := pc; i < end; i++ {
			g.BlockOf[i] = b.ID
		}
		pc = end
	}
	exit := g.ExitID()
	addEdge := func(from, to int) {
		b := g.Blocks[from]
		for _, s := range b.Succs {
			if s == to {
				return
			}
		}
		b.Succs = append(b.Succs, to)
		if to != exit {
			t := g.Blocks[to]
			t.Preds = append(t.Preds, from)
		}
	}
	for _, b := range g.Blocks {
		last := k.Instrs[b.End-1]
		switch last.Op {
		case isa.OpExit:
			addEdge(b.ID, exit)
		case isa.OpBra:
			addEdge(b.ID, g.BlockOf[last.Target])
			if last.A.Kind != isa.OpdNone { // conditional: fall through too
				if b.End >= n {
					return nil, fmt.Errorf("cfgx: kernel %q: conditional branch at %d falls off the end", k.Name, b.End-1)
				}
				addEdge(b.ID, g.BlockOf[b.End])
			}
		default:
			if b.End >= n {
				return nil, fmt.Errorf("cfgx: kernel %q: control falls off the end at %d", k.Name, b.End-1)
			}
			addEdge(b.ID, g.BlockOf[b.End])
		}
	}
	return g, nil
}

// PostDominators returns, for each block, its immediate post-dominator
// block ID. The virtual exit node post-dominates everything; ipdom values
// may be ExitID(). Unreachable-from-exit blocks (infinite loops) get -1.
func (g *Graph) PostDominators() []int {
	nb := len(g.Blocks)
	exit := g.ExitID()
	// pdom sets via iterative dataflow on the reverse CFG, bitset-based.
	words := (nb + 2 + 63) / 64
	full := make([]uint64, words)
	for i := 0; i <= nb; i++ {
		full[i/64] |= 1 << (i % 64)
	}
	pdom := make([][]uint64, nb+1)
	for i := range pdom {
		pdom[i] = make([]uint64, words)
		copy(pdom[i], full)
	}
	// exit node post-dominates only itself.
	for w := range pdom[exit] {
		pdom[exit][w] = 0
	}
	pdom[exit][exit/64] = 1 << (exit % 64)

	changed := true
	tmp := make([]uint64, words)
	for changed {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			b := g.Blocks[i]
			if len(b.Succs) == 0 {
				continue
			}
			copy(tmp, full)
			for _, s := range b.Succs {
				for w := range tmp {
					tmp[w] &= pdom[s][w]
				}
			}
			tmp[i/64] |= 1 << (i % 64)
			for w := range tmp {
				if tmp[w] != pdom[i][w] {
					changed = true
					copy(pdom[i], tmp)
					break
				}
			}
		}
	}
	// Immediate post-dominator: the post-dominator (other than the block
	// itself) that is post-dominated by every other post-dominator of the
	// block, i.e. the closest one. Find it by picking the candidate whose
	// pdom set is largest (closest to the block).
	ipdom := make([]int, nb)
	for i := 0; i < nb; i++ {
		best, bestSize := -1, -1
		for j := 0; j <= nb; j++ {
			if j == i || pdom[i][j/64]&(1<<(j%64)) == 0 {
				continue
			}
			size := 0
			for _, w := range pdom[j] {
				size += bits.OnesCount64(w)
			}
			if size > bestSize {
				best, bestSize = j, size
			}
		}
		ipdom[i] = best
	}
	return ipdom
}

// backEdge is a CFG edge latch->header where header dominates latch.
type backEdge struct{ latch, header int }

// Dominators returns, for each block, the set of blocks dominating it,
// as bitsets (including itself).
func (g *Graph) Dominators() [][]uint64 {
	nb := len(g.Blocks)
	words := (nb + 63) / 64
	full := make([]uint64, words)
	for i := 0; i < nb; i++ {
		full[i/64] |= 1 << (i % 64)
	}
	dom := make([][]uint64, nb)
	for i := range dom {
		dom[i] = make([]uint64, words)
		copy(dom[i], full)
	}
	for w := range dom[0] {
		dom[0][w] = 0
	}
	dom[0][0] = 1
	changed := true
	tmp := make([]uint64, words)
	for changed {
		changed = false
		for i := 1; i < nb; i++ {
			b := g.Blocks[i]
			copy(tmp, full)
			if len(b.Preds) == 0 {
				// Unreachable: dominated by everything; leave as full.
				continue
			}
			for _, p := range b.Preds {
				for w := range tmp {
					tmp[w] &= dom[p][w]
				}
			}
			tmp[i/64] |= 1 << (i % 64)
			for w := range tmp {
				if tmp[w] != dom[i][w] {
					changed = true
					copy(dom[i], tmp)
					break
				}
			}
		}
	}
	return dom
}

// Loop describes a natural loop whose body is a contiguous instruction
// range — the shape the offload compiler can reason about. Header is the
// first block; the latch holds the backward branch.
type Loop struct {
	HeaderBlock int
	LatchBlock  int
	// StartPC/EndPC delimit the loop region [StartPC, EndPC): EndPC is the
	// instruction after the latch's backward branch.
	StartPC, EndPC int
	// Blocks lists member block IDs.
	Blocks []int
	// Contiguous reports whether every member block lies within
	// [StartPC, EndPC); only contiguous loops are offload candidates.
	Contiguous bool
}

// Loops detects natural loops. Loops sharing a header are merged.
func (g *Graph) Loops() []Loop {
	dom := g.Dominators()
	nb := len(g.Blocks)
	var edges []backEdge
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == g.ExitID() {
				continue
			}
			if dom[b.ID][s/64]&(1<<(s%64)) != 0 { // s dominates b
				edges = append(edges, backEdge{latch: b.ID, header: s})
			}
		}
	}
	byHeader := map[int]map[int]bool{}
	latchOf := map[int]int{}
	for _, e := range edges {
		body := byHeader[e.header]
		if body == nil {
			body = map[int]bool{e.header: true}
			byHeader[e.header] = body
		}
		// Nodes that reach the latch without passing through the header.
		stack := []int{e.latch}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if body[n] {
				continue
			}
			body[n] = true
			for _, p := range g.Blocks[n].Preds {
				stack = append(stack, p)
			}
		}
		if l, ok := latchOf[e.header]; !ok || g.Blocks[e.latch].End > g.Blocks[l].End {
			latchOf[e.header] = e.latch
		}
	}
	var loops []Loop
	for h := 0; h < nb; h++ {
		body, ok := byHeader[h]
		if !ok {
			continue
		}
		latch := latchOf[h]
		l := Loop{
			HeaderBlock: h,
			LatchBlock:  latch,
			StartPC:     g.Blocks[h].Start,
			EndPC:       g.Blocks[latch].End,
			Contiguous:  true,
		}
		for id := range body {
			l.Blocks = append(l.Blocks, id)
			if g.Blocks[id].Start < l.StartPC || g.Blocks[id].End > l.EndPC {
				l.Contiguous = false
			}
		}
		loops = append(loops, l)
	}
	// Deterministic order by StartPC.
	for i := 1; i < len(loops); i++ {
		for j := i; j > 0 && loops[j-1].StartPC > loops[j].StartPC; j-- {
			loops[j-1], loops[j] = loops[j], loops[j-1]
		}
	}
	return loops
}
