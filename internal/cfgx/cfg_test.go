package cfgx

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// diamond: if/else that reconverges, then exit.
func diamondKernel(t *testing.T) *isa.Kernel {
	t.Helper()
	b := isa.NewBuilder("diamond", 1)
	b.Setp(1, isa.CmpLT, isa.Sp(isa.SpGtid), isa.R(0))
	b.BraIfNot(isa.R(1), "else")
	b.MovI(2, 1)
	b.Bra("join")
	b.Label("else")
	b.MovI(2, 2)
	b.Label("join")
	b.Add(3, isa.R(2), isa.Imm(1))
	b.Exit()
	return b.MustBuild()
}

// loop: counted loop with live-in bound and live-out accumulator.
func loopKernel(t *testing.T) *isa.Kernel {
	t.Helper()
	b := isa.NewBuilder("loop", 2) // r0 = base, r1 = n
	b.MovI(2, 0)                   // i
	b.MovI(3, 0)                   // acc
	b.Label("top")
	b.Shl(4, isa.R(2), isa.Imm(2))
	b.Add(4, isa.R(0), isa.R(4))
	b.Ld(5, isa.R(4), 0)
	b.Add(3, isa.R(3), isa.R(5))
	b.Add(2, isa.R(2), isa.Imm(1))
	b.Setp(6, isa.CmpLT, isa.R(2), isa.R(1))
	b.BraIf(isa.R(6), "top")
	b.St(isa.R(0), 0, isa.R(3)) // acc is live out of the loop
	b.Exit()
	return b.MustBuild()
}

func TestBuildDiamond(t *testing.T) {
	g, err := Build(diamondKernel(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.Blocks))
	}
	// Entry has two successors (then, else).
	if len(g.Blocks[0].Succs) != 2 {
		t.Errorf("entry succs = %v", g.Blocks[0].Succs)
	}
	// Join block has two predecessors.
	join := g.BlockOf[5]
	if len(g.Blocks[join].Preds) != 2 {
		t.Errorf("join preds = %v", g.Blocks[join].Preds)
	}
}

func TestReconvergenceDiamond(t *testing.T) {
	k := diamondKernel(t)
	inf, err := Analyze(k)
	if err != nil {
		t.Fatal(err)
	}
	// The conditional branch at pc=1 must reconverge at the join (pc=5).
	if inf.Reconv[1] != 5 {
		t.Errorf("Reconv[1] = %d, want 5", inf.Reconv[1])
	}
	// The unconditional branch (pc=3) targets the join as well.
	if inf.Reconv[3] != 5 {
		t.Errorf("Reconv[3] = %d, want 5", inf.Reconv[3])
	}
}

func TestReconvergenceLoop(t *testing.T) {
	k := loopKernel(t)
	inf, err := Analyze(k)
	if err != nil {
		t.Fatal(err)
	}
	// Backward branch at pc=8 reconverges at the loop exit (pc=9).
	if inf.Reconv[8] != 9 {
		t.Errorf("Reconv[8] = %d, want 9", inf.Reconv[8])
	}
}

func TestLoopDetection(t *testing.T) {
	k := loopKernel(t)
	g, err := Build(k)
	if err != nil {
		t.Fatal(err)
	}
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.StartPC != 2 || l.EndPC != 9 {
		t.Errorf("loop region [%d,%d), want [2,9)", l.StartPC, l.EndPC)
	}
	if !l.Contiguous {
		t.Error("loop should be contiguous")
	}
}

func TestRegionLiveInOutLoop(t *testing.T) {
	k := loopKernel(t)
	inf, err := Analyze(k)
	if err != nil {
		t.Fatal(err)
	}
	liveIn, liveOut, err := inf.RegionLiveInOut(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Live-in: r0 (base), r1 (bound), r2 (i), r3 (acc).
	wantIn := uint64(1<<0 | 1<<1 | 1<<2 | 1<<3)
	if liveIn != wantIn {
		t.Errorf("liveIn = %#x, want %#x", liveIn, wantIn)
	}
	// Live-out: r3 (acc) is stored after the loop. r2, r4..r6 die.
	wantOut := uint64(1 << 3)
	if liveOut != wantOut {
		t.Errorf("liveOut = %#x, want %#x", liveOut, wantOut)
	}
}

func TestRegionErrors(t *testing.T) {
	inf, err := Analyze(loopKernel(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := inf.RegionLiveInOut(3, 9); err == nil {
		t.Error("non-leader start should fail")
	}
	// Truncated regions (ending mid-block) are permitted: the compiler
	// trims trailing branches, so [2,5) analyzes the block prefix.
	if _, _, err := inf.RegionLiveInOut(2, 5); err != nil {
		t.Errorf("truncated region should analyze: %v", err)
	}
	if _, _, err := inf.RegionLiveInOut(9, 2); err == nil {
		t.Error("inverted region should fail")
	}
}

func TestFallOffEndRejected(t *testing.T) {
	k := &isa.Kernel{Name: "bad", NumRegs: 2, Instrs: []isa.Instr{
		{Op: isa.OpMov, Dst: 1, HasDst: true, A: isa.Imm(0)},
	}}
	if _, err := Build(k); err == nil {
		t.Error("kernel falling off the end should fail CFG build")
	}
}

// naiveLiveness recomputes per-instruction liveness with a direct
// instruction-granularity fixpoint, independent of the block-based
// implementation, for cross-checking.
func naiveLiveness(k *isa.Kernel) []uint64 {
	n := len(k.Instrs)
	liveBefore := make([]uint64, n+1)
	succs := func(pc int) []int {
		in := k.Instrs[pc]
		switch in.Op {
		case isa.OpExit:
			return nil
		case isa.OpBra:
			if in.A.Kind == isa.OpdNone {
				return []int{in.Target}
			}
			return []int{in.Target, pc + 1}
		default:
			return []int{pc + 1}
		}
	}
	for changed := true; changed; {
		changed = false
		for pc := n - 1; pc >= 0; pc-- {
			var out uint64
			for _, s := range succs(pc) {
				if s < n {
					out |= liveBefore[s]
				}
			}
			in := k.Instrs[pc]
			nv := (out &^ in.DstRegs()) | in.SrcRegs()
			if nv != liveBefore[pc] {
				liveBefore[pc] = nv
				changed = true
			}
		}
	}
	return liveBefore
}

// randomKernel generates a random but well-formed kernel: straight-line
// ALU/memory code with a sprinkling of forward conditional branches and at
// most one backward branch, always terminated by exit.
func randomKernel(r *rand.Rand) *isa.Kernel {
	n := 5 + r.Intn(25)
	nregs := 4 + r.Intn(12)
	instrs := make([]isa.Instr, 0, n+1)
	randReg := func() isa.Reg { return isa.Reg(r.Intn(nregs)) }
	randOpd := func() isa.Operand {
		if r.Intn(3) == 0 {
			return isa.Imm(int64(r.Intn(100)))
		}
		return isa.R(randReg())
	}
	for i := 0; i < n; i++ {
		switch r.Intn(6) {
		case 0:
			instrs = append(instrs, isa.Instr{Op: isa.OpLdGlobal, Dst: randReg(), HasDst: true, A: isa.R(randReg())})
		case 1:
			instrs = append(instrs, isa.Instr{Op: isa.OpStGlobal, A: isa.R(randReg()), B: randOpd()})
		case 2:
			// Forward conditional branch (target fixed up below).
			instrs = append(instrs, isa.Instr{Op: isa.OpBra, A: isa.R(randReg()), Target: -1})
		default:
			instrs = append(instrs, isa.Instr{Op: isa.OpAdd, Dst: randReg(), HasDst: true, A: randOpd(), B: randOpd()})
		}
	}
	instrs = append(instrs, isa.Instr{Op: isa.OpExit})
	for pc := range instrs {
		if instrs[pc].Op == isa.OpBra {
			// Forward target strictly after pc, at most the exit.
			lo := pc + 1
			instrs[pc].Target = lo + r.Intn(len(instrs)-lo)
		}
	}
	return &isa.Kernel{Name: "rand", NumRegs: nregs, Instrs: instrs}
}

func TestLivenessMatchesNaiveOnRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		k := randomKernel(r)
		if err := k.Validate(); err != nil {
			t.Fatalf("trial %d: invalid kernel: %v", trial, err)
		}
		inf, err := Analyze(k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := naiveLiveness(k)
		for pc := range k.Instrs {
			if inf.LiveBefore[pc] != want[pc] {
				t.Fatalf("trial %d: LiveBefore[%d] = %#x, want %#x\nkernel:\n%s",
					trial, pc, inf.LiveBefore[pc], want[pc], isa.Disassemble(k))
			}
		}
	}
}

func TestDominatorsEntryDominatesAll(t *testing.T) {
	for _, k := range []*isa.Kernel{diamondKernel(t), loopKernel(t)} {
		g, err := Build(k)
		if err != nil {
			t.Fatal(err)
		}
		dom := g.Dominators()
		for i := range g.Blocks {
			if len(g.Blocks[i].Preds) == 0 && i != 0 {
				continue // unreachable
			}
			if dom[i][0]&1 == 0 {
				t.Errorf("kernel %s: entry does not dominate block %d", k.Name, i)
			}
			if dom[i][i/64]&(1<<(i%64)) == 0 {
				t.Errorf("kernel %s: block %d does not dominate itself", k.Name, i)
			}
		}
	}
}
