package cfgx

import (
	"fmt"

	"repro/internal/isa"
)

// Info bundles the analyses the executor and the offload compiler need.
type Info struct {
	Graph *Graph
	// Reconv[pc] is the SIMT reconvergence PC for the branch at pc: the
	// start of the branch block's immediate post-dominator. For
	// non-branch instructions the entry is -1. A value of len(Instrs)
	// means "reconverge at kernel exit".
	Reconv []int
	// LiveBefore[pc] is the set of general registers live immediately
	// before instruction pc; LiveBefore[len(Instrs)] is empty.
	LiveBefore []uint64
}

// Analyze builds the CFG and computes reconvergence points and liveness.
func Analyze(k *isa.Kernel) (*Info, error) {
	g, err := Build(k)
	if err != nil {
		return nil, err
	}
	n := len(k.Instrs)
	info := &Info{Graph: g, Reconv: make([]int, n), LiveBefore: make([]uint64, n+1)}

	ipdom := g.PostDominators()
	for pc := range info.Reconv {
		info.Reconv[pc] = -1
	}
	for _, b := range g.Blocks {
		last := b.End - 1
		if k.Instrs[last].Op != isa.OpBra {
			continue
		}
		ip := ipdom[b.ID]
		switch {
		case ip < 0 || ip == g.ExitID():
			info.Reconv[last] = n
		default:
			info.Reconv[last] = g.Blocks[ip].Start
		}
	}

	// Per-block use/def for upward-exposed uses.
	nb := len(g.Blocks)
	use := make([]uint64, nb)
	def := make([]uint64, nb)
	for _, b := range g.Blocks {
		for pc := b.Start; pc < b.End; pc++ {
			in := k.Instrs[pc]
			use[b.ID] |= in.SrcRegs() &^ def[b.ID]
			def[b.ID] |= in.DstRegs()
		}
	}
	liveIn := make([]uint64, nb)
	liveOut := make([]uint64, nb)
	for changed := true; changed; {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			var out uint64
			for _, s := range g.Blocks[i].Succs {
				if s != g.ExitID() {
					out |= liveIn[s]
				}
			}
			in := use[i] | (out &^ def[i])
			if out != liveOut[i] || in != liveIn[i] {
				liveOut[i], liveIn[i] = out, in
				changed = true
			}
		}
	}
	// Per-instruction live-before by backward scan within each block.
	for _, b := range g.Blocks {
		live := liveOut[b.ID]
		for pc := b.End - 1; pc >= b.Start; pc-- {
			in := k.Instrs[pc]
			live = (live &^ in.DstRegs()) | in.SrcRegs()
			info.LiveBefore[pc] = live
		}
	}
	return info, nil
}

// RegionLiveInOut computes, for the single-entry region [start, end) whose
// only exit is falling into end, the registers that must be transferred in
// (used before defined within the region) and out (defined within the
// region and live after it). These are the paper's REG_TX and REG_RX sets.
func (inf *Info) RegionLiveInOut(start, end int) (liveInMask, liveOutMask uint64, err error) {
	g := inf.Graph
	k := g.Kernel
	if start < 0 || end > len(k.Instrs) || start >= end {
		return 0, 0, fmt.Errorf("cfgx: bad region [%d,%d)", start, end)
	}
	if g.Blocks[g.BlockOf[start]].Start != start {
		return 0, 0, fmt.Errorf("cfgx: region start %d is not a block leader", start)
	}
	// Gather member blocks. The block containing end may be truncated at
	// end (the caller trimmed a trailing branch/exit); everything else
	// must lie fully inside the region.
	var members []int
	trunc := map[int]int{} // block ID -> effective end pc
	for _, b := range g.Blocks {
		if b.Start >= start && b.Start < end {
			e := b.End
			if e > end {
				e = end
			}
			members = append(members, b.ID)
			trunc[b.ID] = e
		}
	}
	inside := map[int]bool{}
	for _, id := range members {
		inside[id] = true
	}
	// Region-local liveness with boundary live-out = 0 gives the
	// upward-exposed uses at the region entry.
	use := map[int]uint64{}
	def := map[int]uint64{}
	var defAll uint64
	for _, id := range members {
		b := g.Blocks[id]
		var u, d uint64
		for pc := b.Start; pc < trunc[id]; pc++ {
			in := k.Instrs[pc]
			u |= in.SrcRegs() &^ d
			d |= in.DstRegs()
		}
		use[id], def[id] = u, d
		defAll |= d
	}
	liveIn := map[int]uint64{}
	for changed := true; changed; {
		changed = false
		for i := len(members) - 1; i >= 0; i-- {
			id := members[i]
			var out uint64
			for _, s := range g.Blocks[id].Succs {
				if inside[s] {
					out |= liveIn[s]
				}
			}
			in := use[id] | (out &^ def[id])
			if in != liveIn[id] {
				liveIn[id] = in
				changed = true
			}
		}
	}
	entry := g.BlockOf[start]
	return liveIn[entry], defAll & inf.LiveBefore[end], nil
}
