package link

import (
	"math/rand"
	"testing"
)

// TestRandomTrafficConservation: under random arrivals, every packet is
// delivered exactly once, in order, and sustained throughput never exceeds
// the configured bandwidth.
func TestRandomTrafficConservation(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		bw := 4 + rng.Float64()*60
		lat := int64(rng.Intn(50))
		l := New("t", bw, lat)
		total := 400
		sent := 0
		var sentBytes uint64
		delivered := make([]int, 0, total)
		deliveredAt := make([]int64, 0, total)
		var now int64
		for ; sent < total || l.Active(); now++ {
			if sent < total && rng.Intn(3) == 0 {
				id := sent
				sz := 4 + rng.Intn(200)
				sentBytes += uint64(sz)
				l.Send(Packet{Bytes: sz, Deliver: func(at int64) {
					delivered = append(delivered, id)
					deliveredAt = append(deliveredAt, at)
				}})
				sent++
			}
			l.Tick(now)
			if now > 1_000_000 {
				t.Fatal("link did not drain")
			}
		}
		if len(delivered) != total {
			t.Fatalf("trial %d: delivered %d of %d", trial, len(delivered), total)
		}
		for i, id := range delivered {
			if id != i {
				t.Fatalf("trial %d: out-of-order delivery %v", trial, delivered[:i+1])
			}
			if i > 0 && deliveredAt[i] < deliveredAt[i-1] {
				t.Fatalf("trial %d: delivery times ran backwards", trial)
			}
		}
		if l.BytesSent != sentBytes {
			t.Fatalf("trial %d: bytes sent %d, want %d", trial, l.BytesSent, sentBytes)
		}
		// Throughput bound: serialization alone needs bytes/bw cycles.
		minCycles := float64(sentBytes) / bw
		if float64(now) < minCycles-1 {
			t.Fatalf("trial %d: drained %d bytes in %d cycles, below the %.0f-cycle bandwidth bound",
				trial, sentBytes, now, minCycles)
		}
		if u := l.Utilization(now); u < 0 || u > 1.001 {
			t.Fatalf("trial %d: utilization %v out of range", trial, u)
		}
	}
}

// TestLatencyLowerBound: no packet can arrive before serialization plus
// propagation.
func TestLatencyLowerBound(t *testing.T) {
	l := New("t", 10, 25)
	var at int64 = -1
	l.Send(Packet{Bytes: 100, Deliver: func(now int64) { at = now }})
	for now := int64(0); at < 0 && now < 1000; now++ {
		l.Tick(now)
	}
	// 100 B at 10 B/cy = 10 cycles serialization, +25 propagation.
	if at < 34 {
		t.Fatalf("delivered at %d, before the 34-cycle lower bound", at)
	}
}
