package link

import (
	"math/rand"
	"testing"
)

// TestRandomTrafficConservation: under random arrivals, every packet is
// delivered exactly once, in order, and sustained throughput never exceeds
// the configured bandwidth.
func TestRandomTrafficConservation(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		bw := 4 + rng.Float64()*60
		lat := int64(rng.Intn(50))
		l := New("t", bw, lat)
		total := 400
		sent := 0
		var sentBytes uint64
		delivered := make([]int, 0, total)
		deliveredAt := make([]int64, 0, total)
		var now int64
		for ; sent < total || l.Active(); now++ {
			if sent < total && rng.Intn(3) == 0 {
				id := sent
				sz := 4 + rng.Intn(200)
				sentBytes += uint64(sz)
				l.Send(Packet{Bytes: sz, Deliver: func(at int64) {
					delivered = append(delivered, id)
					deliveredAt = append(deliveredAt, at)
				}}, now)
				sent++
			}
			l.Tick(now)
			if now > 1_000_000 {
				t.Fatal("link did not drain")
			}
		}
		if len(delivered) != total {
			t.Fatalf("trial %d: delivered %d of %d", trial, len(delivered), total)
		}
		for i, id := range delivered {
			if id != i {
				t.Fatalf("trial %d: out-of-order delivery %v", trial, delivered[:i+1])
			}
			if i > 0 && deliveredAt[i] < deliveredAt[i-1] {
				t.Fatalf("trial %d: delivery times ran backwards", trial)
			}
		}
		if l.BytesSent != sentBytes {
			t.Fatalf("trial %d: bytes sent %d, want %d", trial, l.BytesSent, sentBytes)
		}
		// Throughput bound: serialization alone needs bytes/bw cycles.
		minCycles := float64(sentBytes) / bw
		if float64(now) < minCycles-1 {
			t.Fatalf("trial %d: drained %d bytes in %d cycles, below the %.0f-cycle bandwidth bound",
				trial, sentBytes, now, minCycles)
		}
		if u := l.Utilization(now); u < 0 || u > 1.001 {
			t.Fatalf("trial %d: utilization %v out of range", trial, u)
		}
	}
}

// TestLatencyLowerBound: no packet can arrive before serialization plus
// propagation.
func TestLatencyLowerBound(t *testing.T) {
	l := New("t", 10, 25)
	var at int64 = -1
	l.Send(Packet{Bytes: 100, Deliver: func(now int64) { at = now }}, 0)
	for now := int64(0); at < 0 && now < 1000; now++ {
		l.Tick(now)
	}
	// 100 B at 10 B/cy = 10 cycles serialization, +25 propagation.
	if at < 34 {
		t.Fatalf("delivered at %d, before the 34-cycle lower bound", at)
	}
}

// TestLinkEventJumpMatchesPerCycle: advancing a link only at its NextEvent()
// cycles (plus externally scheduled send and utilization-probe cycles) must
// match ticking it every cycle exactly — same per-packet delivery times,
// same counters, and the same Channel Busy Monitor readings at every probe.
// The probes deliberately land at cycles the event run would otherwise skip,
// exercising the lazy bulk accounting path (account through now-1 on read).
func TestLinkEventJumpMatchesPerCycle(t *testing.T) {
	type send struct {
		at    int64
		bytes int
	}
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 40))
		bw := []float64{7.14, 28.57, 57.14, 1.999}[trial%4]
		lat := int64(5 + rng.Intn(40))
		var sched []send
		at := int64(0)
		for i := 0; i < 250; i++ {
			at += int64(rng.Intn(60))
			sched = append(sched, send{at: at, bytes: 4 + rng.Intn(300)})
		}
		var probes []int64
		for p := int64(50); p < at+200; p += int64(100 + rng.Intn(400)) {
			probes = append(probes, p)
		}

		run := func(jump bool) ([]int64, []float64, uint64, uint64, uint64) {
			l := New("t", bw, lat)
			deliveredAt := make([]int64, len(sched))
			var utils []float64
			si, pi := 0, 0
			now := int64(0)
			for si < len(sched) || l.Active() {
				for pi < len(probes) && probes[pi] == now {
					utils = append(utils, l.Utilization(now))
					pi++
				}
				for si < len(sched) && sched[si].at == now {
					id := si
					l.Send(Packet{Bytes: sched[si].bytes,
						Deliver: func(c int64) { deliveredAt[id] = c }}, now)
					si++
				}
				if !jump {
					l.Tick(now)
					now++
					continue
				}
				l.AdvanceTo(now)
				next := int64(1 << 62)
				if si < len(sched) && sched[si].at < next {
					next = sched[si].at
				}
				if pi < len(probes) && probes[pi] < next {
					next = probes[pi]
				}
				if h := l.NextEvent(); h >= 0 && h < next {
					next = h
				}
				if next <= now { // AdvanceTo(now) cleared everything due
					next = now + 1
				}
				if next == 1<<62 {
					break
				}
				now = next
				if now > 10_000_000 {
					t.Fatal("event run did not drain")
				}
			}
			return deliveredAt, utils, l.BytesSent, l.PacketsSent, l.BusyCycles
		}

		refAt, refU, refB, refP, refBusy := run(false)
		gotAt, gotU, gotB, gotP, gotBusy := run(true)
		for id := range refAt {
			if refAt[id] != gotAt[id] {
				t.Fatalf("trial %d (bw %g): packet %d delivered at %d per-cycle but %d event-jump",
					trial, bw, id, refAt[id], gotAt[id])
			}
		}
		if refB != gotB || refP != gotP || refBusy != gotBusy {
			t.Fatalf("trial %d (bw %g): counters diverged: bytes %d/%d packets %d/%d busy %d/%d",
				trial, bw, refB, gotB, refP, gotP, refBusy, gotBusy)
		}
		if len(refU) != len(gotU) {
			t.Fatalf("trial %d: probe counts differ: %d vs %d", trial, len(refU), len(gotU))
		}
		for i := range refU {
			if refU[i] != gotU[i] {
				t.Fatalf("trial %d (bw %g): probe %d at cycle %d read %v per-cycle but %v event-jump",
					trial, bw, i, probes[i], refU[i], gotU[i])
			}
		}
	}
}
