// Package link models the off-chip channels of the NDP system: the
// unidirectional GPU↔stack links (TX: GPU→memory, RX: memory→GPU, HMC-like)
// and the cross-stack links, each with a serialization bandwidth in
// bytes/cycle, a propagation latency, and a utilization monitor — the
// Channel Busy Monitor of §4.1 ❷ that dynamic offloading control consults.
package link

// Packet is a unit of transfer. Bytes includes all header overhead.
// Deliver runs at the receiving end after serialization + propagation.
type Packet struct {
	Bytes   int
	Deliver func(now int64)
}

type inflight struct {
	p  Packet
	at int64
}

// Link is a unidirectional bandwidth-limited channel.
type Link struct {
	Name          string
	BytesPerCycle float64
	PropLatency   int64

	queue     []Packet
	headRem   float64 // bytes of the head packet not yet serialized
	inflight  []inflight
	busWindow busyMonitor

	// Stats.
	BytesSent   uint64
	PacketsSent uint64
	BusyCycles  uint64
}

// New creates a link.
func New(name string, bytesPerCycle float64, propLatency int64) *Link {
	return &Link{Name: name, BytesPerCycle: bytesPerCycle, PropLatency: propLatency,
		busWindow: newBusyMonitor(1024)}
}

// Send enqueues a packet for transmission.
func (l *Link) Send(p Packet) {
	if len(l.queue) == 0 {
		l.headRem = float64(p.Bytes)
	}
	l.queue = append(l.queue, p)
}

// QueuedPackets returns the number of packets not yet fully serialized.
func (l *Link) QueuedPackets() int { return len(l.queue) }

// Active reports whether the link has pending work.
func (l *Link) Active() bool { return len(l.queue) > 0 || len(l.inflight) > 0 }

// Tick advances one cycle: serializes up to BytesPerCycle bytes and
// delivers packets whose propagation completed.
func (l *Link) Tick(now int64) {
	busy := len(l.queue) > 0
	if busy {
		l.BusyCycles++
		budget := l.BytesPerCycle
		for budget > 0 && len(l.queue) > 0 {
			if l.headRem > budget {
				l.headRem -= budget
				budget = 0
				break
			}
			budget -= l.headRem
			p := l.queue[0]
			l.queue = l.queue[1:]
			l.BytesSent += uint64(p.Bytes)
			l.PacketsSent++
			l.inflight = append(l.inflight, inflight{p: p, at: now + l.PropLatency})
			if len(l.queue) > 0 {
				l.headRem = float64(l.queue[0].Bytes)
			}
		}
	}
	l.busWindow.record(now, busy)
	for len(l.inflight) > 0 && l.inflight[0].at <= now {
		f := l.inflight[0]
		l.inflight = l.inflight[1:]
		if f.p.Deliver != nil {
			f.p.Deliver(now)
		}
	}
}

// Utilization returns the fraction of recent cycles (a 1024-cycle sliding
// window) the link spent serializing.
func (l *Link) Utilization() float64 { return l.busWindow.utilization() }

// Snapshot is a point-in-time view of a link's counters, for the
// observability layer's periodic sampling.
type Snapshot struct {
	BytesSent   uint64
	PacketsSent uint64
	BusyCycles  uint64
	Queued      int     // packets not yet fully serialized
	Utilization float64 // sliding-window busy fraction
}

// Snapshot captures the link's current counters and occupancy.
func (l *Link) Snapshot() Snapshot {
	return Snapshot{
		BytesSent:   l.BytesSent,
		PacketsSent: l.PacketsSent,
		BusyCycles:  l.BusyCycles,
		Queued:      len(l.queue),
		Utilization: l.Utilization(),
	}
}

// Busy reports whether recent utilization exceeds threshold — the Channel
// Busy Monitor's output (§3.3, §4.2 dynamic decision step 2).
func (l *Link) Busy(threshold float64) bool { return l.Utilization() > threshold }

// busyMonitor tracks utilization over a power-of-two sliding window using
// coarse buckets.
type busyMonitor struct {
	window  int64
	buckets [8]int64 // busy-cycle counts per sub-window
	current int64    // index of active bucket (derived from time)
	lastSub int64
}

func newBusyMonitor(window int64) busyMonitor {
	return busyMonitor{window: window, lastSub: -1}
}

func (m *busyMonitor) record(now int64, busy bool) {
	sub := now / (m.window / int64(len(m.buckets)))
	if sub != m.lastSub {
		// Advance; clear skipped buckets (bounded: a gap of a full
		// window clears everything).
		n := int64(len(m.buckets))
		if sub-m.lastSub >= n {
			for i := range m.buckets {
				m.buckets[i] = 0
			}
		} else {
			for s := m.lastSub + 1; s <= sub; s++ {
				m.buckets[s%n] = 0
			}
		}
		m.lastSub = sub
	}
	if busy {
		m.buckets[sub%int64(len(m.buckets))]++
	}
}

func (m *busyMonitor) utilization() float64 {
	var busy int64
	for _, b := range m.buckets {
		busy += b
	}
	return float64(busy) / float64(m.window)
}
