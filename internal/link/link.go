// Package link models the off-chip channels of the NDP system: the
// unidirectional GPU↔stack links (TX: GPU→memory, RX: memory→GPU, HMC-like)
// and the cross-stack links, each with a serialization bandwidth in
// bytes/cycle, a propagation latency, and a utilization monitor — the
// Channel Busy Monitor of §4.1 ❷ that dynamic offloading control consults.
//
// Serialization is deterministic, so the link never needs to be ticked
// every cycle: each packet's serialization-finish cycle is computed at Send
// time, and all per-cycle bookkeeping (BusyCycles, the busy-monitor
// buckets, BytesSent) advances lazily in bulk when the link is next
// observed. AdvanceTo(now) — which Tick aliases — is therefore free to
// jump across any span in which no packet is delivered: the skipped cycles
// are reconstructed exactly. The per-cycle reference loop simply calls
// AdvanceTo once per cycle and exercises the same code.
package link

import "math"

// Packet is a unit of transfer. Bytes includes all header overhead.
// Deliver runs at the receiving end after serialization + propagation.
type Packet struct {
	Bytes   int
	Deliver func(now int64)
}

// qpacket is a queued packet plus its precomputed serialization-finish
// cycle (absolute). Finish cycles within a burst are non-decreasing.
type qpacket struct {
	p      Packet
	finish int64
}

type inflight struct {
	p  Packet
	at int64
}

// Link is a unidirectional bandwidth-limited channel.
type Link struct {
	Name          string
	BytesPerCycle float64
	PropLatency   int64

	queue     []qpacket
	inflight  []inflight
	busWindow busyMonitor

	// burstStart is the first serialization cycle of the current burst (a
	// maximal span of back-to-back busy cycles); burstBytes accumulates the
	// byte prefix of packets in the burst, so each packet's finish cycle is
	// the first cycle k of the burst with k·BytesPerCycle ≥ its prefix.
	burstStart int64
	burstBytes float64
	// acctThrough is the last cycle whose serialization effects (counter
	// increments, busy-monitor records, queue→inflight moves) have been
	// applied. Accounting is prefix-based and idempotent: advancing to b
	// directly or via any intermediate cycles yields identical state.
	acctThrough int64

	// Stats.
	BytesSent   uint64
	PacketsSent uint64
	BusyCycles  uint64
}

// New creates a link.
func New(name string, bytesPerCycle float64, propLatency int64) *Link {
	return &Link{Name: name, BytesPerCycle: bytesPerCycle, PropLatency: propLatency,
		busWindow: newBusyMonitor(), acctThrough: -1}
}

// Send enqueues a packet for transmission at cycle `now`. Serialization
// starts this cycle if the link has not yet been advanced through `now`
// (the normal case: sends happen earlier in the cycle than link advances),
// and next cycle otherwise — exactly when a per-cycle Tick would first see
// the packet.
func (l *Link) Send(p Packet, now int64) {
	l.account(now - 1)
	if len(l.queue) == 0 {
		// acctThrough ≥ now-1 after the account call, so the burst starts
		// at `now` when the link has not been advanced this cycle yet, and
		// at now+1 when it has.
		l.burstStart = l.acctThrough + 1
		l.burstBytes = 0
	}
	l.burstBytes += float64(p.Bytes)
	// finish = burstStart + k - 1 for the smallest k ≥ 1 with
	// k·BytesPerCycle ≥ burstBytes. Nudge the ceil result to make the
	// comparison — not the division's rounding — authoritative.
	k := int64(math.Ceil(l.burstBytes / l.BytesPerCycle))
	if k < 1 {
		k = 1
	}
	for k > 1 && float64(k-1)*l.BytesPerCycle >= l.burstBytes {
		k--
	}
	for float64(k)*l.BytesPerCycle < l.burstBytes {
		k++
	}
	l.queue = append(l.queue, qpacket{p: p, finish: l.burstStart + k - 1})
}

// QueuedPackets returns the number of packets not yet moved to the
// propagation stage as of the last accounting point (loop diagnostics; for
// exact occupancy at a cycle use Snapshot, which accounts first).
func (l *Link) QueuedPackets() int { return len(l.queue) }

// Active reports whether the link has pending work.
func (l *Link) Active() bool { return len(l.queue) > 0 || len(l.inflight) > 0 }

// account applies serialization effects for all cycles through `target`:
// busy-cycle counting (one per cycle the queue is non-empty, matching the
// per-cycle reference), busy-monitor records, and moving packets whose
// serialization completed to the in-flight (propagation) stage. It fires
// no callbacks, so read paths (Utilization, Snapshot) may call it safely.
func (l *Link) account(target int64) {
	if target <= l.acctThrough {
		return
	}
	if len(l.queue) > 0 {
		a := l.acctThrough + 1
		if a < l.burstStart {
			a = l.burstStart
		}
		b := target
		if last := l.queue[len(l.queue)-1].finish; b > last {
			b = last
		}
		if a <= b {
			l.BusyCycles += uint64(b - a + 1)
			l.busWindow.addSpan(a, b)
		}
		for len(l.queue) > 0 && l.queue[0].finish <= target {
			q := l.queue[0]
			l.queue = l.queue[1:]
			l.BytesSent += uint64(q.p.Bytes)
			l.PacketsSent++
			l.inflight = append(l.inflight, inflight{p: q.p, at: q.finish + l.PropLatency})
		}
	}
	l.acctThrough = target
}

// AdvanceTo advances the link to cycle `now`: serialization effects for
// every cycle through `now` are applied in bulk, and packets whose
// propagation completed are delivered. Calling it once per cycle (the
// per-cycle reference loop) and calling it only at NextEvent cycles (the
// event-driven loop) produce identical state and identical delivery times.
func (l *Link) AdvanceTo(now int64) {
	l.account(now)
	for len(l.inflight) > 0 && l.inflight[0].at <= now {
		f := l.inflight[0]
		l.inflight = l.inflight[1:]
		if f.p.Deliver != nil {
			f.p.Deliver(now)
		}
	}
}

// Tick is the per-cycle spelling of AdvanceTo (the reference loop and the
// unit tests drive links one cycle at a time).
func (l *Link) Tick(now int64) { l.AdvanceTo(now) }

// SkipTo marks the link as advanced through `now` without doing any work.
// Valid only when the link is idle (nothing queued or in flight): an idle
// link's AdvanceTo would only move the accounting point anyway. The point
// still must move — Send uses it to decide whether the link has had its
// turn this cycle (burst starts now vs. now+1) — so the simulator calls
// this inlinable fast path instead of skipping idle links outright.
func (l *Link) SkipTo(now int64) {
	if now > l.acctThrough {
		l.acctThrough = now
	}
}

// NextEvent returns the next cycle at which this link does observable work
// — delivers a packet — or -1 when fully idle. Serialization progress in
// between is invisible (it is accounted lazily), so the event-driven loop
// may jump straight to this cycle. In-flight entries are sorted by
// delivery cycle because PropLatency is constant and finish cycles are
// monotone; the head queued packet's delivery can never precede them.
func (l *Link) NextEvent() int64 {
	next := int64(-1)
	if len(l.inflight) > 0 {
		next = l.inflight[0].at
	}
	if len(l.queue) > 0 {
		if t := l.queue[0].finish + l.PropLatency; next < 0 || t < next {
			next = t
		}
	}
	return next
}

// Utilization returns the fraction of the last 1024 cycles (ending at
// `now`) the link spent serializing. The read lazily accounts serialization
// through now-1 first — the state a per-cycle caller would observe before
// this cycle's Tick — so reads at arbitrary cycles are exact even when the
// link has not been advanced for a while.
func (l *Link) Utilization(now int64) float64 {
	l.account(now - 1)
	return l.busWindow.utilization(now)
}

// Snapshot is a point-in-time view of a link's counters, for the
// observability layer's periodic sampling.
type Snapshot struct {
	BytesSent   uint64
	PacketsSent uint64
	BusyCycles  uint64
	Queued      int     // packets not yet fully serialized
	Utilization float64 // sliding-window busy fraction
}

// Snapshot captures the link's counters and occupancy as of the start of
// cycle `now` (serialization accounted through now-1, matching what a
// per-cycle caller sees before this cycle's Tick).
func (l *Link) Snapshot(now int64) Snapshot {
	l.account(now - 1)
	return Snapshot{
		BytesSent:   l.BytesSent,
		PacketsSent: l.PacketsSent,
		BusyCycles:  l.BusyCycles,
		Queued:      len(l.queue),
		Utilization: l.busWindow.utilization(now),
	}
}

// Busy reports whether recent utilization exceeds threshold — the Channel
// Busy Monitor's output (§3.3, §4.2 dynamic decision step 2).
func (l *Link) Busy(threshold float64, now int64) bool {
	return l.Utilization(now) > threshold
}

// busyMonitor tracks utilization over a power-of-two sliding window using
// coarse buckets. Time advances lazily: reads (utilization) and bulk
// writes (addSpan) expire the sub-windows between the last touch and the
// cycle in hand, so a link that skips idle or even busy cycles reads
// identically to one recorded every cycle.
const (
	busyWindow   = 1024 // sliding-window length in cycles
	busySubShift = 7    // log2(window / #buckets): 1024/8 = 128-cycle buckets
)

type busyMonitor struct {
	buckets [8]int64 // busy-cycle counts per sub-window
	lastSub int64
}

func newBusyMonitor() busyMonitor {
	return busyMonitor{lastSub: -1}
}

// advance expires sub-windows between lastSub and the one containing now
// (bounded: a gap of a full window clears everything). Power-of-two window
// and bucket sizes keep this shift-and-mask only.
func (m *busyMonitor) advance(now int64) {
	sub := now >> busySubShift
	if sub == m.lastSub {
		return
	}
	n := int64(len(m.buckets))
	if sub-m.lastSub >= n {
		for i := range m.buckets {
			m.buckets[i] = 0
		}
	} else {
		for s := m.lastSub + 1; s <= sub; s++ {
			m.buckets[s&(n-1)] = 0
		}
	}
	m.lastSub = sub
}

// addSpan marks every cycle in [a, b] busy — the bulk equivalent of
// calling a per-cycle record for each. A read may already have advanced
// lastSub past part of the span (reads happen earlier in a cycle than link
// advances): sub-windows still inside the sliding window receive their
// counts without rewinding lastSub, and sub-windows that have already
// expired are skipped entirely — their cycles would have been recorded and
// then expired by a per-cycle caller, contributing nothing.
func (m *busyMonitor) addSpan(a, b int64) {
	n := int64(len(m.buckets))
	for s := a >> busySubShift; s <= b>>busySubShift; s++ {
		if s <= m.lastSub-n {
			continue // expired before this accounting ran
		}
		lo := s << busySubShift
		hi := lo + (1 << busySubShift) - 1
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		if s > m.lastSub {
			m.advance(lo)
		}
		m.buckets[s&(n-1)] += hi - lo + 1
	}
}

func (m *busyMonitor) utilization(now int64) float64 {
	m.advance(now)
	var busy int64
	for _, b := range m.buckets {
		busy += b
	}
	return float64(busy) / float64(busyWindow)
}
