// Package link models the off-chip channels of the NDP system: the
// unidirectional GPU↔stack links (TX: GPU→memory, RX: memory→GPU, HMC-like)
// and the cross-stack links, each with a serialization bandwidth in
// bytes/cycle, a propagation latency, and a utilization monitor — the
// Channel Busy Monitor of §4.1 ❷ that dynamic offloading control consults.
package link

// Packet is a unit of transfer. Bytes includes all header overhead.
// Deliver runs at the receiving end after serialization + propagation.
type Packet struct {
	Bytes   int
	Deliver func(now int64)
}

type inflight struct {
	p  Packet
	at int64
}

// Link is a unidirectional bandwidth-limited channel.
type Link struct {
	Name          string
	BytesPerCycle float64
	PropLatency   int64

	queue     []Packet
	headRem   float64 // bytes of the head packet not yet serialized
	inflight  []inflight
	busWindow busyMonitor

	// Stats.
	BytesSent   uint64
	PacketsSent uint64
	BusyCycles  uint64
}

// New creates a link.
func New(name string, bytesPerCycle float64, propLatency int64) *Link {
	return &Link{Name: name, BytesPerCycle: bytesPerCycle, PropLatency: propLatency,
		busWindow: newBusyMonitor()}
}

// Send enqueues a packet for transmission.
func (l *Link) Send(p Packet) {
	if len(l.queue) == 0 {
		l.headRem = float64(p.Bytes)
	}
	l.queue = append(l.queue, p)
}

// QueuedPackets returns the number of packets not yet fully serialized.
func (l *Link) QueuedPackets() int { return len(l.queue) }

// Active reports whether the link has pending work.
func (l *Link) Active() bool { return len(l.queue) > 0 || len(l.inflight) > 0 }

// Tick advances one cycle: serializes up to BytesPerCycle bytes and
// delivers packets whose propagation completed. Idle cycles are free to
// skip: the busy monitor advances lazily on reads, so a link that is not
// ticked while idle reports the same utilization as one ticked every cycle.
func (l *Link) Tick(now int64) {
	if len(l.queue) == 0 && len(l.inflight) == 0 {
		return
	}
	if len(l.queue) > 0 {
		l.BusyCycles++
		budget := l.BytesPerCycle
		for budget > 0 && len(l.queue) > 0 {
			if l.headRem > budget {
				l.headRem -= budget
				budget = 0
				break
			}
			budget -= l.headRem
			p := l.queue[0]
			l.queue = l.queue[1:]
			l.BytesSent += uint64(p.Bytes)
			l.PacketsSent++
			l.inflight = append(l.inflight, inflight{p: p, at: now + l.PropLatency})
			if len(l.queue) > 0 {
				l.headRem = float64(l.queue[0].Bytes)
			}
		}
		// Idle (propagate-only) ticks record nothing: the monitor advances
		// lazily on reads, so skipping the busy=false record is free.
		l.busWindow.record(now)
	}
	for len(l.inflight) > 0 && l.inflight[0].at <= now {
		f := l.inflight[0]
		l.inflight = l.inflight[1:]
		if f.p.Deliver != nil {
			f.p.Deliver(now)
		}
	}
}

// NextEvent returns the next cycle this link needs to tick: 0 while a
// packet is serializing (every cycle counts), the head in-flight packet's
// delivery cycle while only propagating, and -1 when fully idle. In-flight
// entries are sorted by delivery cycle because PropLatency is constant and
// Tick times are monotone.
func (l *Link) NextEvent() int64 {
	if len(l.queue) > 0 {
		return 0
	}
	if len(l.inflight) > 0 {
		return l.inflight[0].at
	}
	return -1
}

// Utilization returns the fraction of the last 1024 cycles (ending at
// `now`) the link spent serializing. Taking the read time explicitly lets
// the monitor expire stale sub-windows even when idle cycles were skipped.
func (l *Link) Utilization(now int64) float64 { return l.busWindow.utilization(now) }

// Snapshot is a point-in-time view of a link's counters, for the
// observability layer's periodic sampling.
type Snapshot struct {
	BytesSent   uint64
	PacketsSent uint64
	BusyCycles  uint64
	Queued      int     // packets not yet fully serialized
	Utilization float64 // sliding-window busy fraction
}

// Snapshot captures the link's current counters and occupancy as of `now`.
func (l *Link) Snapshot(now int64) Snapshot {
	return Snapshot{
		BytesSent:   l.BytesSent,
		PacketsSent: l.PacketsSent,
		BusyCycles:  l.BusyCycles,
		Queued:      len(l.queue),
		Utilization: l.Utilization(now),
	}
}

// Busy reports whether recent utilization exceeds threshold — the Channel
// Busy Monitor's output (§3.3, §4.2 dynamic decision step 2).
func (l *Link) Busy(threshold float64, now int64) bool {
	return l.Utilization(now) > threshold
}

// busyMonitor tracks utilization over a power-of-two sliding window using
// coarse buckets. Time advances lazily: both writes (record) and reads
// (utilization) expire the sub-windows between the last touch and `now`,
// so a link that skips idle cycles reads identically to one ticked every
// cycle — the skipped cycles would all have recorded busy=false.
const (
	busyWindow   = 1024 // sliding-window length in cycles
	busySubShift = 7    // log2(window / #buckets): 1024/8 = 128-cycle buckets
)

type busyMonitor struct {
	buckets [8]int64 // busy-cycle counts per sub-window
	lastSub int64
}

func newBusyMonitor() busyMonitor {
	return busyMonitor{lastSub: -1}
}

// advance expires sub-windows between lastSub and the one containing now
// (bounded: a gap of a full window clears everything). Power-of-two window
// and bucket sizes keep this shift-and-mask only — it runs once per busy
// link tick.
func (m *busyMonitor) advance(now int64) {
	sub := now >> busySubShift
	if sub == m.lastSub {
		return
	}
	n := int64(len(m.buckets))
	if sub-m.lastSub >= n {
		for i := range m.buckets {
			m.buckets[i] = 0
		}
	} else {
		for s := m.lastSub + 1; s <= sub; s++ {
			m.buckets[s&(n-1)] = 0
		}
	}
	m.lastSub = sub
}

// record marks `now` as a busy cycle.
func (m *busyMonitor) record(now int64) {
	m.advance(now)
	m.buckets[m.lastSub&int64(len(m.buckets)-1)]++
}

func (m *busyMonitor) utilization(now int64) float64 {
	m.advance(now)
	var busy int64
	for _, b := range m.buckets {
		busy += b
	}
	return float64(busy) / float64(busyWindow)
}
