package link

import "testing"

func TestSerializationAndPropagation(t *testing.T) {
	l := New("tx", 8, 10) // 8 B/cycle, 10 cycles propagation
	var deliveredAt int64 = -1
	l.Send(Packet{Bytes: 64, Deliver: func(now int64) { deliveredAt = now }}, 0)
	for now := int64(0); now < 100 && deliveredAt < 0; now++ {
		l.Tick(now)
	}
	// 64 B at 8 B/cycle = 8 cycles of serialization (finishing on the
	// 8th tick, t=7), plus 10 cycles propagation.
	if deliveredAt != 17 {
		t.Errorf("delivered at %d, want 17", deliveredAt)
	}
	if l.BytesSent != 64 || l.PacketsSent != 1 {
		t.Errorf("stats: %d bytes / %d packets", l.BytesSent, l.PacketsSent)
	}
}

func TestFIFOOrderAndConservation(t *testing.T) {
	l := New("tx", 16, 5)
	var order []int
	total := 0
	for i := 0; i < 20; i++ {
		i := i
		bytes := 16 + 16*(i%4)
		total += bytes
		l.Send(Packet{Bytes: bytes, Deliver: func(int64) { order = append(order, i) }}, 0)
	}
	for now := int64(0); now < 1000; now++ {
		l.Tick(now)
		if !l.Active() && len(order) == 20 {
			break
		}
	}
	if len(order) != 20 {
		t.Fatalf("delivered %d packets, want 20", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("out of order: %v", order)
		}
	}
	if l.BytesSent != uint64(total) {
		t.Errorf("bytes sent = %d, want %d (conservation)", l.BytesSent, total)
	}
}

func TestBigPacketSerializesGradually(t *testing.T) {
	l := New("tx", 4, 0)
	done := false
	l.Send(Packet{Bytes: 1000, Deliver: func(int64) { done = true }}, 0)
	var now int64
	for ; now < 10000 && !done; now++ {
		l.Tick(now)
	}
	// 1000/4 = 250 cycles.
	if now < 249 || now > 252 {
		t.Errorf("big packet took %d cycles, want ~250", now)
	}
}

func TestUtilizationSaturates(t *testing.T) {
	l := New("tx", 8, 0)
	for now := int64(0); now < 2048; now++ {
		if l.QueuedPackets() < 4 {
			l.Send(Packet{Bytes: 128}, now)
		}
		l.Tick(now)
	}
	if u := l.Utilization(2047); u < 0.9 {
		t.Errorf("saturated utilization = %v, want ~1", u)
	}
	if !l.Busy(0.5, 2047) {
		t.Error("link should report busy")
	}
	// Drain and go idle: utilization must decay.
	for now := int64(2048); now < 2048+4096; now++ {
		l.Tick(now)
	}
	if u := l.Utilization(2048 + 4095); u > 0.1 {
		t.Errorf("idle utilization = %v, want ~0", u)
	}
}

// TestUtilizationDecaysWithoutTicks pins the lazy-advance contract the
// event-driven simulator loop relies on: an idle link that is never ticked
// must read the same utilization as one ticked with busy=false every cycle.
func TestUtilizationDecaysWithoutTicks(t *testing.T) {
	l := New("tx", 8, 0)
	for now := int64(0); now < 2048; now++ {
		if l.QueuedPackets() < 4 {
			l.Send(Packet{Bytes: 128}, now)
		}
		l.Tick(now)
	}
	for now := int64(2048); l.Active(); now++ {
		l.Tick(now) // drain the tail without refilling
	}
	// No ticks at all during the idle window: a read far in the future must
	// see a fully decayed window.
	if u := l.Utilization(2048 + 4096); u != 0 {
		t.Errorf("idle utilization without ticks = %v, want 0", u)
	}
	if l.Busy(0.0001, 2048+4096+1) {
		t.Error("idle link must not report busy after the window expired")
	}
}

func TestThroughputMatchesBandwidth(t *testing.T) {
	l := New("tx", 57.14, 20) // the default GPU->stack link
	delivered := 0
	for now := int64(0); now < 10000; now++ {
		if l.QueuedPackets() < 8 {
			l.Send(Packet{Bytes: 144, Deliver: func(int64) { delivered++ }}, now)
		}
		l.Tick(now)
	}
	gbps := float64(l.BytesSent) / 10000 // bytes per cycle
	if gbps < 56 || gbps > 58 {
		t.Errorf("sustained throughput = %.2f B/cy, want ~57.14", gbps)
	}
}
