package area

import "testing"

func TestEstimateMatchesPaperNumbers(t *testing.T) {
	e := Estimate64()
	if e.AnalyzerBitsPerSM != 1920 {
		t.Errorf("analyzer bits/SM = %d, want 1920 (paper §6.6)", e.AnalyzerBitsPerSM)
	}
	if e.AllocTableBits != 9700 {
		t.Errorf("alloc table bits = %d, want 9700", e.AllocTableBits)
	}
	if e.MetadataBitsPerSM != 10320 {
		t.Errorf("metadata bits/SM = %d, want 10320", e.MetadataBitsPerSM)
	}
	wantTotal := 64*(1920+10320) + 9700
	if e.TotalBits != wantTotal {
		t.Errorf("total bits = %d, want %d", e.TotalBits, wantTotal)
	}
	if e.AreaMM2 < 0.10 || e.AreaMM2 > 0.12 {
		t.Errorf("area = %v mm^2, want ~0.11", e.AreaMM2)
	}
	if e.GPUFraction < 0.00015 || e.GPUFraction > 0.00021 {
		t.Errorf("GPU fraction = %v, want ~0.018%%", e.GPUFraction)
	}
}

func TestEstimateScalesWithSMs(t *testing.T) {
	small := For(16, 48)
	big := For(128, 48)
	if big.TotalBits <= small.TotalBits {
		t.Error("more SMs must cost more storage")
	}
	// The shared allocation table does not scale with SM count.
	if big.AllocTableBits != small.AllocTableBits {
		t.Error("allocation table is shared")
	}
}

func TestEstimateScalesWithWarps(t *testing.T) {
	one := For(64, 48)
	two := For(64, 96)
	if two.AnalyzerBitsPerSM != 2*one.AnalyzerBitsPerSM {
		t.Error("analyzer storage scales with concurrent warps")
	}
}
