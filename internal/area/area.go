// Package area reproduces the paper's §6.6 hardware-cost estimate: the
// storage added by TOM (Memory Map Analyzer, memory allocation table,
// offloading metadata table) in bits, and its silicon area at 40 nm via a
// per-bit constant standing in for CACTI 6.5.
package area

import (
	"repro/internal/mapping"
	"repro/internal/mem"
)

// Model parameters per §6.6.
const (
	// MetadataEntryBits is one offloading metadata table entry (begin/end
	// PCs, live-in/live-out bit vectors, 2-bit channel tag, condition).
	MetadataEntryBits = 258
	// MetadataEntries is the provisioned table depth (2x the maximum
	// observed across the paper's workloads).
	MetadataEntries = 40
	// AllocTableEntries is the provisioned allocation-table depth.
	AllocTableEntries = 100

	// MM2PerBit is the CACTI-substitute storage density at 40 nm,
	// calibrated so the paper's bit counts land on its 0.11 mm² total.
	MM2PerBit = 1.39e-7
	// GPUAreaMM2 is the modeled GPU die area (0.11 mm² = 0.018% of it).
	GPUAreaMM2 = 611.0
)

// Estimate is the §6.6 cost summary.
type Estimate struct {
	AnalyzerBitsPerSM int
	AllocTableBits    int // shared across SMs
	MetadataBitsPerSM int
	MainSMs           int
	TotalBits         int
	AreaMM2           float64
	GPUFraction       float64
}

// Estimate64 computes the estimate for the default 64-SM main GPU with 48
// warps per SM, matching the paper's numbers: 1,920 + 10,320 bits per SM
// and 9,700 bits shared.
func Estimate64() Estimate {
	return For(64, 48)
}

// For computes the estimate for a given SM count and warp capacity.
func For(mainSMs, warpsPerSM int) Estimate {
	e := Estimate{
		AnalyzerBitsPerSM: mapping.StorageBitsPerSM(warpsPerSM),
		AllocTableBits:    mem.StorageBits() * AllocTableEntries,
		MetadataBitsPerSM: MetadataEntryBits * MetadataEntries,
		MainSMs:           mainSMs,
	}
	e.TotalBits = mainSMs*(e.AnalyzerBitsPerSM+e.MetadataBitsPerSM) + e.AllocTableBits
	e.AreaMM2 = float64(e.TotalBits) * MM2PerBit
	e.GPUFraction = e.AreaMM2 / GPUAreaMM2
	return e
}
