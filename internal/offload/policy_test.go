package offload

import (
	"strings"
	"testing"

	"repro/internal/compiler"
)

// fakeEnv is a settable offload.Env for exercising the policy hooks without
// a simulator. StackOf maps by a coarse address shift so tests can place
// lines on chosen stacks.
type fakeEnv struct {
	stacks, vaults int
	cap            int
	stackShift     uint
	pending        map[int]int
	pendingVault   map[[2]int]int
	txBusy, rxBusy map[int]bool
	aluGate        float64
	controlled     bool
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{
		stacks: 4, vaults: 8, cap: 16, stackShift: 12,
		pending:      map[int]int{},
		pendingVault: map[[2]int]int{},
		txBusy:       map[int]bool{},
		rxBusy:       map[int]bool{},
	}
}

func (e *fakeEnv) Stacks() int               { return e.stacks }
func (e *fakeEnv) Vaults() int               { return e.vaults }
func (e *fakeEnv) StackOf(line uint64) int   { return int(line>>e.stackShift) % e.stacks }
func (e *fakeEnv) VaultOf(line uint64) int   { return int(line>>7) % e.vaults }
func (e *fakeEnv) Pending(s int) int         { return e.pending[s] }
func (e *fakeEnv) PendingVault(s, v int) int { return e.pendingVault[[2]int{s, v}] }
func (e *fakeEnv) StackCap() int             { return e.cap }
func (e *fakeEnv) TXBusy(s int) bool         { return e.txBusy[s] }
func (e *fakeEnv) RXBusy(s int) bool         { return e.rxBusy[s] }
func (e *fakeEnv) ALUGate() float64          { return e.aluGate }
func (e *fakeEnv) Controlled() bool          { return e.controlled }

func mustPolicy(t *testing.T, name string) Policy {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func condCand(minTrips int) *compiler.Candidate {
	return &compiler.Candidate{
		IsLoop: true,
		Trip:   compiler.TripInfo{Cond: &compiler.Condition{MinTrips: minTrips}},
	}
}

func TestRegistryHasAllPolicies(t *testing.T) {
	names := Names()
	for _, want := range []string{"coda", "ideal", "mpu", "tom"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("policy %q not registered (have %v)", want, names)
		}
	}
	for _, n := range names {
		p := mustPolicy(t, n)
		if p.Name() != n {
			t.Errorf("ByName(%q).Name() = %q", n, p.Name())
		}
		if p.Traits().DryRunAccesses < 1 {
			t.Errorf("policy %q has DryRunAccesses %d < 1", n, p.Traits().DryRunAccesses)
		}
	}
}

func TestByNameUnknownListsChoices(t *testing.T) {
	_, err := ByName("bogus")
	if err == nil {
		t.Fatal("unknown policy must error")
	}
	if !strings.Contains(err.Error(), "tom") {
		t.Errorf("error should list registered names, got %q", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register must panic")
		}
	}()
	Register("tom", func() Policy { return TOM{} })
}

func TestPolicyTraits(t *testing.T) {
	cases := []struct {
		name string
		want Traits
	}{
		{"tom", Traits{ObserveTrips: true, DryRunAccesses: 1}},
		{"ideal", Traits{DryRunAccesses: 1, ZeroCost: true, ForceColocate: true}},
		{"coda", Traits{ObserveTrips: true, DryRunAccesses: codaDefaultWindow}},
		{"mpu", Traits{ObserveTrips: true, DryRunAccesses: 1, SpawnLat: mpuSpawnLat}},
	}
	for _, c := range cases {
		if got := mustPolicy(t, c.name).Traits(); got != c.want {
			t.Errorf("%s traits = %+v, want %+v", c.name, got, c.want)
		}
	}
}

func TestPolicyParams(t *testing.T) {
	for name, want := range map[string]string{
		"tom": "", "ideal": "", "coda": "window=8", "mpu": "spawnlat=2",
	} {
		if got := mustPolicy(t, name).Params(); got != want {
			t.Errorf("%s params = %q, want %q", name, got, want)
		}
	}
}

func TestCondPreGate(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"non-conditional passes",
			Request{Cand: &compiler.Candidate{}, HasLeader: true, Trips: -1}, ""},
		{"no leader is nodest",
			Request{Cand: condCand(4), HasLeader: false, Trips: -1}, ReasonNoDest},
		{"below threshold is cond",
			Request{Cand: condCand(4), HasLeader: true, Trips: 3}, ReasonCond},
		{"at threshold passes",
			Request{Cand: condCand(4), HasLeader: true, Trips: 4}, ""},
	}
	for _, c := range cases {
		if got := condPreGate(&c.req); got != c.want {
			t.Errorf("%s: condPreGate = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestDestFirstLine(t *testing.T) {
	env := newFakeEnv()
	cases := []struct {
		name      string
		lines     []uint64
		bounded   bool
		want      string
		wantStack int
	}{
		{"no access is nodest", nil, false, ReasonNoDest, -1},
		{"truncated trace is destbound", nil, true, ReasonDestBound, -1},
		{"first line picks the stack", []uint64{2 << 12, 3 << 12}, false, "", 2},
		{"bounded with lines still resolves", []uint64{1 << 12}, true, "", 1},
	}
	for _, c := range cases {
		req := Request{Lines: c.lines, Bounded: c.bounded, Stack: -1}
		if got := destFirstLine(env, &req); got != c.want {
			t.Errorf("%s: destFirstLine = %q, want %q", c.name, got, c.want)
		}
		if req.Stack != c.wantStack {
			t.Errorf("%s: req.Stack = %d, want %d", c.name, req.Stack, c.wantStack)
		}
	}
}

func TestTomGate(t *testing.T) {
	mk := func(mut func(*fakeEnv, *Request)) (Env, *Request) {
		env := newFakeEnv()
		env.controlled = true
		req := &Request{Cand: &compiler.Candidate{SavesTX: true, SavesRX: true}, Stack: 1}
		if mut != nil {
			mut(env, req)
		}
		return env, req
	}
	cases := []struct {
		name string
		mut  func(*fakeEnv, *Request)
		want string
	}{
		{"uncontrolled never gates", func(e *fakeEnv, r *Request) {
			e.controlled = false
			e.pending[1] = e.cap // would be full otherwise
		}, ""},
		{"clean pass", nil, ""},
		{"alu gate over half-full", func(e *fakeEnv, r *Request) {
			e.aluGate = 0.5
			r.Cand.ALUFrac = 0.9
			e.pending[1] = e.cap/2 + 1
		}, ReasonALU},
		{"alu frac high but stack idle passes", func(e *fakeEnv, r *Request) {
			e.aluGate = 0.5
			r.Cand.ALUFrac = 0.9
		}, ""},
		{"tx busy without tx savings", func(e *fakeEnv, r *Request) {
			r.Cand.SavesTX = false
			e.txBusy[1] = true
		}, ReasonBusy},
		{"tx busy with tx savings passes", func(e *fakeEnv, r *Request) {
			e.txBusy[1] = true
		}, ""},
		{"rx busy without rx savings", func(e *fakeEnv, r *Request) {
			r.Cand.SavesRX = false
			e.rxBusy[1] = true
		}, ReasonBusy},
		{"pending at capacity", func(e *fakeEnv, r *Request) {
			e.pending[1] = e.cap
		}, ReasonFull},
	}
	for _, c := range cases {
		env, req := mk(c.mut)
		if got := tomGate(env, req); got != c.want {
			t.Errorf("%s: tomGate = %q, want %q", c.name, got, c.want)
		}
	}
}

// TestCodaSplitGate: coda keeps an instance on the GPU when its dry-run
// footprint spans more than one stack, and defers to TOM's control
// otherwise.
func TestCodaSplitGate(t *testing.T) {
	p := mustPolicy(t, "coda")
	env := newFakeEnv()
	env.controlled = true
	cand := &compiler.Candidate{SavesTX: true, SavesRX: true}

	split := &Request{Cand: cand, Stack: 0, Lines: []uint64{0 << 12, 1 << 12}}
	if got := p.Gate(env, split); got != ReasonSplit {
		t.Errorf("cross-stack footprint: Gate = %q, want %q", got, ReasonSplit)
	}
	co := &Request{Cand: cand, Stack: 2,
		Lines: []uint64{2 << 12, 2<<12 + 128, 2<<12 + 256}}
	if got := p.Gate(env, co); got != "" {
		t.Errorf("co-located footprint: Gate = %q, want pass", got)
	}
	single := &Request{Cand: cand, Stack: 3, Lines: []uint64{3 << 12}}
	if got := p.Gate(env, single); got != "" {
		t.Errorf("single-line footprint: Gate = %q, want pass", got)
	}
	// The TOM aggressiveness control still applies behind the split check.
	env.pending[2] = env.cap
	if got := p.Gate(env, co); got != ReasonFull {
		t.Errorf("co-located but full: Gate = %q, want %q", got, ReasonFull)
	}
}

// TestMPUDestAndVaultGate: mpu resolves a vault-granular destination and
// enforces its per-vault slot share.
func TestMPUDestAndVaultGate(t *testing.T) {
	p := mustPolicy(t, "mpu")
	env := newFakeEnv()
	line := uint64(2<<12 | 3<<7) // stack 2, vault 3

	req := &Request{Cand: &compiler.Candidate{}, Stack: -1, Vault: -1, Lines: []uint64{line}}
	if got := p.Dest(env, req); got != "" {
		t.Fatalf("Dest = %q, want pass", got)
	}
	if req.Stack != 2 || req.Vault != 3 {
		t.Fatalf("Dest picked stack %d vault %d, want 2/3", req.Stack, req.Vault)
	}
	if got := p.Gate(env, req); got != "" {
		t.Errorf("empty vault: Gate = %q, want pass", got)
	}

	// cap 16 over 8 vaults = 2 slots per vault.
	env.pendingVault[[2]int{2, 3}] = 2
	if got := p.Gate(env, req); got != ReasonVaultFull {
		t.Errorf("vault at share: Gate = %q, want %q", got, ReasonVaultFull)
	}
	// Another vault on the same stack is unaffected.
	other := &Request{Cand: req.Cand, Stack: 2, Vault: 4, Lines: req.Lines}
	if got := p.Gate(env, other); got != "" {
		t.Errorf("sibling vault: Gate = %q, want pass", got)
	}

	// The per-vault share clamps to at least one slot.
	env.cap = 4 // 4/8 = 0 -> clamp to 1
	env.pendingVault[[2]int{2, 4}] = 1
	if got := p.Gate(env, other); got != ReasonVaultFull {
		t.Errorf("clamped share: Gate = %q, want %q", got, ReasonVaultFull)
	}
}

// TestIdealGate: the ideal policy ignores channel state and only respects
// the hard pending cap.
func TestIdealGate(t *testing.T) {
	p := mustPolicy(t, "ideal")
	env := newFakeEnv()
	env.controlled = true
	env.txBusy[1], env.rxBusy[1] = true, true
	req := &Request{Cand: &compiler.Candidate{}, Stack: 1}
	if got := p.Gate(env, req); got != "" {
		t.Errorf("busy channels: ideal Gate = %q, want pass", got)
	}
	env.pending[1] = env.cap
	if got := p.Gate(env, req); got != ReasonFull {
		t.Errorf("at capacity: ideal Gate = %q, want %q", got, ReasonFull)
	}
}
