package offload

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/isa"
	"repro/internal/mapping"
)

func init() {
	Register("coda", func() Policy { return CODA{Window: codaDefaultWindow} })
}

// codaDefaultWindow matches the learning phase's per-instance observation
// window (sim's learnWindow): the co-location decision sees the same
// footprint the Memory Map Analyzer scores mappings with.
const codaDefaultWindow = 8

// CODA models co-location-aware offloading (PAPERS.md: "CODA: Enabling
// Co-location of Computation and Data"): offload a block only when its data
// actually co-locates with the destination. Candidate enumeration and the
// cost model are TOM's, but the destination dry run collects a window of
// accesses instead of stopping at the first, and the gate scores the
// instance with mapping.Colocation under the live data mapping — any
// instance whose lines split across stacks stays on the GPU (gate reason
// "split"), since offloading it would convert local accesses into
// cross-stack traffic.
type CODA struct {
	// Window is the dry-run access window scored for co-location.
	Window int
}

func (c CODA) Name() string   { return "coda" }
func (c CODA) Params() string { return fmt.Sprintf("window=%d", c.Window) }

func (c CODA) Traits() Traits {
	return Traits{ObserveTrips: true, DryRunAccesses: c.Window}
}

func (CODA) SelectCandidates(k *isa.Kernel, p compiler.CostParams) (*compiler.Metadata, error) {
	return compiler.Analyze(k, p)
}

func (CODA) PreGate(env Env, req *Request) string { return condPreGate(req) }
func (CODA) Dest(env Env, req *Request) string    { return destFirstLine(env, req) }

func (CODA) Gate(env Env, req *Request) string {
	if len(req.Lines) > 1 && mapping.Colocation(envMapPolicy{env}, req.Lines) < 1 {
		return ReasonSplit
	}
	return tomGate(env, req)
}

// envMapPolicy adapts the simulator's live line→stack mapping (baseline
// XOR or the learned consecutive-bit mapping, per range) to the
// mapping.Policy interface mapping.Colocation expects.
type envMapPolicy struct{ env Env }

func (p envMapPolicy) Stack(addr uint64) int { return p.env.StackOf(addr) }
func (p envMapPolicy) Name() string          { return "live" }
