package offload

import (
	"repro/internal/compiler"
	"repro/internal/isa"
)

func init() {
	Register("tom", func() Policy { return TOM{} })
	Register("ideal", func() Policy { return Ideal{} })
}

// TOM is the paper's scheme, bit-for-bit: conservative cost-model candidate
// selection (equations (3)/(4)), conditional-trip thresholds, first-access
// destination, and the §3.3 dynamic aggressiveness control.
type TOM struct{}

func (TOM) Name() string   { return "tom" }
func (TOM) Params() string { return "" }

func (TOM) Traits() Traits {
	return Traits{ObserveTrips: true, DryRunAccesses: 1}
}

func (TOM) SelectCandidates(k *isa.Kernel, p compiler.CostParams) (*compiler.Metadata, error) {
	return compiler.Analyze(k, p)
}

func (TOM) PreGate(env Env, req *Request) string { return condPreGate(req) }
func (TOM) Dest(env Env, req *Request) string    { return destFirstLine(env, req) }
func (TOM) Gate(env Env, req *Request) string    { return tomGate(env, req) }

// Ideal is the Fig. 2 idealization: TOM's candidate table with zero-cost
// transport and perfect co-location. Stack warp capacity still applies —
// the idealization removes offload overheads, not the logic layer's
// execution resources — and no trip threshold or channel gating runs.
type Ideal struct{}

func (Ideal) Name() string   { return "ideal" }
func (Ideal) Params() string { return "" }

func (Ideal) Traits() Traits {
	return Traits{DryRunAccesses: 1, ZeroCost: true, ForceColocate: true}
}

func (Ideal) SelectCandidates(k *isa.Kernel, p compiler.CostParams) (*compiler.Metadata, error) {
	return compiler.Analyze(k, p)
}

func (Ideal) PreGate(env Env, req *Request) string { return "" }
func (Ideal) Dest(env Env, req *Request) string    { return destFirstLine(env, req) }

func (Ideal) Gate(env Env, req *Request) string {
	if env.Pending(req.Stack) >= env.StackCap() {
		return ReasonFull
	}
	return ""
}
