// Package offload defines the pluggable offload-policy layer: the decision
// logic the paper hardwires — compiler candidate selection (§3.1), the
// runtime gating pipeline (§3.3/§4.2), and destination choice (§4.2
// footnote 4) — factored behind one interface so rival schemes (CODA's
// co-location-aware offloading, near-bank MPU offload) can be A/B-tested
// against TOM over the same workload matrix.
//
// The simulator drives a policy through three hooks per candidate entry,
// in order:
//
//  1. PreGate — before the destination dry run (TOM's conditional-trip
//     threshold lives here; no destination is known yet).
//  2. Dest — pick the destination stack (and optionally vault) from the
//     dry-run access trace.
//  3. Gate — aggressiveness control with the destination known (channel
//     busy, pending caps, co-location, per-vault slots).
//
// Each hook returns a gate reason ("" = proceed); every non-empty reason is
// accounted in sim.Stats, the per-PC gate profile, and the observer, so the
// conservation invariant CandidateInstances == Sent + Skipped + LearnEntries
// holds for every policy.
package offload

import (
	"fmt"
	"sort"

	"repro/internal/compiler"
	"repro/internal/isa"
)

// Gate reasons. The first five are TOM's original skip reasons; the last
// three were added with the policy layer (destbound distinguishes a
// dry-run step-bound bail-out from a genuine no-destination, split and
// vaultfull belong to the CODA and MPU policies).
const (
	ReasonBusy      = "busy"
	ReasonFull      = "full"
	ReasonCond      = "cond"
	ReasonALU       = "alu"
	ReasonNoDest    = "nodest"
	ReasonDestBound = "destbound"
	ReasonSplit     = "split"
	ReasonVaultFull = "vaultfull"
)

// Traits are the static execution-model properties of a policy — the knobs
// the simulator reads outside the per-entry hook sequence.
type Traits struct {
	// ObserveTrips: run TOM's conditional trip-count observation (§4.2
	// step 1) at every candidate entry, feeding the per-PC profile.
	ObserveTrips bool
	// DryRunAccesses bounds how many global-memory line addresses the
	// destination dry run collects (1 = stop at the first access, TOM's
	// footnote-4 behavior; larger windows let a policy inspect the
	// instance's spatial footprint).
	DryRunAccesses int
	// ZeroCost models free offload transport (the Fig. 2 idealization):
	// requests spawn directly with no pipeline/link traversal, acks return
	// in one cycle, stack warp slots oversubscribe, and no coherence
	// invalidation cost is charged on return.
	ZeroCost bool
	// ForceColocate steers every stack-SM memory access to its own stack
	// (perfect co-location, again the Fig. 2 idealization).
	ForceColocate bool
	// SpawnLat overrides Config.OffloadPipeLat when > 0 (cycles from the
	// launch decision to the request entering the TX path). Near-bank
	// offload models a cheaper spawn.
	SpawnLat int64
}

// Request is one candidate-entry decision in flight, filled incrementally
// by the simulator and the policy hooks.
type Request struct {
	Cand *compiler.Candidate
	// HasLeader: the warp has at least one active lane.
	HasLeader bool
	// Trips is the observed leader-lane trip count for conditional-hinted
	// candidates, -1 when unknown/unobserved.
	Trips int
	// Lines holds the dry run's collected global-memory line addresses
	// (deduplicated, first access first); empty when the dry run found no
	// access.
	Lines []uint64
	// Bounded: the dry run hit its step bound while still inside the
	// region — the access trace is truncated, not absent.
	Bounded bool
	// Stack/Vault are the chosen destination (-1 until Dest succeeds;
	// Vault stays -1 for stack-granular policies).
	Stack, Vault int
}

// Env is the simulator state a policy may consult, bound to the deciding
// cycle. Implemented by internal/sim.
type Env interface {
	Stacks() int
	Vaults() int // vaults per stack
	// StackOf / VaultOf map a line address under the active data mapping.
	StackOf(line uint64) int
	VaultOf(line uint64) int
	// Pending counts offloads in flight to a stack; PendingVault the
	// subset bound to one vault. StackCap is the stack-SM warp capacity
	// (the paper's pending-offload limit).
	Pending(stack int) int
	PendingVault(stack, vault int) int
	StackCap() int
	// TXBusy/RXBusy are the channel-busy tags (§3.3) at the deciding cycle.
	TXBusy(stack int) bool
	RXBusy(stack int) bool
	// ALUGate returns Config.ALUGate (0 = disabled).
	ALUGate() float64
	// Controlled reports whether dynamic aggressiveness control is on
	// (OffloadControlled); TOM's Gate is a no-op without it.
	Controlled() bool
}

// Policy is one point in the offload design space.
type Policy interface {
	// Name is the registry key, folded into run-spec digests.
	Name() string
	// Params renders the policy's parameters for digesting ("" if none).
	Params() string
	Traits() Traits
	// SelectCandidates builds the kernel's offload metadata table.
	SelectCandidates(k *isa.Kernel, p compiler.CostParams) (*compiler.Metadata, error)
	// PreGate may veto before the destination dry run. Returns a gate
	// reason or "".
	PreGate(env Env, req *Request) string
	// Dest chooses req.Stack (and optionally req.Vault) from the dry-run
	// trace. Returns a gate reason or "".
	Dest(env Env, req *Request) string
	// Gate is the aggressiveness control with the destination known.
	// Returns a gate reason or "".
	Gate(env Env, req *Request) string
}

// --- Registry ---

var registry = map[string]func() Policy{}

// Register installs a policy constructor under its name. Called from
// init(); duplicate names panic.
func Register(name string, mk func() Policy) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("offload: duplicate policy %q", name))
	}
	registry[name] = mk
}

// ByName returns a fresh instance of the named policy.
func ByName(name string) (Policy, error) {
	mk, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("offload: unknown policy %q (have %v)", name, Names())
	}
	return mk(), nil
}

// Names lists the registered policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- Shared hook helpers ---

// condPreGate is TOM's conditional-offload threshold (§4.2 step 1): a
// conditional-hinted candidate offloads only when the leader lane's trip
// count reaches the compiler's break-even hint. A warp with no active lane
// cannot derive a destination either, so it counts as nodest.
func condPreGate(req *Request) string {
	if !req.Cand.Conditional() {
		return ""
	}
	if !req.HasLeader {
		return ReasonNoDest
	}
	if req.Trips < req.Cand.Trip.Cond.MinTrips {
		return ReasonCond
	}
	return ""
}

// destFirstLine picks the stack of the instance's first global-memory
// access (§4.2 footnote 4). An empty trace that hit the dry-run step bound
// is reported as destbound — the region is diagnosably too long to scan —
// rather than folded into nodest.
func destFirstLine(env Env, req *Request) string {
	if len(req.Lines) == 0 {
		if req.Bounded {
			return ReasonDestBound
		}
		return ReasonNoDest
	}
	req.Stack = env.StackOf(req.Lines[0])
	return ""
}

// tomGate is TOM's dynamic aggressiveness control (§3.3): the ALU-ratio
// extension gate, the per-channel busy tags consulted against the 2-bit
// savings tag, and the pending-offload cap. All of it applies only under
// OffloadControlled.
func tomGate(env Env, req *Request) string {
	if !env.Controlled() {
		return ""
	}
	c, dest := req.Cand, req.Stack
	if g := env.ALUGate(); g > 0 && c.ALUFrac > g && env.Pending(dest) > env.StackCap()/2 {
		return ReasonALU
	}
	if !c.SavesTX && env.TXBusy(dest) {
		return ReasonBusy
	}
	if !c.SavesRX && env.RXBusy(dest) {
		return ReasonBusy
	}
	if env.Pending(dest) >= env.StackCap() {
		return ReasonFull
	}
	return ""
}
