package offload

import (
	"strconv"

	"repro/internal/compiler"
	"repro/internal/isa"
)

func init() {
	Register("mpu", func() Policy { return MPU{SpawnLat: mpuSpawnLat} })
}

// mpuSpawnLat is the near-bank spawn cost in cycles: the offload unit sits
// in the vault's logic, so dispatch skips most of TOM's 10-cycle offload
// pipeline (request packing, metadata lookup, TX arbitration).
const mpuSpawnLat = 2

// MPU models near-bank offload (PAPERS.md: MPU's near-bank SIMT computing):
// compute units live next to the DRAM banks, so offload is fine-grained —
// single load/store-centred straight-line snippets instead of whole loops —
// and the destination resolves down to the vault. The spawn is cheap
// (SpawnLat) but execution slots are per-vault: each vault's near-bank unit
// holds only its share of the stack's warp capacity, so a vault with its
// slots full gates further offloads to it (reason "vaultfull") while other
// vaults keep accepting.
type MPU struct {
	// SpawnLat is the near-bank dispatch latency (cycles).
	SpawnLat int64
}

func (m MPU) Name() string { return "mpu" }

func (m MPU) Params() string { return "spawnlat=" + strconv.FormatInt(m.SpawnLat, 10) }

func (m MPU) Traits() Traits {
	return Traits{ObserveTrips: true, DryRunAccesses: 1, SpawnLat: m.SpawnLat}
}

// SelectCandidates enumerates at near-bank granularity: loops are not
// offloaded as units (their iterations stream through the banks one body at
// a time), straight-line blocks are cut after every global memory
// instruction, and every legal snippet is admitted — the per-vault slot
// limit, not the bandwidth cost model, is the selectivity.
func (MPU) SelectCandidates(k *isa.Kernel, p compiler.CostParams) (*compiler.Metadata, error) {
	return compiler.AnalyzeWith(k, compiler.SelectOptions{
		Cost:         p,
		SkipLoops:    true,
		MaxBlockMems: 1,
		Accept:       compiler.AcceptAll,
	})
}

func (MPU) PreGate(env Env, req *Request) string { return condPreGate(req) }

func (MPU) Dest(env Env, req *Request) string {
	if r := destFirstLine(env, req); r != "" {
		return r
	}
	req.Vault = env.VaultOf(req.Lines[0])
	return ""
}

// Gate enforces the per-vault slot limit: the stack's warp capacity divided
// evenly over its vaults, minimum one slot per vault.
func (MPU) Gate(env Env, req *Request) string {
	cap := env.StackCap() / env.Vaults()
	if cap < 1 {
		cap = 1
	}
	if env.PendingVault(req.Stack, req.Vault) >= cap {
		return ReasonVaultFull
	}
	return ""
}
