package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestWarmObservedSharedRegistry: parallel observed runs over one shared
// registry must produce, per run, exactly the snapshot a serial run with a
// private registry produces, and the shared trace must stay attributable
// through run labels. Runs under -race in CI (the parallel-observed-runs
// acceptance check).
func TestWarmObservedSharedRegistry(t *testing.T) {
	s := NewSession(Options{Scale: 0.05})
	pairs := []Pair{
		{Abbr: "LIB", Config: CfgCtrlBmap},
		{Abbr: "LIB", Config: CfgCtrlTmap},
		{Abbr: "SP", Config: CfgCtrlBmap},
		{Abbr: "SP", Config: CfgCtrlTmap},
	}
	trace := &obs.CollectSink{}
	snaps, err := s.WarmObserved(pairs, ObsPolicy{
		Registry:    obs.NewRegistry(),
		Trace:       trace,
		SampleEvery: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != len(pairs) {
		t.Fatalf("snapshots for %d runs, want %d", len(snaps), len(pairs))
	}

	// Each scoped snapshot equals the serial, private-registry snapshot.
	for _, p := range pairs {
		private := obs.New()
		private.SampleEvery = 512
		res, err := s.RunObserved(p.Abbr, p.Config, private)
		if err != nil {
			t.Fatal(err)
		}
		want := private.Registry.Snapshot()
		got := snaps[p]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: scoped snapshot differs from serial run", p.Key())
		}
		if got.Counters["offload.sent"] != res.Stats.OffloadsSent {
			t.Errorf("%s: snapshot sent = %d, stats say %d",
				p.Key(), got.Counters["offload.sent"], res.Stats.OffloadsSent)
		}
	}

	// Every trace event is labeled with a known run.
	valid := map[string]bool{}
	for _, p := range pairs {
		valid[p.Key()] = true
	}
	evs := trace.Events()
	if len(evs) == 0 {
		t.Fatal("shared trace collected nothing")
	}
	for _, ev := range evs {
		if !valid[ev.Run] {
			t.Fatalf("trace event with unknown run label %q", ev.Run)
		}
	}
}

// TestWarmObservedTraceSampling: the policy's per-kind sampling must thin
// the shared trace while keeping every run and kind represented.
func TestWarmObservedTraceSampling(t *testing.T) {
	pairs := []Pair{
		{Abbr: "LIB", Config: CfgCtrlBmap},
		{Abbr: "SP", Config: CfgCtrlBmap},
	}
	full := &obs.CollectSink{}
	if _, err := NewSession(Options{Scale: 0.05}).WarmObserved(pairs, ObsPolicy{
		Registry: obs.NewRegistry(), Trace: full,
	}); err != nil {
		t.Fatal(err)
	}
	sampled := &obs.CollectSink{}
	if _, err := NewSession(Options{Scale: 0.05}).WarmObserved(pairs, ObsPolicy{
		Registry: obs.NewRegistry(), Trace: sampled, TraceSample: 16,
	}); err != nil {
		t.Fatal(err)
	}
	nf, ns := len(full.Events()), len(sampled.Events())
	if ns == 0 || ns >= nf {
		t.Fatalf("sampling kept %d of %d events", ns, nf)
	}
	// The send lifecycle step survives for every run.
	seen := map[string]bool{}
	for _, ev := range sampled.Events() {
		if ev.Kind == obs.EvSend {
			seen[ev.Run] = true
		}
	}
	for _, p := range pairs {
		if !seen[p.Key()] {
			t.Errorf("%s: no send events survived sampling", p.Key())
		}
	}
}

// TestWarmSpecsObservedFlushesFailedRuns extends the sampling-conservation
// check with a failing run: a run that dies mid-simulation has already
// pushed events through its sampling sink, so its per-kind trace_sampled
// summaries must still reach the shared trace — otherwise the trace
// under-reports what was sampled away exactly when a reader most needs to
// know (the run it is debugging is the one that failed). The failure is
// induced by truncating MaxCycles just below the run's natural length, so
// nearly the whole event stream exists before the error.
func TestWarmSpecsObservedFlushesFailedRuns(t *testing.T) {
	const scale = 0.05
	s := NewSession(Options{Scale: scale})

	// Learn the failing run's natural length first (memoized, cheap).
	natural, err := s.Run("SP", CfgCtrlBmap)
	if err != nil {
		t.Fatal(err)
	}
	good, err := NewRunSpec("LIB", scale, CfgCtrlBmap)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := NewRunSpec("SP", scale, CfgCtrlBmap)
	if err != nil {
		t.Fatal(err)
	}
	bad.Cfg.MaxCycles = natural.Stats.Cycles - 2 // quiescence is unreachable

	trace := &obs.CollectSink{}
	snaps, err := s.WarmSpecsObserved([]RunSpec{good, bad}, ObsPolicy{
		Registry:    obs.NewRegistry(),
		Trace:       trace,
		TraceSample: 8,
	})
	if err == nil {
		t.Fatal("the truncated run must fail")
	}
	if !strings.Contains(err.Error(), "SP/ctrl-bmap") || !strings.Contains(err.Error(), "MaxCycles") {
		t.Fatalf("unexpected failure: %v", err)
	}
	if snaps[0] == nil {
		t.Fatal("the good run must still snapshot")
	}
	if snaps[1] != nil {
		t.Fatal("the failed run must not snapshot")
	}

	// Conservation per run label, failed run included: every kind that kept
	// events has a trace_sampled summary whose Kept matches the events that
	// actually reached the trace, with N >= Kept.
	kept := map[string]map[string]int{}
	summaries := map[string]map[string]obs.Event{}
	for _, ev := range trace.Events() {
		if ev.Kind == obs.EvTraceSampled {
			if summaries[ev.Run] == nil {
				summaries[ev.Run] = map[string]obs.Event{}
			}
			summaries[ev.Run][ev.Reason] = ev
			continue
		}
		if kept[ev.Run] == nil {
			kept[ev.Run] = map[string]int{}
		}
		kept[ev.Run][ev.Kind]++
	}
	for _, label := range []string{good.Key(), bad.Key()} {
		sums := summaries[label]
		if len(sums) == 0 {
			t.Fatalf("%s: no trace_sampled summaries reached the shared trace", label)
		}
		for kind, n := range kept[label] {
			sum, ok := sums[kind]
			if !ok {
				t.Errorf("%s: kind %s kept %d events but has no summary", label, kind, n)
				continue
			}
			if sum.Kept != n {
				t.Errorf("%s/%s: summary says kept=%d, trace holds %d", label, kind, sum.Kept, n)
			}
			if sum.N < sum.Kept {
				t.Errorf("%s/%s: seen %d < kept %d", label, kind, sum.N, sum.Kept)
			}
		}
	}
}

// TestStackPendingShareBalanced is the ROADMAP regression check, wired into
// CI via go test: across the Fig. 9 workloads under full TOM, no single
// memory stack may absorb a disproportionate share of the sampled
// stack.N.pending_offloads occupancy — single-stack offload waves are
// invisible in end-of-run totals, so this is the only guard against them.
// Empirically the max share sits at 0.25-0.31 at this scale; 0.5 flags a
// genuine wave without tripping on sampling noise.
func TestStackPendingShareBalanced(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-workload observed matrix")
	}
	const (
		scale      = 0.1
		minSamples = 100.0 // below this the share estimate is noise
		maxShare   = 0.5
	)
	s := NewSession(Options{Scale: scale})
	var pairs []Pair
	for _, a := range Abbrs() {
		pairs = append(pairs, Pair{Abbr: a, Config: CfgCtrlTmap})
	}
	snaps, err := s.WarmObserved(pairs, ObsPolicy{
		Registry:    obs.NewRegistry(),
		SampleEvery: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := buildConfig(CfgCtrlTmap)
	if err != nil {
		t.Fatal(err)
	}
	measured := 0
	for _, p := range pairs {
		snap := snaps[p]
		total, max := 0.0, 0.0
		for st := 0; st < cfg.Stacks; st++ {
			sum := 0.0
			for _, v := range snap.Series[fmt.Sprintf("stack.%d.pending_offloads", st)].Values {
				sum += v
			}
			total += sum
			if sum > max {
				max = sum
			}
		}
		if total < minSamples {
			continue
		}
		measured++
		if share := max / total; share > maxShare {
			t.Errorf("%s: one stack absorbs %.0f%% of pending-offload occupancy (max %.0f%%)",
				p.Abbr, share*100, maxShare*100)
		}
	}
	if measured == 0 {
		t.Fatal("no workload produced enough occupancy samples — the check is vacuous")
	}
}
