package core

import (
	"testing"
)

// TestConfigRegistry derives from AllConfigNames — the single source of
// declared configurations — so a new config (a policy config included) is
// covered here exactly once with no hardwired list to drift.
func TestConfigRegistry(t *testing.T) {
	names := AllConfigNames()
	seen := map[ConfigName]int{}
	for _, n := range names {
		seen[n]++
		if _, err := buildConfig(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	for n, c := range seen {
		if c != 1 {
			t.Errorf("config %q declared %d times in AllConfigNames", n, c)
		}
	}
	for _, n := range []ConfigName{CfgCoda, CfgMPU} {
		if seen[n] != 1 {
			t.Errorf("policy config %q must appear exactly once, saw %d", n, seen[n])
		}
	}
	if _, err := buildConfig("bogus"); err == nil {
		t.Error("unknown config should fail")
	}
}

// TestPolicyDigestDistinct: runs of different offload policies must never
// share a cache record — the digest folds the policy name and parameters on
// top of the canonical config string.
func TestPolicyDigestDistinct(t *testing.T) {
	digests := map[string]ConfigName{}
	for _, name := range []ConfigName{CfgCtrlTmap, CfgIdeal, CfgCoda, CfgMPU} {
		sp, err := NewRunSpec("SP", 0.03, name)
		if err != nil {
			t.Fatal(err)
		}
		d := sp.Digest()
		if prev, dup := digests[d]; dup {
			t.Errorf("configs %s and %s share digest %.12s", prev, name, d)
		}
		digests[d] = name
	}
	// Same config twice must still digest identically (cache hits work).
	a, _ := NewRunSpec("SP", 0.03, CfgCoda)
	b, _ := NewRunSpec("SP", 0.03, CfgCoda)
	if a.Digest() != b.Digest() {
		t.Error("identical specs digest differently")
	}
}

func TestRunnerVerifiesAndCaches(t *testing.T) {
	r := NewRunner(0.3)
	a, err := r.Run("SP", CfgBaseline)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("SP", CfgBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second run should come from the cache")
	}
	if len(r.CachedRuns()) != 1 {
		t.Errorf("cached runs = %v", r.CachedRuns())
	}
	ndp, err := r.Run("SP", CfgCtrlTmap)
	if err != nil {
		t.Fatal(err)
	}
	if ndp.Stats.OffloadsSent == 0 {
		t.Error("ctrl-tmap run never offloaded")
	}
	if ndp.Energy.Total() <= 0 {
		t.Error("energy not computed")
	}
}

func TestSpeedupShapeOnStreamingWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config simulation")
	}
	r := NewRunner(0.3)
	base, err := r.Run("SP", CfgBaseline)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := r.Run("SP", CfgIdeal)
	if err != nil {
		t.Fatal(err)
	}
	tom, err := r.Run("SP", CfgCtrlTmap)
	if err != nil {
		t.Fatal(err)
	}
	sIdeal := ideal.Stats.IPC() / base.Stats.IPC()
	sTom := tom.Stats.IPC() / base.Stats.IPC()
	t.Logf("SP: ideal=%.2fx tom=%.2fx", sIdeal, sTom)
	if sIdeal <= 1.0 {
		t.Errorf("ideal NDP should speed up SP, got %.2fx", sIdeal)
	}
	if sTom <= 0.9 {
		t.Errorf("TOM should not cripple SP, got %.2fx", sTom)
	}
}

func TestAreaTableMatchesPaper(t *testing.T) {
	tab := AreaTable()
	get := func(label string) float64 {
		for _, r := range tab.Rows {
			if r.Label == label {
				return r.Values[0]
			}
		}
		t.Fatalf("row %q missing", label)
		return 0
	}
	if v := get("analyzer bits/SM"); v != 1920 {
		t.Errorf("analyzer bits = %v, want 1920", v)
	}
	if v := get("alloc table bits"); v != 9700 {
		t.Errorf("alloc table bits = %v, want 9700", v)
	}
	if v := get("metadata bits/SM"); v != 10320 {
		t.Errorf("metadata bits = %v, want 10320", v)
	}
	if v := get("area mm^2"); v < 0.10 || v > 0.12 {
		t.Errorf("area = %v mm^2, want ~0.11", v)
	}
	if v := get("GPU fraction %"); v < 0.015 || v > 0.021 {
		t.Errorf("GPU fraction = %v%%, want ~0.018%%", v)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "t", Columns: []string{"A", "AVG"},
		Rows:  []Row{{Label: "r", Values: []float64{1, 1}}},
		Notes: []string{"n"},
	}
	if s := tab.String(); s == "" {
		t.Error("empty text rendering")
	}
	if s := tab.Markdown(); s == "" {
		t.Error("empty markdown rendering")
	}
	if GeoMean([]float64{2, 8}) != 4 {
		t.Error("geomean wrong")
	}
	if Mean([]float64{2, 8}) != 5 {
		t.Error("mean wrong")
	}
	if GeoMean(nil) != 0 || Mean(nil) != 0 {
		t.Error("empty reducers should return 0")
	}
}

func TestExperimentIDsResolve(t *testing.T) {
	r := NewRunner(0.03)
	for _, id := range ExperimentIDs() {
		if id == "area" {
			if _, err := r.Experiment(id); err != nil {
				t.Errorf("%s: %v", id, err)
			}
		}
	}
	if _, err := r.Experiment("nope"); err == nil {
		t.Error("unknown experiment should fail")
	}
}
