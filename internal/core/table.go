package core

import (
	"fmt"
	"math"
	"strings"
)

// Table is one reproduced figure/table: a labeled grid with one column per
// workload plus an AVG column.
type Table struct {
	ID      string // e.g. "fig8"
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Row is one series of the figure.
type Row struct {
	Label  string
	Values []float64
}

// GeoMean returns the geometric mean (for speedup series).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Mean returns the arithmetic mean (for fractions and normalized traffic).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// withAvg appends an average to a series using the given reducer.
func withAvg(xs []float64, avg func([]float64) float64) []float64 {
	return append(append([]float64{}, xs...), avg(xs))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	labelW := 10
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	fmt.Fprintf(&sb, "%-*s", labelW+2, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, "%8s", c)
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", labelW+2, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&sb, "%8.3f", v)
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "   note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s: %s\n\n", t.ID, t.Title)
	sb.WriteString("| |")
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, " %s |", c)
	}
	sb.WriteString("\n|---|")
	for range t.Columns {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "| %s |", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&sb, " %.3f |", v)
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// workloadColumns returns the standard column header set.
func workloadColumns() []string {
	return append(Abbrs(), "AVG")
}
