// Package core orchestrates the paper's evaluation: it runs each Table 2
// workload under every system configuration the figures compare, verifies
// each timing run against the functional reference (final memory image
// equality plus the workload's own self-check), and aggregates the results
// into the tables that cmd/tomx, the benchmarks, and EXPERIMENTS.md report.
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/energy"
	"repro/internal/exec"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ConfigName identifies one system configuration under evaluation.
type ConfigName string

// The evaluated configurations.
const (
	CfgBaseline    ConfigName = "baseline"      // 68 SMs, no NDP (the normalization base)
	CfgIdeal       ConfigName = "ideal"         // Fig. 2: free offload + perfect co-location
	CfgNoCtrlBmap  ConfigName = "noctrl-bmap"   // offload everything, baseline mapping
	CfgNoCtrlTmap  ConfigName = "noctrl-tmap"   // offload everything, transparent mapping
	CfgCtrlBmap    ConfigName = "ctrl-bmap"     // dynamic control, baseline mapping
	CfgCtrlTmap    ConfigName = "ctrl-tmap"     // TOM: dynamic control + transparent mapping
	CfgCtrlOracle  ConfigName = "ctrl-oracle"   // Fig. 3: oracle best-bit mapping
	CfgWarp2x      ConfigName = "ctrl-tmap-w2"  // §6.4: 2x stack-SM warp capacity
	CfgWarp4x      ConfigName = "ctrl-tmap-w4"  // §6.4: 4x stack-SM warp capacity
	CfgInternal1x  ConfigName = "ctrl-tmap-i1"  // §6.5: internal BW = external BW
	CfgCross0125   ConfigName = "ctrl-tmap-x18" // §6.5: cross-stack BW 0.125x
	CfgCross025    ConfigName = "ctrl-tmap-x14" // §6.5: cross-stack BW 0.25x
	CfgCross100    ConfigName = "ctrl-tmap-x1"  // §6.5: cross-stack BW 1x
	CfgNoCoherence ConfigName = "ctrl-tmap-nc"  // §4.4.2: coherence protocol off
	// Extension ablation (§6.4 future work): ALU-ratio-aware control at
	// 4x stack warp capacity, versus plain 4x (CfgWarp4x).
	CfgWarp4xALU ConfigName = "ctrl-tmap-w4-alu"
)

// AllConfigNames lists every declared configuration in evaluation order.
// FullMatrix, cmd/tomsim -list, and the registry test all derive from this
// single list, so adding a configuration here is sufficient to warm it,
// list it, and cover it.
func AllConfigNames() []ConfigName {
	return []ConfigName{
		CfgBaseline, CfgIdeal, CfgNoCtrlBmap, CfgNoCtrlTmap, CfgCtrlBmap,
		CfgCtrlTmap, CfgCtrlOracle, CfgWarp2x, CfgWarp4x, CfgInternal1x,
		CfgCross0125, CfgCross025, CfgCross100, CfgNoCoherence, CfgWarp4xALU,
	}
}

// buildConfig materializes a named configuration.
func buildConfig(name ConfigName) (sim.Config, error) {
	c := sim.DefaultConfig()
	switch name {
	case CfgBaseline:
		return sim.BaselineConfig(), nil
	case CfgIdeal:
		c.Offload = sim.OffloadIdeal
		c.Mapping = sim.MapBaseline
	case CfgNoCtrlBmap:
		c.Offload = sim.OffloadUncontrolled
		c.Mapping = sim.MapBaseline
	case CfgNoCtrlTmap:
		c.Offload = sim.OffloadUncontrolled
	case CfgCtrlBmap:
		c.Mapping = sim.MapBaseline
	case CfgCtrlTmap:
		// TOM default.
	case CfgCtrlOracle:
		c.Mapping = sim.MapOracle
	case CfgWarp2x:
		c.StackWarpMult = 2
	case CfgWarp4x:
		c.StackWarpMult = 4
	case CfgInternal1x:
		c.InternalBWRatio = 0.5
	case CfgCross0125:
		c.CrossStackBW = c.GPUStackBW * 0.125
	case CfgCross025:
		c.CrossStackBW = c.GPUStackBW * 0.25
	case CfgCross100:
		c.CrossStackBW = c.GPUStackBW
	case CfgNoCoherence:
		c.Coherence = false
	case CfgWarp4xALU:
		c.StackWarpMult = 4
		c.ALUGate = 0.75
	default:
		return c, fmt.Errorf("core: unknown configuration %q", name)
	}
	return c, nil
}

// RunResult is one (workload, configuration) measurement.
type RunResult struct {
	Abbr   string
	Config ConfigName
	Stats  sim.Stats
	Energy energy.Breakdown
}

// Runner builds workload instances, memoizes runs and profiles, and
// verifies every timing run against the functional reference. It is safe
// for concurrent use: simultaneous requests for the same run are
// deduplicated, distinct runs proceed in parallel (see Warm).
type Runner struct {
	Scale float64
	// Progress, when non-nil, receives one line per completed run.
	Progress func(format string, args ...any)

	mu       sync.Mutex
	inflight map[string]*flight
	insts    map[string]*workloads.Instance // pristine instances
	refs     map[string]*mem.Flat           // functional-reference memories
	profiles map[string]*sim.Profile
	runs     map[string]*RunResult
}

// NewRunner creates a runner at the given problem scale (1.0 = default).
func NewRunner(scale float64) *Runner {
	return &Runner{
		Scale:    scale,
		inflight: map[string]*flight{},
		insts:    map[string]*workloads.Instance{},
		refs:     map[string]*mem.Flat{},
		profiles: map[string]*sim.Profile{},
		runs:     map[string]*RunResult{},
	}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Progress != nil {
		r.Progress(format, args...)
	}
}

// instance returns the pristine instance for a workload.
func (r *Runner) instance(abbr string) (*workloads.Instance, error) {
	err := r.once("inst/"+abbr, func() error {
		r.mu.Lock()
		_, ok := r.insts[abbr]
		r.mu.Unlock()
		if ok {
			return nil
		}
		w, err := workloads.ByAbbr(abbr)
		if err != nil {
			return err
		}
		in, err := w.Build(r.Scale)
		if err != nil {
			return err
		}
		r.mu.Lock()
		r.insts[abbr] = in
		r.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.insts[abbr], nil
}

// reference returns (building once) the functional-reference final memory.
func (r *Runner) reference(abbr string) (*mem.Flat, error) {
	err := r.once("ref/"+abbr, func() error {
		r.mu.Lock()
		_, ok := r.refs[abbr]
		r.mu.Unlock()
		if ok {
			return nil
		}
		in, err := r.instance(abbr)
		if err != nil {
			return err
		}
		c := in.Clone()
		if err := exec.RunFunctionalAll(c.Mem, c.Launches); err != nil {
			return fmt.Errorf("%s: functional reference: %w", abbr, err)
		}
		if in.Check != nil {
			if err := in.Check(c.Mem); err != nil {
				return fmt.Errorf("%s: reference self-check: %w", abbr, err)
			}
		}
		r.mu.Lock()
		r.refs[abbr] = c.Mem
		r.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.refs[abbr], nil
}

// Profile returns (running once) the instrumented functional profile.
func (r *Runner) Profile(abbr string) (*sim.Profile, error) {
	err := r.once("prof/"+abbr, func() error {
		r.mu.Lock()
		_, ok := r.profiles[abbr]
		r.mu.Unlock()
		if ok {
			return nil
		}
		in, err := r.instance(abbr)
		if err != nil {
			return err
		}
		c := in.Clone()
		p, err := sim.RunProfile(c.Mem, c.Alloc, c.Launches)
		if err != nil {
			return fmt.Errorf("%s: profile: %w", abbr, err)
		}
		// Remember which ranges candidates touch for oracle runs.
		r.mu.Lock()
		for i, rg := range c.Alloc.Ranges {
			if rg.CandidateTouched {
				in.Alloc.Ranges[i].CandidateTouched = true
			}
		}
		r.profiles[abbr] = p
		r.mu.Unlock()
		r.logf("profile %-4s instances=%d", abbr, p.Instances)
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.profiles[abbr], nil
}

// Run executes (or returns the memoized) workload × configuration.
func (r *Runner) Run(abbr string, name ConfigName) (*RunResult, error) {
	key := abbr + "/" + string(name)
	err := r.once("run/"+key, func() error {
		r.mu.Lock()
		_, ok := r.runs[key]
		r.mu.Unlock()
		if ok {
			return nil
		}
		res, err := r.runUncached(abbr, name, nil)
		if err != nil {
			return err
		}
		r.mu.Lock()
		r.runs[key] = res
		r.mu.Unlock()
		r.logf("run %-4s %-14s cycles=%-9d IPC=%6.1f offloads=%-7d traffic=%dMB",
			abbr, name, res.Stats.Cycles, res.Stats.IPC(), res.Stats.OffloadsSent,
			res.Stats.OffChipBytes()>>20)
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs[key], nil
}

// RunObserved executes one workload × configuration with the observer
// attached, collecting per-interval metrics and (when the observer carries
// a trace sink) lifecycle events. Results are verified like Run's but are
// never memoized: each caller wants its own time series, and the stats are
// identical to the cached run's anyway (observation is timing-free).
func (r *Runner) RunObserved(abbr string, name ConfigName, o *obs.Observer) (*RunResult, error) {
	if o == nil {
		return r.Run(abbr, name)
	}
	return r.runUncached(abbr, name, o)
}

func (r *Runner) runUncached(abbr string, name ConfigName, o *obs.Observer) (*RunResult, error) {
	in, err := r.instance(abbr)
	if err != nil {
		return nil, err
	}
	cfg, err := buildConfig(name)
	if err != nil {
		return nil, err
	}
	cfg.Observer = o
	var prof *sim.Profile
	if cfg.Mapping == sim.MapOracle {
		// Run the profile first: it flags candidate-touched ranges on
		// the pristine instance (under the runner lock).
		prof, err = r.Profile(abbr)
		if err != nil {
			return nil, err
		}
	}
	r.mu.Lock()
	c := in.Clone()
	if prof != nil {
		for i, rg := range in.Alloc.Ranges {
			c.Alloc.Ranges[i].CandidateTouched = rg.CandidateTouched
		}
	}
	r.mu.Unlock()
	sys := sim.New(cfg, c.Mem, c.Alloc)
	if prof != nil {
		bit, _ := prof.OracleBit()
		sys.ApplyMappingBit(bit)
	}
	if err := sys.Run(c.Launches); err != nil {
		return nil, fmt.Errorf("%s/%s: %w", abbr, name, err)
	}
	// Verification: the timing run must reproduce the functional memory
	// image exactly, and pass the workload's self-check.
	ref, err := r.reference(abbr)
	if err != nil {
		return nil, err
	}
	if ok, addr := mem.Equal(ref, c.Mem); !ok {
		return nil, fmt.Errorf("%s/%s: timing run diverged from functional reference at %#x", abbr, name, addr)
	}
	if in.Check != nil {
		if err := in.Check(c.Mem); err != nil {
			return nil, fmt.Errorf("%s/%s: self-check: %w", abbr, name, err)
		}
	}
	res := &RunResult{Abbr: abbr, Config: name, Stats: *sys.Stats()}
	res.Energy = energy.Compute(&res.Stats, cfg, energy.DefaultParams())
	return res, nil
}

// Abbrs returns the workload abbreviations in paper order.
func Abbrs() []string {
	var out []string
	for _, w := range workloads.All() {
		out = append(out, w.Abbr)
	}
	return out
}

// CachedRuns lists memoized run keys (diagnostics).
func (r *Runner) CachedRuns() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var keys []string
	for k := range r.runs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
