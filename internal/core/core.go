// Package core orchestrates the paper's evaluation: it runs each Table 2
// workload under every system configuration the figures compare, verifies
// each timing run against the functional reference (final memory image
// equality plus the workload's own self-check), and aggregates the results
// into the tables that cmd/tomx, the benchmarks, and EXPERIMENTS.md report.
//
// Runs are requested through a Session, which layers three caches over the
// simulator (see docs/RUNCACHE.md):
//
//  1. an in-memory singleflight memo keyed by RunSpec digest — concurrent
//     requests for the same run are deduplicated, repeats are free;
//  2. an optional persistent result cache (DiskCache) holding verified
//     RunResult records keyed by spec digest + build fingerprint, so a
//     repeated invocation replays instead of re-simulating; and
//  3. an observation policy (ObsPolicy) that gives each observed run a
//     scoped, label-prefixed view of one shared obs registry, so observed
//     runs execute in parallel without metric collisions.
package core

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/energy"
	"repro/internal/exec"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/offload"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ConfigName identifies one system configuration under evaluation.
type ConfigName string

// The evaluated configurations.
const (
	CfgBaseline    ConfigName = "baseline"      // 68 SMs, no NDP (the normalization base)
	CfgIdeal       ConfigName = "ideal"         // Fig. 2: free offload + perfect co-location
	CfgNoCtrlBmap  ConfigName = "noctrl-bmap"   // offload everything, baseline mapping
	CfgNoCtrlTmap  ConfigName = "noctrl-tmap"   // offload everything, transparent mapping
	CfgCtrlBmap    ConfigName = "ctrl-bmap"     // dynamic control, baseline mapping
	CfgCtrlTmap    ConfigName = "ctrl-tmap"     // TOM: dynamic control + transparent mapping
	CfgCtrlOracle  ConfigName = "ctrl-oracle"   // Fig. 3: oracle best-bit mapping
	CfgWarp2x      ConfigName = "ctrl-tmap-w2"  // §6.4: 2x stack-SM warp capacity
	CfgWarp4x      ConfigName = "ctrl-tmap-w4"  // §6.4: 4x stack-SM warp capacity
	CfgInternal1x  ConfigName = "ctrl-tmap-i1"  // §6.5: internal BW = external BW
	CfgCross0125   ConfigName = "ctrl-tmap-x18" // §6.5: cross-stack BW 0.125x
	CfgCross025    ConfigName = "ctrl-tmap-x14" // §6.5: cross-stack BW 0.25x
	CfgCross100    ConfigName = "ctrl-tmap-x1"  // §6.5: cross-stack BW 1x
	CfgNoCoherence ConfigName = "ctrl-tmap-nc"  // §4.4.2: coherence protocol off
	// Extension ablation (§6.4 future work): ALU-ratio-aware control at
	// 4x stack warp capacity, versus plain 4x (CfgWarp4x).
	CfgWarp4xALU ConfigName = "ctrl-tmap-w4-alu"
	// Rival offload policies (-exp policies): CODA-style co-location-aware
	// offloading on TOM's system (transparent mapping retained — the veto
	// replaces the mapping-oblivious send), and near-bank MPU offload on
	// the baseline mapping (near-bank units address vaults directly; the
	// transparent remap would fight the per-vault destination choice).
	CfgCoda ConfigName = "coda"
	CfgMPU  ConfigName = "mpu"
)

// AllConfigNames lists every declared configuration in evaluation order.
// FullMatrix, cmd/tomsim -list, and the registry test all derive from this
// single list, so adding a configuration here is sufficient to warm it,
// list it, and cover it.
func AllConfigNames() []ConfigName {
	return []ConfigName{
		CfgBaseline, CfgIdeal, CfgNoCtrlBmap, CfgNoCtrlTmap, CfgCtrlBmap,
		CfgCtrlTmap, CfgCtrlOracle, CfgWarp2x, CfgWarp4x, CfgInternal1x,
		CfgCross0125, CfgCross025, CfgCross100, CfgNoCoherence, CfgWarp4xALU,
		CfgCoda, CfgMPU,
	}
}

// buildConfig materializes a named configuration.
func buildConfig(name ConfigName) (sim.Config, error) {
	c := sim.DefaultConfig()
	switch name {
	case CfgBaseline:
		return sim.BaselineConfig(), nil
	case CfgIdeal:
		c.Offload = sim.OffloadIdeal
		c.Mapping = sim.MapBaseline
	case CfgNoCtrlBmap:
		c.Offload = sim.OffloadUncontrolled
		c.Mapping = sim.MapBaseline
	case CfgNoCtrlTmap:
		c.Offload = sim.OffloadUncontrolled
	case CfgCtrlBmap:
		c.Mapping = sim.MapBaseline
	case CfgCtrlTmap:
		// TOM default.
	case CfgCtrlOracle:
		c.Mapping = sim.MapOracle
	case CfgWarp2x:
		c.StackWarpMult = 2
	case CfgWarp4x:
		c.StackWarpMult = 4
	case CfgInternal1x:
		c.InternalBWRatio = 0.5
	case CfgCross0125:
		c.CrossStackBW = c.GPUStackBW * 0.125
	case CfgCross025:
		c.CrossStackBW = c.GPUStackBW * 0.25
	case CfgCross100:
		c.CrossStackBW = c.GPUStackBW
	case CfgNoCoherence:
		c.Coherence = false
	case CfgWarp4xALU:
		c.StackWarpMult = 4
		c.ALUGate = 0.75
	case CfgCoda:
		c.Policy = "coda"
	case CfgMPU:
		c.Mapping = sim.MapBaseline
		c.Policy = "mpu"
	default:
		return c, fmt.Errorf("core: unknown configuration %q", name)
	}
	return c, nil
}

// RunResult is one (workload, configuration) measurement.
type RunResult struct {
	Abbr   string
	Config ConfigName
	Stats  sim.Stats
	Energy energy.Breakdown
}

// Options configures a Session.
type Options struct {
	// Scale is the problem-size scale factor (1.0 = benchmark default).
	Scale float64
	// CacheDir, when non-empty, enables the persistent result cache
	// rooted at that directory (conventionally ".tomcache").
	CacheDir string
	// Fingerprint overrides the build fingerprint gating persistent
	// records; "" selects BuildFingerprint(). Tests use this to force
	// stale-build invalidation.
	Fingerprint string
	// Progress, when non-nil, receives one line per completed run.
	Progress func(format string, args ...any)
	// Obs, when non-nil, receives the session-level adaptive-control
	// metrics (adapt.iterations, adapt.converged, feedback.store_hits,
	// feedback.store_misses) and — when it carries a trace sink — the
	// session-level lifecycle events (adapt_iter, adapt_done,
	// feedback_store). This is the evaluation layer's observer, distinct
	// from the per-run simulator observers RunObserved attaches.
	Obs *obs.Observer
}

// CacheStats summarizes how a Session's runs were satisfied.
type CacheStats struct {
	MemoHits  uint64 // served from the in-memory memo
	DiskHits  uint64 // replayed from the persistent cache
	Simulated uint64 // executed (persistent-cache misses)
}

// Session executes runs through the layered cache architecture described in
// the package comment. It builds workload instances, memoizes runs and
// profiles by spec digest, and verifies every timing run against the
// functional reference. It is safe for concurrent use: simultaneous
// requests for the same run are deduplicated, distinct runs proceed in
// parallel (see Warm and WarmObserved).
type Session struct {
	Scale float64
	// Progress, when non-nil, receives one line per completed run.
	Progress func(format string, args ...any)

	cache    *DiskCache     // nil = persistent layer disabled
	feedback *FeedbackStore // nil = persisted adaptive feedback disabled
	mappings *MappingStore  // nil = persisted learned mappings disabled
	obsv     *obs.Observer  // nil = session-level observability disabled

	mu       sync.Mutex
	inflight map[string]*flight
	insts    map[string]*workloads.Instance // pristine instances
	refs     map[string]*mem.Flat           // functional-reference memories
	profiles map[string]*sim.Profile
	runs     map[string]*RunResult // keyed by RunSpec digest
	runKeys  map[string]string     // digest -> "ABBR/config" (diagnostics)
	stats    CacheStats
	fb       FeedbackStats
	ms       MappingStats

	// profSessions holds lazily-created reduced-scale sub-sessions used by
	// RunAdaptive's profiling pass, keyed by profile fraction. They share
	// this session's persistent cache, so profile runs replay across
	// processes like any other run.
	profSessions map[float64]*Session
}

// Runner is the historical name of Session, kept as an alias: the old
// string-keyed memoizing runner grew into the spec-keyed session.
type Runner = Session

// NewSession creates a session with the given options.
func NewSession(opts Options) *Session {
	s := &Session{
		Scale:    opts.Scale,
		Progress: opts.Progress,
		inflight: map[string]*flight{},
		insts:    map[string]*workloads.Instance{},
		refs:     map[string]*mem.Flat{},
		profiles: map[string]*sim.Profile{},
		runs:     map[string]*RunResult{},
		runKeys:  map[string]string{},
	}
	if opts.CacheDir != "" {
		s.cache = NewDiskCache(opts.CacheDir, opts.Fingerprint)
		// Converged adaptive refinements and learned mappings persist beside
		// the run records, under the same fingerprint gate (docs/RUNCACHE.md).
		s.feedback = NewFeedbackStore(filepath.Join(opts.CacheDir, "feedback"), opts.Fingerprint)
		s.mappings = NewMappingStore(filepath.Join(opts.CacheDir, "mappings"), opts.Fingerprint)
	}
	s.obsv = opts.Obs
	return s
}

// NewRunner creates a session at the given problem scale with no
// persistent cache (the historical constructor).
func NewRunner(scale float64) *Session {
	return NewSession(Options{Scale: scale})
}

func (s *Session) logf(format string, args ...any) {
	if s.Progress != nil {
		s.Progress(format, args...)
	}
}

// Spec resolves the canonical RunSpec for one workload × configuration at
// the session's scale.
func (s *Session) Spec(abbr string, name ConfigName) (RunSpec, error) {
	return NewRunSpec(abbr, s.Scale, name)
}

// SpecWithPolicy resolves like Spec and then overrides the offload policy
// ("" keeps the configuration's own). The override is validated against the
// policy registry here, so an unknown name fails with the list of choices
// instead of panicking inside the simulator; it reaches the digest through
// both the canonical config string and the explicit policy fold, so
// overridden runs never alias the base configuration's cache records.
func (s *Session) SpecWithPolicy(abbr string, name ConfigName, policy string) (RunSpec, error) {
	spec, err := s.Spec(abbr, name)
	if err != nil {
		return RunSpec{}, err
	}
	if policy != "" {
		if _, err := offload.ByName(policy); err != nil {
			return RunSpec{}, err
		}
		spec.Cfg.Policy = policy
	}
	return spec, nil
}

// RunSpecExact executes (or replays) a fully-resolved spec through the
// layered caches — the entry point for callers that adjusted the spec
// beyond a named configuration (tomsim -policy).
func (s *Session) RunSpecExact(spec RunSpec) (*RunResult, error) {
	return s.runSpec(spec, nil)
}

// RunSpecObserved executes a fully-resolved spec with the observer
// attached. Like RunObserved it never replays from a cache: only an actual
// execution can produce time series. A nil observer falls back to the
// cached path.
func (s *Session) RunSpecObserved(spec RunSpec, o *obs.Observer) (*RunResult, error) {
	if o == nil {
		return s.runSpec(spec, nil)
	}
	return s.runUncached(spec, o, nil)
}

// instance returns the pristine instance for a workload.
func (s *Session) instance(abbr string) (*workloads.Instance, error) {
	err := s.once("inst/"+abbr, func() error {
		s.mu.Lock()
		_, ok := s.insts[abbr]
		s.mu.Unlock()
		if ok {
			return nil
		}
		w, err := workloads.ByAbbr(abbr)
		if err != nil {
			return err
		}
		in, err := w.Build(s.Scale)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.insts[abbr] = in
		s.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.insts[abbr], nil
}

// reference returns (building once) the functional-reference final memory.
func (s *Session) reference(abbr string) (*mem.Flat, error) {
	err := s.once("ref/"+abbr, func() error {
		s.mu.Lock()
		_, ok := s.refs[abbr]
		s.mu.Unlock()
		if ok {
			return nil
		}
		in, err := s.instance(abbr)
		if err != nil {
			return err
		}
		c := in.Clone()
		if err := exec.RunFunctionalAll(c.Mem, c.Launches); err != nil {
			return fmt.Errorf("%s: functional reference: %w", abbr, err)
		}
		if in.Check != nil {
			if err := in.Check(c.Mem); err != nil {
				return fmt.Errorf("%s: reference self-check: %w", abbr, err)
			}
		}
		s.mu.Lock()
		s.refs[abbr] = c.Mem
		s.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refs[abbr], nil
}

// Profile returns (running once) the instrumented functional profile.
func (s *Session) Profile(abbr string) (*sim.Profile, error) {
	err := s.once("prof/"+abbr, func() error {
		s.mu.Lock()
		_, ok := s.profiles[abbr]
		s.mu.Unlock()
		if ok {
			return nil
		}
		in, err := s.instance(abbr)
		if err != nil {
			return err
		}
		c := in.Clone()
		p, err := sim.RunProfile(c.Mem, c.Alloc, c.Launches)
		if err != nil {
			return fmt.Errorf("%s: profile: %w", abbr, err)
		}
		// Remember which ranges candidates touch for oracle runs.
		s.mu.Lock()
		for i, rg := range c.Alloc.Ranges {
			if rg.CandidateTouched {
				in.Alloc.Ranges[i].CandidateTouched = true
			}
		}
		s.profiles[abbr] = p
		s.mu.Unlock()
		s.logf("profile %-4s instances=%d", abbr, p.Instances)
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.profiles[abbr], nil
}

// Run executes (or replays from a cache layer) workload × configuration.
func (s *Session) Run(abbr string, name ConfigName) (*RunResult, error) {
	spec, err := s.Spec(abbr, name)
	if err != nil {
		return nil, err
	}
	return s.runSpec(spec, nil)
}

// RunSource reports which layer satisfied a run (see RunSpecTracked).
type RunSource string

const (
	// SourceMemo: served by the in-memory memo, including requests that
	// were deduplicated onto another caller's in-flight execution.
	SourceMemo RunSource = "memo"
	// SourceDisk: replayed from the persistent cache.
	SourceDisk RunSource = "disk"
	// SourceSimulated: a fresh verified simulation.
	SourceSimulated RunSource = "simulated"
)

// RunSpecTracked executes (or replays) like RunSpecExact and additionally
// reports which cache layer satisfied the request. Batch servers use this
// for per-batch accounting, which the cumulative CacheStats cannot provide
// once batches overlap in time.
func (s *Session) RunSpecTracked(spec RunSpec) (*RunResult, RunSource, error) {
	return s.runSpecSource(spec, nil)
}

// runSpec executes (or replays) a fully-resolved spec through the layered
// caches. prep, when non-nil, configures the simulator after construction
// and before Run (adaptive feedback injection); anything prep changes must
// already be part of the spec's digest, or cached replays would diverge
// from fresh executions.
func (s *Session) runSpec(spec RunSpec, prep func(*sim.System)) (*RunResult, error) {
	res, _, err := s.runSpecSource(spec, prep)
	return res, err
}

// runSpecSource is runSpec with the satisfying layer made explicit. The
// source defaults to SourceMemo: a caller whose once-closure never ran was
// either served by the memo fast path or deduplicated onto a concurrent
// flight, and in both cases the session did no extra work for it.
func (s *Session) runSpecSource(spec RunSpec, prep func(*sim.System)) (*RunResult, RunSource, error) {
	digest := spec.Digest()
	s.mu.Lock()
	if res, ok := s.runs[digest]; ok {
		s.stats.MemoHits++
		s.mu.Unlock()
		return res, SourceMemo, nil
	}
	s.mu.Unlock()
	src := SourceMemo
	err := s.once("run/"+digest, func() error {
		s.mu.Lock()
		_, ok := s.runs[digest]
		s.mu.Unlock()
		if ok {
			return nil
		}
		res, fromDisk, err := s.fetchOrRun(spec, digest, prep)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.runs[digest] = res
		s.runKeys[digest] = spec.Key()
		if fromDisk {
			s.stats.DiskHits++
			src = SourceDisk
		} else {
			s.stats.Simulated++
			src = SourceSimulated
		}
		s.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, src, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[digest], src, nil
}

// fetchOrRun consults the persistent layer, then simulates on a miss and
// writes the verified result back.
func (s *Session) fetchOrRun(spec RunSpec, digest string, prep func(*sim.System)) (res *RunResult, fromDisk bool, err error) {
	if s.cache != nil {
		cached, ok, err := s.cache.Get(digest)
		if err != nil {
			return nil, false, err
		}
		if ok {
			s.logf("hit %-4s %-14s cycles=%-9d (replayed %.8s)",
				spec.Abbr, spec.Config, cached.Stats.Cycles, digest)
			return cached, true, nil
		}
	}
	res, err = s.runUncached(spec, nil, prep)
	if err != nil {
		return nil, false, err
	}
	s.logf("run %-4s %-14s cycles=%-9d IPC=%6.1f offloads=%-7d traffic=%dMB",
		spec.Abbr, spec.Config, res.Stats.Cycles, res.Stats.IPC(), res.Stats.OffloadsSent,
		res.Stats.OffChipBytes()>>20)
	if s.cache != nil {
		if err := s.cache.Put(spec, res); err != nil {
			// A write failure costs future replays, not correctness.
			s.logf("cache: %v", err)
		}
	}
	return res, false, nil
}

// RunObserved executes one workload × configuration with the observer
// attached, collecting per-interval metrics and (when the observer carries
// a trace sink) lifecycle events. Results are verified like Run's but are
// never memoized or replayed from the persistent cache: each caller wants
// its own time series, which only an actual execution can produce (the
// end-of-run stats are identical to the cached run's anyway — observation
// is timing-free).
func (s *Session) RunObserved(abbr string, name ConfigName, o *obs.Observer) (*RunResult, error) {
	if o == nil {
		return s.Run(abbr, name)
	}
	spec, err := s.Spec(abbr, name)
	if err != nil {
		return nil, err
	}
	return s.runUncached(spec, o, nil)
}

func (s *Session) runUncached(spec RunSpec, o *obs.Observer, prep func(*sim.System)) (*RunResult, error) {
	abbr := spec.Abbr
	in, err := s.instance(abbr)
	if err != nil {
		return nil, err
	}
	cfg := spec.Cfg
	cfg.Observer = o
	var prof *sim.Profile
	if cfg.Mapping == sim.MapOracle {
		// Run the profile first: it flags candidate-touched ranges on
		// the pristine instance (under the session lock).
		prof, err = s.Profile(abbr)
		if err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	c := in.Clone()
	if prof != nil {
		for i, rg := range in.Alloc.Ranges {
			c.Alloc.Ranges[i].CandidateTouched = rg.CandidateTouched
		}
	}
	s.mu.Unlock()
	sys := sim.New(cfg, c.Mem, c.Alloc)
	if prof != nil {
		bit, _ := prof.OracleBit()
		sys.ApplyMappingBit(bit)
	}
	if mi := spec.MapInstall; mi != nil {
		// Pre-install the stored mapping before cycle 0: the run starts with
		// the learned bit resident and no learning phase. A record that no
		// longer matches the instance (renamed/removed range, bad bit) fails
		// the run loudly — WithStoredMapping's validity gates should make
		// that unreachable, but a wrong mapping must never run silently.
		if err := sys.InstallMapping(mi.Bit, mi.Ranges, mi.SavedPCIe); err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Key(), err)
		}
	}
	if prep != nil {
		prep(sys)
	}
	if err := sys.Run(c.Launches); err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Key(), err)
	}
	// Verification: the timing run must reproduce the functional memory
	// image exactly, and pass the workload's self-check.
	ref, err := s.reference(abbr)
	if err != nil {
		return nil, err
	}
	if ok, addr := mem.Equal(ref, c.Mem); !ok {
		return nil, fmt.Errorf("%s: timing run diverged from functional reference at %#x", spec.Key(), addr)
	}
	if in.Check != nil {
		if err := in.Check(c.Mem); err != nil {
			return nil, fmt.Errorf("%s: self-check: %w", spec.Key(), err)
		}
	}
	res := &RunResult{Abbr: abbr, Config: spec.Config, Stats: *sys.Stats()}
	res.Energy = energy.Compute(&res.Stats, cfg, energy.DefaultParams())
	// A verified run that learned its mapping this run seeds the persistent
	// registry ("map once, stay resident") for later sessions.
	s.storeLearnedMapping(spec, res)
	return res, nil
}

// Abbrs returns the workload abbreviations in paper order.
func Abbrs() []string {
	var out []string
	for _, w := range workloads.All() {
		out = append(out, w.Abbr)
	}
	return out
}

// CacheStats reports how the session's completed runs were satisfied,
// including the reduced-scale profiling runs of adaptive sessions.
func (s *Session) CacheStats() CacheStats {
	s.mu.Lock()
	st := s.stats
	subs := make([]*Session, 0, len(s.profSessions))
	for _, ps := range s.profSessions {
		subs = append(subs, ps)
	}
	s.mu.Unlock()
	for _, ps := range subs {
		sub := ps.CacheStats()
		st.MemoHits += sub.MemoHits
		st.DiskHits += sub.DiskHits
		st.Simulated += sub.Simulated
	}
	return st
}

// CacheDir returns the persistent cache root ("" when disabled).
func (s *Session) CacheDir() string {
	if s.cache == nil {
		return ""
	}
	return s.cache.Dir()
}

// CachedRuns lists memoized runs as "ABBR/config" keys (diagnostics).
func (s *Session) CachedRuns() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for _, k := range s.runKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
