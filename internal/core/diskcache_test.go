package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// jsonRecords counts .json files directly under dir.
func jsonRecords(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

// TestDiskCacheRemovesDeadRecordsOnMiss: a fingerprint-mismatched or
// corrupt record is removed when Get misses on it, and a re-Put after a
// build bump leaves exactly one record for the digest — the cache
// directory no longer accretes one dead record per digest per past build.
func TestDiskCacheRemovesDeadRecordsOnMiss(t *testing.T) {
	dir := t.TempDir()
	spec, err := NewRunSpec("SP", 0.25, CfgBaseline)
	if err != nil {
		t.Fatal(err)
	}
	res := &RunResult{Abbr: "SP", Config: CfgBaseline}
	res.Stats.Cycles = 777

	old := NewDiskCache(dir, "build-old")
	if err := old.Put(spec, res); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, spec.Digest()+".json")

	// A new build misses on the stale record and removes it.
	cur := NewDiskCache(dir, "build-new")
	if _, ok, err := cur.Get(spec.Digest()); ok || err != nil {
		t.Fatalf("stale record: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("stale record still on disk after miss (stat: %v)", err)
	}

	// Re-Put under the new build: exactly one record per digest.
	if err := cur.Put(spec, res); err != nil {
		t.Fatal(err)
	}
	if n := jsonRecords(t, dir); n != 1 {
		t.Fatalf("cache holds %d records after the build bump, want exactly 1", n)
	}
	if _, ok, err := cur.Get(spec.Digest()); !ok || err != nil {
		t.Fatalf("fresh record must replay: ok=%v err=%v", ok, err)
	}

	// A corrupt record is likewise removed on miss.
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cur.Get(spec.Digest()); ok || err != nil {
		t.Fatalf("corrupt record: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt record still on disk after miss (stat: %v)", err)
	}
}

// TestDiskCacheSweep: startup GC removes exactly the records this build can
// never replay — foreign fingerprints and torn JSON — and leaves fresh
// records, subdirectories (the feedback store), and non-record files alone.
func TestDiskCacheSweep(t *testing.T) {
	dir := t.TempDir()
	specA, _ := NewRunSpec("SP", 0.25, CfgBaseline)
	specB, _ := NewRunSpec("LIB", 0.25, CfgBaseline)
	res := &RunResult{Abbr: "SP", Config: CfgBaseline}

	if err := NewDiskCache(dir, "build-old").Put(specA, res); err != nil {
		t.Fatal(err)
	}
	cur := NewDiskCache(dir, "build-new")
	if err := cur.Put(specB, res); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "feedback"), 0o755); err != nil {
		t.Fatal(err)
	}
	fbFile := filepath.Join(dir, "feedback", "keep.json")
	if err := os.WriteFile(fbFile, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := cur.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("swept %d records, want 2 (stale + corrupt)", removed)
	}
	if n := jsonRecords(t, dir); n != 1 {
		t.Errorf("%d records remain, want 1 (the fresh one)", n)
	}
	if _, ok, err := cur.Get(specB.Digest()); !ok || err != nil {
		t.Errorf("fresh record must survive the sweep: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(fbFile); err != nil {
		t.Errorf("sweep must not enter subdirectories: %v", err)
	}

	// Sweeping a cache directory that does not exist yet is a no-op.
	if n, err := NewDiskCache(filepath.Join(dir, "nope"), "x").Sweep(); n != 0 || err != nil {
		t.Errorf("sweep of a missing dir: n=%d err=%v", n, err)
	}
}
