package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSchedulerRunsEveryIndexOnce: every index in [0, n) executes exactly
// once, across partition sizes that exercise uneven splits and more items
// than workers.
func TestSchedulerRunsEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 1}, {1, 7}, {4, 3}, {4, 4}, {4, 5}, {3, 100}, {8, 1000},
	} {
		sc := NewScheduler(tc.workers)
		counts := make([]atomic.Int32, tc.n)
		errs := sc.ForEach(context.Background(), tc.n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if len(errs) != tc.n {
			t.Fatalf("w=%d n=%d: %d error slots", tc.workers, tc.n, len(errs))
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Errorf("w=%d n=%d: index %d ran %d times", tc.workers, tc.n, i, got)
			}
			if errs[i] != nil {
				t.Errorf("w=%d n=%d: index %d unexpected error %v", tc.workers, tc.n, i, errs[i])
			}
		}
	}
}

// TestSchedulerErrorsLandAtTheirIndex: a failure is reported in the failing
// index's slot and nowhere else.
func TestSchedulerErrorsLandAtTheirIndex(t *testing.T) {
	sc := NewScheduler(4)
	boom := errors.New("boom")
	errs := sc.ForEach(context.Background(), 20, func(i int) error {
		if i%3 == 0 {
			return fmt.Errorf("item %d: %w", i, boom)
		}
		return nil
	})
	for i, err := range errs {
		if i%3 == 0 {
			if !errors.Is(err, boom) {
				t.Errorf("index %d: want boom, got %v", i, err)
			}
		} else if err != nil {
			t.Errorf("index %d: unexpected error %v", i, err)
		}
	}
}

// TestSchedulerSteals: worker 0's first item blocks until its second item
// completes — which only a thief can run. A partition-only pool (no
// stealing) deadlocks here; the watchdog converts that into a failure.
func TestSchedulerSteals(t *testing.T) {
	sc := NewScheduler(2) // partitions: worker0 [0,2), worker1 [2,4)
	oneDone := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		errs := sc.ForEach(context.Background(), 4, func(i int) error {
			switch i {
			case 0:
				<-oneDone // needs item 1 to have run
			case 1:
				close(oneDone)
			}
			return nil
		})
		for i, err := range errs {
			if err != nil {
				t.Errorf("index %d: %v", i, err)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ForEach deadlocked: item 1 was never stolen")
	}
}

// TestSchedulerCancellation: after the context is cancelled, items not yet
// started carry ctx.Err() and fn is never invoked for them.
func TestSchedulerCancellation(t *testing.T) {
	sc := NewScheduler(2)
	ctx, cancel := context.WithCancel(context.Background())
	const n = 50
	var started atomic.Int32
	release := make(chan struct{})
	errs := sc.ForEach(ctx, n, func(i int) error {
		if started.Add(1) == 2 {
			cancel()
			close(release)
		} else {
			<-release // first two items hold both workers until cancel
		}
		return nil
	})
	ran := int(started.Load())
	if ran >= n {
		t.Fatalf("all %d items ran despite cancellation", n)
	}
	cancelled := 0
	for i, err := range errs {
		if errors.Is(err, context.Canceled) {
			cancelled++
		} else if err != nil {
			t.Errorf("index %d: unexpected error %v", i, err)
		}
	}
	if got := n - ran; cancelled != got {
		t.Errorf("%d slots carry ctx.Err(), want %d (n=%d ran=%d)", cancelled, got, n, ran)
	}
}

// TestSchedulerSharedBoundAcrossBatches: two concurrent ForEach calls on one
// scheduler never exceed the scheduler's slot count in simultaneously
// running items.
func TestSchedulerSharedBoundAcrossBatches(t *testing.T) {
	const workers = 3
	sc := NewScheduler(workers)
	var cur, peak atomic.Int32
	run := func(n int) {
		sc.ForEach(context.Background(), n, func(int) error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	var wg sync.WaitGroup
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func() { defer wg.Done(); run(25) }()
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds the %d-slot bound", p, workers)
	}
}
