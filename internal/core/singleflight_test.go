package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// inflightLen reads the singleflight map size (test helper).
func (s *Session) inflightLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight)
}

// TestOnceRetriesAfterError: a failed flight must not memoize its error —
// the next caller for the same key re-runs the computation. This is the
// difference between a transient failure costing one request and poisoning
// a digest for the life of a long-running server.
func TestOnceRetriesAfterError(t *testing.T) {
	s := NewSession(Options{Scale: 0.05})
	calls := 0
	if err := s.once("k", func() error { calls++; return errors.New("transient") }); err == nil {
		t.Fatal("first flight must fail")
	}
	if err := s.once("k", func() error { calls++; return nil }); err != nil {
		t.Fatalf("retry after error must re-run the function, got %v", err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (the error was memoized)", calls)
	}
	if n := s.inflightLen(); n != 0 {
		t.Fatalf("inflight map holds %d entries after completion, want 0", n)
	}
}

// TestOnceConcurrentErrorSharing: callers that arrive while a failing
// flight is running share its error without running their own function;
// callers that arrive after it completed start a fresh flight. Whatever the
// schedule, the outcomes must partition exactly that way, and the map must
// end empty.
func TestOnceConcurrentErrorSharing(t *testing.T) {
	s := NewSession(Options{Scale: 0.05})
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})
	first := make(chan error, 1)
	go func() {
		first <- s.once("k", func() error {
			close(started)
			<-release
			return boom
		})
	}()
	<-started

	const n = 10
	var wg sync.WaitGroup
	var ownRuns atomic.Int32 // how many latecomers ran their own fn
	results := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.once("k", func() error {
				ownRuns.Add(1)
				return nil
			})
		}(i)
	}
	close(release)
	wg.Wait()
	if err := <-first; !errors.Is(err, boom) {
		t.Fatalf("flight owner got %v, want boom", err)
	}

	sharedErr := 0
	for i, err := range results {
		switch {
		case errors.Is(err, boom):
			sharedErr++ // joined the failing flight as a waiter
		case err == nil: // arrived after the failure (fresh flight, or its waiter)
		default:
			t.Errorf("caller %d: unexpected error %v", i, err)
		}
	}
	// Latecomers split into fresh-flight owners (ran their fn) and waiters
	// on those flights (did not); boom-waiters never run theirs. So the
	// execution count is bounded by the latecomer count — and before the
	// fix it was always zero, every caller forever sharing the stale error.
	got := int(ownRuns.Load())
	if got > n-sharedErr {
		t.Errorf("%d own runs exceed the %d callers that missed the failing flight", got, n-sharedErr)
	}
	if sharedErr < n && got == 0 {
		t.Error("latecomers arrived after the failure yet none re-ran the function (error memoized)")
	}
	if n := s.inflightLen(); n != 0 {
		t.Fatalf("inflight map holds %d entries after completion, want 0", n)
	}
}

// TestSessionRetriesTransientRunFailure is the end-to-end regression for
// the singleflight fix: a run that fails on a transient environmental
// error (here: the cache record path is unreadable) must succeed on retry
// within the same session once the condition clears. Before the fix the
// first error was memoized in the inflight map forever.
func TestSessionRetriesTransientRunFailure(t *testing.T) {
	dir := t.TempDir()
	s := NewSession(Options{Scale: 0.05, CacheDir: dir, Fingerprint: "fp"})
	spec, err := NewRunSpec("LIB", 0.05, CfgBaseline)
	if err != nil {
		t.Fatal(err)
	}
	// A directory where the record file should be makes DiskCache.Get fail
	// with a read error (EISDIR) — the transient failure.
	blocker := filepath.Join(dir, spec.Digest()+".json")
	if err := os.MkdirAll(blocker, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("LIB", CfgBaseline); err == nil {
		t.Fatal("run over an unreadable cache record must fail")
	} else if !strings.Contains(err.Error(), "cache: read") {
		t.Fatalf("unexpected failure: %v", err)
	}
	// The condition clears; the same session must now simulate and succeed.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("LIB", CfgBaseline)
	if err != nil {
		t.Fatalf("retry after the transient failure cleared: %v", err)
	}
	if res == nil || res.Stats.Cycles == 0 {
		t.Fatal("retry produced no result")
	}
	if st := s.CacheStats(); st.Simulated != 1 {
		t.Fatalf("stats after retry = %+v, want exactly one simulation", st)
	}
}
