package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestSessionConcurrentStress hammers one Session with the access pattern a
// long-running server produces: concurrent Run, Warm, and WarmObserved
// calls over overlapping pairs, with a persistently failing pair mixed in.
// Runs under -race in CI. It asserts the layered-cache invariants that
// overlap must not break:
//
//   - no duplicate simulations: every distinct successful spec simulates
//     exactly once through the memoized path, no matter how many callers
//     race for it (observed runs execute on purpose and do not count);
//   - the memo serves repeats (MemoHits > 0);
//   - errors propagate cleanly to every caller that hit the failing pair
//     and never poison the session for the good ones;
//   - the singleflight map drains to empty.
func TestSessionConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent multi-run stress")
	}
	const scale = 0.03
	s := NewSession(Options{Scale: scale, CacheDir: t.TempDir(), Fingerprint: "stress"})
	good := []Pair{
		{Abbr: "LIB", Config: CfgBaseline},
		{Abbr: "LIB", Config: CfgCtrlBmap},
		{Abbr: "SP", Config: CfgBaseline},
		{Abbr: "SP", Config: CfgCtrlBmap},
	}
	bad := Pair{Abbr: "NOPE", Config: CfgBaseline}

	const goroutines = 6
	const iters = 2
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch (g + it) % 3 {
				case 0: // single runs, plus the failing pair
					for _, p := range good {
						if _, err := s.Run(p.Abbr, p.Config); err != nil {
							t.Errorf("Run(%s): %v", p.Key(), err)
						}
					}
					if _, err := s.Run(bad.Abbr, bad.Config); err == nil {
						t.Error("Run of an unknown workload must fail")
					}
				case 1: // a warm batch with the failing pair mixed in
					err := s.Warm(append(append([]Pair{}, good...), bad))
					if err == nil {
						t.Error("Warm with a failing pair must report it")
					} else if !strings.Contains(err.Error(), "NOPE") {
						t.Errorf("Warm error does not name the failing pair: %v", err)
					}
				case 2: // observed runs over a private policy surface
					snaps, err := s.WarmObserved(good, ObsPolicy{
						Registry:    obs.NewRegistry(),
						Trace:       &obs.CollectSink{},
						SampleEvery: 2048,
						TraceSample: 64,
					})
					if err != nil {
						t.Errorf("WarmObserved: %v", err)
					} else if len(snaps) != len(good) {
						t.Errorf("WarmObserved returned %d snapshots, want %d", len(snaps), len(good))
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := s.CacheStats()
	if st.Simulated != uint64(len(good)) {
		t.Errorf("Simulated = %d, want exactly %d (one per distinct spec; duplicates mean singleflight broke)",
			st.Simulated, len(good))
	}
	if st.MemoHits == 0 {
		t.Error("no memo hits across overlapping batches — the memo layer is not serving repeats")
	}
	if st.DiskHits != 0 {
		t.Errorf("DiskHits = %d within one session, want 0", st.DiskHits)
	}
	if n := s.inflightLen(); n != 0 {
		t.Errorf("inflight map holds %d entries at quiescence, want 0", n)
	}

	// The failing pair must not have poisoned anything: a fresh round of
	// runs is served without error and without new simulations.
	for _, p := range good {
		if _, err := s.Run(p.Abbr, p.Config); err != nil {
			t.Errorf("post-stress Run(%s): %v", p.Key(), err)
		}
	}
	if st := s.CacheStats(); st.Simulated != uint64(len(good)) {
		t.Errorf("post-stress Simulated = %d, want still %d", st.Simulated, len(good))
	}
}
