package core

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestRunSpecDigestStability: digests must be deterministic, distinguish
// every axis of the spec (workload, scale, config name, resolved simulator
// parameters), and ignore runtime-only attachments.
func TestRunSpecDigestStability(t *testing.T) {
	sp, err := NewRunSpec("SP", 0.3, CfgCtrlTmap)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Digest() != sp.Digest() {
		t.Fatal("digest is not deterministic")
	}
	again, _ := NewRunSpec("SP", 0.3, CfgCtrlTmap)
	if sp.Digest() != again.Digest() {
		t.Fatal("identical specs must digest identically")
	}
	if sp.Key() != "SP/ctrl-tmap" {
		t.Errorf("key = %q", sp.Key())
	}

	diff := []RunSpec{}
	for _, mk := range []func() (RunSpec, error){
		func() (RunSpec, error) { return NewRunSpec("BFS", 0.3, CfgCtrlTmap) }, // workload
		func() (RunSpec, error) { return NewRunSpec("SP", 0.31, CfgCtrlTmap) }, // scale
		func() (RunSpec, error) { return NewRunSpec("SP", 0.3, CfgCtrlBmap) },  // config name
		func() (RunSpec, error) { // resolved sim.Config field flipped directly
			s, err := NewRunSpec("SP", 0.3, CfgCtrlTmap)
			s.Cfg.L2Lat++
			return s, err
		},
	} {
		d, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		diff = append(diff, d)
	}
	seen := map[string]string{sp.Digest(): sp.Key()}
	for _, d := range diff {
		dg := d.Digest()
		if prev, dup := seen[dg]; dup {
			t.Errorf("digest collision between %s and %s", prev, d.Key())
		}
		seen[dg] = d.Key()
	}

	if _, err := NewRunSpec("SP", 0.3, "bogus"); err == nil {
		t.Error("unknown config must not produce a spec")
	}
}

// TestDiskCacheRoundTrip: put/get round-trips the exact result; missing
// digests, corrupt records, and foreign fingerprints miss without error.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := NewDiskCache(dir, "fp-A")
	spec, _ := NewRunSpec("SP", 0.25, CfgBaseline)
	res := &RunResult{Abbr: "SP", Config: CfgBaseline}
	res.Stats.Cycles = 12345
	res.Stats.OffloadsSent = 7
	res.Energy.DRAM = 0.125

	if _, ok, err := c.Get(spec.Digest()); ok || err != nil {
		t.Fatalf("empty cache: ok=%v err=%v", ok, err)
	}
	if err := c.Put(spec, res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(spec.Digest())
	if err != nil || !ok {
		t.Fatalf("get after put: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("round trip mutated the result: %+v vs %+v", got, res)
	}

	// A different fingerprint must self-invalidate the record.
	stale := NewDiskCache(dir, "fp-B")
	if _, ok, _ := stale.Get(spec.Digest()); ok {
		t.Error("fingerprint mismatch must be a miss")
	}

	// A corrupt record degrades to a miss, not an error.
	if err := os.WriteFile(filepath.Join(dir, spec.Digest()+".json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(spec.Digest()); ok || err != nil {
		t.Errorf("corrupt record: ok=%v err=%v", ok, err)
	}
}

// TestSessionColdThenWarm is the acceptance test for the persistent layer:
// a second session over the same cache directory replays every run without
// simulating, results are identical, and flipping either the build
// fingerprint or any simulator parameter forces a fresh simulation.
func TestSessionColdThenWarm(t *testing.T) {
	dir := t.TempDir()
	const scale = 0.05

	cold := NewSession(Options{Scale: scale, CacheDir: dir, Fingerprint: "build-1"})
	a, err := cold.Run("LIB", CfgCtrlBmap)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.CacheStats(); st.Simulated != 1 || st.DiskHits != 0 {
		t.Fatalf("cold session stats = %+v", st)
	}
	// Same session, same spec: in-memory memo.
	if _, err := cold.Run("LIB", CfgCtrlBmap); err != nil {
		t.Fatal(err)
	}
	if st := cold.CacheStats(); st.MemoHits != 1 {
		t.Fatalf("memo layer missed: %+v", st)
	}

	warm := NewSession(Options{Scale: scale, CacheDir: dir, Fingerprint: "build-1"})
	b, err := warm.Run("LIB", CfgCtrlBmap)
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.CacheStats(); st.DiskHits != 1 || st.Simulated != 0 {
		t.Fatalf("warm session must replay from disk: %+v", st)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("replayed result differs:\ncold %+v\nwarm %+v", a, b)
	}

	// A new build fingerprint invalidates every record.
	rebuilt := NewSession(Options{Scale: scale, CacheDir: dir, Fingerprint: "build-2"})
	if _, err := rebuilt.Run("LIB", CfgCtrlBmap); err != nil {
		t.Fatal(err)
	}
	if st := rebuilt.CacheStats(); st.Simulated != 1 || st.DiskHits != 0 {
		t.Fatalf("stale fingerprint must simulate: %+v", st)
	}

	// A different scale is a different spec — no false sharing.
	rescaled := NewSession(Options{Scale: scale * 2, CacheDir: dir, Fingerprint: "build-1"})
	if _, err := rescaled.Run("LIB", CfgCtrlBmap); err != nil {
		t.Fatal(err)
	}
	if st := rescaled.CacheStats(); st.Simulated != 1 {
		t.Fatalf("different scale must miss: %+v", st)
	}

	// Cache files are keyed by digest.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".json") {
			names++
		}
	}
	// build-1 wrote LIB@0.05 and LIB@0.1; build-2 overwrote LIB@0.05.
	if names != 2 {
		t.Errorf("cache holds %d records, want 2: %v", names, ents)
	}
}

// TestSessionWithoutCacheDir: the persistent layer stays disabled unless
// asked for — no .tomcache directory appears as a test side effect.
func TestSessionWithoutCacheDir(t *testing.T) {
	s := NewSession(Options{Scale: 0.05})
	if s.CacheDir() != "" {
		t.Fatalf("cache dir = %q, want disabled", s.CacheDir())
	}
	if _, err := s.Run("LIB", CfgBaseline); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Simulated != 1 || st.DiskHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestWarmPopulatesDiskCache: a warmed matrix must be fully replayable by a
// later session — the CI cold-then-warm smoke job in .github/workflows
// asserts the same property end-to-end through cmd/tomx.
func TestWarmPopulatesDiskCache(t *testing.T) {
	dir := t.TempDir()
	pairs := []Pair{
		{Abbr: "LIB", Config: CfgBaseline},
		{Abbr: "LIB", Config: CfgCtrlTmap},
		{Abbr: "SP", Config: CfgBaseline},
		{Abbr: "SP", Config: CfgCtrlTmap},
	}
	cold := NewSession(Options{Scale: 0.05, CacheDir: dir, Fingerprint: "fp"})
	if err := cold.Warm(pairs); err != nil {
		t.Fatal(err)
	}
	if st := cold.CacheStats(); st.Simulated != uint64(len(pairs)) {
		t.Fatalf("cold stats = %+v", st)
	}
	warm := NewSession(Options{Scale: 0.05, CacheDir: dir, Fingerprint: "fp"})
	if err := warm.Warm(pairs); err != nil {
		t.Fatal(err)
	}
	if st := warm.CacheStats(); st.DiskHits != uint64(len(pairs)) || st.Simulated != 0 {
		t.Fatalf("warm pass must be a pure replay: %+v", st)
	}
	for _, p := range pairs {
		a, _ := cold.Run(p.Abbr, p.Config)
		b, _ := warm.Run(p.Abbr, p.Config)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: replay differs", p.Key())
		}
	}
}
