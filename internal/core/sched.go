package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Scheduler is a bounded work-stealing executor for simulation batches. It
// generalizes the worker-pool shape forEachPair grew inside this package:
// one Scheduler can be shared by many concurrent submitters (cmd/tomserve
// runs every HTTP batch through a single instance), and the worker bound
// holds across all of them — a server under load never runs more
// simulations at once than it has slots, no matter how many batches are in
// flight.
//
// Work distribution is stealing, not sharing: ForEach pre-partitions the
// index space into one contiguous range per worker; each worker drains its
// own range from the front and, when empty, steals from the back of the
// fullest remaining victim. Simulation costs per item are wildly uneven
// (a baseline LIB cell and a ctrl-tmap RAY cell differ by orders of
// magnitude), so a worker that drew the cheap partition ends up finishing
// the expensive one's tail instead of idling.
type Scheduler struct {
	workers int
	// slots is the global concurrency semaphore. Workers of every ForEach
	// call acquire a slot before touching work, so concurrent batches share
	// the bound instead of multiplying it.
	slots chan struct{}
}

// NewScheduler returns a scheduler bounded to the given number of
// concurrently running items; workers <= 0 selects GOMAXPROCS.
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{workers: workers, slots: make(chan struct{}, workers)}
}

// Workers returns the scheduler's concurrency bound.
func (sc *Scheduler) Workers() int { return sc.workers }

// stealRange is one worker's share of the index space: the half-open
// interval [next, limit), packed into one atomic word (next in the high 32
// bits, limit in the low 32) so the owner's front-pop and a thief's
// back-pop serialize through CAS without a lock.
type stealRange struct {
	v atomic.Uint64
}

func packRange(next, limit uint32) uint64 { return uint64(next)<<32 | uint64(limit) }

func (r *stealRange) store(next, limit int) {
	r.v.Store(packRange(uint32(next), uint32(limit)))
}

// takeFront claims the lowest remaining index (the owner's side).
func (r *stealRange) takeFront() (int, bool) {
	for {
		cur := r.v.Load()
		next, limit := uint32(cur>>32), uint32(cur)
		if next >= limit {
			return 0, false
		}
		if r.v.CompareAndSwap(cur, packRange(next+1, limit)) {
			return int(next), true
		}
	}
}

// takeBack claims the highest remaining index (the thief's side).
func (r *stealRange) takeBack() (int, bool) {
	for {
		cur := r.v.Load()
		next, limit := uint32(cur>>32), uint32(cur)
		if next >= limit {
			return 0, false
		}
		if r.v.CompareAndSwap(cur, packRange(next, limit-1)) {
			return int(limit - 1), true
		}
	}
}

// remaining reports how many indices the range still holds.
func (r *stealRange) remaining() int {
	cur := r.v.Load()
	next, limit := uint32(cur>>32), uint32(cur)
	if next >= limit {
		return 0
	}
	return int(limit - next)
}

// ForEach runs fn(i) for every i in [0, n) across the scheduler's workers
// and returns one error slot per index (nil on success). Every index runs
// at most once. When ctx is cancelled, items already running finish (a
// simulation cannot be interrupted mid-run) and every index that never
// started carries ctx.Err() in its slot.
//
// ForEach is safe for concurrent use; concurrent calls contend for the
// same worker slots, keeping the global bound.
func (sc *Scheduler) ForEach(ctx context.Context, n int, fn func(int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	workers := sc.workers
	if workers > n {
		workers = n
	}

	// Pre-partition [0, n) into one contiguous range per worker.
	queues := make([]stealRange, workers)
	per, extra := n/workers, n%workers
	lo := 0
	for w := range queues {
		hi := lo + per
		if w < extra {
			hi++
		}
		queues[w].store(lo, hi)
		lo = hi
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			select {
			case sc.slots <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sc.slots }()
			for {
				if ctx.Err() != nil {
					return
				}
				i, ok := queues[w].takeFront()
				if !ok {
					// Own range drained: steal from the back of the
					// fullest victim, so contention with its owner stays
					// minimal and the largest tail gets help first.
					victim, best := -1, 0
					for v := range queues {
						if v == w {
							continue
						}
						if r := queues[v].remaining(); r > best {
							victim, best = v, r
						}
					}
					if victim < 0 {
						return // nothing left anywhere
					}
					if i, ok = queues[victim].takeBack(); !ok {
						continue // lost the race; rescan
					}
				}
				if err := fn(i); err != nil {
					errs[i] = err
				}
			}
		}(w)
	}
	wg.Wait()

	// Mark everything that never started. Each remaining index is claimed
	// exactly once here, after all workers exited, so the slots are safe.
	if err := ctx.Err(); err != nil {
		for w := range queues {
			for {
				i, ok := queues[w].takeFront()
				if !ok {
					break
				}
				errs[i] = err
			}
		}
	}
	return errs
}
