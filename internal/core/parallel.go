package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/obs"
)

// flight deduplicates concurrent computations of the same key: the first
// caller computes, later callers wait. Protected by Session.mu.
type flight struct {
	done chan struct{}
	err  error
}

// once runs fn for key exactly once across goroutines; concurrent callers
// block until the first finishes. Results are communicated through the
// Session's memo maps (fn must store its own result under s.mu).
func (s *Session) once(key string, fn func() error) error {
	s.mu.Lock()
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-f.done
		return f.err
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	f.err = fn()
	close(f.done)
	return f.err
}

// Pair names one (workload, configuration) run.
type Pair struct {
	Abbr   string
	Config ConfigName
}

// Key returns the run identity ("ABBR/config").
func (p Pair) Key() string { return p.Abbr + "/" + string(p.Config) }

// forEachPair runs fn over pairs on a bounded worker pool and joins every
// failure, reported in submission order so the message is deterministic.
func forEachPair(pairs []Pair, fn func(Pair) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan Pair)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	errs := make(map[Pair]error)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range ch {
				if err := fn(p); err != nil {
					errMu.Lock()
					errs[p] = err
					errMu.Unlock()
				}
			}
		}()
	}
	for _, p := range pairs {
		ch <- p
	}
	close(ch)
	wg.Wait()
	if len(errs) == 0 {
		return nil
	}
	var joined []error
	for _, p := range pairs {
		if err, ok := errs[p]; ok {
			joined = append(joined, fmt.Errorf("warm %s: %w", p.Key(), err))
		}
	}
	return errors.Join(joined...)
}

// Warm executes the given runs in parallel (bounded by GOMAXPROCS),
// populating the memo (and, when enabled, the persistent cache) so
// subsequent Run calls return instantly. Every failing (workload,
// configuration) pair is reported: the returned error joins one wrapped
// error per failure.
func (s *Session) Warm(pairs []Pair) error {
	return forEachPair(pairs, func(p Pair) error {
		_, err := s.Run(p.Abbr, p.Config)
		return err
	})
}

// ObsPolicy describes how a batch of observed runs shares one observability
// surface: each run gets a scoped, label-prefixed view of Registry (its
// metrics appear under "ABBR/config/..."), and trace events — optionally
// sampled per kind — are stamped with the run label before reaching the
// shared sink. This is what makes observed runs safe to execute in
// parallel: the registry primitives are race-safe and the prefixes keep
// concurrent runs from colliding on metric names.
type ObsPolicy struct {
	// Registry is the shared root registry. Required.
	Registry *obs.Registry
	// Trace, when non-nil, receives every run's lifecycle events (labeled,
	// and sampled when TraceSample > 1). Must be safe for concurrent Emit.
	Trace obs.EventSink
	// SampleEvery is the metrics sampling interval in cycles (0 = default).
	SampleEvery int64
	// TraceSample keeps one trace event in every TraceSample per event
	// kind per run (<= 1 keeps everything).
	TraceSample int
}

// Observer builds the scoped observer for one run and returns it together
// with the scoped registry view (whose Snapshot covers just this run).
func (p *ObsPolicy) Observer(pair Pair) (*obs.Observer, *obs.Registry) {
	scoped := p.Registry.Scoped(pair.Key() + "/")
	o := &obs.Observer{Registry: scoped, SampleEvery: p.SampleEvery}
	if p.Trace != nil {
		var sink obs.EventSink = obs.NewLabelSink(p.Trace, pair.Key())
		if p.TraceSample > 1 {
			sink = obs.NewSamplingSink(sink, p.TraceSample)
		}
		o.Trace = sink
	}
	return o, scoped
}

// WarmObserved executes the given runs in parallel, each with a scoped
// observer onto the policy's shared registry, and returns each run's
// scoped metrics snapshot. Like RunObserved, results are verified but not
// memoized. Failures are joined as in Warm; snapshots of failed runs are
// absent from the result.
func (s *Session) WarmObserved(pairs []Pair, policy ObsPolicy) (map[Pair]*obs.Snapshot, error) {
	out := make(map[Pair]*obs.Snapshot, len(pairs))
	var outMu sync.Mutex
	err := forEachPair(pairs, func(p Pair) error {
		o, scoped := policy.Observer(p)
		if _, err := s.RunObserved(p.Abbr, p.Config, o); err != nil {
			return err
		}
		// Flush the run's sink chain: a sampling sink emits its per-kind
		// trace_sampled summaries here (labeled with this run), so the
		// shared trace states per run what was sampled away.
		if err := obs.Flush(o.Trace); err != nil {
			return err
		}
		outMu.Lock()
		out[p] = scoped.Snapshot()
		outMu.Unlock()
		return nil
	})
	return out, err
}

// FullMatrix lists every (workload, configuration) pair the complete
// experiment suite needs: all of AllConfigNames over all workloads.
func FullMatrix() []Pair {
	var pairs []Pair
	for _, c := range AllConfigNames() {
		for _, a := range Abbrs() {
			pairs = append(pairs, Pair{Abbr: a, Config: c})
		}
	}
	return pairs
}
