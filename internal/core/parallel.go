package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// flight deduplicates concurrent computations of the same key: the first
// caller computes, later callers wait. Protected by Session.mu. A flight
// lives in Session.inflight only while it is running — it is deleted the
// moment the computation finishes, so the map never grows beyond the work
// actually in progress and a failed computation never memoizes its error
// (callers arriving after the failure start a fresh flight; this is what
// makes a transient failure retryable within one long-lived session).
type flight struct {
	done chan struct{}
	err  error
}

// once runs fn for key exactly once among concurrent callers; callers that
// arrive while a flight is running block until it finishes and share its
// error. Results are communicated through the Session's memo maps (fn must
// store its own result under s.mu), so a successful flight's work is found
// there by later callers and a failed flight leaves nothing behind.
func (s *Session) once(key string, fn func() error) error {
	s.mu.Lock()
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-f.done
		return f.err
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	f.err = fn()
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(f.done)
	return f.err
}

// Pair names one (workload, configuration) run.
type Pair struct {
	Abbr   string
	Config ConfigName
}

// Key returns the run identity ("ABBR/config").
func (p Pair) Key() string { return p.Abbr + "/" + string(p.Config) }

// forEachPair runs fn over pairs on a work-stealing pool bounded by
// GOMAXPROCS and joins every failure, reported in submission order so the
// message is deterministic.
func forEachPair(pairs []Pair, fn func(Pair) error) error {
	errs := NewScheduler(0).ForEach(context.Background(), len(pairs), func(i int) error {
		return fn(pairs[i])
	})
	var joined []error
	for i, p := range pairs {
		if errs[i] != nil {
			joined = append(joined, fmt.Errorf("warm %s: %w", p.Key(), errs[i]))
		}
	}
	return errors.Join(joined...)
}

// Warm executes the given runs in parallel (bounded by GOMAXPROCS),
// populating the memo (and, when enabled, the persistent cache) so
// subsequent Run calls return instantly. Every failing (workload,
// configuration) pair is reported: the returned error joins one wrapped
// error per failure.
func (s *Session) Warm(pairs []Pair) error {
	return forEachPair(pairs, func(p Pair) error {
		_, err := s.Run(p.Abbr, p.Config)
		return err
	})
}

// ObsPolicy describes how a batch of observed runs shares one observability
// surface: each run gets a scoped, label-prefixed view of Registry (its
// metrics appear under "ABBR/config/..."), and trace events — optionally
// sampled per kind — are stamped with the run label before reaching the
// shared sink. This is what makes observed runs safe to execute in
// parallel: the registry primitives are race-safe and the prefixes keep
// concurrent runs from colliding on metric names.
type ObsPolicy struct {
	// Registry is the shared root registry. Required.
	Registry *obs.Registry
	// Trace, when non-nil, receives every run's lifecycle events (labeled,
	// and sampled when TraceSample > 1). Must be safe for concurrent Emit.
	Trace obs.EventSink
	// SampleEvery is the metrics sampling interval in cycles (0 = default).
	SampleEvery int64
	// TraceSample keeps one trace event in every TraceSample per event
	// kind per run (<= 1 keeps everything).
	TraceSample int
}

// Observer builds the scoped observer for one run and returns it together
// with the scoped registry view (whose Snapshot covers just this run).
func (p *ObsPolicy) Observer(pair Pair) (*obs.Observer, *obs.Registry) {
	return p.ObserverFor(pair.Key())
}

// ObserverFor builds the scoped observer for one run label ("ABBR/config"
// for named pairs; any unique string works) and returns it together with
// the scoped registry view.
func (p *ObsPolicy) ObserverFor(label string) (*obs.Observer, *obs.Registry) {
	scoped := p.Registry.Scoped(label + "/")
	o := &obs.Observer{Registry: scoped, SampleEvery: p.SampleEvery}
	if p.Trace != nil {
		var sink obs.EventSink = obs.NewLabelSink(p.Trace, label)
		if p.TraceSample > 1 {
			sink = obs.NewSamplingSink(sink, p.TraceSample)
		}
		o.Trace = sink
	}
	return o, scoped
}

// observedOne executes one observed run through exec with a policy-scoped
// observer and returns the run's scoped snapshot. The sink chain is flushed
// on success and failure alike: a sampling sink emits its per-kind
// trace_sampled conservation summaries at flush, and a run that failed
// halfway has already pushed events through the chain — swallowing the
// flush on the error path would make the shared trace under-report what
// was sampled away.
func (s *Session) observedOne(label string, policy ObsPolicy, exec func(*obs.Observer) error) (*obs.Snapshot, error) {
	o, scoped := policy.ObserverFor(label)
	runErr := exec(o)
	flushErr := obs.Flush(o.Trace)
	if runErr != nil {
		return nil, runErr
	}
	if flushErr != nil {
		return nil, flushErr
	}
	return scoped.Snapshot(), nil
}

// WarmObserved executes the given runs in parallel, each with a scoped
// observer onto the policy's shared registry, and returns each run's
// scoped metrics snapshot. Like RunObserved, results are verified but not
// memoized. Failures are joined as in Warm; snapshots of failed runs are
// absent from the result.
func (s *Session) WarmObserved(pairs []Pair, policy ObsPolicy) (map[Pair]*obs.Snapshot, error) {
	out := make(map[Pair]*obs.Snapshot, len(pairs))
	var outMu sync.Mutex
	err := forEachPair(pairs, func(p Pair) error {
		snap, err := s.observedOne(p.Key(), policy, func(o *obs.Observer) error {
			_, err := s.RunObserved(p.Abbr, p.Config, o)
			return err
		})
		if err != nil {
			return err
		}
		outMu.Lock()
		out[p] = snap
		outMu.Unlock()
		return nil
	})
	return out, err
}

// WarmSpecsObserved is WarmObserved over fully-resolved specs: each spec
// executes with a scoped observer labeled spec.Key(), and the result slice
// aligns with specs (nil snapshot for a failed run). Callers batching
// specs that share a Key (same workload and configuration name with
// different resolved parameters) should expect their metrics to merge
// under one label. Failures are joined as in Warm.
func (s *Session) WarmSpecsObserved(specs []RunSpec, policy ObsPolicy) ([]*obs.Snapshot, error) {
	out := make([]*obs.Snapshot, len(specs))
	errs := NewScheduler(0).ForEach(context.Background(), len(specs), func(i int) error {
		snap, err := s.observedOne(specs[i].Key(), policy, func(o *obs.Observer) error {
			_, err := s.RunSpecObserved(specs[i], o)
			return err
		})
		if err != nil {
			return err
		}
		out[i] = snap
		return nil
	})
	var joined []error
	for i, sp := range specs {
		if errs[i] != nil {
			joined = append(joined, fmt.Errorf("warm %s: %w", sp.Key(), errs[i]))
		}
	}
	return out, errors.Join(joined...)
}

// FullMatrix lists every (workload, configuration) pair the complete
// experiment suite needs: all of AllConfigNames over all workloads.
func FullMatrix() []Pair {
	var pairs []Pair
	for _, c := range AllConfigNames() {
		for _, a := range Abbrs() {
			pairs = append(pairs, Pair{Abbr: a, Config: c})
		}
	}
	return pairs
}
