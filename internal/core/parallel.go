package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// flight deduplicates concurrent computations of the same key: the first
// caller computes, later callers wait. Protected by Runner.mu.
type flight struct {
	done chan struct{}
	err  error
}

// once runs fn for key exactly once across goroutines; concurrent callers
// block until the first finishes. Results are communicated through the
// Runner's memo maps (fn must store its own result under r.mu).
func (r *Runner) once(key string, fn func() error) error {
	r.mu.Lock()
	if f, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		<-f.done
		return f.err
	}
	f := &flight{done: make(chan struct{})}
	r.inflight[key] = f
	r.mu.Unlock()

	f.err = fn()
	close(f.done)
	return f.err
}

// Pair names one (workload, configuration) run.
type Pair struct {
	Abbr   string
	Config ConfigName
}

// Warm executes the given runs in parallel (bounded by GOMAXPROCS),
// populating the memo cache so subsequent Run calls return instantly.
// Every failing (workload, configuration) pair is reported: the returned
// error joins one wrapped error per failure.
func (r *Runner) Warm(pairs []Pair) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan Pair)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	errs := make(map[Pair]error)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range ch {
				if _, err := r.Run(p.Abbr, p.Config); err != nil {
					errMu.Lock()
					errs[p] = err
					errMu.Unlock()
				}
			}
		}()
	}
	for _, p := range pairs {
		ch <- p
	}
	close(ch)
	wg.Wait()
	if len(errs) == 0 {
		return nil
	}
	// Report in submission order so the joined message is deterministic.
	var joined []error
	for _, p := range pairs {
		if err, ok := errs[p]; ok {
			joined = append(joined, fmt.Errorf("warm %s/%s: %w", p.Abbr, p.Config, err))
		}
	}
	return errors.Join(joined...)
}

// FullMatrix lists every (workload, configuration) pair the complete
// experiment suite needs: all of AllConfigNames over all workloads.
func FullMatrix() []Pair {
	var pairs []Pair
	for _, c := range AllConfigNames() {
		for _, a := range Abbrs() {
			pairs = append(pairs, Pair{Abbr: a, Config: c})
		}
	}
	return pairs
}
