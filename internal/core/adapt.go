package core

import (
	"fmt"
	"strings"

	"repro/internal/compiler"
	"repro/internal/sim"
)

// AdaptSpec is the identity of an adaptive run's feedback component: the
// profiling scale and the refinement thresholds. It is part of RunSpec and
// of the cache digest (see RunSpec.Digest), so adaptive and static runs of
// the same configuration never collide in any cache layer.
type AdaptSpec struct {
	// ProfileFrac scales the profiling pass: it runs at the session's
	// scale multiplied by this fraction (§3.2's learning philosophy —
	// observe a small prefix, commit for the rest).
	ProfileFrac float64
	// DemoteGateRate and MinDecisions mirror compiler.RefineParams.
	DemoteGateRate float64
	MinDecisions   uint64
}

// AdaptOptions configures RunAdaptive. The zero value selects defaults.
type AdaptOptions struct {
	// ProfileFrac is the profiling-pass scale fraction (default 0.25).
	ProfileFrac float64
	// Refine overrides the refinement parameters; a zero value selects
	// compiler.DefaultRefineParams().
	Refine compiler.RefineParams
}

func (o AdaptOptions) withDefaults() AdaptOptions {
	if o.ProfileFrac <= 0 {
		o.ProfileFrac = 0.25
	}
	if o.Refine == (compiler.RefineParams{}) {
		o.Refine = compiler.DefaultRefineParams()
	}
	return o
}

// spec projects the options onto the digest-relevant identity.
func (o AdaptOptions) spec() AdaptSpec {
	return AdaptSpec{
		ProfileFrac:    o.ProfileFrac,
		DemoteGateRate: o.Refine.DemoteGateRate,
		MinDecisions:   o.Refine.MinDecisions,
	}
}

// AdaptiveRun bundles the two passes of one adaptive measurement.
type AdaptiveRun struct {
	// Profile is the reduced-scale profiling pass whose per-PC gate table
	// fed the refinement.
	Profile *RunResult
	// Result is the full-scale run with the refined candidate set.
	Result *RunResult
	// Spec records the feedback parameters in force.
	Spec AdaptSpec
}

// profileSession returns (creating once) the reduced-scale sub-session for
// a profile fraction. It shares the parent's persistent cache, so the
// profiling pass replays across processes like any other run.
func (s *Session) profileSession(frac float64) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.profSessions == nil {
		s.profSessions = map[float64]*Session{}
	}
	ps, ok := s.profSessions[frac]
	if !ok {
		ps = NewSession(Options{Scale: s.Scale * frac, Progress: s.Progress})
		ps.cache = s.cache
		s.profSessions[frac] = ps
	}
	return ps
}

// RunAdaptive closes the offload-marking loop for one workload ×
// configuration: a short profiling run observes where the runtime gates
// (the per-PC decision table sim.Stats.PCStats), compiler.Refine demotes
// candidates whose observed gate rate shows static marking got it wrong
// and re-tags SavesTX/SavesRX from observed trip counts, and the full run
// executes with the refined candidate set. Both passes go through the
// layered caches; the full pass's spec carries the AdaptSpec, so it is
// cached independently of the static run.
func (s *Session) RunAdaptive(abbr string, name ConfigName, o AdaptOptions) (*AdaptiveRun, error) {
	o = o.withDefaults()
	prof, err := s.profileSession(o.ProfileFrac).Run(abbr, name)
	if err != nil {
		return nil, fmt.Errorf("adaptive profile pass: %w", err)
	}
	spec, err := s.Spec(abbr, name)
	if err != nil {
		return nil, err
	}
	ad := o.spec()
	spec.Adapt = &ad
	table := prof.Stats.PCStats
	params := o.Refine
	res, err := s.runSpec(spec, func(sys *sim.System) {
		sys.ApplyGateFeedback(table, params)
	})
	if err != nil {
		return nil, err
	}
	return &AdaptiveRun{Profile: prof, Result: res, Spec: ad}, nil
}

// Adapt compares static offload control against the adaptive
// profile-and-refine loop over the Fig. 9 workload set: speedups over the
// baseline for both, plus how many candidates the feedback demoted or
// re-tagged. The notes carry each workload's per-PC gate rates from the
// profiling pass — the observed evidence the refinement acted on.
func (r *Runner) Adapt() (*Table, error) {
	t := &Table{
		ID: "adapt", Title: "Static vs. adaptive (gate-feedback) offload control",
		Columns: workloadColumns(),
		Notes: []string{
			"adaptive = profile run -> per-PC gate-rate refinement -> full run (ctrl-tmap)",
		},
	}
	var static, adaptive, demoted, retagged []float64
	for _, abbr := range Abbrs() {
		b, err := r.Run(abbr, CfgBaseline)
		if err != nil {
			return nil, err
		}
		st, err := r.Run(abbr, CfgCtrlTmap)
		if err != nil {
			return nil, err
		}
		ad, err := r.RunAdaptive(abbr, CfgCtrlTmap, AdaptOptions{})
		if err != nil {
			return nil, err
		}
		static = append(static, st.Stats.IPC()/b.Stats.IPC())
		adaptive = append(adaptive, ad.Result.Stats.IPC()/b.Stats.IPC())
		demoted = append(demoted, float64(ad.Result.Stats.RefineDemoted))
		retagged = append(retagged, float64(ad.Result.Stats.RefineRetagged))
		if note := gateRateNote(abbr, ad.Profile.Stats.PCStats); note != "" {
			t.Notes = append(t.Notes, note)
		}
	}
	t.Rows = append(t.Rows,
		Row{Label: "static ctrl-tmap", Values: withAvg(static, GeoMean)},
		Row{Label: "adaptive ctrl-tmap", Values: withAvg(adaptive, GeoMean)},
		Row{Label: "demoted candidates", Values: withAvg(demoted, Mean)},
		Row{Label: "re-tagged candidates", Values: withAvg(retagged, Mean)},
	)
	return t, nil
}

// gateRateNote renders one workload's per-PC gate rates ("" when the
// profile saw no candidate entries).
func gateRateNote(abbr string, prof compiler.GateProfile) string {
	var parts []string
	for _, pc := range prof.PCs() {
		g := prof[pc]
		if g.Decisions() == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("pc%d gated %.0f%% (%d/%d, mean trips %.0f)",
			pc, g.GateRate()*100, g.Gated(), g.Decisions(), g.MeanTrips()))
	}
	if len(parts) == 0 {
		return ""
	}
	return abbr + ": " + strings.Join(parts, "; ")
}
