package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/compiler"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/sim"
)

// AdaptSpec is the identity of an adaptive run's feedback component: the
// profiling scale, the refinement thresholds, the cost model, and — for
// iterated runs — the loop identity. It is part of RunSpec and of the cache
// digest (see RunSpec.Digest), so adaptive and static runs of the same
// configuration never collide in any cache layer, and neither do two
// adaptive runs differing in any feedback parameter.
type AdaptSpec struct {
	// ProfileFrac scales the profiling pass: it runs at the session's
	// scale multiplied by this fraction (§3.2's learning philosophy —
	// observe a small prefix, commit for the rest).
	ProfileFrac float64
	// DemoteGateRate and MinDecisions mirror compiler.RefineParams.
	DemoteGateRate float64
	MinDecisions   uint64
	// Cost is the cost model marking and re-tagging evaluate equations
	// (3)/(4) with. It was once dropped from the spec, aliasing adaptive
	// runs that differed only in cost constants onto one cache record.
	Cost compiler.CostParams
	// Iterations is the iterated fixed-point bound (0 = single-pass
	// RunAdaptive), so iterated results never collide with single-pass
	// ones.
	Iterations int
	// Iteration marks the i-th intermediate profiling pass of an iterated
	// run (1-based; 0 = the full measurement pass). Intermediate passes
	// leave Iterations zero so passes are shared across bounds: pass i
	// depends only on passes before it, never on the bound.
	Iteration int
	// FeedbackDigest is the content hash (profileDigest) of the gate
	// profile this run applies through ApplyGateFeedback — the spec-level
	// record of what the prep hook changes, so replays can never diverge
	// from fresh executions.
	FeedbackDigest string
}

// DefaultAdaptIterations bounds RunAdaptiveIterated's profile→refine loop
// when AdaptOptions.Iterations is zero.
const DefaultAdaptIterations = 3

// AdaptOptions configures RunAdaptive and RunAdaptiveIterated. The zero
// value selects defaults.
type AdaptOptions struct {
	// ProfileFrac is the profiling-pass scale fraction (default 0.25).
	ProfileFrac float64
	// Refine overrides the refinement parameters; a zero value selects
	// compiler.DefaultRefineParams(). A partially-set value with a zero
	// Cost gets the default cost model.
	Refine compiler.RefineParams
	// Iterations bounds the iterated fixed-point loop (default
	// DefaultAdaptIterations). RunAdaptive ignores it (single pass).
	Iterations int
}

func (o AdaptOptions) withDefaults() AdaptOptions {
	if o.ProfileFrac <= 0 {
		o.ProfileFrac = 0.25
	}
	if o.Refine == (compiler.RefineParams{}) {
		o.Refine = compiler.DefaultRefineParams()
	}
	if o.Refine.Cost == (compiler.CostParams{}) {
		o.Refine.Cost = compiler.DefaultCostParams()
	}
	if o.Iterations <= 0 {
		o.Iterations = DefaultAdaptIterations
	}
	return o
}

// spec projects the options onto the digest-relevant identity (loop fields
// are filled in by the adaptive loop as passes are issued).
func (o AdaptOptions) spec() AdaptSpec {
	return AdaptSpec{
		ProfileFrac:    o.ProfileFrac,
		DemoteGateRate: o.Refine.DemoteGateRate,
		MinDecisions:   o.Refine.MinDecisions,
		Cost:           o.Refine.Cost,
		Iterations:     o.Iterations,
	}
}

// profileDigest content-hashes an observed gate profile: sorted PCs, every
// counter. It keys intermediate iterated passes (the table they apply) and
// stamps the full pass's spec, making the prep hook's effect part of the
// run identity.
func profileDigest(p compiler.GateProfile) string {
	h := sha256.New()
	for _, pc := range p.PCs() {
		g := p[pc]
		fmt.Fprintf(h, "%d:%d,%d,%d,%d,%d,%d,%d,%d,%d;",
			pc, g.Sent, g.SkippedCond, g.SkippedBusy, g.SkippedFull,
			g.SkippedALU, g.SkippedNoDest, g.LearnEntries, g.TripSum, g.TripObs)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// AdaptIteration summarizes one profile→refine iteration: what the
// refinement would change given everything observed so far.
type AdaptIteration struct {
	Iteration int `json:"iteration"`
	// Demoted and Retagged are the candidate start PCs the accumulated
	// profile demotes / re-tags — the fixed-point state the loop compares
	// across iterations.
	Demoted  []int `json:"demoted,omitempty"`
	Retagged []int `json:"retagged,omitempty"`
	// Decisions counts the offload decisions this pass observed.
	Decisions uint64 `json:"decisions,omitempty"`
}

// AdaptiveRun bundles the passes of one adaptive measurement.
type AdaptiveRun struct {
	// Profile is the last reduced-scale profiling pass (nil when the
	// converged table came from the persisted feedback store).
	Profile *RunResult
	// Result is the full-scale run with the refined candidate set.
	Result *RunResult
	// Spec records the feedback parameters of the full pass, including the
	// digest of the applied gate profile.
	Spec AdaptSpec
	// Iterations is the number of profiling iterations behind Feedback
	// (replayed from the store record on a store hit).
	Iterations int
	// Converged reports whether the demoted/retagged sets reached a fixed
	// point before the iteration bound; ConvergedAt is the iteration at
	// which they did (0 when the bound was hit first).
	Converged   bool
	ConvergedAt int
	// History holds one entry per profiling iteration.
	History []AdaptIteration
	// Feedback is the merged gate profile the full pass ran with.
	Feedback compiler.GateProfile
	// FromStore reports that Feedback was loaded from the persisted
	// per-workload store instead of being re-profiled.
	FromStore bool
}

// profileSession returns (creating once) the reduced-scale sub-session for
// a profile fraction. It shares the parent's persistent cache, so the
// profiling pass replays across processes like any other run.
func (s *Session) profileSession(frac float64) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.profSessions == nil {
		s.profSessions = map[float64]*Session{}
	}
	ps, ok := s.profSessions[frac]
	if !ok {
		ps = NewSession(Options{Scale: s.Scale * frac, Progress: s.Progress})
		ps.cache = s.cache
		s.profSessions[frac] = ps
	}
	return ps
}

// RunAdaptive closes the offload-marking loop for one workload ×
// configuration with a single profile→refine pass: a short profiling run
// observes where the runtime gates (the per-PC decision table
// sim.Stats.PCStats), compiler.Refine demotes candidates whose observed
// gate rate shows static marking got it wrong and re-tags SavesTX/SavesRX
// from observed trip counts, and the full run executes with the refined
// candidate set. Both passes go through the layered caches; each pass's
// spec carries its AdaptSpec, so it is cached independently of the static
// run. The persisted feedback store is not consulted — see
// RunAdaptiveIterated.
func (s *Session) RunAdaptive(abbr string, name ConfigName, o AdaptOptions) (*AdaptiveRun, error) {
	o = o.withDefaults()
	o.Iterations = 0 // single-pass identity; loop bound below is one
	return s.runAdaptiveLoop(abbr, name, o, 1, false)
}

// RunAdaptiveIterated iterates RunAdaptive's loop to a fixed point:
// profile → refine → profile again (each pass running with the refinement
// accumulated so far) until the demoted/retagged candidate sets stop
// changing or o.Iterations passes have run. Successive per-PC gate tables
// are merged (GateProfile.Merge), so the full run commits to everything
// observed. When the session has a persistent cache, the converged
// refinement is stored per (workload, configuration, AdaptSpec) under
// <cache-dir>/feedback/; a later session starts from the stored table with
// no profiling pass at all.
func (s *Session) RunAdaptiveIterated(abbr string, name ConfigName, o AdaptOptions) (*AdaptiveRun, error) {
	o = o.withDefaults()
	return s.runAdaptiveLoop(abbr, name, o, o.Iterations, true)
}

// runAdaptiveLoop is the shared engine: bound profiling iterations, fixed
// point on the refinement outcome, optional persisted-store use.
func (s *Session) runAdaptiveLoop(abbr string, name ConfigName, o AdaptOptions, bound int, useStore bool) (*AdaptiveRun, error) {
	spec, err := s.Spec(abbr, name)
	if err != nil {
		return nil, err
	}
	ad := o.spec()
	key := spec.Key()
	params := o.Refine

	// Store key: the full-pass identity before the converged table is
	// known. Deterministic upfront, so a later session derives the same
	// key without profiling.
	var storeKey string
	if useStore && s.feedback != nil {
		keySpec := spec
		keyAd := ad
		keySpec.Adapt = &keyAd
		storeKey = keySpec.Digest()
		if rec, ok, err := s.feedback.Get(storeKey); err != nil {
			return nil, err
		} else if ok {
			s.countFeedback(1, 0)
			s.emitAdapt(obs.Event{Kind: obs.EvFeedbackStore, Run: key, Reason: "hit", N: rec.Iterations})
			return s.finishAdaptive(spec, ad, params, &AdaptiveRun{
				Iterations:  rec.Iterations,
				Converged:   rec.Converged,
				ConvergedAt: rec.ConvergedAt,
				History:     rec.History,
				Feedback:    rec.Profile,
				FromStore:   true,
			})
		}
		s.countFeedback(0, 1)
		s.emitAdapt(obs.Event{Kind: obs.EvFeedbackStore, Run: key, Reason: "miss"})
	}

	ps := s.profileSession(o.ProfileFrac)
	merged := compiler.GateProfile{}
	run := &AdaptiveRun{}
	var prevDemoted, prevRetagged []int
	for i := 1; i <= bound; i++ {
		pspec, err := ps.Spec(abbr, name)
		if err != nil {
			return nil, err
		}
		pad := ad
		pad.Iterations = 0 // share passes across bounds: pass i never depends on the bound
		pad.Iteration = i
		pad.FeedbackDigest = profileDigest(merged)
		pspec.Adapt = &pad
		// Apply the accumulated table even on the first pass (when it is
		// empty and refines nothing): installing the feedback parameters is
		// what makes the simulator mark candidates with params.Cost, so
		// every pass of the loop — and the full run — shares one cost model.
		applied := merged.Clone()
		prof, err := ps.runSpec(pspec, func(sys *sim.System) {
			sys.ApplyGateFeedback(applied, params)
		})
		if err != nil {
			return nil, fmt.Errorf("adaptive profile pass %d: %w", i, err)
		}
		run.Profile = prof
		run.Iterations = i
		merged.Merge(prof.Stats.PCStats)
		demoted, retagged, err := s.refineOutcome(abbr, merged, params)
		if err != nil {
			return nil, err
		}
		run.History = append(run.History, AdaptIteration{
			Iteration: i,
			Demoted:   demoted,
			Retagged:  retagged,
			Decisions: profileDecisions(prof.Stats.PCStats),
		})
		s.countIteration()
		s.emitAdapt(obs.Event{Kind: obs.EvAdaptIter, Run: key, N: i})
		if i > 1 && equalInts(demoted, prevDemoted) && equalInts(retagged, prevRetagged) {
			run.Converged = true
			run.ConvergedAt = i
			break
		}
		prevDemoted, prevRetagged = demoted, retagged
	}
	run.Feedback = merged
	reason := "bound"
	if run.Converged {
		reason = "converged"
		s.countConverged()
	}
	s.emitAdapt(obs.Event{Kind: obs.EvAdaptDone, Run: key, N: run.Iterations, Reason: reason})
	if useStore && s.feedback != nil {
		rec := &FeedbackRecord{
			Workload:    abbr,
			Scale:       s.Scale,
			Config:      string(name),
			Spec:        ad,
			Iterations:  run.Iterations,
			Converged:   run.Converged,
			ConvergedAt: run.ConvergedAt,
			History:     run.History,
			Profile:     merged,
		}
		if err := s.feedback.Put(storeKey, rec); err != nil {
			// A store-write failure costs future sessions a re-profile,
			// not correctness.
			s.logf("feedback store: %v", err)
		} else {
			s.emitAdapt(obs.Event{Kind: obs.EvFeedbackStore, Run: key, Reason: "save", N: run.Iterations})
		}
	}
	return s.finishAdaptive(spec, ad, params, run)
}

// finishAdaptive executes the full-scale pass with the converged table
// installed and completes the AdaptiveRun.
func (s *Session) finishAdaptive(spec RunSpec, ad AdaptSpec, params compiler.RefineParams, run *AdaptiveRun) (*AdaptiveRun, error) {
	ad.FeedbackDigest = profileDigest(run.Feedback)
	spec.Adapt = &ad
	table := run.Feedback.Clone()
	res, err := s.runSpec(spec, func(sys *sim.System) {
		sys.ApplyGateFeedback(table, params)
	})
	if err != nil {
		return nil, err
	}
	run.Result = res
	run.Spec = ad
	return run, nil
}

// refineOutcome computes — without simulating — what compiler.Refine would
// change across every kernel of the workload given an observed profile: the
// sorted demoted and re-tagged candidate start PCs. This is the state the
// iterated loop drives to a fixed point. The metadata is analyzed with the
// refinement's own cost model, mirroring what a simulator run with the same
// feedback installed would mark.
func (s *Session) refineOutcome(abbr string, prof compiler.GateProfile, p compiler.RefineParams) (demoted, retagged []int, err error) {
	in, err := s.instance(abbr)
	if err != nil {
		return nil, nil, err
	}
	seen := map[*isa.Kernel]bool{}
	for _, l := range in.Launches {
		if seen[l.Kernel] {
			continue
		}
		seen[l.Kernel] = true
		md, err := compiler.Analyze(l.Kernel, p.Cost)
		if err != nil {
			return nil, nil, err
		}
		res := compiler.Refine(md, prof, p)
		for _, c := range res.Demoted {
			demoted = append(demoted, c.StartPC)
		}
		for _, c := range res.Retagged {
			retagged = append(retagged, c.StartPC)
		}
	}
	sort.Ints(demoted)
	sort.Ints(retagged)
	return demoted, retagged, nil
}

// profileDecisions sums the offload decisions across a per-PC table.
func profileDecisions(p compiler.GateProfile) uint64 {
	var n uint64
	for _, g := range p {
		n += g.Decisions()
	}
	return n
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Adapt compares static offload control against the single-pass adaptive
// profile-and-refine loop over the Fig. 9 workload set: speedups over the
// baseline for both, plus how many candidates the feedback demoted or
// re-tagged. The notes carry each workload's per-PC gate rates from the
// profiling pass — the observed evidence the refinement acted on.
func (r *Runner) Adapt() (*Table, error) {
	t := &Table{
		ID: "adapt", Title: "Static vs. adaptive (gate-feedback) offload control",
		Columns: workloadColumns(),
		Notes: []string{
			"adaptive = profile run -> per-PC gate-rate refinement -> full run (ctrl-tmap)",
		},
	}
	var static, adaptive, demoted, retagged []float64
	for _, abbr := range Abbrs() {
		b, err := r.Run(abbr, CfgBaseline)
		if err != nil {
			return nil, err
		}
		st, err := r.Run(abbr, CfgCtrlTmap)
		if err != nil {
			return nil, err
		}
		ad, err := r.RunAdaptive(abbr, CfgCtrlTmap, AdaptOptions{})
		if err != nil {
			return nil, err
		}
		static = append(static, st.Stats.IPC()/b.Stats.IPC())
		adaptive = append(adaptive, ad.Result.Stats.IPC()/b.Stats.IPC())
		demoted = append(demoted, float64(ad.Result.Stats.RefineDemoted))
		retagged = append(retagged, float64(ad.Result.Stats.RefineRetagged))
		if note := gateRateNote(abbr, ad.Profile.Stats.PCStats); note != "" {
			t.Notes = append(t.Notes, note)
		}
	}
	t.Rows = append(t.Rows,
		Row{Label: "static ctrl-tmap", Values: withAvg(static, GeoMean)},
		Row{Label: "adaptive ctrl-tmap", Values: withAvg(adaptive, GeoMean)},
		Row{Label: "demoted candidates", Values: withAvg(demoted, Mean)},
		Row{Label: "re-tagged candidates", Values: withAvg(retagged, Mean)},
	)
	return t, nil
}

// AdaptIterated is the iterated-fixed-point variant of Adapt: every
// workload runs through RunAdaptiveIterated with the given iteration bound,
// and the table adds the convergence iteration per workload (0 = the bound
// was hit before a fixed point). The notes trace each workload's
// per-iteration demotions and re-tags. Note text derives only from the
// converged record, so a session replaying from the feedback store prints
// byte-identical tables.
func (r *Runner) AdaptIterated(iters int) (*Table, error) {
	t := &Table{
		ID: "adapt", Title: "Static vs. iterated adaptive offload control",
		Columns: workloadColumns(),
		Notes: []string{
			fmt.Sprintf("adaptive = profile -> refine -> profile ... to fixed point (bound %d), then full run (ctrl-tmap)", iters),
			"converged @ iteration row: 0 = iteration bound hit before a fixed point",
		},
	}
	var static, adaptive, demoted, retagged, conv []float64
	for _, abbr := range Abbrs() {
		b, err := r.Run(abbr, CfgBaseline)
		if err != nil {
			return nil, err
		}
		st, err := r.Run(abbr, CfgCtrlTmap)
		if err != nil {
			return nil, err
		}
		ad, err := r.RunAdaptiveIterated(abbr, CfgCtrlTmap, AdaptOptions{Iterations: iters})
		if err != nil {
			return nil, err
		}
		static = append(static, st.Stats.IPC()/b.Stats.IPC())
		adaptive = append(adaptive, ad.Result.Stats.IPC()/b.Stats.IPC())
		demoted = append(demoted, float64(ad.Result.Stats.RefineDemoted))
		retagged = append(retagged, float64(ad.Result.Stats.RefineRetagged))
		conv = append(conv, float64(ad.ConvergedAt))
		t.Notes = append(t.Notes, iterationNote(abbr, ad))
	}
	t.Rows = append(t.Rows,
		Row{Label: "static ctrl-tmap", Values: withAvg(static, GeoMean)},
		Row{Label: "adaptive ctrl-tmap", Values: withAvg(adaptive, GeoMean)},
		Row{Label: "demoted candidates", Values: withAvg(demoted, Mean)},
		Row{Label: "re-tagged candidates", Values: withAvg(retagged, Mean)},
		Row{Label: "converged @ iteration", Values: withAvg(conv, Mean)},
	)
	return t, nil
}

// iterationNote renders one workload's iteration history.
func iterationNote(abbr string, ad *AdaptiveRun) string {
	var parts []string
	for _, it := range ad.History {
		parts = append(parts, fmt.Sprintf("iter%d: %d decisions, demoted %d, re-tagged %d",
			it.Iteration, it.Decisions, len(it.Demoted), len(it.Retagged)))
	}
	outcome := "iteration bound hit"
	if ad.Converged {
		outcome = fmt.Sprintf("converged @ iter %d", ad.ConvergedAt)
	}
	return fmt.Sprintf("%s: %s — %s", abbr, strings.Join(parts, "; "), outcome)
}

// gateRateNote renders one workload's per-PC gate rates ("" when the
// profile saw no candidate entries).
func gateRateNote(abbr string, prof compiler.GateProfile) string {
	var parts []string
	for _, pc := range prof.PCs() {
		g := prof[pc]
		if g.Decisions() == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("pc%d gated %.0f%% (%d/%d, mean trips %.0f)",
			pc, g.GateRate()*100, g.Gated(), g.Decisions(), g.MeanTrips()))
	}
	if len(parts) == 0 {
		return ""
	}
	return abbr + ": " + strings.Join(parts, "; ")
}
