package core

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/mapping"
	"repro/internal/obs"
)

// speedupRow computes per-workload IPC ratios of cfg over base.
func (r *Runner) speedupRow(label string, cfg, base ConfigName) (Row, error) {
	var vals []float64
	for _, abbr := range Abbrs() {
		b, err := r.Run(abbr, base)
		if err != nil {
			return Row{}, err
		}
		c, err := r.Run(abbr, cfg)
		if err != nil {
			return Row{}, err
		}
		vals = append(vals, c.Stats.IPC()/b.Stats.IPC())
	}
	return Row{Label: label, Values: withAvg(vals, GeoMean)}, nil
}

// Fig2 reproduces "Ideal speedup with near-data processing": zero-overhead
// offloading with perfect co-location versus the 68-SM baseline.
func (r *Runner) Fig2() (*Table, error) {
	row, err := r.speedupRow("ideal-NDP", CfgIdeal, CfgBaseline)
	if err != nil {
		return nil, err
	}
	return &Table{
		ID: "fig2", Title: "Ideal speedup with near-data processing",
		Columns: workloadColumns(), Rows: []Row{row},
		Notes: []string{"paper: avg 1.58x, max 2.19x"},
	}, nil
}

// Fig3 reproduces "Effect of ideal memory mapping": the oracle best
// consecutive-2-bit mapping versus the baseline mapping, both on the NDP
// system with controlled offloading.
func (r *Runner) Fig3() (*Table, error) {
	row, err := r.speedupRow("ideal-mapping", CfgCtrlOracle, CfgCtrlBmap)
	if err != nil {
		return nil, err
	}
	return &Table{
		ID: "fig3", Title: "Effect of ideal memory mapping on NDP performance",
		Columns: workloadColumns(), Rows: []Row{row},
		Notes: []string{"paper: avg +13% over the baseline mapping"},
	}, nil
}

// Fig5 reproduces the fixed-offset categorization of offloading candidates.
func (r *Runner) Fig5() (*Table, error) {
	rows := make([]Row, mapping.NumOffsetBuckets)
	for b := range rows {
		rows[b].Label = mapping.OffsetBucket(b).String()
	}
	var fracs []float64
	for _, abbr := range Abbrs() {
		p, err := r.Profile(abbr)
		if err != nil {
			return nil, err
		}
		buckets := p.OffsetBuckets()
		total := 0
		for _, n := range buckets {
			total += n
		}
		for b, n := range buckets {
			v := 0.0
			if total > 0 {
				v = float64(n) / float64(total)
			}
			rows[b].Values = append(rows[b].Values, v)
		}
		fracs = append(fracs, p.FixedOffsetCandidateFraction())
	}
	for b := range rows {
		rows[b].Values = withAvg(rows[b].Values, Mean)
	}
	return &Table{
		ID: "fig5", Title: "Fixed-offset access analysis of offloading candidates (fraction of candidates)",
		Columns: workloadColumns(), Rows: rows,
		Notes: []string{fmt.Sprintf("candidates with some fixed-offset accesses: %.0f%% (paper: 85%%)",
			Mean(fracs)*100)},
	}, nil
}

// Fig6 reproduces the co-location probability under mappings learned from
// growing fractions of candidate instances.
func (r *Runner) Fig6() (*Table, error) {
	labels := []struct {
		name string
		frac float64
	}{
		{"best @ 0.1%", 0.001},
		{"best @ 0.5%", 0.005},
		{"best @ 1%", 0.01},
		{"best @ all", 1.0},
	}
	rows := make([]Row, 0, len(labels)+1)
	base := Row{Label: "baseline map"}
	for _, abbr := range Abbrs() {
		p, err := r.Profile(abbr)
		if err != nil {
			return nil, err
		}
		base.Values = append(base.Values, p.BaselineCoLocation())
	}
	base.Values = withAvg(base.Values, Mean)
	rows = append(rows, base)
	for _, l := range labels {
		row := Row{Label: l.name}
		for _, abbr := range Abbrs() {
			p, err := r.Profile(abbr)
			if err != nil {
				return nil, err
			}
			_, co := p.BestBitFromFraction(l.frac)
			row.Values = append(row.Values, co)
		}
		row.Values = withAvg(row.Values, Mean)
		rows = append(rows, row)
	}
	return &Table{
		ID: "fig6", Title: "Probability of accessing one memory stack per candidate instance",
		Columns: workloadColumns(), Rows: rows,
		Notes: []string{"paper: baseline 38%, best@0.1% 72%, oracle 75%"},
	}, nil
}

// fig8Configs are the four NDP policies of Figs. 8-10.
var fig8Configs = []struct {
	label string
	cfg   ConfigName
}{
	{"no-ctrl bmap", CfgNoCtrlBmap},
	{"no-ctrl tmap", CfgNoCtrlTmap},
	{"ctrl bmap", CfgCtrlBmap},
	{"ctrl tmap", CfgCtrlTmap},
}

// Fig8 reproduces the headline speedup comparison.
func (r *Runner) Fig8() (*Table, error) {
	t := &Table{
		ID: "fig8", Title: "Speedup with NDP offloading and memory mapping policies",
		Columns: workloadColumns(),
		Notes:   []string{"paper: ctrl+tmap avg 1.30x (max 1.76x); no-ctrl hurts"},
	}
	for _, fc := range fig8Configs {
		row, err := r.speedupRow(fc.label, fc.cfg, CfgBaseline)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	// §6.1 statistic: offloaded instruction fraction under no-ctrl/ctrl.
	for _, fc := range []struct {
		label string
		cfg   ConfigName
	}{{"offloaded% no-ctrl", CfgNoCtrlTmap}, {"offloaded% ctrl", CfgCtrlTmap}} {
		var vals []float64
		for _, abbr := range Abbrs() {
			res, err := r.Run(abbr, fc.cfg)
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.Stats.OffloadedInstrFraction())
		}
		t.Rows = append(t.Rows, Row{Label: fc.label, Values: withAvg(vals, Mean)})
	}
	return t, nil
}

// Fig9 reproduces the off-chip memory traffic breakdown, normalized to the
// baseline's total traffic.
func (r *Runner) Fig9() (*Table, error) {
	t := &Table{
		ID: "fig9", Title: "Off-chip traffic (normalized to baseline; RX/TX/mem-mem breakdown)",
		Columns: workloadColumns(),
		Notes:   []string{"paper: no-ctrl+tmap -38%; ctrl+tmap -13%; tmap cuts mem-mem 2.5x"},
	}
	for _, fc := range fig8Configs {
		var tot, rx, tx, mm []float64
		for _, abbr := range Abbrs() {
			b, err := r.Run(abbr, CfgBaseline)
			if err != nil {
				return nil, err
			}
			c, err := r.Run(abbr, fc.cfg)
			if err != nil {
				return nil, err
			}
			base := float64(b.Stats.OffChipBytes())
			tot = append(tot, float64(c.Stats.OffChipBytes())/base)
			rx = append(rx, float64(c.Stats.GPURXBytes)/base)
			tx = append(tx, float64(c.Stats.GPUTXBytes)/base)
			mm = append(mm, float64(c.Stats.CrossBytes)/base)
		}
		t.Rows = append(t.Rows,
			Row{Label: fc.label + " total", Values: withAvg(tot, Mean)},
			Row{Label: fc.label + " RX", Values: withAvg(rx, Mean)},
			Row{Label: fc.label + " TX", Values: withAvg(tx, Mean)},
			Row{Label: fc.label + " mem-mem", Values: withAvg(mm, Mean)},
		)
	}
	return t, nil
}

// Fig9Timeline reruns the Fig. 9 configurations (plus the baseline) with
// observers attached — the historical name for Timeline("fig9", ...).
func (r *Runner) Fig9Timeline(interval int64, trace obs.EventSink, traceSample int) (map[string]*obs.Snapshot, error) {
	return r.Timeline("fig9", interval, trace, traceSample)
}

// experimentConfigs maps an experiment ID to the simulator configurations
// its table compares. The baseline is excluded (Timeline always adds it);
// profile- or estimate-based experiments (fig5, fig6, area) and the
// adaptive loop (adapt, whose passes are not plain configurations) have no
// timeline and return an error.
func experimentConfigs(id string) ([]ConfigName, error) {
	switch id {
	case "fig2":
		return []ConfigName{CfgIdeal}, nil
	case "fig3":
		return []ConfigName{CfgCtrlBmap, CfgCtrlOracle}, nil
	case "fig8", "fig9", "fig10":
		return fig9Configs(), nil
	case "fig11", "fig12":
		return []ConfigName{CfgNoCtrlTmap, CfgCtrlTmap, CfgWarp2x, CfgWarp4x}, nil
	case "fig13":
		return []ConfigName{CfgCtrlTmap, CfgInternal1x}, nil
	case "xstack":
		return []ConfigName{CfgCross0125, CfgCross025, CfgCtrlTmap, CfgCross100}, nil
	case "coherence":
		return []ConfigName{CfgCtrlTmap, CfgNoCoherence}, nil
	case "policies":
		return []ConfigName{CfgCtrlTmap, CfgIdeal, CfgCoda, CfgMPU}, nil
	case "mapstore":
		return []ConfigName{CfgCtrlTmap}, nil
	}
	return nil, fmt.Errorf("core: experiment %q has no timeline (no simulated configurations)", id)
}

// Timeline reruns an experiment's configurations (plus the baseline) with
// observers attached and returns per-interval metric snapshots — the
// off-chip traffic breakdown over time rather than as end-of-run totals —
// keyed "ABBR/config". interval is the sampling period in cycles (0 =
// obs.DefaultSampleEvery). The runs execute in parallel, each with a
// scoped view of one shared registry (see ObsPolicy); every snapshot is
// identical to what a serial run with a private registry would produce.
//
// trace, when non-nil, receives every run's lifecycle events, stamped with
// the "ABBR/config" run label and thinned to one in traceSample per kind
// per run when traceSample > 1 (tomx -trace). The caller owns the sink and
// flushes it after the call returns.
func (r *Runner) Timeline(id string, interval int64, trace obs.EventSink, traceSample int) (map[string]*obs.Snapshot, error) {
	cfgs, err := experimentConfigs(id)
	if err != nil {
		return nil, err
	}
	seen := map[ConfigName]bool{}
	var pairs []Pair
	for _, cfg := range append([]ConfigName{CfgBaseline}, cfgs...) {
		if seen[cfg] {
			continue
		}
		seen[cfg] = true
		for _, abbr := range Abbrs() {
			pairs = append(pairs, Pair{Abbr: abbr, Config: cfg})
		}
	}
	snaps, err := r.WarmObserved(pairs, ObsPolicy{
		Registry:    obs.NewRegistry(),
		SampleEvery: interval,
		Trace:       trace,
		TraceSample: traceSample,
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*obs.Snapshot, len(snaps))
	for p, snap := range snaps {
		out[p.Key()] = snap
	}
	return out, nil
}

// fig9Configs lists the four NDP policies of Figs. 8-10 as ConfigNames.
func fig9Configs() []ConfigName {
	var out []ConfigName
	for _, fc := range fig8Configs {
		out = append(out, fc.cfg)
	}
	return out
}

// Fig10 reproduces the energy comparison (normalized to baseline total).
func (r *Runner) Fig10() (*Table, error) {
	t := &Table{
		ID: "fig10", Title: "Energy (normalized to baseline; SM/link/DRAM breakdown)",
		Columns: workloadColumns(),
		Notes:   []string{"paper: ctrl+tmap -11% total"},
	}
	for _, fc := range fig8Configs {
		var tot, sms, links, dram []float64
		for _, abbr := range Abbrs() {
			b, err := r.Run(abbr, CfgBaseline)
			if err != nil {
				return nil, err
			}
			c, err := r.Run(abbr, fc.cfg)
			if err != nil {
				return nil, err
			}
			base := b.Energy.Total()
			tot = append(tot, c.Energy.Total()/base)
			sms = append(sms, c.Energy.SMs/base)
			links = append(links, c.Energy.Links/base)
			dram = append(dram, c.Energy.DRAM/base)
		}
		t.Rows = append(t.Rows,
			Row{Label: fc.label + " total", Values: withAvg(tot, Mean)},
			Row{Label: fc.label + " SMs", Values: withAvg(sms, Mean)},
			Row{Label: fc.label + " links", Values: withAvg(links, Mean)},
			Row{Label: fc.label + " DRAM", Values: withAvg(dram, Mean)},
		)
	}
	return t, nil
}

// policyConfigs are the offload-policy rivals of -exp policies: TOM and
// its Fig. 2 idealization, plus the two schemes reproduced from related
// work (CODA's co-location-aware offloading, near-bank MPU offload), each
// at its natural system configuration.
var policyConfigs = []struct {
	label string
	cfg   ConfigName
}{
	{"tom", CfgCtrlTmap},
	{"ideal", CfgIdeal},
	{"coda", CfgCoda},
	{"mpu", CfgMPU},
}

// Policies compares every offload policy over all workloads against the
// no-NDP baseline: speedup rows per policy, plus the offloaded-instruction
// fraction that shows how differently the policies cut the work.
func (r *Runner) Policies() (*Table, error) {
	t := &Table{
		ID: "policies", Title: "Speedup by offload policy (vs. no-NDP baseline)",
		Columns: workloadColumns(),
		Notes: []string{
			"tom = ctrl-tmap; ideal = free offload + perfect co-location",
			"coda = drop blocks whose data splits across stacks (ctrl-tmap system)",
			"mpu = near-bank: single-access blocks, per-vault slots, cheap spawn (bmap)",
		},
	}
	for _, pc := range policyConfigs {
		row, err := r.speedupRow(pc.label, pc.cfg, CfgBaseline)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	for _, pc := range policyConfigs {
		var vals []float64
		for _, abbr := range Abbrs() {
			res, err := r.Run(abbr, pc.cfg)
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.Stats.OffloadedInstrFraction())
		}
		t.Rows = append(t.Rows, Row{Label: pc.label + " offloaded%", Values: withAvg(vals, Mean)})
	}
	return t, nil
}

// MapStore reports the persistent mapping registry's effect on the TOM
// configuration: each workload's ctrl-tmap run consults the session's
// mapping store (WithStoredMapping) and, on a hit, installs the stored bit
// before cycle 0 instead of learning it — zero learning-phase PCIe traffic,
// with the avoided volume reported as learn.pcie_bytes_saved. A cold store
// (or a session without -cache) learns fresh everywhere and seeds the store;
// rerunning the experiment then shows every workload installed ("stored"
// row = 1) with "learn PCIe MB" = 0.
func (r *Runner) MapStore() (*Table, error) {
	t := &Table{
		ID: "mapstore", Title: "Persistent mapping registry: TOM with stored mappings installed",
		Columns: workloadColumns(),
		Notes: []string{
			"stored: 1 = bit installed from the registry (map once, stay resident), 0 = learned this run",
			"cold sessions learn and seed the store; warm sessions install and skip the PCIe detour",
		},
	}
	var speed, pcie, saved, stored []float64
	const mb = 1 << 20
	for _, abbr := range Abbrs() {
		b, err := r.Run(abbr, CfgBaseline)
		if err != nil {
			return nil, err
		}
		spec, err := r.Spec(abbr, CfgCtrlTmap)
		if err != nil {
			return nil, err
		}
		spec, err = r.WithStoredMapping(spec)
		if err != nil {
			return nil, err
		}
		res, err := r.RunSpecExact(spec)
		if err != nil {
			return nil, err
		}
		speed = append(speed, res.Stats.IPC()/b.Stats.IPC())
		pcie = append(pcie, float64(res.Stats.PCIeBytes)/mb)
		saved = append(saved, float64(res.Stats.LearnPCIeSaved)/mb)
		if spec.MapInstall != nil {
			stored = append(stored, 1)
		} else {
			stored = append(stored, 0)
		}
	}
	t.Rows = append(t.Rows,
		Row{Label: "speedup", Values: withAvg(speed, GeoMean)},
		Row{Label: "learn PCIe MB", Values: withAvg(pcie, Mean)},
		Row{Label: "saved PCIe MB", Values: withAvg(saved, Mean)},
		Row{Label: "stored", Values: withAvg(stored, Mean)},
	)
	return t, nil
}

// warpCapacityConfigs for Figs. 11/12.
var warpCapacityConfigs = []struct {
	label string
	cfg   ConfigName
}{
	{"no-ctrl-1X-warp", CfgNoCtrlTmap},
	{"ctrl-1X-warp", CfgCtrlTmap},
	{"ctrl-2X-warp", CfgWarp2x},
	{"ctrl-4X-warp", CfgWarp4x},
}

// Fig11 reproduces speedup versus stack-SM warp capacity.
func (r *Runner) Fig11() (*Table, error) {
	t := &Table{
		ID: "fig11", Title: "Speedup vs. memory-stack SM warp capacity",
		Columns: workloadColumns(),
		Notes:   []string{"paper: 4x capacity keeps ~1.29x speedup; RD regresses (ALU-bound)"},
	}
	for _, wc := range warpCapacityConfigs {
		row, err := r.speedupRow(wc.label, wc.cfg, CfgBaseline)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig12 reproduces traffic versus stack-SM warp capacity.
func (r *Runner) Fig12() (*Table, error) {
	t := &Table{
		ID: "fig12", Title: "Off-chip traffic vs. warp capacity (normalized to baseline)",
		Columns: workloadColumns(),
		Notes:   []string{"paper: 4x capacity saves 34% traffic, near no-ctrl's 38%"},
	}
	for _, wc := range warpCapacityConfigs {
		var vals []float64
		for _, abbr := range Abbrs() {
			b, err := r.Run(abbr, CfgBaseline)
			if err != nil {
				return nil, err
			}
			c, err := r.Run(abbr, wc.cfg)
			if err != nil {
				return nil, err
			}
			vals = append(vals, float64(c.Stats.OffChipBytes())/float64(b.Stats.OffChipBytes()))
		}
		t.Rows = append(t.Rows, Row{Label: wc.label, Values: withAvg(vals, Mean)})
	}
	return t, nil
}

// Fig13 reproduces the internal-bandwidth sensitivity.
func (r *Runner) Fig13() (*Table, error) {
	t := &Table{
		ID: "fig13", Title: "Speedup with different internal memory stack bandwidth",
		Columns: workloadColumns(),
		Notes:   []string{"paper: 1x internal BW within ~2% of 2x (avg 1.28x vs 1.30x)"},
	}
	for _, c := range []struct {
		label string
		cfg   ConfigName
	}{{"2X-internal-BW", CfgCtrlTmap}, {"1X-internal-BW", CfgInternal1x}} {
		row, err := r.speedupRow(c.label, c.cfg, CfgBaseline)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// CrossStackSweep reproduces the §6.5 cross-stack bandwidth sweep.
func (r *Runner) CrossStackSweep() (*Table, error) {
	t := &Table{
		ID: "xstack", Title: "Speedup vs. cross-stack link bandwidth (fraction of GPU-stack links)",
		Columns: workloadColumns(),
		Notes:   []string{"paper: +17% @0.125x, +29% @0.25x, +30% @0.5x, +31% @1x"},
	}
	for _, c := range []struct {
		label string
		cfg   ConfigName
	}{
		{"0.125x", CfgCross0125}, {"0.25x", CfgCross025},
		{"0.5x (default)", CfgCtrlTmap}, {"1x", CfgCross100},
	} {
		row, err := r.speedupRow(c.label, c.cfg, CfgBaseline)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// CoherenceOverhead reproduces the §4.4.2 measurement: slowdown of the
// cache-correctness protocol versus idealized coherence.
func (r *Runner) CoherenceOverhead() (*Table, error) {
	var vals []float64
	for _, abbr := range Abbrs() {
		with, err := r.Run(abbr, CfgCtrlTmap)
		if err != nil {
			return nil, err
		}
		without, err := r.Run(abbr, CfgNoCoherence)
		if err != nil {
			return nil, err
		}
		vals = append(vals, float64(with.Stats.Cycles)/float64(without.Stats.Cycles)-1)
	}
	return &Table{
		ID: "coherence", Title: "Offload coherence protocol overhead (fractional slowdown)",
		Columns: workloadColumns(),
		Rows:    []Row{{Label: "overhead", Values: withAvg(vals, Mean)}},
		Notes:   []string{"paper: 1.2% average overhead"},
	}, nil
}

// AreaTable reproduces the §6.6 hardware cost estimate.
func AreaTable() *Table {
	e := area.Estimate64()
	return &Table{
		ID: "area", Title: "TOM hardware storage and area (§6.6)",
		Columns: []string{"value"},
		Rows: []Row{
			{Label: "analyzer bits/SM", Values: []float64{float64(e.AnalyzerBitsPerSM)}},
			{Label: "alloc table bits", Values: []float64{float64(e.AllocTableBits)}},
			{Label: "metadata bits/SM", Values: []float64{float64(e.MetadataBitsPerSM)}},
			{Label: "total bits", Values: []float64{float64(e.TotalBits)}},
			{Label: "area mm^2", Values: []float64{e.AreaMM2}},
			{Label: "GPU fraction %", Values: []float64{e.GPUFraction * 100}},
		},
		Notes: []string{"paper: 1,920 b/SM + 9,700 b + 10,320 b/SM = 0.11 mm^2, 0.018% of GPU"},
	}
}

// AllExperiments runs every reproduction and returns the tables in paper
// order.
func (r *Runner) AllExperiments() ([]*Table, error) {
	type fn struct {
		name string
		f    func() (*Table, error)
	}
	fns := []fn{
		{"fig2", r.Fig2}, {"fig3", r.Fig3}, {"fig5", r.Fig5}, {"fig6", r.Fig6},
		{"fig8", r.Fig8}, {"fig9", r.Fig9}, {"fig10", r.Fig10},
		{"fig11", r.Fig11}, {"fig12", r.Fig12}, {"fig13", r.Fig13},
		{"xstack", r.CrossStackSweep}, {"coherence", r.CoherenceOverhead},
		{"policies", r.Policies}, {"adapt", r.Adapt}, {"mapstore", r.MapStore},
	}
	if err := r.Warm(FullMatrix()); err != nil {
		return nil, err
	}
	var out []*Table
	for _, e := range fns {
		t, err := e.f()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.name, err)
		}
		out = append(out, t)
	}
	out = append(out, AreaTable())
	return out, nil
}

// Experiment runs a single experiment by ID ("fig2".."fig13", "xstack",
// "coherence", "area").
func (r *Runner) Experiment(id string) (*Table, error) {
	switch id {
	case "fig2":
		return r.Fig2()
	case "fig3":
		return r.Fig3()
	case "fig5":
		return r.Fig5()
	case "fig6":
		return r.Fig6()
	case "fig8":
		return r.Fig8()
	case "fig9":
		return r.Fig9()
	case "fig10":
		return r.Fig10()
	case "fig11":
		return r.Fig11()
	case "fig12":
		return r.Fig12()
	case "fig13":
		return r.Fig13()
	case "xstack":
		return r.CrossStackSweep()
	case "coherence":
		return r.CoherenceOverhead()
	case "policies":
		return r.Policies()
	case "adapt":
		return r.Adapt()
	case "mapstore":
		return r.MapStore()
	case "area":
		return AreaTable(), nil
	}
	return nil, fmt.Errorf("core: unknown experiment %q", id)
}

// ExperimentIDs lists all experiment identifiers in paper order.
func ExperimentIDs() []string {
	return []string{"fig2", "fig3", "fig5", "fig6", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "xstack", "coherence", "policies", "adapt",
		"mapstore", "area"}
}
