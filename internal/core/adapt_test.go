package core

import (
	"testing"

	"repro/internal/compiler"
)

// TestAdaptiveDigestDistinct: an adaptive run is a different measurement
// from the static run of the same configuration — their specs must digest
// differently, and the digest must see every feedback parameter. The CI
// workflow runs this test as its static/adaptive cache-separation check.
func TestAdaptiveDigestDistinct(t *testing.T) {
	static, err := NewRunSpec("SP", 0.3, CfgCtrlTmap)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := static
	adaptive.Adapt = &AdaptSpec{ProfileFrac: 0.25, DemoteGateRate: 0.9, MinDecisions: 16}
	if static.Digest() == adaptive.Digest() {
		t.Fatal("adaptive spec digests identically to the static spec")
	}
	again := static
	again.Adapt = &AdaptSpec{ProfileFrac: 0.25, DemoteGateRate: 0.9, MinDecisions: 16}
	if adaptive.Digest() != again.Digest() {
		t.Fatal("equal adaptive specs must digest identically")
	}
	seen := map[string]AdaptSpec{adaptive.Digest(): *adaptive.Adapt}
	for _, a := range []AdaptSpec{
		{ProfileFrac: 0.5, DemoteGateRate: 0.9, MinDecisions: 16},
		{ProfileFrac: 0.25, DemoteGateRate: 0.8, MinDecisions: 16},
		{ProfileFrac: 0.25, DemoteGateRate: 0.9, MinDecisions: 32},
	} {
		sp := static
		sp.Adapt = &a
		if prev, dup := seen[sp.Digest()]; dup {
			t.Errorf("digest collision between %+v and %+v", prev, a)
		}
		seen[sp.Digest()] = a
	}
}

// TestRunAdaptiveCachesAndRefines: the two-pass adaptive run must verify
// like any run, key independently of the static run in every cache layer,
// and replay (both passes) from the persistent cache in a later session.
func TestRunAdaptiveCachesAndRefines(t *testing.T) {
	dir := t.TempDir()
	opts := AdaptOptions{ProfileFrac: 0.5} // profile at a known-good scale
	s := NewSession(Options{Scale: 0.1, CacheDir: dir, Fingerprint: "fp"})
	ad, err := s.RunAdaptive("LIB", CfgCtrlTmap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ad.Profile == nil || ad.Result == nil {
		t.Fatalf("incomplete adaptive run: %+v", ad)
	}
	if ad.Profile.Stats.CandidateInstances == 0 {
		t.Fatal("profile pass saw no candidate entries; nothing to refine from")
	}
	if len(ad.Profile.Stats.PCStats) == 0 {
		t.Fatal("profile pass produced no per-PC decision table")
	}
	if st := s.CacheStats(); st.Simulated != 2 || st.DiskHits != 0 {
		t.Fatalf("cold adaptive run must simulate both passes: %+v", st)
	}

	// Same session again: both passes served from the in-memory memo.
	ad2, err := s.RunAdaptive("LIB", CfgCtrlTmap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ad2.Result != ad.Result {
		t.Error("repeat adaptive run did not come from the memo")
	}
	if st := s.CacheStats(); st.MemoHits != 2 {
		t.Fatalf("memo stats after repeat = %+v", st)
	}

	// The static run is a distinct spec: it must simulate, not alias the
	// adaptive record.
	if _, err := s.Run("LIB", CfgCtrlTmap); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Simulated != 3 {
		t.Fatalf("static run must not share the adaptive cache entry: %+v", st)
	}

	// A later session replays both passes from disk, including the per-PC
	// table (GateProfile survives the JSON round trip).
	warm := NewSession(Options{Scale: 0.1, CacheDir: dir, Fingerprint: "fp"})
	ad3, err := warm.RunAdaptive("LIB", CfgCtrlTmap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.CacheStats(); st.Simulated != 0 || st.DiskHits != 2 {
		t.Fatalf("warm adaptive run must be a pure replay: %+v", st)
	}
	if len(ad3.Profile.Stats.PCStats) == 0 {
		t.Error("replayed profile lost its per-PC decision table")
	}
	if ad3.Result.Stats.Cycles != ad.Result.Stats.Cycles {
		t.Errorf("replayed adaptive run differs: %d vs %d cycles",
			ad3.Result.Stats.Cycles, ad.Result.Stats.Cycles)
	}
}

// TestAdaptOptionDefaults: the zero AdaptOptions resolves to the package
// defaults and projects them into the digest-relevant spec.
func TestAdaptOptionDefaults(t *testing.T) {
	o := AdaptOptions{}.withDefaults()
	def := compiler.DefaultRefineParams()
	if o.ProfileFrac != 0.25 || o.Refine != def || o.Iterations != DefaultAdaptIterations {
		t.Fatalf("defaults = %+v", o)
	}
	sp := o.spec()
	if sp.ProfileFrac != 0.25 || sp.DemoteGateRate != def.DemoteGateRate ||
		sp.MinDecisions != def.MinDecisions || sp.Cost != def.Cost ||
		sp.Iterations != DefaultAdaptIterations {
		t.Fatalf("spec projection = %+v", sp)
	}
	// Partially-set refine params get the default cost model: a zero Cost
	// would otherwise reach the simulator and mark with a zero warp size.
	p := AdaptOptions{Refine: compiler.RefineParams{DemoteGateRate: 0.5, MinDecisions: 8}}.withDefaults()
	if p.Refine.Cost != compiler.DefaultCostParams() {
		t.Fatalf("zero Cost must default: %+v", p.Refine)
	}
}

// TestGateAccountingConservation: at quiescence every candidate entry must
// be accounted for exactly once —
//
//	CandidateInstances == OffloadsSent + OffloadsSkipped() + LearnEntries
//
// — and the per-PC decision table must agree with the aggregates, across
// the Fig. 9 policy matrix (plus the ideal configuration) on every
// workload. Before the nodest fix, failed destination dry runs broke this
// identity silently.
func TestGateAccountingConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("full NDP policy matrix")
	}
	s := NewSession(Options{Scale: 0.05})
	configs := append(fig9Configs(), CfgIdeal)
	var pairs []Pair
	for _, cfg := range configs {
		for _, abbr := range Abbrs() {
			pairs = append(pairs, Pair{Abbr: abbr, Config: cfg})
		}
	}
	if err := s.Warm(pairs); err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		res, err := s.Run(p.Abbr, p.Config)
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats
		if got := st.OffloadsSent + st.OffloadsSkipped() + st.LearnEntries; got != st.CandidateInstances {
			t.Errorf("%s: sent(%d)+skipped(%d)+learn(%d) = %d, candidate instances %d",
				p.Key(), st.OffloadsSent, st.OffloadsSkipped(), st.LearnEntries,
				got, st.CandidateInstances)
		}
		var sent, gated, learn uint64
		for _, pc := range st.PCStats.PCs() {
			g := st.PCStats[pc]
			sent += g.Sent
			gated += g.Gated()
			learn += g.LearnEntries
		}
		if sent != st.OffloadsSent || gated != st.OffloadsSkipped() || learn != st.LearnEntries {
			t.Errorf("%s: per-PC table (sent %d, gated %d, learn %d) disagrees with aggregates (%d, %d, %d)",
				p.Key(), sent, gated, learn,
				st.OffloadsSent, st.OffloadsSkipped(), st.LearnEntries)
		}
	}
}
