package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/offload"
	"repro/internal/sim"
)

// RunSpec is the canonical identity of one simulation run: the workload,
// the problem scale, the named configuration, and the fully-resolved
// simulator configuration it materializes to. Every caching layer — the
// in-memory memo, the persistent result cache, and the observation policy's
// run labels — keys off the spec's digest, so two runs are interchangeable
// exactly when their specs digest identically.
type RunSpec struct {
	Abbr   string
	Scale  float64
	Config ConfigName
	// Cfg is the resolved simulator configuration. It participates in the
	// digest through its canonical string, so flipping any model parameter
	// (even one the named configuration doesn't touch) yields a new spec.
	Cfg sim.Config
	// Adapt, when non-nil, marks this as the full pass of an adaptive
	// (profile → refine → rerun) session and folds the feedback parameters
	// into the digest: an adaptive run and the static run of the same
	// configuration are different measurements and must never share a
	// cache record.
	Adapt *AdaptSpec
	// MapInstall, when non-nil, pre-installs a stored transparent mapping at
	// system construction instead of running a learning phase (see
	// MappingStore / Session.WithStoredMapping). Every field folds into the
	// digest: a stored-mapping run and the fresh-learning run of the same
	// configuration are different measurements (no learning-phase PCIe
	// detour) and must never share a cache record.
	MapInstall *MapInstallSpec
}

// MapInstallSpec carries a stored mapping into a run: the learned bit, the
// allocation ranges it covers, the learning-phase PCIe byte volume the
// install avoids (reported as Stats.LearnPCIeSaved), and the data-structure
// identity the record was keyed by (diagnostics; the install itself
// re-resolves ranges by name and fails loudly on a layout change).
type MapInstallSpec struct {
	Bit       int
	Ranges    []string
	SavedPCIe uint64
	Structure string
}

// NewRunSpec resolves a named configuration into a canonical spec.
func NewRunSpec(abbr string, scale float64, name ConfigName) (RunSpec, error) {
	cfg, err := buildConfig(name)
	if err != nil {
		return RunSpec{}, err
	}
	return RunSpec{Abbr: abbr, Scale: scale, Config: name, Cfg: cfg}, nil
}

// Key returns the human-readable run identity ("ABBR/config"), used for
// progress lines, trace run labels, and scoped registry prefixes.
func (sp RunSpec) Key() string {
	return sp.Abbr + "/" + string(sp.Config)
}

// Digest returns the spec's content hash: a hex SHA-256 over the workload,
// scale, configuration name, and the canonical simulator configuration.
// It is stable across processes and Go versions (the canonical string uses
// shortest-round-trip float formatting), making it a valid persistent
// cache key.
func (sp RunSpec) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "workload=%s;scale=%v;config=%s;%s",
		sp.Abbr, sp.Scale, sp.Config, sp.Cfg.Canonical())
	// The offload policy's identity AND parameters participate: the policy
	// name alone already reaches the digest through Cfg.Canonical(), but a
	// policy's tunables (coda's window, mpu's spawn latency) live in the
	// policy object, not the Config — fold them so runs of differently
	// parameterized policies can never alias onto one cache record.
	if pol, err := offload.ByName(sp.Cfg.PolicyName()); err == nil {
		fmt.Fprintf(h, "policy=%s{%s};", pol.Name(), pol.Params())
	} else {
		// Unknown policy: digest the raw name; the run itself will fail
		// loudly at sim.New, never silently alias.
		fmt.Fprintf(h, "policy=%s{?};", sp.Cfg.PolicyName())
	}
	if a := sp.Adapt; a != nil {
		// Every feedback parameter participates, including the cost model
		// (omitting CostParams once aliased adaptive runs that differed only
		// in cost constants onto one cache record) and the iterated-loop
		// identity: the iteration bound, which intermediate profiling pass
		// this is, and the content hash of the gate profile the run applies.
		fmt.Fprintf(h, "adapt=frac:%v,demote:%v,mindec:%d,cost:%+v,iters:%d,iter:%d,feedback:%s;",
			a.ProfileFrac, a.DemoteGateRate, a.MinDecisions, a.Cost,
			a.Iterations, a.Iteration, a.FeedbackDigest)
	}
	if mi := sp.MapInstall; mi != nil {
		// Every install parameter participates — two installs differing in
		// bit, coverage, or provenance are different runs.
		fmt.Fprintf(h, "mapinstall=bit:%d,ranges:%q,saved:%d,structure:%s;",
			mi.Bit, mi.Ranges, mi.SavedPCIe, mi.Structure)
	}
	return hex.EncodeToString(h.Sum(nil))
}
