package core

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestFullMatrixCoversEveryConfig: the warm matrix must contain every
// declared configuration × every workload exactly once — a missing entry
// means some tomx runs execute cold and serially (the CfgWarp4xALU bug).
func TestFullMatrixCoversEveryConfig(t *testing.T) {
	pairs := FullMatrix()
	seen := make(map[Pair]int, len(pairs))
	for _, p := range pairs {
		seen[p]++
	}
	abbrs := Abbrs()
	configs := AllConfigNames()
	if len(pairs) != len(abbrs)*len(configs) {
		t.Errorf("FullMatrix has %d pairs, want %d", len(pairs), len(abbrs)*len(configs))
	}
	for _, c := range configs {
		for _, a := range abbrs {
			switch n := seen[Pair{Abbr: a, Config: c}]; n {
			case 1:
			case 0:
				t.Errorf("FullMatrix omits %s/%s", a, c)
			default:
				t.Errorf("FullMatrix repeats %s/%s %d times", a, c, n)
			}
		}
	}
}

// TestAllConfigNamesBuildAndAreUnique: every declared name must materialize
// a config (so AllConfigNames and buildConfig cannot drift apart) and names
// must be distinct.
func TestAllConfigNamesBuildAndAreUnique(t *testing.T) {
	seen := map[ConfigName]bool{}
	for _, n := range AllConfigNames() {
		if seen[n] {
			t.Errorf("duplicate config name %q", n)
		}
		seen[n] = true
		if _, err := buildConfig(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if !seen[CfgWarp4xALU] {
		t.Error("AllConfigNames must include the ALU-gate ablation")
	}
}

// TestWarmReportsEveryFailure: a multi-workload failure must surface every
// failing (workload, config) pair, not just the first.
func TestWarmReportsEveryFailure(t *testing.T) {
	r := NewRunner(0.05)
	pairs := []Pair{
		{Abbr: "NOPE1", Config: CfgBaseline},
		{Abbr: "NOPE2", Config: CfgBaseline},
		{Abbr: "NOPE3", Config: "bogus-config"},
	}
	err := r.Warm(pairs)
	if err == nil {
		t.Fatal("Warm with unknown workloads must fail")
	}
	msg := err.Error()
	for _, want := range []string{"NOPE1", "NOPE2", "NOPE3", "bogus-config"} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregated error misses %q:\n%s", want, msg)
		}
	}
}

// TestRunObserved: an observed run must produce the same verified stats as
// a plain run and a metrics snapshot whose totals match.
func TestRunObserved(t *testing.T) {
	r := NewRunner(0.05)
	o := obs.New()
	o.SampleEvery = 512
	res, err := r.RunObserved("LIB", CfgCtrlBmap, o)
	if err != nil {
		t.Fatal(err)
	}
	snap := o.Registry.Snapshot()
	if got := snap.Counters["offload.sent"]; got != res.Stats.OffloadsSent {
		t.Errorf("observed sent = %d, stats say %d", got, res.Stats.OffloadsSent)
	}
	sum := func(name string) uint64 {
		s := snap.Series[name]
		t := 0.0
		for _, v := range s.Values {
			t += v
		}
		return uint64(t + 0.5)
	}
	if got := sum("traffic.gpu_tx_bytes"); got != res.Stats.GPUTXBytes {
		t.Errorf("tx series = %d, stats say %d", got, res.Stats.GPUTXBytes)
	}
	if got := sum("traffic.gpu_rx_bytes"); got != res.Stats.GPURXBytes {
		t.Errorf("rx series = %d, stats say %d", got, res.Stats.GPURXBytes)
	}
	// Observed runs are not memoized.
	if len(r.CachedRuns()) != 0 {
		t.Errorf("RunObserved must not populate the cache: %v", r.CachedRuns())
	}
	// nil observer falls back to the cached path.
	if _, err := r.RunObserved("LIB", CfgCtrlBmap, nil); err != nil {
		t.Fatal(err)
	}
	if len(r.CachedRuns()) != 1 {
		t.Errorf("nil-observer run should memoize: %v", r.CachedRuns())
	}
}
