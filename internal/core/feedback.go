package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/compiler"
	"repro/internal/obs"
)

// FeedbackRecord is the on-disk form of one converged refinement: the
// fingerprint gate, a human-readable restatement of the identity (the
// digest in the filename is the authoritative key), the iteration history,
// and the merged gate profile the full run should apply. A later session
// that derives the same key installs Profile directly — no profiling pass.
type FeedbackRecord struct {
	Fingerprint string               `json:"fingerprint"`
	Workload    string               `json:"workload"`
	Scale       float64              `json:"scale"`
	Config      string               `json:"config"`
	Spec        AdaptSpec            `json:"spec"`
	Iterations  int                  `json:"iterations"`
	Converged   bool                 `json:"converged"`
	ConvergedAt int                  `json:"converged_at,omitempty"`
	History     []AdaptIteration     `json:"history,omitempty"`
	Profile     compiler.GateProfile `json:"profile"`
}

// FeedbackStore persists converged adaptive refinements, one JSON record
// per (workload, configuration, AdaptSpec) key under dir — conventionally
// <cache-dir>/feedback/. It follows the DiskCache contract exactly: writes
// are atomic (temp file + rename), and a missing, torn, or stale-build
// record degrades to a miss, never an error, so multiple processes can
// share one store.
type FeedbackStore struct {
	dir         string
	fingerprint string
}

// NewFeedbackStore opens (creating on first Put) a store rooted at dir.
// fingerprint gates record validity; pass "" for BuildFingerprint().
func NewFeedbackStore(dir, fingerprint string) *FeedbackStore {
	if fingerprint == "" {
		fingerprint = BuildFingerprint()
	}
	return &FeedbackStore{dir: dir, fingerprint: fingerprint}
}

// Dir returns the store root.
func (f *FeedbackStore) Dir() string { return f.dir }

// path returns the record file for a key digest.
func (f *FeedbackStore) path(key string) string {
	return filepath.Join(f.dir, key+".json")
}

// Get loads the record for a key. A missing file, unreadable record, nil
// profile, or fingerprint mismatch is a miss (false); only unexpected I/O
// failures surface as errors.
func (f *FeedbackStore) Get(key string) (*FeedbackRecord, bool, error) {
	data, err := os.ReadFile(f.path(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("feedback store: read %s: %w", key, err)
	}
	var rec FeedbackRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false, nil // torn/corrupt record: re-profile and overwrite
	}
	if rec.Fingerprint != f.fingerprint {
		return nil, false, nil // stale build: self-invalidate
	}
	if rec.Profile == nil {
		rec.Profile = compiler.GateProfile{}
	}
	return &rec, true, nil
}

// Put stores a record under key. The fingerprint is stamped here; the
// write is atomic, so concurrent writers of the same key and readers in
// other processes always see a complete record.
func (f *FeedbackStore) Put(key string, rec *FeedbackRecord) error {
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return fmt.Errorf("feedback store: %w", err)
	}
	stamped := *rec
	stamped.Fingerprint = f.fingerprint
	data, err := json.MarshalIndent(&stamped, "", " ")
	if err != nil {
		return fmt.Errorf("feedback store: encode %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(f.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("feedback store: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("feedback store: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("feedback store: write %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), f.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("feedback store: commit %s: %w", key, err)
	}
	return nil
}

// FeedbackStats summarizes a session's adaptive-control activity: persisted
// feedback-store traffic and iterated-loop progress. The same quantities
// are exported as obs counters (feedback.store_hits, feedback.store_misses,
// adapt.iterations, adapt.converged) when the session carries an observer.
type FeedbackStats struct {
	StoreHits   uint64 // iterated runs served from the persisted store
	StoreMisses uint64 // iterated runs that had to profile
	Iterations  uint64 // profiling iterations executed
	Converged   uint64 // iterated runs that reached a fixed point
}

// FeedbackStats reports the session's adaptive-control activity.
func (s *Session) FeedbackStats() FeedbackStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fb
}

// FeedbackDir returns the persisted feedback-store root ("" when disabled).
func (s *Session) FeedbackDir() string {
	if s.feedback == nil {
		return ""
	}
	return s.feedback.Dir()
}

// countFeedback records persisted-store traffic.
func (s *Session) countFeedback(hits, misses uint64) {
	s.mu.Lock()
	s.fb.StoreHits += hits
	s.fb.StoreMisses += misses
	s.mu.Unlock()
	if s.obsv != nil {
		if hits > 0 {
			s.obsv.Registry.Counter("feedback.store_hits").Add(hits)
		}
		if misses > 0 {
			s.obsv.Registry.Counter("feedback.store_misses").Add(misses)
		}
	}
}

// countIteration records one completed profile→refine iteration.
func (s *Session) countIteration() {
	s.mu.Lock()
	s.fb.Iterations++
	s.mu.Unlock()
	if s.obsv != nil {
		s.obsv.Registry.Counter("adapt.iterations").Inc()
	}
}

// countConverged records one iterated run reaching a fixed point.
func (s *Session) countConverged() {
	s.mu.Lock()
	s.fb.Converged++
	s.mu.Unlock()
	if s.obsv != nil {
		s.obsv.Registry.Counter("adapt.converged").Inc()
	}
}

// emitAdapt forwards a session-level adaptive-control event to the
// observer's trace sink (nil-safe all the way down).
func (s *Session) emitAdapt(ev obs.Event) {
	s.obsv.Emit(ev)
}
