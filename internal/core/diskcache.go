package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime/debug"
)

// cacheSchemaVersion is bumped whenever the record layout (or the meaning
// of any serialized statistic) changes; it is folded into the fingerprint
// so old caches self-invalidate instead of deserializing garbage.
// v2: ack packets charge the full offload header (sim/types.go), Stats
// gained the per-PC gate table + nodest counter, and specs can carry an
// adaptive-feedback component — v1 records describe a different machine.
// v3: AdaptSpec grew the cost model and the iterated-loop identity (v2
// digests aliased adaptive runs that differed only in cost constants), the
// simulator derives its marking cost model from the installed feedback
// parameters, and profiling passes carry their own adapt marker.
// v4: exact quiescence detection (cycle counts no longer overshoot drain by
// up to 63 cycles) and window-boundary-exact channel-busy reads — v3 cycle
// counts and gate decisions describe the old loop.
// v5: Stats grew the mapping-provenance fields (MappingSource, MappedRanges,
// LearnPCIeSaved) and endLearning skips the copy/invalidate/freeze when the
// chosen mapping is already in force — v4 records would replay without the
// provenance the mapping registry and reports read.
const cacheSchemaVersion = "tomcache/v5"

// BuildFingerprint identifies the producing build: the cache schema version
// plus, when the binary carries VCS stamps, the revision and dirty flag.
// Records whose fingerprint differs from the reading binary's are treated
// as misses, so results from an older simulator never leak into new tables.
func BuildFingerprint() string {
	fp := cacheSchemaVersion
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision", "vcs.modified":
				fp += ";" + s.Key + "=" + s.Value
			}
		}
	}
	return fp
}

// cacheRecord is the on-disk form of one cached run: the fingerprint gate,
// a human-readable restatement of the spec (diagnostics — the digest in the
// filename is the authoritative key), and the verified result.
type cacheRecord struct {
	Fingerprint string    `json:"fingerprint"`
	Workload    string    `json:"workload"`
	Scale       float64   `json:"scale"`
	Config      string    `json:"config"`
	Result      RunResult `json:"result"`
}

// DiskCache is the persistent result layer: one JSON record per run spec
// digest under dir. It is safe for concurrent use by multiple goroutines
// and multiple processes — writes go through a temp file + rename, and a
// torn or foreign record degrades to a miss, never an error.
type DiskCache struct {
	dir         string
	fingerprint string
}

// NewDiskCache opens (creating if needed on first Put) a cache rooted at
// dir. fingerprint gates record validity; pass "" for BuildFingerprint().
func NewDiskCache(dir, fingerprint string) *DiskCache {
	if fingerprint == "" {
		fingerprint = BuildFingerprint()
	}
	return &DiskCache{dir: dir, fingerprint: fingerprint}
}

// Dir returns the cache root.
func (c *DiskCache) Dir() string { return c.dir }

// path returns the record file for a digest.
func (c *DiskCache) path(digest string) string {
	return filepath.Join(c.dir, digest+".json")
}

// Get loads the cached result for a spec digest. A missing file, unreadable
// record, or fingerprint mismatch is a miss (false); only unexpected I/O
// failures surface as errors. Dead records — torn JSON or a foreign
// fingerprint — are removed on the way out: they can never be replayed by
// this build, and leaving them behind made a long-lived cache directory
// accumulate one unreachable record per digest per past build.
func (c *DiskCache) Get(digest string) (*RunResult, bool, error) {
	data, err := os.ReadFile(c.path(digest))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("cache: read %s: %w", digest, err)
	}
	var rec cacheRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		c.discard(digest) // torn/corrupt record: recompute and overwrite
		return nil, false, nil
	}
	if rec.Fingerprint != c.fingerprint {
		c.discard(digest) // stale build: self-invalidate
		return nil, false, nil
	}
	res := rec.Result
	return &res, true, nil
}

// discard removes a dead record. Removal errors are deliberately dropped:
// a concurrent process may have removed or replaced the record already,
// and the fresh run's Put overwrites the path either way.
func (c *DiskCache) discard(digest string) {
	os.Remove(c.path(digest))
}

// Sweep removes every record in the cache directory that this build can
// never replay — torn JSON and foreign fingerprints — and reports how many
// were removed. Long-running servers call it at startup so a cache
// directory that outlives many builds holds only records the serving
// binary can actually use; records for digests the current build simply
// has not requested yet are left alone (their fingerprints match).
// Subdirectories (the feedback store) are not touched.
func (c *DiskCache) Sweep() (int, error) {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil // nothing cached yet
		}
		return 0, fmt.Errorf("cache: sweep: %w", err)
	}
	removed := 0
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		path := filepath.Join(c.dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			continue // raced with a concurrent remove/replace
		}
		var rec cacheRecord
		if json.Unmarshal(data, &rec) == nil && rec.Fingerprint == c.fingerprint {
			continue
		}
		if os.Remove(path) == nil {
			removed++
		}
	}
	return removed, nil
}

// Put stores a verified result under the spec's digest. The write is
// atomic (temp file + rename), so concurrent writers of the same digest
// and readers in other processes always see a complete record.
func (c *DiskCache) Put(spec RunSpec, res *RunResult) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	rec := cacheRecord{
		Fingerprint: c.fingerprint,
		Workload:    spec.Abbr,
		Scale:       spec.Scale,
		Config:      string(spec.Config),
		Result:      *res,
	}
	data, err := json.MarshalIndent(&rec, "", " ")
	if err != nil {
		return fmt.Errorf("cache: encode %s: %w", spec.Key(), err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: write %s: %w", spec.Key(), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: write %s: %w", spec.Key(), err)
	}
	if err := os.Rename(tmp.Name(), c.path(spec.Digest())); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: commit %s: %w", spec.Key(), err)
	}
	return nil
}
