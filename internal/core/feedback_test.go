package core

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"repro/internal/compiler"
	"repro/internal/obs"
)

// TestAdaptiveCostDigestDistinct is the aliasing regression from this PR's
// acceptance criteria: two adaptive runs differing only in the refinement's
// cost model are different measurements — their RunSpec digests, and hence
// their persistent-cache record paths, must differ. Before the fix,
// AdaptOptions.spec() dropped Refine.Cost and both landed on one record.
func TestAdaptiveCostDigestDistinct(t *testing.T) {
	base, err := NewRunSpec("SP", 0.3, CfgCtrlTmap)
	if err != nil {
		t.Fatal(err)
	}
	o1 := AdaptOptions{}.withDefaults()
	o2 := o1
	o2.Refine.Cost.MissLD = 0.9 // only the cost model differs

	s1, s2 := base, base
	a1, a2 := o1.spec(), o2.spec()
	s1.Adapt, s2.Adapt = &a1, &a2
	if s1.Digest() == s2.Digest() {
		t.Fatal("adaptive specs differing only in Refine.Cost share a digest")
	}
	c := NewDiskCache(t.TempDir(), "fp")
	if c.path(s1.Digest()) == c.path(s2.Digest()) {
		t.Fatal("cost-param-differing adaptive runs share a disk-cache path")
	}

	// The iterated-loop identity must separate too: the bound, the
	// intermediate-pass index, and the applied-profile digest.
	seen := map[string]AdaptSpec{s1.Digest(): a1}
	for _, mut := range []func(*AdaptSpec){
		func(a *AdaptSpec) { a.Iterations = 5 },
		func(a *AdaptSpec) { a.Iteration = 1 },
		func(a *AdaptSpec) { a.FeedbackDigest = "deadbeef" },
		func(a *AdaptSpec) { a.Cost.WarpSize = 64 },
	} {
		a := a1
		mut(&a)
		sp := base
		sp.Adapt = &a
		if prev, dup := seen[sp.Digest()]; dup {
			t.Errorf("digest collision between %+v and %+v", prev, a)
		}
		seen[sp.Digest()] = a
	}
}

// TestRunAdaptiveIteratedConvergesAndPersists: the iterated loop must reach
// a fixed point within the bound, persist the converged refinement, and a
// later session must install the stored table without any profiling pass —
// with byte-identical feedback and history.
func TestRunAdaptiveIteratedConvergesAndPersists(t *testing.T) {
	dir := t.TempDir()
	opts := AdaptOptions{ProfileFrac: 0.5, Iterations: 3}

	s := NewSession(Options{Scale: 0.1, CacheDir: dir, Fingerprint: "fp"})
	ad, err := s.RunAdaptiveIterated("LIB", CfgCtrlTmap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ad.Converged || ad.ConvergedAt < 2 {
		t.Fatalf("iterated run did not converge: %+v", ad)
	}
	if ad.FromStore || ad.Profile == nil {
		t.Fatalf("cold iterated run must profile: FromStore=%v Profile=%v", ad.FromStore, ad.Profile)
	}
	if len(ad.History) != ad.Iterations {
		t.Fatalf("history has %d entries for %d iterations", len(ad.History), ad.Iterations)
	}
	if fs := s.FeedbackStats(); fs.StoreMisses != 1 || fs.StoreHits != 0 ||
		fs.Iterations != uint64(ad.Iterations) || fs.Converged != 1 {
		t.Fatalf("cold feedback stats = %+v", fs)
	}
	coldTable, err := json.Marshal(ad.Feedback)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh session, same cache: the persisted store supplies the converged
	// table — no profiling pass, no simulation at all (the full pass
	// replays from the result cache).
	warm := NewSession(Options{Scale: 0.1, CacheDir: dir, Fingerprint: "fp"})
	ad2, err := warm.RunAdaptiveIterated("LIB", CfgCtrlTmap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ad2.FromStore || ad2.Profile != nil {
		t.Fatalf("warm iterated run must come from the store: FromStore=%v Profile=%v",
			ad2.FromStore, ad2.Profile)
	}
	if fs := warm.FeedbackStats(); fs.StoreHits != 1 || fs.StoreMisses != 0 || fs.Iterations != 0 {
		t.Fatalf("warm feedback stats = %+v (a store hit must skip profiling)", fs)
	}
	if cs := warm.CacheStats(); cs.Simulated != 0 || cs.DiskHits != 1 {
		t.Fatalf("warm cache stats = %+v, want full pass replayed and nothing simulated", cs)
	}
	warmTable, err := json.Marshal(ad2.Feedback)
	if err != nil {
		t.Fatal(err)
	}
	if string(coldTable) != string(warmTable) {
		t.Errorf("restored feedback table differs:\ncold %s\nwarm %s", coldTable, warmTable)
	}
	if !reflect.DeepEqual(ad.History, ad2.History) ||
		ad.Iterations != ad2.Iterations || ad.ConvergedAt != ad2.ConvergedAt {
		t.Errorf("restored iteration record differs: %+v vs %+v", ad, ad2)
	}
	if ad2.Result.Stats.Cycles != ad.Result.Stats.Cycles {
		t.Errorf("restored run differs: %d vs %d cycles", ad2.Result.Stats.Cycles, ad.Result.Stats.Cycles)
	}

	// Sanity: single-pass RunAdaptive never consults the store.
	solo := NewSession(Options{Scale: 0.1, CacheDir: dir, Fingerprint: "fp"})
	if _, err := solo.RunAdaptive("LIB", CfgCtrlTmap, AdaptOptions{ProfileFrac: 0.5}); err != nil {
		t.Fatal(err)
	}
	if fs := solo.FeedbackStats(); fs.StoreHits != 0 || fs.StoreMisses != 0 {
		t.Errorf("RunAdaptive touched the feedback store: %+v", fs)
	}
}

// TestFeedbackStoreCorruptAndStaleMiss: the store follows the DiskCache
// contract — torn records, foreign fingerprints, and absent keys are
// misses, never errors, and a miss re-profiles and overwrites.
func TestFeedbackStoreCorruptAndStaleMiss(t *testing.T) {
	dir := t.TempDir()
	st := NewFeedbackStore(dir, "fp")
	rec := &FeedbackRecord{
		Workload: "LIB", Scale: 0.1, Config: string(CfgCtrlTmap),
		Iterations: 2, Converged: true, ConvergedAt: 2,
		History: []AdaptIteration{{Iteration: 1, Decisions: 48}},
		Profile: compiler.GateProfile{14: {Sent: 3, TripSum: 96, TripObs: 3}},
	}
	if err := st.Put("k", rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get("k")
	if err != nil || !ok {
		t.Fatalf("Get after Put = (%v, %v)", ok, err)
	}
	if got.Profile[14].Sent != 3 || !got.Converged || got.History[0].Decisions != 48 {
		t.Fatalf("round trip mangled the record: %+v", got)
	}

	// Torn record: a miss, not an error.
	if err := os.WriteFile(st.path("k"), []byte(`{"fingerprint":"fp","profi`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get("k"); err != nil || ok {
		t.Fatalf("corrupt record must be a miss: (%v, %v)", ok, err)
	}

	// Foreign fingerprint: a miss.
	if err := st.Put("k2", rec); err != nil {
		t.Fatal(err)
	}
	other := NewFeedbackStore(dir, "other-build")
	if _, ok, err := other.Get("k2"); err != nil || ok {
		t.Fatalf("stale-build record must be a miss: (%v, %v)", ok, err)
	}

	// Absent key: a miss.
	if _, ok, err := st.Get("absent"); err != nil || ok {
		t.Fatalf("absent record must be a miss: (%v, %v)", ok, err)
	}
}

// TestAdaptIteratedObservability: the iterated loop must export its
// progress as session-level obs metrics and lifecycle events.
func TestAdaptIteratedObservability(t *testing.T) {
	o := obs.New()
	sink := &obs.CollectSink{}
	o.Trace = sink
	s := NewSession(Options{Scale: 0.1, CacheDir: t.TempDir(), Fingerprint: "fp", Obs: o})
	ad, err := s.RunAdaptiveIterated("LIB", CfgCtrlTmap, AdaptOptions{ProfileFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	reg := o.Registry
	if got := reg.Counter("adapt.iterations").Value(); got != uint64(ad.Iterations) {
		t.Errorf("adapt.iterations = %d, want %d", got, ad.Iterations)
	}
	if got := reg.Counter("adapt.converged").Value(); got != 1 {
		t.Errorf("adapt.converged = %d, want 1", got)
	}
	if got := reg.Counter("feedback.store_misses").Value(); got != 1 {
		t.Errorf("feedback.store_misses = %d, want 1", got)
	}
	kinds := map[string][]obs.Event{}
	for _, ev := range sink.Events() {
		kinds[ev.Kind] = append(kinds[ev.Kind], ev)
	}
	if got := len(kinds[obs.EvAdaptIter]); got != ad.Iterations {
		t.Errorf("%d adapt_iter events, want %d", got, ad.Iterations)
	}
	done := kinds[obs.EvAdaptDone]
	if len(done) != 1 || done[0].Reason != "converged" || done[0].N != ad.Iterations {
		t.Errorf("adapt_done events = %+v", done)
	}
	var reasons []string
	for _, ev := range kinds[obs.EvFeedbackStore] {
		reasons = append(reasons, ev.Reason)
	}
	if !reflect.DeepEqual(reasons, []string{"miss", "save"}) {
		t.Errorf("feedback_store reasons = %v, want [miss save]", reasons)
	}
	for _, ev := range sink.Events() {
		if ev.Run == "" && (ev.Kind == obs.EvAdaptIter || ev.Kind == obs.EvAdaptDone) {
			t.Errorf("session-level event missing its run label: %+v", ev)
		}
	}
}
