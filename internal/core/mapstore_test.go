package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestMapInstallDigestDistinct: a stored-mapping run is a different
// measurement than the fresh-learning run of the same configuration, and
// installs differing in any parameter are different runs — none may share a
// cache record.
func TestMapInstallDigestDistinct(t *testing.T) {
	base, err := NewRunSpec("SP", 0.3, CfgCtrlTmap)
	if err != nil {
		t.Fatal(err)
	}
	withInstall := func(mi MapInstallSpec) RunSpec {
		s := base
		s.MapInstall = &mi
		return s
	}
	specs := []RunSpec{
		base,
		withInstall(MapInstallSpec{Bit: 9, Ranges: []string{"a"}, SavedPCIe: 100}),
		withInstall(MapInstallSpec{Bit: 10, Ranges: []string{"a"}, SavedPCIe: 100}),
		withInstall(MapInstallSpec{Bit: 9, Ranges: []string{"a", "b"}, SavedPCIe: 100}),
		withInstall(MapInstallSpec{Bit: 9, Ranges: []string{"a"}, SavedPCIe: 101}),
	}
	seen := map[string]int{}
	for i, s := range specs {
		d := s.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("digest collision between specs %d and %d", prev, i)
		}
		seen[d] = i
	}
}

// TestLearnFamilySharing: configurations that differ only in post-learning
// parameters (stack capacity, cross-stack bandwidth, coherence, offload
// gates) share one mapping family, while any learning-relevant change
// (learning tunables, cache geometry, PCIe model) splits it.
func TestLearnFamilySharing(t *testing.T) {
	tmap, _ := buildConfig(CfgCtrlTmap)
	fam := learnFamily(tmap)
	for _, name := range []ConfigName{CfgWarp2x, CfgWarp4x, CfgCross100,
		CfgCross0125, CfgInternal1x, CfgNoCoherence, CfgNoCtrlTmap} {
		c, err := buildConfig(name)
		if err != nil {
			t.Fatal(err)
		}
		if learnFamily(c) != fam {
			t.Errorf("%s: should share ctrl-tmap's mapping family (stacks are idle during learning)", name)
		}
	}
	for _, mut := range []struct {
		name string
		mut  func(*sim.Config)
	}{
		{"LearnFrac", func(c *sim.Config) { c.LearnFrac *= 2 }},
		{"LearnMin", func(c *sim.Config) { c.LearnMin++ }},
		{"LearnDeadline", func(c *sim.Config) { c.LearnDeadline++ }},
		{"PCIeBW", func(c *sim.Config) { c.PCIeBW *= 2 }},
		{"L2Bytes", func(c *sim.Config) { c.L2Bytes *= 2 }},
		{"MainSMs", func(c *sim.Config) { c.MainSMs++ }},
		{"Stacks", func(c *sim.Config) { c.Stacks *= 2 }},
	} {
		c := tmap
		mut.mut(&c)
		if learnFamily(c) == fam {
			t.Errorf("changing %s must split the mapping family", mut.name)
		}
	}
}

// TestMappingStoreCorruptAndStaleMiss: a record that cannot be trusted —
// torn JSON, a foreign build fingerprint, an out-of-range bit, or an empty
// range list — must degrade to a miss (fresh learning), never surface an
// error or install a wrong mapping.
func TestMappingStoreCorruptAndStaleMiss(t *testing.T) {
	dir := t.TempDir()
	st := NewMappingStore(dir, "fp-A")
	rec := &MappingRecord{Workload: "SP", Scale: 0.1, Bit: 9, Ranges: []string{"a"}}
	if err := st.Put("k1", rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get("k1")
	if err != nil || !ok {
		t.Fatalf("get after put: ok=%v err=%v", ok, err)
	}
	if got.Bit != 9 || !reflect.DeepEqual(got.Ranges, []string{"a"}) || got.Fingerprint != "fp-A" {
		t.Errorf("round trip mutated the record: %+v", got)
	}

	if _, ok, _ := NewMappingStore(dir, "fp-B").Get("k1"); ok {
		t.Error("fingerprint mismatch must be a miss")
	}
	if err := os.WriteFile(filepath.Join(dir, "k1.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get("k1"); ok || err != nil {
		t.Errorf("corrupt record: ok=%v err=%v", ok, err)
	}

	if err := st.Put("k2", &MappingRecord{Bit: 99, Ranges: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.Get("k2"); ok {
		t.Error("out-of-range bit must be a miss")
	}
	if err := st.Put("k3", &MappingRecord{Bit: 9}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.Get("k3"); ok {
		t.Error("empty range list must be a miss")
	}
}

// TestMappingStoreColdThenWarm is the acceptance test for the persistent
// mapping registry: a cold session learns the mapping (paying the PCIe
// detour) and seeds the store; a warm session over the same cache directory
// installs it before cycle 0 — zero learning-phase PCIe bytes, the learned
// bit and copy charge reproduced exactly, the avoided traffic reported —
// and a second warm session replays the stored-mapping run from the result
// cache byte-for-byte.
func TestMappingStoreColdThenWarm(t *testing.T) {
	dir := t.TempDir()
	const scale = 0.05

	cold := NewSession(Options{Scale: scale, CacheDir: dir, Fingerprint: "build-1"})
	spec, err := cold.Spec("LIB", CfgCtrlTmap)
	if err != nil {
		t.Fatal(err)
	}
	spec, err = cold.WithStoredMapping(spec)
	if err != nil {
		t.Fatal(err)
	}
	if spec.MapInstall != nil {
		t.Fatal("cold store must miss")
	}
	fresh, err := cold.RunSpecExact(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Stats.MappingSource != sim.MappingLearned || fresh.Stats.PCIeBytes == 0 {
		t.Fatalf("cold run should learn over PCIe: source=%q pcie=%d",
			fresh.Stats.MappingSource, fresh.Stats.PCIeBytes)
	}
	if ms := cold.MappingStats(); ms.StoreHits != 0 || ms.StoreMisses != 1 || ms.StoreWrites != 1 {
		t.Fatalf("cold mapping stats = %+v, want 1 miss + 1 write", ms)
	}

	warm := NewSession(Options{Scale: scale, CacheDir: dir, Fingerprint: "build-1"})
	wspec, err := warm.Spec("LIB", CfgCtrlTmap)
	if err != nil {
		t.Fatal(err)
	}
	wspec, err = warm.WithStoredMapping(wspec)
	if err != nil {
		t.Fatal(err)
	}
	if wspec.MapInstall == nil {
		t.Fatal("warm store must hit")
	}
	if wspec.Digest() == spec.Digest() {
		t.Fatal("stored-mapping run must not alias the fresh-learning run")
	}
	stored, src, err := warm.RunSpecTracked(wspec)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceSimulated {
		t.Fatalf("first stored-mapping run came from %q, want a fresh simulation", src)
	}
	st := &stored.Stats
	if st.MappingSource != sim.MappingStored {
		t.Errorf("MappingSource = %q, want %q", st.MappingSource, sim.MappingStored)
	}
	if st.PCIeBytes != 0 {
		t.Errorf("stored-mapping run paid %d learning-phase PCIe bytes, want 0", st.PCIeBytes)
	}
	if st.LearnedBit != fresh.Stats.LearnedBit {
		t.Errorf("installed bit %d != learned bit %d", st.LearnedBit, fresh.Stats.LearnedBit)
	}
	if st.CopiedBytes != fresh.Stats.CopiedBytes {
		t.Errorf("install copied %d bytes, fresh learning copied %d", st.CopiedBytes, fresh.Stats.CopiedBytes)
	}
	if st.LearnPCIeSaved != fresh.Stats.PCIeBytes {
		t.Errorf("LearnPCIeSaved = %d, want the fresh run's %d PCIe bytes",
			st.LearnPCIeSaved, fresh.Stats.PCIeBytes)
	}
	if ms := warm.MappingStats(); ms.StoreHits != 1 || ms.SavedBytes != fresh.Stats.PCIeBytes {
		t.Errorf("warm mapping stats = %+v", ms)
	}
	// An installed run re-learned nothing, so it must not overwrite the
	// record (StoreWrites stays 0 on the warm session).
	if ms := warm.MappingStats(); ms.StoreWrites != 0 {
		t.Errorf("warm session rewrote the store %d times", ms.StoreWrites)
	}

	// Second warm session: same consult, and the run replays from the
	// persistent result cache with the identical record.
	warm2 := NewSession(Options{Scale: scale, CacheDir: dir, Fingerprint: "build-1"})
	w2spec, err := warm2.Spec("LIB", CfgCtrlTmap)
	if err != nil {
		t.Fatal(err)
	}
	w2spec, err = warm2.WithStoredMapping(w2spec)
	if err != nil {
		t.Fatal(err)
	}
	if w2spec.MapInstall == nil {
		t.Fatal("second warm consult must hit")
	}
	replayed, src2, err := warm2.RunSpecTracked(w2spec)
	if err != nil {
		t.Fatal(err)
	}
	if src2 != SourceDisk {
		t.Errorf("second stored-mapping run came from %q, want the disk cache", src2)
	}
	if !reflect.DeepEqual(replayed, stored) {
		t.Errorf("replayed stored-mapping result differs from the simulated one")
	}

	// A session with a foreign fingerprint must fall back to fresh learning.
	other := NewSession(Options{Scale: scale, CacheDir: dir, Fingerprint: "build-2"})
	ospec, err := other.Spec("LIB", CfgCtrlTmap)
	if err != nil {
		t.Fatal(err)
	}
	ospec, err = other.WithStoredMapping(ospec)
	if err != nil {
		t.Fatal(err)
	}
	if ospec.MapInstall != nil {
		t.Error("stale-build record must not install")
	}
}

// TestWithStoredMappingGates: the consult is a no-op for sessions without a
// store and for configurations that never learn (non-transparent mapping).
func TestWithStoredMappingGates(t *testing.T) {
	s := NewRunner(0.05) // no cache dir: store disabled
	spec, err := s.Spec("LIB", CfgCtrlTmap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.WithStoredMapping(spec)
	if err != nil || got.MapInstall != nil {
		t.Errorf("store-less session: MapInstall=%v err=%v", got.MapInstall, err)
	}
	if ms := s.MappingStats(); ms != (MappingStats{}) {
		t.Errorf("store-less session counted mapping traffic: %+v", ms)
	}

	withDir := NewSession(Options{Scale: 0.05, CacheDir: t.TempDir(), Fingerprint: "b"})
	bspec, err := withDir.Spec("LIB", CfgCtrlBmap)
	if err != nil {
		t.Fatal(err)
	}
	got, err = withDir.WithStoredMapping(bspec)
	if err != nil || got.MapInstall != nil {
		t.Errorf("bmap config: MapInstall=%v err=%v", got.MapInstall, err)
	}
	if ms := withDir.MappingStats(); ms != (MappingStats{}) {
		t.Errorf("non-learning config counted mapping traffic: %+v", ms)
	}
}
