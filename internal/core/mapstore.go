package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/mapping"
	"repro/internal/sim"
)

// MappingRecord is the on-disk form of one converged transparent-mapping
// learning phase: the fingerprint gate, a human-readable restatement of the
// key (the digest in the filename is authoritative), the learned mapping
// itself (bit + the allocation ranges it covers), and the learning-phase
// cost a later install avoids. A session that derives the same key installs
// Bit/Ranges at construction — no learning phase, no PCIe detour.
type MappingRecord struct {
	Fingerprint string  `json:"fingerprint"`
	Workload    string  `json:"workload"`
	Scale       float64 `json:"scale"`
	// Structure is the data-structure identity (mapping.StructureID) the bit
	// was learned on; a workload whose allocation layout changed derives a
	// different key and never sees this record.
	Structure string `json:"structure"`
	// Family is the canonical learning-relevant configuration (learnFamily):
	// configurations that differ only in post-learning parameters share it.
	Family string `json:"family"`

	Bit    int      `json:"bit"`
	Ranges []string `json:"ranges"`

	// Learning-phase cost of the run that produced the record — what a
	// stored install avoids (LearnPCIeBytes) or repeats (CopiedBytes).
	CopiedBytes    uint64 `json:"copied_bytes"`
	LearnPCIeBytes uint64 `json:"learn_pcie_bytes"`
	LearnInstances int    `json:"learn_instances"`
	LearnCycles    int64  `json:"learn_cycles"`
}

// MappingStore persists learned transparent mappings, one JSON record per
// (workload, scale, data-structure identity, learning-relevant configuration
// family) key under dir — conventionally <cache-dir>/mappings/. It follows
// the DiskCache contract exactly: writes are atomic (temp file + rename),
// and a missing, torn, stale-build, or structurally invalid record degrades
// to a miss — fresh learning — never to a wrong mapping.
type MappingStore struct {
	dir         string
	fingerprint string
}

// NewMappingStore opens (creating on first Put) a store rooted at dir.
// fingerprint gates record validity; pass "" for BuildFingerprint().
func NewMappingStore(dir, fingerprint string) *MappingStore {
	if fingerprint == "" {
		fingerprint = BuildFingerprint()
	}
	return &MappingStore{dir: dir, fingerprint: fingerprint}
}

// Dir returns the store root.
func (m *MappingStore) Dir() string { return m.dir }

// path returns the record file for a key digest.
func (m *MappingStore) path(key string) string {
	return filepath.Join(m.dir, key+".json")
}

// Get loads the record for a key. A missing file, unreadable record,
// fingerprint mismatch, out-of-range bit, or empty range list is a miss
// (false); only unexpected I/O failures surface as errors. The validity
// checks matter: installing a malformed mapping would place data wrongly,
// which is strictly worse than re-learning.
func (m *MappingStore) Get(key string) (*MappingRecord, bool, error) {
	data, err := os.ReadFile(m.path(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("mapping store: read %s: %w", key, err)
	}
	var rec MappingRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false, nil // torn/corrupt record: re-learn and overwrite
	}
	if rec.Fingerprint != m.fingerprint {
		return nil, false, nil // stale build: self-invalidate
	}
	if rec.Bit < mapping.MinBit || rec.Bit > mapping.MaxBit || len(rec.Ranges) == 0 {
		return nil, false, nil // structurally invalid: never install
	}
	return &rec, true, nil
}

// Put stores a record under key. The fingerprint is stamped here; the
// write is atomic, so concurrent writers of the same key and readers in
// other processes always see a complete record.
func (m *MappingStore) Put(key string, rec *MappingRecord) error {
	if err := os.MkdirAll(m.dir, 0o755); err != nil {
		return fmt.Errorf("mapping store: %w", err)
	}
	stamped := *rec
	stamped.Fingerprint = m.fingerprint
	data, err := json.MarshalIndent(&stamped, "", " ")
	if err != nil {
		return fmt.Errorf("mapping store: encode %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(m.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("mapping store: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("mapping store: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("mapping store: write %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), m.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("mapping store: commit %s: %w", key, err)
	}
	return nil
}

// learnFamily canonicalizes the learning-relevant subset of a configuration:
// parameters that cannot influence the learning phase are normalized to the
// Table 1 defaults before rendering, so configurations that differ only
// post-learning (offload control mode and its gates, stack-side capacity and
// bandwidth knobs, the coherence protocol, run limits) share one stored
// mapping. The exclusions are safe by construction: during learning every
// L2 miss routes over the PCIe path and no offloads are in flight, so the
// stacks, their links, and the offload gates are completely idle — they
// cannot affect which instances the analyzer observes or the bit it picks.
// Every other parameter (GPU organization, cache geometry, PCIe model,
// learning-phase tunables, the offload policy's candidate selection) stays,
// erring toward fragmentation — an unnecessary miss re-learns; a wrong hit
// would misplace data.
func learnFamily(cfg sim.Config) string {
	f := cfg
	f.Observer = nil
	d := sim.DefaultConfig()
	f.Offload = d.Offload
	f.BusyThreshold = d.BusyThreshold
	f.ALUGate = d.ALUGate
	f.Coherence = d.Coherence
	f.StackWarpMult = d.StackWarpMult
	f.InternalBWRatio = d.InternalBWRatio
	f.CrossStackBW = d.CrossStackBW
	f.FixedBit = d.FixedBit
	f.MaxCycles = d.MaxCycles
	return f.Canonical()
}

// mappingKey digests one mapping-store identity.
func mappingKey(abbr string, scale float64, structure, family string) string {
	h := sha256.New()
	fmt.Fprintf(h, "workload=%s;scale=%v;structure=%s;family=%s", abbr, scale, structure, family)
	return hex.EncodeToString(h.Sum(nil))
}

// MappingStats summarizes a session's persistent-mapping activity. The same
// quantities are exported as obs counters (mapping.store_hits,
// mapping.store_misses, mapping.store_writes, learn.pcie_bytes_saved) when
// the session carries an observer.
type MappingStats struct {
	StoreHits   uint64 // specs that installed a stored mapping
	StoreMisses uint64 // consults that found no usable record
	StoreWrites uint64 // learned mappings persisted
	SavedBytes  uint64 // learning-phase PCIe bytes avoided by installs
}

// MappingStats reports the session's persistent-mapping activity.
func (s *Session) MappingStats() MappingStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ms
}

// MappingDir returns the persistent mapping-store root ("" when disabled).
func (s *Session) MappingDir() string {
	if s.mappings == nil {
		return ""
	}
	return s.mappings.Dir()
}

// countMapping records mapping-store consults (and the PCIe savings a hit
// locks in).
func (s *Session) countMapping(hits, misses, saved uint64) {
	s.mu.Lock()
	s.ms.StoreHits += hits
	s.ms.StoreMisses += misses
	s.ms.SavedBytes += saved
	s.mu.Unlock()
	if s.obsv != nil {
		if hits > 0 {
			s.obsv.Registry.Counter("mapping.store_hits").Add(hits)
		}
		if misses > 0 {
			s.obsv.Registry.Counter("mapping.store_misses").Add(misses)
		}
		if saved > 0 {
			s.obsv.Registry.Counter("learn.pcie_bytes_saved").Add(saved)
		}
	}
}

// countMappingWrite records one learned mapping persisted to the store.
func (s *Session) countMappingWrite() {
	s.mu.Lock()
	s.ms.StoreWrites++
	s.mu.Unlock()
	if s.obsv != nil {
		s.obsv.Registry.Counter("mapping.store_writes").Inc()
	}
}

// WithStoredMapping consults the persistent mapping registry for a resolved
// spec and, on a hit, returns the spec with the stored mapping folded in as
// a pre-install (RunSpec.MapInstall): the run then starts with the learned
// bit resident — no learning phase, no PCIe detour — charging only the
// one-time copy. Anything that prevents a safe install (store disabled,
// non-transparent mapping mode, no record, stale or corrupt record) returns
// the spec unchanged, degrading to fresh learning. The fold participates in
// the run digest, so stored-mapping runs never alias fresh-learning runs in
// any cache layer.
func (s *Session) WithStoredMapping(spec RunSpec) (RunSpec, error) {
	if s.mappings == nil || spec.MapInstall != nil || spec.Cfg.Mapping != sim.MapTransparent {
		return spec, nil
	}
	in, err := s.instance(spec.Abbr)
	if err != nil {
		return RunSpec{}, err
	}
	key := mappingKey(spec.Abbr, spec.Scale, mapping.StructureID(in.Alloc), learnFamily(spec.Cfg))
	rec, ok, err := s.mappings.Get(key)
	if err != nil {
		return RunSpec{}, err
	}
	if !ok {
		s.countMapping(0, 1, 0)
		return spec, nil
	}
	s.countMapping(1, 0, rec.LearnPCIeBytes)
	spec.MapInstall = &MapInstallSpec{
		Bit:       rec.Bit,
		Ranges:    append([]string(nil), rec.Ranges...),
		SavedPCIe: rec.LearnPCIeBytes,
		Structure: rec.Structure,
	}
	return spec, nil
}

// storeLearnedMapping persists the learned mapping of a freshly simulated,
// verified run. Only genuine learning results are stored: the run must have
// learned its bit this run (not installed or preset), with a valid bit and
// at least one mapped range. Write failures cost future installs, not
// correctness, so they are logged and swallowed like DiskCache put failures.
func (s *Session) storeLearnedMapping(spec RunSpec, res *RunResult) {
	if s.mappings == nil || spec.MapInstall != nil {
		return
	}
	st := &res.Stats
	if st.MappingSource != sim.MappingLearned || st.LearnedBit < mapping.MinBit ||
		st.LearnedBit > mapping.MaxBit || len(st.MappedRanges) == 0 {
		return
	}
	in, err := s.instance(spec.Abbr)
	if err != nil {
		return
	}
	structure := mapping.StructureID(in.Alloc)
	key := mappingKey(spec.Abbr, spec.Scale, structure, learnFamily(spec.Cfg))
	rec := &MappingRecord{
		Workload:       spec.Abbr,
		Scale:          spec.Scale,
		Structure:      structure,
		Family:         learnFamily(spec.Cfg),
		Bit:            st.LearnedBit,
		Ranges:         append([]string(nil), st.MappedRanges...),
		CopiedBytes:    st.CopiedBytes,
		LearnPCIeBytes: st.PCIeBytes,
		LearnInstances: st.LearnInstances,
		LearnCycles:    st.LearnCycles,
	}
	if err := s.mappings.Put(key, rec); err != nil {
		s.logf("mapping store: %v", err)
		return
	}
	s.countMappingWrite()
}
