package sim

import "repro/internal/isa"

// runEvent dispatches one typed wheel event. The hot schedule sites (L2
// routing, crossbar→vault delivery, offload pipeline, warp wakeups) encode
// their continuation in wheelEvent fields instead of closures, so firing
// them allocates nothing; wevFunc remains the escape hatch for cold paths.
func (sys *System) runEvent(ev *wheelEvent, now int64) {
	switch ev.kind {
	case wevFunc:
		ev.fn(now)

	case wevReconsider:
		ev.sm.reconsider(ev.sw, now)

	case wevLSURetry:
		// MSHR-full retry: re-ready the warp unless a fill already did.
		if ev.sw.state == wsWaitLSU {
			ev.sm.setReady(ev.sw)
		}

	case wevSendOffload:
		// Offload pipeline done: the packed request enters the TX link.
		job := ev.job
		reqBytes := offloadHdrBytes + job.cand.NumLiveIn()*isa.WarpSize*regLaneBytes
		sys.txLinks[job.dest].Send(packetOf(reqBytes, func(rx int64) {
			sm := sys.stacks[job.dest].spawnTarget()
			sm.spawnQ = append(sm.spawnQ, job)
		}), now)

	case wevFinishOffload:
		sys.finishOffload(ev.job, now)

	case wevRouteLoad:
		sys.routeLoad(ev.line, now)

	case wevRouteStore:
		sys.routeStore(ev.t, now)

	case wevVaultTry:
		// Crossbar delivery: enqueue into the vault, retrying while full.
		if !ev.vault.Enqueue(ev.req) {
			sys.wheel.afterEvent(4, *ev)
		}

	case wevTxnDone:
		ev.t.complete(now)
	}
}
