package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workloads"
)

const fig9GoldenPath = "testdata/fig9_golden.json"

// fig9PinConfigs is the Fig. 9 configuration matrix shared with
// TestEventLoopMatchesPerCycleStats: baseline plus the four
// offload-control × mapping combinations.
func fig9PinConfigs() []struct {
	name string
	mk   func() Config
} {
	return []struct {
		name string
		mk   func() Config
	}{
		{"baseline", BaselineConfig},
		{"noctrl-bmap", func() Config {
			c := DefaultConfig()
			c.Offload = OffloadUncontrolled
			c.Mapping = MapBaseline
			return c
		}},
		{"noctrl-tmap", func() Config {
			c := DefaultConfig()
			c.Offload = OffloadUncontrolled
			return c
		}},
		{"ctrl-bmap", func() Config {
			c := DefaultConfig()
			c.Mapping = MapBaseline
			return c
		}},
		{"ctrl-tmap", DefaultConfig},
	}
}

// TestTomPolicyPinsFig9Golden is the refactor-safety bar for the offload
// policy extraction: the default (`tom`) policy must reproduce the Fig. 9
// Stats matrix byte-identically to the pre-refactor simulator. The golden
// file pins every Stats field that existed when it was generated; fields
// added later (new gate reasons, etc.) are permitted to appear with zero
// values but every pinned field must match exactly.
//
// Regenerate with:
//
//	GOLDEN_UPDATE=1 go test ./internal/sim -run TestTomPolicyPinsFig9Golden
//
// Only regenerate when a deliberate behavioral change is being made; a
// refactor must never need it.
func TestTomPolicyPinsFig9Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-system simulations")
	}
	update := os.Getenv("GOLDEN_UPDATE") != ""

	fresh := map[string]json.RawMessage{}
	for _, w := range workloads.All() {
		inst, err := w.Build(0.03)
		if err != nil {
			t.Fatalf("%s: %v", w.Abbr, err)
		}
		for _, c := range fig9PinConfigs() {
			run := inst.Clone()
			cfg := c.mk()
			cfg.MaxCycles = 100_000_000
			sys := New(cfg, run.Mem, run.Alloc)
			if err := sys.Run(run.Launches); err != nil {
				t.Fatalf("%s/%s: %v", w.Abbr, c.name, err)
			}
			raw, err := json.Marshal(sys.Stats())
			if err != nil {
				t.Fatalf("%s/%s: marshal: %v", w.Abbr, c.name, err)
			}
			fresh[fmt.Sprintf("%s/%s", w.Abbr, c.name)] = raw
		}
	}

	if update {
		if err := os.MkdirAll(filepath.Dir(fig9GoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(fresh, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fig9GoldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cells)", fig9GoldenPath, len(fresh))
		return
	}

	data, err := os.ReadFile(fig9GoldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with GOLDEN_UPDATE=1): %v", err)
	}
	var golden map[string]json.RawMessage
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("decode golden: %v", err)
	}
	for cell, want := range golden {
		got, ok := fresh[cell]
		if !ok {
			t.Errorf("%s: missing from fresh run (workload or config removed?)", cell)
			continue
		}
		var wantFields, gotFields map[string]json.RawMessage
		if err := json.Unmarshal(want, &wantFields); err != nil {
			t.Fatalf("%s: decode golden cell: %v", cell, err)
		}
		if err := json.Unmarshal(got, &gotFields); err != nil {
			t.Fatalf("%s: decode fresh cell: %v", cell, err)
		}
		for field, w := range wantFields {
			g, ok := gotFields[field]
			if !ok {
				t.Errorf("%s: field %s vanished from Stats", cell, field)
				continue
			}
			if !bytes.Equal(compactJSON(t, w), compactJSON(t, g)) {
				t.Errorf("%s: %s diverged from golden:\n  golden: %s\n  got:    %s",
					cell, field, w, g)
			}
		}
	}
}

func compactJSON(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compact: %v", err)
	}
	return buf.Bytes()
}
