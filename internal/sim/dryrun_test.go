package sim

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
)

// dryRunWarp builds a System plus a fresh warp for a hand-written kernel, so
// the destination dry run can be exercised directly: the warp sits at PC 0
// with the launch parameters in r0..rN, which is exactly the register state
// dryRun consumes for regions referencing only parameters.
func dryRunWarp(t *testing.T, k *isa.Kernel, params []uint64) (*System, *smWarp) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline
	sys := New(cfg, mem.NewFlat(), mem.NewAllocTable())
	md, err := sys.metadata(k)
	if err != nil {
		t.Fatal(err)
	}
	w := exec.NewWarp(k, md.Info, exec.WarpInfo{NTid: 32, NCtaid: 1}, sys.mem, nil, params)
	return sys, &smWarp{w: w}
}

func lineOf(sys *System, addr uint64) uint64 {
	return addr &^ uint64(sys.cfg.LineBytes-1)
}

// TestDryRunBranchPredicates: the scalar walk must evaluate Setp/FSetp
// predicates and follow the branch the leader lane would take, so the
// reported first access comes from the taken path.
func TestDryRunBranchPredicates(t *testing.T) {
	const aBase, bBase = 0x10000, 0x90000
	intKernel := func() *isa.Kernel {
		b := isa.NewBuilder("bri", 3) // r0=a, r1=b, r2=sel
		b.Setp(5, isa.CmpLT, isa.R(2), isa.Imm(10))
		b.BraIf(isa.R(5), "bpath")
		b.Ld(6, isa.R(0), 0)
		b.Bra("end")
		b.Label("bpath")
		b.Ld(7, isa.R(1), 0)
		b.Label("end")
		b.St(isa.R(0), 0, isa.R(6))
		b.Exit()
		return b.MustBuild()
	}
	floatKernel := func() *isa.Kernel {
		b := isa.NewBuilder("brf", 3) // r0=a, r1=b, r2=sel (f32 bits)
		b.FSetp(5, isa.CmpGT, isa.R(2), isa.ImmF(1.5))
		b.BraIf(isa.R(5), "bpath")
		b.Ld(6, isa.R(0), 0)
		b.Bra("end")
		b.Label("bpath")
		b.Ld(7, isa.R(1), 0)
		b.Label("end")
		b.St(isa.R(0), 0, isa.R(6))
		b.Exit()
		return b.MustBuild()
	}
	cases := []struct {
		name     string
		kernel   *isa.Kernel
		sel      uint64
		wantAddr uint64
	}{
		{"setp true takes branch", intKernel(), 5, bBase},
		{"setp false falls through", intKernel(), 50, aBase},
		{"fsetp true takes branch", floatKernel(), isa.F32Bits(2.5), bBase},
		{"fsetp false falls through", floatKernel(), isa.F32Bits(0.5), aBase},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sys, sw := dryRunWarp(t, c.kernel, []uint64{aBase, bBase, c.sel})
			// Region: everything up to (excluding) the trailing store.
			cand := &compiler.Candidate{StartPC: 0, EndPC: len(c.kernel.Instrs) - 2}
			lines, bounded := sys.dryRun(sw, cand, 1)
			if bounded {
				t.Fatal("straight-line region reported bounded")
			}
			if len(lines) != 1 || lines[0] != lineOf(sys, c.wantAddr) {
				t.Fatalf("dryRun lines = %#x, want [%#x]", lines, lineOf(sys, c.wantAddr))
			}
			if dest := sys.destStack(sw, cand); dest != sys.stackOf(lines[0]) {
				t.Errorf("destStack = %d, want %d", dest, sys.stackOf(lines[0]))
			}
		})
	}
}

// TestDryRunIllegalOpBailsOut: instructions that cannot occur in a legal
// candidate must stop the walk with no destination rather than being
// misinterpreted — destStack reports -1 and the trace stays empty.
func TestDryRunIllegalOpBailsOut(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *isa.Builder)
	}{
		{"bar", func(b *isa.Builder) { b.Bar() }},
		{"ld.shared", func(b *isa.Builder) { b.LdShared(5, isa.R(0), 0) }},
		{"st.shared", func(b *isa.Builder) { b.StShared(isa.R(0), 0, isa.R(1)) }},
		{"atom.add", func(b *isa.Builder) { b.AtomAdd(5, isa.R(0), 0, isa.R(1)) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := isa.NewBuilder(c.name, 2).SetShared(256)
			c.build(b)
			b.Ld(6, isa.R(0), 0) // never reached by the walk
			b.Exit()
			k := b.MustBuild()
			sys, sw := dryRunWarp(t, k, []uint64{0x10000, 0x20000})
			cand := &compiler.Candidate{StartPC: 0, EndPC: 2}
			lines, bounded := sys.dryRun(sw, cand, 4)
			if len(lines) != 0 || bounded {
				t.Fatalf("dryRun = (%#x, %v), want empty unbounded", lines, bounded)
			}
			if dest := sys.destStack(sw, cand); dest != -1 {
				t.Errorf("destStack = %d, want -1", dest)
			}
		})
	}
}

// TestDryRunStepBoundReportsBounded: a region whose first memory access lies
// beyond the step bound must come back bounded (gate reason destbound), not
// as a plain empty trace.
func TestDryRunStepBoundReportsBounded(t *testing.T) {
	b := isa.NewBuilder("spin", 1) // r0=a
	b.MovI(5, 0)
	b.Label("top")
	b.Add(5, isa.R(5), isa.Imm(1))
	b.Setp(6, isa.CmpLT, isa.R(5), isa.Imm(1_000_000))
	b.BraIf(isa.R(6), "top")
	b.Ld(7, isa.R(0), 0)
	b.Exit()
	k := b.MustBuild()
	sys, sw := dryRunWarp(t, k, []uint64{0x10000})
	cand := &compiler.Candidate{StartPC: 0, EndPC: 5}
	lines, bounded := sys.dryRun(sw, cand, 1)
	if len(lines) != 0 || !bounded {
		t.Fatalf("dryRun = (%#x, %v), want empty bounded", lines, bounded)
	}
	if dest := sys.destStack(sw, cand); dest != -1 {
		t.Errorf("destStack = %d, want -1", dest)
	}

	// A short spin before the access stays under the bound and resolves.
	short := &compiler.Candidate{StartPC: 0, EndPC: 5}
	k.Instrs[2].B = isa.Imm(16) // loop 16 times instead of a million
	lines, bounded = sys.dryRun(sw, short, 1)
	if bounded || len(lines) != 1 || lines[0] != lineOf(sys, 0x10000) {
		t.Fatalf("short spin dryRun = (%#x, %v), want ([%#x], false)",
			lines, bounded, lineOf(sys, 0x10000))
	}
}

// TestDryRunTaintStopsTrace: values loaded from memory are unknowable in a
// side-effect-free walk. An address or branch predicate derived from one
// must end the trace instead of fabricating accesses.
func TestDryRunTaintStopsTrace(t *testing.T) {
	t.Run("tainted address", func(t *testing.T) {
		b := isa.NewBuilder("chase", 1) // r0=head: pointer chase a->*a
		b.Ld(5, isa.R(0), 0)
		b.Ld(6, isa.R(5), 0)
		b.Exit()
		k := b.MustBuild()
		sys, sw := dryRunWarp(t, k, []uint64{0x10000})
		cand := &compiler.Candidate{StartPC: 0, EndPC: 2}
		lines, bounded := sys.dryRun(sw, cand, 8)
		if bounded || len(lines) != 1 || lines[0] != lineOf(sys, 0x10000) {
			t.Fatalf("dryRun = (%#x, %v), want ([%#x], false)",
				lines, bounded, lineOf(sys, 0x10000))
		}
	})
	t.Run("tainted predicate", func(t *testing.T) {
		b := isa.NewBuilder("datadep", 2) // r0=a, r1=b
		b.Label("top")
		b.Ld(5, isa.R(0), 0)
		b.Setp(6, isa.CmpNE, isa.R(5), isa.Imm(0))
		b.BraIf(isa.R(6), "top")
		b.Ld(7, isa.R(1), 0)
		b.Exit()
		k := b.MustBuild()
		sys, sw := dryRunWarp(t, k, []uint64{0x10000, 0x20000})
		cand := &compiler.Candidate{StartPC: 0, EndPC: 4}
		lines, bounded := sys.dryRun(sw, cand, 8)
		if bounded || len(lines) != 1 || lines[0] != lineOf(sys, 0x10000) {
			t.Fatalf("dryRun = (%#x, %v), want ([%#x], false)",
				lines, bounded, lineOf(sys, 0x10000))
		}
	})
	t.Run("taint cleared by recompute", func(t *testing.T) {
		// A register is tainted by a load, then overwritten with a clean
		// value; an address through it must be usable again.
		b := isa.NewBuilder("retaint", 2) // r0=a, r1=b
		b.Ld(5, isa.R(0), 0)
		b.Add(5, isa.R(1), isa.Imm(0)) // r5 clean again
		b.Ld(6, isa.R(5), 0)
		b.Exit()
		k := b.MustBuild()
		sys, sw := dryRunWarp(t, k, []uint64{0x10000, 0x20000})
		cand := &compiler.Candidate{StartPC: 0, EndPC: 3}
		lines, bounded := sys.dryRun(sw, cand, 8)
		want := []uint64{lineOf(sys, 0x10000), lineOf(sys, 0x20000)}
		if bounded || len(lines) != 2 || lines[0] != want[0] || lines[1] != want[1] {
			t.Fatalf("dryRun = (%#x, %v), want (%#x, false)", lines, bounded, want)
		}
	})
}

// TestDryRunWindowDedup: a multi-access window deduplicates lines and stops
// once the window is full.
func TestDryRunWindowDedup(t *testing.T) {
	b := isa.NewBuilder("dedup", 1) // r0=a
	b.Ld(5, isa.R(0), 0)
	b.Ld(6, isa.R(0), 8)   // same line as the first access
	b.Ld(7, isa.R(0), 512) // new line
	b.Ld(8, isa.R(0), 1024)
	b.Exit()
	k := b.MustBuild()
	sys, sw := dryRunWarp(t, k, []uint64{0x10000})
	cand := &compiler.Candidate{StartPC: 0, EndPC: 4}
	lines, bounded := sys.dryRun(sw, cand, 2)
	want := []uint64{lineOf(sys, 0x10000), lineOf(sys, 0x10200)}
	if bounded || len(lines) != 2 || lines[0] != want[0] || lines[1] != want[1] {
		t.Fatalf("dryRun = (%#x, %v), want (%#x, false)", lines, bounded, want)
	}
}
