package sim

import "repro/internal/dram"

// The wheel is the simulator's global timer: a fixed-horizon timer wheel
// whose slots hold typed events. The hot schedulers (offload pipeline,
// L2 routing, vault crossbar retries, warp wakeups) file small value
// structs instead of closures, so the steady-state loop allocates nothing
// per scheduled event; cold paths can still pass an arbitrary callback
// (wevFunc). Delays at or beyond the horizon land in an overflow bucket
// and are re-filed into the wheel once they come within range — a long
// modeled latency (scaled PCIe, future LLM-workload delays) is an input
// condition, not a model bug.
type wheel struct {
	sys      *System
	slots    [][]wheelEvent
	now      int64
	count    int
	overflow []farEvent // due >= now+wheelHorizon; re-filed once in range
}

const wheelHorizon = 1 << 13 // 8192 cycles covers every fixed delay used

// Event kinds. wevFunc runs an arbitrary callback; the others are the
// allocation-free encodings of the hot schedule sites.
const (
	wevFunc          uint8 = iota // fn(now)
	wevReconsider                 // sm.reconsider(sw, now): far-future warp wakeup
	wevLSURetry                   // MSHR-full retry: re-ready sw if still stalled
	wevSendOffload                // offload pipeline done: send job's request packet
	wevFinishOffload              // ideal-mode ack: resume job's requesting warp
	wevRouteLoad                  // L2 miss of `line` leaves the L2 toward memory
	wevRouteStore                 // write-through store txn leaves the L2
	wevVaultTry                   // crossbar delivery: enqueue req into vault (retry on full)
	wevTxnDone                    // t.complete(now): load data / store ack reaches the SM
)

// wheelEvent is one scheduled occurrence. Exactly the fields its kind
// needs are set; the struct is stored by value in the slot slices.
type wheelEvent struct {
	kind  uint8
	fn    func(now int64)
	sm    *SM
	sw    *smWarp
	job   *offloadJob
	t     *txn
	vault *dram.Vault
	req   *dram.Request
	line  uint64
}

type farEvent struct {
	at int64
	ev wheelEvent
}

func newWheel(sys *System) *wheel {
	return &wheel{sys: sys, slots: make([][]wheelEvent, wheelHorizon)}
}

// after schedules fn to run at now+delay (delay >= 1).
func (w *wheel) after(delay int64, fn func(now int64)) {
	w.afterEvent(delay, wheelEvent{kind: wevFunc, fn: fn})
}

// afterEvent schedules ev to run at now+delay (delay >= 1). Delays at or
// beyond the wheel horizon go to the overflow bucket.
func (w *wheel) afterEvent(delay int64, ev wheelEvent) {
	if delay < 1 {
		delay = 1
	}
	w.count++
	if delay >= wheelHorizon {
		w.overflow = append(w.overflow, farEvent{at: w.now + delay, ev: ev})
		return
	}
	i := (w.now + delay) % wheelHorizon
	w.slots[i] = append(w.slots[i], ev)
}

// tick runs events due at cycle `now`. Must be called with monotonically
// increasing now; cycles with no due events may be skipped entirely (the
// event-driven loop jumps them), which is safe because a slot's due cycle
// is unique within the horizon.
func (w *wheel) tick(now int64) {
	w.now = now
	if len(w.overflow) > 0 {
		w.refileOverflow(now)
	}
	i := now % wheelHorizon
	due := w.slots[i]
	if len(due) == 0 {
		return
	}
	w.slots[i] = due[:0]
	w.count -= len(due)
	for k := range due {
		w.sys.runEvent(&due[k], now)
	}
}

// refileOverflow moves far-future events that came within the horizon into
// their wheel slots, preserving insertion order (determinism).
func (w *wheel) refileOverflow(now int64) {
	kept := w.overflow[:0]
	for _, fe := range w.overflow {
		if fe.at-now < wheelHorizon {
			i := fe.at % wheelHorizon
			w.slots[i] = append(w.slots[i], fe.ev)
		} else {
			kept = append(kept, fe)
		}
	}
	w.overflow = kept
}

// pending reports scheduled-but-unfired events (overflow included).
func (w *wheel) pending() int { return w.count }

// nextDue returns the earliest cycle > w.now with a pending event, or -1.
// The scan walks forward from w.now, so its cost is proportional to the
// distance to the next event — the same distance the event-driven loop is
// about to skip.
func (w *wheel) nextDue() int64 {
	if w.count == 0 {
		return -1
	}
	for d := int64(1); d <= wheelHorizon; d++ {
		if len(w.slots[(w.now+d)%wheelHorizon]) > 0 {
			return w.now + d
		}
	}
	// Only far-future (overflow) events remain.
	best := int64(-1)
	for _, fe := range w.overflow {
		if best < 0 || fe.at < best {
			best = fe.at
		}
	}
	return best
}
