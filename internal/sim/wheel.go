package sim

// wheel is a fixed-horizon timer wheel for scheduling callbacks at future
// cycles. All model delays are far below the horizon; exceeding it panics
// (a model bug, not an input condition).
type wheel struct {
	slots [][]func(now int64)
	now   int64
	count int
}

const wheelHorizon = 1 << 13 // 8192 cycles covers every fixed delay used

func newWheel() *wheel {
	return &wheel{slots: make([][]func(int64), wheelHorizon)}
}

// after schedules fn to run at now+delay (delay >= 1).
func (w *wheel) after(delay int64, fn func(now int64)) {
	if delay < 1 {
		delay = 1
	}
	if delay >= wheelHorizon {
		panic("sim: wheel delay exceeds horizon")
	}
	i := (w.now + delay) % wheelHorizon
	w.slots[i] = append(w.slots[i], fn)
	w.count++
}

// tick runs callbacks due at cycle `now`. Must be called once per cycle
// with monotonically increasing now.
func (w *wheel) tick(now int64) {
	w.now = now
	i := now % wheelHorizon
	due := w.slots[i]
	if len(due) == 0 {
		return
	}
	w.slots[i] = nil
	w.count -= len(due)
	for _, fn := range due {
		fn(now)
	}
}

// pending reports scheduled-but-unfired callbacks.
func (w *wheel) pending() int { return w.count }
