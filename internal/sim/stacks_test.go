package sim

import "testing"

// TestSpawnTargetRoundRobinTieBreak: with every logic-layer SM holding the
// same number of free warp slots, spawnTarget must rotate through them
// rather than always picking the lowest index — the scan starts at the
// rotating cursor, so an all-equal tie resolves to each SM in turn.
func TestSpawnTargetRoundRobinTieBreak(t *testing.T) {
	sms := []*SM{{freeSlots: 4}, {freeSlots: 4}, {freeSlots: 4}}
	s := &stackNode{sms: sms}
	idx := func(sm *SM) int {
		for i, c := range sms {
			if c == sm {
				return i
			}
		}
		t.Fatal("spawnTarget returned an SM not in the stack")
		return -1
	}
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, idx(s.spawnTarget()))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("equal-slot tie-break order %v, want %v", got, want)
		}
	}
}

// TestSpawnTargetPrefersFreeSlots: an SM with strictly more free slots wins
// regardless of where the rotation cursor sits, and the rotation resumes
// after the chosen SM, not after the cursor.
func TestSpawnTargetPrefersFreeSlots(t *testing.T) {
	sms := []*SM{{freeSlots: 2}, {freeSlots: 5}, {freeSlots: 2}}
	for start := 0; start < 3; start++ {
		s := &stackNode{sms: sms, nextSM: start}
		if got := s.spawnTarget(); got != sms[1] {
			t.Fatalf("cursor at %d: picked an SM with %d free slots, want the 5-slot one",
				start, got.freeSlots)
		}
		// Rotation advances past the chosen SM: a follow-up all-equal tie
		// starts the scan at index 2, not back at the cursor.
		sms[1].freeSlots = 2
		if got := s.spawnTarget(); got != sms[2] {
			t.Fatalf("cursor at %d: post-pick rotation chose index %d, want 2",
				start, idxOf(sms, got))
		}
		sms[1].freeSlots = 5
	}
}

func idxOf(sms []*SM, sm *SM) int {
	for i, c := range sms {
		if c == sm {
			return i
		}
	}
	return -1
}
