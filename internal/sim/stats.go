package sim

import (
	"fmt"

	"repro/internal/compiler"
)

// Stats aggregates everything the paper's figures report.
type Stats struct {
	Cycles int64
	// ThreadInstrs counts per-lane instructions (warp-instruction ×
	// active lanes), the numerator of IPC.
	ThreadInstrs uint64
	// WarpInstrs counts warp-instructions issued anywhere.
	WarpInstrs uint64
	// StackThreadInstrs counts the subset executed on memory-stack SMs.
	StackThreadInstrs uint64

	// --- Off-chip traffic (bytes) ---
	GPUTXBytes    uint64 // GPU -> memory channels
	GPURXBytes    uint64 // memory -> GPU channels
	CrossBytes    uint64 // memory <-> memory channels
	PCIeBytes     uint64 // learning phase (CPU memory)
	InternalBytes uint64 // vault TSV traffic (not off-chip)

	// --- Offloading ---
	CandidateInstances  uint64 // candidate region entries seen on main SMs
	OffloadsSent        uint64
	OffloadsAcked       uint64 // offload acks queued by stack SMs
	InFlightOffloads    int    // offloads still pending at exit (0 at true quiescence)
	OffloadsSkippedBusy uint64 // channel-busy gate
	OffloadsSkippedFull uint64 // pending-per-stack gate
	OffloadsSkippedCond uint64 // conditional threshold not met
	OffloadsSkippedALU  uint64 // ALU-ratio gate (extension)
	// OffloadsSkippedNoDest counts entries whose destination-stack dry run
	// failed (no active lanes, or the scalar walk left the region before
	// the first memory access — §4.2 footnote 4); the region runs inline.
	OffloadsSkippedNoDest uint64
	// OffloadsSkippedDestBound counts dry runs whose step bound expired
	// while still inside the region — previously folded indistinguishably
	// into NoDest, now separate so long candidates are diagnosable.
	OffloadsSkippedDestBound uint64
	// OffloadsSkippedSplit counts instances the co-location-aware policy
	// (coda) kept on the GPU because their data splits across stacks.
	OffloadsSkippedSplit uint64
	// OffloadsSkippedVaultFull counts instances gated by the near-bank
	// policy's (mpu) per-vault slot limit.
	OffloadsSkippedVaultFull uint64
	// LearnEntries counts candidate entries consumed by the tmap learning
	// phase (executed inline while the mapping analyzer observes; no
	// offload decision is made for them).
	LearnEntries         uint64
	CoherenceInvalidates uint64 // dirty lines invalidated at the GPU
	StoreDrainStalls     uint64

	// PCStats attributes every offload decision (sent, each skip reason,
	// learning entries, observed trip counts) to the candidate's start PC —
	// the profile compiler.Refine consumes. Conservation invariant at
	// quiescence: CandidateInstances == OffloadsSent + OffloadsSkipped() +
	// LearnEntries whenever offloading is enabled.
	PCStats compiler.GateProfile

	// --- Adaptive refinement (ApplyGateFeedback) ---
	RefineDemoted  int // candidates demoted from the metadata tables
	RefineRetagged int // candidates whose channel tag was re-derived

	// --- Caches & DRAM ---
	L1Hits, L1Misses           uint64
	L2Hits, L2Misses           uint64
	StackL1Hits, StackL1Misses uint64
	DRAMActivations            uint64
	DRAMRowHits                uint64
	DRAMReads, DRAMWrites      uint64

	// --- Learning phase (tmap) ---
	LearnCycles    int64
	LearnedBit     int
	CopiedBytes    uint64
	LearnInstances int
	// MappingSource says how the active consecutive-bit mapping came to be:
	// MappingLearned (a learning phase picked it this run), MappingStored
	// (pre-installed from the persistent registry before cycle 0),
	// MappingPreset (oracle/fixed-bit, applied for free), or "" (no bit
	// mapping — baseline interleave throughout).
	MappingSource string
	// MappedRanges names the allocation ranges carrying the bit mapping —
	// the data-structure identity a stored mapping re-installs later.
	MappedRanges []string
	// LearnPCIeSaved is the learning-phase PCIe byte volume a stored-mapping
	// install avoided (the fresh run's PCIeBytes); 0 unless MappingStored.
	LearnPCIeSaved uint64
}

// MappingSource values (Stats.MappingSource).
const (
	MappingLearned = "learned" // this run's learning phase picked the bit
	MappingStored  = "stored"  // pre-installed from the persistent registry
	MappingPreset  = "preset"  // oracle/fixed-bit mapping, applied for free
)

// IPC returns thread-instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ThreadInstrs) / float64(s.Cycles)
}

// OffloadsSkipped sums the gate counters over every skip reason.
func (s *Stats) OffloadsSkipped() uint64 {
	return s.OffloadsSkippedBusy + s.OffloadsSkippedFull + s.OffloadsSkippedCond +
		s.OffloadsSkippedALU + s.OffloadsSkippedNoDest + s.OffloadsSkippedDestBound +
		s.OffloadsSkippedSplit + s.OffloadsSkippedVaultFull
}

// OffChipBytes sums all off-chip memory traffic (the Fig. 9 metric:
// GPU↔memory plus memory↔memory channels).
func (s *Stats) OffChipBytes() uint64 {
	return s.GPUTXBytes + s.GPURXBytes + s.CrossBytes
}

// DrainError reports a drain-correctness violation at what should be
// quiescence: offloads still in flight at exit, or a sent/ack mismatch. A
// healthy run returns nil — the run loop only terminates once every pending
// offload has drained, so a non-nil result means the quiescence detector and
// the offload controller disagree about outstanding work.
func (s *Stats) DrainError() error {
	if s.InFlightOffloads != 0 {
		return fmt.Errorf("sim: %d offloads still in flight at exit (sent %d, acked %d)",
			s.InFlightOffloads, s.OffloadsSent, s.OffloadsAcked)
	}
	if s.OffloadsAcked != s.OffloadsSent {
		return fmt.Errorf("sim: offload drain mismatch at exit: %d sent, %d acked",
			s.OffloadsSent, s.OffloadsAcked)
	}
	return nil
}

// OffloadedInstrFraction returns the share of thread instructions executed
// on memory-stack SMs (the §6.1 46.4%/15.7% statistic).
func (s *Stats) OffloadedInstrFraction() float64 {
	if s.ThreadInstrs == 0 {
		return 0
	}
	return float64(s.StackThreadInstrs) / float64(s.ThreadInstrs)
}
