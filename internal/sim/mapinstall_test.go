package sim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/mem"
)

// cloneEnvAlloc rebuilds a pristine allocation table for env (no learning
// flags), the way runSim does.
func cloneEnvAlloc(env *workloadEnv) *mem.AllocTable {
	alloc := mem.NewAllocTable()
	for _, r := range env.alloc.Ranges {
		alloc.Alloc(r.Name, r.Size)
	}
	return alloc
}

// TestStoredMappingMatchesPresetRun is the stored-mapping property test: a
// run that pre-installs a previously learned mapping must behave exactly
// like the free preset path with the same bit and ranges — byte-identical
// Stats except for the fields that define the stored path itself (the
// one-time copy charge and the provenance/savings bookkeeping) — and must
// generate zero learning-phase PCIe traffic.
func TestStoredMappingMatchesPresetRun(t *testing.T) {
	env := streamEnv(t, 16, 16)
	want := refMem(t, env)

	fresh := runSim(t, DefaultConfig(), env)
	fs := fresh.Stats()
	if fs.LearnedBit < 0 || len(fs.MappedRanges) == 0 {
		t.Fatalf("fresh run learned nothing (bit %d, ranges %v)", fs.LearnedBit, fs.MappedRanges)
	}
	if fs.MappingSource != MappingLearned {
		t.Fatalf("fresh run MappingSource = %q, want %q", fs.MappingSource, MappingLearned)
	}
	if fs.PCIeBytes == 0 {
		t.Fatal("fresh learning run should pay PCIe traffic")
	}

	// Stored-mapping run: install before cycle 0, never learn.
	cfg := DefaultConfig()
	cfg.MaxCycles = 50_000_000
	sysS := New(cfg, env.mem.Clone(), cloneEnvAlloc(env))
	if err := sysS.InstallMapping(fs.LearnedBit, fs.MappedRanges, fs.PCIeBytes); err != nil {
		t.Fatal(err)
	}
	if err := sysS.Run(env.launches); err != nil {
		t.Fatal(err)
	}
	if ok, addr := mem.Equal(want, sysS.mem); !ok {
		t.Fatalf("stored-mapping run diverged from reference at %#x", addr)
	}
	ss := sysS.Stats()
	if ss.PCIeBytes != 0 {
		t.Errorf("stored-mapping run paid %d learning-phase PCIe bytes, want 0", ss.PCIeBytes)
	}
	if ss.MappingSource != MappingStored {
		t.Errorf("MappingSource = %q, want %q", ss.MappingSource, MappingStored)
	}
	if ss.LearnPCIeSaved != fs.PCIeBytes {
		t.Errorf("LearnPCIeSaved = %d, want the fresh run's PCIe bytes %d", ss.LearnPCIeSaved, fs.PCIeBytes)
	}
	if ss.CopiedBytes != fs.CopiedBytes {
		t.Errorf("stored install charged %d copied bytes, fresh run charged %d",
			ss.CopiedBytes, fs.CopiedBytes)
	}
	if ss.LearnedBit != fs.LearnedBit {
		t.Errorf("stored run bit %d != learned bit %d", ss.LearnedBit, fs.LearnedBit)
	}

	// Preset comparator: the same bit and ranges via the free oracle path.
	// Post-install execution must be cycle-for-cycle identical, so the two
	// Stats agree on every field that is not stored-path bookkeeping.
	cfgP := DefaultConfig()
	cfgP.Mapping = MapOracle
	cfgP.MaxCycles = 50_000_000
	allocP := cloneEnvAlloc(env)
	for _, name := range fs.MappedRanges {
		r, err := allocP.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		r.CandidateTouched = true
	}
	sysP := New(cfgP, env.mem.Clone(), allocP)
	sysP.ApplyMappingBit(fs.LearnedBit)
	if err := sysP.Run(env.launches); err != nil {
		t.Fatal(err)
	}
	ps := sysP.Stats()

	norm := func(st Stats) Stats {
		st.CopiedBytes = 0
		st.MappingSource = ""
		st.LearnPCIeSaved = 0
		st.MappedRanges = nil
		return st
	}
	if a, b := norm(*ss), norm(*ps); !reflect.DeepEqual(&a, &b) {
		t.Errorf("stored-mapping run diverges from the preset run:\nstored: %+v\npreset: %+v", a, b)
	}
}

// TestInstallMappingRejections: a stored mapping that no longer matches the
// system must be rejected outright — a partial or wrong install would place
// data incorrectly, which is strictly worse than re-learning.
func TestInstallMappingRejections(t *testing.T) {
	env := streamEnv(t, 4, 4)
	mk := func(cfg Config) *System {
		return New(cfg, env.mem.Clone(), cloneEnvAlloc(env))
	}
	if err := mk(DefaultConfig()).InstallMapping(9, []string{"a", "ghost"}, 0); err == nil ||
		!strings.Contains(err.Error(), "ghost") {
		t.Errorf("unknown range name: got %v, want an error naming the range", err)
	}
	if err := mk(DefaultConfig()).InstallMapping(99, []string{"a"}, 0); err == nil {
		t.Error("out-of-range bit should be rejected")
	}
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline
	if err := mk(cfg).InstallMapping(9, []string{"a"}, 0); err == nil {
		t.Error("install on a non-transparent-mapping system should be rejected")
	}
	// A rejected install must leave the system untouched: learning still
	// pending, no bit active, nothing charged.
	sys := mk(DefaultConfig())
	if err := sys.InstallMapping(9, []string{"a", "ghost"}, 7); err == nil {
		t.Fatal("want error")
	}
	if !sys.learning || sys.offloadBit != -1 || sys.stats.CopiedBytes != 0 {
		t.Errorf("failed install mutated the system: learning=%v bit=%d copied=%d",
			sys.learning, sys.offloadBit, sys.stats.CopiedBytes)
	}
}

// TestEndLearningAlreadyInForceSkipsCopy pins the no-op-copy guard: when
// the learning phase converges on a mapping that is already installed for
// every touched range, no data moves — so endLearning must charge zero
// copied bytes, invalidate nothing, and skip the 1000-cycle freeze.
func TestEndLearningAlreadyInForceSkipsCopy(t *testing.T) {
	env := streamEnv(t, 4, 4)

	observe := func(sys *System) {
		// Feed the analyzer a few instances out of range "a" so BestBit()
		// has data and the range is CandidateTouched.
		a, err := sys.alloc.Lookup("a")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 16; i++ {
			base := a.Base + uint64(i*1024)
			sys.analyzer.ObserveInstance([]uint64{base, base + 128, base + 256})
			sys.learnSeen++
		}
	}

	// Control: the normal path (no mapping in force) copies and freezes.
	ctl := New(DefaultConfig(), env.mem.Clone(), cloneEnvAlloc(env))
	observe(ctl)
	ctl.now = 500
	ctl.endLearning()
	if ctl.stats.CopiedBytes == 0 || ctl.frozenUntil != 1500 {
		t.Fatalf("control endLearning: copied=%d frozenUntil=%d, want a real copy + freeze",
			ctl.stats.CopiedBytes, ctl.frozenUntil)
	}

	// Same observations, but the chosen mapping is already in force.
	sys := New(DefaultConfig(), env.mem.Clone(), cloneEnvAlloc(env))
	observe(sys)
	bit := sys.analyzer.BestBit()
	sys.offloadBit = bit
	for i := range sys.alloc.Ranges {
		if sys.alloc.Ranges[i].CandidateTouched {
			sys.alloc.Ranges[i].OffloadMapped = true
		}
	}
	sys.now = 500
	sys.endLearning()
	st := sys.Stats()
	if st.CopiedBytes != 0 {
		t.Errorf("CopiedBytes = %d, want 0 (mapping already in force, no data moved)", st.CopiedBytes)
	}
	if sys.frozenUntil != 0 {
		t.Errorf("frozenUntil = %d, want 0 (no copy, no interrupt/drain pause)", sys.frozenUntil)
	}
	if st.LearnedBit != bit {
		t.Errorf("LearnedBit = %d, want %d", st.LearnedBit, bit)
	}
	if st.LearnInstances != 16 || st.LearnCycles != 500 {
		t.Errorf("learning accounting: instances=%d cycles=%d, want 16/500",
			st.LearnInstances, st.LearnCycles)
	}
}

// TestMaxCyclesTruncationClosesLearning is the launch-error-path regression
// test: a run truncated by MaxCycles mid-learning must still account for
// the open learning phase (LearnInstances/LearnCycles), not report zeros
// while the learn.instances_seen series recorded real observations.
func TestMaxCyclesTruncationClosesLearning(t *testing.T) {
	env := streamEnv(t, 16, 16)
	natural := runSim(t, DefaultConfig(), env)
	learnCycles := natural.Stats().LearnCycles
	if learnCycles == 0 {
		t.Fatal("natural run had no learning phase")
	}

	// Make the goal unreachable and the watchdog silent, then truncate at
	// the cycle where the natural run had already observed its full goal:
	// the learning phase is provably open and non-empty at the cut.
	cfg := DefaultConfig()
	cfg.LearnMin = 1 << 30
	cfg.LearnDeadline = 0
	cfg.MaxCycles = learnCycles
	sys := New(cfg, env.mem.Clone(), cloneEnvAlloc(env))
	err := sys.Run(env.launches)
	if err == nil {
		t.Fatal("run should be truncated by MaxCycles")
	}
	st := sys.Stats()
	if st.LearnInstances == 0 {
		t.Error("truncated run reports LearnInstances=0 despite an open learning phase")
	}
	if st.LearnCycles == 0 {
		t.Error("truncated run reports LearnCycles=0 despite an open learning phase")
	}
	if st.LearnCycles != st.Cycles {
		t.Errorf("learning closed at cycle %d, want the truncation cycle %d", st.LearnCycles, st.Cycles)
	}
}

// TestLearnDeadlineExactInBothLoopModes pins the watchdog's event-loop
// semantics: the deadline is in the wake-horizon set, so the event-driven
// loop may never jump sys.now past it — learning must close at exactly
// LearnDeadline in both loop modes when the instance goal is unreachable.
func TestLearnDeadlineExactInBothLoopModes(t *testing.T) {
	env := streamEnv(t, 8, 8)
	const deadline = 3000
	for _, perCycle := range []bool{false, true} {
		mode := map[bool]string{true: "percycle", false: "event"}[perCycle]
		cfg := DefaultConfig()
		cfg.LearnMin = 1 << 30 // unreachable goal: only the watchdog ends learning
		cfg.LearnDeadline = deadline
		sys := runSimMode(t, cfg, env, perCycle)
		if got := sys.Stats().LearnCycles; got != deadline {
			t.Errorf("%s: learning closed at cycle %d, want exactly the deadline %d",
				mode, got, deadline)
		}
	}
}
