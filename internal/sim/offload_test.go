package sim

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
)

// shortLoopEnv builds a workload whose loop runs below the conditional
// candidate's break-even trip count, so dynamic control must refuse to
// offload it (§3.1.3 / §4.2 step 1).
func shortLoopEnv(t *testing.T, trips int) *workloadEnv {
	t.Helper()
	b := isa.NewBuilder("short", 5) // r0=a, r1=b, r2=out, r3=trips, r4=T
	b.Mov(5, isa.Sp(isa.SpGtid))
	b.MovI(6, 0)
	b.Mov(7, isa.R(5))
	b.MovF(8, 0)
	b.Label("top")
	b.Shl(9, isa.R(7), isa.Imm(2))
	b.Add(10, isa.R(0), isa.R(9))
	b.Ld(11, isa.R(10), 0)
	b.Add(12, isa.R(1), isa.R(9))
	b.Ld(13, isa.R(12), 0)
	b.FMA(8, isa.R(11), isa.R(13), isa.R(8))
	b.Add(7, isa.R(7), isa.R(4))
	b.Add(6, isa.R(6), isa.Imm(1))
	b.Setp(14, isa.CmpLT, isa.R(6), isa.R(3))
	b.BraIf(isa.R(14), "top")
	b.Shl(15, isa.R(5), isa.Imm(2))
	b.Add(15, isa.R(2), isa.R(15))
	b.St(isa.R(15), 0, isa.R(8))
	b.Exit()
	k := b.MustBuild()

	env := &workloadEnv{mem: mem.NewFlat(), alloc: mem.NewAllocTable()}
	threads := 64 * 128
	n := threads * trips
	a := env.alloc.Alloc("a", uint64(4*n))
	bb := env.alloc.Alloc("b", uint64(4*n))
	out := env.alloc.Alloc("out", uint64(4*threads))
	env.launches = []exec.Launch{{
		Kernel: k, Grid: 64, Block: 128,
		Params: []uint64{a, bb, out, uint64(trips), uint64(threads)},
	}}
	return env
}

// TestConditionalGateBlocksShortLoops: with a trip count below the
// compiler's threshold, controlled offloading must keep everything on the
// main GPU and count the skips.
func TestConditionalGateBlocksShortLoops(t *testing.T) {
	env := shortLoopEnv(t, 2) // threshold for this loop is > 2
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline
	sys := runSim(t, cfg, env)
	st := sys.Stats()
	if st.OffloadsSent != 0 {
		t.Errorf("short loop offloaded %d times; conditional gate failed", st.OffloadsSent)
	}
	if st.OffloadsSkippedCond == 0 {
		t.Error("conditional skips not counted")
	}
}

// TestConditionalGateAdmitsLongLoops: the same kernel with a long trip
// count must offload.
func TestConditionalGateAdmitsLongLoops(t *testing.T) {
	env := shortLoopEnv(t, 64)
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline
	sys := runSim(t, cfg, env)
	if sys.Stats().OffloadsSent == 0 {
		t.Error("long loop never offloaded")
	}
}

// TestPendingCapRespectedUnderControl: pending offloads per stack must
// never exceed the stack SM's warp capacity with controlled offloading.
func TestPendingCapRespectedUnderControl(t *testing.T) {
	env := shortLoopEnv(t, 64)
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline
	cfg.MaxCycles = 50_000_000

	m := env.mem.Clone()
	alloc := mem.NewAllocTable()
	for _, r := range env.alloc.Ranges {
		alloc.Alloc(r.Name, r.Size)
	}
	sys := New(cfg, m, alloc)
	cap := cfg.StackSMs * cfg.StackWarps()
	maxSeen := 0
	err := sys.RunWithTrace(env.launches, func(now int64) {
		for _, p := range sys.pendingOffloads {
			if p > maxSeen {
				maxSeen = p
			}
			if p > cap {
				t.Fatalf("pending offloads %d exceeds capacity %d at cycle %d", p, cap, now)
			}
			if p < 0 {
				t.Fatalf("pending offloads negative at cycle %d", now)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxSeen == 0 {
		t.Error("no offloads observed")
	}
}

// TestWarpCapacityMultiplierAdmitsMore: 4x stack warp capacity must admit
// at least as many offloads as 1x on the same workload.
func TestWarpCapacityMultiplierAdmitsMore(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-system runs")
	}
	env := shortLoopEnv(t, 64)
	one := DefaultConfig()
	one.Mapping = MapBaseline
	s1 := runSim(t, one, env)
	four := DefaultConfig()
	four.Mapping = MapBaseline
	four.StackWarpMult = 4
	s4 := runSim(t, four, env)
	if s4.Stats().OffloadsSent < s1.Stats().OffloadsSent {
		t.Errorf("4x capacity admitted fewer offloads (%d) than 1x (%d)",
			s4.Stats().OffloadsSent, s1.Stats().OffloadsSent)
	}
}

// TestDestStackMatchesFirstAccess: the scalar dry run must pick the stack
// of the candidate's first memory access.
func TestDestStackMatchesFirstAccess(t *testing.T) {
	env := shortLoopEnv(t, 64)
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline
	m := env.mem.Clone()
	alloc := mem.NewAllocTable()
	for _, r := range env.alloc.Ranges {
		alloc.Alloc(r.Name, r.Size)
	}
	sys := New(cfg, m, alloc)
	md, err := sys.metadata(env.launches[0].Kernel)
	if err != nil {
		t.Fatal(err)
	}
	var cand = md.Candidates[0]
	info := md.Info
	// Build a warp positioned at the candidate entry.
	w := exec.NewWarp(env.launches[0].Kernel, info, exec.WarpInfo{
		CtaID: 3, WarpInCTA: 1, NTid: 128, NCtaid: 64,
	}, m, nil, env.launches[0].Params)
	for w.PC() != cand.StartPC {
		w.Step()
	}
	sw := &smWarp{w: w}
	dest := sys.destStack(sw, cand)
	if dest < 0 || dest >= cfg.Stacks {
		t.Fatalf("destStack = %d", dest)
	}
	// The first access of the region is the load of a[idx]; compute it.
	lane := w.LeaderLane()
	idx := w.Regs[7][lane]
	addr := (env.launches[0].Params[0] + 4*idx) &^ uint64(cfg.LineBytes-1)
	if want := sys.stackOf(addr); dest != want {
		t.Errorf("destStack = %d, want %d (stack of first access %#x)", dest, want, addr)
	}
}
