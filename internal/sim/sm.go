package sim

import (
	"math/bits"

	"repro/internal/cache"
	"repro/internal/compiler"
	"repro/internal/exec"
	"repro/internal/isa"
)

// memPort is where an SM's LSU submits line transactions: the GPU's shared
// L2 for main SMs, the stack's crossbar router for logic-layer SMs.
type memPort interface {
	accept(now int64, t *txn) bool
}

// SM models one streaming multiprocessor: warp slots, a greedy-then-oldest
// scheduler issuing one warp-instruction per cycle, a stall-on-use
// scoreboard at register granularity, a coalescing LSU with MSHRs, and a
// write-through L1. The same structure serves main-GPU SMs and logic-layer
// (memory stack) SMs; the latter receive offload jobs instead of CTAs.
type SM struct {
	id      int
	isStack bool
	stackID int
	sys     *System
	cfg     *Config
	l1      *cache.Cache
	port    memPort

	warps []*smWarp // fixed slots (nil = free)
	ready bitset
	cur   int // GTO: last issued slot

	lsu  []*txn
	mshr map[uint64][]loadWaiter

	ctas   []*ctaCtx // active CTAs (main SMs)
	spawnQ []*offloadJob

	freeSlots  int
	issueWidth int

	// evRing is a per-SM timer ring for short fixed delays (ALU pipeline
	// occupancy, L1-hit load returns). It avoids per-instruction closure
	// allocation on the global wheel; slot slices are reused. ringCount
	// tracks unfired entries; ringMask mirrors slot occupancy (bit i set
	// iff evRing[i] is non-empty — possible because ringSlots == 64), so
	// the event-driven loop finds the next due slot with a rotate and a
	// trailing-zero count instead of scanning the ring.
	evRing    [ringSlots][]smEvent
	ringCount int
	ringMask  uint64
}

// ringSlots must exceed every latency scheduled on the ring.
const ringSlots = 64

// smEvent is a ring entry: reg >= 0 clears a pending register; reg < 0
// reconsiders the warp's readiness.
type smEvent struct {
	sw  *smWarp
	reg int8
}

type loadWaiter struct {
	sw  *smWarp
	reg isa.Reg
}

// smWarp is the scheduling wrapper around an architectural warp.
type smWarp struct {
	sm   *SM
	slot int
	w    *exec.Warp
	cta  *ctaCtx
	md   *compiler.Metadata

	state         wstate
	pendingRegs   uint64
	regCount      [isa.MaxRegs]uint16
	pendingStores int
	notReadyUntil int64

	// Region bookkeeping on main SMs: the candidate currently being
	// executed inline (suppresses re-deciding at the loop header), and
	// the pending offload awaiting store drain.
	regionActive *compiler.Candidate
	drainCand    *compiler.Candidate
	drainDest    int
	drainVault   int

	// Learning-phase collection.
	collect *collectState

	// Stack-SM side: the offload job this warp serves, and whether its
	// spawn consumed a warp slot (ideal-mode oversubscription spawns
	// without one; its retirement must not mint a free slot).
	job      *offloadJob
	tookSlot bool
}

type ctaCtx struct {
	id          int
	lc          *launchCtx
	shared      []uint32
	activeWarps int
	atBarrier   int
	warps       []*smWarp
}

type collectState struct {
	cand  *compiler.Candidate
	addrs []uint64     // lane addresses, first = home-defining
	seq   []instAccess // leader (pc, addr) stream for Fig. 5
}

type instAccess struct {
	pc   int
	addr uint64
}

func newSM(sys *System, id int, isStack bool, stackID int, warpSlots int) *SM {
	c := sys.cfg
	width := c.IssueWidth
	if isStack {
		width = c.StackIssueWidth
	}
	if width < 1 {
		width = 1
	}
	return &SM{
		id: id, isStack: isStack, stackID: stackID, sys: sys, cfg: &sys.cfg,
		l1:         cache.New(c.L1Bytes, c.L1Ways, c.LineBytes),
		warps:      make([]*smWarp, warpSlots),
		ready:      newBitset(maxInt(warpSlots, 64)),
		mshr:       make(map[uint64][]loadWaiter),
		freeSlots:  warpSlots,
		issueWidth: width,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (sm *SM) setReady(sw *smWarp) {
	sw.state = wsReady
	sm.ready.set(sw.slot)
}

func (sm *SM) unready(sw *smWarp, st wstate) {
	sw.state = st
	sm.ready.clear(sw.slot)
}

// reconsider re-evaluates whether a waiting warp can issue (called when a
// register clears, a store acks, or a scheduled wakeup fires). Idempotent;
// duplicate wakeups are harmless.
func (sm *SM) reconsider(sw *smWarp, now int64) {
	if sw.state != wsWaitDep {
		return
	}
	if now < sw.notReadyUntil {
		d := sw.notReadyUntil - now
		if d < ringSlots {
			sm.ringAfter(d, now, smEvent{sw: sw, reg: -1})
		} else {
			sm.sys.wheel.afterEvent(d, wheelEvent{kind: wevReconsider, sm: sm, sw: sw})
		}
		return
	}
	if !sw.w.Done() {
		in := sw.w.NextInstr()
		if (in.SrcRegs()|in.DstRegs())&sw.pendingRegs != 0 {
			return // a later register clear will call us again
		}
	}
	sm.setReady(sw)
}

// blockOnNext parks the warp until the next instruction's registers are
// available and the pipeline latency has elapsed.
func (sm *SM) blockOnNext(sw *smWarp, lat int64, now int64) {
	sw.notReadyUntil = now + lat
	sm.unready(sw, wsWaitDep)
	sm.ringAfter(lat, now, smEvent{sw: sw, reg: -1})
}

// ringAfter schedules an event on the per-SM timer ring (lat < ringSlots).
func (sm *SM) ringAfter(lat, now int64, ev smEvent) {
	if lat >= ringSlots {
		lat = ringSlots - 1
	}
	if lat < 1 {
		lat = 1
	}
	i := (now + lat) % ringSlots
	sm.evRing[i] = append(sm.evRing[i], ev)
	sm.ringCount++
	sm.ringMask |= 1 << uint(i)
}

// ringTick fires due ring events.
func (sm *SM) ringTick(now int64) {
	i := now % ringSlots
	due := sm.evRing[i]
	if len(due) == 0 {
		return
	}
	sm.evRing[i] = due[:0]
	sm.ringCount -= len(due)
	sm.ringMask &^= 1 << uint(i)
	for _, ev := range due {
		if ev.reg >= 0 {
			sm.regClear(ev.sw, isa.Reg(ev.reg), now)
		} else {
			sm.reconsider(ev.sw, now)
		}
	}
}

// regClear is the load-return event for one line transaction feeding reg.
func (sm *SM) regClear(sw *smWarp, reg isa.Reg, now int64) {
	if sw.regCount[reg] > 0 {
		sw.regCount[reg]--
	}
	if sw.regCount[reg] == 0 {
		sw.pendingRegs &^= 1 << reg
		sm.reconsider(sw, now)
	}
}

// storeAck is the write-through acknowledgment event.
func (sm *SM) storeAck(sw *smWarp, now int64) {
	sw.pendingStores--
	if sw.pendingStores > 0 {
		return
	}
	switch sw.state {
	case wsWaitDrain:
		sm.drainComplete(sw, now)
	}
}

// drainComplete fires when a warp waiting on store drain has zero pending
// stores: barrier entry, offload launch, retirement, or offload-ack send.
func (sm *SM) drainComplete(sw *smWarp, now int64) {
	switch {
	case sw.w == nil:
		return
	case sw.job != nil && sw.w.Done():
		sm.sys.sendOffloadAck(sw, now)
	case sw.w.Done():
		sm.retire(sw, now)
	case sw.drainCand != nil:
		cand := sw.drainCand
		sw.drainCand = nil
		sm.sys.launchOffload(sm, sw, cand, sw.drainDest, sw.drainVault, now)
	default:
		// Barrier entry waited on drain; re-issue takes the Bar path.
		sm.setReady(sw)
	}
}

func (sm *SM) retire(sw *smWarp, now int64) {
	sm.unready(sw, wsRetired)
	sm.warps[sw.slot] = nil
	sm.freeSlots++
	if sw.job != nil {
		return // stack warps have no CTA
	}
	cta := sw.cta
	cta.activeWarps--
	sm.checkBarrier(cta, now)
	if cta.activeWarps == 0 {
		sm.releaseCTA(cta)
	}
}

func (sm *SM) releaseCTA(done *ctaCtx) {
	for i, c := range sm.ctas {
		if c == done {
			sm.ctas = append(sm.ctas[:i], sm.ctas[i+1:]...)
			break
		}
	}
	done.lc.doneCTAs++
}

func (sm *SM) enterBarrier(sw *smWarp, now int64) {
	sm.unready(sw, wsAtBarrier)
	sw.cta.atBarrier++
	sm.checkBarrier(sw.cta, now)
}

func (sm *SM) checkBarrier(cta *ctaCtx, now int64) {
	if cta.atBarrier == 0 || cta.atBarrier < cta.activeWarps {
		return
	}
	cta.atBarrier = 0
	for _, sw := range cta.warps {
		if sw.state == wsAtBarrier {
			sw.state = wsWaitDep
			sm.reconsider(sw, now)
		}
	}
}

// dispatchCTAs pulls at most one waiting CTA onto this SM; the system's
// dispatch loop sweeps SMs round-robin so CTAs spread across the GPU the
// way real hardware schedulers balance them.
func (sm *SM) dispatchCTAs(lc *launchCtx) {
	wpc := lc.l.WarpsPerCTA()
	if len(sm.ctas) < sm.cfg.MaxCTAsPerSM && sm.freeSlots >= wpc && lc.nextCTA < lc.totalCTAs {
		ctaID := lc.nextCTA
		lc.nextCTA++
		cta := &ctaCtx{
			id: ctaID, lc: lc,
			shared:      make([]uint32, (lc.l.Kernel.SharedBytes+3)/4),
			activeWarps: wpc,
		}
		for wi := 0; wi < wpc; wi++ {
			slot := sm.findFreeSlot()
			w := exec.NewWarp(lc.l.Kernel, lc.md.Info, exec.WarpInfo{
				CtaID: ctaID, WarpInCTA: wi, NTid: lc.l.Block, NCtaid: lc.l.Grid,
			}, sm.sys.mem, cta.shared, lc.l.Params)
			sw := &smWarp{sm: sm, slot: slot, w: w, cta: cta, md: lc.md}
			cta.warps = append(cta.warps, sw)
			sm.warps[slot] = sw
			sm.freeSlots--
			sm.setReady(sw)
		}
		sm.ctas = append(sm.ctas, cta)
	}
}

func (sm *SM) findFreeSlot() int {
	for i, w := range sm.warps {
		if w == nil {
			return i
		}
	}
	// Ideal offloading may oversubscribe stack SMs: grow.
	sm.warps = append(sm.warps, nil)
	if len(sm.warps) > len(sm.ready.w)*64 {
		sm.ready.w = append(sm.ready.w, 0)
	}
	return len(sm.warps) - 1
}

// pickWarp implements greedy-then-oldest.
func (sm *SM) pickWarp() *smWarp {
	if sm.cur < len(sm.warps) && sm.ready.get(sm.cur) {
		return sm.warps[sm.cur]
	}
	i := sm.ready.first()
	if i < 0 {
		return nil
	}
	sm.cur = i
	return sm.warps[i]
}

// tick advances the SM by one cycle.
func (sm *SM) tick(now int64) {
	sm.ringTick(now)
	// 1. Drain LSU transactions into the memory system.
	for i := 0; i < sm.issueWidth && len(sm.lsu) > 0; i++ {
		if !sm.port.accept(now, sm.lsu[0]) {
			break
		}
		n := copy(sm.lsu, sm.lsu[1:])
		sm.lsu = sm.lsu[:n]
		sm.retryLSUStalls(now)
	}
	// 2. Stack SMs spawn queued offload jobs into free warp slots.
	if sm.isStack {
		sm.trySpawn(now)
	}
	// 3. Issue warp-instructions.
	for i := 0; i < sm.issueWidth; i++ {
		sw := sm.pickWarp()
		if sw == nil {
			break
		}
		sm.issue(sw, now)
	}
}

// retryLSUStalls re-readies warps that stalled on a full LSU queue.
func (sm *SM) retryLSUStalls(now int64) {
	if len(sm.lsu) >= sm.cfg.LSUQueue {
		return
	}
	for _, sw := range sm.warps {
		if sw != nil && sw.state == wsWaitLSU {
			sm.setReady(sw)
		}
	}
}

// coalesceMax bounds the transactions one warp memory instruction can
// produce (32 lanes, distinct lines).
const coalesceMax = isa.WarpSize

// issue executes one instruction of sw and charges its timing.
func (sm *SM) issue(sw *smWarp, now int64) {
	w := sw.w

	// Retirement path: the warp finished on a previous step.
	if w.Done() {
		if sw.pendingStores > 0 {
			sm.unready(sw, wsWaitDrain)
			return
		}
		if sw.job != nil {
			sm.sys.sendOffloadAck(sw, now)
		} else {
			sm.retire(sw, now)
		}
		return
	}

	pc := w.PC()

	// Region tracking on main SMs: leaving an active region re-arms the
	// offload decision and finalizes learning collection.
	if sw.regionActive != nil && (pc < sw.regionActive.StartPC || pc >= sw.regionActive.EndPC) {
		if sw.collect != nil {
			sm.sys.finishCollection(sw)
		}
		sw.regionActive = nil
	}

	// Offload / learning hook at candidate region entries.
	if !sm.isStack && sw.regionActive == nil && sw.md != nil {
		if cand := sw.md.AtPC(pc); cand != nil {
			sw.regionActive = cand
			if sm.sys.handleCandidateEntry(sm, sw, cand, now) {
				return // warp state changed (offloading)
			}
		}
	}

	in := w.NextInstr()

	switch in.Op {
	case isa.OpBar:
		if sw.pendingStores > 0 {
			sm.unready(sw, wsWaitDrain)
			sm.sys.stats.StoreDrainStalls++
			if ob := sm.sys.ob; ob != nil {
				ob.drainStalls.Inc()
			}
			return
		}
		res := w.Step()
		sm.countInstr(res)
		sm.enterBarrier(sw, now)
		return

	case isa.OpLdGlobal, isa.OpStGlobal, isa.OpAtomAdd:
		// The LSU may transiently overshoot by one warp's coalesced
		// transactions; admission is gated on the pre-issue depth.
		if len(sm.lsu) >= sm.cfg.LSUQueue ||
			len(sm.mshr) >= sm.cfg.MSHRsPerSM {
			sm.unready(sw, wsWaitLSU)
			// MSHR-full wakeups ride on fills; LSU wakeups on drain.
			if len(sm.mshr) >= sm.cfg.MSHRsPerSM {
				sm.sys.wheel.afterEvent(8, wheelEvent{kind: wevLSURetry, sm: sm, sw: sw})
			}
			return
		}
		res := w.Step()
		sm.countInstr(res)
		if sw.collect != nil {
			sm.sys.recordCollection(sw, res)
		}
		sm.issueMem(sw, res, now)
		sm.blockOnNext(sw, 1, now)
		return

	case isa.OpLdShared, isa.OpStShared:
		res := w.Step()
		sm.countInstr(res)
		sm.blockOnNext(sw, sm.cfg.SharedLat, now)
		return

	default:
		res := w.Step()
		sm.countInstr(res)
		lat := sm.cfg.ALULat
		switch {
		case in.Op == isa.OpDiv || in.Op == isa.OpRem || in.Op == isa.OpFDiv:
			lat = sm.cfg.DivLat
		case in.Op.IsFloat():
			lat = sm.cfg.FPLat
		}
		sm.blockOnNext(sw, lat, now)
		return
	}
}

func (sm *SM) countInstr(res exec.StepResult) {
	st := &sm.sys.stats
	st.WarpInstrs++
	st.ThreadInstrs += uint64(res.ActiveLanes)
	if sm.isStack {
		st.StackThreadInstrs += uint64(res.ActiveLanes)
	}
}

// issueMem coalesces the step's lane accesses into line transactions and
// routes them through L1 / MSHRs / the memory port.
func (sm *SM) issueMem(sw *smWarp, res exec.StepResult, now int64) {
	lineMask := uint64(sm.cfg.LineBytes - 1)
	type lineInfo struct {
		line  uint64
		lanes int
	}
	var lines [coalesceMax]lineInfo
	n := 0
	for _, a := range res.Accesses {
		l := a.Addr &^ lineMask
		found := false
		for i := 0; i < n; i++ {
			if lines[i].line == l {
				lines[i].lanes++
				found = true
				break
			}
		}
		if !found {
			lines[n] = lineInfo{line: l, lanes: 1}
			n++
		}
	}
	isStore := res.Op.IsStore() || res.Op == isa.OpAtomAdd
	if isStore {
		sw.pendingStores += n
		if sw.job != nil && sm.cfg.Coherence {
			for i := 0; i < n; i++ {
				sw.job.dirty[lines[i].line] = struct{}{}
			}
		}
	}
	reg := res.Dst
	if res.Op.IsLoad() || res.Op == isa.OpAtomAdd {
		sw.pendingRegs |= 1 << reg
	}
	for i := 0; i < n; i++ {
		li := lines[i]
		if isStore {
			// Write-through, no-allocate: touch L1 LRU if present.
			sm.l1.Lookup(li.line)
			t := &txn{line: li.line, bytes: li.lanes * isa.WordBytes, store: true,
				atom: res.Op == isa.OpAtomAdd, sm: sm, sw: sw, reg: reg}
			if res.Op == isa.OpAtomAdd {
				sw.regCount[reg]++
			}
			sm.sys.inflight++
			sm.lsu = append(sm.lsu, t)
			continue
		}
		// Load path.
		sw.regCount[reg]++
		if waiters, outstanding := sm.mshr[li.line]; outstanding {
			sm.mshr[li.line] = append(waiters, loadWaiter{sw: sw, reg: reg})
			continue
		}
		if sm.l1.Lookup(li.line) {
			sm.noteL1(true)
			sm.ringAfter(sm.cfg.L1Lat, now, smEvent{sw: sw, reg: int8(reg)})
			continue
		}
		sm.noteL1(false)
		sm.mshr[li.line] = []loadWaiter{{sw: sw, reg: reg}}
		sm.sys.inflight++
		sm.lsu = append(sm.lsu, &txn{line: li.line, sm: sm})
	}
}

func (sm *SM) noteL1(hit bool) {
	st := &sm.sys.stats
	switch {
	case sm.isStack && hit:
		st.StackL1Hits++
	case sm.isStack:
		st.StackL1Misses++
	case hit:
		st.L1Hits++
	default:
		st.L1Misses++
	}
}

// fill delivers a returned line: L1 allocation plus waiter register clears.
func (sm *SM) fill(line uint64, now int64) {
	sm.l1.Fill(line)
	waiters := sm.mshr[line]
	delete(sm.mshr, line)
	for _, wt := range waiters {
		sm.regClear(wt.sw, wt.reg, now)
	}
	// MSHR space freed: wake MSHR-stalled warps.
	sm.retryLSUStalls(now)
}

// runnableNow reports whether the SM's tick would do work this cycle:
// ready warps to issue, LSU transactions to drain, or offload jobs to
// spawn. Ring events are timed, not busy-now — see nextRingDue.
func (sm *SM) runnableNow() bool {
	return sm.ready.any() || len(sm.lsu) > 0 || len(sm.spawnQ) > 0
}

// idleAt reports that tick(now) would be a provable no-op: nothing is
// runnable and the cycle's ring slot holds no events. The event-driven
// loop elides the tick call entirely for such SMs; the per-cycle
// reference loop always ticks.
func (sm *SM) idleAt(now int64) bool {
	if sm.ringMask&(1<<uint(now%ringSlots)) != 0 {
		return false
	}
	return !sm.runnableNow()
}

// nextRingDue returns the earliest cycle >= from whose ring slot holds
// events, or -1 with an empty ring. A slot fires at the first SM tick
// matching it mod ringSlots, so events whose nominal due cycle fell inside
// a frozen window fire at the first matching post-freeze cycle — passing
// from = frozenUntil reproduces the per-cycle loop's behavior exactly.
func (sm *SM) nextRingDue(from int64) int64 {
	if sm.ringCount == 0 {
		return -1
	}
	// Rotate the occupancy mask so bit d corresponds to slot (from+d) mod
	// ringSlots; the lowest set bit is the soonest due slot. ringCount > 0
	// guarantees the mask is nonzero.
	rot := bits.RotateLeft64(sm.ringMask, -int(from%ringSlots))
	return from + int64(bits.TrailingZeros64(rot))
}

// busy reports whether the SM still has unfinished work.
func (sm *SM) busy() bool {
	if len(sm.lsu) > 0 || len(sm.mshr) > 0 || len(sm.spawnQ) > 0 || len(sm.ctas) > 0 {
		return true
	}
	for _, sw := range sm.warps {
		if sw != nil {
			return true
		}
	}
	return false
}
