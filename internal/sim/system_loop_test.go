package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/workloads"
)

// runSimMode is runSim with an explicit loop-mode selector.
func runSimMode(t testing.TB, cfg Config, env *workloadEnv, perCycle bool) *System {
	t.Helper()
	m := env.mem.Clone()
	alloc := mem.NewAllocTable()
	for _, r := range env.alloc.Ranges {
		alloc.Alloc(r.Name, r.Size)
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 50_000_000
	}
	sys := New(cfg, m, alloc)
	sys.SetPerCycleLoop(perCycle)
	if err := sys.Run(env.launches); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestExactQuiescence: the run must end on the first cycle after the last
// component activity — the old amortized check (every 64 cycles) overshot
// the true drain cycle by up to 63 cycles, inflating every reported cycle
// count. The per-cycle trace hook observes quiescence at the start of every
// executed cycle: after cycle 0 (dispatch has not happened yet at the very
// first cycle's start) no executed cycle may begin quiescent.
func TestExactQuiescence(t *testing.T) {
	env := streamEnv(t, 8, 8)
	m := env.mem.Clone()
	alloc := mem.NewAllocTable()
	for _, r := range env.alloc.Ranges {
		alloc.Alloc(r.Name, r.Size)
	}
	cfg := BaselineConfig()
	cfg.MaxCycles = 50_000_000
	sys := New(cfg, m, alloc)
	var quietStarts []int64
	var last int64
	trace := func(now int64) {
		last = now
		if now > 0 && sys.quiet() {
			quietStarts = append(quietStarts, now)
		}
	}
	if err := sys.RunWithTrace(env.launches, trace); err != nil {
		t.Fatal(err)
	}
	if len(quietStarts) > 0 {
		t.Errorf("executed %d cycles that began quiescent (first: %d) — drain is not exact",
			len(quietStarts), quietStarts[0])
	}
	if got := sys.Stats().Cycles; got != last+1 {
		t.Errorf("Cycles = %d, want %d (last executed cycle %d + 1)", got, last+1, last)
	}
}

// TestMaxCyclesBoundary pins the limit's exact semantics in both loop
// modes: the run may execute cycles 0..MaxCycles; if it reaches quiescence
// when sys.now passes the limit, quiescence wins (a drain finishing exactly
// at the boundary is a success), otherwise the error fires with
// sys.now == MaxCycles+1.
func TestMaxCyclesBoundary(t *testing.T) {
	env := streamEnv(t, 4, 4)
	natural := runSim(t, BaselineConfig(), env).Stats().Cycles

	for _, perCycle := range []bool{false, true} {
		mode := map[bool]string{true: "percycle", false: "event"}[perCycle]

		// The last executed cycle of a natural run is natural-1, so
		// MaxCycles = natural-1 must still succeed...
		cfg := BaselineConfig()
		cfg.MaxCycles = natural - 1
		sys := runSimMode(t, cfg, env, perCycle)
		if got := sys.Stats().Cycles; got != natural {
			t.Errorf("%s: boundary success run Cycles = %d, want %d", mode, got, natural)
		}

		// ...and MaxCycles = natural-2 must fail, with the error raised at
		// exactly MaxCycles+1 in both modes (event jumps may not leap it).
		m := env.mem.Clone()
		alloc := mem.NewAllocTable()
		for _, r := range env.alloc.Ranges {
			alloc.Alloc(r.Name, r.Size)
		}
		cfg2 := BaselineConfig()
		cfg2.MaxCycles = natural - 2
		sys2 := New(cfg2, m, alloc)
		sys2.SetPerCycleLoop(perCycle)
		err := sys2.Run(env.launches)
		if err == nil {
			t.Fatalf("%s: MaxCycles=%d should fail (natural run needs %d cycles)",
				mode, natural-2, natural)
		}
		if got := sys2.Stats().Cycles; got != natural-1 {
			t.Errorf("%s: error raised at cycle %d, want MaxCycles+1 = %d", mode, got, natural-1)
		}
	}
}

// TestFrozenWindowSemantics pins which components advance during the
// learning-phase freeze (endLearning's interrupt+drain pause): SMs and
// memory stacks are stopped — no instructions execute, no DRAM requests
// are served — while the L2, all links, and the wheel keep ticking, so
// in-flight traffic continues to drain. The freeze is exactly 1000 cycles.
func TestFrozenWindowSemantics(t *testing.T) {
	env := streamEnv(t, 24, 24)
	m := env.mem.Clone()
	alloc := mem.NewAllocTable()
	for _, r := range env.alloc.Ranges {
		alloc.Alloc(r.Name, r.Size)
	}
	cfg := DefaultConfig() // tmap + controlled offload: has a learning phase
	cfg.MaxCycles = 50_000_000
	sys := New(cfg, m, alloc)

	type snap struct {
		warpInstrs uint64
		dramOps    uint64
		pcieBytes  uint64
	}
	samples := map[int64]snap{}
	trace := func(now int64) {
		var dram uint64
		for _, st := range sys.stacks {
			for _, v := range st.vaults {
				dram += v.Reads + v.Writes
			}
		}
		samples[now] = snap{
			warpInstrs: sys.stats.WarpInstrs,
			dramOps:    dram,
			pcieBytes:  sys.pcieTX.BytesSent + sys.pcieRX.BytesSent,
		}
	}
	if err := sys.RunWithTrace(env.launches, trace); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.LearnCycles == 0 {
		t.Fatal("no learning phase happened")
	}
	fz := st.LearnCycles
	if sys.frozenUntil != fz+1000 {
		t.Fatalf("frozenUntil = %d, want LearnCycles+1000 = %d", sys.frozenUntil, fz+1000)
	}
	// endLearning may fire mid-cycle (the instance goal is hit inside an
	// SM tick), so cycle fz itself can still execute a few instructions on
	// SMs later in the fan-out; cycles fz+1..fz+999 are fully frozen.
	// Samples are taken at cycle start.
	start, end := samples[fz+1], samples[fz+1000]
	if start.warpInstrs != end.warpInstrs {
		t.Errorf("SMs executed %d instructions during the freeze window",
			end.warpInstrs-start.warpInstrs)
	}
	if start.dramOps != end.dramOps {
		t.Errorf("vaults served %d requests during the freeze window",
			end.dramOps-start.dramOps)
	}
	if end.pcieBytes == start.pcieBytes {
		t.Error("links should keep moving in-flight traffic during the freeze")
	}
	// After the freeze, SMs resume.
	if st.WarpInstrs == end.warpInstrs {
		t.Error("no instructions executed after the freeze")
	}
}

// TestWheelOverflowDelayInSystem: a config whose modeled latency exceeds
// the wheel horizon (8192) must run to completion — the seed loop panicked
// on wheel.after(delay >= 8192).
func TestWheelOverflowDelayInSystem(t *testing.T) {
	env := streamEnv(t, 4, 4)
	want := refMem(t, env)
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline
	cfg.OffloadPipeLat = wheelHorizon + 1000 // absurdly deep offload pipeline
	sys := runSim(t, cfg, env)
	if ok, addr := mem.Equal(want, sys.mem); !ok {
		t.Fatalf("run with over-horizon latency diverged at %#x", addr)
	}
	if sys.Stats().OffloadsSent == 0 {
		t.Fatal("run should still offload")
	}
}

// TestEventLoopMatchesPerCycleStats is the equivalence guarantee behind
// the event-driven loop: over the Fig. 9 workload×config matrix, jumping
// idle cycles must produce byte-identical Stats to ticking every cycle.
func TestEventLoopMatchesPerCycleStats(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-system simulations")
	}
	configs := []struct {
		name string
		mk   func() Config
	}{
		{"baseline", BaselineConfig},
		{"noctrl-bmap", func() Config {
			c := DefaultConfig()
			c.Offload = OffloadUncontrolled
			c.Mapping = MapBaseline
			return c
		}},
		{"noctrl-tmap", func() Config {
			c := DefaultConfig()
			c.Offload = OffloadUncontrolled
			return c
		}},
		{"ctrl-bmap", func() Config {
			c := DefaultConfig()
			c.Mapping = MapBaseline
			return c
		}},
		{"ctrl-tmap", DefaultConfig},
		// The watchdog closes learning at the deadline here (the instance
		// goal is out of reach), so the cell exercises the deadline entry in
		// the event loop's wake horizon: a jump past it would end learning
		// late and shift every downstream statistic.
		{"ctrl-tmap-deadline", func() Config {
			c := DefaultConfig()
			c.LearnMin = 1 << 30
			c.LearnDeadline = 2500
			return c
		}},
	}
	for _, w := range workloads.All() {
		inst, err := w.Build(0.03)
		if err != nil {
			t.Fatalf("%s: %v", w.Abbr, err)
		}
		for _, c := range configs {
			t.Run(fmt.Sprintf("%s/%s", w.Abbr, c.name), func(t *testing.T) {
				var stats [2]*Stats
				var mems [2]*mem.Flat
				for i, perCycle := range []bool{false, true} {
					run := inst.Clone()
					cfg := c.mk()
					cfg.MaxCycles = 100_000_000
					sys := New(cfg, run.Mem, run.Alloc)
					sys.SetPerCycleLoop(perCycle)
					if err := sys.Run(run.Launches); err != nil {
						t.Fatal(err)
					}
					stats[i] = sys.Stats()
					mems[i] = run.Mem
				}
				if !reflect.DeepEqual(stats[0], stats[1]) {
					t.Errorf("event-driven and per-cycle Stats diverge:\nevent:    %+v\npercycle: %+v",
						stats[0], stats[1])
				}
				if ok, addr := mem.Equal(mems[0], mems[1]); !ok {
					t.Errorf("memory images diverge at %#x", addr)
				}
			})
		}
	}
}
