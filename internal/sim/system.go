package sim

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/mapping"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/offload"
)

// launchCtx tracks one kernel launch's CTA dispatch.
type launchCtx struct {
	l         exec.Launch
	md        *compiler.Metadata
	nextCTA   int
	doneCTAs  int
	totalCTAs int
}

// System is the whole NDP GPU: main SMs + shared L2, four memory stacks
// with logic-layer SMs, all links, the offload controller state, and the
// programmer-transparent data-mapping machinery.
type System struct {
	cfg   Config
	mem   *mem.Flat
	alloc *mem.AllocTable
	wheel *wheel
	stats Stats

	sms    []*SM // main GPU SMs
	l2     *l2sys
	l2mshr map[uint64]*l2entry
	stacks []*stackNode

	txLinks, rxLinks []*link.Link   // GPU->stack / stack->GPU
	crossLinks       [][]*link.Link // [from][to]
	pcieTX, pcieRX   *link.Link

	pendingOffloads []int
	// pendingVault sub-divides pendingOffloads per destination vault for
	// vault-granular policies (MPU); stack-granular jobs never touch it.
	pendingVault [][]int

	// policy is the resolved offload policy (Config.PolicyName); ptraits
	// caches its Traits for the hot path.
	policy  offload.Policy
	ptraits offload.Traits

	// Data mapping state.
	offloadBit int // -1 until a learned/forced bit is active
	analyzer   *mapping.Analyzer
	learning   bool
	learnSeen  int
	learnGoal  int

	now           int64
	executed      int64 // cycles actually stepped (== now in per-cycle mode)
	inflight      int
	frozenUntil   int64
	learnDeadline int64

	// perCycle forces the naive tick-every-cycle loop (diagnostics and the
	// event-driven/per-cycle equivalence tests). A per-cycle trace hook
	// implies it: the hook's contract is one call per simulated cycle.
	perCycle bool

	mdCache map[*isa.Kernel]*compiler.Metadata
	trace   func(now int64)

	// Adaptive marking (ApplyGateFeedback): an observed gate profile and
	// refine parameters applied to every kernel's metadata before use.
	gateProf     compiler.GateProfile
	refineParams compiler.RefineParams

	// ob is non-nil iff cfg.Observer is set (see observe.go).
	ob *obsState
}

// New builds a system over the given memory and allocation table.
func New(cfg Config, m *mem.Flat, alloc *mem.AllocTable) *System {
	pol, err := offload.ByName(cfg.PolicyName())
	if err != nil {
		panic(err) // validated by internal/core and the CLIs before New
	}
	sys := &System{
		cfg: cfg, mem: m, alloc: alloc,
		l2mshr:     make(map[uint64]*l2entry),
		offloadBit: -1,
		mdCache:    make(map[*isa.Kernel]*compiler.Metadata),
		policy:     pol,
		ptraits:    pol.Traits(),
	}
	sys.wheel = newWheel(sys)
	sys.stats.PCStats = compiler.GateProfile{}
	sys.l2 = newL2(sys)
	for i := 0; i < cfg.MainSMs; i++ {
		sm := newSM(sys, i, false, -1, cfg.WarpsPerSM)
		sm.port = sys.l2
		sys.sms = append(sys.sms, sm)
	}
	for s := 0; s < cfg.Stacks; s++ {
		st := newStack(sys, s)
		for i := 0; i < cfg.StackSMs; i++ {
			sm := newSM(sys, cfg.MainSMs+s*cfg.StackSMs+i, true, s, cfg.StackWarps())
			sm.port = &stackPort{node: st}
			st.sms = append(st.sms, sm)
		}
		sys.stacks = append(sys.stacks, st)
		sys.txLinks = append(sys.txLinks,
			link.New(fmt.Sprintf("tx%d", s), cfg.GPUStackBW, cfg.LinkLat))
		sys.rxLinks = append(sys.rxLinks,
			link.New(fmt.Sprintf("rx%d", s), cfg.GPUStackBW, cfg.LinkLat))
	}
	sys.crossLinks = make([][]*link.Link, cfg.Stacks)
	for a := 0; a < cfg.Stacks; a++ {
		sys.crossLinks[a] = make([]*link.Link, cfg.Stacks)
		for b := 0; b < cfg.Stacks; b++ {
			if a != b {
				sys.crossLinks[a][b] =
					link.New(fmt.Sprintf("x%d-%d", a, b), cfg.CrossStackBW, cfg.CrossLat)
			}
		}
	}
	sys.pcieTX = link.New("pcieTX", cfg.PCIeBW, cfg.PCIeLat/2)
	sys.pcieRX = link.New("pcieRX", cfg.PCIeBW, cfg.PCIeLat/2)
	sys.pendingOffloads = make([]int, cfg.Stacks)
	sys.pendingVault = make([][]int, cfg.Stacks)
	for s := range sys.pendingVault {
		sys.pendingVault[s] = make([]int, cfg.VaultsPerStack)
	}
	sys.analyzer = mapping.NewAnalyzer(cfg.Stacks, alloc)
	if cfg.Observer != nil {
		sys.ob = newObsState(&sys.cfg)
	}

	switch cfg.Mapping {
	case MapTransparent:
		sys.learning = cfg.Offload != OffloadOff
		sys.learnDeadline = cfg.LearnDeadline
	case MapOracle, MapFixedBit:
		// Caller pre-flags ranges (ApplyOracleMapping / ApplyFixedMapping).
	}
	return sys
}

// Stats returns the accumulated statistics (finalized after each Run).
func (sys *System) Stats() *Stats { return &sys.stats }

// Analyzer exposes the memory-map analyzer (for experiment harnesses).
func (sys *System) Analyzer() *mapping.Analyzer { return sys.analyzer }

// ApplyMappingBit pre-activates a consecutive-bit mapping for all ranges
// flagged CandidateTouched in the allocation table (oracle/fixed-bit runs
// skip the learning phase — the mapping is in force from cycle 0, for free).
func (sys *System) ApplyMappingBit(bit int) {
	sys.offloadBit = bit
	sys.stats.LearnedBit = bit
	sys.stats.MappingSource = MappingPreset
	for i := range sys.alloc.Ranges {
		if sys.alloc.Ranges[i].CandidateTouched {
			sys.alloc.Ranges[i].OffloadMapped = true
			sys.stats.MappedRanges = append(sys.stats.MappedRanges, sys.alloc.Ranges[i].Name)
		}
	}
}

// InstallMapping pre-installs a previously learned mapping before cycle 0:
// the named ranges get the consecutive-bit mapping and the one-time
// host→device copy is charged, but no learning phase runs — so a stored-
// mapping run generates zero learning-phase PCIe traffic (routeLoad/
// routeStore only take the PCIe path while learning). This is the "map
// once, stay resident" entry path, distinct from both bmap (no bit mapping)
// and the free preset modes (oracle/fixed-bit charge no copy at all).
// savedPCIe is the learning-phase PCIe byte volume the original fresh run
// paid, reported as Stats.LearnPCIeSaved. An unknown range name means the
// mapping describes different data structures and is rejected — installing
// it partially could place data wrongly, which a caller must treat as a
// store miss, never a degraded install.
func (sys *System) InstallMapping(bit int, ranges []string, savedPCIe uint64) error {
	if sys.cfg.Mapping != MapTransparent {
		return fmt.Errorf("sim: stored mappings install only on transparent-mapping systems (have mode %d)", sys.cfg.Mapping)
	}
	if bit < mapping.MinBit || bit > mapping.MaxBit {
		return fmt.Errorf("sim: stored mapping bit %d outside [%d, %d]", bit, mapping.MinBit, mapping.MaxBit)
	}
	var copied uint64
	resolved := make([]*mem.Range, 0, len(ranges))
	for _, name := range ranges {
		r, err := sys.alloc.Lookup(name)
		if err != nil {
			return fmt.Errorf("sim: stored mapping: %w", err)
		}
		resolved = append(resolved, r)
		copied += r.Size
	}
	for _, r := range resolved {
		r.CandidateTouched = true
		r.OffloadMapped = true
	}
	sys.offloadBit = bit
	sys.learning = false // the stored bit replaces the learning phase
	sys.stats.LearnedBit = bit
	sys.stats.CopiedBytes += copied
	sys.stats.MappingSource = MappingStored
	sys.stats.MappedRanges = append([]string(nil), ranges...)
	sys.stats.LearnPCIeSaved = savedPCIe
	if sys.ob != nil {
		sys.ob.pcieSaved.Add(savedPCIe)
		sys.ob.o.Emit(obs.Event{Cycle: sys.now, Kind: obs.EvMapInstall,
			N: len(ranges), Bit: obs.BitValue(bit)})
	}
	return nil
}

// stackOf maps a line address to its memory stack under the currently
// active policy (baseline XOR interleave, overridden per-range by the
// learned consecutive-bit mapping once tmap's copy has happened).
func (sys *System) stackOf(addr uint64) int {
	if sys.offloadBit >= 0 {
		if r := sys.alloc.Find(addr); r != nil && r.OffloadMapped {
			return int((addr >> uint(sys.offloadBit)) & uint64(sys.cfg.Stacks-1))
		}
	}
	line := addr >> mapping.LineShift
	return int((line ^ (line >> 6) ^ (line >> 11)) & uint64(sys.cfg.Stacks-1))
}

func (sys *System) forceColocate() bool { return sys.ptraits.ForceColocate }

// ApplyGateFeedback installs an observed per-PC gate profile (typically the
// PCStats of a short profiling run): every kernel metadata table this
// System compiles is refined with it — always-gated candidates are demoted
// and channel tags are re-derived from observed trip counts (see
// compiler.Refine). Call before Run.
func (sys *System) ApplyGateFeedback(prof compiler.GateProfile, p compiler.RefineParams) {
	sys.gateProf = prof
	sys.refineParams = p
}

// costParams returns the cost model every metadata table of this System is
// marked with. With gate feedback installed it is the refinement's own
// CostParams (falling back to the defaults when the caller left them zero):
// initial marking and Refine re-tagging must evaluate equations (3)/(4)
// under the same constants, or a non-default RefineParams.Cost would demote
// and re-tag candidates selected by a model it never sees.
func (sys *System) costParams() compiler.CostParams {
	if sys.gateProf != nil && sys.refineParams.Cost != (compiler.CostParams{}) {
		return sys.refineParams.Cost
	}
	return compiler.DefaultCostParams()
}

// metadata compiles (and caches) the offload metadata for a kernel through
// the policy's candidate-selection hook, applying the installed
// gate-feedback refinement, if any.
func (sys *System) metadata(k *isa.Kernel) (*compiler.Metadata, error) {
	if md, ok := sys.mdCache[k]; ok {
		return md, nil
	}
	md, err := sys.policy.SelectCandidates(k, sys.costParams())
	if err != nil {
		return nil, err
	}
	if sys.gateProf != nil {
		ref := compiler.Refine(md, sys.gateProf, sys.refineParams)
		sys.stats.RefineDemoted += len(ref.Demoted)
		sys.stats.RefineRetagged += len(ref.Retagged)
	}
	sys.mdCache[k] = md
	return md, nil
}

// --- Learning phase (programmer-transparent data mapping, §4.3) ---

// learnWindow bounds how many warp memory instructions the analyzer
// observes per candidate instance: the hardware tracks 40 bits per
// instance (§6.6), so its observation window is inherently small. Bounding
// it also keeps the learning prefix short at reduced workload scale.
const learnWindow = 8

func (sys *System) recordCollection(sw *smWarp, res exec.StepResult) {
	c := sw.collect
	for _, a := range res.Accesses {
		c.addrs = append(c.addrs, a.Addr)
	}
	if len(res.Accesses) > 0 {
		c.seq = append(c.seq, instAccess{pc: res.PC, addr: res.Accesses[0].Addr})
	}
	if len(c.seq) >= learnWindow {
		sys.finishCollection(sw)
	}
}

func (sys *System) finishCollection(sw *smWarp) {
	c := sw.collect
	sw.collect = nil
	if len(c.addrs) == 0 {
		return
	}
	sys.analyzer.ObserveInstance(c.addrs)
	sys.learnSeen++
	if sys.learning && sys.learnGoal > 0 && sys.learnSeen >= sys.learnGoal {
		sys.endLearning()
	}
}

// endLearning closes the learning phase: pick the best mapping, flag the
// candidate-touched ranges, and perform the delayed host→device copy
// (§4.3 steps 4-5). The copy itself is not extra work versus the baseline
// flow (it merely happened later), so only the interrupt/drain pause is
// charged; all caches are invalidated because data physically moved.
func (sys *System) endLearning() {
	sys.learning = false
	sys.stats.LearnInstances = sys.learnSeen
	sys.stats.LearnCycles = sys.now
	if sys.ob != nil {
		defer func() {
			ev := obs.Event{Cycle: sys.now, Kind: obs.EvLearnEnd, N: sys.learnSeen}
			// Bit 0 is a legitimate learned bit; only a phase that picked
			// no bit at all leaves the field nil.
			if bit := sys.stats.LearnedBit; bit >= 0 {
				ev.Bit = obs.BitValue(bit)
			}
			sys.ob.o.Emit(ev)
		}()
	}
	if sys.learnSeen == 0 {
		// Nothing observed before the watchdog fired: keep the baseline
		// mapping for everything.
		sys.stats.LearnedBit = -1
		return
	}
	bit := sys.analyzer.BestBit()
	// The copy only moves ranges whose placement actually changes: a range
	// already carrying this exact bit mapping (a pre-installed one — e.g. a
	// stored mapping installed while learning was left running) stays put.
	var moved uint64
	for i := range sys.alloc.Ranges {
		r := &sys.alloc.Ranges[i]
		if !r.CandidateTouched {
			continue
		}
		if !(r.OffloadMapped && sys.offloadBit == bit) {
			moved += r.Size
		}
		r.OffloadMapped = true
		sys.stats.MappedRanges = append(sys.stats.MappedRanges, r.Name)
	}
	sys.offloadBit = bit
	sys.stats.LearnedBit = bit
	sys.stats.MappingSource = MappingLearned
	sys.stats.CopiedBytes += moved
	if moved == 0 {
		// The chosen mapping was already in force for every touched range:
		// no data moved, so there is nothing to invalidate and no
		// interrupt/drain pause to charge (satellite of ISSUE 9 — the old
		// code froze the GPU for 1000 cycles over a no-op copy).
		return
	}
	for _, sm := range sys.sms {
		sm.l1.InvalidateAll()
	}
	for _, st := range sys.stacks {
		for _, sm := range st.sms {
			sm.l1.InvalidateAll()
		}
	}
	sys.l2.invalidateAll()
	sys.frozenUntil = sys.now + 1000 // GPU runtime interrupt + pipeline drain
}

// learnCTACap bounds concurrently resident CTAs while the learning phase
// is active: the GPU runtime throttles dispatch so the (slow, CPU-memory-
// backed) learning prefix stays a small fraction of the run, mirroring the
// paper's 0.1%-of-instances budget at our reduced workload scales.
const learnCTACap = 48

// activeCTAs counts CTAs currently resident on main SMs.
func (sys *System) activeCTAs() int {
	n := 0
	for _, sm := range sys.sms {
		n += len(sm.ctas)
	}
	return n
}

// --- Run loop ---

// Run executes the launches in order and finalizes stats. The same System
// must not be reused across Run calls.
func (sys *System) Run(launches []exec.Launch) error {
	return sys.RunWithTrace(launches, nil)
}

// RunWithTrace is Run with a per-cycle observation hook (diagnostics).
func (sys *System) RunWithTrace(launches []exec.Launch, trace func(now int64)) error {
	sys.trace = trace
	// Estimate the learning goal: LearnFrac of expected candidate
	// instances across the run (§3.2.2 observes ~0.1%).
	if sys.learning {
		est := 0
		for _, l := range launches {
			md, err := sys.metadata(l.Kernel)
			if err != nil {
				return err
			}
			est += l.Grid * l.WarpsPerCTA() * len(md.Candidates)
		}
		goal := int(float64(est) * sys.cfg.LearnFrac)
		if goal < sys.cfg.LearnMin {
			goal = sys.cfg.LearnMin
		}
		sys.learnGoal = goal
		if est == 0 {
			sys.learning = false // nothing to learn from
		}
	}
	for i, l := range launches {
		if err := sys.runLaunch(l); err != nil {
			// A truncated run (MaxCycles, or any launch failure) must still
			// close an open learning phase: without this, the stats said
			// LearnInstances=0/LearnCycles=0 while learn.instances_seen had
			// been sampling real observations, breaking the series'
			// conservation against the end-of-run totals.
			if sys.learning {
				sys.endLearning()
			}
			sys.finalizeStats()
			return fmt.Errorf("sim: launch %d (%s): %w", i, l.Kernel.Name, err)
		}
	}
	// A learning phase that never hit its goal ends with the workload.
	if sys.learning {
		sys.endLearning()
	}
	sys.finalizeStats()
	// Drain-correctness check: quiescence must mean every offload round
	// trip completed. A violation is a simulator bug (or a premature exit),
	// not a property of the workload — fail loudly instead of returning
	// silently-wrong statistics.
	return sys.stats.DrainError()
}

// SetPerCycleLoop selects the naive tick-every-cycle loop instead of the
// event-driven one. Both produce identical Stats (tested); the per-cycle
// loop exists for diagnostics and as the equivalence baseline.
func (sys *System) SetPerCycleLoop(v bool) { sys.perCycle = v }

func (sys *System) runLaunch(l exec.Launch) error {
	if err := l.Validate(); err != nil {
		return err
	}
	md, err := sys.metadata(l.Kernel)
	if err != nil {
		return err
	}
	lc := &launchCtx{l: l, md: md, totalCTAs: l.Grid}
	perCycle := sys.perCycle || sys.trace != nil

	for {
		sys.stepCycle(lc, !perCycle)

		// Exact quiescence: state only changes on executed cycles, so
		// checking after every one of them ends the launch on the first
		// cycle past the last component activity (the old amortized check
		// overshot by up to 63 cycles). The check short-circuits on
		// doneCTAs during the bulk of the run.
		if lc.doneCTAs == lc.totalCTAs && sys.quiet() {
			return nil
		}
		// A run that quiesces exactly at the MaxCycles boundary succeeds;
		// the error fires at sys.now == MaxCycles+1, i.e. after cycle
		// MaxCycles executed without reaching quiescence.
		if sys.cfg.MaxCycles > 0 && sys.now > sys.cfg.MaxCycles {
			return fmt.Errorf("exceeded MaxCycles=%d", sys.cfg.MaxCycles)
		}
		if !perCycle {
			if next := sys.nextEventCycle(lc); next > sys.now {
				sys.now = next
			}
		}
	}
}

// stepCycle executes one simulated cycle at sys.now and advances sys.now.
// It is the shared body of both loop modes; the event-driven loop simply
// skips cycles this body would no-op through. With elide set (event mode),
// component ticks that are provable no-ops — an SM with an empty ring slot
// and nothing runnable — are skipped within the executed cycle too; the
// per-cycle reference loop ticks everything, and the Fig. 9 equivalence
// test pins that both produce identical Stats.
func (sys *System) stepCycle(lc *launchCtx, elide bool) {
	now := sys.now
	if sys.trace != nil {
		sys.trace(now)
	}
	if ob := sys.ob; ob != nil && now >= ob.next {
		ob.sample(sys, now)
	}
	// Learning watchdog: close the phase at the deadline with whatever has
	// been observed; with nothing observed, give up on the learned mapping
	// entirely (tmap degrades to bmap).
	if sys.learning && sys.cfg.LearnDeadline > 0 && now >= sys.learnDeadline {
		sys.endLearning()
	}
	sys.wheel.tick(now)
	if now >= sys.frozenUntil {
		if lc.nextCTA < lc.totalCTAs && (!sys.learning || sys.activeCTAs() < learnCTACap) {
			for _, sm := range sys.sms {
				if lc.nextCTA >= lc.totalCTAs {
					break
				}
				sm.dispatchCTAs(lc)
				if sys.learning && sys.activeCTAs() >= learnCTACap {
					break
				}
			}
		}
		for _, sm := range sys.sms {
			if elide && sm.idleAt(now) {
				continue
			}
			sm.tick(now)
		}
		for _, st := range sys.stacks {
			st.tick(now, elide)
		}
	}
	sys.l2.tick(now)
	// AdvanceTo, not a per-cycle Tick: in event mode `now` may be far past
	// the last executed cycle, and the links bulk-account the skipped span.
	// Idle links take the SkipTo fast path — it only moves the accounting
	// point, which Send needs to see (a send from a later deliver callback
	// this cycle must start its burst next cycle, exactly as if the idle
	// link had taken a full turn).
	for s := 0; s < sys.cfg.Stacks; s++ {
		if l := sys.txLinks[s]; l.Active() {
			l.AdvanceTo(now)
		} else {
			l.SkipTo(now)
		}
		if l := sys.rxLinks[s]; l.Active() {
			l.AdvanceTo(now)
		} else {
			l.SkipTo(now)
		}
		for t := 0; t < sys.cfg.Stacks; t++ {
			if s != t {
				if l := sys.crossLinks[s][t]; l.Active() {
					l.AdvanceTo(now)
				} else {
					l.SkipTo(now)
				}
			}
		}
	}
	if l := sys.pcieTX; l.Active() {
		l.AdvanceTo(now)
	} else {
		l.SkipTo(now)
	}
	if l := sys.pcieRX; l.Active() {
		l.AdvanceTo(now)
	} else {
		l.SkipTo(now)
	}
	sys.executed++
	sys.now++
}

// ExecutedCycles returns how many cycles the loop actually stepped. In
// per-cycle mode this equals Stats().Cycles; in event mode the difference
// is the number of skipped (provably inert) cycles. Deliberately not part
// of Stats: the two loop modes are pinned byte-identical on Stats, and this
// is precisely the number that differs between them.
func (sys *System) ExecutedCycles() int64 { return sys.executed }

// dispatchPending reports whether stepCycle's CTA dispatch would place a
// CTA right now. Mirrors the gates in stepCycle exactly: waiting CTAs, the
// learning-phase residency cap, and at least one SM with a free slot.
func (sys *System) dispatchPending(lc *launchCtx) bool {
	if lc.nextCTA >= lc.totalCTAs {
		return false
	}
	if sys.learning && sys.activeCTAs() >= learnCTACap {
		return false
	}
	wpc := lc.l.WarpsPerCTA()
	for _, sm := range sys.sms {
		if len(sm.ctas) < sys.cfg.MaxCTAsPerSM && sm.freeSlots >= wpc {
			return true
		}
	}
	return false
}

// nextEventCycle computes the earliest cycle >= sys.now at which any
// component can make progress. Skipped cycles are provable no-ops for every
// component, so the event-driven loop produces bit-identical Stats to the
// per-cycle loop (tested over the Fig. 9 matrix). Sources are conservative:
// an over-inclusive answer only costs a no-op cycle, never correctness.
func (sys *System) nextEventCycle(lc *launchCtx) int64 {
	now := sys.now
	frozen := now < sys.frozenUntil

	// Fast path for the common case: outside a freeze, any runnable main
	// SM means the next cycle executes — bail before scanning the rest of
	// the machine. (The full gatedBusy scan below repeats this check for
	// the frozen case.)
	if !frozen {
		for _, sm := range sys.sms {
			if sm.runnableNow() {
				return now
			}
		}
	}

	// Busy-now components that tick every cycle regardless of the freeze:
	// an L2 bank with queued transactions. (Links are no longer in this
	// set: serialization is accounted lazily, so a link mid-packet has no
	// per-cycle work — its NextEvent below reports the delivery cycle.)
	for _, b := range sys.l2.banks {
		if len(b.queue) > 0 {
			return now
		}
	}

	// Busy-now components gated by the learning freeze (SMs, stacks, CTA
	// dispatch): while frozen their next chance to run is frozenUntil.
	gatedBusy := false
	for _, sm := range sys.sms {
		if sm.runnableNow() {
			gatedBusy = true
			break
		}
	}
	// (Vaults with queued requests are not "busy now": their NextEvent
	// reports the exact first cycle issue arbitration can accept work, and
	// the freeze clamp below already holds it at frozenUntil.)
	if !gatedBusy {
	stacks:
		for _, st := range sys.stacks {
			for _, sm := range st.sms {
				if sm.runnableNow() {
					gatedBusy = true
					break stacks
				}
			}
		}
	}
	if !gatedBusy && sys.dispatchPending(lc) {
		gatedBusy = true
	}
	if gatedBusy && !frozen {
		return now
	}

	next := int64(-1)
	upd := func(t int64) {
		if t < now {
			t = now
		}
		if next < 0 || t < next {
			next = t
		}
	}
	if gatedBusy {
		upd(sys.frozenUntil)
	}

	// Timed sources that fire regardless of the freeze.
	if t := sys.wheel.nextDue(); t >= 0 {
		upd(t)
	}
	for s := 0; s < sys.cfg.Stacks; s++ {
		if t := sys.txLinks[s].NextEvent(); t >= 0 {
			upd(t)
		}
		if t := sys.rxLinks[s].NextEvent(); t >= 0 {
			upd(t)
		}
		for u := 0; u < sys.cfg.Stacks; u++ {
			if s != u {
				if t := sys.crossLinks[s][u].NextEvent(); t >= 0 {
					upd(t)
				}
			}
		}
	}
	if t := sys.pcieTX.NextEvent(); t >= 0 {
		upd(t)
	}
	if t := sys.pcieRX.NextEvent(); t >= 0 {
		upd(t)
	}

	// Timed sources gated by the freeze: per-SM ring events and vault
	// horizons (both issue opportunities and completions) only fire once
	// the owning component ticks again, i.e. (for ring events) at the first
	// post-freeze cycle matching their slot and (for vaults) no earlier
	// than frozenUntil.
	gateBase := now
	if frozen {
		gateBase = sys.frozenUntil
	}
	for _, sm := range sys.sms {
		if t := sm.nextRingDue(gateBase); t >= 0 {
			upd(t)
		}
	}
	for _, st := range sys.stacks {
		for _, sm := range st.sms {
			if t := sm.nextRingDue(gateBase); t >= 0 {
				upd(t)
			}
		}
		for _, v := range st.vaults {
			if t := v.NextEvent(); t >= 0 {
				if frozen && t < sys.frozenUntil {
					t = sys.frozenUntil
				}
				upd(t)
			}
		}
	}

	// Caps: observer sampling boundaries, the learning watchdog, and the
	// MaxCycles limit must all be hit exactly, never jumped over.
	if ob := sys.ob; ob != nil {
		upd(ob.next)
	}
	if sys.learning && sys.cfg.LearnDeadline > 0 {
		upd(sys.learnDeadline)
	}
	if next < 0 {
		// No component holds future work yet the run is not quiescent
		// (a deadlocked workload): fall back to per-cycle stepping so the
		// MaxCycles guard fires exactly as in the per-cycle loop.
		return now
	}
	if sys.cfg.MaxCycles > 0 && next > sys.cfg.MaxCycles {
		next = sys.cfg.MaxCycles
	}
	return next
}

func (sys *System) quiet() bool {
	if sys.inflight != 0 || sys.wheel.pending() != 0 || len(sys.l2mshr) != 0 {
		return false
	}
	for _, p := range sys.pendingOffloads {
		if p != 0 {
			return false
		}
	}
	for _, sm := range sys.sms {
		if sm.busy() {
			return false
		}
	}
	for _, st := range sys.stacks {
		if st.active() {
			return false
		}
		for _, sm := range st.sms {
			if sm.busy() {
				return false
			}
		}
	}
	if sys.l2.active() {
		return false
	}
	for s := 0; s < sys.cfg.Stacks; s++ {
		if sys.txLinks[s].Active() || sys.rxLinks[s].Active() {
			return false
		}
		for t := 0; t < sys.cfg.Stacks; t++ {
			if s != t && sys.crossLinks[s][t].Active() {
				return false
			}
		}
	}
	return !sys.pcieTX.Active() && !sys.pcieRX.Active()
}

func (sys *System) finalizeStats() {
	st := &sys.stats
	st.Cycles = sys.now
	if sys.ob != nil {
		sys.ob.flush(sys)
	}
	for s := 0; s < sys.cfg.Stacks; s++ {
		st.GPUTXBytes += sys.txLinks[s].BytesSent
		st.GPURXBytes += sys.rxLinks[s].BytesSent
		for t := 0; t < sys.cfg.Stacks; t++ {
			if s != t {
				st.CrossBytes += sys.crossLinks[s][t].BytesSent
			}
		}
	}
	st.PCIeBytes = sys.pcieTX.BytesSent + sys.pcieRX.BytesSent
	st.InFlightOffloads = 0
	for _, p := range sys.pendingOffloads {
		st.InFlightOffloads += p
	}
	for _, stk := range sys.stacks {
		for _, v := range stk.vaults {
			st.DRAMActivations += v.Activations
			st.DRAMRowHits += v.RowHits
			st.DRAMReads += v.Reads
			st.DRAMWrites += v.Writes
			st.InternalBytes += v.BytesMoved
		}
	}
}
