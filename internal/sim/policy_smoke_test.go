package sim

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mapping"
	"repro/internal/mem"
)

// checkConservation asserts the lifecycle identity every policy must
// preserve: every candidate entry is sent, gated (with a reason), or
// consumed by the learning phase.
func checkConservation(t *testing.T, st *Stats) {
	t.Helper()
	if err := st.DrainError(); err != nil {
		t.Fatal(err)
	}
	if got := st.OffloadsSent + st.OffloadsSkipped() + st.LearnEntries; got != st.CandidateInstances {
		t.Errorf("conservation broken: %d candidates != %d sent + %d skipped + %d learn",
			st.CandidateInstances, st.OffloadsSent, st.OffloadsSkipped(), st.LearnEntries)
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = "bogus"
	defer func() {
		if recover() == nil {
			t.Fatal("New must reject an unknown policy name")
		}
	}()
	New(cfg, mem.NewFlat(), mem.NewAllocTable())
}

// TestPolicyRunsMatchReference: every registered policy must preserve
// program semantics end-to-end and keep the offload lifecycle conserved on
// a workload that exercises offloading.
func TestPolicyRunsMatchReference(t *testing.T) {
	env := shortLoopEnv(t, 64)
	want := refMem(t, env)
	for _, policy := range []string{"tom", "ideal", "coda", "mpu"} {
		t.Run(policy, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Mapping = MapBaseline
			cfg.Policy = policy
			sys := runSim(t, cfg, env)
			if ok, addr := mem.Equal(want, sys.mem); !ok {
				t.Fatalf("policy %s diverged from functional reference at %#x", policy, addr)
			}
			st := sys.Stats()
			checkConservation(t, st)
			if st.CandidateInstances == 0 {
				t.Fatal("no candidate instances seen")
			}
			t.Logf("%s: cycles=%d sent=%d skipped=%d (split=%d vaultfull=%d destbound=%d)",
				policy, st.Cycles, st.OffloadsSent, st.OffloadsSkipped(),
				st.OffloadsSkippedSplit, st.OffloadsSkippedVaultFull, st.OffloadsSkippedDestBound)
		})
	}
}

// TestMPUVaultAccountingDrains: the per-vault pending counters must return
// to zero at quiescence and never go negative, and the mpu policy must
// actually send vault-addressed offloads.
func TestMPUVaultAccountingDrains(t *testing.T) {
	env := shortLoopEnv(t, 64)
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline
	cfg.Policy = "mpu"
	cfg.MaxCycles = 50_000_000

	m := env.mem.Clone()
	alloc := mem.NewAllocTable()
	for _, r := range env.alloc.Ranges {
		alloc.Alloc(r.Name, r.Size)
	}
	sys := New(cfg, m, alloc)
	maxSeen := 0
	err := sys.RunWithTrace(env.launches, func(now int64) {
		for s := range sys.pendingVault {
			for v, p := range sys.pendingVault[s] {
				if p < 0 {
					t.Fatalf("pendingVault[%d][%d] negative at cycle %d", s, v, now)
				}
				if p > maxSeen {
					maxSeen = p
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	checkConservation(t, st)
	if st.OffloadsSent == 0 {
		t.Fatal("mpu policy never offloaded")
	}
	if maxSeen == 0 {
		t.Error("vault occupancy never observed nonzero despite offloads")
	}
	for s := range sys.pendingVault {
		for v, p := range sys.pendingVault[s] {
			if p != 0 {
				t.Errorf("pendingVault[%d][%d] = %d at quiescence, want 0", s, v, p)
			}
		}
	}
}

// splitLoopEnv is shortLoopEnv with a pad allocation wedged between a[] and
// b[] so the two streams home to different stacks under the baseline XOR
// interleave — every dry-run window then spans stacks.
func splitLoopEnv(t *testing.T, trips int, pad uint64) *workloadEnv {
	t.Helper()
	b := isa.NewBuilder("split", 5) // r0=a, r1=b, r2=out, r3=trips, r4=T
	b.Mov(5, isa.Sp(isa.SpGtid))
	b.MovI(6, 0)
	b.Mov(7, isa.R(5))
	b.MovF(8, 0)
	b.Label("top")
	b.Shl(9, isa.R(7), isa.Imm(2))
	b.Add(10, isa.R(0), isa.R(9))
	b.Ld(11, isa.R(10), 0)
	b.Add(12, isa.R(1), isa.R(9))
	b.Ld(13, isa.R(12), 0)
	b.FMA(8, isa.R(11), isa.R(13), isa.R(8))
	b.Add(7, isa.R(7), isa.R(4))
	b.Add(6, isa.R(6), isa.Imm(1))
	b.Setp(14, isa.CmpLT, isa.R(6), isa.R(3))
	b.BraIf(isa.R(14), "top")
	b.Shl(15, isa.R(5), isa.Imm(2))
	b.Add(15, isa.R(2), isa.R(15))
	b.St(isa.R(15), 0, isa.R(8))
	b.Exit()
	k := b.MustBuild()

	env := &workloadEnv{mem: mem.NewFlat(), alloc: mem.NewAllocTable()}
	threads := 64 * 128
	n := threads * trips
	a := env.alloc.Alloc("a", uint64(4*n))
	env.alloc.Alloc("pad", pad)
	bb := env.alloc.Alloc("b", uint64(4*n))
	out := env.alloc.Alloc("out", uint64(4*threads))
	env.launches = []exec.Launch{{
		Kernel: k, Grid: 64, Block: 128,
		Params: []uint64{a, bb, out, uint64(trips), uint64(threads)},
	}}
	return env
}

// TestCodaGatesSplitInstances: with a[] and b[] homed to different stacks,
// coda must veto the split instances while tom (co-location-blind) sends
// them.
func TestCodaGatesSplitInstances(t *testing.T) {
	cfg := DefaultConfig()
	pol := mapping.Baseline{Stacks: cfg.Stacks}
	var env *workloadEnv
	for pad := uint64(mem.AllocAlign); pad <= 1<<20; pad += mem.AllocAlign {
		e := splitLoopEnv(t, 64, pad)
		a, b := e.launches[0].Params[0], e.launches[0].Params[1]
		if pol.Stack(a) != pol.Stack(b) {
			env = e
			break
		}
	}
	if env == nil {
		t.Fatal("no pad separates a[] and b[] under the baseline interleave")
	}

	tomCfg := DefaultConfig()
	tomCfg.Mapping = MapBaseline
	tomCfg.Policy = "tom"
	tomStats := runSim(t, tomCfg, env).Stats()

	codaCfg := DefaultConfig()
	codaCfg.Mapping = MapBaseline
	codaCfg.Policy = "coda"
	codaStats := runSim(t, codaCfg, env).Stats()

	checkConservation(t, tomStats)
	checkConservation(t, codaStats)
	if tomStats.OffloadsSkippedSplit != 0 {
		t.Errorf("tom counted %d split skips; only coda vetoes on co-location",
			tomStats.OffloadsSkippedSplit)
	}
	if tomStats.OffloadsSent == 0 {
		t.Fatal("tom never offloaded the split workload")
	}
	if codaStats.OffloadsSkippedSplit == 0 {
		t.Error("coda never gated on co-location despite the cross-stack layout")
	}
	if codaStats.OffloadsSent >= tomStats.OffloadsSent {
		t.Errorf("coda sent %d >= tom's %d on a workload built to split",
			codaStats.OffloadsSent, tomStats.OffloadsSent)
	}
	t.Logf("tom sent=%d; coda sent=%d split=%d",
		tomStats.OffloadsSent, codaStats.OffloadsSent, codaStats.OffloadsSkippedSplit)
}
