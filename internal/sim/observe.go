package sim

import (
	"strconv"

	"repro/internal/compiler"
	"repro/internal/obs"
	"repro/internal/offload"
)

// obsState is the simulator's binding to an attached obs.Observer. Every
// metric handle is resolved once at construction so the per-cycle cost with
// an observer enabled is one comparison plus, at sampling boundaries, a few
// dozen series updates; with Config.Observer nil the hot path pays a single
// nil check.
//
// Invariant (tested): the per-interval traffic series and the lifecycle
// counters sum exactly to the corresponding sim.Stats totals — the series
// record deltas of the same cumulative link counters finalizeStats reads,
// and the counters are incremented at the same sites as their Stats twins.
type obsState struct {
	o     *obs.Observer
	every int64
	next  int64 // next sampling cycle

	// Per-interval off-chip traffic (byte deltas between samples).
	tx, rx, cross, pcie                 *obs.Series
	lastTX, lastRX, lastCross, lastPCIe uint64

	// Per-stack occupancy, sampled once per interval (instantaneous).
	pending []*obs.Series // pending-offload occupancy per stack
	txUtil  []*obs.Series // TX link sliding-window utilization
	rxUtil  []*obs.Series
	dramQ   []*obs.Series // vault queue + in-flight occupancy per stack
	l2mshrQ *obs.Series   // outstanding L2 misses
	l2bankQ *obs.Series   // transactions waiting in L2 bank queues
	learnQ  *obs.Series   // learning-phase instances observed so far

	// Offload lifecycle counters (mirror the sim.Stats fields exactly).
	candidates, sent, acks                 *obs.Counter
	skipBusy, skipFull, skipCond, skipALU  *obs.Counter
	skipNoDest, skipDestBound              *obs.Counter
	skipSplit, skipVaultFull               *obs.Counter
	invalidates, drainStalls, spawnCounter *obs.Counter
	// pcieSaved accumulates learning-phase PCIe bytes avoided by installing
	// a stored mapping (Stats.LearnPCIeSaved); only InstallMapping adds.
	pcieSaved *obs.Counter
}

// newObsState resolves every handle against the observer's registry.
func newObsState(cfg *Config) *obsState {
	o := cfg.Observer
	every := o.Interval()
	reg := o.Registry
	ob := &obsState{
		o:     o,
		every: every,
		next:  every,

		tx:    reg.Series("traffic.gpu_tx_bytes", every),
		rx:    reg.Series("traffic.gpu_rx_bytes", every),
		cross: reg.Series("traffic.cross_bytes", every),
		pcie:  reg.Series("traffic.pcie_bytes", every),

		l2mshrQ: reg.Series("l2.mshr_occupancy", every),
		l2bankQ: reg.Series("l2.bank_queue_occupancy", every),
		learnQ:  reg.Series("learn.instances_seen", every),

		candidates:    reg.Counter("offload.candidates"),
		sent:          reg.Counter("offload.sent"),
		acks:          reg.Counter("offload.acks"),
		skipBusy:      reg.Counter("offload.skipped_busy"),
		skipFull:      reg.Counter("offload.skipped_full"),
		skipCond:      reg.Counter("offload.skipped_cond"),
		skipALU:       reg.Counter("offload.skipped_alu"),
		skipNoDest:    reg.Counter("offload.skipped_nodest"),
		skipDestBound: reg.Counter("offload.skipped_destbound"),
		skipSplit:     reg.Counter("offload.skipped_split"),
		skipVaultFull: reg.Counter("offload.skipped_vaultfull"),
		invalidates:   reg.Counter("coherence.invalidates"),
		drainStalls:   reg.Counter("offload.drain_stalls"),
		spawnCounter:  reg.Counter("offload.spawns"),
		pcieSaved:     reg.Counter("learn.pcie_bytes_saved"),
	}
	for s := 0; s < cfg.Stacks; s++ {
		id := strconv.Itoa(s)
		ob.pending = append(ob.pending, reg.Series("stack."+id+".pending_offloads", every))
		ob.txUtil = append(ob.txUtil, reg.Series("link.tx"+id+".util", every))
		ob.rxUtil = append(ob.rxUtil, reg.Series("link.rx"+id+".util", every))
		ob.dramQ = append(ob.dramQ, reg.Series("dram.stack"+id+".occupancy", every))
	}
	return ob
}

// addTraffic records the byte deltas since the previous sample into the
// bucket containing cycle `at`.
func (ob *obsState) addTraffic(sys *System, at int64) {
	var tx, rx, cross uint64
	for s := 0; s < sys.cfg.Stacks; s++ {
		tx += sys.txLinks[s].BytesSent
		rx += sys.rxLinks[s].BytesSent
		for t := 0; t < sys.cfg.Stacks; t++ {
			if s != t {
				cross += sys.crossLinks[s][t].BytesSent
			}
		}
	}
	pcie := sys.pcieTX.BytesSent + sys.pcieRX.BytesSent
	ob.tx.Add(at, float64(tx-ob.lastTX))
	ob.rx.Add(at, float64(rx-ob.lastRX))
	ob.cross.Add(at, float64(cross-ob.lastCross))
	ob.pcie.Add(at, float64(pcie-ob.lastPCIe))
	ob.lastTX, ob.lastRX, ob.lastCross, ob.lastPCIe = tx, rx, cross, pcie
}

// sample runs at each interval boundary: attribute traffic deltas and
// occupancy readings to the interval that just ended.
func (ob *obsState) sample(sys *System, now int64) {
	ob.next = now + ob.every
	at := now - 1 // the closing cycle of the finished interval
	if at < 0 {
		at = 0
	}
	ob.addTraffic(sys, at)
	for s := 0; s < sys.cfg.Stacks; s++ {
		ob.pending[s].Add(at, float64(sys.pendingOffloads[s]))
		ob.txUtil[s].Add(at, sys.txLinks[s].Utilization(now))
		ob.rxUtil[s].Add(at, sys.rxLinks[s].Utilization(now))
		ob.dramQ[s].Add(at, float64(sys.stacks[s].occupancy()))
	}
	ob.l2mshrQ.Add(at, float64(len(sys.l2mshr)))
	ob.l2bankQ.Add(at, float64(sys.l2.queuedTxns()))
	ob.learnQ.Add(at, float64(sys.learnSeen))
}

// flush closes out the final partial interval so every traffic series sums
// exactly to its sim.Stats total. Called once from finalizeStats.
func (ob *obsState) flush(sys *System) {
	at := sys.now - 1
	if at < 0 {
		at = 0
	}
	ob.addTraffic(sys, at)
}

// obGate records one suppressed offload: the per-reason counter plus a gate
// trace event. dest < 0 means the gate fired before a destination stack was
// known (the conditional-trip check, or a failed destination dry run) and is
// carried into the event as Stack -1 — stack 0 is a real stack, so absence
// must be encoded explicitly, never by leaving the field zero.
// Callers go through System.gate, which also maintains the Stats twins and
// the per-PC decision table.
func (sys *System) obGate(now int64, sm *SM, cand *compiler.Candidate, dest int, reason string) {
	ob := sys.ob
	if ob == nil {
		return
	}
	switch reason {
	case offload.ReasonBusy:
		ob.skipBusy.Inc()
	case offload.ReasonFull:
		ob.skipFull.Inc()
	case offload.ReasonCond:
		ob.skipCond.Inc()
	case offload.ReasonALU:
		ob.skipALU.Inc()
	case offload.ReasonNoDest:
		ob.skipNoDest.Inc()
	case offload.ReasonDestBound:
		ob.skipDestBound.Inc()
	case offload.ReasonSplit:
		ob.skipSplit.Inc()
	case offload.ReasonVaultFull:
		ob.skipVaultFull.Inc()
	}
	if dest < 0 {
		dest = -1
	}
	ob.o.Emit(obs.Event{Cycle: now, Kind: obs.EvGate, SM: sm.id, Stack: dest,
		PC: cand.StartPC, Reason: reason})
}

// occupancy counts a stack's DRAM work: queued requests plus issued bursts
// whose completion is still pending, across all vaults.
func (s *stackNode) occupancy() int {
	n := 0
	for _, v := range s.vaults {
		snap := v.Snapshot()
		n += snap.Queued + snap.InFlight
	}
	return n
}
