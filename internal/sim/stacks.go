package sim

import (
	"repro/internal/dram"
	"repro/internal/link"
	"repro/internal/mapping"
)

func packetOf(bytes int, deliver func(now int64)) link.Packet {
	return link.Packet{Bytes: bytes, Deliver: deliver}
}

// stackNode is one 3D memory stack: a crossbar in front of 16 FR-FCFS
// vaults, plus one or more logic-layer SMs (Table 1 uses one; the paper's
// architecture permits more).
type stackNode struct {
	id     int
	sys    *System
	vaults []*dram.Vault
	sms    []*SM
	nextSM int // round-robin spawn target
}

// spawnTarget picks the logic-layer SM with the most free warp slots,
// ties broken round-robin: the scan starts at the rotating index (so an
// all-equal tie picks each SM in turn, not always the lowest index) and
// the rotation advances past the SM actually chosen.
func (s *stackNode) spawnTarget() *SM {
	n := len(s.sms)
	start := s.nextSM % n
	best := start
	for i := 1; i < n; i++ {
		if c := (start + i) % n; s.sms[c].freeSlots > s.sms[best].freeSlots {
			best = c
		}
	}
	s.nextSM = best + 1
	return s.sms[best]
}

func newStack(sys *System, id int) *stackNode {
	s := &stackNode{id: id, sys: sys}
	t := dram.DefaultTiming()
	t.BytesPerCycle = sys.cfg.VaultBW * sys.cfg.InternalBWRatio
	for v := 0; v < sys.cfg.VaultsPerStack; v++ {
		s.vaults = append(s.vaults, dram.NewVault(t))
	}
	return s
}

// serveLine routes a request through the crossbar into its vault, retrying
// while the vault queue is full, and calls done when the DRAM burst
// completes.
func (s *stackNode) serveLine(line uint64, storeBytes int, write bool, now int64, done func(int64)) {
	v := s.vaults[mapping.VaultOf(line, len(s.vaults))]
	bytes := s.sys.cfg.LineBytes
	if write && storeBytes > 0 {
		bytes = storeBytes
	}
	req := &dram.Request{Addr: line, Bytes: bytes, Write: write, Done: done}
	s.sys.wheel.afterEvent(s.sys.cfg.XbarLat, wheelEvent{kind: wevVaultTry, vault: v, req: req})
}

func (s *stackNode) tick(now int64, elide bool) {
	for _, v := range s.vaults {
		if elide {
			// A vault whose horizon is in the future has nothing to do
			// this cycle: no completion is due and issue arbitration cannot
			// accept a request (bank busy or bus backed up). -1 means idle.
			if t := v.NextEvent(); t < 0 || t > now {
				continue
			}
		} else if !v.Active() {
			continue
		}
		v.Tick(now)
	}
	for _, sm := range s.sms {
		if elide && sm.idleAt(now) {
			continue
		}
		sm.tick(now)
	}
}

func (s *stackNode) active() bool {
	for _, v := range s.vaults {
		if v.Active() {
			return true
		}
	}
	return false
}

// stackPort is the logic-layer SM's memory port: local addresses hit the
// stack's own vaults directly (internal TSV bandwidth, no off-chip link);
// remote addresses cross the stack-to-stack links (§5: remote data access).
type stackPort struct {
	node *stackNode
}

// accept implements memPort.
func (p *stackPort) accept(now int64, t *txn) bool {
	sys := p.node.sys
	home := sys.stackOf(t.line)
	if sys.forceColocate() {
		home = p.node.id
	}
	if home == p.node.id {
		// Local: crossbar + vault only.
		p.node.serveLine(t.line, t.bytes, t.store, now, func(done int64) {
			sys.wheel.afterEvent(2, wheelEvent{kind: wevTxnDone, t: t})
		})
		return true
	}
	// Remote: request over the cross-stack link, response back.
	reqBytes := reqHeaderBytes
	respBytes := sys.cfg.LineBytes + lineRespExtra
	if t.store {
		reqBytes += t.bytes
		respBytes = storeAckBytes
	}
	from, to := p.node.id, home
	sys.crossLinks[from][to].Send(packetOf(reqBytes, func(at int64) {
		sys.stacks[to].serveLine(t.line, t.bytes, t.store, at, func(done int64) {
			sys.crossLinks[to][from].Send(packetOf(respBytes, t.complete), done)
		})
	}), now)
	return true
}
