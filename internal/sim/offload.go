package sim

import (
	"repro/internal/compiler"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/obs"
)

// offloadJob carries one offloaded candidate instance: the request the
// Offload Controller packs (live-in registers, PCs, active mask — §4.2) and
// the acknowledgment state (live-out registers, dirty-line list — §4.4.2).
type offloadJob struct {
	cand    *compiler.Candidate
	srcSM   *SM
	srcWarp *smWarp
	dest    int
	mask    uint32
	winfo   exec.WarpInfo
	liveIn  [][isa.WarpSize]uint64
	liveOut [][isa.WarpSize]uint64
	dirty   map[uint64]struct{}
}

// gate records one suppressed offload everywhere it is accounted: the
// aggregate per-reason counter, the per-PC decision table, and (when an
// observer is attached) the metrics counter plus a gate trace event. Every
// gate site goes through here so the accounting stays exhaustive.
func (sys *System) gate(now int64, sm *SM, cand *compiler.Candidate, dest int, reason string) {
	switch reason {
	case "busy":
		sys.stats.OffloadsSkippedBusy++
	case "full":
		sys.stats.OffloadsSkippedFull++
	case "cond":
		sys.stats.OffloadsSkippedCond++
	case "alu":
		sys.stats.OffloadsSkippedALU++
	case "nodest":
		sys.stats.OffloadsSkippedNoDest++
	}
	sys.stats.PCStats.At(cand.StartPC).CountSkip(reason)
	sys.obGate(now, sm, cand, dest, reason)
}

// handleCandidateEntry runs when a main-SM warp reaches a candidate's start
// PC. It returns true when the warp was captured (offload in progress); on
// false the warp executes the region inline.
func (sys *System) handleCandidateEntry(sm *SM, sw *smWarp, cand *compiler.Candidate, now int64) bool {
	sys.stats.CandidateInstances++
	if ob := sys.ob; ob != nil {
		ob.candidates.Inc()
		ob.o.Emit(obs.Event{Cycle: now, Kind: obs.EvCandidate, SM: sm.id, PC: cand.StartPC})
	}
	if sys.learning {
		sys.stats.LearnEntries++
		sys.stats.PCStats.At(cand.StartPC).LearnEntries++
		sw.collect = &collectState{cand: cand}
		return false
	}
	switch sys.cfg.Offload {
	case OffloadOff:
		return false
	case OffloadIdeal:
		return sys.offloadIdeal(sm, sw, cand, now)
	}

	// Observe the leader lane's trip count for every conditional-hinted
	// candidate (§4.2 step 1); the per-PC record feeds compiler.Refine's
	// re-tagging even when the hint is below the offload threshold.
	trips := -1
	if cond := cand.Trip.Cond; cond != nil && !cand.Trip.Known {
		if lane := sw.w.LeaderLane(); lane >= 0 {
			ind := int64(sw.w.Regs[cond.IndReg][lane])
			var bound int64
			if cond.BoundIsReg {
				bound = int64(sw.w.Regs[cond.BoundReg][lane])
			}
			trips = cond.Trips(ind, bound)
			g := sys.stats.PCStats.At(cand.StartPC)
			g.TripObs++
			if trips > 0 {
				g.TripSum += uint64(trips)
			}
		}
	}

	// Conditional candidates: evaluate the compiler's hint against the
	// leader lane's registers (§4.2 dynamic decision step 1). No leader
	// lane means no destination could be derived either: count as nodest.
	if cand.Conditional() {
		if sw.w.LeaderLane() < 0 {
			sys.gate(now, sm, cand, -1, "nodest")
			return false
		}
		if trips < cand.Trip.Cond.MinTrips {
			sys.gate(now, sm, cand, -1, "cond")
			return false
		}
	}

	dest := sys.destStack(sw, cand)
	if dest < 0 {
		sys.gate(now, sm, cand, -1, "nodest")
		return false
	}

	if sys.cfg.Offload == OffloadControlled {
		// Extension (§6.4 future work): ALU-ratio-aware gating.
		if g := sys.cfg.ALUGate; g > 0 && cand.ALUFrac > g &&
			sys.pendingOffloads[dest] > sys.cfg.StackSMs*sys.cfg.StackWarps()/2 {
			sys.gate(now, sm, cand, dest, "alu")
			return false
		}
		// Step 2: channel-busy gating via the 2-bit tag (§3.3).
		th := sys.cfg.BusyThreshold
		if !cand.SavesTX && sys.txLinks[dest].Busy(th, now) {
			sys.gate(now, sm, cand, dest, "busy")
			return false
		}
		if !cand.SavesRX && sys.rxLinks[dest].Busy(th, now) {
			sys.gate(now, sm, cand, dest, "busy")
			return false
		}
		// Step 3: pending-offload limit = stack SM warp capacity.
		if sys.pendingOffloads[dest] >= sys.cfg.StackSMs*sys.cfg.StackWarps() {
			sys.gate(now, sm, cand, dest, "full")
			return false
		}
	}

	sys.pendingOffloads[dest]++
	if sys.cfg.Coherence && sw.pendingStores > 0 {
		// §4.4.2 step 1: push all memory update traffic to memory
		// before issuing the offload request.
		sw.drainCand = cand
		sw.drainDest = dest
		sm.unready(sw, wsWaitDrain)
		sys.stats.StoreDrainStalls++
		if sys.ob != nil {
			sys.ob.drainStalls.Inc()
		}
		return true
	}
	sys.launchOffload(sm, sw, cand, dest, now)
	return true
}

// launchOffload packs and sends the offload request.
func (sys *System) launchOffload(sm *SM, sw *smWarp, cand *compiler.Candidate, dest int, now int64) {
	sm.unready(sw, wsWaitOffload)
	job := &offloadJob{
		cand: cand, srcSM: sm, srcWarp: sw, dest: dest,
		mask: sw.w.ActiveMask(), winfo: sw.w.WInfo,
		dirty: make(map[uint64]struct{}),
	}
	// Copy live-in register lanes (the request payload).
	k := sw.w.Kernel
	job.liveIn = make([][isa.WarpSize]uint64, k.NumRegs)
	for r := 0; r < k.NumRegs; r++ {
		if cand.LiveIn&(1<<r) != 0 {
			job.liveIn[r] = sw.w.Regs[r]
		}
	}
	reqBytes := offloadHdrBytes + cand.NumLiveIn()*isa.WarpSize*regLaneBytes
	sys.stats.OffloadsSent++
	sys.stats.PCStats.At(cand.StartPC).Sent++
	if ob := sys.ob; ob != nil {
		ob.sent.Inc()
		ob.o.Emit(obs.Event{Cycle: now, Kind: obs.EvSend, SM: sm.id, Stack: dest,
			PC: cand.StartPC, Bytes: reqBytes})
	}
	sys.wheel.afterEvent(sys.cfg.OffloadPipeLat, wheelEvent{kind: wevSendOffload, job: job})
}

// offloadIdeal is the Fig. 2 idealization: zero-cost transfer and perfect
// co-location (forceColocate steers every access of the stack SM to its own
// stack). Stack warp capacity still applies — the idealization removes
// offload overheads, not the logic layer's execution resources.
func (sys *System) offloadIdeal(sm *SM, sw *smWarp, cand *compiler.Candidate, now int64) bool {
	dest := sys.destStack(sw, cand)
	if dest < 0 {
		sys.gate(now, sm, cand, -1, "nodest")
		return false
	}
	if sys.pendingOffloads[dest] >= sys.cfg.StackSMs*sys.cfg.StackWarps() {
		sys.gate(now, sm, cand, dest, "full")
		return false
	}
	sm.unready(sw, wsWaitOffload)
	job := &offloadJob{
		cand: cand, srcSM: sm, srcWarp: sw, dest: dest,
		mask: sw.w.ActiveMask(), winfo: sw.w.WInfo,
		dirty: make(map[uint64]struct{}),
	}
	k := sw.w.Kernel
	job.liveIn = make([][isa.WarpSize]uint64, k.NumRegs)
	for r := 0; r < k.NumRegs; r++ {
		if cand.LiveIn&(1<<r) != 0 {
			job.liveIn[r] = sw.w.Regs[r]
		}
	}
	sys.pendingOffloads[dest]++
	sys.stats.OffloadsSent++
	sys.stats.PCStats.At(cand.StartPC).Sent++
	if ob := sys.ob; ob != nil {
		ob.sent.Inc()
		ob.o.Emit(obs.Event{Cycle: now, Kind: obs.EvSend, SM: sm.id, Stack: dest,
			PC: cand.StartPC})
	}
	sm2 := sys.stacks[dest].spawnTarget()
	sm2.spawnQ = append(sm2.spawnQ, job)
	return true
}

// trySpawn starts queued offload jobs on free stack-SM warp slots.
func (sm *SM) trySpawn(now int64) {
	for len(sm.spawnQ) > 0 {
		if sm.freeSlots == 0 {
			if sm.sys.cfg.Offload != OffloadIdeal {
				return
			}
			// Ideal mode: oversubscribe.
		}
		job := sm.spawnQ[0]
		n := copy(sm.spawnQ, sm.spawnQ[1:])
		sm.spawnQ = sm.spawnQ[:n]
		sm.spawn(job, now)
		if sm.sys.cfg.Offload != OffloadIdeal {
			return // one spawn per cycle
		}
	}
}

func (sm *SM) spawn(job *offloadJob, now int64) {
	if ob := sm.sys.ob; ob != nil {
		ob.spawnCounter.Inc()
		ob.o.Emit(obs.Event{Cycle: now, Kind: obs.EvSpawn, SM: sm.id, Stack: job.dest,
			PC: job.cand.StartPC})
	}
	if sm.sys.cfg.Coherence {
		// §4.4.2 step 2: invalidate the stack SM's private cache before
		// running the offloaded block.
		sm.l1.InvalidateAll()
	}
	cand := job.cand
	md := job.srcWarp.md
	w := exec.NewRegionWarp(md.Kernel, md.Info, job.winfo, sm.sys.mem, job.mask,
		cand.StartPC, cand.EndPC, cand.LiveIn, job.liveIn)
	slot := sm.findFreeSlot()
	sw := &smWarp{sm: sm, slot: slot, w: w, md: md, job: job}
	sm.warps[slot] = sw
	// Ideal-mode oversubscription spawns past capacity without consuming a
	// slot; remember which warps took one so retirement releases exactly
	// what was taken and freeSlots can never exceed the configured slots.
	if sm.freeSlots > 0 {
		sm.freeSlots--
		sw.tookSlot = true
	}
	sm.setReady(sw)
}

// sendOffloadAck fires when a stack warp finishes its region and its
// write-through stores have drained: live-out registers and the dirty-line
// list travel back on the RX channel.
func (sys *System) sendOffloadAck(sw *smWarp, now int64) {
	sm := sw.sm
	job := sw.job
	sm.unready(sw, wsRetired)
	sm.warps[sw.slot] = nil
	if sw.tookSlot {
		sm.freeSlots++
	}

	cand := job.cand
	k := sw.w.Kernel
	job.liveOut = make([][isa.WarpSize]uint64, k.NumRegs)
	for r := 0; r < k.NumRegs; r++ {
		if cand.LiveOut&(1<<r) != 0 {
			job.liveOut[r] = sw.w.Regs[r]
		}
	}
	// The ack carries the same offload header as the request: per §4.4.2 it
	// must identify the requesting warp and region (see types.go).
	ackBytes := offloadHdrBytes + cand.NumLiveOut()*isa.WarpSize*regLaneBytes
	if sys.cfg.Coherence {
		ackBytes += len(job.dirty) * dirtyAddrBytes
	}
	sys.stats.OffloadsAcked++
	if ob := sys.ob; ob != nil {
		ob.acks.Inc()
		ob.o.Emit(obs.Event{Cycle: now, Kind: obs.EvAck, SM: sm.id, Stack: job.dest,
			PC: cand.StartPC, Bytes: ackBytes})
	}
	if sys.cfg.Offload == OffloadIdeal {
		sys.wheel.afterEvent(1, wheelEvent{kind: wevFinishOffload, job: job})
		return
	}
	sys.rxLinks[job.dest].Send(packetOf(ackBytes, func(at int64) {
		sys.finishOffload(job, at)
	}))
}

// finishOffload resumes the requesting warp: write live-outs, invalidate
// the dirty lines in the requester's L1 and the shared L2 (§4.4.2 step 3),
// and skip execution past the region.
func (sys *System) finishOffload(job *offloadJob, now int64) {
	sw := job.srcWarp
	sm := job.srcSM
	for r := range job.liveOut {
		if job.cand.LiveOut&(1<<r) != 0 {
			sw.w.Regs[r] = job.liveOut[r]
		}
	}
	invalidateCost := int64(0)
	if sys.cfg.Coherence && sys.cfg.Offload != OffloadIdeal {
		for line := range job.dirty {
			sm.l1.Invalidate(line)
			sys.l2.invalidate(line)
		}
		sys.stats.CoherenceInvalidates += uint64(len(job.dirty))
		if sys.ob != nil {
			sys.ob.invalidates.Add(uint64(len(job.dirty)))
		}
		invalidateCost = int64(len(job.dirty)+3) / 4
	}
	if ob := sys.ob; ob != nil {
		ob.o.Emit(obs.Event{Cycle: now, Kind: obs.EvFinish, SM: sm.id, Stack: job.dest,
			PC: job.cand.StartPC, N: len(job.dirty)})
	}
	sys.pendingOffloads[job.dest]--
	sw.w.SkipTo(job.cand.EndPC)
	sw.regionActive = nil
	sw.notReadyUntil = now + 1 + invalidateCost
	sw.state = wsWaitDep
	sm.reconsider(sw, now)
}

// destStack finds the memory stack the candidate's first global-memory
// access (leader lane) would touch, by a side-effect-free scalar dry run
// from the candidate entry (§4.2 footnote 4: the pipeline executes up to
// the first memory instruction to discover the destination).
func (sys *System) destStack(sw *smWarp, cand *compiler.Candidate) int {
	lane := sw.w.LeaderLane()
	if lane < 0 {
		return -1
	}
	k := sw.w.Kernel
	var regs [isa.MaxRegs]uint64
	for r := 0; r < k.NumRegs; r++ {
		regs[r] = sw.w.Regs[r][lane]
	}
	eval := func(o isa.Operand) uint64 {
		switch o.Kind {
		case isa.OpdReg:
			return regs[o.Reg]
		case isa.OpdImm:
			return uint64(o.Imm)
		case isa.OpdSpecial:
			return sw.w.SpecialValue(o.Sp, lane)
		}
		return 0
	}
	pc := cand.StartPC
	for steps := 0; steps < 512 && pc < cand.EndPC && pc >= cand.StartPC; steps++ {
		in := k.Instrs[pc]
		switch in.Op {
		case isa.OpLdGlobal, isa.OpStGlobal:
			addr := eval(in.A) + uint64(in.Imm)
			return sys.stackOf(addr &^ uint64(sys.cfg.LineBytes-1))
		case isa.OpBra:
			taken := in.A.Kind == isa.OpdNone
			if !taken {
				p := eval(in.A) != 0
				if in.PredNeg {
					p = !p
				}
				taken = p
			}
			if taken {
				pc = in.Target
			} else {
				pc++
			}
		case isa.OpSetp:
			v := compareScalarInt(in.Cmp, int64(eval(in.A)), int64(eval(in.B)))
			regs[in.Dst] = boolTo64(v)
			pc++
		case isa.OpFSetp:
			v := compareScalarFloat(in.Cmp, isa.F32FromBits(eval(in.A)), isa.F32FromBits(eval(in.B)))
			regs[in.Dst] = boolTo64(v)
			pc++
		case isa.OpExit, isa.OpBar, isa.OpLdShared, isa.OpStShared, isa.OpAtomAdd:
			return -1 // cannot occur in a legal candidate; bail out
		default:
			if in.HasDst {
				regs[in.Dst] = exec.ALUOp(in.Op, eval(in.A), eval(in.B), eval(in.C))
			}
			pc++
		}
	}
	return -1
}

func boolTo64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func compareScalarInt(c isa.Cmp, a, b int64) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	default:
		return a >= b
	}
}

func compareScalarFloat(c isa.Cmp, a, b float32) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	default:
		return a >= b
	}
}
