package sim

import (
	"repro/internal/compiler"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/offload"
)

// offloadJob carries one offloaded candidate instance: the request the
// Offload Controller packs (live-in registers, PCs, active mask — §4.2) and
// the acknowledgment state (live-out registers, dirty-line list — §4.4.2).
type offloadJob struct {
	cand    *compiler.Candidate
	srcSM   *SM
	srcWarp *smWarp
	dest    int
	vault   int // destination vault for vault-granular policies, else -1
	mask    uint32
	winfo   exec.WarpInfo
	liveIn  [][isa.WarpSize]uint64
	liveOut [][isa.WarpSize]uint64
	dirty   map[uint64]struct{}
}

// polEnv binds the simulator's state at one deciding cycle to the
// offload.Env interface the policy hooks consume.
type polEnv struct {
	sys *System
	now int64
}

func (e polEnv) Stacks() int               { return e.sys.cfg.Stacks }
func (e polEnv) Vaults() int               { return e.sys.cfg.VaultsPerStack }
func (e polEnv) StackOf(line uint64) int   { return e.sys.stackOf(line) }
func (e polEnv) VaultOf(line uint64) int   { return mapping.VaultOf(line, e.sys.cfg.VaultsPerStack) }
func (e polEnv) Pending(s int) int         { return e.sys.pendingOffloads[s] }
func (e polEnv) PendingVault(s, v int) int { return e.sys.pendingVault[s][v] }
func (e polEnv) StackCap() int             { return e.sys.cfg.StackSMs * e.sys.cfg.StackWarps() }
func (e polEnv) TXBusy(s int) bool         { return e.sys.txLinks[s].Busy(e.sys.cfg.BusyThreshold, e.now) }
func (e polEnv) RXBusy(s int) bool         { return e.sys.rxLinks[s].Busy(e.sys.cfg.BusyThreshold, e.now) }
func (e polEnv) ALUGate() float64          { return e.sys.cfg.ALUGate }
func (e polEnv) Controlled() bool          { return e.sys.cfg.Offload == OffloadControlled }

// gate records one suppressed offload everywhere it is accounted: the
// aggregate per-reason counter, the per-PC decision table, and (when an
// observer is attached) the metrics counter plus a gate trace event. Every
// gate site goes through here so the accounting stays exhaustive.
func (sys *System) gate(now int64, sm *SM, cand *compiler.Candidate, dest int, reason string) {
	switch reason {
	case offload.ReasonBusy:
		sys.stats.OffloadsSkippedBusy++
	case offload.ReasonFull:
		sys.stats.OffloadsSkippedFull++
	case offload.ReasonCond:
		sys.stats.OffloadsSkippedCond++
	case offload.ReasonALU:
		sys.stats.OffloadsSkippedALU++
	case offload.ReasonNoDest:
		sys.stats.OffloadsSkippedNoDest++
	case offload.ReasonDestBound:
		sys.stats.OffloadsSkippedDestBound++
	case offload.ReasonSplit:
		sys.stats.OffloadsSkippedSplit++
	case offload.ReasonVaultFull:
		sys.stats.OffloadsSkippedVaultFull++
	}
	sys.stats.PCStats.At(cand.StartPC).CountSkip(reason)
	sys.obGate(now, sm, cand, dest, reason)
}

// handleCandidateEntry runs when a main-SM warp reaches a candidate's start
// PC: the policy hook sequence (PreGate → dry run → Dest → Gate) decides
// whether the instance offloads. It returns true when the warp was captured
// (offload in progress); on false the warp executes the region inline.
func (sys *System) handleCandidateEntry(sm *SM, sw *smWarp, cand *compiler.Candidate, now int64) bool {
	sys.stats.CandidateInstances++
	if ob := sys.ob; ob != nil {
		ob.candidates.Inc()
		ob.o.Emit(obs.Event{Cycle: now, Kind: obs.EvCandidate, SM: sm.id, PC: cand.StartPC})
	}
	if sys.learning {
		sys.stats.LearnEntries++
		sys.stats.PCStats.At(cand.StartPC).LearnEntries++
		sw.collect = &collectState{cand: cand}
		return false
	}
	if sys.cfg.Offload == OffloadOff {
		return false
	}

	env := polEnv{sys: sys, now: now}
	req := offload.Request{
		Cand: cand, Trips: -1, Stack: -1, Vault: -1,
		HasLeader: sw.w.LeaderLane() >= 0,
	}

	// Observe the leader lane's trip count for every conditional-hinted
	// candidate (§4.2 step 1); the per-PC record feeds compiler.Refine's
	// re-tagging even when the hint is below the offload threshold.
	if sys.ptraits.ObserveTrips {
		if cond := cand.Trip.Cond; cond != nil && !cand.Trip.Known {
			if lane := sw.w.LeaderLane(); lane >= 0 {
				ind := int64(sw.w.Regs[cond.IndReg][lane])
				var bound int64
				if cond.BoundIsReg {
					bound = int64(sw.w.Regs[cond.BoundReg][lane])
				}
				req.Trips = cond.Trips(ind, bound)
				g := sys.stats.PCStats.At(cand.StartPC)
				g.TripObs++
				if req.Trips > 0 {
					g.TripSum += uint64(req.Trips)
				}
			}
		}
	}

	if r := sys.policy.PreGate(env, &req); r != "" {
		sys.gate(now, sm, cand, -1, r)
		return false
	}

	req.Lines, req.Bounded = sys.dryRun(sw, cand, sys.ptraits.DryRunAccesses)
	if r := sys.policy.Dest(env, &req); r != "" {
		sys.gate(now, sm, cand, -1, r)
		return false
	}
	dest := req.Stack

	if r := sys.policy.Gate(env, &req); r != "" {
		sys.gate(now, sm, cand, dest, r)
		return false
	}

	if sys.ptraits.ZeroCost {
		// Zero-cost transport: the job materializes in the destination
		// stack's spawn queue this cycle, skipping the offload pipeline,
		// the TX link, and the store drain.
		sm.unready(sw, wsWaitOffload)
		job := sys.buildJob(sm, sw, cand, dest, req.Vault)
		sys.pendingOffloads[dest]++
		sys.stats.OffloadsSent++
		sys.stats.PCStats.At(cand.StartPC).Sent++
		if ob := sys.ob; ob != nil {
			ob.sent.Inc()
			ob.o.Emit(obs.Event{Cycle: now, Kind: obs.EvSend, SM: sm.id, Stack: dest,
				PC: cand.StartPC})
		}
		sm2 := sys.stacks[dest].spawnTarget()
		sm2.spawnQ = append(sm2.spawnQ, job)
		return true
	}

	sys.pendingOffloads[dest]++
	if req.Vault >= 0 {
		sys.pendingVault[dest][req.Vault]++
	}
	if sys.cfg.Coherence && sw.pendingStores > 0 {
		// §4.4.2 step 1: push all memory update traffic to memory
		// before issuing the offload request.
		sw.drainCand = cand
		sw.drainDest = dest
		sw.drainVault = req.Vault
		sm.unready(sw, wsWaitDrain)
		sys.stats.StoreDrainStalls++
		if sys.ob != nil {
			sys.ob.drainStalls.Inc()
		}
		return true
	}
	sys.launchOffload(sm, sw, cand, dest, req.Vault, now)
	return true
}

// buildJob packs one offload request: warp identity, active mask, and the
// live-in register lanes (the request payload).
func (sys *System) buildJob(sm *SM, sw *smWarp, cand *compiler.Candidate, dest, vault int) *offloadJob {
	job := &offloadJob{
		cand: cand, srcSM: sm, srcWarp: sw, dest: dest, vault: vault,
		mask: sw.w.ActiveMask(), winfo: sw.w.WInfo,
		dirty: make(map[uint64]struct{}),
	}
	k := sw.w.Kernel
	job.liveIn = make([][isa.WarpSize]uint64, k.NumRegs)
	for r := 0; r < k.NumRegs; r++ {
		if cand.LiveIn&(1<<r) != 0 {
			job.liveIn[r] = sw.w.Regs[r]
		}
	}
	return job
}

// launchOffload packs and sends the offload request.
func (sys *System) launchOffload(sm *SM, sw *smWarp, cand *compiler.Candidate, dest, vault int, now int64) {
	sm.unready(sw, wsWaitOffload)
	job := sys.buildJob(sm, sw, cand, dest, vault)
	reqBytes := offloadHdrBytes + cand.NumLiveIn()*isa.WarpSize*regLaneBytes
	sys.stats.OffloadsSent++
	sys.stats.PCStats.At(cand.StartPC).Sent++
	if ob := sys.ob; ob != nil {
		ob.sent.Inc()
		ob.o.Emit(obs.Event{Cycle: now, Kind: obs.EvSend, SM: sm.id, Stack: dest,
			PC: cand.StartPC, Bytes: reqBytes})
	}
	lat := sys.cfg.OffloadPipeLat
	if sys.ptraits.SpawnLat > 0 {
		lat = sys.ptraits.SpawnLat
	}
	sys.wheel.afterEvent(lat, wheelEvent{kind: wevSendOffload, job: job})
}

// trySpawn starts queued offload jobs on free stack-SM warp slots.
func (sm *SM) trySpawn(now int64) {
	for len(sm.spawnQ) > 0 {
		if sm.freeSlots == 0 {
			if !sm.sys.ptraits.ZeroCost {
				return
			}
			// Zero-cost (ideal) mode: oversubscribe.
		}
		job := sm.spawnQ[0]
		n := copy(sm.spawnQ, sm.spawnQ[1:])
		sm.spawnQ = sm.spawnQ[:n]
		sm.spawn(job, now)
		if !sm.sys.ptraits.ZeroCost {
			return // one spawn per cycle
		}
	}
}

func (sm *SM) spawn(job *offloadJob, now int64) {
	if ob := sm.sys.ob; ob != nil {
		ob.spawnCounter.Inc()
		ob.o.Emit(obs.Event{Cycle: now, Kind: obs.EvSpawn, SM: sm.id, Stack: job.dest,
			PC: job.cand.StartPC})
	}
	if sm.sys.cfg.Coherence {
		// §4.4.2 step 2: invalidate the stack SM's private cache before
		// running the offloaded block.
		sm.l1.InvalidateAll()
	}
	cand := job.cand
	md := job.srcWarp.md
	w := exec.NewRegionWarp(md.Kernel, md.Info, job.winfo, sm.sys.mem, job.mask,
		cand.StartPC, cand.EndPC, cand.LiveIn, job.liveIn)
	slot := sm.findFreeSlot()
	sw := &smWarp{sm: sm, slot: slot, w: w, md: md, job: job}
	sm.warps[slot] = sw
	// Ideal-mode oversubscription spawns past capacity without consuming a
	// slot; remember which warps took one so retirement releases exactly
	// what was taken and freeSlots can never exceed the configured slots.
	if sm.freeSlots > 0 {
		sm.freeSlots--
		sw.tookSlot = true
	}
	sm.setReady(sw)
}

// sendOffloadAck fires when a stack warp finishes its region and its
// write-through stores have drained: live-out registers and the dirty-line
// list travel back on the RX channel.
func (sys *System) sendOffloadAck(sw *smWarp, now int64) {
	sm := sw.sm
	job := sw.job
	sm.unready(sw, wsRetired)
	sm.warps[sw.slot] = nil
	if sw.tookSlot {
		sm.freeSlots++
	}

	cand := job.cand
	k := sw.w.Kernel
	job.liveOut = make([][isa.WarpSize]uint64, k.NumRegs)
	for r := 0; r < k.NumRegs; r++ {
		if cand.LiveOut&(1<<r) != 0 {
			job.liveOut[r] = sw.w.Regs[r]
		}
	}
	// The ack carries the same offload header as the request: per §4.4.2 it
	// must identify the requesting warp and region (see types.go).
	ackBytes := offloadHdrBytes + cand.NumLiveOut()*isa.WarpSize*regLaneBytes
	if sys.cfg.Coherence {
		ackBytes += len(job.dirty) * dirtyAddrBytes
	}
	sys.stats.OffloadsAcked++
	if ob := sys.ob; ob != nil {
		ob.acks.Inc()
		ob.o.Emit(obs.Event{Cycle: now, Kind: obs.EvAck, SM: sm.id, Stack: job.dest,
			PC: cand.StartPC, Bytes: ackBytes})
	}
	if sys.ptraits.ZeroCost {
		sys.wheel.afterEvent(1, wheelEvent{kind: wevFinishOffload, job: job})
		return
	}
	sys.rxLinks[job.dest].Send(packetOf(ackBytes, func(at int64) {
		sys.finishOffload(job, at)
	}), now)
}

// finishOffload resumes the requesting warp: write live-outs, invalidate
// the dirty lines in the requester's L1 and the shared L2 (§4.4.2 step 3),
// and skip execution past the region.
func (sys *System) finishOffload(job *offloadJob, now int64) {
	sw := job.srcWarp
	sm := job.srcSM
	for r := range job.liveOut {
		if job.cand.LiveOut&(1<<r) != 0 {
			sw.w.Regs[r] = job.liveOut[r]
		}
	}
	invalidateCost := int64(0)
	if sys.cfg.Coherence && !sys.ptraits.ZeroCost {
		for line := range job.dirty {
			sm.l1.Invalidate(line)
			sys.l2.invalidate(line)
		}
		sys.stats.CoherenceInvalidates += uint64(len(job.dirty))
		if sys.ob != nil {
			sys.ob.invalidates.Add(uint64(len(job.dirty)))
		}
		invalidateCost = int64(len(job.dirty)+3) / 4
	}
	if ob := sys.ob; ob != nil {
		ob.o.Emit(obs.Event{Cycle: now, Kind: obs.EvFinish, SM: sm.id, Stack: job.dest,
			PC: job.cand.StartPC, N: len(job.dirty)})
	}
	sys.pendingOffloads[job.dest]--
	if job.vault >= 0 {
		sys.pendingVault[job.dest][job.vault]--
	}
	sw.w.SkipTo(job.cand.EndPC)
	sw.regionActive = nil
	sw.notReadyUntil = now + 1 + invalidateCost
	sw.state = wsWaitDep
	sm.reconsider(sw, now)
}

// destStack finds the memory stack the candidate's first global-memory
// access (leader lane) would touch. Kept as the single-access view of
// dryRun for tests and diagnostics.
func (sys *System) destStack(sw *smWarp, cand *compiler.Candidate) int {
	lines, _ := sys.dryRun(sw, cand, 1)
	if len(lines) == 0 {
		return -1
	}
	return sys.stackOf(lines[0])
}

// dryRunSteps bounds the scalar dry run; a candidate whose first memory
// access lies beyond it is reported as bounded (gate reason destbound), not
// silently folded into "no destination".
const dryRunSteps = 512

// dryRun performs the side-effect-free scalar walk of §4.2 footnote 4 from
// the candidate entry on the leader lane, collecting up to maxAcc distinct
// global-memory line addresses (first access first). With maxAcc == 1 it
// stops at the first memory instruction — the paper's destination dry run;
// larger windows (CODA) keep walking, tracking which registers became
// unknowable (loaded from memory) and stopping at the first instruction
// whose outcome depends on one: a tainted address or branch predicate ends
// the trace rather than fabricating addresses.
//
// bounded reports that the step bound expired while still inside the
// region; it distinguishes a truncated trace from a genuinely access-free
// walk.
func (sys *System) dryRun(sw *smWarp, cand *compiler.Candidate, maxAcc int) (lines []uint64, bounded bool) {
	lane := sw.w.LeaderLane()
	if lane < 0 {
		return nil, false
	}
	if maxAcc < 1 {
		maxAcc = 1
	}
	k := sw.w.Kernel
	var regs [isa.MaxRegs]uint64
	var taint [isa.MaxRegs]bool
	for r := 0; r < k.NumRegs; r++ {
		regs[r] = sw.w.Regs[r][lane]
	}
	eval := func(o isa.Operand) uint64 {
		switch o.Kind {
		case isa.OpdReg:
			return regs[o.Reg]
		case isa.OpdImm:
			return uint64(o.Imm)
		case isa.OpdSpecial:
			return sw.w.SpecialValue(o.Sp, lane)
		}
		return 0
	}
	tainted := func(o isa.Operand) bool {
		return o.Kind == isa.OpdReg && taint[o.Reg]
	}
	record := func(addr uint64) bool {
		line := addr &^ uint64(sys.cfg.LineBytes-1)
		for _, l := range lines {
			if l == line {
				return len(lines) < maxAcc
			}
		}
		lines = append(lines, line)
		return len(lines) < maxAcc
	}
	pc := cand.StartPC
	for steps := 0; pc < cand.EndPC && pc >= cand.StartPC; steps++ {
		if steps >= dryRunSteps {
			return lines, true
		}
		in := k.Instrs[pc]
		switch in.Op {
		case isa.OpLdGlobal, isa.OpStGlobal:
			if tainted(in.A) {
				return lines, false // unknowable address: stop the trace
			}
			if !record(eval(in.A) + uint64(in.Imm)) {
				return lines, false
			}
			if in.Op == isa.OpLdGlobal && in.HasDst {
				taint[in.Dst] = true // loaded value is unknowable
			}
			pc++
		case isa.OpBra:
			taken := in.A.Kind == isa.OpdNone
			if !taken {
				if tainted(in.A) {
					return lines, false // unknowable predicate: stop
				}
				p := eval(in.A) != 0
				if in.PredNeg {
					p = !p
				}
				taken = p
			}
			if taken {
				pc = in.Target
			} else {
				pc++
			}
		case isa.OpSetp:
			if tainted(in.A) || tainted(in.B) {
				taint[in.Dst] = true
			} else {
				v := compareScalarInt(in.Cmp, int64(eval(in.A)), int64(eval(in.B)))
				regs[in.Dst] = boolTo64(v)
				taint[in.Dst] = false
			}
			pc++
		case isa.OpFSetp:
			if tainted(in.A) || tainted(in.B) {
				taint[in.Dst] = true
			} else {
				v := compareScalarFloat(in.Cmp, isa.F32FromBits(eval(in.A)), isa.F32FromBits(eval(in.B)))
				regs[in.Dst] = boolTo64(v)
				taint[in.Dst] = false
			}
			pc++
		case isa.OpExit, isa.OpBar, isa.OpLdShared, isa.OpStShared, isa.OpAtomAdd:
			return lines, false // cannot occur in a legal candidate; bail out
		default:
			if in.HasDst {
				if tainted(in.A) || tainted(in.B) || tainted(in.C) {
					taint[in.Dst] = true
				} else {
					regs[in.Dst] = exec.ALUOp(in.Op, eval(in.A), eval(in.B), eval(in.C))
					taint[in.Dst] = false
				}
			}
			pc++
		}
	}
	return lines, false
}

func boolTo64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func compareScalarInt(c isa.Cmp, a, b int64) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	default:
		return a >= b
	}
}

func compareScalarFloat(c isa.Cmp, a, b float32) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	default:
		return a >= b
	}
}
