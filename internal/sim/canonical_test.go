package sim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestCanonicalCoversEveryParameter: every non-runtime Config field must
// appear in the canonical string, so no parameter can silently stop
// participating in cache invalidation.
func TestCanonicalCoversEveryParameter(t *testing.T) {
	c := DefaultConfig()
	s := c.Canonical()
	typ := reflect.TypeOf(c)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Name == "Observer" {
			if strings.Contains(s, "Observer=") {
				t.Error("canonical form must exclude the Observer hook")
			}
			continue
		}
		if !strings.Contains(s, f.Name+"=") {
			t.Errorf("canonical form omits field %s", f.Name)
		}
	}
}

// TestCanonicalDistinguishesConfigs: changing any parameter must change the
// canonical form; attaching an observer must not.
func TestCanonicalDistinguishesConfigs(t *testing.T) {
	base := DefaultConfig()
	if base.Canonical() != DefaultConfig().Canonical() {
		t.Fatal("canonical form is not deterministic")
	}
	if base.Canonical() == BaselineConfig().Canonical() {
		t.Error("baseline and TOM configs must differ")
	}
	mod := base
	mod.CrossStackBW *= 0.25
	if mod.Canonical() == base.Canonical() {
		t.Error("float field change must alter the canonical form")
	}
	mod2 := base
	mod2.Coherence = false
	if mod2.Canonical() == base.Canonical() {
		t.Error("bool field change must alter the canonical form")
	}
	observed := base
	observed.Observer = obs.New()
	if observed.Canonical() != base.Canonical() {
		t.Error("attaching an observer must not alter the canonical form")
	}
}

// TestDrainError pins the drain-correctness check: clean stats pass, while
// in-flight offloads or a sent/ack mismatch fail with a descriptive error.
func TestDrainError(t *testing.T) {
	ok := Stats{OffloadsSent: 10, OffloadsAcked: 10}
	if err := ok.DrainError(); err != nil {
		t.Errorf("clean stats must drain: %v", err)
	}
	stuck := Stats{OffloadsSent: 10, OffloadsAcked: 9, InFlightOffloads: 1}
	if err := stuck.DrainError(); err == nil || !strings.Contains(err.Error(), "in flight") {
		t.Errorf("in-flight offloads must fail: %v", err)
	}
	mismatch := Stats{OffloadsSent: 10, OffloadsAcked: 9}
	if err := mismatch.DrainError(); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("sent/ack mismatch must fail: %v", err)
	}
}
