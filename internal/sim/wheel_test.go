package sim

import (
	"testing"
	"testing/quick"
)

func TestWheelFiresAtExactCycle(t *testing.T) {
	w := newWheel(&System{})
	fired := map[int64]int64{}
	now := int64(0)
	schedule := func(delay int64) {
		at := now + delay
		w.after(delay, func(fireNow int64) { fired[at] = fireNow })
	}
	schedule(1)
	schedule(5)
	schedule(wheelHorizon - 1)
	for ; now < wheelHorizon+10; now++ {
		w.tick(now)
	}
	for at, got := range fired {
		if got != at {
			t.Errorf("event scheduled for %d fired at %d", at, got)
		}
	}
	if len(fired) != 3 {
		t.Errorf("fired %d events, want 3", len(fired))
	}
	if w.pending() != 0 {
		t.Errorf("pending = %d after drain", w.pending())
	}
}

func TestWheelZeroDelayClamped(t *testing.T) {
	w := newWheel(&System{})
	fired := int64(-1)
	w.tick(0)
	w.after(0, func(now int64) { fired = now })
	for now := int64(1); now < 4; now++ {
		w.tick(now)
	}
	if fired != 1 {
		t.Errorf("zero delay fired at %d, want 1 (clamped)", fired)
	}
}

// TestWheelOverflowFiresExactly: delays at and beyond the horizon no longer
// panic — they park in the overflow bucket and fire at the exact cycle once
// re-filed into range. Long modeled latencies (scaled PCIe, future workload
// sweeps) are legitimate configs, not crashes.
func TestWheelOverflowFiresExactly(t *testing.T) {
	w := newWheel(&System{})
	fired := map[int64]int64{}
	schedule := func(delay int64) {
		at := delay // scheduled at now=0
		w.after(delay, func(fireNow int64) { fired[at] = fireNow })
	}
	schedule(wheelHorizon)     // exactly at the horizon
	schedule(wheelHorizon + 1) // just beyond
	schedule(10 * wheelHorizon)
	if w.pending() != 3 {
		t.Fatalf("pending = %d, want 3", w.pending())
	}
	for now := int64(0); now <= 10*wheelHorizon+5; now++ {
		w.tick(now)
	}
	for _, at := range []int64{wheelHorizon, wheelHorizon + 1, 10 * wheelHorizon} {
		if got, ok := fired[at]; !ok {
			t.Errorf("overflow event for cycle %d never fired", at)
		} else if got != at {
			t.Errorf("overflow event scheduled for %d fired at %d", at, got)
		}
	}
	if w.pending() != 0 {
		t.Errorf("pending = %d after drain", w.pending())
	}
}

// TestWheelOverflowSurvivesSkippedCycles: the event-driven loop may jump
// straight to nextDue; overflow events must re-file and fire under that
// tick pattern too.
func TestWheelOverflowSurvivesSkippedCycles(t *testing.T) {
	w := newWheel(&System{})
	var firedAt int64 = -1
	w.after(3*wheelHorizon+7, func(now int64) { firedAt = now })
	for now := w.nextDue(); now >= 0; now = w.nextDue() {
		w.tick(now)
	}
	if firedAt != 3*wheelHorizon+7 {
		t.Errorf("fired at %d, want %d", firedAt, int64(3*wheelHorizon+7))
	}
}

func TestWheelNextDue(t *testing.T) {
	w := newWheel(&System{})
	if w.nextDue() != -1 {
		t.Errorf("empty wheel nextDue = %d, want -1", w.nextDue())
	}
	w.after(37, func(int64) {})
	if got := w.nextDue(); got != 37 {
		t.Errorf("nextDue = %d, want 37", got)
	}
	w.after(2*wheelHorizon, func(int64) {})
	if got := w.nextDue(); got != 37 {
		t.Errorf("nextDue with overflow = %d, want 37", got)
	}
	w.tick(37)
	if got := w.nextDue(); got != 2*wheelHorizon {
		t.Errorf("nextDue after near event = %d, want %d", got, int64(2*wheelHorizon))
	}
}

func TestWheelCascading(t *testing.T) {
	// Events scheduled from within events must land on later cycles.
	w := newWheel(&System{})
	var order []int64
	w.after(2, func(now int64) {
		order = append(order, now)
		w.after(3, func(now2 int64) { order = append(order, now2) })
	})
	for now := int64(0); now < 10; now++ {
		w.tick(now)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 5 {
		t.Errorf("cascade order = %v, want [2 5]", order)
	}
}

func TestBitsetBasics(t *testing.T) {
	b := newBitset(192)
	if b.any() || b.first() != -1 {
		t.Error("fresh bitset should be empty")
	}
	for _, i := range []int{0, 63, 64, 191} {
		b.set(i)
		if !b.get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.first() != 0 {
		t.Errorf("first = %d, want 0", b.first())
	}
	b.clear(0)
	if b.first() != 63 {
		t.Errorf("first = %d, want 63", b.first())
	}
	b.clear(63)
	b.clear(64)
	b.clear(191)
	if b.any() {
		t.Error("bitset should be empty again")
	}
}

func TestBitsetFirstIsMinimum(t *testing.T) {
	f := func(raw []uint16) bool {
		b := newBitset(192)
		min := -1
		for _, r := range raw {
			i := int(r) % 192
			b.set(i)
			if min < 0 || i < min {
				min = i
			}
		}
		if min < 0 {
			return b.first() == -1
		}
		return b.first() == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
