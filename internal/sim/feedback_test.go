package sim

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
)

// whileLoopEnv builds a while-shaped workload: the loop tests its bound at
// the top and its latch is an unconditional branch, so analyzeTrips cannot
// derive a conditional hint (no `bra p, top` latch) and the candidate
// carries TripInfo{}. With n == 0 every warp enters the region, the scalar
// dry run falls out of the loop before reaching a memory instruction, and
// destStack returns -1 — the silent-failure path this PR turns into an
// accounted "nodest" gate. Eight loads per iteration keep the block
// beneficial at trips=1 (8*16.5 > (3+1)*32) so the candidate survives
// static marking.
func whileLoopEnv(t testing.TB, ctas, n int) *workloadEnv {
	t.Helper()
	b := isa.NewBuilder("whileloop", 3) // r0=a, r1=out, r2=n
	b.Mov(5, isa.Sp(isa.SpGtid))
	b.MovI(6, 0) // k
	b.Label("top")
	b.Setp(7, isa.CmpLT, isa.R(6), isa.R(2))
	b.BraIfNot(isa.R(7), "end")
	b.Shl(8, isa.R(6), isa.Imm(2))
	b.Add(9, isa.R(0), isa.R(8))
	b.Ld(10, isa.R(9), 0)
	b.Ld(11, isa.R(9), 4)
	b.Ld(12, isa.R(9), 8)
	b.Ld(13, isa.R(9), 12)
	b.Ld(14, isa.R(9), 16)
	b.Ld(15, isa.R(9), 20)
	b.Ld(16, isa.R(9), 24)
	b.Ld(17, isa.R(9), 28)
	b.Add(6, isa.R(6), isa.Imm(1))
	b.Bra("top")
	b.Label("end")
	b.Shl(18, isa.R(5), isa.Imm(2))
	b.Add(19, isa.R(1), isa.R(18))
	b.St(isa.R(19), 0, isa.R(6))
	b.Exit()
	k := b.MustBuild()

	env := &workloadEnv{mem: mem.NewFlat(), alloc: mem.NewAllocTable()}
	threads := ctas * 128
	aBytes := 4*n + 32 // slack for the 28 B lookahead of the last iteration
	a := env.alloc.Alloc("a", uint64(aBytes))
	out := env.alloc.Alloc("out", uint64(4*threads))
	for i := 0; i < aBytes/4; i++ {
		env.mem.Store4(a+uint64(4*i), uint32(i%331))
	}
	env.launches = []exec.Launch{{
		Kernel: k, Grid: ctas, Block: 128,
		Params: []uint64{a, out, uint64(n)},
	}}
	return env
}

// TestNoDestGateCountedAndTraced: a failed destination dry run must be
// counted (Stats + per-PC table), traced (EvGate "nodest"), and must leave
// the warp running the region inline with correct results. Before this PR
// the destStack failure fell through silently, leaving CandidateInstances
// unreconcilable with the gate counters.
func TestNoDestGateCountedAndTraced(t *testing.T) {
	env := whileLoopEnv(t, 8, 0) // zero trips: every dry run exits the region
	want := refMem(t, env)
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline // learning off: every entry is a gate decision
	o := obs.New()
	sink := &obs.CollectSink{}
	o.Trace = sink
	cfg.Observer = o
	sys := runSim(t, cfg, env)
	if ok, addr := mem.Equal(want, sys.mem); !ok {
		t.Fatalf("nodest-gated run diverged from reference at %#x", addr)
	}
	st := sys.Stats()
	if st.CandidateInstances == 0 {
		t.Fatal("while loop was not marked as a candidate")
	}
	if st.OffloadsSent != 0 {
		t.Fatalf("zero-trip loop offloaded %d times", st.OffloadsSent)
	}
	if st.OffloadsSkippedNoDest != st.CandidateInstances {
		t.Errorf("nodest skips = %d, want every candidate instance (%d)",
			st.OffloadsSkippedNoDest, st.CandidateInstances)
	}
	// Per-PC attribution: one decision row, all nodest, gate rate 1.
	pcs := st.PCStats.PCs()
	if len(pcs) != 1 {
		t.Fatalf("PCStats rows = %d, want 1 (pcs %v)", len(pcs), pcs)
	}
	g := st.PCStats[pcs[0]]
	if g.SkippedNoDest != st.OffloadsSkippedNoDest || g.GateRate() != 1 {
		t.Errorf("per-PC row = %+v, want all-nodest with gate rate 1", g)
	}
	// Trace: one EvGate per skip, reason "nodest".
	nodest := 0
	for _, ev := range sink.Events() {
		if ev.Kind == obs.EvGate {
			if ev.Reason != "nodest" {
				t.Fatalf("unexpected gate reason %q", ev.Reason)
			}
			if ev.Stack != -1 {
				t.Fatalf("nodest gate carries stack %d, want -1 (no destination)", ev.Stack)
			}
			nodest++
		}
	}
	if uint64(nodest) != st.OffloadsSkippedNoDest {
		t.Errorf("nodest trace events = %d, stats say %d", nodest, st.OffloadsSkippedNoDest)
	}
	if reg := o.Registry; reg.Counter("offload.skipped_nodest").Value() != st.OffloadsSkippedNoDest {
		t.Errorf("metrics counter = %d, stats say %d",
			reg.Counter("offload.skipped_nodest").Value(), st.OffloadsSkippedNoDest)
	}
}

// TestPerPCTableMatchesAggregates: the per-PC decision table must sum
// exactly to the aggregate Stats counters, and every candidate entry must
// be accounted for — the conservation invariant
//
//	CandidateInstances == OffloadsSent + OffloadsSkipped() + LearnEntries
//
// that the nodest fix makes possible. Run with learning on (MapTransparent)
// so the LearnEntries term is exercised too.
func TestPerPCTableMatchesAggregates(t *testing.T) {
	env := streamEnv(t, 16, 16)
	// Each warp passes the candidate entry exactly once, and a single small
	// launch is fully absorbed by the learning phase; run the kernel twice
	// so the second launch exercises the post-learning gate path too.
	env.launches = append(env.launches, env.launches[0])
	cfg := DefaultConfig() // MapTransparent: learning phase included
	sys := runSim(t, cfg, env)
	st := sys.Stats()
	if st.OffloadsSent == 0 || st.LearnEntries == 0 {
		t.Fatalf("need sends (%d) and learn entries (%d) for the check to bite",
			st.OffloadsSent, st.LearnEntries)
	}
	var sent, cond, busy, full, alu, nodest, learn uint64
	for _, pc := range st.PCStats.PCs() {
		g := st.PCStats[pc]
		sent += g.Sent
		cond += g.SkippedCond
		busy += g.SkippedBusy
		full += g.SkippedFull
		alu += g.SkippedALU
		nodest += g.SkippedNoDest
		learn += g.LearnEntries
	}
	checks := []struct {
		name      string
		got, want uint64
	}{
		{"sent", sent, st.OffloadsSent},
		{"cond", cond, st.OffloadsSkippedCond},
		{"busy", busy, st.OffloadsSkippedBusy},
		{"full", full, st.OffloadsSkippedFull},
		{"alu", alu, st.OffloadsSkippedALU},
		{"nodest", nodest, st.OffloadsSkippedNoDest},
		{"learn", learn, st.LearnEntries},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("per-PC %s sums to %d, aggregate says %d", c.name, c.got, c.want)
		}
	}
	if got := st.OffloadsSent + st.OffloadsSkipped() + st.LearnEntries; got != st.CandidateInstances {
		t.Errorf("conservation broken: sent+skipped+learn = %d, candidate instances = %d",
			got, st.CandidateInstances)
	}
}

// TestFreeSlotsNeverExceedCapacity: regression for the ideal-mode slot
// asymmetry. Oversubscribed spawns take no slot, so their retirement must
// not mint one: after spawning capacity+K jobs and retiring all of them,
// freeSlots must equal the configured capacity exactly (the old code
// incremented unconditionally on ack and ended at capacity+K).
func TestFreeSlotsNeverExceedCapacity(t *testing.T) {
	env := shortLoopEnv(t, 64)
	cfg := DefaultConfig()
	cfg.Offload = OffloadIdeal
	cfg.Mapping = MapBaseline
	cfg.MaxCycles = 50_000_000
	m := env.mem.Clone()
	alloc := mem.NewAllocTable()
	for _, r := range env.alloc.Ranges {
		alloc.Alloc(r.Name, r.Size)
	}
	sys := New(cfg, m, alloc)
	k := env.launches[0].Kernel
	md, err := sys.metadata(k)
	if err != nil {
		t.Fatal(err)
	}
	cand := md.Candidates[0]
	// A source warp positioned at the candidate entry supplies live-in
	// registers and warp identity for the forged jobs.
	w := exec.NewWarp(k, md.Info, exec.WarpInfo{
		CtaID: 0, WarpInCTA: 0, NTid: 128, NCtaid: 64,
	}, m, nil, env.launches[0].Params)
	for w.PC() != cand.StartPC {
		w.Step()
	}
	liveIn := make([][isa.WarpSize]uint64, k.NumRegs)
	for r := 0; r < k.NumRegs; r++ {
		if cand.LiveIn&(1<<r) != 0 {
			liveIn[r] = w.Regs[r]
		}
	}
	stackSM := sys.stacks[0].sms[0]
	srcWarp := &smWarp{sm: stackSM, w: w, md: md}
	capSlots := cfg.StackWarps()
	if stackSM.freeSlots != capSlots {
		t.Fatalf("fresh stack SM has %d free slots, config says %d", stackSM.freeSlots, capSlots)
	}
	n := capSlots + 3
	for i := 0; i < n; i++ {
		stackSM.spawnQ = append(stackSM.spawnQ, &offloadJob{
			cand: cand, srcSM: stackSM, srcWarp: srcWarp, dest: 0,
			mask: w.ActiveMask(), winfo: w.WInfo, liveIn: liveIn,
			dirty: map[uint64]struct{}{},
		})
	}
	stackSM.trySpawn(1) // ideal mode drains the whole queue, oversubscribing
	if stackSM.freeSlots != 0 {
		t.Fatalf("freeSlots = %d after spawning %d jobs into %d slots, want 0",
			stackSM.freeSlots, n, capSlots)
	}
	spawned := append([]*smWarp(nil), stackSM.warps...)
	live := 0
	for _, sw := range spawned {
		if sw != nil {
			live++
		}
	}
	if live != n {
		t.Fatalf("ideal mode spawned %d warps, want all %d (oversubscription)", live, n)
	}
	// Retire every stack warp. The event wheel is never ticked, so the
	// scheduled finishOffload callbacks stay pending — only the slot
	// accounting of sendOffloadAck is under test here.
	for _, sw := range spawned {
		if sw == nil {
			continue
		}
		sw.w.SkipTo(cand.EndPC) // mark region complete
		sys.sendOffloadAck(sw, 2)
		if stackSM.freeSlots > capSlots {
			t.Fatalf("freeSlots = %d exceeds capacity %d mid-retirement",
				stackSM.freeSlots, capSlots)
		}
	}
	if stackSM.freeSlots != capSlots {
		t.Fatalf("freeSlots = %d after retiring all warps, want exactly %d",
			stackSM.freeSlots, capSlots)
	}
}

// TestGateFeedbackDemotesNoDestCandidate: the closed loop end to end at the
// sim layer. A profile run on the zero-trip workload attributes every
// decision to the candidate's PC as a nodest gate; feeding that table back
// through ApplyGateFeedback must demote the candidate in the next run, so
// the region executes inline with no candidate checks at all — and results
// stay correct.
func TestGateFeedbackDemotesNoDestCandidate(t *testing.T) {
	env := whileLoopEnv(t, 8, 0)
	want := refMem(t, env)
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline
	cfg.MaxCycles = 50_000_000

	profile := runSim(t, cfg, env)
	prof := profile.Stats().PCStats
	if len(prof) != 1 {
		t.Fatalf("profile produced %d PC rows, want 1", len(prof))
	}

	m := env.mem.Clone()
	alloc := mem.NewAllocTable()
	for _, r := range env.alloc.Ranges {
		alloc.Alloc(r.Name, r.Size)
	}
	sys := New(cfg, m, alloc)
	sys.ApplyGateFeedback(prof, compiler.DefaultRefineParams())
	if err := sys.Run(env.launches); err != nil {
		t.Fatal(err)
	}
	if ok, addr := mem.Equal(want, sys.mem); !ok {
		t.Fatalf("refined run diverged from reference at %#x", addr)
	}
	st := sys.Stats()
	if st.RefineDemoted != 1 {
		t.Errorf("RefineDemoted = %d, want 1", st.RefineDemoted)
	}
	if st.CandidateInstances != 0 {
		t.Errorf("demoted candidate still entered %d times", st.CandidateInstances)
	}
	if st.OffloadsSkippedNoDest != 0 {
		t.Errorf("refined run still hit %d nodest gates", st.OffloadsSkippedNoDest)
	}
}

// TestFeedbackCostModelGovernsMarking: with gate feedback installed, the
// initial candidate marking must evaluate the cost model of the installed
// RefineParams, not the package default — otherwise a non-default
// RefineParams.Cost would demote and re-tag candidates selected by a model
// it never sees (the cost-model drift this PR fixes). A cost model under
// which loads move no off-chip traffic makes the load-only while loop
// unprofitable, so the candidate must not be marked at all; and installing
// feedback whose Cost was left zero must fall back to the defaults rather
// than marking with a zero warp size.
func TestFeedbackCostModelGovernsMarking(t *testing.T) {
	env := whileLoopEnv(t, 2, 8)
	want := refMem(t, env)
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline
	cfg.MaxCycles = 50_000_000

	// Sanity: under the default model the loop is a candidate.
	base := runSim(t, cfg, env)
	if base.Stats().CandidateInstances == 0 {
		t.Fatal("while loop not marked under the default cost model; test env broken")
	}

	newSys := func() *System {
		m := env.mem.Clone()
		alloc := mem.NewAllocTable()
		for _, r := range env.alloc.Ranges {
			alloc.Alloc(r.Name, r.Size)
		}
		return New(cfg, m, alloc)
	}

	// Free loads: the 8-load loop body saves nothing, so marking under this
	// model must reject it. Before the fix metadata() analyzed with
	// DefaultCostParams regardless, and the candidate survived.
	stingy := compiler.DefaultRefineParams()
	stingy.Cost.MissLD = 0
	sys := newSys()
	sys.ApplyGateFeedback(compiler.GateProfile{}, stingy)
	if got := sys.costParams(); got != stingy.Cost {
		t.Fatalf("costParams = %+v, want installed %+v", got, stingy.Cost)
	}
	if err := sys.Run(env.launches); err != nil {
		t.Fatal(err)
	}
	if ok, addr := mem.Equal(want, sys.mem); !ok {
		t.Fatalf("run diverged from reference at %#x", addr)
	}
	if st := sys.Stats(); st.CandidateInstances != 0 {
		t.Errorf("candidate marked %d times under a cost model that rejects it "+
			"(marking ignored the installed model)", st.CandidateInstances)
	}

	// Zero-Cost guard: RefineParams with no cost model fall back to the
	// defaults (a zero WarpSize would otherwise mark garbage).
	bare := compiler.RefineParams{DemoteGateRate: 0.9, MinDecisions: 16}
	sys2 := newSys()
	sys2.ApplyGateFeedback(compiler.GateProfile{}, bare)
	if got := sys2.costParams(); got != compiler.DefaultCostParams() {
		t.Fatalf("zero-Cost feedback: costParams = %+v, want defaults", got)
	}
	if err := sys2.Run(env.launches); err != nil {
		t.Fatal(err)
	}
	if st := sys2.Stats(); st.CandidateInstances == 0 {
		t.Error("zero-Cost feedback suppressed marking entirely; defaults should apply")
	}
}
