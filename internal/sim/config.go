// Package sim assembles the full NDP GPU system of the paper and runs
// launches cycle by cycle: main-GPU SMs with L1s behind a banked shared L2,
// four 3D memory stacks (16 FR-FCFS vaults each) with one logic-layer SM
// per stack, unidirectional GPU↔stack and cross-stack links, the offload
// controller with dynamic aggressiveness control, and the learning-phase
// machinery of programmer-transparent data mapping.
//
// The model is "functional-first": instruction semantics come from
// internal/exec and are always exact; sim only decides when register values
// become visible to the pipeline and how many bytes cross each channel.
// A timing run therefore must end with the same memory image as the pure
// functional interpreter — an invariant the integration tests enforce.
package sim

import "repro/internal/obs"

// OffloadMode selects the NDP offloading policy under evaluation.
type OffloadMode int

// Offload policies (the paper's configurations in §6).
const (
	// OffloadOff: baseline GPU; candidates execute inline.
	OffloadOff OffloadMode = iota
	// OffloadIdeal: the Fig. 2 idealization — zero offload overhead,
	// unlimited stack warp slots, and perfect code/data co-location.
	OffloadIdeal
	// OffloadUncontrolled: always offload every candidate (no-ctrl).
	OffloadUncontrolled
	// OffloadControlled: dynamic offloading aggressiveness control (§3.3).
	OffloadControlled
)

// MappingMode selects the memory-stack address mapping.
type MappingMode int

// Mapping policies.
const (
	// MapBaseline: the bandwidth-maximizing XOR interleave (bmap).
	MapBaseline MappingMode = iota
	// MapTransparent: programmer-transparent data mapping (tmap): learn
	// the best consecutive-bit mapping from early candidate instances
	// and apply it to candidate-touched ranges only.
	MapTransparent
	// MapOracle: like tmap but with the oracle best bit chosen from a
	// profiling pass over all instances (the Fig. 3 idealization),
	// applied from the start with no learning-phase cost.
	MapOracle
	// MapFixedBit: force a specific consecutive-bit mapping for
	// candidate-touched ranges (mapping sweeps).
	MapFixedBit
)

// Config holds every model parameter. DefaultConfig mirrors Table 1.
type Config struct {
	// Observer, when non-nil, receives offload-lifecycle events and
	// per-interval occupancy/traffic samples (see internal/obs and
	// docs/OBSERVABILITY.md). Nil — the default — keeps the hot path free
	// of instrumentation beyond a single pointer check.
	Observer *obs.Observer

	// --- GPU organization ---
	MainSMs      int // SMs in the main GPU
	WarpsPerSM   int
	MaxCTAsPerSM int
	IssueWidth   int // warp-instructions issued per main SM per cycle
	// StackIssueWidth is the logic-layer SM's issue width. The paper's
	// NDP design point provisions the stack SM to exploit the stack's
	// full internal bandwidth (160 GB/s needs ~4 issue slots at typical
	// memory-instruction ratios).
	StackIssueWidth int

	// --- Memory stacks ---
	Stacks          int
	VaultsPerStack  int
	StackSMs        int     // logic-layer SMs per stack
	StackWarpMult   int     // warp-capacity multiplier for stack SMs (§6.4)
	InternalBWRatio float64 // vault bandwidth scale (1.0 = Table 1 2× external; 0.5 = §6.5 1× study)

	// --- Caches ---
	L1Bytes, L1Ways          int
	L2Bytes, L2Ways, L2Banks int
	LineBytes                int

	// --- Latencies (1.4 GHz core cycles) ---
	L1Lat, L2Lat, SharedLat    int64
	ALULat, FPLat, DivLat      int64
	LinkLat, CrossLat, XbarLat int64
	OffloadPipeLat             int64

	// --- Bandwidths (bytes per core cycle) ---
	GPUStackBW   float64 // per direction per stack link (80 GB/s)
	CrossStackBW float64 // per direction per stack pair (40 GB/s)
	VaultBW      float64 // TSV budget per vault (10 GB/s)

	// --- Structural limits ---
	MSHRsPerSM  int
	LSUQueue    int
	L2MSHRs     int
	L2BankQueue int

	// --- Offloading ---
	Offload       OffloadMode
	BusyThreshold float64
	Coherence     bool // §4.4.2 protocol on (off = idealized coherence)
	// Policy names the offload policy (internal/offload registry) driving
	// candidate selection, gating, and destination choice. Empty resolves
	// from Offload for compatibility: "ideal" under OffloadIdeal, "tom"
	// otherwise (see PolicyName). Unknown names panic in New.
	Policy string
	// ALUGate, when positive, extends dynamic aggressiveness control
	// with the paper's §6.4 future-work idea: candidates whose static
	// ALU-instruction fraction exceeds the gate are not offloaded while
	// the destination stack SM is more than half occupied, keeping
	// compute-heavy blocks from saturating the logic-layer pipeline.
	ALUGate float64

	// --- Data mapping ---
	Mapping   MappingMode
	FixedBit  int     // for MapFixedBit
	LearnFrac float64 // fraction of candidate instances observed (§3.2.2)
	LearnMin  int     // lower bound on observed instances
	// LearnDeadline ends the learning phase after this many cycles even
	// if fewer instances were observed (a runtime watchdog: kernels whose
	// early phases expose few candidate instances — e.g. BFS's first
	// levels — must not stay on the slow CPU-memory path indefinitely).
	LearnDeadline int64
	PCIeBW        float64 // learning-phase CPU-memory bandwidth (bytes/cycle)
	PCIeLat       int64   // learning-phase extra latency (cycles)

	// --- Limits ---
	MaxCycles int64 // safety stop (0 = none)
}

// DefaultConfig returns the Table 1 system with TOM fully enabled
// (controlled offloading + transparent data mapping).
func DefaultConfig() Config {
	return Config{
		MainSMs:         64,
		WarpsPerSM:      48,
		MaxCTAsPerSM:    8,
		IssueWidth:      2,
		StackIssueWidth: 2,

		Stacks:          4,
		VaultsPerStack:  16,
		StackSMs:        1,
		StackWarpMult:   1,
		InternalBWRatio: 1.0,

		L1Bytes: 32 * 1024, L1Ways: 4,
		L2Bytes: 1024 * 1024, L2Ways: 16, L2Banks: 16,
		LineBytes: 128,

		L1Lat: 28, L2Lat: 90, SharedLat: 24,
		ALULat: 4, FPLat: 8, DivLat: 20,
		LinkLat: 20, CrossLat: 24, XbarLat: 6,
		OffloadPipeLat: 10,

		GPUStackBW:   57.14, // 80 GB/s at 1.4 GHz
		CrossStackBW: 28.57, // 40 GB/s
		VaultBW:      7.14,  // 10 GB/s x 16 vaults = 160 GB/s per stack

		MSHRsPerSM:  64,
		LSUQueue:    32,
		L2MSHRs:     512,
		L2BankQueue: 32,

		Offload:       OffloadControlled,
		BusyThreshold: 0.95,
		Coherence:     true,

		Mapping:       MapTransparent,
		FixedBit:      12,
		LearnFrac:     0.001,
		LearnMin:      8,
		LearnDeadline: 8_000,
		PCIeBW:        28.57, // host link; keeps the scaled-down learning phase proportional
		PCIeLat:       1400,  // ~1 us measured PCI-E round trip [36]

		MaxCycles: 0,
	}
}

// BaselineConfig returns the no-NDP baseline: 68 main SMs (the paper keeps
// total SM count equal: 64+4 vs 68), offloading off, baseline mapping.
func BaselineConfig() Config {
	c := DefaultConfig()
	c.MainSMs = 68
	c.Offload = OffloadOff
	c.Mapping = MapBaseline
	return c
}

// StackWarps returns the warp capacity of one stack SM.
func (c Config) StackWarps() int { return c.WarpsPerSM * c.StackWarpMult }

// PolicyName resolves the effective offload-policy name: an explicit
// Config.Policy wins; otherwise the legacy OffloadMode determines it
// (OffloadIdeal was the ideal policy before the policy layer existed).
func (c Config) PolicyName() string {
	if c.Policy != "" {
		return c.Policy
	}
	if c.Offload == OffloadIdeal {
		return "ideal"
	}
	return "tom"
}
