package sim

import (
	"sort"

	"repro/internal/compiler"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mapping"
	"repro/internal/mem"
)

// Profile is the result of an instrumented functional pass over a workload:
// per-candidate fixed-offset statistics (Fig. 5), co-location under every
// consecutive-bit mapping and the baseline (Fig. 6), the oracle best bit
// (Fig. 3 / MapOracle runs), and the candidate-touched allocation flags.
//
// The pass executes the kernels with the exact functional semantics and
// observes every offloading-candidate instance, so its statistics are
// ground truth rather than learned estimates.
type Profile struct {
	Instances int
	// perInstance[i] holds the co-location fraction of instance i under
	// each bit option (index parallel to Bits) and the baseline;
	// perHome[i] the corresponding home stacks (for the temporal
	// load-balance guard, see mapping.Analyzer).
	perInstance [][]float32
	perHome     [][]uint8
	baseline    []float32
	Bits        []int

	// Offsets maps candidate region start PCs (per kernel name) to their
	// fixed-offset trackers.
	Offsets map[string]map[int]*mapping.OffsetTracker
	// CandidateCount is the number of static candidates across kernels.
	CandidateCount int
}

type profCollect struct {
	cand  *compiler.Candidate
	addrs []uint64
	seq   []mapping.InstanceAccess
}

// RunProfile executes the launches functionally, watching candidate
// instances. It mutates alloc (CandidateTouched flags) exactly like the
// Memory Map Analyzer would.
func RunProfile(m *mem.Flat, alloc *mem.AllocTable, launches []exec.Launch) (*Profile, error) {
	p := &Profile{Offsets: map[string]map[int]*mapping.OffsetTracker{}}
	for b := mapping.MinBit; b <= mapping.MaxBit; b++ {
		p.Bits = append(p.Bits, b)
	}
	mdCache := map[*isa.Kernel]*compiler.Metadata{}
	active := map[*exec.Warp]*profCollect{}

	stacks := 4
	var pols []mapping.Policy
	for _, b := range p.Bits {
		pols = append(pols, mapping.ConsecutiveBits{Stacks: stacks, Bit: b})
	}
	base := mapping.Baseline{Stacks: stacks}

	finish := func(w *exec.Warp, pc *profCollect) {
		delete(active, w)
		if len(pc.addrs) == 0 {
			return
		}
		// Dedup to lines preserving order.
		lines := pc.addrs[:0]
		seen := map[uint64]bool{}
		for _, a := range pc.addrs {
			l := a >> mapping.LineShift << mapping.LineShift
			if !seen[l] {
				seen[l] = true
				lines = append(lines, l)
			}
		}
		row := make([]float32, len(pols))
		homes := make([]uint8, len(pols))
		for i, pol := range pols {
			row[i] = float32(colocationOf(pol, lines))
			homes[i] = uint8(pol.Stack(lines[0]))
		}
		p.perInstance = append(p.perInstance, row)
		p.perHome = append(p.perHome, homes)
		p.baseline = append(p.baseline, float32(colocationOf(base, lines)))
		p.Instances++
		for _, l := range lines {
			if r := alloc.Find(l); r != nil {
				r.CandidateTouched = true
			}
		}
		byPC := p.Offsets[w.Kernel.Name]
		if byPC == nil {
			byPC = map[int]*mapping.OffsetTracker{}
			p.Offsets[w.Kernel.Name] = byPC
		}
		tr := byPC[pc.cand.StartPC]
		if tr == nil {
			tr = mapping.NewOffsetTracker()
			byPC[pc.cand.StartPC] = tr
		}
		tr.ObserveInstance(pc.seq)
	}

	for _, l := range launches {
		md, ok := mdCache[l.Kernel]
		if !ok {
			var err error
			md, err = compiler.Analyze(l.Kernel, compiler.DefaultCostParams())
			if err != nil {
				return nil, err
			}
			mdCache[l.Kernel] = md
			p.CandidateCount += len(md.Candidates)
		}
		hook := func(w *exec.Warp, res exec.StepResult) {
			pc := active[w]
			switch {
			case pc == nil:
				cand := md.AtPC(res.PC)
				if cand == nil {
					return
				}
				pc = &profCollect{cand: cand}
				active[w] = pc
			case res.PC < pc.cand.StartPC || res.PC >= pc.cand.EndPC:
				// Executed an instruction outside the region: the
				// instance is over (and may begin another candidate).
				finish(w, pc)
				cand := md.AtPC(res.PC)
				if cand == nil {
					return
				}
				pc = &profCollect{cand: cand}
				active[w] = pc
			}
			if res.Kind == exec.StepMem && len(pc.addrs) < 4096 {
				for _, a := range res.Accesses {
					pc.addrs = append(pc.addrs, a.Addr)
				}
				if len(res.Accesses) > 0 {
					pc.seq = append(pc.seq, mapping.InstanceAccess{PC: res.PC, Addr: res.Accesses[0].Addr})
				}
			}
			if res.Done {
				finish(w, pc)
			}
		}
		if err := exec.RunInstrumented(m, l, hook); err != nil {
			return nil, err
		}
		for w, pc := range active {
			finish(w, pc)
		}
	}
	return p, nil
}

func colocationOf(p mapping.Policy, lines []uint64) float64 {
	home := p.Stack(lines[0])
	n := 0
	for _, l := range lines {
		if p.Stack(l) == home {
			n++
		}
	}
	return float64(n) / float64(len(lines))
}

// BaselineCoLocation averages the baseline-mapping co-location over all
// instances (Fig. 6's first bar).
func (p *Profile) BaselineCoLocation() float64 {
	return avg32(p.baseline, len(p.baseline))
}

// BestBitFromFraction picks the best bit using only the first frac of
// instances (the learning-phase emulation of Fig. 6) — scored exactly like
// the hardware analyzer: co-location discounted by the temporal
// load-balance guard — then returns that bit and its co-location measured
// over ALL instances.
func (p *Profile) BestBitFromFraction(frac float64) (bit int, coloc float64) {
	k := int(float64(p.Instances) * frac)
	if k < 1 {
		k = 1
	}
	if k > p.Instances {
		k = p.Instances
	}
	best, bestV := 0, -1.0
	for i := range p.Bits {
		v := 0.0
		adjSame := 0
		for n, row := range p.perInstance[:k] {
			v += float64(row[i])
			if n > 0 && p.perHome[n][i] == p.perHome[n-1][i] {
				adjSame++
			}
		}
		v *= mapping.BalanceFactor(adjSame, k, 4)
		if v > bestV {
			best, bestV = i, v
		}
	}
	v := 0.0
	for _, row := range p.perInstance {
		v += float64(row[best])
	}
	return p.Bits[best], v / float64(p.Instances)
}

// OracleBit returns the best bit over all instances and its co-location.
func (p *Profile) OracleBit() (bit int, coloc float64) {
	return p.BestBitFromFraction(1.0)
}

// CoLocationOfBit returns the average per-instance co-location of one
// specific consecutive-bit mapping over all observed instances.
func (p *Profile) CoLocationOfBit(bit int) float64 {
	for i, b := range p.Bits {
		if b != bit {
			continue
		}
		v := 0.0
		for _, row := range p.perInstance {
			v += float64(row[i])
		}
		if p.Instances == 0 {
			return 0
		}
		return v / float64(p.Instances)
	}
	return 0
}

func avg32(xs []float32, n int) float64 {
	if n == 0 {
		return 0
	}
	v := 0.0
	for _, x := range xs[:n] {
		v += float64(x)
	}
	return v / float64(n)
}

// OffsetBuckets classifies every static candidate into the Fig. 5 buckets
// and returns the per-bucket candidate counts in bucket order.
func (p *Profile) OffsetBuckets() [mapping.NumOffsetBuckets]int {
	var out [mapping.NumOffsetBuckets]int
	var keys []string
	for k := range p.Offsets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, tr := range p.Offsets[k] {
			frac, ok := tr.FixedFraction()
			if !ok {
				continue
			}
			out[mapping.Bucket(frac)]++
		}
	}
	return out
}

// FixedOffsetCandidateFraction returns the share of candidates with any
// fixed-offset accesses (the paper's 85% statistic).
func (p *Profile) FixedOffsetCandidateFraction() float64 {
	b := p.OffsetBuckets()
	total, some := 0, 0
	for i, n := range b {
		total += n
		if mapping.OffsetBucket(i) != mapping.BucketNone {
			some += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(some) / float64(total)
}
