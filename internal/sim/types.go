package sim

import (
	"math/bits"

	"repro/internal/isa"
)

// txn is one line-granularity memory transaction emitted by an SM's LSU
// after coalescing: a load of a full cache line, or a write-through store
// of the dirty bytes within one line.
type txn struct {
	line  uint64 // line-aligned byte address
	bytes int    // store payload bytes (0 for loads)
	store bool
	atom  bool
	// Completion target, typed instead of a per-txn closure so issuing a
	// memory instruction allocates only the txn itself: the issuing SM,
	// plus the warp and destination register for store/atomic acks.
	sm  *SM
	sw  *smWarp
	reg isa.Reg
}

// complete delivers the load data (or store ack) back to the issuing SM —
// the typed equivalent of the old per-txn onData closure.
func (t *txn) complete(now int64) {
	sm := t.sm
	sm.sys.inflight--
	if t.store {
		sm.storeAck(t.sw, now)
		if t.atom {
			sm.regClear(t.sw, t.reg, now)
		}
	} else {
		sm.fill(t.line, now)
	}
}

// Packet size constants (bytes). The paper normalizes address/data/register
// words to 4 B with acks a quarter of that; on the wire we add a 16 B
// header per request/response, 128 B lines, and 4 B per live register lane.
//
// Offload request AND acknowledgment both carry offloadHdrBytes: §4.4.2's
// protocol returns the live-out registers and dirty-line list to a specific
// requesting warp, so the ack needs the same warp identity + region (PCs,
// active mask) fields the request carries — not just the generic 16 B
// transaction header. The compiler's eq. (3)/(4) cost model (internal/
// compiler/cost.go) counts only the per-register and per-line payload units
// and carries no header constant, so this wire-level choice does not feed
// back into candidate selection.
const (
	reqHeaderBytes  = 16
	lineRespExtra   = 16 // header on a data response
	storeAckBytes   = 4
	offloadHdrBytes = 32 // begin/end PC, active mask, warp identity (request & ack)
	regLaneBytes    = 4
	dirtyAddrBytes  = 8
)

// wstate is an smWarp's scheduling state.
type wstate uint8

const (
	wsReady wstate = iota
	wsWaitDep
	wsWaitALU
	wsWaitLSU
	wsAtBarrier
	wsWaitDrain   // waiting for store acks (barrier entry / offload / retire)
	wsWaitOffload // region shipped to a memory stack; waiting for the ack
	wsRetired
)

// bitset is a small dense bitset for warp readiness (stack SMs can hold
// 4x48 = 192 warps in the §6.4 study). nz counts nonzero words so any()
// — the wake-horizon computation's hottest probe, called for every SM on
// every executed cycle — is a field read instead of a scan.
type bitset struct {
	w  []uint64
	nz int
}

func newBitset(n int) bitset { return bitset{w: make([]uint64, (n+63)/64)} }

func (b *bitset) set(i int) {
	w := &b.w[i>>6]
	if *w == 0 {
		b.nz++
	}
	*w |= 1 << (i & 63)
}

func (b *bitset) clear(i int) {
	w := &b.w[i>>6]
	if *w == 0 {
		return
	}
	*w &^= 1 << (i & 63)
	if *w == 0 {
		b.nz--
	}
}

func (b *bitset) get(i int) bool { return b.w[i>>6]&(1<<(i&63)) != 0 }
func (b *bitset) any() bool      { return b.nz > 0 }

// first returns the lowest set index, or -1.
func (b *bitset) first() int {
	for wi, x := range b.w {
		if x != 0 {
			return wi*64 + trailingZeros(x)
		}
	}
	return -1
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
