package sim

import (
	"testing"

	"repro/internal/obs"
)

func TestStatsIPCZeroCycles(t *testing.T) {
	s := &Stats{ThreadInstrs: 100}
	if got := s.IPC(); got != 0 {
		t.Fatalf("IPC with zero cycles = %v, want 0", got)
	}
	s.Cycles = 50
	if got := s.IPC(); got != 2 {
		t.Fatalf("IPC = %v, want 2", got)
	}
}

func TestStatsOffloadedFractionZeroInstrs(t *testing.T) {
	s := &Stats{StackThreadInstrs: 7}
	if got := s.OffloadedInstrFraction(); got != 0 {
		t.Fatalf("fraction with zero instrs = %v, want 0", got)
	}
	s.ThreadInstrs = 28
	if got := s.OffloadedInstrFraction(); got != 0.25 {
		t.Fatalf("fraction = %v, want 0.25", got)
	}
}

func TestStatsOffChipBytes(t *testing.T) {
	s := &Stats{GPUTXBytes: 1, GPURXBytes: 2, CrossBytes: 4,
		PCIeBytes: 100, InternalBytes: 1000}
	// Off-chip = GPU↔memory + memory↔memory; PCIe and TSV traffic are
	// reported separately.
	if got := s.OffChipBytes(); got != 7 {
		t.Fatalf("OffChipBytes = %d, want 7", got)
	}
	if (&Stats{}).OffChipBytes() != 0 {
		t.Fatal("empty stats must report zero traffic")
	}
}

// TestObserverMatchesStats is the acceptance check for the observability
// layer: with an Observer attached, the per-interval traffic series and the
// lifecycle counters must sum exactly to the end-of-run sim.Stats totals,
// and the trace must carry one event per lifecycle step.
func TestObserverMatchesStats(t *testing.T) {
	env := streamEnv(t, 16, 16)
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline
	o := obs.New()
	o.SampleEvery = 512
	sink := &obs.CollectSink{}
	o.Trace = sink
	cfg.Observer = o
	sys := runSim(t, cfg, env)
	st := sys.Stats()
	if st.OffloadsSent == 0 {
		t.Fatal("run must offload for the lifecycle check to mean anything")
	}
	if st.OffloadsAcked != st.OffloadsSent || st.InFlightOffloads != 0 {
		t.Fatalf("drain invariant broken at quiescence: sent=%d acked=%d inflight=%d",
			st.OffloadsSent, st.OffloadsAcked, st.InFlightOffloads)
	}

	reg := o.Registry
	seriesSum := func(name string) uint64 {
		return uint64(reg.Series(name, o.SampleEvery).Sum() + 0.5)
	}
	if got := seriesSum("traffic.gpu_tx_bytes"); got != st.GPUTXBytes {
		t.Errorf("tx series sums to %d, stats say %d", got, st.GPUTXBytes)
	}
	if got := seriesSum("traffic.gpu_rx_bytes"); got != st.GPURXBytes {
		t.Errorf("rx series sums to %d, stats say %d", got, st.GPURXBytes)
	}
	if got := seriesSum("traffic.cross_bytes"); got != st.CrossBytes {
		t.Errorf("cross series sums to %d, stats say %d", got, st.CrossBytes)
	}
	if got := seriesSum("traffic.pcie_bytes"); got != st.PCIeBytes {
		t.Errorf("pcie series sums to %d, stats say %d", got, st.PCIeBytes)
	}

	counters := []struct {
		name string
		want uint64
	}{
		{"offload.candidates", st.CandidateInstances},
		{"offload.sent", st.OffloadsSent},
		{"offload.acks", st.OffloadsAcked}, // mirrors Stats.OffloadsAcked exactly
		{"offload.spawns", st.OffloadsSent},
		{"offload.skipped_busy", st.OffloadsSkippedBusy},
		{"offload.skipped_full", st.OffloadsSkippedFull},
		{"offload.skipped_cond", st.OffloadsSkippedCond},
		{"offload.skipped_alu", st.OffloadsSkippedALU},
		{"offload.skipped_nodest", st.OffloadsSkippedNoDest},
		{"offload.skipped_destbound", st.OffloadsSkippedDestBound},
		{"offload.skipped_split", st.OffloadsSkippedSplit},
		{"offload.skipped_vaultfull", st.OffloadsSkippedVaultFull},
		{"coherence.invalidates", st.CoherenceInvalidates},
		{"offload.drain_stalls", st.StoreDrainStalls},
	}
	for _, c := range counters {
		if got := reg.Counter(c.name).Value(); got != c.want {
			t.Errorf("counter %s = %d, stats say %d", c.name, got, c.want)
		}
	}

	// Lifecycle trace: one event per step, matching the counters.
	if got := sink.CountKind(obs.EvCandidate); uint64(got) != st.CandidateInstances {
		t.Errorf("candidate events = %d, want %d", got, st.CandidateInstances)
	}
	if got := sink.CountKind(obs.EvSend); uint64(got) != st.OffloadsSent {
		t.Errorf("send events = %d, want %d", got, st.OffloadsSent)
	}
	if got := sink.CountKind(obs.EvAck); uint64(got) != st.OffloadsSent {
		t.Errorf("ack events = %d, want %d", got, st.OffloadsSent)
	}
	if got := sink.CountKind(obs.EvFinish); uint64(got) != st.OffloadsSent {
		t.Errorf("finish events = %d, want %d", got, st.OffloadsSent)
	}
	if got := sink.CountKind(obs.EvGate); uint64(got) != st.OffloadsSkipped() {
		t.Errorf("gate events = %d, want %d", got, st.OffloadsSkipped())
	}

	// Per-stack pending-offload occupancy: one sample per elapsed interval
	// for each stack, and at least one nonzero reading somewhere (the run
	// offloaded).
	sawPending := false
	for s := 0; s < cfg.Stacks; s++ {
		ser := reg.Series("stack."+string(rune('0'+s))+".pending_offloads", o.SampleEvery)
		if ser.Sum() > 0 {
			sawPending = true
		}
	}
	if !sawPending {
		t.Error("no pending-offload occupancy was ever sampled nonzero")
	}
}

// TestObserverLearningPhase: the tmap learning phase must emit a learn_end
// event and route its traffic into the pcie series.
func TestObserverLearningPhase(t *testing.T) {
	env := streamEnv(t, 16, 16)
	cfg := DefaultConfig() // MapTransparent: learning on
	o := obs.New()
	sink := &obs.CollectSink{}
	o.Trace = sink
	cfg.Observer = o
	sys := runSim(t, cfg, env)
	if got := sink.CountKind(obs.EvLearnEnd); got != 1 {
		t.Fatalf("learn_end events = %d, want 1", got)
	}
	for _, ev := range sink.Events() {
		if ev.Kind != obs.EvLearnEnd {
			continue
		}
		// LearnedBit -1 (no bit picked) maps to a nil Bit; any picked bit —
		// including bit 0 — must arrive as a non-nil pointer to that value.
		if want := sys.Stats().LearnedBit; want < 0 {
			if ev.Bit != nil {
				t.Errorf("learn_end bit = %d, stats say none", *ev.Bit)
			}
		} else if ev.Bit == nil || *ev.Bit != want {
			t.Errorf("learn_end bit = %v, stats say %d", ev.Bit, want)
		}
	}
	if sys.Stats().PCIeBytes == 0 {
		t.Fatal("learning phase should move PCIe bytes")
	}
	if got := uint64(o.Registry.Series("traffic.pcie_bytes", 0).Sum() + 0.5); got != sys.Stats().PCIeBytes {
		t.Errorf("pcie series sums to %d, stats say %d", got, sys.Stats().PCIeBytes)
	}
}

// TestObserverNilIsInert: a nil Observer must leave results identical to an
// unobserved run (same cycles, same stats) — the hook must be timing-free.
func TestObserverNilIsInert(t *testing.T) {
	env := streamEnv(t, 8, 8)
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline
	plain := runSim(t, cfg, env)

	cfg2 := cfg
	cfg2.Observer = obs.New()
	observed := runSim(t, cfg2, env)

	if plain.Stats().Cycles != observed.Stats().Cycles {
		t.Errorf("observer changed timing: %d vs %d cycles",
			plain.Stats().Cycles, observed.Stats().Cycles)
	}
	if plain.Stats().OffloadsSent != observed.Stats().OffloadsSent {
		t.Errorf("observer changed offloads: %d vs %d",
			plain.Stats().OffloadsSent, observed.Stats().OffloadsSent)
	}
	if plain.Stats().OffChipBytes() != observed.Stats().OffChipBytes() {
		t.Errorf("observer changed traffic: %d vs %d",
			plain.Stats().OffChipBytes(), observed.Stats().OffChipBytes())
	}
}
