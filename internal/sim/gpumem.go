package sim

import (
	"repro/internal/cache"
)

// l2sys is the GPU-side shared L2: banked by line address, write-through,
// write-no-allocate, with MSHR merging. Misses travel over the per-stack TX
// links (or the PCI-E path during the learning phase) and fills return on
// the RX links.
type l2sys struct {
	sys   *System
	banks []*l2bank
	// free recycles MSHR entries (and their waiter slices' capacity): an
	// L2 miss in steady state allocates nothing.
	free []*l2entry
}

// getEntry returns an empty MSHR entry, reusing a recycled one if possible.
func (l2 *l2sys) getEntry() *l2entry {
	if n := len(l2.free); n > 0 {
		e := l2.free[n-1]
		l2.free = l2.free[:n-1]
		return e
	}
	return &l2entry{}
}

// putEntry recycles a drained MSHR entry, dropping txn references so the
// pool does not retain completed transactions.
func (l2 *l2sys) putEntry(e *l2entry) {
	for i := range e.waiters {
		e.waiters[i] = nil
	}
	e.waiters = e.waiters[:0]
	l2.free = append(l2.free, e)
}

type l2bank struct {
	tags  *cache.Cache
	queue []*txn
	sys   *System
}

type l2entry struct {
	waiters []*txn
}

func newL2(sys *System) *l2sys {
	c := sys.cfg
	l2 := &l2sys{sys: sys}
	for i := 0; i < c.L2Banks; i++ {
		l2.banks = append(l2.banks, &l2bank{
			tags: cache.New(c.L2Bytes/c.L2Banks, c.L2Ways, c.LineBytes),
			sys:  sys,
		})
	}
	return l2
}

func (l2 *l2sys) bankOf(line uint64) *l2bank {
	return l2.banks[(line>>7)%uint64(len(l2.banks))]
}

// accept implements memPort for main-GPU SMs.
func (l2 *l2sys) accept(now int64, t *txn) bool {
	b := l2.bankOf(t.line)
	if len(b.queue) >= l2.sys.cfg.L2BankQueue {
		return false
	}
	b.queue = append(b.queue, t)
	return true
}

// invalidate drops a line from the L2 (offload coherence).
func (l2 *l2sys) invalidate(line uint64) {
	l2.bankOf(line).tags.Invalidate(line)
}

func (l2 *l2sys) invalidateAll() {
	for _, b := range l2.banks {
		b.tags.InvalidateAll()
	}
}

func (l2 *l2sys) tick(now int64) {
	for _, b := range l2.banks {
		b.tick(now)
	}
}

// queuedTxns counts transactions waiting in bank queues (sampled by the
// observability layer alongside the MSHR occupancy).
func (l2 *l2sys) queuedTxns() int {
	n := 0
	for _, b := range l2.banks {
		n += len(b.queue)
	}
	return n
}

func (l2 *l2sys) active() bool {
	for _, b := range l2.banks {
		if len(b.queue) > 0 {
			return true
		}
	}
	return len(l2.sys.l2mshr) > 0
}

func (b *l2bank) tick(now int64) {
	if len(b.queue) == 0 {
		return
	}
	sys := b.sys
	t := b.queue[0]
	if t.store {
		// Write-through: refresh LRU if present, always forward.
		b.tags.Lookup(t.line)
		n := copy(b.queue, b.queue[1:])
		b.queue = b.queue[:n]
		sys.wheel.afterEvent(sys.cfg.L2Lat/3, wheelEvent{kind: wevRouteStore, t: t})
		return
	}
	// Load.
	if _, merged := sys.l2mshr[t.line]; merged {
		sys.l2mshr[t.line].waiters = append(sys.l2mshr[t.line].waiters, t)
		n := copy(b.queue, b.queue[1:])
		b.queue = b.queue[:n]
		sys.stats.L2Hits++ // merged under an outstanding fill
		return
	}
	if b.tags.Lookup(t.line) {
		sys.stats.L2Hits++
		n := copy(b.queue, b.queue[1:])
		b.queue = b.queue[:n]
		sys.wheel.afterEvent(sys.cfg.L2Lat, wheelEvent{kind: wevTxnDone, t: t})
		return
	}
	if len(sys.l2mshr) >= sys.cfg.L2MSHRs {
		return // head-of-line block until an MSHR frees
	}
	sys.stats.L2Misses++
	n := copy(b.queue, b.queue[1:])
	b.queue = b.queue[:n]
	e := sys.l2.getEntry()
	e.waiters = append(e.waiters, t)
	sys.l2mshr[t.line] = e
	sys.wheel.afterEvent(sys.cfg.L2Lat/3, wheelEvent{kind: wevRouteLoad, line: t.line})
}

// l2fill completes an outstanding L2 miss: install the tag and wake every
// merged waiter.
func (sys *System) l2fill(line uint64, now int64) {
	e := sys.l2mshr[line]
	if e == nil {
		return
	}
	delete(sys.l2mshr, line)
	sys.l2.bankOf(line).tags.Fill(line)
	for _, t := range e.waiters {
		t.complete(now)
	}
	sys.l2.putEntry(e)
}

// routeLoad sends an L2 miss toward memory: the owning stack's vault, or
// CPU memory over PCI-E during the learning phase.
func (sys *System) routeLoad(line uint64, now int64) {
	if sys.learning {
		sys.pcieLoad(line, now)
		return
	}
	s := sys.stackOf(line)
	sys.txLinks[s].Send(packetOf(reqHeaderBytes, func(at int64) {
		sys.stacks[s].serveLine(line, 0, false, at, func(done int64) {
			sys.rxLinks[s].Send(packetOf(sys.cfg.LineBytes+lineRespExtra, func(rx int64) {
				sys.l2fill(line, rx)
			}), done)
		})
	}), now)
}

// routeStore sends a write-through store (or atomic) to its memory stack.
func (sys *System) routeStore(t *txn, now int64) {
	if sys.learning {
		sys.pcieStore(t, now)
		return
	}
	s := sys.stackOf(t.line)
	bytes := reqHeaderBytes + t.bytes
	ack := storeAckBytes
	if t.atom {
		ack = reqHeaderBytes // atomics return the old value
	}
	sys.txLinks[s].Send(packetOf(bytes, func(at int64) {
		sys.stacks[s].serveLine(t.line, t.bytes, true, at, func(done int64) {
			sys.rxLinks[s].Send(packetOf(ack, t.complete), done)
		})
	}), now)
}

// pcieLoad / pcieStore model the learning phase running out of CPU memory
// (§4.3 step 2): every access crosses the measured-latency PCI-E path.
func (sys *System) pcieLoad(line uint64, now int64) {
	sys.pcieTX.Send(packetOf(reqHeaderBytes, func(at int64) {
		sys.pcieRX.Send(packetOf(sys.cfg.LineBytes+lineRespExtra, func(rx int64) {
			sys.l2fill(line, rx)
		}), at)
	}), now)
}

func (sys *System) pcieStore(t *txn, now int64) {
	sys.pcieTX.Send(packetOf(reqHeaderBytes+t.bytes, func(at int64) {
		sys.pcieRX.Send(packetOf(storeAckBytes, t.complete), at)
	}), now)
}
