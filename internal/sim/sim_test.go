package sim

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
)

// streamKernel: each thread grid-strides over `per` elements of a and b,
// writing a[i]*2+b[i] into out — a coalesced loop candidate with runtime
// trip count.
func streamKernel(t testing.TB) *isa.Kernel {
	t.Helper()
	b := isa.NewBuilder("stream", 5) // r0=a, r1=b, r2=out, r3=per, r4=T
	b.Mov(5, isa.Sp(isa.SpGtid))
	b.MovI(6, 0)       // k
	b.Mov(7, isa.R(5)) // idx
	b.Label("top")
	b.Shl(8, isa.R(7), isa.Imm(2))
	b.Add(9, isa.R(0), isa.R(8))
	b.Ld(10, isa.R(9), 0)
	b.Add(11, isa.R(1), isa.R(8))
	b.Ld(12, isa.R(11), 0)
	b.Add(10, isa.R(10), isa.R(10))
	b.Add(10, isa.R(10), isa.R(12))
	b.Add(13, isa.R(2), isa.R(8))
	b.St(isa.R(13), 0, isa.R(10))
	b.Add(7, isa.R(7), isa.R(4)) // idx += T
	b.Add(6, isa.R(6), isa.Imm(1))
	b.Setp(14, isa.CmpLT, isa.R(6), isa.R(3))
	b.BraIf(isa.R(14), "top")
	b.Exit()
	return b.MustBuild()
}

type workloadEnv struct {
	mem      *mem.Flat
	alloc    *mem.AllocTable
	launches []exec.Launch
}

func streamEnv(t testing.TB, ctas, per int) *workloadEnv {
	t.Helper()
	k := streamKernel(t)
	env := &workloadEnv{mem: mem.NewFlat(), alloc: mem.NewAllocTable()}
	threads := ctas * 128
	n := threads * per
	a := env.alloc.Alloc("a", uint64(4*n))
	bb := env.alloc.Alloc("b", uint64(4*n))
	out := env.alloc.Alloc("out", uint64(4*n))
	for i := 0; i < n; i++ {
		env.mem.Store4(a+uint64(4*i), uint32(i%977))
		env.mem.Store4(bb+uint64(4*i), uint32(i%131))
	}
	env.launches = []exec.Launch{{
		Kernel: k, Grid: ctas, Block: 128,
		Params: []uint64{a, bb, out, uint64(per), uint64(threads)},
	}}
	return env
}

func refMem(t testing.TB, env *workloadEnv) *mem.Flat {
	t.Helper()
	m := env.mem.Clone()
	if err := exec.RunFunctionalAll(m, env.launches); err != nil {
		t.Fatal(err)
	}
	return m
}

func runSim(t testing.TB, cfg Config, env *workloadEnv) *System {
	t.Helper()
	m := env.mem.Clone()
	alloc := mem.NewAllocTable()
	for _, r := range env.alloc.Ranges {
		alloc.Alloc(r.Name, r.Size)
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 50_000_000
	}
	sys := New(cfg, m, alloc)
	if err := sys.Run(env.launches); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBaselineMatchesFunctionalReference(t *testing.T) {
	env := streamEnv(t, 16, 16)
	want := refMem(t, env)
	sys := runSim(t, BaselineConfig(), env)
	if ok, addr := mem.Equal(want, sys.mem); !ok {
		t.Fatalf("baseline timing run diverged from functional reference at %#x", addr)
	}
	st := sys.Stats()
	if st.Cycles == 0 || st.ThreadInstrs == 0 {
		t.Fatal("no work simulated")
	}
	if st.OffloadsSent != 0 {
		t.Errorf("baseline must not offload, sent %d", st.OffloadsSent)
	}
	if st.CandidateInstances == 0 {
		t.Error("candidate instances should still be counted")
	}
	t.Logf("baseline: cycles=%d IPC=%.2f L1hit=%.2f traffic=%d",
		st.Cycles, st.IPC(),
		float64(st.L1Hits)/float64(st.L1Hits+st.L1Misses), st.OffChipBytes())
}

func TestControlledOffloadMatchesReferenceAndOffloads(t *testing.T) {
	env := streamEnv(t, 16, 16)
	want := refMem(t, env)
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline // isolate offloading from learning here
	sys := runSim(t, cfg, env)
	if ok, addr := mem.Equal(want, sys.mem); !ok {
		t.Fatalf("NDP timing run diverged from functional reference at %#x", addr)
	}
	st := sys.Stats()
	if st.OffloadsSent == 0 {
		t.Fatal("controlled NDP run never offloaded")
	}
	if st.StackThreadInstrs == 0 {
		t.Fatal("no instructions executed on stack SMs")
	}
	t.Logf("ndp-ctrl: cycles=%d offloads=%d stackFrac=%.2f traffic=%d",
		st.Cycles, st.OffloadsSent, st.OffloadedInstrFraction(), st.OffChipBytes())
}

func TestUncontrolledOffloadCompletes(t *testing.T) {
	env := streamEnv(t, 8, 16)
	want := refMem(t, env)
	cfg := DefaultConfig()
	cfg.Offload = OffloadUncontrolled
	cfg.Mapping = MapBaseline
	sys := runSim(t, cfg, env)
	if ok, addr := mem.Equal(want, sys.mem); !ok {
		t.Fatalf("uncontrolled run diverged at %#x", addr)
	}
	if sys.Stats().OffloadsSent == 0 {
		t.Fatal("uncontrolled run should offload")
	}
}

func TestIdealOffloadFasterThanBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("large launch")
	}
	// Needs a launch big enough that the baseline is bandwidth-bound;
	// tiny grids are latency-bound and offloading merely serializes them
	// onto the four stack SMs.
	env := streamEnv(t, 192, 64)
	base := runSim(t, BaselineConfig(), env)
	cfg := DefaultConfig()
	cfg.Offload = OffloadIdeal
	cfg.Mapping = MapBaseline
	ideal := runSim(t, cfg, env)
	want := refMem(t, env)
	if ok, addr := mem.Equal(want, ideal.mem); !ok {
		t.Fatalf("ideal run diverged at %#x", addr)
	}
	bIPC, iIPC := base.Stats().IPC(), ideal.Stats().IPC()
	t.Logf("baseline IPC=%.2f ideal IPC=%.2f speedup=%.2f", bIPC, iIPC, iIPC/bIPC)
	if iIPC <= bIPC {
		t.Errorf("ideal NDP (%.2f) should beat baseline (%.2f) on this memory-bound kernel", iIPC, bIPC)
	}
}

func TestTransparentMappingLearns(t *testing.T) {
	env := streamEnv(t, 16, 16)
	want := refMem(t, env)
	sys := runSim(t, DefaultConfig(), env) // tmap + ctrl
	if ok, addr := mem.Equal(want, sys.mem); !ok {
		t.Fatalf("tmap run diverged at %#x", addr)
	}
	st := sys.Stats()
	if st.LearnInstances == 0 {
		t.Fatal("learning phase observed no instances")
	}
	if st.CopiedBytes == 0 {
		t.Fatal("no ranges were candidate-touched")
	}
	if st.PCIeBytes == 0 {
		t.Fatal("learning phase should generate PCI-E traffic")
	}
	t.Logf("tmap: learnedBit=%d instances=%d copied=%d learnCycles=%d",
		st.LearnedBit, st.LearnInstances, st.CopiedBytes, st.LearnCycles)
}

func TestProfilePass(t *testing.T) {
	env := streamEnv(t, 8, 16)
	p, err := RunProfile(env.mem, env.alloc, env.launches)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instances == 0 {
		t.Fatal("profile saw no candidate instances")
	}
	// The stream kernel accesses three arrays with the same index:
	// perfectly fixed offsets.
	if f := p.FixedOffsetCandidateFraction(); f < 0.99 {
		t.Errorf("fixed-offset candidate fraction = %v, want ~1", f)
	}
	oBit, oCo := p.OracleBit()
	if oCo <= p.BaselineCoLocation() {
		t.Errorf("oracle bit %d co-location %.2f should beat baseline %.2f",
			oBit, oCo, p.BaselineCoLocation())
	}
	// Learning from 0.1% must be within a few points of the oracle on
	// this regular workload.
	_, lCo := p.BestBitFromFraction(0.001)
	if oCo-lCo > 0.1 {
		t.Errorf("0.1%% learned co-location %.2f far from oracle %.2f", lCo, oCo)
	}
	// Candidate-touched flags must be set on all three arrays.
	for _, name := range []string{"a", "b", "out"} {
		r, err := env.alloc.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if !r.CandidateTouched {
			t.Errorf("range %q not flagged by profile", name)
		}
	}
}
