package sim

import (
	"fmt"
	"reflect"
	"strings"
)

// Canonical renders every model parameter of the configuration as a
// deterministic "Name=value;" string — the basis of the evaluation layer's
// run-spec digests (internal/core). Fields are emitted in declaration order
// so adding a parameter automatically changes the canonical form (and
// therefore invalidates cached results that depended on its default), while
// runtime-only attachments (the Observer hook, and any future pointer or
// function field) are excluded: they never affect measured statistics.
func (c Config) Canonical() string {
	var sb strings.Builder
	v := reflect.ValueOf(c)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		switch t.Field(i).Type.Kind() {
		case reflect.Pointer, reflect.Func, reflect.Interface, reflect.Chan:
			continue
		}
		fmt.Fprintf(&sb, "%s=%v;", t.Field(i).Name, v.Field(i).Interface())
	}
	return sb.String()
}
