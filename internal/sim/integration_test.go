package sim

import (
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// TestTimingMatchesFunctionalAllWorkloads is the system's central
// invariant: for every workload and every offloading/mapping policy, the
// timing simulation must end with exactly the functional interpreter's
// memory image and pass the workload's numerical self-check. Any bug in
// offload live-in/live-out transfer, region reconvergence, coherence
// sequencing, or warp scheduling shows up here.
func TestTimingMatchesFunctionalAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-system simulations")
	}
	configs := map[string]func() Config{
		"baseline": BaselineConfig,
		"ctrl-bmap": func() Config {
			c := DefaultConfig()
			c.Mapping = MapBaseline
			return c
		},
		"ctrl-tmap": DefaultConfig,
		"noctrl-tmap": func() Config {
			c := DefaultConfig()
			c.Offload = OffloadUncontrolled
			return c
		},
		"ideal": func() Config {
			c := DefaultConfig()
			c.Offload = OffloadIdeal
			c.Mapping = MapBaseline
			return c
		},
	}
	for _, w := range workloads.All() {
		inst, err := w.Build(0.04)
		if err != nil {
			t.Fatalf("%s: %v", w.Abbr, err)
		}
		ref := inst.Clone()
		if err := exec.RunFunctionalAll(ref.Mem, ref.Launches); err != nil {
			t.Fatalf("%s: reference: %v", w.Abbr, err)
		}
		for name, mk := range configs {
			t.Run(fmt.Sprintf("%s/%s", w.Abbr, name), func(t *testing.T) {
				c := inst.Clone()
				cfg := mk()
				cfg.MaxCycles = 100_000_000
				sys := New(cfg, c.Mem, c.Alloc)
				if err := sys.Run(c.Launches); err != nil {
					t.Fatal(err)
				}
				if ok, addr := mem.Equal(ref.Mem, c.Mem); !ok {
					t.Fatalf("memory diverged at %#x", addr)
				}
				if err := inst.Check(c.Mem); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestOffloadTransfersOnlyLiveRegisters verifies the offload machinery
// really ships just the live-in set: the stack-side region warp starts with
// zeroed non-live registers, so a liveness bug would corrupt results (and
// be caught by the memory-equality test); here we additionally check that
// offloads actually happened in that configuration.
func TestOffloadTransfersOnlyLiveRegisters(t *testing.T) {
	w, err := workloads.ByAbbr("LIB")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Build(0.04)
	if err != nil {
		t.Fatal(err)
	}
	c := inst.Clone()
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline
	sys := New(cfg, c.Mem, c.Alloc)
	if err := sys.Run(c.Launches); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().OffloadsSent == 0 {
		t.Fatal("LIB must offload its Fig. 4 loops")
	}
	if err := inst.Check(c.Mem); err != nil {
		t.Fatal(err)
	}
}

// TestCoherenceDirtyLines: offloaded stores must be reported back and
// invalidated at the GPU when coherence is on.
func TestCoherenceDirtyLines(t *testing.T) {
	w, _ := workloads.ByAbbr("LIB")
	inst, err := w.Build(0.04)
	if err != nil {
		t.Fatal(err)
	}
	c := inst.Clone()
	cfg := DefaultConfig()
	cfg.Mapping = MapBaseline
	sys := New(cfg, c.Mem, c.Alloc)
	if err := sys.Run(c.Launches); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().CoherenceInvalidates == 0 {
		t.Error("offloaded stores should produce coherence invalidations")
	}

	// With coherence off, no invalidations happen (idealized §4.4.2 study).
	c2 := inst.Clone()
	cfg.Coherence = false
	sys2 := New(cfg, c2.Mem, c2.Alloc)
	if err := sys2.Run(c2.Launches); err != nil {
		t.Fatal(err)
	}
	if sys2.Stats().CoherenceInvalidates != 0 {
		t.Error("coherence-off run must not invalidate")
	}
	if ok, addr := mem.Equal(c.Mem, c2.Mem); !ok {
		t.Errorf("coherence flag changed results at %#x (must be timing-only)", addr)
	}
}
