// Package obs is the simulator's observability layer: a zero-dependency,
// allocation-light metrics registry (counters, gauges, fixed-interval time
// series) plus a structured event trace for the offload lifecycle.
//
// The cycle-level simulator only exposes end-of-run totals through
// sim.Stats; obs adds the time axis. An Observer is attached through
// sim.Config.Observer and receives
//
//   - lifecycle events (candidate seen → gated/sent → spawn → ack →
//     coherence invalidate) through an optional EventSink, and
//   - occupancy/traffic samples every SampleEvery cycles into the
//     Registry's time series.
//
// Everything is nil-safe: a nil Observer (the default) costs the hot path
// a single pointer comparison, and an Observer without a Trace sink still
// collects metrics. All registry primitives are safe for concurrent use,
// so one Observer can serve runs executing in parallel goroutines.
package obs

// Observer bundles a metrics registry with an optional event trace and the
// sampling cadence the simulator should use.
type Observer struct {
	// Registry collects counters, gauges and time series. Never nil for
	// observers built with New.
	Registry *Registry
	// Trace, when non-nil, receives one Event per offload-lifecycle step.
	Trace EventSink
	// SampleEvery is the occupancy/traffic sampling interval in cycles.
	// Zero selects DefaultSampleEvery.
	SampleEvery int64
}

// DefaultSampleEvery is the sampling interval used when SampleEvery is 0.
const DefaultSampleEvery = 1024

// New returns an Observer with a fresh registry and no trace sink.
func New() *Observer {
	return &Observer{Registry: NewRegistry()}
}

// Interval returns the effective sampling interval.
func (o *Observer) Interval() int64 {
	if o == nil || o.SampleEvery <= 0 {
		return DefaultSampleEvery
	}
	return o.SampleEvery
}

// Emit forwards an event to the trace sink; a nil observer or sink drops it.
func (o *Observer) Emit(ev Event) {
	if o == nil || o.Trace == nil {
		return
	}
	o.Trace.Emit(ev)
}

// Event is one structured trace record. Kind identifies the lifecycle step;
// the remaining fields are populated as applicable (and omitted from JSON
// when zero).
type Event struct {
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"`
	// Run labels the originating run ("ABBR/config") when several runs
	// share one sink (see LabelSink); empty for single-run traces.
	Run string `json:"run,omitempty"`
	// SM is the emitting streaming multiprocessor's global id.
	SM int `json:"sm,omitempty"`
	// Stack is the memory stack involved (destination for offloads).
	Stack int `json:"stack,omitempty"`
	// PC is the candidate region's start PC.
	PC int `json:"pc,omitempty"`
	// Reason qualifies gate events (busy, full, cond, alu).
	Reason string `json:"reason,omitempty"`
	// Bytes is the payload size on the wire for send/ack events.
	Bytes int `json:"bytes,omitempty"`
	// N is an event-specific count (dirty lines invalidated, learning
	// instances observed).
	N int `json:"n,omitempty"`
	// Bit is the learned mapping bit on learn-end events (-1 = none).
	Bit int `json:"bit,omitempty"`
}

// Event kinds emitted by the simulator (see docs/OBSERVABILITY.md).
const (
	EvCandidate = "candidate" // main-SM warp reached a candidate entry
	EvGate      = "gate"      // offload suppressed (Reason says why)
	EvSend      = "send"      // offload request queued on the TX link
	EvSpawn     = "spawn"     // stack SM started executing the region
	EvAck       = "ack"       // region done; ack queued on the RX link
	EvFinish    = "finish"    // requesting warp resumed (N dirty lines)
	EvLearnEnd  = "learn_end" // tmap learning phase closed
)

// Event kinds emitted by the evaluation layer's adaptive control loop
// (internal/core). Cycle is always 0 — these are session-level steps, not
// simulated time; Run carries the "ABBR/config" key.
const (
	// EvAdaptIter closes one profile→refine iteration; N is the 1-based
	// iteration index.
	EvAdaptIter = "adapt_iter"
	// EvAdaptDone closes an iterated refinement; N is the number of
	// profiling iterations executed, Reason is "converged" or "bound".
	EvAdaptDone = "adapt_done"
	// EvFeedbackStore records one persisted-feedback-store access; Reason
	// is "hit", "miss", or "save".
	EvFeedbackStore = "feedback_store"
)

// EventSink consumes trace events. Implementations must be safe for
// concurrent Emit calls.
type EventSink interface {
	Emit(Event)
}
