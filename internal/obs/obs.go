// Package obs is the simulator's observability layer: a zero-dependency,
// allocation-light metrics registry (counters, gauges, fixed-interval time
// series) plus a structured event trace for the offload lifecycle.
//
// The cycle-level simulator only exposes end-of-run totals through
// sim.Stats; obs adds the time axis. An Observer is attached through
// sim.Config.Observer and receives
//
//   - lifecycle events (candidate seen → gated/sent → spawn → ack →
//     coherence invalidate) through an optional EventSink, and
//   - occupancy/traffic samples every SampleEvery cycles into the
//     Registry's time series.
//
// Everything is nil-safe: a nil Observer (the default) costs the hot path
// a single pointer comparison, and an Observer without a Trace sink still
// collects metrics. All registry primitives are safe for concurrent use,
// so one Observer can serve runs executing in parallel goroutines.
package obs

// Observer bundles a metrics registry with an optional event trace and the
// sampling cadence the simulator should use.
type Observer struct {
	// Registry collects counters, gauges and time series. Never nil for
	// observers built with New.
	Registry *Registry
	// Trace, when non-nil, receives one Event per offload-lifecycle step.
	Trace EventSink
	// SampleEvery is the occupancy/traffic sampling interval in cycles.
	// Zero selects DefaultSampleEvery.
	SampleEvery int64
}

// DefaultSampleEvery is the sampling interval used when SampleEvery is 0.
const DefaultSampleEvery = 1024

// New returns an Observer with a fresh registry and no trace sink.
func New() *Observer {
	return &Observer{Registry: NewRegistry()}
}

// Interval returns the effective sampling interval.
func (o *Observer) Interval() int64 {
	if o == nil || o.SampleEvery <= 0 {
		return DefaultSampleEvery
	}
	return o.SampleEvery
}

// Emit forwards an event to the trace sink; a nil observer or sink drops it.
func (o *Observer) Emit(ev Event) {
	if o == nil || o.Trace == nil {
		return
	}
	o.Trace.Emit(ev)
}

// Event is one structured trace record. Kind identifies the lifecycle step;
// which of the remaining fields carry meaning is a per-kind property (see
// docs/OBSERVABILITY.md). SM, Stack, and PC always serialize — SM 0, stack 0,
// and PC 0 are legitimate values, so they must stay distinguishable from an
// inapplicable field; "no stack" is encoded as Stack -1, never by omission.
type Event struct {
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"`
	// Run labels the originating run ("ABBR/config") when several runs
	// share one sink (see LabelSink); empty for single-run traces.
	Run string `json:"run,omitempty"`
	// SM is the emitting streaming multiprocessor's global id.
	SM int `json:"sm"`
	// Stack is the memory stack involved (destination for offloads);
	// -1 when the step fired before a destination was known (gate events
	// with reason cond or nodest).
	Stack int `json:"stack"`
	// PC is the candidate region's start PC.
	PC int `json:"pc"`
	// Reason qualifies gate events (busy, full, cond, alu, nodest) and
	// names the sampled kind on trace_sampled summaries.
	Reason string `json:"reason,omitempty"`
	// Bytes is the payload size on the wire for send/ack events.
	Bytes int `json:"bytes,omitempty"`
	// N is an event-specific count (dirty lines invalidated, learning
	// instances observed, events seen on trace_sampled summaries).
	N int `json:"n,omitempty"`
	// Bit is the learned mapping bit on learn-end events; nil when the
	// learning phase closed without picking a bit (and on every other
	// kind). A pointer so a learned bit of 0 round-trips unambiguously.
	Bit *int `json:"bit,omitempty"`
	// Kept is the number of events forwarded per kind on trace_sampled
	// summaries (N - Kept were dropped).
	Kept int `json:"kept,omitempty"`
}

// BitValue returns a pointer to b, for building learn-end events.
func BitValue(b int) *int { return &b }

// Event kinds emitted by the simulator (see docs/OBSERVABILITY.md).
const (
	EvCandidate = "candidate" // main-SM warp reached a candidate entry
	EvGate      = "gate"      // offload suppressed (Reason says why)
	EvSend      = "send"      // offload request queued on the TX link
	EvSpawn     = "spawn"     // stack SM started executing the region
	EvAck       = "ack"       // region done; ack queued on the RX link
	EvFinish    = "finish"    // requesting warp resumed (N dirty lines)
	EvLearnEnd  = "learn_end" // tmap learning phase closed
	// EvMapInstall records a stored mapping pre-installed at construction
	// (the "map once, stay resident" path): Bit is the installed bit, N the
	// number of re-mapped ranges. No learning phase follows.
	EvMapInstall = "map_install"
)

// EvTraceSampled is the synthetic per-kind summary a SamplingSink emits when
// it is flushed: Reason names the sampled kind, N counts the events seen and
// Kept the events forwarded, so a thinned trace states what was sampled away
// (seen = kept + dropped).
const EvTraceSampled = "trace_sampled"

// Event kinds emitted by the evaluation layer's adaptive control loop
// (internal/core). Cycle is always 0 — these are session-level steps, not
// simulated time; Run carries the "ABBR/config" key.
const (
	// EvAdaptIter closes one profile→refine iteration; N is the 1-based
	// iteration index.
	EvAdaptIter = "adapt_iter"
	// EvAdaptDone closes an iterated refinement; N is the number of
	// profiling iterations executed, Reason is "converged" or "bound".
	EvAdaptDone = "adapt_done"
	// EvFeedbackStore records one persisted-feedback-store access; Reason
	// is "hit", "miss", or "save".
	EvFeedbackStore = "feedback_store"
)

// EventSink consumes trace events. Implementations must be safe for
// concurrent Emit calls.
type EventSink interface {
	Emit(Event)
}

// Flusher is implemented by sinks that buffer, summarize, or wrap other
// sinks. Flush drains whatever the sink holds back — buffered bytes,
// pending trace_sampled summaries — and propagates through wrapper chains
// to the innermost sink. Call it once, after the last Emit.
type Flusher interface {
	Flush() error
}

// Flush flushes s if it (or whatever it wraps) implements Flusher; sinks
// with nothing to flush are a no-op.
func Flush(s EventSink) error {
	if f, ok := s.(Flusher); ok {
		return f.Flush()
	}
	return nil
}
