package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Format names one of the two trace encodings.
type Format int

const (
	// FormatJSONL is one JSON object per line (JSONLSink).
	FormatJSONL Format = iota
	// FormatBinary is the compact varint/delta encoding (BinarySink).
	FormatBinary
)

// String returns the flag spelling of the format.
func (f Format) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "jsonl"
}

// ParseFormat maps a flag value ("jsonl" or "binary") to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "jsonl":
		return FormatJSONL, nil
	case "binary":
		return FormatBinary, nil
	}
	return 0, fmt.Errorf("obs: unknown trace format %q (want jsonl or binary)", s)
}

// EventReader yields a trace's events in stream order; Next returns io.EOF
// at a clean end of input.
type EventReader interface {
	Next() (Event, error)
}

// JSONLReader decodes a JSON-lines trace (the JSONLSink encoding).
type JSONLReader struct {
	dec *json.Decoder
}

// NewJSONLReader reads events from r.
func NewJSONLReader(r io.Reader) *JSONLReader {
	return &JSONLReader{dec: json.NewDecoder(r)}
}

// Next returns the next event, or io.EOF at end of input.
func (d *JSONLReader) Next() (Event, error) {
	var ev Event
	if err := d.dec.Decode(&ev); err != nil {
		return ev, err
	}
	return ev, nil
}

// NewReader detects the trace format of r by its leading bytes (the binary
// magic, else JSONL) and returns the matching decoder.
func NewReader(r io.Reader) (EventReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(binaryMagic))
	if err != nil && err != io.EOF {
		return nil, err
	}
	if string(head) == binaryMagic {
		return NewBinaryReader(br)
	}
	return NewJSONLReader(br), nil
}

// FlushingSink is an EventSink that buffers and must be flushed before the
// underlying writer is closed (both trace encoders are one).
type FlushingSink interface {
	EventSink
	Flusher
}

// NewSink returns the encoder for the given format over w.
func NewSink(w io.Writer, f Format) FlushingSink {
	if f == FormatBinary {
		return NewBinarySink(w)
	}
	return NewJSONLSink(w)
}

// Filter selects a subset of a trace. The zero value matches everything;
// each set constraint must hold (conjunction).
type Filter struct {
	// Kinds, when non-empty, keeps only events whose Kind is listed.
	Kinds []string
	// Run, when non-empty, keeps only events with this run label.
	Run string
	// Stack, when non-nil, keeps only events on this stack id (use -1 for
	// events that fired before a destination was known).
	Stack *int
}

// Match reports whether ev passes the filter.
func (f *Filter) Match(ev Event) bool {
	if f == nil {
		return true
	}
	if len(f.Kinds) > 0 {
		ok := false
		for _, k := range f.Kinds {
			if ev.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.Run != "" && ev.Run != f.Run {
		return false
	}
	if f.Stack != nil && ev.Stack != *f.Stack {
		return false
	}
	return true
}

// Convert streams a trace from in (format auto-detected) to out in the
// requested format, keeping only events the filter matches (nil keeps
// everything). It returns how many events were read and written. Because
// both decoders yield identical Event values and both encoders are
// deterministic, converting a binary trace to JSONL reproduces the native
// JSONL encoding of the same run byte for byte (and vice versa).
func Convert(in io.Reader, out io.Writer, to Format, filter *Filter) (read, written int, err error) {
	r, err := NewReader(in)
	if err != nil {
		return 0, 0, err
	}
	sink := NewSink(out, to)
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return read, written, err
		}
		read++
		if !filter.Match(ev) {
			continue
		}
		sink.Emit(ev)
		written++
	}
	return read, written, sink.Flush()
}
