package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestScopedRegistrySharesStore: scoped views resolve into the root store
// under prefixed names, and the same scoped name yields the same handle.
func TestScopedRegistrySharesStore(t *testing.T) {
	root := NewRegistry()
	a := root.Scoped("runA/")
	b := root.Scoped("runB/")

	a.Counter("offload.sent").Add(3)
	b.Counter("offload.sent").Add(5)

	if got := root.Counter("runA/offload.sent").Value(); got != 3 {
		t.Errorf("root sees runA counter = %d, want 3", got)
	}
	if got := root.Counter("runB/offload.sent").Value(); got != 5 {
		t.Errorf("root sees runB counter = %d, want 5", got)
	}
	if a.Counter("offload.sent") != root.Counter("runA/offload.sent") {
		t.Error("scoped and root lookups must return the same handle")
	}
	if a.Counter("offload.sent") == b.Counter("offload.sent") {
		t.Error("different scopes must not collide")
	}
	if got := a.Scoped("x/").Prefix(); got != "runA/x/" {
		t.Errorf("nested prefix = %q, want runA/x/", got)
	}
}

// TestScopedSnapshotStripsPrefix: a scoped view's snapshot must contain
// exactly its own metrics under their local names — identical to what a
// private registry would have produced for that run.
func TestScopedSnapshotStripsPrefix(t *testing.T) {
	root := NewRegistry()
	a := root.Scoped("LIB/ctrl-tmap/")
	b := root.Scoped("BFS/ctrl-tmap/")

	a.Counter("offload.sent").Add(7)
	a.Gauge("depth").Set(2)
	a.Series("traffic.gpu_tx_bytes", 128).Add(100, 42)
	b.Counter("offload.sent").Add(9)

	snap := a.Snapshot()
	if got := snap.Counters["offload.sent"]; got != 7 {
		t.Errorf("scoped snapshot counter = %d, want 7", got)
	}
	if len(snap.Counters) != 1 || len(snap.Gauges) != 1 || len(snap.Series) != 1 {
		t.Errorf("scoped snapshot leaked foreign metrics: %+v", snap)
	}
	if got := snap.Series["traffic.gpu_tx_bytes"].Values[0]; got != 42 {
		t.Errorf("scoped series value = %v, want 42", got)
	}

	rootSnap := root.Snapshot()
	if got := rootSnap.Counters["LIB/ctrl-tmap/offload.sent"]; got != 7 {
		t.Errorf("root snapshot misses prefixed counter: %v", rootSnap.Counters)
	}
	if len(rootSnap.Counters) != 2 {
		t.Errorf("root snapshot counters = %v, want both runs", rootSnap.Counters)
	}

	names := a.Names()
	if len(names) != 3 {
		t.Errorf("scoped names = %v, want 3 local names", names)
	}
	for _, n := range names {
		if strings.HasPrefix(n, "LIB/") {
			t.Errorf("scoped name %q still carries the prefix", n)
		}
	}
}

// TestScopedRegistryConcurrent: many scopes hammering one store must not
// race or lose updates (run under -race in CI).
func TestScopedRegistryConcurrent(t *testing.T) {
	root := NewRegistry()
	const scopes, per = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < scopes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := root.Scoped(fmt.Sprintf("run%d/", i))
			c := sc.Counter("offload.sent")
			s := sc.Series("traffic", 64)
			for j := 0; j < per; j++ {
				c.Inc()
				s.Add(int64(j), 1)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < scopes; i++ {
		sc := root.Scoped(fmt.Sprintf("run%d/", i))
		if got := sc.Counter("offload.sent").Value(); got != per {
			t.Errorf("scope %d counter = %d, want %d", i, got, per)
		}
		if got := sc.Series("traffic", 64).Sum(); got != per {
			t.Errorf("scope %d series sum = %v, want %d", i, got, per)
		}
	}
	if got := len(root.Names()); got != 2*scopes {
		t.Errorf("root names = %d, want %d", got, 2*scopes)
	}
}

// TestLabelSink: every forwarded event must carry the run label.
func TestLabelSink(t *testing.T) {
	var inner CollectSink
	s := NewLabelSink(&inner, "LIB/ctrl-tmap")
	s.Emit(Event{Cycle: 1, Kind: EvSend})
	s.Emit(Event{Cycle: 2, Kind: EvAck, Run: "overwritten"})
	evs := inner.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	for _, ev := range evs {
		if ev.Run != "LIB/ctrl-tmap" {
			t.Errorf("event run = %q, want LIB/ctrl-tmap", ev.Run)
		}
	}
}

// TestSamplingSinkPerKind: sampling must be per kind (rare kinds survive a
// flood of common ones), keep the first event of each kind, and count drops.
func TestSamplingSinkPerKind(t *testing.T) {
	var inner CollectSink
	s := NewSamplingSink(&inner, 10)
	for i := 0; i < 100; i++ {
		s.Emit(Event{Cycle: int64(i), Kind: EvSend})
	}
	s.Emit(Event{Cycle: 999, Kind: EvLearnEnd})
	if got := inner.CountKind(EvSend); got != 10 {
		t.Errorf("send events kept = %d, want 10", got)
	}
	if got := inner.CountKind(EvLearnEnd); got != 1 {
		t.Errorf("rare kind must survive sampling, kept %d", got)
	}
	if got := s.Dropped(); got != 90 {
		t.Errorf("dropped = %d, want 90", got)
	}
	// The first event of a kind is always kept.
	if evs := inner.Events(); evs[0].Cycle != 0 {
		t.Errorf("first kept event cycle = %d, want 0", evs[0].Cycle)
	}
}

// TestSamplingSinkPassthrough: n <= 1 must forward everything.
func TestSamplingSinkPassthrough(t *testing.T) {
	var inner CollectSink
	s := NewSamplingSink(&inner, 0)
	for i := 0; i < 5; i++ {
		s.Emit(Event{Kind: EvGate})
	}
	if got := inner.CountKind(EvGate); got != 5 {
		t.Errorf("passthrough kept %d, want 5", got)
	}
	if s.Dropped() != 0 {
		t.Errorf("passthrough dropped %d, want 0", s.Dropped())
	}
}
