package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestRegistryHandlesAreStable: concurrent get-or-create must hand every
// goroutine the same instance, so updates land on one metric.
func TestRegistryHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	counters := make([]*Counter, workers)
	gauges := make([]*Gauge, workers)
	series := make([]*Series, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counters[i] = r.Counter("c")
			gauges[i] = r.Gauge("g")
			series[i] = r.Series("s", 64)
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if counters[i] != counters[0] || gauges[i] != gauges[0] || series[i] != series[0] {
			t.Fatalf("worker %d got a different handle", i)
		}
	}
}

// TestCounterConcurrentAdd: the counter must not lose increments under
// concurrent emit.
func TestCounterConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("offload.sent")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

// TestSeriesConcurrentAdd: concurrent bucket accumulation must preserve the
// total sum and bucket placement.
func TestSeriesConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	s := r.Series("traffic", 100)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				s.Add(int64(j), 1) // buckets 0..19
			}
		}(i)
	}
	wg.Wait()
	if got, want := s.Sum(), float64(workers*per); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	vals := s.Values()
	if len(vals) != per/100 {
		t.Fatalf("len = %d, want %d", len(vals), per/100)
	}
	for i, v := range vals {
		if v != workers*100 {
			t.Fatalf("bucket %d = %v, want %v", i, v, workers*100)
		}
	}
}

// TestSeriesBucketing pins the bucket-index arithmetic, including the
// negative-cycle guard.
func TestSeriesBucketing(t *testing.T) {
	s := NewRegistry().Series("s", 10)
	s.Add(-5, 1) // clamped to bucket 0
	s.Add(0, 1)
	s.Add(9, 1)
	s.Add(10, 2)
	s.Add(25, 4)
	want := []float64{3, 2, 4}
	got := s.Values()
	if len(got) != len(want) {
		t.Fatalf("values = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("values = %v, want %v", got, want)
		}
	}
	if s.Interval() != 10 {
		t.Fatalf("interval = %d", s.Interval())
	}
}

// TestSeriesIntervalFixedAtCreation: later callers with a different
// interval get the existing series.
func TestSeriesIntervalFixedAtCreation(t *testing.T) {
	r := NewRegistry()
	a := r.Series("s", 10)
	b := r.Series("s", 999)
	if a != b || b.Interval() != 10 {
		t.Fatalf("interval changed on re-lookup: %d", b.Interval())
	}
	if r.Series("d", 0).Interval() != DefaultSampleEvery {
		t.Fatal("zero interval must fall back to the default")
	}
}

// TestSnapshotIsCopy: mutating the registry after Snapshot must not change
// the snapshot.
func TestSnapshotIsCopy(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(-3)
	r.Series("s", 10).Add(0, 1.5)
	snap := r.Snapshot()
	r.Counter("c").Add(100)
	r.Gauge("g").Set(7)
	r.Series("s", 10).Add(0, 10)
	if snap.Counters["c"] != 5 || snap.Gauges["g"] != -3 {
		t.Fatalf("snapshot mutated: %+v", snap)
	}
	if sd := snap.Series["s"]; sd.Interval != 10 || len(sd.Values) != 1 || sd.Values[0] != 1.5 {
		t.Fatalf("series snapshot mutated: %+v", snap.Series["s"])
	}
}

// TestObserverNilSafety: a nil observer must be inert for every method the
// simulator calls.
func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	o.Emit(Event{Kind: EvCandidate}) // must not panic
	if o.Interval() != DefaultSampleEvery {
		t.Fatalf("nil interval = %d", o.Interval())
	}
	live := New()
	live.Emit(Event{Kind: EvSend}) // nil Trace: dropped
	live.SampleEvery = 256
	if live.Interval() != 256 {
		t.Fatalf("interval = %d", live.Interval())
	}
}

// TestJSONLSinkConcurrent: concurrent Emit must produce one valid JSON
// object per line with no interleaving.
func TestJSONLSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				sink.Emit(Event{Cycle: int64(j), Kind: EvSend, Stack: i})
			}
		}(i)
	}
	wg.Wait()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	n := 0
	for dec.More() {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if ev.Kind != EvSend {
			t.Fatalf("line %d: kind %q", n, ev.Kind)
		}
		n++
	}
	if n != workers*per {
		t.Fatalf("decoded %d events, want %d", n, workers*per)
	}
}

// TestGaugeAndSum exercises the remaining small surfaces.
func TestGaugeAndSum(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pending")
	g.Add(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Fatalf("gauge = %d", g.Value())
	}
	s := r.Series("x", 10)
	s.Add(0, 0.25)
	s.Add(15, 0.5)
	if math.Abs(s.Sum()-0.75) > 1e-12 {
		t.Fatalf("sum = %v", s.Sum())
	}
	r.Counter("c")
	names := r.Names()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
}
