package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Binary trace format ("tomtrace v1").
//
// The JSONL trace spends 50-90 bytes per lifecycle event; at full Fig. 9
// scale that is the difference between a trace you leave on and one you
// don't. The binary format encodes the same Event stream in a few bytes per
// record:
//
//	header:  8-byte magic "TOMTRACE", uvarint format version (currently 1)
//	record:  kind      string ref (interned, see below)
//	         cycle     zigzag varint delta vs. the previous record
//	         presence  uvarint bitmap, one bit per optional field
//	         fields    in bit order, only those whose presence bit is set
//
// Strings (Kind, Run, Reason) share one interning table: ref 0 introduces a
// new string (uvarint length + bytes) and assigns it the next index; ref k>0
// refers to table entry k-1. Kinds, run labels, and gate reasons form a
// small closed set, so after the first few records every string costs one
// byte.
//
// Integer fields (SM, Stack, PC, Bytes, N, Bit, Kept) are zigzag varint
// deltas against the previous *encoded* value of the same field; a clear
// presence bit means the field holds its zero value (0, nil Bit, empty
// string) and leaves the delta state untouched. The presence bitmap is what
// makes zero unambiguous: an absent field decodes to exactly the zero the
// encoder saw, and a present field — including Stack -1 or a Bit pointer to
// 0 — round-trips verbatim, so the format has no omitempty-style aliasing
// by construction.
//
// The encoding is fully deterministic: the same event stream always
// produces the same bytes (tested property).
const (
	binaryMagic   = "TOMTRACE"
	binaryVersion = 1
)

// Presence bits, in field encode order.
const (
	fRun = 1 << iota
	fSM
	fStack
	fPC
	fReason
	fBytes
	fN
	fBit
	fKept
)

// Delta-state slots for the integer fields.
const (
	dSM = iota
	dStack
	dPC
	dBytes
	dN
	dBit
	dKept
	numDeltas
)

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// binState is the shared encoder/decoder state: the string intern table and
// the per-field delta accumulators. Encoder and decoder evolve identical
// copies record by record.
type binState struct {
	refs      map[string]uint64 // encoder: string -> 1-based ref
	strs      []string          // decoder: ref-1 -> string (encoder mirrors it for len)
	prevCycle int64
	prev      [numDeltas]int64
}

func newBinState() *binState {
	return &binState{refs: map[string]uint64{}}
}

// appendString encodes s against the intern table.
func (st *binState) appendString(buf []byte, s string) []byte {
	if ref, ok := st.refs[s]; ok {
		return binary.AppendUvarint(buf, ref)
	}
	st.strs = append(st.strs, s)
	st.refs[s] = uint64(len(st.strs))
	buf = binary.AppendUvarint(buf, 0)
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendDelta encodes v as a zigzag delta for field slot d.
func (st *binState) appendDelta(buf []byte, d int, v int64) []byte {
	buf = binary.AppendUvarint(buf, zigzag(v-st.prev[d]))
	st.prev[d] = v
	return buf
}

// appendEvent encodes one record.
func (st *binState) appendEvent(buf []byte, ev Event) []byte {
	buf = st.appendString(buf, ev.Kind)
	buf = binary.AppendUvarint(buf, zigzag(ev.Cycle-st.prevCycle))
	st.prevCycle = ev.Cycle

	var mask uint64
	if ev.Run != "" {
		mask |= fRun
	}
	if ev.SM != 0 {
		mask |= fSM
	}
	if ev.Stack != 0 {
		mask |= fStack
	}
	if ev.PC != 0 {
		mask |= fPC
	}
	if ev.Reason != "" {
		mask |= fReason
	}
	if ev.Bytes != 0 {
		mask |= fBytes
	}
	if ev.N != 0 {
		mask |= fN
	}
	if ev.Bit != nil {
		mask |= fBit
	}
	if ev.Kept != 0 {
		mask |= fKept
	}
	buf = binary.AppendUvarint(buf, mask)

	if mask&fRun != 0 {
		buf = st.appendString(buf, ev.Run)
	}
	if mask&fSM != 0 {
		buf = st.appendDelta(buf, dSM, int64(ev.SM))
	}
	if mask&fStack != 0 {
		buf = st.appendDelta(buf, dStack, int64(ev.Stack))
	}
	if mask&fPC != 0 {
		buf = st.appendDelta(buf, dPC, int64(ev.PC))
	}
	if mask&fReason != 0 {
		buf = st.appendString(buf, ev.Reason)
	}
	if mask&fBytes != 0 {
		buf = st.appendDelta(buf, dBytes, int64(ev.Bytes))
	}
	if mask&fN != 0 {
		buf = st.appendDelta(buf, dN, int64(ev.N))
	}
	if mask&fBit != 0 {
		buf = st.appendDelta(buf, dBit, int64(*ev.Bit))
	}
	if mask&fKept != 0 {
		buf = st.appendDelta(buf, dKept, int64(ev.Kept))
	}
	return buf
}

// BinarySink writes events in the binary trace format (the cmd/tomsim
// -trace-format=binary encoding). Writes are buffered; call Flush before
// the underlying writer is closed. Like JSONLSink, the first write error is
// retained and later events are dropped. Safe for concurrent Emit.
type BinarySink struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	st      *binState
	scratch []byte
	err     error
}

// NewBinarySink wraps w in a buffered binary-trace encoder and queues the
// version-tagged header; any write error (including the header's) surfaces
// through Flush.
func NewBinarySink(w io.Writer) *BinarySink {
	bw := bufio.NewWriterSize(w, 1<<16)
	s := &BinarySink{bw: bw, st: newBinState()}
	var hdr []byte
	hdr = append(hdr, binaryMagic...)
	hdr = binary.AppendUvarint(hdr, binaryVersion)
	if _, err := bw.Write(hdr); err != nil {
		s.err = err
	}
	return s
}

// Emit writes one event. The first write error is retained (and returned by
// Flush); later events are dropped.
func (s *BinarySink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.scratch = s.st.appendEvent(s.scratch[:0], ev)
	if _, err := s.bw.Write(s.scratch); err != nil {
		s.err = err
	}
}

// Flush drains the buffer and returns the first error seen.
func (s *BinarySink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}

// maxBinaryString bounds interned-string lengths on decode, so a corrupt
// length prefix fails cleanly instead of attempting a huge allocation.
const maxBinaryString = 1 << 16

// BinaryReader decodes a binary trace produced by BinarySink.
type BinaryReader struct {
	br *bufio.Reader
	st *binState
}

// NewBinaryReader validates the header and returns a reader positioned at
// the first record.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("obs: not a binary trace: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("obs: not a binary trace (magic %q)", magic)
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("obs: binary trace header: %w", err)
	}
	if v == 0 || v > binaryVersion {
		return nil, fmt.Errorf("obs: binary trace version %d not supported (max %d)", v, binaryVersion)
	}
	return &BinaryReader{br: br, st: newBinState()}, nil
}

// readString decodes one interned string.
func (d *BinaryReader) readString() (string, error) {
	ref, err := binary.ReadUvarint(d.br)
	if err != nil {
		return "", err
	}
	if ref > 0 {
		if ref > uint64(len(d.st.strs)) {
			return "", fmt.Errorf("obs: binary trace: string ref %d beyond table size %d", ref, len(d.st.strs))
		}
		return d.st.strs[ref-1], nil
	}
	n, err := binary.ReadUvarint(d.br)
	if err != nil {
		return "", eofIsUnexpected(err)
	}
	if n > maxBinaryString {
		return "", fmt.Errorf("obs: binary trace: string length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.br, b); err != nil {
		return "", eofIsUnexpected(err)
	}
	s := string(b)
	d.st.strs = append(d.st.strs, s)
	return s, nil
}

// readDelta decodes one zigzag delta for field slot i.
func (d *BinaryReader) readDelta(i int) (int64, error) {
	u, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, eofIsUnexpected(err)
	}
	d.st.prev[i] += unzigzag(u)
	return d.st.prev[i], nil
}

// Next returns the next event, or io.EOF at a clean end of stream. Any
// other error (including io.ErrUnexpectedEOF on a truncated record) means
// the trace is corrupt past this point.
func (d *BinaryReader) Next() (Event, error) {
	var ev Event
	// A clean EOF can only fall on a record boundary, i.e. before the kind.
	kind, err := d.readString()
	if err != nil {
		return ev, err
	}
	ev.Kind = kind
	cu, err := binary.ReadUvarint(d.br)
	if err != nil {
		return ev, eofIsUnexpected(err)
	}
	d.st.prevCycle += unzigzag(cu)
	ev.Cycle = d.st.prevCycle
	mask, err := binary.ReadUvarint(d.br)
	if err != nil {
		return ev, eofIsUnexpected(err)
	}
	if mask&fRun != 0 {
		if ev.Run, err = d.readString(); err != nil {
			return ev, eofIsUnexpected(err)
		}
	}
	var v int64
	if mask&fSM != 0 {
		if v, err = d.readDelta(dSM); err != nil {
			return ev, err
		}
		ev.SM = int(v)
	}
	if mask&fStack != 0 {
		if v, err = d.readDelta(dStack); err != nil {
			return ev, err
		}
		ev.Stack = int(v)
	}
	if mask&fPC != 0 {
		if v, err = d.readDelta(dPC); err != nil {
			return ev, err
		}
		ev.PC = int(v)
	}
	if mask&fReason != 0 {
		if ev.Reason, err = d.readString(); err != nil {
			return ev, eofIsUnexpected(err)
		}
	}
	if mask&fBytes != 0 {
		if v, err = d.readDelta(dBytes); err != nil {
			return ev, err
		}
		ev.Bytes = int(v)
	}
	if mask&fN != 0 {
		if v, err = d.readDelta(dN); err != nil {
			return ev, err
		}
		ev.N = int(v)
	}
	if mask&fBit != 0 {
		if v, err = d.readDelta(dBit); err != nil {
			return ev, err
		}
		ev.Bit = BitValue(int(v))
	}
	if mask&fKept != 0 {
		if v, err = d.readDelta(dKept); err != nil {
			return ev, err
		}
		ev.Kept = int(v)
	}
	return ev, nil
}

// eofIsUnexpected maps a mid-record io.EOF to io.ErrUnexpectedEOF, so only
// a clean record boundary reads as end-of-stream.
func eofIsUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
