package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// collectBinary encodes events with a BinarySink and returns the bytes.
func collectBinary(t *testing.T, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := NewBinarySink(&buf)
	for _, ev := range events {
		sink.Emit(ev)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// collectJSONL encodes events with a JSONLSink and returns the bytes.
func collectJSONL(t *testing.T, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, ev := range events {
		sink.Emit(ev)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeBinary reads every event back from a binary trace.
func decodeBinary(t *testing.T, data []byte) []Event {
	t.Helper()
	r, err := NewBinaryReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var out []Event
	for {
		ev, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("event %d: %v", len(out), err)
		}
		out = append(out, ev)
	}
}

// TestBinaryZeroFieldsRoundTrip is the format-level regression for the
// omitempty bug: SM 0, stack 0, PC 0, and learned bit 0 are legitimate
// values and must survive the binary encoding exactly, distinguishable
// from -1 ("no destination" / any real id) and from nil ("no bit").
func TestBinaryZeroFieldsRoundTrip(t *testing.T) {
	events := []Event{
		{Cycle: 0, Kind: EvSend, SM: 0, Stack: 0, PC: 0, Bytes: 160},
		{Cycle: 5, Kind: EvGate, SM: 0, Stack: -1, PC: 0, Reason: "nodest"},
		{Cycle: 9, Kind: EvLearnEnd, N: 128, Bit: BitValue(0)},
		{Cycle: 9, Kind: EvLearnEnd, N: 0},             // no bit learned: nil
		{Cycle: 12, Kind: EvAck, SM: 3, Stack: 0, PC: 7, Bytes: 96},
	}
	got := decodeBinary(t, collectBinary(t, events))
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, events)
	}
	if got[2].Bit == nil || *got[2].Bit != 0 {
		t.Errorf("learned bit 0 did not survive: %v", got[2].Bit)
	}
	if got[3].Bit != nil {
		t.Errorf("nil bit became %d", *got[3].Bit)
	}
	if got[1].Stack != -1 {
		t.Errorf("no-destination stack = %d, want -1", got[1].Stack)
	}
}

// TestJSONLZeroFieldsUnambiguous is the encoding-level regression for the
// satellite bugfix: a learn_end with learned bit 0 and a send to stack 0
// must round-trip through JSONLSink with the fields explicitly present.
func TestJSONLZeroFieldsUnambiguous(t *testing.T) {
	events := []Event{
		{Cycle: 3, Kind: EvSend, SM: 0, Stack: 0, PC: 0, Bytes: 160},
		{Cycle: 8, Kind: EvLearnEnd, N: 64, Bit: BitValue(0)},
		{Cycle: 8, Kind: EvLearnEnd, N: 0}, // closed without a bit
	}
	data := collectJSONL(t, events)
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	for _, want := range []string{`"sm":0`, `"stack":0`, `"pc":0`} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("send line %s lacks %s", lines[0], want)
		}
	}
	if !strings.Contains(lines[1], `"bit":0`) {
		t.Errorf("learn_end line %s lacks \"bit\":0", lines[1])
	}
	if strings.Contains(lines[2], `"bit"`) {
		t.Errorf("bit-less learn_end must omit the field: %s", lines[2])
	}
	var got []Event
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("JSONL round trip mismatch:\n got %+v\nwant %+v", got, events)
	}
}

// randomEvents builds a deterministic pseudo-random stream that exercises
// the codec's corners: zero values everywhere, negative sentinels, nil and
// zero bits, interleaved multi-run labels, and non-monotone cycles (as a
// merged parallel trace produces).
func randomEvents(rng *rand.Rand, n int) []Event {
	kinds := []string{EvCandidate, EvGate, EvSend, EvSpawn, EvAck, EvFinish,
		EvLearnEnd, EvTraceSampled, "custom_kind"}
	runs := []string{"", "LIB/ctrl-tmap", "BFS/no-ctrl-bmap", "RAY/baseline"}
	reasons := []string{"", "busy", "full", "cond", "alu", "nodest"}
	cycles := make([]int64, len(runs)) // per-run monotone clocks
	out := make([]Event, n)
	for i := range out {
		ri := rng.Intn(len(runs))
		cycles[ri] += int64(rng.Intn(2000))
		ev := Event{
			Cycle:  cycles[ri],
			Kind:   kinds[rng.Intn(len(kinds))],
			Run:    runs[ri],
			SM:     rng.Intn(6) - 1,
			Stack:  rng.Intn(6) - 1,
			PC:     rng.Intn(40),
			Reason: reasons[rng.Intn(len(reasons))],
			Bytes:  rng.Intn(512),
			N:      rng.Intn(64),
			Kept:   rng.Intn(8),
		}
		switch rng.Intn(3) {
		case 0: // no bit
		case 1:
			ev.Bit = BitValue(0)
		case 2:
			ev.Bit = BitValue(rng.Intn(8) - 1)
		}
		out[i] = ev
	}
	return out
}

// TestBinaryRoundTripProperty: random streams — including the empty one —
// must round-trip exactly, encode deterministically at the byte level, and
// convert to JSONL identical to a native JSONL encoding.
func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial, n := range []int{0, 1, 7, 300, 4000} {
		events := randomEvents(rng, n)
		bin := collectBinary(t, events)
		if again := collectBinary(t, events); !bytes.Equal(bin, again) {
			t.Fatalf("trial %d: binary encoding is not deterministic", trial)
		}
		got := decodeBinary(t, bin)
		if len(got) != len(events) {
			t.Fatalf("trial %d: decoded %d events, want %d", trial, len(got), len(events))
		}
		if n > 0 && !reflect.DeepEqual(got, events) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
		// Re-encoding the decoded stream reproduces the bytes.
		if re := collectBinary(t, got); !bytes.Equal(bin, re) {
			t.Fatalf("trial %d: decode→encode is not the identity", trial)
		}
		// Binary→JSONL conversion equals the native JSONL encoding.
		var conv bytes.Buffer
		read, written, err := Convert(bytes.NewReader(bin), &conv, FormatJSONL, nil)
		if err != nil {
			t.Fatalf("trial %d: convert: %v", trial, err)
		}
		if read != n || written != n {
			t.Fatalf("trial %d: convert counts %d/%d, want %d", trial, read, written, n)
		}
		if want := collectJSONL(t, events); !bytes.Equal(conv.Bytes(), want) {
			t.Fatalf("trial %d: converted JSONL differs from native JSONL", trial)
		}
		// And JSONL→binary conversion equals the native binary encoding.
		var back bytes.Buffer
		if _, _, err := Convert(bytes.NewReader(collectJSONL(t, events)), &back, FormatBinary, nil); err != nil {
			t.Fatalf("trial %d: convert back: %v", trial, err)
		}
		if !bytes.Equal(back.Bytes(), bin) {
			t.Fatalf("trial %d: JSONL→binary differs from native binary", trial)
		}
	}
}

// TestBinaryCompression: the binary encoding of a realistic lifecycle
// stream must be at least 5x smaller than its JSONL equivalent (the
// full-scale-trace acceptance bound; CI enforces the same on a real run).
func TestBinaryCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var events []Event
	cycle := int64(0)
	for i := 0; i < 20000; i++ {
		cycle += int64(rng.Intn(40))
		sm, stack, pc := rng.Intn(68), rng.Intn(4), 3+4*rng.Intn(5)
		switch rng.Intn(4) {
		case 0:
			events = append(events, Event{Cycle: cycle, Kind: EvCandidate, SM: sm, PC: pc})
		case 1:
			events = append(events, Event{Cycle: cycle, Kind: EvGate, SM: sm, Stack: stack, PC: pc, Reason: "busy"})
		case 2:
			events = append(events, Event{Cycle: cycle, Kind: EvSend, SM: sm, Stack: stack, PC: pc, Bytes: 160})
		case 3:
			events = append(events, Event{Cycle: cycle, Kind: EvAck, SM: sm, Stack: stack, PC: pc, Bytes: 96})
		}
	}
	bin := len(collectBinary(t, events))
	jsonl := len(collectJSONL(t, events))
	if bin*5 > jsonl {
		t.Fatalf("binary trace is only %.1fx smaller (%d vs %d bytes), want >= 5x",
			float64(jsonl)/float64(bin), bin, jsonl)
	}
	t.Logf("20000 events: jsonl %d bytes, binary %d bytes (%.1fx)",
		jsonl, bin, float64(jsonl)/float64(bin))
}

// TestBinaryReaderRejectsCorrupt: bad magic, unsupported versions, dangling
// string refs, and truncated records must all fail loudly — only a record
// boundary may read as end-of-stream.
func TestBinaryReaderRejectsCorrupt(t *testing.T) {
	if _, err := NewBinaryReader(strings.NewReader(`{"cycle":1}` + "\n")); err == nil {
		t.Error("JSONL input must not parse as a binary trace")
	}
	if _, err := NewBinaryReader(strings.NewReader("TOM")); err == nil {
		t.Error("truncated magic must fail")
	}
	if _, err := NewBinaryReader(strings.NewReader(binaryMagic + "\x7f")); err == nil {
		t.Error("future version must be rejected")
	}

	data := collectBinary(t, []Event{
		{Cycle: 10, Kind: EvSend, SM: 1, Stack: 2, PC: 3, Bytes: 160},
		{Cycle: 20, Kind: EvAck, SM: 1, Stack: 2, PC: 3, Bytes: 96},
	})
	for cut := len(binaryMagic) + 2; cut < len(data); cut++ {
		r, err := NewBinaryReader(bytes.NewReader(data[:cut]))
		if err != nil {
			continue // header itself truncated
		}
		sawEnd := false
		for i := 0; i < 4 && !sawEnd; i++ {
			_, err := r.Next()
			switch err {
			case nil:
			case io.EOF:
				sawEnd = true // truncation landed exactly on a record boundary
			default:
				sawEnd = true // corrupt: reported as a real error
			}
		}
		if !sawEnd {
			t.Fatalf("cut at %d: reader neither ended nor errored", cut)
		}
	}

	// A dangling intern ref must error, not panic.
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	buf.WriteByte(1)    // version
	buf.WriteByte(9)    // kind ref 9: table is empty
	if r, err := NewBinaryReader(bytes.NewReader(buf.Bytes())); err == nil {
		if _, err := r.Next(); err == nil || err == io.EOF {
			t.Error("dangling string ref must be a hard error")
		}
	}
}

// TestConvertFilters: kind, run, and stack filters conjoin, and stack -1
// selects pre-destination events.
func TestConvertFilters(t *testing.T) {
	events := []Event{
		{Cycle: 1, Kind: EvSend, Run: "LIB/ctrl-tmap", SM: 1, Stack: 0, PC: 3, Bytes: 160},
		{Cycle: 2, Kind: EvSend, Run: "BFS/ctrl-tmap", SM: 2, Stack: 2, PC: 3, Bytes: 160},
		{Cycle: 3, Kind: EvGate, Run: "LIB/ctrl-tmap", SM: 1, Stack: -1, PC: 3, Reason: "cond"},
		{Cycle: 4, Kind: EvAck, Run: "LIB/ctrl-tmap", SM: 1, Stack: 0, PC: 3, Bytes: 96},
	}
	bin := collectBinary(t, events)

	decode := func(filter *Filter) []Event {
		var out bytes.Buffer
		if _, _, err := Convert(bytes.NewReader(bin), &out, FormatJSONL, filter); err != nil {
			t.Fatal(err)
		}
		var got []Event
		dec := json.NewDecoder(&out)
		for dec.More() {
			var ev Event
			if err := dec.Decode(&ev); err != nil {
				t.Fatal(err)
			}
			got = append(got, ev)
		}
		return got
	}

	if got := decode(&Filter{Kinds: []string{EvSend, EvAck}}); len(got) != 3 {
		t.Errorf("kind filter kept %d, want 3", len(got))
	}
	if got := decode(&Filter{Run: "LIB/ctrl-tmap"}); len(got) != 3 {
		t.Errorf("run filter kept %d, want 3", len(got))
	}
	noDest := -1
	if got := decode(&Filter{Stack: &noDest}); len(got) != 1 || got[0].Kind != EvGate {
		t.Errorf("stack -1 filter kept %+v, want the cond gate", got)
	}
	zero := 0
	if got := decode(&Filter{Kinds: []string{EvSend}, Run: "LIB/ctrl-tmap", Stack: &zero}); len(got) != 1 ||
		got[0].Cycle != 1 {
		t.Errorf("conjoined filter kept %+v, want the first send", got)
	}
}
