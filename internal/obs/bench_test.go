package obs

import (
	"io"
	"testing"
)

// benchEvents is a small realistic lifecycle slice cycled through by the
// Emit benchmarks.
var benchEvents = []Event{
	{Cycle: 100, Kind: EvCandidate, SM: 12, PC: 3},
	{Cycle: 101, Kind: EvGate, SM: 12, Stack: 2, PC: 3, Reason: "busy"},
	{Cycle: 140, Kind: EvSend, SM: 12, Stack: 2, PC: 3, Bytes: 160},
	{Cycle: 180, Kind: EvSpawn, SM: 70, Stack: 2, PC: 3},
	{Cycle: 400, Kind: EvAck, SM: 70, Stack: 2, PC: 3, Bytes: 96},
	{Cycle: 440, Kind: EvFinish, SM: 12, Stack: 2, PC: 3, N: 4},
}

// BenchmarkSinkEmit compares the per-event encoding cost of the two trace
// formats on the same lifecycle stream.
func BenchmarkSinkEmit(b *testing.B) {
	b.Run("jsonl", func(b *testing.B) {
		sink := NewJSONLSink(io.Discard)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev := benchEvents[i%len(benchEvents)]
			ev.Cycle += int64(i)
			sink.Emit(ev)
		}
	})
	b.Run("binary", func(b *testing.B) {
		sink := NewBinarySink(io.Discard)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev := benchEvents[i%len(benchEvents)]
			ev.Cycle += int64(i)
			sink.Emit(ev)
		}
	})
}
