package obs

import "sync"

// LabelSink stamps every event with a run label before forwarding it, so
// several concurrent runs can share one trace sink and the merged stream
// stays attributable. Safe for concurrent Emit when the inner sink is.
type LabelSink struct {
	inner EventSink
	run   string
}

// NewLabelSink wraps inner, setting Event.Run to run on every event.
func NewLabelSink(inner EventSink, run string) *LabelSink {
	return &LabelSink{inner: inner, run: run}
}

// Emit forwards the event with the run label applied.
func (s *LabelSink) Emit(ev Event) {
	ev.Run = s.run
	s.inner.Emit(ev)
}

// SamplingSink forwards one event in every n per event kind (always the
// first of each kind) and drops the rest, bounding trace volume on long
// full-scale runs while keeping every lifecycle step represented. n <= 1
// forwards everything. Safe for concurrent Emit.
type SamplingSink struct {
	inner EventSink
	n     uint64

	mu      sync.Mutex
	seen    map[string]uint64
	dropped uint64
}

// NewSamplingSink wraps inner, keeping every nth event of each kind.
func NewSamplingSink(inner EventSink, n int) *SamplingSink {
	if n < 1 {
		n = 1
	}
	return &SamplingSink{inner: inner, n: uint64(n), seen: map[string]uint64{}}
}

// Emit forwards the event when its kind's counter lands on a sampling
// point; otherwise the event is counted as dropped.
func (s *SamplingSink) Emit(ev Event) {
	if s.n <= 1 {
		s.inner.Emit(ev)
		return
	}
	s.mu.Lock()
	c := s.seen[ev.Kind]
	s.seen[ev.Kind] = c + 1
	keep := c%s.n == 0
	if !keep {
		s.dropped++
	}
	s.mu.Unlock()
	if keep {
		s.inner.Emit(ev)
	}
}

// Dropped returns how many events were suppressed so far.
func (s *SamplingSink) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
