package obs

import (
	"sort"
	"sync"
)

// LabelSink stamps every event with a run label before forwarding it, so
// several concurrent runs can share one trace sink and the merged stream
// stays attributable. Safe for concurrent Emit when the inner sink is.
type LabelSink struct {
	inner EventSink
	run   string
}

// NewLabelSink wraps inner, setting Event.Run to run on every event.
func NewLabelSink(inner EventSink, run string) *LabelSink {
	return &LabelSink{inner: inner, run: run}
}

// Emit forwards the event with the run label applied.
func (s *LabelSink) Emit(ev Event) {
	ev.Run = s.run
	s.inner.Emit(ev)
}

// Flush flushes the wrapped sink.
func (s *LabelSink) Flush() error { return Flush(s.inner) }

// kindTally counts one event kind through a SamplingSink.
type kindTally struct {
	seen, kept uint64
}

// SamplingSink forwards one event in every n per event kind (always the
// first of each kind) and drops the rest, bounding trace volume on long
// full-scale runs while keeping every lifecycle step represented. n <= 1
// forwards everything. Safe for concurrent Emit.
//
// Flush emits one synthetic EvTraceSampled summary per sampled kind
// (Reason = kind, N = seen, Kept = forwarded) into the wrapped sink before
// flushing it, so a thinned trace records exactly what was sampled away;
// seen = kept + dropped always holds. In pass-through mode (n <= 1) nothing
// is counted and Flush only propagates.
type SamplingSink struct {
	inner EventSink
	n     uint64

	mu        sync.Mutex
	seen      map[string]*kindTally
	dropped   uint64
	summarize bool // summaries not yet emitted
}

// NewSamplingSink wraps inner, keeping every nth event of each kind.
func NewSamplingSink(inner EventSink, n int) *SamplingSink {
	if n < 1 {
		n = 1
	}
	return &SamplingSink{inner: inner, n: uint64(n), seen: map[string]*kindTally{},
		summarize: n > 1}
}

// Emit forwards the event when its kind's counter lands on a sampling
// point; otherwise the event is counted as dropped.
func (s *SamplingSink) Emit(ev Event) {
	if s.n <= 1 {
		s.inner.Emit(ev)
		return
	}
	s.mu.Lock()
	t := s.seen[ev.Kind]
	if t == nil {
		t = &kindTally{}
		s.seen[ev.Kind] = t
	}
	keep := t.seen%s.n == 0
	t.seen++
	if keep {
		t.kept++
	} else {
		s.dropped++
	}
	s.mu.Unlock()
	if keep {
		s.inner.Emit(ev)
	}
}

// Dropped returns how many events were suppressed so far.
func (s *SamplingSink) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Flush emits the per-kind trace_sampled summaries (once — later flushes
// only propagate) and flushes the wrapped sink.
func (s *SamplingSink) Flush() error {
	s.mu.Lock()
	var kinds []string
	if s.summarize {
		s.summarize = false
		for k := range s.seen {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
	}
	summaries := make([]Event, 0, len(kinds))
	for _, k := range kinds {
		t := s.seen[k]
		summaries = append(summaries, Event{Kind: EvTraceSampled, Reason: k,
			N: int(t.seen), Kept: int(t.kept)})
	}
	s.mu.Unlock()
	for _, ev := range summaries {
		s.inner.Emit(ev)
	}
	return Flush(s.inner)
}
