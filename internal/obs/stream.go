package obs

import "sync"

// AutoFlushSink forwards events to an encoder sink and flushes it after
// every N events, so a consumer reading the encoded stream live — a
// tomserve trace client, a tail -f on a growing file — sees records at a
// bounded lag instead of in encoder-buffer-sized bursts (BinarySink and
// JSONLSink buffer 64 KiB).
//
// Wrap the innermost encoder only. Flushing is not transparent for every
// sink: a SamplingSink emits its one-shot trace_sampled summaries on
// Flush, so periodic flushes through one would scatter summaries
// mid-stream. The correct chain is Label → Sampling → Flushing → encoder.
// Safe for concurrent Emit when the inner sink is.
type AutoFlushSink struct {
	inner EventSink
	every int

	mu sync.Mutex
	n  int
}

// NewAutoFlushSink wraps inner, flushing it after every `every` events;
// every <= 1 flushes after each event.
func NewAutoFlushSink(inner EventSink, every int) *AutoFlushSink {
	if every < 1 {
		every = 1
	}
	return &AutoFlushSink{inner: inner, every: every}
}

// Emit forwards the event, flushing the inner sink when the interval
// elapses. Flush errors surface through the final Flush (buffered encoders
// retain their first error), not here — emit stays fire-and-forget.
func (s *AutoFlushSink) Emit(ev Event) {
	s.inner.Emit(ev)
	s.mu.Lock()
	s.n++
	due := s.n%s.every == 0
	s.mu.Unlock()
	if due {
		Flush(s.inner) //nolint:errcheck // retained by the encoder, surfaced on final Flush
	}
}

// Flush flushes the wrapped sink and returns its error.
func (s *AutoFlushSink) Flush() error { return Flush(s.inner) }
