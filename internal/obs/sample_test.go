package obs

import (
	"testing"
)

// flushCountSink records how often Flush propagated to the innermost sink.
type flushCountSink struct {
	CollectSink
	flushes int
}

func (s *flushCountSink) Flush() error {
	s.flushes++
	return nil
}

// TestSamplingSinkFlushSummaries: Flush must append one trace_sampled
// summary per sampled kind, the summaries must conserve the counts
// (seen = kept + dropped, per kind and in total), and a second Flush must
// not repeat them.
func TestSamplingSinkFlushSummaries(t *testing.T) {
	var inner flushCountSink
	s := NewSamplingSink(&inner, 7)
	emitted := map[string]int{EvSend: 100, EvGate: 23, EvLearnEnd: 1}
	for kind, n := range emitted {
		for i := 0; i < n; i++ {
			s.Emit(Event{Cycle: int64(i), Kind: kind})
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	summaries := map[string]Event{}
	for _, ev := range inner.Events() {
		if ev.Kind == EvTraceSampled {
			summaries[ev.Reason] = ev
		}
	}
	if len(summaries) != len(emitted) {
		t.Fatalf("summaries for %d kinds, want %d", len(summaries), len(emitted))
	}
	totalDropped := 0
	for kind, seen := range emitted {
		sum, ok := summaries[kind]
		if !ok {
			t.Fatalf("no summary for kind %s", kind)
		}
		if sum.N != seen {
			t.Errorf("%s: summary seen = %d, want %d", kind, sum.N, seen)
		}
		if kept := inner.CountKind(kind); sum.Kept != kept {
			t.Errorf("%s: summary kept = %d, but %d were forwarded", kind, sum.Kept, kept)
		}
		if sum.Kept > sum.N {
			t.Errorf("%s: kept %d > seen %d", kind, sum.Kept, sum.N)
		}
		totalDropped += sum.N - sum.Kept
	}
	// Conservation: everything seen was either forwarded or counted dropped.
	if got := int(s.Dropped()); totalDropped != got {
		t.Errorf("summaries say %d dropped, sink counted %d", totalDropped, got)
	}
	if inner.flushes != 1 {
		t.Errorf("inner flushed %d times, want 1", inner.flushes)
	}

	// A second Flush propagates but must not duplicate the summaries.
	before := len(inner.Events())
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if after := len(inner.Events()); after != before {
		t.Errorf("second Flush appended %d events", after-before)
	}
	if inner.flushes != 2 {
		t.Errorf("second Flush did not propagate (inner flushes = %d)", inner.flushes)
	}
}

// TestSamplingSinkPassthroughNoSummaries: in pass-through mode nothing is
// sampled, so Flush must not fabricate summaries — but it still propagates.
func TestSamplingSinkPassthroughNoSummaries(t *testing.T) {
	var inner flushCountSink
	s := NewSamplingSink(&inner, 1)
	for i := 0; i < 10; i++ {
		s.Emit(Event{Cycle: int64(i), Kind: EvSend})
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := inner.CountKind(EvTraceSampled); got != 0 {
		t.Errorf("pass-through emitted %d summaries, want 0", got)
	}
	if inner.flushes != 1 {
		t.Errorf("Flush did not propagate (inner flushes = %d)", inner.flushes)
	}
}

// TestFlushChainReachesEncoder: the tomsim wiring is
// SamplingSink(LabelSink(encoder)); one Flush at the top must land the
// labeled summaries in the encoder before its buffer drains.
func TestFlushChainReachesEncoder(t *testing.T) {
	var inner flushCountSink
	chain := NewSamplingSink(NewLabelSink(&inner, "LIB/ctrl-tmap"), 4)
	for i := 0; i < 9; i++ {
		chain.Emit(Event{Cycle: int64(i), Kind: EvSend})
	}
	if err := Flush(chain); err != nil {
		t.Fatal(err)
	}
	if inner.flushes != 1 {
		t.Fatalf("innermost sink flushed %d times, want 1", inner.flushes)
	}
	var sum *Event
	for _, ev := range inner.Events() {
		if ev.Kind == EvTraceSampled {
			ev := ev
			sum = &ev
		}
	}
	if sum == nil {
		t.Fatal("no trace_sampled summary reached the encoder")
	}
	if sum.Run != "LIB/ctrl-tmap" {
		t.Errorf("summary run label = %q, want LIB/ctrl-tmap", sum.Run)
	}
	if sum.Reason != EvSend || sum.N != 9 || sum.Kept != 3 {
		t.Errorf("summary = %+v, want reason=send n=9 kept=3", sum)
	}
}
