package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// JSONLSink writes one JSON object per event to an io.Writer (the
// cmd/tomsim -trace format). Writes are buffered; call Flush before the
// underlying writer is closed. Safe for concurrent Emit.
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps w in a buffered JSON-lines encoder.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one event. The first write error is retained (and returned by
// Flush); later events are dropped.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(ev)
}

// Flush drains the buffer and returns the first error seen.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}

// CollectSink retains events in memory (tests, small traces).
type CollectSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (s *CollectSink) Emit(ev Event) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Events returns a copy of everything collected so far.
func (s *CollectSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// CountKind returns how many collected events have the given kind.
func (s *CollectSink) CountKind(kind string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ev := range s.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}
