package obs

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

// countWriter counts Write calls (each one is a buffer drain when wrapped
// by a bufio-backed encoder).
type countWriter struct {
	mu     sync.Mutex
	writes int
	bytes  int
}

func (w *countWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.writes++
	w.bytes += len(p)
	return len(p), nil
}

// TestAutoFlushSinkDeliversIncrementally: with a flush interval of k, the
// underlying writer must have received bytes well before the final Flush —
// the whole point of the wrapper is that a live reader is never a full
// encoder buffer behind.
func TestAutoFlushSinkDeliversIncrementally(t *testing.T) {
	w := &countWriter{}
	enc := NewBinarySink(w)
	s := NewAutoFlushSink(enc, 8)
	for i := 0; i < 64; i++ {
		s.Emit(Event{Kind: EvSend, Cycle: int64(i), SM: i % 4, Stack: i % 2})
	}
	w.mu.Lock()
	seen := w.bytes
	w.mu.Unlock()
	if seen == 0 {
		t.Fatal("no bytes reached the writer before the final Flush")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoFlushSinkStreamDecodes: a stream produced through the periodic
// flusher is byte-identical to the unwrapped encoding and decodes to the
// same events — flushing must never cut a record or perturb the encoder's
// delta/intern state.
func TestAutoFlushSinkStreamDecodes(t *testing.T) {
	events := make([]Event, 50)
	for i := range events {
		events[i] = Event{Kind: EvCandidate, Cycle: int64(i * 3), SM: i, PC: 100 + i}
	}

	var plain, flushed bytes.Buffer
	p := NewBinarySink(&plain)
	for _, ev := range events {
		p.Emit(ev)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	f := NewAutoFlushSink(NewBinarySink(&flushed), 3)
	for _, ev := range events {
		f.Emit(ev)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), flushed.Bytes()) {
		t.Fatal("periodic flushing changed the encoded bytes")
	}

	r, err := NewBinaryReader(&flushed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		ev, err := r.Next()
		if err == io.EOF {
			if i != len(events) {
				t.Fatalf("decoded %d events, want %d", i, len(events))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != events[i].Kind || ev.Cycle != events[i].Cycle || ev.SM != events[i].SM || ev.PC != events[i].PC {
			t.Fatalf("event %d round-tripped as %+v, want %+v", i, ev, events[i])
		}
	}
}
