package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(x int64) { g.v.Store(x) }

// Add moves the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Series is a fixed-interval time series: Add(cycle, v) accumulates v into
// the bucket cycle/interval. Sampling a quantity exactly once per interval
// therefore records instantaneous values; adding byte deltas at interval
// boundaries records per-interval totals whose Sum equals the cumulative
// total regardless of bucket placement.
type Series struct {
	interval int64

	mu   sync.Mutex
	vals []float64
}

// Interval returns the bucket width in cycles.
func (s *Series) Interval() int64 { return s.interval }

// Add accumulates v into the bucket containing cycle. Negative cycles land
// in bucket 0.
func (s *Series) Add(cycle int64, v float64) {
	idx := 0
	if cycle > 0 {
		idx = int(cycle / s.interval)
	}
	s.mu.Lock()
	for len(s.vals) <= idx {
		s.vals = append(s.vals, 0)
	}
	s.vals[idx] += v
	s.mu.Unlock()
}

// Len returns the number of buckets (highest touched bucket + 1).
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}

// Sum returns the total across all buckets.
func (s *Series) Sum() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := 0.0
	for _, v := range s.vals {
		t += v
	}
	return t
}

// Values returns a copy of the bucket values.
func (s *Series) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// regCore is the shared metric store behind one root Registry and all of its
// scoped views. All views lock the same mutex and resolve into the same maps.
type regCore struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	series   map[string]*Series
}

// Registry holds named metrics. Lookups are get-or-create and return stable
// pointers, so hot paths resolve each handle once and then update it
// lock-free (counters/gauges) or under the series' own mutex.
//
// A Registry is a view onto a shared store: Scoped returns a second view
// whose lookups are transparently prefixed, so several concurrent producers
// (e.g. parallel observed simulation runs) can share one store without name
// collisions while each sees only its own metrics.
type Registry struct {
	prefix string
	core   *regCore
}

// NewRegistry returns an empty root registry.
func NewRegistry() *Registry {
	return &Registry{core: &regCore{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		series:   map[string]*Series{},
	}}
}

// Scoped returns a view of the same underlying store in which every metric
// name is prefixed with prefix. Snapshot and Names on the view cover only
// metrics under the prefix, with the prefix stripped — a scoped view of one
// run therefore snapshots exactly like a private registry would. Scoping
// composes: r.Scoped("a/").Scoped("b/") prefixes "a/b/".
func (r *Registry) Scoped(prefix string) *Registry {
	return &Registry{prefix: r.prefix + prefix, core: r.core}
}

// Prefix returns the view's accumulated name prefix ("" for the root).
func (r *Registry) Prefix() string { return r.prefix }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	name = r.prefix + name
	r.core.mu.Lock()
	defer r.core.mu.Unlock()
	c, ok := r.core.counters[name]
	if !ok {
		c = &Counter{}
		r.core.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	name = r.prefix + name
	r.core.mu.Lock()
	defer r.core.mu.Unlock()
	g, ok := r.core.gauges[name]
	if !ok {
		g = &Gauge{}
		r.core.gauges[name] = g
	}
	return g
}

// Series returns the named series, creating it with the given interval on
// first use. The interval is fixed at creation; later callers receive the
// existing series regardless of the interval they pass.
func (r *Registry) Series(name string, interval int64) *Series {
	if interval <= 0 {
		interval = DefaultSampleEvery
	}
	name = r.prefix + name
	r.core.mu.Lock()
	defer r.core.mu.Unlock()
	s, ok := r.core.series[name]
	if !ok {
		s = &Series{interval: interval}
		r.core.series[name] = s
	}
	return s
}

// SeriesData is the exportable form of one Series.
type SeriesData struct {
	Interval int64     `json:"interval"`
	Values   []float64 `json:"values"`
}

// Snapshot is a point-in-time copy of every metric, shaped for JSON export
// (the cmd/tomsim -metrics schema, see docs/OBSERVABILITY.md).
type Snapshot struct {
	Counters map[string]uint64     `json:"counters,omitempty"`
	Gauges   map[string]int64      `json:"gauges,omitempty"`
	Series   map[string]SeriesData `json:"series,omitempty"`
}

// Snapshot copies the view's current state: on the root, every metric under
// its full name; on a scoped view, only metrics under the view's prefix,
// with the prefix stripped.
func (r *Registry) Snapshot() *Snapshot {
	r.core.mu.Lock()
	defer r.core.mu.Unlock()
	snap := &Snapshot{
		Counters: make(map[string]uint64, len(r.core.counters)),
		Gauges:   make(map[string]int64, len(r.core.gauges)),
		Series:   make(map[string]SeriesData, len(r.core.series)),
	}
	for name, c := range r.core.counters {
		if local, ok := r.localName(name); ok {
			snap.Counters[local] = c.Value()
		}
	}
	for name, g := range r.core.gauges {
		if local, ok := r.localName(name); ok {
			snap.Gauges[local] = g.Value()
		}
	}
	for name, s := range r.core.series {
		if local, ok := r.localName(name); ok {
			snap.Series[local] = SeriesData{Interval: s.Interval(), Values: s.Values()}
		}
	}
	return snap
}

// localName maps a stored metric name into the view, or reports that the
// name is outside the view's prefix.
func (r *Registry) localName(name string) (string, bool) {
	if r.prefix == "" {
		return name, true
	}
	if !strings.HasPrefix(name, r.prefix) {
		return "", false
	}
	return name[len(r.prefix):], true
}

// Names returns the view's metric names, sorted (diagnostics). Like
// Snapshot, a scoped view lists only its own metrics, prefix-stripped.
func (r *Registry) Names() []string {
	r.core.mu.Lock()
	defer r.core.mu.Unlock()
	var out []string
	for n := range r.core.counters {
		if local, ok := r.localName(n); ok {
			out = append(out, local)
		}
	}
	for n := range r.core.gauges {
		if local, ok := r.localName(n); ok {
			out = append(out, local)
		}
	}
	for n := range r.core.series {
		if local, ok := r.localName(n); ok {
			out = append(out, local)
		}
	}
	sort.Strings(out)
	return out
}
