package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(x int64) { g.v.Store(x) }

// Add moves the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Series is a fixed-interval time series: Add(cycle, v) accumulates v into
// the bucket cycle/interval. Sampling a quantity exactly once per interval
// therefore records instantaneous values; adding byte deltas at interval
// boundaries records per-interval totals whose Sum equals the cumulative
// total regardless of bucket placement.
type Series struct {
	interval int64

	mu   sync.Mutex
	vals []float64
}

// Interval returns the bucket width in cycles.
func (s *Series) Interval() int64 { return s.interval }

// Add accumulates v into the bucket containing cycle. Negative cycles land
// in bucket 0.
func (s *Series) Add(cycle int64, v float64) {
	idx := 0
	if cycle > 0 {
		idx = int(cycle / s.interval)
	}
	s.mu.Lock()
	for len(s.vals) <= idx {
		s.vals = append(s.vals, 0)
	}
	s.vals[idx] += v
	s.mu.Unlock()
}

// Len returns the number of buckets (highest touched bucket + 1).
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}

// Sum returns the total across all buckets.
func (s *Series) Sum() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := 0.0
	for _, v := range s.vals {
		t += v
	}
	return t
}

// Values returns a copy of the bucket values.
func (s *Series) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// Registry holds named metrics. Lookups are get-or-create and return stable
// pointers, so hot paths resolve each handle once and then update it
// lock-free (counters/gauges) or under the series' own mutex.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	series   map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		series:   map[string]*Series{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Series returns the named series, creating it with the given interval on
// first use. The interval is fixed at creation; later callers receive the
// existing series regardless of the interval they pass.
func (r *Registry) Series(name string, interval int64) *Series {
	if interval <= 0 {
		interval = DefaultSampleEvery
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &Series{interval: interval}
		r.series[name] = s
	}
	return s
}

// SeriesData is the exportable form of one Series.
type SeriesData struct {
	Interval int64     `json:"interval"`
	Values   []float64 `json:"values"`
}

// Snapshot is a point-in-time copy of every metric, shaped for JSON export
// (the cmd/tomsim -metrics schema, see docs/OBSERVABILITY.md).
type Snapshot struct {
	Counters map[string]uint64     `json:"counters,omitempty"`
	Gauges   map[string]int64      `json:"gauges,omitempty"`
	Series   map[string]SeriesData `json:"series,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &Snapshot{
		Counters: make(map[string]uint64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
		Series:   make(map[string]SeriesData, len(r.series)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, s := range r.series {
		snap.Series[name] = SeriesData{Interval: s.Interval(), Values: s.Values()}
	}
	return snap
}

// Names returns all metric names, sorted (diagnostics).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
