// Package compiler implements TOM's offload-candidate selection (§3.1 of
// the paper): a static analysis over isa kernels that finds instruction
// regions whose execution on a memory-stack SM is estimated to save
// off-chip memory bandwidth, using the warp-granularity cost model of
// equations (3) and (4), the loop-handling rules of §3.1.3, and the
// legality limits of §3.1.4. The result is the offloading metadata table
// the hardware consumes (§4.2).
package compiler

import "math"

// CostParams are the constants of the bandwidth cost model, equations (3)
// and (4). All traffic quantities are expressed in 4-byte "register units"
// (the paper normalizes address, data and register words to the same size,
// with acknowledgment packets a quarter of it).
type CostParams struct {
	// WarpSize is SW.
	WarpSize int
	// CacheLineRatio is SC: cache line size / address size (128B / 4B).
	CacheLineRatio int
	// CoalLD and CoalST are the assumed average coalescing ratios
	// (cache-line transactions per warp memory instruction).
	CoalLD, CoalST float64
	// MissLD is the assumed load miss rate.
	MissLD float64
}

// DefaultCostParams returns the paper's conservative compile-time
// estimates: perfect coalescing (ratio 1) and a 50% load miss rate.
func DefaultCostParams() CostParams {
	return CostParams{WarpSize: 32, CacheLineRatio: 32, CoalLD: 1, CoalST: 1, MissLD: 0.5}
}

// BWDelta evaluates equations (3) and (4) for a region with the given
// live-in/live-out register counts and per-trip load/store counts, executed
// for trips iterations. Negative values are bandwidth savings.
//
//	BW_TX = REG_TX*SW - trips*(NLD*CoalLD*MissLD + NST*(SW + CoalST))
//	BW_RX = REG_RX*SW - trips*(NLD*CoalLD*SC*MissLD + NST*CoalST/4)
func (p CostParams) BWDelta(regTX, regRX, nLD, nST int, trips float64) (bwTX, bwRX float64) {
	sw := float64(p.WarpSize)
	sc := float64(p.CacheLineRatio)
	bwTX = float64(regTX)*sw - trips*(float64(nLD)*p.CoalLD*p.MissLD+float64(nST)*(sw+p.CoalST))
	bwRX = float64(regRX)*sw - trips*(float64(nLD)*p.CoalLD*sc*p.MissLD+0.25*float64(nST)*p.CoalST)
	return bwTX, bwRX
}

// perTripSaving returns the combined TX+RX traffic saved per loop trip.
func (p CostParams) perTripSaving(nLD, nST int) float64 {
	sw := float64(p.WarpSize)
	sc := float64(p.CacheLineRatio)
	return float64(nLD)*p.CoalLD*p.MissLD + float64(nST)*(sw+p.CoalST) +
		float64(nLD)*p.CoalLD*sc*p.MissLD + 0.25*float64(nST)*p.CoalST
}

// MinBeneficialTrips returns the smallest trip count at which offloading
// the loop saves bandwidth overall (BW_TX + BW_RX < 0), or 0 if no trip
// count is ever beneficial.
func (p CostParams) MinBeneficialTrips(regTX, regRX, nLD, nST int) int {
	per := p.perTripSaving(nLD, nST)
	if per <= 0 {
		return 0
	}
	overhead := float64(regTX+regRX) * float64(p.WarpSize)
	t := int(math.Floor(overhead/per)) + 1
	if t < 1 {
		t = 1
	}
	return t
}
