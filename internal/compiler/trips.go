package compiler

import (
	"repro/internal/cfgx"
	"repro/internal/isa"
)

// TripInfo classifies a loop's trip count per §3.1.3 of the paper.
type TripInfo struct {
	// Static is a compile-time-known trip count (Known == true).
	Known  bool
	Static int
	// Cond describes a trip count computable at region entry from
	// register values ("conditional offloading candidate"); nil when the
	// count only materializes during execution.
	Cond *Condition
}

// Condition is the compiler-provided hint for a conditional offloading
// candidate: how the hardware computes the loop trip count at the offload
// decision point, and the minimum count at which offloading pays off.
type Condition struct {
	// IndReg is the induction register; its value at region entry is the
	// initial counter value.
	IndReg isa.Reg
	// Step is the per-trip increment (positive for CmpLT/CmpLE loops,
	// negative for CmpGT/CmpGE).
	Step int64
	// Bound: either a register (BoundIsReg) read at region entry, or an
	// immediate.
	BoundIsReg bool
	BoundReg   isa.Reg
	BoundImm   int64
	// Cmp is the latch comparison (counter Cmp bound continues the loop).
	Cmp isa.Cmp
	// MinTrips is the threshold: offload only if trips >= MinTrips.
	MinTrips int
}

// Trips evaluates the runtime trip count given the induction register's and
// bound's values at region entry. This mirrors the Offload Controller's
// hardware comparison (§4.2, dynamic offloading decision step 1).
func (c *Condition) Trips(ind, bound int64) int {
	if !c.BoundIsReg {
		bound = c.BoundImm
	}
	var span int64
	switch c.Cmp {
	case isa.CmpLT:
		span = bound - ind
	case isa.CmpLE:
		span = bound - ind + 1
	case isa.CmpGT:
		span = ind - bound
	case isa.CmpGE:
		span = ind - bound + 1
	default:
		return 1
	}
	step := c.Step
	if step < 0 {
		step = -step
	}
	if step == 0 {
		return 1
	}
	if span <= 0 {
		// The loop body still executes once before the latch test in
		// this do-while-shaped region.
		return 1
	}
	t := (span + step - 1) / step
	if t < 1 {
		t = 1
	}
	return int(t)
}

// analyzeTrips pattern-matches the canonical counted loop:
//
//	<init: ind = imm>          (optionally, before the loop)
//	top:  ...
//	      ind = ind + step     (single in-loop update, add/sub immediate)
//	      p = setp.cmp ind, bound
//	      bra p, top
//
// Returns the classification per §3.1.3: statically known, known at region
// entry (conditional candidate), or unknown.
func analyzeTrips(info *cfgx.Info, l cfgx.Loop) TripInfo {
	k := info.Graph.Kernel
	latch := l.EndPC - 1
	br := k.Instrs[latch]
	if br.Op != isa.OpBra || br.A.Kind != isa.OpdReg || br.PredNeg {
		return TripInfo{}
	}
	// Find the setp defining the predicate, scanning backward in the loop.
	var setp isa.Instr
	setpPC := -1
	for pc := latch - 1; pc >= l.StartPC; pc-- {
		in := k.Instrs[pc]
		if in.HasDst && in.Dst == br.A.Reg {
			if in.Op == isa.OpSetp {
				setp, setpPC = in, pc
			}
			break
		}
	}
	if setpPC < 0 || setp.A.Kind != isa.OpdReg {
		return TripInfo{}
	}
	ind := setp.A.Reg
	// Find the single induction update ind = ind ± imm inside the loop.
	var step int64
	updates := 0
	for pc := l.StartPC; pc < l.EndPC; pc++ {
		in := k.Instrs[pc]
		if !in.HasDst || in.Dst != ind {
			continue
		}
		updates++
		if (in.Op == isa.OpAdd || in.Op == isa.OpSub) &&
			in.A.Kind == isa.OpdReg && in.A.Reg == ind && in.B.Kind == isa.OpdImm {
			step = in.B.Imm
			if in.Op == isa.OpSub {
				step = -step
			}
		} else {
			return TripInfo{} // non-canonical update
		}
	}
	if updates != 1 || step == 0 {
		return TripInfo{}
	}
	// Direction must match the latch comparison.
	switch setp.Cmp {
	case isa.CmpLT, isa.CmpLE:
		if step <= 0 {
			return TripInfo{}
		}
	case isa.CmpGT, isa.CmpGE:
		if step >= 0 {
			return TripInfo{}
		}
	default:
		return TripInfo{}
	}
	// Bound must be loop-invariant: an immediate, or a register not
	// written inside the loop.
	boundIsReg := false
	var boundReg isa.Reg
	var boundImm int64
	switch setp.B.Kind {
	case isa.OpdImm:
		boundImm = setp.B.Imm
	case isa.OpdReg:
		boundIsReg = true
		boundReg = setp.B.Reg
		for pc := l.StartPC; pc < l.EndPC; pc++ {
			in := k.Instrs[pc]
			if in.HasDst && in.Dst == boundReg {
				return TripInfo{} // bound mutated in loop
			}
		}
	default:
		return TripInfo{}
	}
	cond := &Condition{
		IndReg: ind, Step: step,
		BoundIsReg: boundIsReg, BoundReg: boundReg, BoundImm: boundImm,
		Cmp: setp.Cmp,
	}
	// Statically known? Initial value must be an immediate mov that
	// reaches the loop entry: the last write to ind before StartPC, with
	// no intervening branches into the gap (we only accept the simple
	// straight-line preheader case).
	if !boundIsReg {
		if init, ok := staticInit(info, l.StartPC, ind); ok {
			return TripInfo{Known: true, Static: cond.Trips(init, 0), Cond: cond}
		}
	}
	return TripInfo{Cond: cond}
}

// staticInit looks for "mov ind, imm" as the last definition of ind before
// the loop, within the immediately preceding basic block.
func staticInit(info *cfgx.Info, startPC int, ind isa.Reg) (int64, bool) {
	k := info.Graph.Kernel
	if startPC == 0 {
		return 0, false
	}
	pre := info.Graph.Blocks[info.Graph.BlockOf[startPC-1]]
	for pc := pre.End - 1; pc >= pre.Start; pc-- {
		in := k.Instrs[pc]
		if in.HasDst && in.Dst == ind {
			if in.Op == isa.OpMov && in.A.Kind == isa.OpdImm {
				return in.A.Imm, true
			}
			return 0, false
		}
	}
	return 0, false
}
