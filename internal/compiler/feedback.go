package compiler

import "sort"

// This file closes the loop between the dynamic aggressiveness control
// (§3.3) and the static cost model (§3.1): the simulator attributes every
// gate decision to the candidate's start PC in a GateProfile, and Refine
// feeds that profile back into the offloading metadata table — demoting
// candidates the hardware gates essentially always, and re-deriving the
// 2-bit SavesTX/SavesRX tag from observed rather than assumed trip counts.
// It mirrors the learning-phase philosophy of §3.2: observe a small prefix
// of the execution, then commit to a better decision.

// GateStats accumulates the fate of every dynamic entry into one candidate
// region. Sent plus the Skipped* counters partition the post-learning
// entries; LearnEntries counts entries consumed by the tmap learning phase
// (the warp executes inline while the mapping analyzer observes).
type GateStats struct {
	Sent          uint64 `json:"sent,omitempty"`
	SkippedCond   uint64 `json:"skipped_cond,omitempty"`
	SkippedBusy   uint64 `json:"skipped_busy,omitempty"`
	SkippedFull   uint64 `json:"skipped_full,omitempty"`
	SkippedALU    uint64 `json:"skipped_alu,omitempty"`
	SkippedNoDest uint64 `json:"skipped_nodest,omitempty"`
	// SkippedDestBound/Split/VaultFull are the policy-layer reasons: a
	// destination dry run cut short by its step bound, a co-location veto
	// (coda), and a per-vault slot limit (mpu).
	SkippedDestBound uint64 `json:"skipped_destbound,omitempty"`
	SkippedSplit     uint64 `json:"skipped_split,omitempty"`
	SkippedVaultFull uint64 `json:"skipped_vaultfull,omitempty"`
	LearnEntries     uint64 `json:"learn_entries,omitempty"`

	// TripSum/TripObs accumulate the leader-lane trip counts the Offload
	// Controller evaluates at region entry (§4.2 step 1), observed for
	// every conditional-hinted candidate regardless of the gate outcome.
	TripSum uint64 `json:"trip_sum,omitempty"`
	TripObs uint64 `json:"trip_obs,omitempty"`
}

// CountSkip records one gated entry under the simulator's reason string.
func (g *GateStats) CountSkip(reason string) {
	switch reason {
	case "cond":
		g.SkippedCond++
	case "busy":
		g.SkippedBusy++
	case "full":
		g.SkippedFull++
	case "alu":
		g.SkippedALU++
	case "nodest":
		g.SkippedNoDest++
	case "destbound":
		g.SkippedDestBound++
	case "split":
		g.SkippedSplit++
	case "vaultfull":
		g.SkippedVaultFull++
	}
}

// Gated sums the entries suppressed by any gate.
func (g *GateStats) Gated() uint64 {
	return g.SkippedCond + g.SkippedBusy + g.SkippedFull + g.SkippedALU +
		g.SkippedNoDest + g.SkippedDestBound + g.SkippedSplit + g.SkippedVaultFull
}

// Decisions counts entries that reached the offload decision (sent or
// gated); learning-phase entries are excluded because no decision was made.
func (g *GateStats) Decisions() uint64 {
	return g.Sent + g.Gated()
}

// GateRate is the fraction of decisions that were gated (0 with none).
func (g *GateStats) GateRate() float64 {
	d := g.Decisions()
	if d == 0 {
		return 0
	}
	return float64(g.Gated()) / float64(d)
}

// MeanTrips is the average observed trip count (0 with no observations).
func (g *GateStats) MeanTrips() float64 {
	if g.TripObs == 0 {
		return 0
	}
	return float64(g.TripSum) / float64(g.TripObs)
}

// GateProfile maps a candidate's StartPC to its observed gate statistics.
// When a workload launches several kernels, candidates sharing a start PC
// share an entry; the table is a per-run aggregate, like the hardware's
// per-PC saturating counters would be.
type GateProfile map[int]*GateStats

// At returns (allocating if needed) the stats bucket for one start PC.
func (p GateProfile) At(pc int) *GateStats {
	g := p[pc]
	if g == nil {
		g = &GateStats{}
		p[pc] = g
	}
	return g
}

// PCs lists the profiled start PCs in ascending order.
func (p GateProfile) PCs() []int {
	pcs := make([]int, 0, len(p))
	for pc := range p {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	return pcs
}

// Merge accumulates q into p, PC by PC: every counter adds, so merging the
// profiles of two runs yields the profile of their concatenation. Merge is
// commutative and associative up to the resulting counts, never shares
// GateStats pointers with q, and preserves the conservation identity — the
// per-PC sum Sent + Gated() + LearnEntries of the merge equals the sum of
// the inputs'. The iterated adaptive loop uses it to fold successive
// profiling passes into one observed table.
func (p GateProfile) Merge(q GateProfile) {
	for pc, g := range q {
		t := p.At(pc)
		t.Sent += g.Sent
		t.SkippedCond += g.SkippedCond
		t.SkippedBusy += g.SkippedBusy
		t.SkippedFull += g.SkippedFull
		t.SkippedALU += g.SkippedALU
		t.SkippedNoDest += g.SkippedNoDest
		t.SkippedDestBound += g.SkippedDestBound
		t.SkippedSplit += g.SkippedSplit
		t.SkippedVaultFull += g.SkippedVaultFull
		t.LearnEntries += g.LearnEntries
		t.TripSum += g.TripSum
		t.TripObs += g.TripObs
	}
}

// Clone returns a deep copy of the profile (the iterated loop snapshots the
// accumulated table before handing it to a simulator run).
func (p GateProfile) Clone() GateProfile {
	out := make(GateProfile, len(p))
	for pc, g := range p {
		cp := *g
		out[pc] = &cp
	}
	return out
}

// RefineParams tune the feedback pass.
type RefineParams struct {
	// DemoteGateRate is the observed gate rate at or above which a
	// candidate is removed from the metadata table.
	DemoteGateRate float64
	// MinDecisions is the minimum number of observed decisions before a
	// candidate may be demoted (small samples stay as marked).
	MinDecisions uint64
	// Cost re-evaluates equations (3)/(4) at the observed mean trip count.
	Cost CostParams
}

// DefaultRefineParams demotes candidates gated on ≥90% of at least 16
// observed decisions, using the default cost model for re-tagging.
func DefaultRefineParams() RefineParams {
	return RefineParams{DemoteGateRate: 0.9, MinDecisions: 16, Cost: DefaultCostParams()}
}

// RefineResult reports what Refine changed.
type RefineResult struct {
	Demoted  []*Candidate // removed from the metadata table
	Retagged []*Candidate // SavesTX/SavesRX re-derived from observed trips
	Kept     int          // candidates remaining in the table
}

// Refine applies an observed gate profile to a metadata table in place:
// candidates whose gate rate meets p.DemoteGateRate over at least
// p.MinDecisions decisions are demoted (the region runs inline from then
// on), and surviving loop candidates with observed trip counts get their
// bandwidth deltas and 2-bit channel tag recomputed at the observed mean
// trip count instead of the compile-time assumption. Candidates the profile
// never saw are kept untouched. Candidate IDs are preserved so profiles and
// reports stay comparable across the static and refined tables.
func Refine(md *Metadata, prof GateProfile, p RefineParams) RefineResult {
	var res RefineResult
	kept := md.Candidates[:0]
	for _, c := range md.Candidates {
		g := prof[c.StartPC]
		if g == nil {
			kept = append(kept, c)
			continue
		}
		if g.Decisions() >= p.MinDecisions && g.GateRate() >= p.DemoteGateRate {
			delete(md.byStart, c.StartPC)
			res.Demoted = append(res.Demoted, c)
			continue
		}
		if g.TripObs > 0 && c.IsLoop && !c.Trip.Known {
			trips := g.MeanTrips()
			if trips < 1 {
				trips = 1
			}
			tx, rx := p.Cost.BWDelta(c.NumLiveIn(), c.NumLiveOut(), c.NLD, c.NST, trips)
			if (tx < 0) != c.SavesTX || (rx < 0) != c.SavesRX {
				c.BWTX, c.BWRX = tx, rx
				c.SavesTX, c.SavesRX = tx < 0, rx < 0
				res.Retagged = append(res.Retagged, c)
			}
		}
		kept = append(kept, c)
	}
	for i := len(kept); i < len(md.Candidates); i++ {
		md.Candidates[i] = nil
	}
	md.Candidates = kept
	res.Kept = len(kept)
	return res
}
