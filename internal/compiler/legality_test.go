package compiler

import (
	"testing"

	"repro/internal/isa"
)

// assembled corpus exercising the compiler through the textual ISA.
const corpus = `
.kernel streaming
.params 3
  mov r3, %gtid
  mov r4, r3
  mov r5, 0
top:
  shl r6, r4, 2
  add r7, r0, r6
  ld.global r8, [r7+0]
  add r9, r1, r6
  st.global [r9+0], r8
  add r4, r4, r2
  add r5, r5, 1
  setp.lt r10, r5, 128
  bra r10, top
  exit

.kernel gather
.params 3
  mov r3, %gtid
  shl r4, r3, 2
  add r4, r0, r4
  ld.global r5, [r4+0]
  shl r5, r5, 2
  add r5, r1, r5
  ld.global r6, [r5+0]
  ld.global r7, [r5+4]
  ld.global r8, [r5+8]
  add r6, r6, r7
  add r6, r6, r8
  add r9, r2, r4
  st.global [r9+0], r6
  exit

.kernel sharedheavy
.params 2
.shared 512
  mov r2, %tid
  shl r3, r2, 2
  mov r4, 0
top:
  ld.global r5, [r0+0]
  st.shared [r3+0], r5
  ld.shared r6, [r3+0]
  add r4, r4, 1
  setp.lt r7, r4, 64
  bra r7, top
  st.global [r1+0], r6
  exit
`

func corpusKernels(t *testing.T) []*isa.Kernel {
	t.Helper()
	ks, err := isa.Assemble(corpus)
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

// TestCandidateLegalityInvariants re-verifies, from first principles, every
// §3.1.4 legality rule on every candidate the compiler emits.
func TestCandidateLegalityInvariants(t *testing.T) {
	for _, k := range corpusKernels(t) {
		md, err := Analyze(k, DefaultCostParams())
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		for _, c := range md.Candidates {
			for pc := c.StartPC; pc < c.EndPC; pc++ {
				in := k.Instrs[pc]
				if in.Op.IsShared() {
					t.Errorf("%s %v: contains shared-memory access at %d", k.Name, c, pc)
				}
				if in.Op == isa.OpBar || in.Op == isa.OpAtomAdd || in.Op == isa.OpExit {
					t.Errorf("%s %v: contains %v at %d", k.Name, c, in.Op, pc)
				}
				if in.Op == isa.OpBra && (in.Target < c.StartPC || in.Target > c.EndPC) {
					t.Errorf("%s %v: branch at %d escapes to %d", k.Name, c, pc, in.Target)
				}
			}
			if c.NLD+c.NST == 0 {
				t.Errorf("%s %v: no memory instructions", k.Name, c)
			}
			if c.BWTX+c.BWRX >= 0 && !c.Conditional() {
				t.Errorf("%s %v: not bandwidth-beneficial", k.Name, c)
			}
			if c.ALUFrac < 0 || c.ALUFrac > 1 {
				t.Errorf("%s %v: ALU fraction %v out of range", k.Name, c, c.ALUFrac)
			}
		}
	}
}

// TestSharedLoopExcludedButBlocksRemain: the shared-memory loop cannot be a
// candidate, while its surrounding global accesses may still form blocks.
func TestSharedLoopExcludedButBlocksRemain(t *testing.T) {
	for _, k := range corpusKernels(t) {
		if k.Name != "sharedheavy" {
			continue
		}
		md, err := Analyze(k, DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range md.Candidates {
			if c.IsLoop {
				t.Errorf("shared-memory loop selected: %v", c)
			}
		}
		return
	}
	t.Fatal("corpus kernel missing")
}

// TestGatherBlockSelected: the dependent-gather kernel's straight-line body
// (4 loads, 1 store) must be a block candidate.
func TestGatherBlockSelected(t *testing.T) {
	for _, k := range corpusKernels(t) {
		if k.Name != "gather" {
			continue
		}
		md, err := Analyze(k, DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		if len(md.Candidates) == 0 {
			t.Fatal("gather kernel yields no candidates")
		}
		c := md.Candidates[0]
		if c.NLD != 4 || c.NST != 1 {
			t.Errorf("gather NLD/NST = %d/%d, want 4/1", c.NLD, c.NST)
		}
		if !c.SavesRX {
			t.Error("a 4-load block must save RX bandwidth")
		}
		return
	}
	t.Fatal("corpus kernel missing")
}

// TestMetadataTableSizeBound: the paper provisions 40 metadata entries per
// kernel (2x the observed max); our kernels must fit comfortably.
func TestMetadataTableSizeBound(t *testing.T) {
	for _, k := range corpusKernels(t) {
		md, err := Analyze(k, DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		if len(md.Candidates) > 20 {
			t.Errorf("%s: %d candidates exceeds half the provisioned table", k.Name, len(md.Candidates))
		}
	}
}
