package compiler

import (
	"math"
	"testing"

	"repro/internal/isa"
)

// libLoopKernel reproduces the shape of the paper's Fig. 4 LIBOR loop:
// a counted loop with 5 live-in registers, one load and one store per trip,
// and a runtime-known bound (conditional offloading candidate).
//
//	for (n = 0; n < N; n++) L_b[n] = vd / (1.0 + 0.25*L[n]);
func libLoopKernel(t *testing.T) *isa.Kernel {
	t.Helper()
	b := isa.NewBuilder("lib", 4) // r0=L, r1=L_b, r2=vd, r3=N
	b.MovI(4, 0)                  // n
	b.Label("top")
	b.Shl(5, isa.R(4), isa.Imm(2))
	b.Add(6, isa.R(0), isa.R(5))
	b.Ld(7, isa.R(6), 0) // L[n]
	b.FMA(7, isa.R(7), isa.ImmF(0.25), isa.ImmF(1.0))
	b.FDiv(7, isa.R(2), isa.R(7))
	b.Add(8, isa.R(1), isa.R(5))
	b.St(isa.R(8), 0, isa.R(7)) // L_b[n]
	b.Add(4, isa.R(4), isa.Imm(1))
	b.Setp(9, isa.CmpLT, isa.R(4), isa.R(3))
	b.BraIf(isa.R(9), "top")
	b.Exit()
	return b.MustBuild()
}

func TestLIBCandidateArithmetic(t *testing.T) {
	k := libLoopKernel(t)
	md, err := Analyze(k, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	var loop *Candidate
	for _, c := range md.Candidates {
		if c.IsLoop {
			loop = c
		}
	}
	if loop == nil {
		t.Fatalf("no loop candidate found; candidates: %v", md.Candidates)
	}
	if got := loop.NumLiveIn(); got != 5 {
		t.Errorf("live-in count = %d, want 5 (paper Fig. 4)", got)
	}
	if got := loop.NumLiveOut(); got != 0 {
		t.Errorf("live-out count = %d, want 0", got)
	}
	if loop.NLD != 1 || loop.NST != 1 {
		t.Errorf("NLD/NST = %d/%d, want 1/1", loop.NLD, loop.NST)
	}
	// Paper: +110.25 at one trip.
	p := DefaultCostParams()
	tx, rx := p.BWDelta(5, 0, 1, 1, 1)
	if got := tx + rx; math.Abs(got-110.25) > 1e-9 {
		t.Errorf("1-trip delta = %v, want +110.25", got)
	}
	// Paper: -39 at four trips, so the break-even is exactly 4.
	tx, rx = p.BWDelta(5, 0, 1, 1, 4)
	if got := tx + rx; math.Abs(got-(-39)) > 1e-9 {
		t.Errorf("4-trip delta = %v, want -39", got)
	}
	if !loop.Conditional() {
		t.Fatalf("loop should be a conditional candidate: %v", loop)
	}
	if got := loop.Trip.Cond.MinTrips; got != 4 {
		t.Errorf("MinTrips = %d, want 4 (paper: beneficial when it iterates four or more times)", got)
	}
	// At the threshold the RX channel saves (loads execute in-stack) but
	// TX still pays the live-in transfer: the 2-bit tag must say so.
	if loop.SavesTX {
		t.Errorf("TX should not save at the threshold: tx=%v", loop.BWTX)
	}
	if !loop.SavesRX {
		t.Errorf("RX should save at the threshold: rx=%v", loop.BWRX)
	}
}

func TestConditionTripsEvaluation(t *testing.T) {
	c := &Condition{IndReg: 4, Step: 1, BoundIsReg: true, BoundReg: 3, Cmp: isa.CmpLT, MinTrips: 4}
	cases := []struct {
		ind, bound int64
		want       int
	}{
		{0, 10, 10}, {0, 1, 1}, {5, 10, 5}, {10, 10, 1}, {12, 10, 1}, {0, 0, 1},
	}
	for _, tc := range cases {
		if got := c.Trips(tc.ind, tc.bound); got != tc.want {
			t.Errorf("Trips(%d,%d) = %d, want %d", tc.ind, tc.bound, got, tc.want)
		}
	}
	le := &Condition{Step: 2, BoundIsReg: false, BoundImm: 10, Cmp: isa.CmpLE}
	if got := le.Trips(0, 0); got != 6 {
		t.Errorf("LE Trips = %d, want 6", got)
	}
	down := &Condition{Step: -1, BoundIsReg: false, BoundImm: 0, Cmp: isa.CmpGT}
	if got := down.Trips(5, 0); got != 5 {
		t.Errorf("countdown Trips = %d, want 5", got)
	}
}

func TestStaticTripLoop(t *testing.T) {
	// for (i = 0; i < 64; i++) sum += a[i]  -- static trip count 64.
	b := isa.NewBuilder("static", 2) // r0=a, r1=out
	b.MovI(2, 0)
	b.MovI(3, 0)
	b.Label("top")
	b.Shl(4, isa.R(2), isa.Imm(2))
	b.Add(4, isa.R(0), isa.R(4))
	b.Ld(5, isa.R(4), 0)
	b.Add(3, isa.R(3), isa.R(5))
	b.Add(2, isa.R(2), isa.Imm(1))
	b.Setp(6, isa.CmpLT, isa.R(2), isa.Imm(64))
	b.BraIf(isa.R(6), "top")
	b.St(isa.R(1), 0, isa.R(3))
	b.Exit()
	k := b.MustBuild()
	md, err := Analyze(k, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	var loop *Candidate
	for _, c := range md.Candidates {
		if c.IsLoop {
			loop = c
		}
	}
	if loop == nil {
		t.Fatal("static loop should be a candidate")
	}
	if !loop.Trip.Known || loop.Trip.Static != 64 {
		t.Errorf("trip info = %+v, want static 64", loop.Trip)
	}
	if loop.Conditional() {
		t.Error("static loop must not be conditional")
	}
	if loop.BWTX+loop.BWRX >= 0 {
		t.Errorf("64-trip loop should save bandwidth, delta = %v", loop.BWTX+loop.BWRX)
	}
}

func TestLegalityExclusions(t *testing.T) {
	// Shared memory access disqualifies the loop (§3.1.4 limitation 1).
	mkLoop := func(mid func(b *isa.Builder)) *isa.Kernel {
		b := isa.NewBuilder("k", 2)
		b.SetShared(256)
		b.MovI(2, 0)
		b.Label("top")
		b.Shl(3, isa.R(2), isa.Imm(2))
		b.Add(3, isa.R(0), isa.R(3))
		b.Ld(4, isa.R(3), 0)
		mid(b)
		b.St(isa.R(3), 0, isa.R(4))
		b.Add(2, isa.R(2), isa.Imm(1))
		b.Setp(5, isa.CmpLT, isa.R(2), isa.R(1))
		b.BraIf(isa.R(5), "top")
		b.Exit()
		return b.MustBuild()
	}
	hasLoopCand := func(k *isa.Kernel) bool {
		md, err := Analyze(k, DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range md.Candidates {
			if c.IsLoop {
				return true
			}
		}
		return false
	}
	if !hasLoopCand(mkLoop(func(b *isa.Builder) {})) {
		t.Fatal("control loop should be a candidate")
	}
	if hasLoopCand(mkLoop(func(b *isa.Builder) { b.StShared(isa.R(3), 0, isa.R(4)) })) {
		t.Error("shared-memory loop must be excluded")
	}
	if hasLoopCand(mkLoop(func(b *isa.Builder) { b.Bar() })) {
		t.Error("barrier loop must be excluded")
	}
	if hasLoopCand(mkLoop(func(b *isa.Builder) { b.AtomAdd(6, isa.R(3), 0, isa.Imm(1)) })) {
		t.Error("atomic loop must be excluded")
	}
}

func TestBlockCandidateStreaming(t *testing.T) {
	// A streaming block: 1 live-in, 4 loads, no stores. The cost model
	// says RX saving dominates -> candidate.
	b := isa.NewBuilder("stream", 1)
	b.Mov(1, isa.Sp(isa.SpGtid))
	b.Shl(1, isa.R(1), isa.Imm(4))
	b.Add(1, isa.R(0), isa.R(1))
	b.Ld(2, isa.R(1), 0)
	b.Ld(3, isa.R(1), 4)
	b.Ld(4, isa.R(1), 8)
	b.Ld(5, isa.R(1), 12)
	b.Add(2, isa.R(2), isa.R(3))
	b.Add(2, isa.R(2), isa.R(4))
	b.Add(2, isa.R(2), isa.R(5))
	b.St(isa.R(0), 0, isa.R(2))
	b.Exit()
	k := b.MustBuild()
	md, err := Analyze(k, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(md.Candidates) == 0 {
		t.Fatal("streaming block should yield a candidate")
	}
	c := md.Candidates[0]
	if c.IsLoop {
		t.Error("expected a block candidate")
	}
	if c.NLD != 4 || c.NST != 1 {
		t.Errorf("NLD/NST = %d/%d, want 4/1", c.NLD, c.NST)
	}
	if md.AtPC(c.StartPC) != c {
		t.Error("AtPC lookup failed")
	}
}

func TestComputeOnlyKernelHasNoCandidates(t *testing.T) {
	b := isa.NewBuilder("compute", 1)
	b.Mov(1, isa.Sp(isa.SpGtid))
	for i := 0; i < 20; i++ {
		b.FMA(2, isa.R(1), isa.ImmF(1.5), isa.R(2))
	}
	b.St(isa.R(0), 0, isa.R(2))
	b.Exit()
	k := b.MustBuild()
	md, err := Analyze(k, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	// One store with one live-in base: TX = 32 - 33 = -1, RX = 32*? ...
	// The single store block: REG_TX = {r0, r2 used}, check it is not
	// profitable overall; and certainly no loop candidates.
	for _, c := range md.Candidates {
		if c.IsLoop {
			t.Errorf("unexpected loop candidate %v", c)
		}
		if c.BWTX+c.BWRX >= 0 {
			t.Errorf("candidate %v does not save bandwidth", c)
		}
	}
}

func TestMinBeneficialTripsProperties(t *testing.T) {
	p := DefaultCostParams()
	for regs := 0; regs < 12; regs++ {
		for nld := 0; nld <= 4; nld++ {
			for nst := 0; nst <= 4; nst++ {
				if nld+nst == 0 {
					continue
				}
				min := p.MinBeneficialTrips(regs, 0, nld, nst)
				if min == 0 {
					t.Fatalf("regs=%d nld=%d nst=%d: loads/stores always save eventually", regs, nld, nst)
				}
				tx, rx := p.BWDelta(regs, 0, nld, nst, float64(min))
				if tx+rx >= 0 {
					t.Errorf("regs=%d nld=%d nst=%d: min=%d not beneficial (%v)", regs, nld, nst, min, tx+rx)
				}
				if min > 1 {
					tx, rx = p.BWDelta(regs, 0, nld, nst, float64(min-1))
					if tx+rx < 0 {
						t.Errorf("regs=%d nld=%d nst=%d: min=%d not minimal", regs, nld, nst, min)
					}
				}
			}
		}
	}
}
