package compiler

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/cfgx"
	"repro/internal/isa"
)

// Candidate is one offloading-candidate region with everything the paper's
// offloading metadata table holds (§4.2): PCs, live-in/live-out register
// sets, the 2-bit TX/RX savings tag, and the conditional-offload hint.
type Candidate struct {
	ID             int
	StartPC, EndPC int // region [StartPC, EndPC); control exits by reaching EndPC

	LiveIn, LiveOut uint64 // register bitmasks (REG_TX / REG_RX sets)

	// Static per-trip global memory instruction counts.
	NLD, NST int

	IsLoop bool
	Trip   TripInfo

	// ALUFrac is the static fraction of non-memory, non-control
	// instructions in the region — the signal the extension's ALU-aware
	// aggressiveness control uses (the paper's §6.4 future work).
	ALUFrac float64

	// BWTX/BWRX are the estimated bandwidth deltas (equations (3)/(4))
	// at the trip count used for the offload decision (static count, the
	// conditional threshold, or 1). Negative = saving.
	BWTX, BWRX float64

	// SavesTX/SavesRX form the 2-bit tag the dynamic aggressiveness
	// control consults (§3.3): whether offloading reduces traffic on
	// each channel.
	SavesTX, SavesRX bool
}

// NumLiveIn returns |REG_TX|.
func (c *Candidate) NumLiveIn() int { return bits.OnesCount64(c.LiveIn) }

// NumLiveOut returns |REG_RX|.
func (c *Candidate) NumLiveOut() int { return bits.OnesCount64(c.LiveOut) }

// Conditional reports whether the candidate carries a runtime condition.
func (c *Candidate) Conditional() bool {
	return c.IsLoop && !c.Trip.Known && c.Trip.Cond != nil && c.Trip.Cond.MinTrips > 1
}

// MetadataEntryBits is the paper's §6.6 estimate of one offloading metadata
// table entry: begin/end PCs, live-in/live-out bit vectors, the 2-bit
// channel tag, and the offload condition.
const MetadataEntryBits = 258

// Metadata is the compiler's per-kernel output: the offloading metadata
// table plus the analyses the simulator reuses.
type Metadata struct {
	Kernel     *isa.Kernel
	Info       *cfgx.Info
	Candidates []*Candidate

	byStart map[int]*Candidate
}

// AtPC returns the candidate starting at pc, or nil.
func (m *Metadata) AtPC(pc int) *Candidate {
	return m.byStart[pc]
}

// SelectOptions parameterizes candidate selection so offload policies can
// reuse the legality machinery (§3.1.4) while swapping the enumeration
// granularity and the cost model (the offload.Policy.SelectCandidates seam).
type SelectOptions struct {
	// Cost is the bandwidth cost model handed to Accept.
	Cost CostParams
	// SkipLoops disables pass 1 (loop candidates) entirely; only
	// straight-line block regions are enumerated.
	SkipLoops bool
	// MaxBlockMems, when > 0, splits each straight-line block at global
	// memory instruction boundaries so every region contains at most this
	// many loads+stores — the near-bank fine-grained offload granularity.
	MaxBlockMems int
	// Accept applies the cost model to a legal region: it must fill
	// c.BWTX/BWRX and c.SavesTX/SavesRX (and c.Trip.Cond.MinTrips for
	// conditional loops) and report whether the candidate enters the
	// metadata table. Nil means AcceptTOMCost.
	Accept func(c *Candidate, p CostParams) bool
}

// Analyze runs TOM's offload-candidate selection on k with cost parameters p.
func Analyze(k *isa.Kernel, p CostParams) (*Metadata, error) {
	return AnalyzeWith(k, SelectOptions{Cost: p})
}

// AnalyzeWith runs offload-candidate selection under explicit options.
// AnalyzeWith(k, SelectOptions{Cost: p}) is exactly Analyze(k, p).
func AnalyzeWith(k *isa.Kernel, opt SelectOptions) (*Metadata, error) {
	info, err := cfgx.Analyze(k)
	if err != nil {
		return nil, err
	}
	accept := opt.Accept
	if accept == nil {
		accept = AcceptTOMCost
	}
	md := &Metadata{Kernel: k, Info: info, byStart: map[int]*Candidate{}}

	taken := make([]bool, len(k.Instrs))
	overlap := func(s, e int) bool {
		for pc := s; pc < e; pc++ {
			if taken[pc] {
				return true
			}
		}
		return false
	}
	claim := func(s, e int) {
		for pc := s; pc < e; pc++ {
			taken[pc] = true
		}
	}
	try := func(start, end int, isLoop bool, trip TripInfo) {
		if end <= start || overlap(start, end) {
			return
		}
		c, ok := buildRegion(md, start, end, isLoop, trip)
		if !ok || !accept(c, opt.Cost) {
			return
		}
		claim(c.StartPC, c.EndPC)
		md.addCandidate(c)
	}

	// Pass 1: loop candidates. Outermost-first (larger regions first);
	// overlapping smaller loops are skipped.
	if !opt.SkipLoops {
		loops := info.Graph.Loops()
		sort.Slice(loops, func(i, j int) bool {
			return loops[i].EndPC-loops[i].StartPC > loops[j].EndPC-loops[j].StartPC
		})
		for _, l := range loops {
			if !l.Contiguous {
				continue
			}
			try(l.StartPC, l.EndPC, true, analyzeTrips(info, l))
		}
	}

	// Pass 2: straight-line block candidates outside chosen loops. The
	// region is the block body up to (not including) a trailing branch /
	// exit / barrier, so control leaves only by falling into EndPC.
	for _, b := range info.Graph.Blocks {
		end := b.End
		for end > b.Start {
			op := k.Instrs[end-1].Op
			if op == isa.OpBra || op == isa.OpExit || op == isa.OpBar {
				end--
				continue
			}
			break
		}
		if opt.MaxBlockMems > 0 {
			// Fine-grained enumeration: cut the block after every
			// MaxBlockMems-th global memory instruction so each segment is
			// centred on at most that many loads/stores. Segments with no
			// memory access are rejected by buildRegion's nLD+nST check.
			segStart, mems := b.Start, 0
			for pc := b.Start; pc < end; pc++ {
				op := k.Instrs[pc].Op
				if op.IsLoad() || op.IsStore() {
					mems++
					if mems >= opt.MaxBlockMems {
						try(segStart, pc+1, false, TripInfo{})
						segStart, mems = pc+1, 0
					}
				}
			}
			try(segStart, end, false, TripInfo{})
			continue
		}
		try(b.Start, end, false, TripInfo{})
	}

	sort.Slice(md.Candidates, func(i, j int) bool {
		return md.Candidates[i].StartPC < md.Candidates[j].StartPC
	})
	for i, c := range md.Candidates {
		c.ID = i
	}
	return md, nil
}

func (m *Metadata) addCandidate(c *Candidate) {
	m.Candidates = append(m.Candidates, c)
	m.byStart[c.StartPC] = c
}

// buildRegion checks legality (§3.1.4) and derives the cost-independent
// candidate attributes; ok is false when the region is illegal or touches
// no global memory. Cost fields (BWTX/BWRX, the 2-bit tag, conditional
// MinTrips) are left for the acceptance function.
func buildRegion(md *Metadata, start, end int, isLoop bool, trip TripInfo) (*Candidate, bool) {
	k := md.Kernel
	nLD, nST := 0, 0
	for pc := start; pc < end; pc++ {
		in := k.Instrs[pc]
		switch {
		// §3.1.4 limitation 1: no shared-memory accesses.
		case in.Op.IsShared():
			return nil, false
		// §3.1.4 limitation 3: no barriers, synchronization or atomics.
		case in.Op == isa.OpBar || in.Op == isa.OpAtomAdd:
			return nil, false
		// A thread exit inside the region would strand the warp on the
		// memory-stack SM.
		case in.Op == isa.OpExit:
			return nil, false
		// §3.1.4 limitation 2: control flow must stay confined so the
		// warp reconverges by EndPC. Targets may be anywhere in
		// [start, end] — a branch to end exits the region cleanly.
		case in.Op == isa.OpBra:
			if in.Target < start || in.Target > end {
				return nil, false
			}
		}
		if in.Op.IsLoad() {
			nLD++
		}
		if in.Op.IsStore() {
			nST++
		}
	}
	if nLD+nST == 0 {
		return nil, false
	}
	liveIn, liveOut, err := md.Info.RegionLiveInOut(start, end)
	if err != nil {
		return nil, false
	}
	alu := 0
	for pc := start; pc < end; pc++ {
		op := k.Instrs[pc].Op
		if !op.IsMemory() && op != isa.OpBra && op != isa.OpNop {
			alu++
		}
	}
	return &Candidate{
		StartPC: start, EndPC: end,
		LiveIn: liveIn, LiveOut: liveOut,
		NLD: nLD, NST: nST,
		IsLoop: isLoop, Trip: trip,
		ALUFrac: float64(alu) / float64(end-start),
	}, true
}

// AcceptTOMCost is TOM's offload decision (equations (3)/(4), §3.1): reject
// a region unless offloading it saves aggregate off-chip bandwidth at the
// decision trip count — the static count for counted loops, the break-even
// threshold for conditional loops (recorded as the runtime hint), and a
// single body execution otherwise.
func AcceptTOMCost(c *Candidate, p CostParams) bool {
	regTX, regRX := c.NumLiveIn(), c.NumLiveOut()
	decide := func(trips float64) (float64, float64, bool) {
		tx, rx := p.BWDelta(regTX, regRX, c.NLD, c.NST, trips)
		return tx, rx, tx+rx < 0
	}
	switch {
	case c.IsLoop && c.Trip.Known:
		tx, rx, ok := decide(float64(c.Trip.Static))
		if !ok {
			return false
		}
		c.BWTX, c.BWRX = tx, rx
	case c.IsLoop && c.Trip.Cond != nil:
		// Conditional candidate: find the break-even trip count; the
		// hardware offloads only when the runtime count reaches it.
		minT := p.MinBeneficialTrips(regTX, regRX, c.NLD, c.NST)
		if minT == 0 {
			return false
		}
		c.Trip.Cond.MinTrips = minT
		tx, rx, _ := decide(float64(minT))
		c.BWTX, c.BWRX = tx, rx
	default:
		// Unknown trip count (§3.1.3 case 3) or plain block: assume a
		// single execution of the body.
		tx, rx, ok := decide(1)
		if !ok {
			return false
		}
		c.BWTX, c.BWRX = tx, rx
	}
	c.SavesTX = c.BWTX < 0
	c.SavesRX = c.BWRX < 0
	return true
}

// AcceptAll admits every legal region, still evaluating the cost model so
// the 2-bit channel tag and conditional hints stay meaningful for gating.
// Policies that select on other grounds (co-location, granularity) use it
// as their base acceptance.
func AcceptAll(c *Candidate, p CostParams) bool {
	regTX, regRX := c.NumLiveIn(), c.NumLiveOut()
	trips := 1.0
	switch {
	case c.IsLoop && c.Trip.Known:
		trips = float64(c.Trip.Static)
	case c.IsLoop && c.Trip.Cond != nil:
		if minT := p.MinBeneficialTrips(regTX, regRX, c.NLD, c.NST); minT > 0 {
			c.Trip.Cond.MinTrips = minT
			trips = float64(minT)
		}
	}
	c.BWTX, c.BWRX = p.BWDelta(regTX, regRX, c.NLD, c.NST, trips)
	c.SavesTX = c.BWTX < 0
	c.SavesRX = c.BWRX < 0
	return true
}

// String summarizes the candidate.
func (c *Candidate) String() string {
	kind := "block"
	switch {
	case c.IsLoop && c.Trip.Known:
		kind = fmt.Sprintf("loop(static %d trips)", c.Trip.Static)
	case c.Conditional():
		kind = fmt.Sprintf("loop(conditional, >=%d trips)", c.Trip.Cond.MinTrips)
	case c.IsLoop:
		kind = "loop(unconditional)"
	}
	return fmt.Sprintf("cand#%d [%d,%d) %s ld=%d st=%d liveIn=%d liveOut=%d bwTX=%.2f bwRX=%.2f",
		c.ID, c.StartPC, c.EndPC, kind, c.NLD, c.NST, c.NumLiveIn(), c.NumLiveOut(), c.BWTX, c.BWRX)
}
