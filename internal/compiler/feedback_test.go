package compiler

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func loopCandidate(t *testing.T) (*Metadata, *Candidate) {
	t.Helper()
	md, err := Analyze(libLoopKernel(t), DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range md.Candidates {
		if c.IsLoop {
			return md, c
		}
	}
	t.Fatal("no loop candidate")
	return nil, nil
}

func TestGateStatsArithmetic(t *testing.T) {
	g := &GateStats{}
	for _, r := range []string{"cond", "busy", "full", "alu", "nodest", "bogus"} {
		g.CountSkip(r)
	}
	if g.Gated() != 5 {
		t.Errorf("Gated = %d, want 5 (unknown reasons must not count)", g.Gated())
	}
	g.Sent = 5
	g.LearnEntries = 3 // must not affect decisions
	if g.Decisions() != 10 {
		t.Errorf("Decisions = %d, want 10", g.Decisions())
	}
	if g.GateRate() != 0.5 {
		t.Errorf("GateRate = %v, want 0.5", g.GateRate())
	}
	if (&GateStats{}).GateRate() != 0 {
		t.Error("GateRate with no decisions must be 0")
	}
	g.TripSum, g.TripObs = 30, 4
	if g.MeanTrips() != 7.5 {
		t.Errorf("MeanTrips = %v, want 7.5", g.MeanTrips())
	}
	if (&GateStats{}).MeanTrips() != 0 {
		t.Error("MeanTrips with no observations must be 0")
	}
}

func TestGateProfileAtAndPCs(t *testing.T) {
	p := GateProfile{}
	p.At(12).Sent++
	p.At(3).SkippedCond++
	p.At(12).Sent++
	if p[12].Sent != 2 {
		t.Errorf("At must reuse the bucket: sent = %d, want 2", p[12].Sent)
	}
	pcs := p.PCs()
	if len(pcs) != 2 || pcs[0] != 3 || pcs[1] != 12 {
		t.Errorf("PCs = %v, want [3 12]", pcs)
	}
}

// TestRefineDemotesAlwaysGated is the synthetic always-gated case from the
// acceptance criteria: a candidate whose every observed decision was gated
// must be cleared from the metadata table.
func TestRefineDemotesAlwaysGated(t *testing.T) {
	md, loop := loopCandidate(t)
	before := len(md.Candidates)
	prof := GateProfile{}
	prof.At(loop.StartPC).SkippedCond = 20

	res := Refine(md, prof, DefaultRefineParams())
	if len(res.Demoted) != 1 || res.Demoted[0] != loop {
		t.Fatalf("Demoted = %v, want the loop candidate", res.Demoted)
	}
	if res.Kept != before-1 || len(md.Candidates) != before-1 {
		t.Errorf("kept %d of %d candidates, want %d", res.Kept, before, before-1)
	}
	if md.AtPC(loop.StartPC) != nil {
		t.Error("demoted candidate still resolvable via AtPC")
	}
	for _, c := range md.Candidates {
		if c == loop {
			t.Error("demoted candidate still in the table")
		}
	}
}

// TestRefineSmallSampleKept: the same always-gated profile below
// MinDecisions must not demote — small samples stay as marked.
func TestRefineSmallSampleKept(t *testing.T) {
	md, loop := loopCandidate(t)
	before := len(md.Candidates)
	prof := GateProfile{}
	prof.At(loop.StartPC).SkippedCond = 8 // < default MinDecisions of 16

	res := Refine(md, prof, DefaultRefineParams())
	if len(res.Demoted) != 0 || len(md.Candidates) != before {
		t.Errorf("small sample demoted: %v", res.Demoted)
	}
	if md.AtPC(loop.StartPC) != loop {
		t.Error("candidate lost from the PC index")
	}
}

// TestRefineRetagsFromObservedTrips: the LIB loop's static tag assumes the
// break-even trip count (TX does not save); observing a much larger mean
// trip count must flip SavesTX, since the live-in transfer amortizes.
func TestRefineRetagsFromObservedTrips(t *testing.T) {
	md, loop := loopCandidate(t)
	if loop.SavesTX {
		t.Fatal("precondition: static tag must not save TX at the threshold")
	}
	prof := GateProfile{}
	g := prof.At(loop.StartPC)
	g.Sent = 20 // gate rate 0: no demotion
	g.TripSum, g.TripObs = 4000, 20

	p := DefaultRefineParams()
	res := Refine(md, prof, p)
	if len(res.Retagged) != 1 || res.Retagged[0] != loop {
		t.Fatalf("Retagged = %v, want the loop candidate", res.Retagged)
	}
	if !loop.SavesTX || !loop.SavesRX {
		t.Errorf("tag after 200 observed trips = TX:%v RX:%v, want both saving",
			loop.SavesTX, loop.SavesRX)
	}
	wantTX, wantRX := p.Cost.BWDelta(loop.NumLiveIn(), loop.NumLiveOut(), loop.NLD, loop.NST, 200)
	if math.Abs(loop.BWTX-wantTX) > 1e-9 || math.Abs(loop.BWRX-wantRX) > 1e-9 {
		t.Errorf("deltas = (%v,%v), want (%v,%v)", loop.BWTX, loop.BWRX, wantTX, wantRX)
	}
}

// TestRefineUnobservedUntouched: an empty profile must change nothing.
func TestRefineUnobservedUntouched(t *testing.T) {
	md, loop := loopCandidate(t)
	before := len(md.Candidates)
	savesTX, savesRX := loop.SavesTX, loop.SavesRX

	res := Refine(md, GateProfile{}, DefaultRefineParams())
	if len(res.Demoted) != 0 || len(res.Retagged) != 0 || res.Kept != before {
		t.Errorf("empty profile changed the table: %+v", res)
	}
	if loop.SavesTX != savesTX || loop.SavesRX != savesRX {
		t.Error("empty profile changed the channel tag")
	}
}

// randGateProfile builds a deterministic pseudo-random profile for the
// Merge property tests. Sparse PCs and occasional zero buckets exercise the
// allocate-on-merge path and disjoint-key unions.
func randGateProfile(rng *rand.Rand) GateProfile {
	p := GateProfile{}
	for _, pc := range []int{3, 7, 14, 21, 40} {
		if rng.Intn(3) == 0 {
			continue
		}
		p[pc] = &GateStats{
			Sent:          uint64(rng.Intn(50)),
			SkippedCond:   uint64(rng.Intn(20)),
			SkippedBusy:   uint64(rng.Intn(20)),
			SkippedFull:   uint64(rng.Intn(20)),
			SkippedALU:    uint64(rng.Intn(20)),
			SkippedNoDest: uint64(rng.Intn(20)),
			LearnEntries:  uint64(rng.Intn(10)),
			TripSum:       uint64(rng.Intn(500)),
			TripObs:       uint64(rng.Intn(30)),
		}
	}
	return p
}

// accounted is the conservation quantity per profile: the per-PC sum
// Sent + Gated() + LearnEntries, i.e. every candidate entry accounted once.
func accounted(p GateProfile) uint64 {
	var n uint64
	for _, g := range p {
		n += g.Sent + g.Gated() + g.LearnEntries
	}
	return n
}

// TestGateProfileMergeProperties: Merge must be commutative (up to the
// resulting counts), must preserve the conservation identity — the merge
// accounts for exactly the entries of both inputs — and must never share
// GateStats pointers with its source, so mutating the merge cannot corrupt
// the input profiles.
func TestGateProfileMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		a, b := randGateProfile(rng), randGateProfile(rng)
		wantAccounted := accounted(a) + accounted(b)

		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: merge is not commutative:\na+b = %v\nb+a = %v", trial, ab, ba)
		}
		if got := accounted(ab); got != wantAccounted {
			t.Fatalf("trial %d: conservation broken: merge accounts %d entries, inputs account %d",
				trial, got, wantAccounted)
		}

		// Aliasing: corrupting the merge must leave the source untouched.
		before := accounted(b)
		for _, g := range ab {
			g.Sent += 1000
		}
		if accounted(b) != before {
			t.Fatalf("trial %d: Merge shared GateStats pointers with its source", trial)
		}

		// Clone independence.
		c := a.Clone()
		if !reflect.DeepEqual(c, a) {
			t.Fatalf("trial %d: Clone differs from source", trial)
		}
		for _, g := range c {
			g.TripSum += 7
			break
		}
		if len(c) > 0 && reflect.DeepEqual(c, a) {
			t.Fatalf("trial %d: Clone shares GateStats pointers with source", trial)
		}
	}

	// Merging the empty profile is the identity.
	rngID := rand.New(rand.NewSource(2))
	p := randGateProfile(rngID)
	q := p.Clone()
	q.Merge(GateProfile{})
	if !reflect.DeepEqual(p, q) {
		t.Error("merging the empty profile must be the identity")
	}
}
