package compiler

import (
	"math"
	"testing"
)

func loopCandidate(t *testing.T) (*Metadata, *Candidate) {
	t.Helper()
	md, err := Analyze(libLoopKernel(t), DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range md.Candidates {
		if c.IsLoop {
			return md, c
		}
	}
	t.Fatal("no loop candidate")
	return nil, nil
}

func TestGateStatsArithmetic(t *testing.T) {
	g := &GateStats{}
	for _, r := range []string{"cond", "busy", "full", "alu", "nodest", "bogus"} {
		g.CountSkip(r)
	}
	if g.Gated() != 5 {
		t.Errorf("Gated = %d, want 5 (unknown reasons must not count)", g.Gated())
	}
	g.Sent = 5
	g.LearnEntries = 3 // must not affect decisions
	if g.Decisions() != 10 {
		t.Errorf("Decisions = %d, want 10", g.Decisions())
	}
	if g.GateRate() != 0.5 {
		t.Errorf("GateRate = %v, want 0.5", g.GateRate())
	}
	if (&GateStats{}).GateRate() != 0 {
		t.Error("GateRate with no decisions must be 0")
	}
	g.TripSum, g.TripObs = 30, 4
	if g.MeanTrips() != 7.5 {
		t.Errorf("MeanTrips = %v, want 7.5", g.MeanTrips())
	}
	if (&GateStats{}).MeanTrips() != 0 {
		t.Error("MeanTrips with no observations must be 0")
	}
}

func TestGateProfileAtAndPCs(t *testing.T) {
	p := GateProfile{}
	p.At(12).Sent++
	p.At(3).SkippedCond++
	p.At(12).Sent++
	if p[12].Sent != 2 {
		t.Errorf("At must reuse the bucket: sent = %d, want 2", p[12].Sent)
	}
	pcs := p.PCs()
	if len(pcs) != 2 || pcs[0] != 3 || pcs[1] != 12 {
		t.Errorf("PCs = %v, want [3 12]", pcs)
	}
}

// TestRefineDemotesAlwaysGated is the synthetic always-gated case from the
// acceptance criteria: a candidate whose every observed decision was gated
// must be cleared from the metadata table.
func TestRefineDemotesAlwaysGated(t *testing.T) {
	md, loop := loopCandidate(t)
	before := len(md.Candidates)
	prof := GateProfile{}
	prof.At(loop.StartPC).SkippedCond = 20

	res := Refine(md, prof, DefaultRefineParams())
	if len(res.Demoted) != 1 || res.Demoted[0] != loop {
		t.Fatalf("Demoted = %v, want the loop candidate", res.Demoted)
	}
	if res.Kept != before-1 || len(md.Candidates) != before-1 {
		t.Errorf("kept %d of %d candidates, want %d", res.Kept, before, before-1)
	}
	if md.AtPC(loop.StartPC) != nil {
		t.Error("demoted candidate still resolvable via AtPC")
	}
	for _, c := range md.Candidates {
		if c == loop {
			t.Error("demoted candidate still in the table")
		}
	}
}

// TestRefineSmallSampleKept: the same always-gated profile below
// MinDecisions must not demote — small samples stay as marked.
func TestRefineSmallSampleKept(t *testing.T) {
	md, loop := loopCandidate(t)
	before := len(md.Candidates)
	prof := GateProfile{}
	prof.At(loop.StartPC).SkippedCond = 8 // < default MinDecisions of 16

	res := Refine(md, prof, DefaultRefineParams())
	if len(res.Demoted) != 0 || len(md.Candidates) != before {
		t.Errorf("small sample demoted: %v", res.Demoted)
	}
	if md.AtPC(loop.StartPC) != loop {
		t.Error("candidate lost from the PC index")
	}
}

// TestRefineRetagsFromObservedTrips: the LIB loop's static tag assumes the
// break-even trip count (TX does not save); observing a much larger mean
// trip count must flip SavesTX, since the live-in transfer amortizes.
func TestRefineRetagsFromObservedTrips(t *testing.T) {
	md, loop := loopCandidate(t)
	if loop.SavesTX {
		t.Fatal("precondition: static tag must not save TX at the threshold")
	}
	prof := GateProfile{}
	g := prof.At(loop.StartPC)
	g.Sent = 20 // gate rate 0: no demotion
	g.TripSum, g.TripObs = 4000, 20

	p := DefaultRefineParams()
	res := Refine(md, prof, p)
	if len(res.Retagged) != 1 || res.Retagged[0] != loop {
		t.Fatalf("Retagged = %v, want the loop candidate", res.Retagged)
	}
	if !loop.SavesTX || !loop.SavesRX {
		t.Errorf("tag after 200 observed trips = TX:%v RX:%v, want both saving",
			loop.SavesTX, loop.SavesRX)
	}
	wantTX, wantRX := p.Cost.BWDelta(loop.NumLiveIn(), loop.NumLiveOut(), loop.NLD, loop.NST, 200)
	if math.Abs(loop.BWTX-wantTX) > 1e-9 || math.Abs(loop.BWRX-wantRX) > 1e-9 {
		t.Errorf("deltas = (%v,%v), want (%v,%v)", loop.BWTX, loop.BWRX, wantTX, wantRX)
	}
}

// TestRefineUnobservedUntouched: an empty profile must change nothing.
func TestRefineUnobservedUntouched(t *testing.T) {
	md, loop := loopCandidate(t)
	before := len(md.Candidates)
	savesTX, savesRX := loop.SavesTX, loop.SavesRX

	res := Refine(md, GateProfile{}, DefaultRefineParams())
	if len(res.Demoted) != 0 || len(res.Retagged) != 0 || res.Kept != before {
		t.Errorf("empty profile changed the table: %+v", res)
	}
	if loop.SavesTX != savesTX || loop.SavesRX != savesRX {
		t.Error("empty profile changed the channel tag")
	}
}
