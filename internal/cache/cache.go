// Package cache models set-associative, write-through caches for timing
// purposes. Caches are tag-only: data always lives in the flat functional
// memory (which write-through keeps current), so cache state can never
// corrupt program values — it only decides hit/miss latency and traffic.
// This mirrors the paper's GPU caches (write-through L1/L2, §4.4.2) and is
// what makes the offload coherence protocol a pure timing concern.
package cache

// Cache is a set-associative tag store with LRU replacement.
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	tags      []uint64 // sets*ways entries
	valid     []bool
	stamp     []uint64 // LRU timestamps
	clock     uint64

	// Stats.
	Hits, Misses, Fills, Invalidations uint64
}

// New creates a cache of totalBytes capacity with the given associativity
// and line size (powers of two).
func New(totalBytes, ways, lineBytes int) *Cache {
	lines := totalBytes / lineBytes
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	n := sets * ways
	return &Cache{
		sets: sets, ways: ways, lineShift: shift,
		tags: make([]uint64, n), valid: make([]bool, n), stamp: make([]uint64, n),
	}
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr >> c.lineShift
	return int(line % uint64(c.sets)), line
}

// Lookup probes the cache without modifying contents; a hit refreshes LRU.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.clock++
			c.stamp[base+w] = c.clock
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Fill installs the line containing addr, evicting LRU if needed.
// Write-through means evictions are silent (no dirty writeback).
func (c *Cache) Fill(addr uint64) {
	set, tag := c.index(addr)
	base := set * c.ways
	victim := -1
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag { // already present
			return
		}
	}
	for w := 0; w < c.ways; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			break
		}
		if c.stamp[i] < oldest {
			oldest, victim = c.stamp[i], i
		}
	}
	c.clock++
	c.tags[victim] = tag
	c.valid[victim] = true
	c.stamp[victim] = c.clock
	c.Fills++
}

// Access is Lookup followed by Fill on miss; returns whether it hit.
// Models fetch-on-miss with immediate tag allocation (the MSHR layer above
// merges duplicate outstanding lines).
func (c *Cache) Access(addr uint64) bool {
	if c.Lookup(addr) {
		return true
	}
	c.Fill(addr)
	return false
}

// Invalidate drops the line containing addr if present, reporting whether
// it was. Used by the offload coherence protocol (§4.4.2 step 3).
func (c *Cache) Invalidate(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.valid[base+w] = false
			c.Invalidations++
			return true
		}
	}
	return false
}

// InvalidateAll clears the cache (§4.4.2 step 2: the memory-stack SM
// invalidates its private cache before spawning an offloaded block).
func (c *Cache) InvalidateAll() {
	n := 0
	for i := range c.valid {
		if c.valid[i] {
			c.valid[i] = false
			n++
		}
	}
	c.Invalidations += uint64(n)
}

// Resident counts valid lines (for tests/diagnostics).
func (c *Cache) Resident() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}

// Sets and Ways expose geometry.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }
