package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHitAfterFill(t *testing.T) {
	c := New(32*1024, 4, 128)
	if c.Access(0x1000) {
		t.Error("cold access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	if !c.Access(0x1000 + 127) {
		t.Error("same-line access should hit")
	}
	if c.Access(0x1000 + 128) {
		t.Error("next line should miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-equivalent pressure: 4-way set, fill 5 lines mapping
	// to the same set; the first (least recently used) must be evicted.
	c := New(4*128, 4, 128) // 1 set, 4 ways
	for i := uint64(0); i < 4; i++ {
		c.Access(i * 128)
	}
	for i := uint64(0); i < 4; i++ {
		if !c.Lookup(i * 128) {
			t.Fatalf("line %d should be resident", i)
		}
	}
	// Touch lines 1..3 so line 0 is LRU, then insert line 4.
	for i := uint64(1); i < 4; i++ {
		c.Lookup(i * 128)
	}
	c.Access(4 * 128)
	if c.Lookup(0) {
		t.Error("line 0 should have been evicted")
	}
	if !c.Lookup(4 * 128) {
		t.Error("line 4 should be resident")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(32*1024, 4, 128)
	c.Access(0x4000)
	if !c.Invalidate(0x4000) {
		t.Error("invalidate should find the line")
	}
	if c.Invalidate(0x4000) {
		t.Error("double invalidate should miss")
	}
	if c.Lookup(0x4000) {
		t.Error("line should be gone")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(32*1024, 4, 128)
	for i := uint64(0); i < 100; i++ {
		c.Access(i * 128)
	}
	if c.Resident() == 0 {
		t.Fatal("expected resident lines")
	}
	c.InvalidateAll()
	if c.Resident() != 0 {
		t.Errorf("resident = %d after InvalidateAll", c.Resident())
	}
}

func TestResidencyNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		c := New(8*1024, 4, 128) // 64 lines
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			c.Access(uint64(r.Intn(1 << 20)))
		}
		return c.Resident() <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetFitsPerfectly(t *testing.T) {
	// A working set equal to capacity must reach 100% hits after warmup.
	c := New(8*1024, 4, 128)
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < 64; i++ {
			c.Access(i * 128)
		}
	}
	h0 := c.Hits
	for i := uint64(0); i < 64; i++ {
		if !c.Access(i * 128) {
			t.Fatalf("line %d missed with resident working set", i)
		}
	}
	if c.Hits != h0+64 {
		t.Errorf("hits = %d, want %d", c.Hits, h0+64)
	}
}

func TestFillIdempotent(t *testing.T) {
	c := New(32*1024, 4, 128)
	c.Fill(0x2000)
	c.Fill(0x2000)
	if c.Resident() != 1 {
		t.Errorf("resident = %d, want 1", c.Resident())
	}
}
