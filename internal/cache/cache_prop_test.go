package cache

import (
	"math/rand"
	"testing"
)

// refCache is an oracle implementation: a map of resident lines with exact
// LRU ordering, used to cross-check the array-based Cache.
type refCache struct {
	ways, sets, lineShift int
	sets_                 []map[uint64]uint64 // set -> line -> stamp
	clock                 uint64
}

func newRef(totalBytes, ways, lineBytes int) *refCache {
	lines := totalBytes / lineBytes
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	shift := 0
	for 1<<shift < lineBytes {
		shift++
	}
	r := &refCache{ways: ways, sets: sets, lineShift: shift}
	r.sets_ = make([]map[uint64]uint64, sets)
	for i := range r.sets_ {
		r.sets_[i] = map[uint64]uint64{}
	}
	return r
}

func (r *refCache) setOf(addr uint64) (int, uint64) {
	line := addr >> r.lineShift
	return int(line % uint64(r.sets)), line
}

func (r *refCache) lookup(addr uint64) bool {
	s, line := r.setOf(addr)
	if _, ok := r.sets_[s][line]; ok {
		r.clock++
		r.sets_[s][line] = r.clock
		return true
	}
	return false
}

func (r *refCache) fill(addr uint64) {
	s, line := r.setOf(addr)
	if _, ok := r.sets_[s][line]; ok {
		return
	}
	if len(r.sets_[s]) >= r.ways {
		var victim uint64
		oldest := ^uint64(0)
		for l, st := range r.sets_[s] {
			if st < oldest {
				oldest, victim = st, l
			}
		}
		delete(r.sets_[s], victim)
	}
	r.clock++
	r.sets_[s][line] = r.clock
}

func (r *refCache) invalidate(addr uint64) bool {
	s, line := r.setOf(addr)
	if _, ok := r.sets_[s][line]; ok {
		delete(r.sets_[s], line)
		return true
	}
	return false
}

// TestCacheMatchesOracle drives both implementations with the same random
// operation stream; every observable result must agree.
func TestCacheMatchesOracle(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		c := New(4096, 4, 128) // 32 lines, 8 sets
		ref := newRef(4096, 4, 128)
		for op := 0; op < 5000; op++ {
			addr := uint64(rng.Intn(1 << 14))
			switch rng.Intn(4) {
			case 0:
				got, want := c.Lookup(addr), ref.lookup(addr)
				if got != want {
					t.Fatalf("trial %d op %d: Lookup(%#x) = %v, oracle %v", trial, op, addr, got, want)
				}
			case 1:
				c.Fill(addr)
				ref.fill(addr)
			case 2:
				got, want := c.Access(addr), ref.lookup(addr)
				if !want {
					ref.fill(addr)
				}
				if got != want {
					t.Fatalf("trial %d op %d: Access(%#x) = %v, oracle %v", trial, op, addr, got, want)
				}
			case 3:
				got, want := c.Invalidate(addr), ref.invalidate(addr)
				if got != want {
					t.Fatalf("trial %d op %d: Invalidate(%#x) = %v, oracle %v", trial, op, addr, got, want)
				}
			}
		}
		// Final residency must agree.
		total := 0
		for _, s := range ref.sets_ {
			total += len(s)
		}
		if c.Resident() != total {
			t.Fatalf("trial %d: resident %d, oracle %d", trial, c.Resident(), total)
		}
	}
}
