package exec

import (
	"testing"

	"repro/internal/cfgx"
	"repro/internal/isa"
	"repro/internal/mem"
)

func saxpyKernel(t *testing.T) *isa.Kernel {
	t.Helper()
	b := isa.NewBuilder("saxpy", 3) // r0=x, r1=y, r2=n
	b.Mov(3, isa.Sp(isa.SpGtid))
	b.Setp(4, isa.CmpGE, isa.R(3), isa.R(2))
	b.BraIf(isa.R(4), "done")
	b.Shl(5, isa.R(3), isa.Imm(2))
	b.Add(6, isa.R(0), isa.R(5))
	b.Add(7, isa.R(1), isa.R(5))
	b.Ld(8, isa.R(6), 0)
	b.Ld(9, isa.R(7), 0)
	b.FMA(9, isa.R(8), isa.ImmF(2.0), isa.R(9))
	b.St(isa.R(7), 0, isa.R(9))
	b.Label("done")
	b.Exit()
	return b.MustBuild()
}

func TestSaxpyFunctional(t *testing.T) {
	k := saxpyKernel(t)
	m := mem.NewFlat()
	at := mem.NewAllocTable()
	n := 1000
	x := at.Alloc("x", uint64(4*n))
	y := at.Alloc("y", uint64(4*n))
	for i := 0; i < n; i++ {
		m.Store4(x+uint64(4*i), uint32(isa.F32Bits(float32(i))))
		m.Store4(y+uint64(4*i), uint32(isa.F32Bits(1.0)))
	}
	l := Launch{Kernel: k, Grid: 8, Block: 128, Params: []uint64{x, y, uint64(n)}}
	if err := RunFunctional(m, l); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := isa.F32FromBits(uint64(m.Load4(y + uint64(4*i))))
		want := 2.0*float32(i) + 1.0
		if got != want {
			t.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
	// Threads beyond n (grid covers 1024) must not have written anything.
	if v := m.Load4(y + uint64(4*n)); v != 0 {
		t.Errorf("y[%d] = %#x, want untouched 0", n, v)
	}
}

// divergence: lanes pick different paths based on lane parity, then join.
func TestDivergenceReconverges(t *testing.T) {
	b := isa.NewBuilder("parity", 1) // r0 = out base
	b.Mov(1, isa.Sp(isa.SpGtid))
	b.And(2, isa.R(1), isa.Imm(1))
	b.BraIfNot(isa.R(2), "even")
	b.MovI(3, 100)
	b.Bra("join")
	b.Label("even")
	b.MovI(3, 200)
	b.Label("join")
	b.Add(3, isa.R(3), isa.R(1)) // all lanes must execute this once
	b.Shl(4, isa.R(1), isa.Imm(2))
	b.Add(4, isa.R(0), isa.R(4))
	b.St(isa.R(4), 0, isa.R(3))
	b.Exit()
	k := b.MustBuild()

	m := mem.NewFlat()
	out := uint64(0x2000_0000)
	l := Launch{Kernel: k, Grid: 1, Block: 64, Params: []uint64{out}}
	if err := RunFunctional(m, l); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		want := uint32(200 + i)
		if i%2 == 1 {
			want = uint32(100 + i)
		}
		if got := m.Load4(out + uint64(4*i)); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

// Per-lane loop trip counts force divergence at the loop branch.
func TestDivergentLoopTripCounts(t *testing.T) {
	b := isa.NewBuilder("varloop", 1) // r0 = out
	b.Mov(1, isa.Sp(isa.SpGtid))
	b.Add(2, isa.R(1), isa.Imm(1)) // trips = gtid+1
	b.MovI(3, 0)                   // acc
	b.MovI(4, 0)                   // i
	b.Label("top")
	b.Add(3, isa.R(3), isa.Imm(3))
	b.Add(4, isa.R(4), isa.Imm(1))
	b.Setp(5, isa.CmpLT, isa.R(4), isa.R(2))
	b.BraIf(isa.R(5), "top")
	b.Shl(6, isa.R(1), isa.Imm(2))
	b.Add(6, isa.R(0), isa.R(6))
	b.St(isa.R(6), 0, isa.R(3))
	b.Exit()
	k := b.MustBuild()

	m := mem.NewFlat()
	out := uint64(0x3000_0000)
	if err := RunFunctional(m, Launch{Kernel: k, Grid: 1, Block: 32, Params: []uint64{out}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		want := uint32(3 * (i + 1))
		if got := m.Load4(out + uint64(4*i)); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

// Shared-memory tree reduction with barriers across warps in a CTA.
func TestBarrierSharedReduction(t *testing.T) {
	b := isa.NewBuilder("reduce", 2) // r0 = in, r1 = out
	b.SetShared(4 * 128)
	b.Mov(2, isa.Sp(isa.SpTid))
	b.Shl(3, isa.R(2), isa.Imm(2))
	b.Add(4, isa.R(0), isa.R(3))
	// gtid for input index
	b.Mov(5, isa.Sp(isa.SpGtid))
	b.Shl(5, isa.R(5), isa.Imm(2))
	b.Add(5, isa.R(0), isa.R(5))
	b.Ld(6, isa.R(5), 0)
	b.StShared(isa.R(3), 0, isa.R(6))
	b.Bar()
	// for s = 64; s > 0; s >>= 1
	b.MovI(7, 64)
	b.Label("loop")
	b.Setp(8, isa.CmpGE, isa.R(2), isa.R(7))
	b.BraIf(isa.R(8), "skip")
	// shared[tid] += shared[tid+s]
	b.Add(9, isa.R(2), isa.R(7))
	b.Shl(9, isa.R(9), isa.Imm(2))
	b.LdShared(10, isa.R(9), 0)
	b.LdShared(11, isa.R(3), 0)
	b.Add(11, isa.R(11), isa.R(10))
	b.StShared(isa.R(3), 0, isa.R(11))
	b.Label("skip")
	b.Bar()
	b.Shr(7, isa.R(7), isa.Imm(1))
	b.Setp(12, isa.CmpGT, isa.R(7), isa.Imm(0))
	b.BraIf(isa.R(12), "loop")
	// tid 0 writes result
	b.Setp(13, isa.CmpNE, isa.R(2), isa.Imm(0))
	b.BraIf(isa.R(13), "done")
	b.LdShared(14, isa.R(3), 0)
	b.Shl(15, isa.Sp(isa.SpCtaid), isa.Imm(2))
	b.Add(15, isa.R(1), isa.R(15))
	b.St(isa.R(15), 0, isa.R(14))
	b.Label("done")
	b.Exit()
	k := b.MustBuild()

	m := mem.NewFlat()
	in, out := uint64(0x4000_0000), uint64(0x5000_0000)
	for i := 0; i < 256; i++ {
		m.Store4(in+uint64(4*i), uint32(i))
	}
	if err := RunFunctional(m, Launch{Kernel: k, Grid: 2, Block: 128, Params: []uint64{in, out}}); err != nil {
		t.Fatal(err)
	}
	// CTA 0 sums 0..127 = 8128; CTA 1 sums 128..255 = 24512.
	if got := m.Load4(out); got != 8128 {
		t.Errorf("cta0 sum = %d, want 8128", got)
	}
	if got := m.Load4(out + 4); got != 24512 {
		t.Errorf("cta1 sum = %d, want 24512", got)
	}
}

func TestAtomicAdd(t *testing.T) {
	b := isa.NewBuilder("hist", 1) // r0 = counter
	b.AtomAdd(1, isa.R(0), 0, isa.Imm(1))
	b.Exit()
	k := b.MustBuild()
	m := mem.NewFlat()
	ctr := uint64(0x6000_0000)
	if err := RunFunctional(m, Launch{Kernel: k, Grid: 4, Block: 64, Params: []uint64{ctr}}); err != nil {
		t.Fatal(err)
	}
	if got := m.Load4(ctr); got != 256 {
		t.Errorf("counter = %d, want 256", got)
	}
}

// Region execution with only live-in registers must match full execution.
func TestRegionWarpMatchesFullExecution(t *testing.T) {
	// Loop region from a sum kernel (same shape as cfgx's loopKernel).
	b := isa.NewBuilder("sum", 2) // r0 = base, r1 = n
	b.MovI(2, 0)
	b.MovI(3, 0)
	b.Label("top") // pc=2: region start
	b.Shl(4, isa.R(2), isa.Imm(2))
	b.Add(4, isa.R(0), isa.R(4))
	b.Ld(5, isa.R(4), 0)
	b.Add(3, isa.R(3), isa.R(5))
	b.Add(2, isa.R(2), isa.Imm(1))
	b.Setp(6, isa.CmpLT, isa.R(2), isa.R(1))
	b.BraIf(isa.R(6), "top") // pc=8; region end = 9
	b.St(isa.R(0), 0, isa.R(3))
	b.Exit()
	k := b.MustBuild()
	info, err := cfgx.Analyze(k)
	if err != nil {
		t.Fatal(err)
	}
	liveIn, liveOut, err := info.RegionLiveInOut(2, 9)
	if err != nil {
		t.Fatal(err)
	}

	base := uint64(0x7000_0000)
	n := uint64(17)
	setup := func() *mem.Flat {
		m := mem.NewFlat()
		for i := uint64(0); i < n; i++ {
			m.Store4(base+4*i, uint32(i+1))
		}
		return m
	}

	// Full execution.
	m1 := setup()
	wi := WarpInfo{CtaID: 0, WarpInCTA: 0, NTid: 32, NCtaid: 1}
	w1 := NewWarp(k, info, wi, m1, nil, []uint64{base, n})
	for !w1.Done() {
		w1.Step()
	}

	// Split execution: run to region start, ship live-ins to a region
	// warp, run it, copy live-outs back, continue.
	m2 := setup()
	w2 := NewWarp(k, info, wi, m2, nil, []uint64{base, n})
	for w2.PC() != 2 {
		w2.Step()
	}
	region := NewRegionWarp(k, info, wi, m2, w2.ActiveMask(), 2, 9, liveIn, w2.Regs)
	steps := 0
	for !region.Done() {
		region.Step()
		if steps++; steps > 10000 {
			t.Fatal("region warp did not terminate")
		}
	}
	for r := 0; r < k.NumRegs; r++ {
		if liveOut&(1<<r) != 0 {
			w2.Regs[r] = region.Regs[r]
		}
	}
	// Skip the main warp past the region.
	w2.stack[len(w2.stack)-1].pc = 9
	for !w2.Done() {
		w2.Step()
	}

	if ok, addr := mem.Equal(m1, m2); !ok {
		t.Fatalf("memory differs at %#x after region execution", addr)
	}
}

func TestLaunchValidation(t *testing.T) {
	k := saxpyKernel(t)
	bad := []Launch{
		{Kernel: nil, Grid: 1, Block: 32},
		{Kernel: k, Grid: 0, Block: 32},
		{Kernel: k, Grid: 1, Block: 33},
		{Kernel: k, Grid: 1, Block: 32, Params: []uint64{1, 2, 3, 4}},
	}
	for i, l := range bad {
		if err := RunFunctional(mem.NewFlat(), l); err == nil {
			t.Errorf("launch %d should fail validation", i)
		}
	}
}

func TestInactiveTailLanes(t *testing.T) {
	// Block of 32 but a grid-stride store guarded by gtid<n with n=40:
	// warp 1 of CTA covers tid 32..63, only 40-63 inactive.
	b := isa.NewBuilder("tail", 2)
	b.Mov(2, isa.Sp(isa.SpGtid))
	b.Setp(3, isa.CmpGE, isa.R(2), isa.R(1))
	b.BraIf(isa.R(3), "out")
	b.Shl(4, isa.R(2), isa.Imm(2))
	b.Add(4, isa.R(0), isa.R(4))
	b.St(isa.R(4), 0, isa.Imm(7))
	b.Label("out")
	b.Exit()
	k := b.MustBuild()
	m := mem.NewFlat()
	out := uint64(0x8000_0000)
	if err := RunFunctional(m, Launch{Kernel: k, Grid: 1, Block: 64, Params: []uint64{out, 40}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		want := uint32(0)
		if i < 40 {
			want = 7
		}
		if got := m.Load4(out + uint64(4*i)); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}
