package exec

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// TestBarrierWithEarlyExitWarps: warps that exit before a barrier must not
// hang the CTA — the barrier releases once every *live* warp arrives (the
// CUDA semantics for warps that have fully exited).
func TestBarrierWithEarlyExitWarps(t *testing.T) {
	b := isa.NewBuilder("earlyexit", 0)
	b.SetShared(64)
	// Threads with tid < 64 (warps 0-1) exit; warps 2-3 synchronize.
	b.Mov(1, isa.Sp(isa.SpTid))
	b.Setp(2, isa.CmpLT, isa.R(1), isa.Imm(64))
	b.BraIf(isa.R(2), "out")
	b.Bar()
	b.Label("out")
	b.Exit()
	k := b.MustBuild()

	if err := RunFunctional(mem.NewFlat(), Launch{Kernel: k, Grid: 1, Block: 128}); err != nil {
		t.Fatalf("early-exit barrier should complete: %v", err)
	}
}

// TestBarrierReleasesWhenRetiredWarpsExist: warps that exit before the
// barrier must not block the remaining warps (they are no longer counted).
func TestBarrierReleasesWhenRetiredWarpsExist(t *testing.T) {
	b := isa.NewBuilder("halfbar", 1) // r0 = out
	b.SetShared(64)
	// Warp 0 (tid < 32) exits; warps 1..3 all hit the barrier and store.
	b.Mov(1, isa.Sp(isa.SpTid))
	b.Setp(2, isa.CmpLT, isa.R(1), isa.Imm(32))
	b.BraIf(isa.R(2), "out")
	b.Bar()
	b.Shl(3, isa.R(1), isa.Imm(2))
	b.Add(3, isa.R(0), isa.R(3))
	b.St(isa.R(3), 0, isa.Imm(1))
	b.Label("out")
	b.Exit()
	k := b.MustBuild()

	m := mem.NewFlat()
	out := uint64(0x9000_0000)
	// Note: the whole warp 0 takes the branch, so it exits as a unit and
	// the barrier count excludes it.
	if err := RunFunctional(m, Launch{Kernel: k, Grid: 1, Block: 128, Params: []uint64{out}}); err != nil {
		t.Fatal(err)
	}
	for tid := 32; tid < 128; tid++ {
		if m.Load4(out+uint64(4*tid)) != 1 {
			t.Fatalf("tid %d did not pass the barrier", tid)
		}
	}
}

// TestMultipleBarrierRounds: warps must be able to synchronize repeatedly.
func TestMultipleBarrierRounds(t *testing.T) {
	b := isa.NewBuilder("rounds", 1) // r0 = out
	b.SetShared(4)
	b.MovI(1, 0) // round counter
	b.Label("top")
	b.Bar()
	b.Add(1, isa.R(1), isa.Imm(1))
	b.Bar()
	b.Setp(2, isa.CmpLT, isa.R(1), isa.Imm(5))
	b.BraIf(isa.R(2), "top")
	b.Mov(3, isa.Sp(isa.SpGtid))
	b.Shl(3, isa.R(3), isa.Imm(2))
	b.Add(3, isa.R(0), isa.R(3))
	b.St(isa.R(3), 0, isa.R(1))
	b.Exit()
	k := b.MustBuild()
	m := mem.NewFlat()
	out := uint64(0xA000_0000)
	if err := RunFunctional(m, Launch{Kernel: k, Grid: 2, Block: 128, Params: []uint64{out}}); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 256; tid++ {
		if got := m.Load4(out + uint64(4*tid)); got != 5 {
			t.Fatalf("tid %d rounds = %d, want 5", tid, got)
		}
	}
}
