package exec

import (
	"fmt"

	"repro/internal/cfgx"
	"repro/internal/isa"
)

// Launch describes one kernel invocation on a 1-D grid.
type Launch struct {
	Kernel *isa.Kernel
	Grid   int // number of CTAs
	Block  int // threads per CTA
	// Params are broadcast into registers r0..r(len-1) of every thread.
	Params []uint64
}

// Validate checks launch shape.
func (l Launch) Validate() error {
	if l.Kernel == nil {
		return fmt.Errorf("exec: launch has no kernel")
	}
	if l.Grid < 1 || l.Block < 1 {
		return fmt.Errorf("exec: launch %q: grid %d / block %d must be positive", l.Kernel.Name, l.Grid, l.Block)
	}
	if l.Block%isa.WarpSize != 0 {
		return fmt.Errorf("exec: launch %q: block %d not a multiple of warp size %d", l.Kernel.Name, l.Block, isa.WarpSize)
	}
	if len(l.Params) > l.Kernel.NumParams {
		return fmt.Errorf("exec: launch %q: %d params but kernel declares %d", l.Kernel.Name, len(l.Params), l.Kernel.NumParams)
	}
	return nil
}

// WarpsPerCTA returns the warp count per CTA.
func (l Launch) WarpsPerCTA() int { return (l.Block + isa.WarpSize - 1) / isa.WarpSize }

// StepHook observes every executed warp-instruction during an instrumented
// functional run (used by the profiling pass that feeds the Fig. 5/6
// analyses and the oracle mapping).
type StepHook func(w *Warp, res StepResult)

// RunFunctional executes the launch purely functionally (no timing): the
// reference model. CTAs run sequentially; warps within a CTA are
// interleaved at barrier granularity, which is sufficient for race-free
// kernels (barriers and commutative atomics are the only permitted
// inter-thread communication, as in the paper's offloading-legal subset).
func RunFunctional(m Memory, l Launch) error {
	return RunInstrumented(m, l, nil)
}

// RunInstrumented is RunFunctional with a per-step observation hook.
func RunInstrumented(m Memory, l Launch, hook StepHook) error {
	if err := l.Validate(); err != nil {
		return err
	}
	info, err := cfgx.Analyze(l.Kernel)
	if err != nil {
		return err
	}
	wpc := l.WarpsPerCTA()
	for cta := 0; cta < l.Grid; cta++ {
		shared := make([]uint32, (l.Kernel.SharedBytes+3)/4)
		warps := make([]*Warp, wpc)
		for wi := 0; wi < wpc; wi++ {
			warps[wi] = NewWarp(l.Kernel, info, WarpInfo{
				CtaID: cta, WarpInCTA: wi, NTid: l.Block, NCtaid: l.Grid,
			}, m, shared, l.Params)
		}
		atBarrier := make([]bool, wpc)
		for {
			busy := 0
			progressed := false
			for wi, w := range warps {
				if w.Done() || atBarrier[wi] {
					if atBarrier[wi] {
						busy++
					}
					continue
				}
				busy++
				for !w.Done() {
					r := w.Step()
					progressed = true
					if hook != nil {
						hook(w, r)
					}
					if r.Kind == StepBarrier {
						atBarrier[wi] = true
						break
					}
				}
			}
			if busy == 0 {
				break
			}
			// Release the barrier once every unfinished warp arrived.
			arrived := 0
			waiting := 0
			for wi, w := range warps {
				if atBarrier[wi] {
					arrived++
					waiting++
				} else if !w.Done() {
					waiting++
				}
			}
			if arrived > 0 && arrived == waiting {
				for wi := range atBarrier {
					atBarrier[wi] = false
				}
				progressed = true
			}
			if !progressed {
				return fmt.Errorf("exec: kernel %q CTA %d: barrier deadlock", l.Kernel.Name, cta)
			}
		}
	}
	return nil
}

// RunFunctionalAll runs a sequence of launches (a whole workload).
func RunFunctionalAll(m Memory, launches []Launch) error {
	for i, l := range launches {
		if err := RunFunctional(m, l); err != nil {
			return fmt.Errorf("launch %d: %w", i, err)
		}
	}
	return nil
}
