package exec

import (
	"math/rand"
	"testing"

	"repro/internal/cfgx"
	"repro/internal/isa"
	"repro/internal/mem"
)

// randomStructuredKernel builds a random but structured kernel: straight-
// line ALU/memory code with guarded forward branches and one optional
// counted loop — always terminating, always valid.
func randomStructuredKernel(r *rand.Rand) *isa.Kernel {
	b := isa.NewBuilder("fuzz", 2) // r0 = data base, r1 = n
	randOpd := func(maxReg int) isa.Operand {
		if r.Intn(4) == 0 {
			return isa.Imm(int64(r.Intn(64)))
		}
		return isa.R(isa.Reg(2 + r.Intn(maxReg)))
	}
	// Prologue: derive an in-bounds element address from gtid.
	b.Mov(2, isa.Sp(isa.SpGtid))
	b.Rem(2, isa.R(2), isa.R(1))
	b.Shl(3, isa.R(2), isa.Imm(2))
	b.Add(3, isa.R(0), isa.R(3)) // r3 = &data[gtid % n]
	b.Mov(4, isa.R(3))
	nregs := 6 + r.Intn(6)
	for i := 0; i < 12+r.Intn(16); i++ {
		dst := isa.Reg(5 + r.Intn(nregs-5))
		switch r.Intn(8) {
		case 0:
			b.Ld(dst, isa.R(3), 0)
		case 1:
			b.St(isa.R(3), 0, randOpd(nregs))
		case 2:
			// Guarded forward skip.
			pred := isa.Reg(5 + r.Intn(nregs-5))
			b.Setp(pred, isa.CmpLT, randOpd(nregs), randOpd(nregs))
			label := labelName(i)
			b.BraIf(isa.R(pred), label)
			b.Add(dst, randOpd(nregs), randOpd(nregs))
			b.Label(label)
		case 3:
			b.Xor(dst, randOpd(nregs), randOpd(nregs))
		case 4:
			b.FAdd(dst, randOpd(nregs), randOpd(nregs))
		default:
			b.Add(dst, randOpd(nregs), randOpd(nregs))
		}
	}
	// Optional small counted loop accumulating loads.
	if r.Intn(2) == 0 {
		b.MovI(5, 0)
		b.Label("loop")
		b.Ld(6, isa.R(4), 0)
		b.Add(7, isa.R(7), isa.R(6))
		b.Add(5, isa.R(5), isa.Imm(1))
		b.Setp(8, isa.CmpLT, isa.R(5), isa.Imm(int64(1+r.Intn(7))))
		b.BraIf(isa.R(8), "loop")
		b.St(isa.R(4), 0, isa.R(7))
	}
	b.Exit()
	return b.MustBuild()
}

func labelName(i int) string { return "skip" + string(rune('a'+i%26)) }

// TestRandomKernelsDeterministic: the interpreter must be a pure function
// of (kernel, initial memory): two runs give identical final memory.
func TestRandomKernelsDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		k := randomStructuredKernel(r)
		if err := k.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mk := func() *mem.Flat {
			m := mem.NewFlat()
			for i := uint64(0); i < 256; i++ {
				m.Store4(0x1000_0000+4*i, uint32(i*2654435761))
			}
			return m
		}
		launch := Launch{Kernel: k, Grid: 2, Block: 64, Params: []uint64{0x1000_0000, 256}}
		m1, m2 := mk(), mk()
		if err := RunFunctional(m1, launch); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, isa.Disassemble(k))
		}
		if err := RunFunctional(m2, launch); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ok, addr := mem.Equal(m1, m2); !ok {
			t.Fatalf("trial %d: nondeterministic at %#x\n%s", trial, addr, isa.Disassemble(k))
		}
	}
}

// TestActiveMaskNeverGrows: a warp's active mask is always a subset of the
// lanes it started with.
func TestActiveMaskNeverGrows(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		k := randomStructuredKernel(r)
		info, err := cfgx.Analyze(k)
		if err != nil {
			t.Fatal(err)
		}
		m := mem.NewFlat()
		w := NewWarp(k, info, WarpInfo{NTid: 48, NCtaid: 1}, m, nil, []uint64{0x2000_0000, 64})
		initial := w.ActiveMask()
		for steps := 0; !w.Done() && steps < 100000; steps++ {
			if am := w.ActiveMask(); am&^initial != 0 {
				t.Fatalf("trial %d: mask %#x grew beyond initial %#x", trial, am, initial)
			}
			w.Step()
		}
		if !w.Done() {
			t.Fatalf("trial %d: warp did not terminate", trial)
		}
	}
}

// TestStepCountsMatchActiveLanes: ActiveLanes reported by Step must equal
// the popcount of the mask that executed.
func TestStepCountsMatchActiveLanes(t *testing.T) {
	k := randomStructuredKernel(rand.New(rand.NewSource(7)))
	info, err := cfgx.Analyze(k)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewFlat()
	w := NewWarp(k, info, WarpInfo{NTid: 32, NCtaid: 1}, m, nil, []uint64{0x3000_0000, 64})
	for !w.Done() {
		before := w.ActiveMask()
		res := w.Step()
		if res.Kind == StepNone {
			break
		}
		pop := 0
		for m := before; m != 0; m &= m - 1 {
			pop++
		}
		if res.ActiveLanes != pop {
			t.Fatalf("ActiveLanes=%d, mask popcount=%d at pc %d", res.ActiveLanes, pop, res.PC)
		}
	}
}
