// Package exec implements the functional execution model for isa kernels:
// a 32-lane SIMT warp interpreter with a post-dominator reconvergence
// stack, plus a whole-grid functional runner used both as the reference
// model (the timing simulator must produce the identical final memory
// image) and as the execution engine inside the timing simulator itself.
//
// The interpreter is "functional-first": every Step applies the
// instruction's architectural effects immediately (register writes, memory
// stores, loads), and returns a descriptor of what happened so a timing
// layer can charge latency and bandwidth afterwards. Values are therefore
// always exact, and timing policies can never corrupt program results.
package exec

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/cfgx"
	"repro/internal/isa"
)

// Memory is the global-memory interface the interpreter needs. Words are
// little-endian 32-bit; addresses are byte addresses.
type Memory interface {
	Load4(addr uint64) uint32
	Store4(addr uint64, v uint32)
	// AtomicAdd4 adds v to the word at addr and returns the old value.
	AtomicAdd4(addr uint64, v uint32) uint32
}

// WarpInfo locates a warp within its grid.
type WarpInfo struct {
	CtaID     int // CTA index within the grid
	WarpInCTA int // warp index within the CTA
	NTid      int // threads per CTA
	NCtaid    int // CTAs in the grid
}

// Access describes one lane's global-memory access within a step.
type Access struct {
	Lane  int
	Addr  uint64
	Store bool
}

// StepKind classifies what a Step did, for the timing layer.
type StepKind uint8

// Step kinds.
const (
	StepALU StepKind = iota
	StepMem          // global load/store/atomic: see Accesses
	StepShared
	StepBarrier
	StepBranch
	StepExit
	StepNone // warp already finished
)

// StepResult reports the architectural events of one warp-instruction.
type StepResult struct {
	Kind        StepKind
	PC          int // pc of the executed instruction
	Op          isa.Op
	Dst         isa.Reg
	HasDst      bool
	ActiveLanes int
	// Accesses holds per-active-lane global accesses for StepMem. The
	// slice is reused across steps; callers must not retain it.
	Accesses []Access
	// Done reports that the warp (or region) has fully completed.
	Done bool
}

type simtEntry struct {
	pc   int
	rpc  int // reconvergence pc; -1 = never (base entry)
	mask uint32
}

// Warp is a 32-lane SIMT execution context.
type Warp struct {
	Kernel *isa.Kernel
	Info   *cfgx.Info
	WInfo  WarpInfo
	Mem    Memory
	Shared []uint32 // CTA shared memory, shared across the CTA's warps

	// Regs[r][lane] is the architectural register file.
	Regs [][isa.WarpSize]uint64

	alive    uint32 // lanes that have not exited
	stack    []simtEntry
	accesses []Access
}

// NewWarp creates a warp ready to execute from pc 0 with all lanes whose
// global thread index is inside the CTA's thread count active.
func NewWarp(k *isa.Kernel, info *cfgx.Info, wi WarpInfo, mem Memory, shared []uint32, params []uint64) *Warp {
	w := &Warp{
		Kernel: k,
		Info:   info,
		WInfo:  wi,
		Mem:    mem,
		Shared: shared,
		Regs:   make([][isa.WarpSize]uint64, k.NumRegs),
	}
	var mask uint32
	base := wi.WarpInCTA * isa.WarpSize
	for lane := 0; lane < isa.WarpSize; lane++ {
		if base+lane < wi.NTid {
			mask |= 1 << lane
		}
	}
	for i, v := range params {
		if i >= k.NumRegs {
			break
		}
		for lane := 0; lane < isa.WarpSize; lane++ {
			w.Regs[i][lane] = v
		}
	}
	w.alive = mask
	w.stack = []simtEntry{{pc: 0, rpc: -1, mask: mask}}
	return w
}

// NewRegionWarp creates a warp positioned to execute the region
// [startPC, endPC) with the given active mask and (partial) register
// contents — the memory-stack SM side of an offload. regs supplies values
// for the registers named in liveIn; everything else starts zero, which
// exercises the liveness analysis for real.
func NewRegionWarp(k *isa.Kernel, info *cfgx.Info, wi WarpInfo, mem Memory, mask uint32,
	startPC, endPC int, liveIn uint64, regs [][isa.WarpSize]uint64) *Warp {
	w := &Warp{
		Kernel: k,
		Info:   info,
		WInfo:  wi,
		Mem:    mem,
		Regs:   make([][isa.WarpSize]uint64, k.NumRegs),
	}
	for r := 0; r < k.NumRegs; r++ {
		if liveIn&(1<<r) != 0 {
			w.Regs[r] = regs[r]
		}
	}
	w.alive = mask
	w.stack = []simtEntry{{pc: startPC, rpc: endPC, mask: mask}}
	return w
}

// Done reports whether the warp has finished (all lanes exited or the
// region completed).
func (w *Warp) Done() bool {
	w.popConverged()
	return len(w.stack) == 0
}

// PC returns the current pc, or -1 if done.
func (w *Warp) PC() int {
	if len(w.stack) == 0 {
		return -1
	}
	return w.stack[len(w.stack)-1].pc
}

// ActiveMask returns the current active lane mask (0 if done).
func (w *Warp) ActiveMask() uint32 {
	if len(w.stack) == 0 {
		return 0
	}
	return w.stack[len(w.stack)-1].mask & w.alive
}

// popConverged pops stack entries that have reached their reconvergence
// point or lost all live lanes.
func (w *Warp) popConverged() {
	for len(w.stack) > 0 {
		top := &w.stack[len(w.stack)-1]
		if top.mask&w.alive == 0 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		if top.rpc >= 0 && top.pc == top.rpc {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return
	}
}

// PeekOp returns the opcode about to execute (OpNop if done).
func (w *Warp) PeekOp() isa.Op {
	w.popConverged()
	if len(w.stack) == 0 {
		return isa.OpNop
	}
	return w.Kernel.Instrs[w.stack[len(w.stack)-1].pc].Op
}

// NextInstr returns the instruction about to execute. Valid only if !Done.
// It returns a pointer into the kernel's instruction slice (callers must
// not mutate it) so the per-issue hot path copies nothing.
func (w *Warp) NextInstr() *isa.Instr {
	return &w.Kernel.Instrs[w.PC()]
}

// SkipTo repositions the current execution point — used by the main GPU SM
// to jump past an offloaded region once the offload acknowledgment (with
// live-out registers) arrives.
func (w *Warp) SkipTo(pc int) {
	if len(w.stack) == 0 {
		panic("exec: SkipTo on finished warp")
	}
	w.stack[len(w.stack)-1].pc = pc
}

// LeaderLane returns the lowest active lane index, or -1 if none.
func (w *Warp) LeaderLane() int {
	m := w.ActiveMask()
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros32(m)
}

// SpecialValue returns the value of a special register for a lane of this
// warp (exported for the offload controller's scalar dry-run that finds the
// destination stack of a candidate's first memory access, §4.2 footnote 4).
func (w *Warp) SpecialValue(s isa.Special, lane int) uint64 { return w.special(s, lane) }

func (w *Warp) special(s isa.Special, lane int) uint64 {
	wi := w.WInfo
	tid := wi.WarpInCTA*isa.WarpSize + lane
	switch s {
	case isa.SpLane:
		return uint64(lane)
	case isa.SpTid:
		return uint64(tid)
	case isa.SpCtaid:
		return uint64(wi.CtaID)
	case isa.SpNtid:
		return uint64(wi.NTid)
	case isa.SpNctaid:
		return uint64(wi.NCtaid)
	case isa.SpGtid:
		return uint64(wi.CtaID*wi.NTid + tid)
	case isa.SpWarpid:
		return uint64(wi.WarpInCTA)
	}
	return 0
}

func (w *Warp) eval(o isa.Operand, lane int) uint64 {
	switch o.Kind {
	case isa.OpdReg:
		return w.Regs[o.Reg][lane]
	case isa.OpdImm:
		return uint64(o.Imm)
	case isa.OpdSpecial:
		return w.special(o.Sp, lane)
	}
	return 0
}

func cmpInt(c isa.Cmp, a, b int64) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	}
	return false
}

func cmpFloat(c isa.Cmp, a, b float32) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	}
	return false
}

func f32(v uint64) float32   { return math.Float32frombits(uint32(v)) }
func fbits(f float32) uint64 { return uint64(math.Float32bits(f)) }

// Step executes one warp-instruction and returns what happened.
func (w *Warp) Step() StepResult {
	w.popConverged()
	if len(w.stack) == 0 {
		return StepResult{Kind: StepNone, Done: true}
	}
	top := &w.stack[len(w.stack)-1]
	pc := top.pc
	if pc >= len(w.Kernel.Instrs) {
		panic(fmt.Sprintf("exec: kernel %q: pc %d fell off the end", w.Kernel.Name, pc))
	}
	in := &w.Kernel.Instrs[pc]
	mask := top.mask & w.alive
	active := bits.OnesCount32(mask)
	res := StepResult{PC: pc, Op: in.Op, Dst: in.Dst, HasDst: in.HasDst, ActiveLanes: active}

	switch in.Op {
	case isa.OpNop:
		res.Kind = StepALU
		top.pc++

	case isa.OpBar:
		res.Kind = StepBarrier
		top.pc++

	case isa.OpExit:
		res.Kind = StepExit
		w.alive &^= mask
		top.pc++
		w.popConverged()
		res.Done = len(w.stack) == 0

	case isa.OpBra:
		res.Kind = StepBranch
		var taken uint32
		if in.A.Kind == isa.OpdNone {
			taken = mask
		} else {
			for lane := 0; lane < isa.WarpSize; lane++ {
				if mask&(1<<lane) == 0 {
					continue
				}
				p := w.eval(in.A, lane) != 0
				if in.PredNeg {
					p = !p
				}
				if p {
					taken |= 1 << lane
				}
			}
		}
		fall := mask &^ taken
		switch {
		case fall == 0:
			top.pc = in.Target
		case taken == 0:
			top.pc++
		default:
			// Divergence: the current entry becomes the continuation at
			// the reconvergence point; the two paths are pushed and run
			// (taken first) until each reaches the reconvergence pc.
			rpc := w.Info.Reconv[pc]
			// Clamp reconvergence to this entry's own region end so
			// region execution (offload) cannot escape its bounds.
			if top.rpc >= 0 && rpc > top.rpc {
				rpc = top.rpc
			}
			top.pc = rpc
			w.stack = append(w.stack,
				simtEntry{pc: pc + 1, rpc: rpc, mask: fall},
				simtEntry{pc: in.Target, rpc: rpc, mask: taken})
		}

	case isa.OpSetp, isa.OpFSetp:
		res.Kind = StepALU
		for lane := 0; lane < isa.WarpSize; lane++ {
			if mask&(1<<lane) == 0 {
				continue
			}
			var v bool
			if in.Op == isa.OpSetp {
				v = cmpInt(in.Cmp, int64(w.eval(in.A, lane)), int64(w.eval(in.B, lane)))
			} else {
				v = cmpFloat(in.Cmp, f32(w.eval(in.A, lane)), f32(w.eval(in.B, lane)))
			}
			if v {
				w.Regs[in.Dst][lane] = 1
			} else {
				w.Regs[in.Dst][lane] = 0
			}
		}
		top.pc++

	case isa.OpLdGlobal, isa.OpStGlobal, isa.OpAtomAdd:
		res.Kind = StepMem
		w.accesses = w.accesses[:0]
		for lane := 0; lane < isa.WarpSize; lane++ {
			if mask&(1<<lane) == 0 {
				continue
			}
			addr := w.eval(in.A, lane) + uint64(in.Imm)
			switch in.Op {
			case isa.OpLdGlobal:
				w.Regs[in.Dst][lane] = uint64(w.Mem.Load4(addr))
				w.accesses = append(w.accesses, Access{Lane: lane, Addr: addr})
			case isa.OpStGlobal:
				w.Mem.Store4(addr, uint32(w.eval(in.B, lane)))
				w.accesses = append(w.accesses, Access{Lane: lane, Addr: addr, Store: true})
			case isa.OpAtomAdd:
				old := w.Mem.AtomicAdd4(addr, uint32(w.eval(in.B, lane)))
				w.Regs[in.Dst][lane] = uint64(old)
				w.accesses = append(w.accesses, Access{Lane: lane, Addr: addr, Store: true})
			}
		}
		res.Accesses = w.accesses
		top.pc++

	case isa.OpLdShared, isa.OpStShared:
		res.Kind = StepShared
		for lane := 0; lane < isa.WarpSize; lane++ {
			if mask&(1<<lane) == 0 {
				continue
			}
			addr := (w.eval(in.A, lane) + uint64(in.Imm)) / isa.WordBytes
			if addr >= uint64(len(w.Shared)) {
				panic(fmt.Sprintf("exec: kernel %q pc %d: shared access %d out of %d words",
					w.Kernel.Name, pc, addr, len(w.Shared)))
			}
			if in.Op == isa.OpLdShared {
				w.Regs[in.Dst][lane] = uint64(w.Shared[addr])
			} else {
				w.Shared[addr] = uint32(w.eval(in.B, lane))
			}
		}
		top.pc++

	default: // ALU
		res.Kind = StepALU
		for lane := 0; lane < isa.WarpSize; lane++ {
			if mask&(1<<lane) == 0 {
				continue
			}
			a := w.eval(in.A, lane)
			var b, c uint64
			if in.B.Kind != isa.OpdNone {
				b = w.eval(in.B, lane)
			}
			if in.C.Kind != isa.OpdNone {
				c = w.eval(in.C, lane)
			}
			w.Regs[in.Dst][lane] = aluOp(in.Op, a, b, c)
		}
		top.pc++
	}

	w.popConverged()
	if len(w.stack) == 0 {
		res.Done = true
	}
	return res
}

// ALUOp computes the pure-ALU result for op given operand values — the
// same semantics Step applies, exported for scalar dry-run evaluation.
func ALUOp(op isa.Op, a, b, c uint64) uint64 { return aluOp(op, a, b, c) }

func aluOp(op isa.Op, a, b, c uint64) uint64 {
	switch op {
	case isa.OpMov:
		return a
	case isa.OpAdd:
		return a + b
	case isa.OpSub:
		return a - b
	case isa.OpMul:
		return a * b
	case isa.OpDiv:
		if int64(b) == 0 {
			return 0
		}
		return uint64(int64(a) / int64(b))
	case isa.OpRem:
		if int64(b) == 0 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case isa.OpMin:
		if int64(a) < int64(b) {
			return a
		}
		return b
	case isa.OpMax:
		if int64(a) > int64(b) {
			return a
		}
		return b
	case isa.OpAnd:
		return a & b
	case isa.OpOr:
		return a | b
	case isa.OpXor:
		return a ^ b
	case isa.OpShl:
		return a << (b & 63)
	case isa.OpShr:
		return a >> (b & 63)
	case isa.OpFAdd:
		return fbits(f32(a) + f32(b))
	case isa.OpFSub:
		return fbits(f32(a) - f32(b))
	case isa.OpFMul:
		return fbits(f32(a) * f32(b))
	case isa.OpFDiv:
		return fbits(f32(a) / f32(b))
	case isa.OpFMA:
		return fbits(f32(a)*f32(b) + f32(c))
	case isa.OpFNeg:
		return fbits(-f32(a))
	case isa.OpCvtIF:
		return fbits(float32(int32(a)))
	case isa.OpCvtFI:
		return uint64(uint32(int32(f32(a))))
	case isa.OpSelp:
		if c != 0 {
			return a
		}
		return b
	}
	panic(fmt.Sprintf("exec: unhandled ALU op %v", op))
}
