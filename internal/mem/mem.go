// Package mem provides the flat global-memory backing store shared by the
// functional interpreter and the timing simulator, plus the GPU driver's
// memory-allocation table from §4.3 of the paper (used by the
// programmer-transparent data-mapping mechanism to decide which address
// ranges get the offload-friendly mapping).
package mem

import (
	"fmt"
	"sort"
)

// pageBytes is the backing-store granularity (storage only; it is not the
// mapping granularity, which the mapping package controls by address bits).
const pageBytes = 1 << 16

const pageWords = pageBytes / 4

// Flat is a sparse flat 64-bit byte-addressed memory of 32-bit words.
// The zero value is ready to use. Flat is not safe for concurrent use;
// the simulator is single-threaded by design.
type Flat struct {
	pages map[uint64]*[pageWords]uint32
	// 1-entry lookup cache: GPU access streams are heavily page-local.
	lastTag  uint64
	lastPage *[pageWords]uint32
}

// NewFlat returns an empty memory.
func NewFlat() *Flat {
	return &Flat{pages: make(map[uint64]*[pageWords]uint32), lastTag: ^uint64(0)}
}

func (f *Flat) page(addr uint64) *[pageWords]uint32 {
	tag := addr / pageBytes
	if tag == f.lastTag {
		return f.lastPage
	}
	p, ok := f.pages[tag]
	if !ok {
		p = new([pageWords]uint32)
		f.pages[tag] = p
	}
	f.lastTag, f.lastPage = tag, p
	return p
}

// Load4 reads the 32-bit word at addr (addr is truncated to word align).
func (f *Flat) Load4(addr uint64) uint32 {
	return f.page(addr)[addr%pageBytes/4]
}

// Store4 writes the 32-bit word at addr.
func (f *Flat) Store4(addr uint64, v uint32) {
	f.page(addr)[addr%pageBytes/4] = v
}

// AtomicAdd4 adds v to the word at addr and returns the previous value.
// (The simulator is single-threaded; atomicity here means read-modify-write
// as one operation in simulation order.)
func (f *Flat) AtomicAdd4(addr uint64, v uint32) uint32 {
	p := f.page(addr)
	i := addr % pageBytes / 4
	old := p[i]
	p[i] = old + v
	return old
}

// Clone returns a deep copy of the memory (page-granular memcpy).
func (f *Flat) Clone() *Flat {
	c := NewFlat()
	for tag, p := range f.pages {
		np := new([pageWords]uint32)
		*np = *p
		c.pages[tag] = np
	}
	return c
}

// Snapshot returns a copy of all nonzero words, for comparing final memory
// images between the functional and timing runs.
func (f *Flat) Snapshot() map[uint64]uint32 {
	out := make(map[uint64]uint32)
	for tag, p := range f.pages {
		base := tag * pageBytes
		for i, v := range p {
			if v != 0 {
				out[base+uint64(i*4)] = v
			}
		}
	}
	return out
}

// Equal reports whether two memories hold identical contents, returning the
// first differing address when not. Pages are compared directly; a page
// missing on one side must be all zero on the other.
func Equal(a, b *Flat) (bool, uint64) {
	if ok, addr := pagesSubset(a, b); !ok {
		return false, addr
	}
	return pagesSubset(b, a)
}

var zeroPage [pageWords]uint32

func pagesSubset(a, b *Flat) (bool, uint64) {
	for tag, pa := range a.pages {
		pb, ok := b.pages[tag]
		if !ok {
			pb = &zeroPage
		}
		if *pa == *pb {
			continue
		}
		for i := range pa {
			if pa[i] != pb[i] {
				return false, tag*pageBytes + uint64(i*4)
			}
		}
	}
	return true, 0
}

// AllocBase is the virtual address of the first allocation. Starting well
// above zero keeps address arithmetic honest (base 0 would hide bugs).
const AllocBase = 0x1000_0000

// AllocAlign is the allocation alignment. Like a real driver we hand out
// page-aligned regions, which is what gives inter-array offsets their
// power-of-two factors (§3.2.1 of the paper relies on this).
const AllocAlign = 4096

// Range is one driver allocation: the paper's memory allocation table entry
// (start, length, and the "accessed by an offloading candidate" bit that
// selects the offload-friendly mapping for the range).
type Range struct {
	Name string
	Base uint64
	Size uint64
	// CandidateTouched is set by the Memory Map Analyzer during the
	// learning phase when an offloading-candidate instance accesses the
	// range (§4.3 step 3).
	CandidateTouched bool
	// OffloadMapped is set when the delayed host→device copy placed this
	// range with the learned offload-friendly mapping (§4.3 step 5).
	OffloadMapped bool
}

// AllocTable is the GPU driver's record of allocations (§4.3 step 1).
type AllocTable struct {
	Ranges []Range
	next   uint64
}

// NewAllocTable returns an empty allocation table.
func NewAllocTable() *AllocTable {
	return &AllocTable{next: AllocBase}
}

// Alloc reserves size bytes and returns the base address.
func (t *AllocTable) Alloc(name string, size uint64) uint64 {
	base := (t.next + AllocAlign - 1) / AllocAlign * AllocAlign
	t.next = base + size
	t.Ranges = append(t.Ranges, Range{Name: name, Base: base, Size: size})
	return base
}

// Find returns the range containing addr, or nil.
func (t *AllocTable) Find(addr uint64) *Range {
	i := sort.Search(len(t.Ranges), func(i int) bool {
		return t.Ranges[i].Base+t.Ranges[i].Size > addr
	})
	if i < len(t.Ranges) && addr >= t.Ranges[i].Base {
		return &t.Ranges[i]
	}
	return nil
}

// Lookup returns the range named name.
func (t *AllocTable) Lookup(name string) (*Range, error) {
	for i := range t.Ranges {
		if t.Ranges[i].Name == name {
			return &t.Ranges[i], nil
		}
	}
	return nil, fmt.Errorf("mem: no allocation named %q", name)
}

// TouchedBytes sums the sizes of ranges flagged CandidateTouched — the
// volume the delayed host→device copy must move with the learned mapping.
func (t *AllocTable) TouchedBytes() uint64 {
	var n uint64
	for _, r := range t.Ranges {
		if r.CandidateTouched {
			n += r.Size
		}
	}
	return n
}

// StorageBits returns the hardware cost of one table entry in bits, per the
// paper's §6.6 estimate (48-bit VA start + 48-bit length + 1 flag bit).
func StorageBits() int { return 97 }
