package dram

import "testing"

// burstCycles measures the data-burst length the vault charges for a single
// request of the given size: a fresh vault issues at cycle 0 with a full
// activate (TRP+TRCD+TCL), so the completion cycle minus that latency is the
// burst. Zero bytes must complete at the activate latency exactly.
func burstCycles(t *testing.T, bw float64, bytes int) int64 {
	t.Helper()
	tm := DefaultTiming()
	tm.BytesPerCycle = bw
	v := NewVault(tm)
	done := int64(-1)
	v.Enqueue(&Request{Addr: 0, Bytes: bytes, Done: func(at int64) { done = at }})
	for now := int64(0); done < 0; now++ {
		if now > 100_000 {
			t.Fatalf("request (%d B at %g B/cy) never completed", bytes, bw)
		}
		v.Tick(now)
	}
	return done - (tm.TRP + tm.TRCD + tm.TCL)
}

// TestBurstRoundingIsTrueCeil: the burst charge is the mathematical ceiling
// of bytes/bandwidth. The retired int64(x+0.999) hack computed floor(x+0.999),
// which undercounts by a full cycle whenever the quotient's fractional part
// falls in (0, 0.001) — a burst shorter than serialization itself needs,
// violating the bandwidth bound. The table covers the divergent store sizes
// the coalescer emits (32+4k B at the Table 1 vault bandwidth, where the
// exact ceiling is computable in integers: 7.14 B/cy = 50/357 cy/B) plus a
// constructed undercount case and the zero-byte guard.
func TestBurstRoundingIsTrueCeil(t *testing.T) {
	// Divergent store sizes and full lines at the default 7.14 B/cy.
	// ceil(bytes/7.14) = ceil(bytes*50/357), exact in integer arithmetic;
	// every fractional part is a multiple of 1/357 ≈ 0.0028, so the float
	// division is well-conditioned for these sizes.
	for bytes := 32; bytes <= 128; bytes += 4 {
		want := (int64(bytes)*50 + 356) / 357
		if got := burstCycles(t, 7.14, bytes); got != want {
			t.Errorf("%d B at 7.14 B/cy: burst %d cycles, want %d", bytes, got, want)
		}
	}
	cases := []struct {
		name  string
		bw    float64
		bytes int
		want  int64
	}{
		// 2/1.999 = 1.0005...: true ceiling 2; the 0.999 hack said 1,
		// finishing the burst before the bus could have moved the bytes.
		{"hack-undercount", 1.999, 2, 2},
		{"exact-fit", 4.0, 128, 32},
		{"one-byte", 7.14, 1, 1},
		{"zero-bytes", 7.14, 0, 0},
	}
	for _, c := range cases {
		if got := burstCycles(t, c.bw, c.bytes); got != c.want {
			t.Errorf("%s: %d B at %g B/cy: burst %d cycles, want %d",
				c.name, c.bytes, c.bw, got, c.want)
		}
	}
}
