// Package dram models the 3D-stacked DRAM of one memory stack: per-vault
// FR-FCFS scheduling over banks with open-row tracking, DDR3-like timing,
// and a TSV data-bus bandwidth budget per vault (Table 1: 16 vaults/stack,
// 16 banks/vault, 64 TSVs/vault at 1.25 Gb/s ≈ 10 GB/s per vault).
//
// Requests queue per bank, in arrival order tagged with a global sequence
// number, so FR-FCFS arbitration is an O(banks) pick over bank heads (plus
// a short in-bank scan for the oldest open-row hit) instead of a scan of
// the whole queue — and NextEvent can report the exact first cycle any
// queued request can issue, letting the event-driven loop skip the cycles
// in between entirely.
package dram

import (
	"math"
	"math/bits"
)

// Timing collects the vault timing/geometry parameters, in core cycles.
type Timing struct {
	Banks         int
	RowBytes      int     // row-buffer size (4 KB, matching the energy model)
	TCL           int64   // column access (row hit) latency
	TRCD          int64   // activate-to-read
	TRP           int64   // precharge
	BytesPerCycle float64 // TSV data-bus bandwidth per vault
	QueueDepth    int
}

// DefaultTiming mirrors Table 1 / DDR3-1600 in 1.4 GHz core cycles.
func DefaultTiming() Timing {
	return Timing{
		Banks:         16,
		RowBytes:      4096,
		TCL:           20, // ~13.75 ns
		TRCD:          20,
		TRP:           19,
		BytesPerCycle: 7.14, // 10 GB/s at 1.4 GHz
		QueueDepth:    32,
	}
}

// Request is one line-granularity DRAM access.
type Request struct {
	Addr  uint64
	Bytes int
	Write bool
	// Done runs when the data burst completes.
	Done func(now int64)

	// bank, row, and seq are assigned at Enqueue: bank/row so arbitration
	// indexes directly instead of re-deriving them, seq (global arrival
	// order) so the per-bank queues can reconstruct FR-FCFS's "oldest
	// first" exactly as the former single arrival-ordered queue did.
	bank int
	row  uint64
	seq  uint64
}

type bank struct {
	openRow   uint64
	hasRow    bool
	busyUntil int64
	queue     []*Request // this bank's waiting requests, arrival order
}

type completion struct {
	at   int64
	done func(now int64)
}

// Vault is one vault: per-bank request queues, banks, and a TSV data bus.
type Vault struct {
	t         Timing
	banks     []bank
	occ       uint64 // bit b set iff banks[b].queue is non-empty
	queued    int    // total waiting requests across all bank queues
	seq       uint64
	busFreeAt int64
	drainGap  int64 // bus-drain backpressure point: no issue while busFreeAt > now + drainGap
	compl     []completion

	// Memoized NextEvent result. The horizon is an absolute cycle, so it
	// stays valid as time passes; it is invalidated whenever the inputs
	// change (enqueue, issue, completion pop).
	horizon      int64
	horizonValid bool

	// Stats.
	Activations uint64
	RowHits     uint64
	Reads       uint64
	Writes      uint64
	BytesMoved  uint64
}

// NewVault creates a vault with the given timing.
func NewVault(t Timing) *Vault {
	return &Vault{t: t, banks: make([]bank, t.Banks), drainGap: int64(4 * float64(t.TCL))}
}

// Full reports whether the request queue is at capacity.
func (v *Vault) Full() bool { return v.queued >= v.t.QueueDepth }

// QueueLen returns the number of waiting requests.
func (v *Vault) QueueLen() int { return v.queued }

// Enqueue adds a request; returns false if the queue is full.
func (v *Vault) Enqueue(r *Request) bool {
	if v.Full() {
		return false
	}
	r.row = r.Addr / uint64(v.t.RowBytes)
	r.bank = v.BankOf(r.Addr)
	r.seq = v.seq
	v.seq++
	v.banks[r.bank].queue = append(v.banks[r.bank].queue, r)
	v.occ |= 1 << r.bank
	v.queued++
	v.horizonValid = false
	return true
}

// Active reports whether the vault has pending work.
func (v *Vault) Active() bool { return v.queued > 0 || len(v.compl) > 0 }

// NextEvent returns the next cycle this vault does observable work: the
// earliest of the next burst completion and the first cycle issue
// arbitration can actually accept a queued request — the first cycle some
// queued bank is free AND the data bus has drained below the backpressure
// point. Any value at or before the caller's current cycle means "ready
// now"; -1 means idle. Between the returned cycle and now the vault is
// provably inert, so the event-driven loop may skip straight there.
func (v *Vault) NextEvent() int64 {
	if !v.horizonValid {
		v.horizon = v.computeHorizon()
		v.horizonValid = true
	}
	return v.horizon
}

func (v *Vault) computeHorizon() int64 {
	next := int64(-1)
	if len(v.compl) > 0 {
		next = v.compl[0].at
	}
	if v.queued > 0 {
		// Earliest possible issue: the first cycle c with some queued
		// bank's busyUntil <= c and busFreeAt <= c + drainGap. Bank state
		// and busFreeAt only change at issues and enqueues, both of which
		// invalidate this memo, so the bound is exact, not conservative.
		earliest := int64(math.MaxInt64)
		for m := v.occ; m != 0; m &= m - 1 {
			if b := &v.banks[bits.TrailingZeros64(m)]; b.busyUntil < earliest {
				earliest = b.busyUntil
			}
		}
		if drain := v.busFreeAt - v.drainGap; drain > earliest {
			earliest = drain
		}
		if next < 0 || earliest < next {
			next = earliest
		}
	}
	return next
}

// Snapshot is a point-in-time view of a vault's counters and occupancy,
// for the observability layer's periodic sampling.
type Snapshot struct {
	Activations uint64
	RowHits     uint64
	Reads       uint64
	Writes      uint64
	BytesMoved  uint64
	Queued      int // waiting requests
	InFlight    int // issued bursts not yet completed
}

// Snapshot captures the vault's current counters and occupancy.
func (v *Vault) Snapshot() Snapshot {
	return Snapshot{
		Activations: v.Activations,
		RowHits:     v.RowHits,
		Reads:       v.Reads,
		Writes:      v.Writes,
		BytesMoved:  v.BytesMoved,
		Queued:      v.queued,
		InFlight:    len(v.compl),
	}
}

// BankOf maps an address to its bank: an XOR fold of row-and-above address
// bits. Using only bits at/above the row keeps every column of a row in one
// bank (so row hits work), while the fold prevents any single external bit
// choice — in particular the consecutive-bit stack mappings, which pin some
// low line bits per stack — from collapsing bank-level parallelism.
func (v *Vault) BankOf(addr uint64) int {
	row := addr / uint64(v.t.RowBytes)
	return int((row ^ (row >> 4) ^ (row >> 8)) % uint64(len(v.banks)))
}

// Tick issues at most one request per cycle (FR-FCFS: oldest row-hit to a
// free bank first, else oldest to a free bank) and fires completions.
// "Oldest" is global arrival order: within a bank the queue is already
// arrival-ordered, and the seq tags order candidates across banks, so the
// pick visits each bank once instead of scanning one global queue twice.
func (v *Vault) Tick(now int64) {
	for len(v.compl) > 0 && v.compl[0].at <= now {
		c := v.compl[0]
		v.compl = v.compl[1:]
		v.horizonValid = false
		if c.done != nil {
			c.done(now)
		}
	}
	if v.queued == 0 || v.busFreeAt > now+v.drainGap {
		// Data bus hopelessly backed up: let it drain.
		return
	}
	var pick *Request
	pickBank, pickIdx := -1, -1
	for m := v.occ; m != 0; m &= m - 1 { // first-ready row hit: oldest open-row hit over free banks
		i := bits.TrailingZeros64(m)
		b := &v.banks[i]
		if b.busyUntil > now || !b.hasRow {
			continue
		}
		for qi, r := range b.queue {
			if r.row == b.openRow {
				if pick == nil || r.seq < pick.seq {
					pick, pickBank, pickIdx = r, i, qi
				}
				break
			}
		}
	}
	if pick == nil {
		for m := v.occ; m != 0; m &= m - 1 { // oldest to a free bank: min seq over bank heads
			i := bits.TrailingZeros64(m)
			b := &v.banks[i]
			if b.busyUntil > now {
				continue
			}
			if r := b.queue[0]; pick == nil || r.seq < pick.seq {
				pick, pickBank, pickIdx = r, i, 0
			}
		}
	}
	if pick == nil {
		return
	}
	b := &v.banks[pickBank]
	b.queue = append(b.queue[:pickIdx], b.queue[pickIdx+1:]...)
	if len(b.queue) == 0 {
		v.occ &^= 1 << pickBank
	}
	v.queued--
	v.horizonValid = false
	r := pick
	var lat int64
	if b.hasRow && b.openRow == r.row {
		lat = v.t.TCL
		v.RowHits++
	} else {
		lat = v.t.TRP + v.t.TRCD + v.t.TCL
		v.Activations++
		b.openRow, b.hasRow = r.row, true
	}
	var burst int64
	if r.Bytes > 0 {
		burst = int64(math.Ceil(float64(r.Bytes) / v.t.BytesPerCycle))
	}
	start := now + lat
	if v.busFreeAt > start {
		start = v.busFreeAt
	}
	end := start + burst
	v.busFreeAt = end
	b.busyUntil = end
	if r.Write {
		v.Writes++
	} else {
		v.Reads++
	}
	v.BytesMoved += uint64(r.Bytes)
	v.compl = append(v.compl, completion{at: end, done: r.Done})
	// Keep completions sorted (insertion is near-append: ends increase
	// except when bank latencies differ).
	for i := len(v.compl) - 1; i > 0 && v.compl[i].at < v.compl[i-1].at; i-- {
		v.compl[i], v.compl[i-1] = v.compl[i-1], v.compl[i]
	}
}
