// Package dram models the 3D-stacked DRAM of one memory stack: per-vault
// FR-FCFS scheduling over banks with open-row tracking, DDR3-like timing,
// and a TSV data-bus bandwidth budget per vault (Table 1: 16 vaults/stack,
// 16 banks/vault, 64 TSVs/vault at 1.25 Gb/s ≈ 10 GB/s per vault).
package dram

// Timing collects the vault timing/geometry parameters, in core cycles.
type Timing struct {
	Banks         int
	RowBytes      int     // row-buffer size (4 KB, matching the energy model)
	TCL           int64   // column access (row hit) latency
	TRCD          int64   // activate-to-read
	TRP           int64   // precharge
	BytesPerCycle float64 // TSV data-bus bandwidth per vault
	QueueDepth    int
}

// DefaultTiming mirrors Table 1 / DDR3-1600 in 1.4 GHz core cycles.
func DefaultTiming() Timing {
	return Timing{
		Banks:         16,
		RowBytes:      4096,
		TCL:           20, // ~13.75 ns
		TRCD:          20,
		TRP:           19,
		BytesPerCycle: 7.14, // 10 GB/s at 1.4 GHz
		QueueDepth:    32,
	}
}

// Request is one line-granularity DRAM access.
type Request struct {
	Addr  uint64
	Bytes int
	Write bool
	// Done runs when the data burst completes.
	Done func(now int64)

	// bank and row are precomputed at Enqueue so the per-cycle FR-FCFS
	// scans index directly instead of re-deriving them per element.
	bank int
	row  uint64
}

type bank struct {
	openRow   uint64
	hasRow    bool
	busyUntil int64
}

type completion struct {
	at   int64
	done func(now int64)
}

// Vault is one vault: a request queue, banks, and a TSV data bus.
type Vault struct {
	t         Timing
	banks     []bank
	queue     []*Request
	busFreeAt int64
	compl     []completion

	// Stats.
	Activations uint64
	RowHits     uint64
	Reads       uint64
	Writes      uint64
	BytesMoved  uint64
}

// NewVault creates a vault with the given timing.
func NewVault(t Timing) *Vault {
	return &Vault{t: t, banks: make([]bank, t.Banks)}
}

// Full reports whether the request queue is at capacity.
func (v *Vault) Full() bool { return len(v.queue) >= v.t.QueueDepth }

// QueueLen returns the number of waiting requests.
func (v *Vault) QueueLen() int { return len(v.queue) }

// Enqueue adds a request; returns false if the queue is full.
func (v *Vault) Enqueue(r *Request) bool {
	if v.Full() {
		return false
	}
	r.row = r.Addr / uint64(v.t.RowBytes)
	r.bank = v.BankOf(r.Addr)
	v.queue = append(v.queue, r)
	return true
}

// Active reports whether the vault has pending work.
func (v *Vault) Active() bool { return len(v.queue) > 0 || len(v.compl) > 0 }

// NextEvent returns the next cycle this vault needs to tick: 0 while
// requests are queued (issue arbitration runs every cycle — bank and bus
// readiness make waiting states conservative), the earliest completion
// cycle while bursts are draining, and -1 when idle. The completion list
// is kept sorted by Tick.
func (v *Vault) NextEvent() int64 {
	if len(v.queue) > 0 {
		return 0
	}
	if len(v.compl) > 0 {
		return v.compl[0].at
	}
	return -1
}

// Snapshot is a point-in-time view of a vault's counters and occupancy,
// for the observability layer's periodic sampling.
type Snapshot struct {
	Activations uint64
	RowHits     uint64
	Reads       uint64
	Writes      uint64
	BytesMoved  uint64
	Queued      int // waiting requests
	InFlight    int // issued bursts not yet completed
}

// Snapshot captures the vault's current counters and occupancy.
func (v *Vault) Snapshot() Snapshot {
	return Snapshot{
		Activations: v.Activations,
		RowHits:     v.RowHits,
		Reads:       v.Reads,
		Writes:      v.Writes,
		BytesMoved:  v.BytesMoved,
		Queued:      len(v.queue),
		InFlight:    len(v.compl),
	}
}

// BankOf maps an address to its bank: an XOR fold of row-and-above address
// bits. Using only bits at/above the row keeps every column of a row in one
// bank (so row hits work), while the fold prevents any single external bit
// choice — in particular the consecutive-bit stack mappings, which pin some
// low line bits per stack — from collapsing bank-level parallelism.
func (v *Vault) BankOf(addr uint64) int {
	row := addr / uint64(v.t.RowBytes)
	return int((row ^ (row >> 4) ^ (row >> 8)) % uint64(len(v.banks)))
}

// Tick issues at most one request per cycle (FR-FCFS: oldest row-hit to a
// free bank first, else oldest to a free bank) and fires completions.
func (v *Vault) Tick(now int64) {
	for len(v.compl) > 0 && v.compl[0].at <= now {
		c := v.compl[0]
		v.compl = v.compl[1:]
		if c.done != nil {
			c.done(now)
		}
	}
	if len(v.queue) == 0 || v.busFreeAt > now+int64(4*float64(v.t.TCL)) {
		// Data bus hopelessly backed up: let it drain.
		return
	}
	pick := -1
	for i, r := range v.queue { // first-ready row hit
		b := &v.banks[r.bank]
		if b.busyUntil <= now && b.hasRow && b.openRow == r.row {
			pick = i
			break
		}
	}
	if pick < 0 {
		for i, r := range v.queue { // oldest to a free bank
			if v.banks[r.bank].busyUntil <= now {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return
	}
	r := v.queue[pick]
	v.queue = append(v.queue[:pick], v.queue[pick+1:]...)
	b := &v.banks[r.bank]
	row := r.row
	var lat int64
	if b.hasRow && b.openRow == row {
		lat = v.t.TCL
		v.RowHits++
	} else {
		lat = v.t.TRP + v.t.TRCD + v.t.TCL
		v.Activations++
		b.openRow, b.hasRow = row, true
	}
	burst := int64(float64(r.Bytes)/v.t.BytesPerCycle + 0.999)
	start := now + lat
	if v.busFreeAt > start {
		start = v.busFreeAt
	}
	end := start + burst
	v.busFreeAt = end
	b.busyUntil = end
	if r.Write {
		v.Writes++
	} else {
		v.Reads++
	}
	v.BytesMoved += uint64(r.Bytes)
	v.compl = append(v.compl, completion{at: end, done: r.Done})
	// Keep completions sorted (insertion is near-append: ends increase
	// except when bank latencies differ).
	for i := len(v.compl) - 1; i > 0 && v.compl[i].at < v.compl[i-1].at; i-- {
		v.compl[i], v.compl[i-1] = v.compl[i-1], v.compl[i]
	}
}
