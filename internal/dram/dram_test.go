package dram

import (
	"math/rand"
	"testing"
)

func run(v *Vault, until int64) {
	for now := int64(0); now < until; now++ {
		v.Tick(now)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	tm := DefaultTiming()
	v := NewVault(tm)
	var firstDone, secondDone int64
	v.Enqueue(&Request{Addr: 0x1000, Bytes: 128, Done: func(now int64) { firstDone = now }})
	run(v, 200)
	v2 := NewVault(tm)
	v2.Enqueue(&Request{Addr: 0x1000, Bytes: 128, Done: func(int64) {}})
	run(v2, 200)
	// Same bank (16 lines apart) and same 4 KB row: hit.
	v2.Enqueue(&Request{Addr: 0x1800, Bytes: 128, Done: func(now int64) { secondDone = now }})
	for now := int64(200); now < 400; now++ {
		v2.Tick(now)
	}
	missLat := firstDone
	hitLat := secondDone - 200
	if hitLat >= missLat {
		t.Errorf("row hit latency %d should beat miss latency %d", hitLat, missLat)
	}
	if v2.RowHits != 1 || v2.Activations != 1 {
		t.Errorf("hits/acts = %d/%d, want 1/1", v2.RowHits, v2.Activations)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	tm := DefaultTiming()
	v := NewVault(tm)
	// Open row around 0x0 by serving a first request.
	done := make([]int64, 3)
	v.Enqueue(&Request{Addr: 0x0, Bytes: 128, Done: func(now int64) { done[0] = now }})
	run(v, 100)
	// Now queue: a row-miss (different row, same bank) then a row-hit;
	// the hit must complete first. Find a same-bank different-row address
	// under the folded bank mapping.
	bank0 := v.BankOf(0x0)
	missAddr := uint64(0)
	for row := uint64(1); row < 4096; row++ {
		a := row * uint64(tm.RowBytes)
		if v.BankOf(a) == bank0 {
			missAddr = a
			break
		}
	}
	if missAddr == 0 {
		t.Fatal("no same-bank row found")
	}
	v.Enqueue(&Request{Addr: missAddr, Bytes: 128, Write: true, Done: func(now int64) { done[1] = now }})
	hitAddr := uint64(0x80) // same row as the already-open row 0
	if v.BankOf(hitAddr) != bank0 {
		t.Fatal("hit address maps to wrong bank")
	}
	v.Enqueue(&Request{Addr: hitAddr, Bytes: 128, Done: func(now int64) { done[2] = now }})
	for now := int64(100); now < 600; now++ {
		v.Tick(now)
	}
	if done[1] == 0 || done[2] == 0 {
		t.Fatalf("requests not served: %v", done)
	}
	if done[2] >= done[1] {
		t.Errorf("row-hit finished at %d, after row-miss at %d", done[2], done[1])
	}
	if v.Writes != 1 || v.Reads != 2 {
		t.Errorf("reads/writes = %d/%d", v.Reads, v.Writes)
	}
}

func TestQueueBound(t *testing.T) {
	v := NewVault(DefaultTiming())
	n := 0
	for v.Enqueue(&Request{Addr: uint64(n) * 128, Bytes: 128}) {
		n++
		if n > 1000 {
			t.Fatal("queue never filled")
		}
	}
	if n != DefaultTiming().QueueDepth {
		t.Errorf("queue depth = %d, want %d", n, DefaultTiming().QueueDepth)
	}
	if !v.Full() {
		t.Error("vault should be full")
	}
}

func TestBandwidthBound(t *testing.T) {
	tm := DefaultTiming()
	v := NewVault(tm)
	served := 0
	var last int64
	r := rand.New(rand.NewSource(1))
	horizon := int64(20000)
	for now := int64(0); now < horizon; now++ {
		for !v.Full() {
			v.Enqueue(&Request{Addr: uint64(r.Intn(1<<26)) &^ 127, Bytes: 128,
				Done: func(at int64) { served++; last = at }})
		}
		v.Tick(now)
	}
	gbPerCycle := float64(served*128) / float64(last)
	// Must not exceed the TSV budget, and should get reasonably close
	// under full load with row locality absent (random addresses).
	if gbPerCycle > tm.BytesPerCycle*1.02 {
		t.Errorf("sustained %v B/cy exceeds TSV budget %v", gbPerCycle, tm.BytesPerCycle)
	}
	if gbPerCycle < tm.BytesPerCycle*0.5 {
		t.Errorf("sustained %v B/cy is unreasonably low (budget %v)", gbPerCycle, tm.BytesPerCycle)
	}
	if v.BytesMoved != uint64(v.Reads+v.Writes)*128 {
		t.Errorf("byte accounting mismatch")
	}
}

func TestCompletionOrderMonotonic(t *testing.T) {
	v := NewVault(DefaultTiming())
	var times []int64
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 24; i++ {
		v.Enqueue(&Request{Addr: uint64(r.Intn(1<<24)) &^ 127, Bytes: 128,
			Done: func(at int64) { times = append(times, at) }})
	}
	run(v, 5000)
	if len(times) != 24 {
		t.Fatalf("served %d, want 24", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("completions ran backwards: %v", times)
		}
	}
}
