package dram

import (
	"math/rand"
	"testing"
)

// TestEveryRequestCompletesExactlyOnce: under random load, each enqueued
// request's Done fires exactly once, and byte accounting matches.
func TestEveryRequestCompletesExactlyOnce(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 100))
		v := NewVault(DefaultTiming())
		fired := map[int]int{}
		total := 600
		issued := 0
		var bytes uint64
		for now := int64(0); issued < total || v.Active(); now++ {
			if issued < total && !v.Full() && rng.Intn(3) > 0 {
				id := issued
				sz := 128
				if rng.Intn(4) == 0 {
					sz = 32 + 4*rng.Intn(24)
				}
				bytes += uint64(sz)
				v.Enqueue(&Request{
					Addr:  uint64(rng.Intn(1<<26)) &^ 127,
					Bytes: sz,
					Write: rng.Intn(2) == 0,
					Done:  func(int64) { fired[id]++ },
				})
				issued++
			}
			v.Tick(now)
			if now > 10_000_000 {
				t.Fatal("vault did not drain")
			}
		}
		for id, n := range fired {
			if n != 1 {
				t.Fatalf("trial %d: request %d completed %d times", trial, id, n)
			}
		}
		if len(fired) != total {
			t.Fatalf("trial %d: %d of %d requests completed", trial, len(fired), total)
		}
		if v.BytesMoved != bytes {
			t.Fatalf("trial %d: moved %d bytes, want %d", trial, v.BytesMoved, bytes)
		}
		if v.Reads+v.Writes != uint64(total) {
			t.Fatalf("trial %d: reads+writes = %d", trial, v.Reads+v.Writes)
		}
	}
}

// TestRowHitsPlusActivationsEqualRequests: every serviced request either
// hits the open row or activates a new one.
func TestRowHitsPlusActivationsEqualRequests(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := NewVault(DefaultTiming())
	total := 500
	issued := 0
	for now := int64(0); issued < total || v.Active(); now++ {
		if issued < total && !v.Full() {
			// Mixed locality: half sequential (row friendly), half random.
			var addr uint64
			if rng.Intn(2) == 0 {
				addr = uint64(issued) * 128 % (1 << 18)
			} else {
				addr = uint64(rng.Intn(1<<26)) &^ 127
			}
			v.Enqueue(&Request{Addr: addr, Bytes: 128})
			issued++
		}
		v.Tick(now)
	}
	if v.RowHits+v.Activations != uint64(total) {
		t.Fatalf("rowHits %d + activations %d != %d requests", v.RowHits, v.Activations, total)
	}
	if v.RowHits == 0 {
		t.Error("sequential stream should produce some row hits")
	}
}

// TestBankFoldPreservesRowResidency: all lines of one row map to one bank,
// and constraining any two address bits (a consecutive-bit stack mapping)
// still leaves all banks reachable.
func TestBankFoldPreservesRowResidency(t *testing.T) {
	v := NewVault(DefaultTiming())
	for row := uint64(0); row < 256; row++ {
		base := row * 4096
		b0 := v.BankOf(base)
		for off := uint64(0); off < 4096; off += 128 {
			if v.BankOf(base+off) != b0 {
				t.Fatalf("row %d spans banks", row)
			}
		}
	}
	for bit := 7; bit <= 16; bit++ {
		for fixed := uint64(0); fixed < 4; fixed++ {
			seen := map[int]bool{}
			for i := uint64(0); i < 1<<14; i++ {
				addr := i * 4096
				// Constrain the two mapping bits to `fixed`.
				addr = addr&^(3<<uint(bit)) | fixed<<uint(bit)
				seen[v.BankOf(addr)] = true
			}
			if len(seen) < DefaultTiming().Banks/2 {
				t.Fatalf("bit %d fixed=%d reaches only %d banks", bit, fixed, len(seen))
			}
		}
	}
}

// TestVaultEventJumpMatchesPerCycle: driving a vault only at the cycles its
// own NextEvent() horizon names (plus external arrival cycles) must be
// indistinguishable from ticking it every cycle — identical per-request
// completion times and identical counters. This is the admissibility
// property the event-driven loop rests on: between `now` and the horizon
// the vault is provably inert, so a reported horizon that is ever too late
// (skipping a cycle where the per-cycle vault issues or completes) shows up
// here as a completion-time or counter divergence.
func TestVaultEventJumpMatchesPerCycle(t *testing.T) {
	type arrival struct {
		at    int64
		addr  uint64
		bytes int
		write bool
	}
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 900))
		var sched []arrival
		at := int64(0)
		for i := 0; i < 300; i++ {
			at += int64(rng.Intn(40)) // bursty: many same-cycle arrivals
			a := arrival{at: at, addr: uint64(rng.Intn(1 << 22)) &^ 127, bytes: 128}
			if rng.Intn(3) == 0 {
				a.addr = uint64(i) * 128 % (1 << 16) // row-friendly
			}
			if rng.Intn(4) == 0 {
				a.bytes = 32 + 4*rng.Intn(24)
				a.write = true
			}
			sched = append(sched, a)
		}

		run := func(jump bool) ([]int64, Snapshot, uint64, uint64) {
			v := NewVault(DefaultTiming())
			doneAt := make([]int64, len(sched))
			for i := range doneAt {
				doneAt[i] = -1
			}
			i := 0
			now := int64(0)
			for i < len(sched) || v.Active() {
				blocked := false
				for i < len(sched) && sched[i].at <= now {
					id := i
					ok := v.Enqueue(&Request{
						Addr: sched[i].addr, Bytes: sched[i].bytes, Write: sched[i].write,
						Done: func(c int64) { doneAt[id] = c },
					})
					if !ok {
						blocked = true // queue full: retry next cycle, like wevVaultTry
						break
					}
					i++
				}
				if !jump {
					v.Tick(now)
					now++
					continue
				}
				if h := v.NextEvent(); h >= 0 && h <= now {
					v.Tick(now)
				}
				// Next cycle anything can happen: the vault's own horizon,
				// the next scheduled arrival, or an immediate retry while the
				// queue is full.
				next := int64(1 << 62)
				if blocked {
					next = now + 1
				}
				if i < len(sched) && sched[i].at < next {
					next = sched[i].at
				}
				if h := v.NextEvent(); h >= 0 {
					if h <= now {
						h = now + 1 // ready: vault issues at most one request per cycle
					}
					if h < next {
						next = h
					}
				}
				if next <= now {
					next = now + 1
				}
				if next == 1<<62 {
					break
				}
				now = next
				if now > 10_000_000 {
					t.Fatal("event run did not drain")
				}
			}
			return doneAt, v.Snapshot(), v.RowHits, v.Activations
		}

		ref, refSnap, refHits, refActs := run(false)
		got, gotSnap, gotHits, gotActs := run(true)
		for id := range ref {
			if ref[id] != got[id] {
				t.Fatalf("trial %d: request %d completed at %d per-cycle but %d event-jump",
					trial, id, ref[id], got[id])
			}
		}
		if refSnap != gotSnap || refHits != gotHits || refActs != gotActs {
			t.Fatalf("trial %d: counters diverged: per-cycle %+v (hits %d acts %d), event %+v (hits %d acts %d)",
				trial, refSnap, refHits, refActs, gotSnap, gotHits, gotActs)
		}
	}
}
