package energy

import (
	"testing"

	"repro/internal/sim"
)

func baselineStats() *sim.Stats {
	// A representative baseline run: ~200K cycles, ~40 MB of traffic.
	return &sim.Stats{
		Cycles:          200_000,
		ThreadInstrs:    30_000_000,
		GPURXBytes:      36 << 20,
		GPUTXBytes:      4 << 20,
		DRAMActivations: 120_000,
		InternalBytes:   40 << 20,
	}
}

func TestBreakdownSharesMatchPaperBallpark(t *testing.T) {
	st := baselineStats()
	b := Compute(st, sim.BaselineConfig(), DefaultParams())
	tot := b.Total()
	if tot <= 0 {
		t.Fatal("non-positive energy")
	}
	smShare := b.SMs / tot
	linkShare := b.Links / tot
	dramShare := b.DRAM / tot
	t.Logf("shares: SM %.2f link %.2f dram %.2f (total %.2f mJ)", smShare, linkShare, dramShare, tot*1e3)
	// Paper baseline: SMs ~77%, links ~7%, DRAM the rest. Allow slack —
	// these are calibration targets, not exact constants.
	if smShare < 0.55 || smShare > 0.9 {
		t.Errorf("SM share %.2f far from paper's ~0.77", smShare)
	}
	if linkShare < 0.02 || linkShare > 0.2 {
		t.Errorf("link share %.2f far from paper's ~0.07", linkShare)
	}
	if dramShare < 0.05 || dramShare > 0.35 {
		t.Errorf("DRAM share %.2f far from paper's ~0.16", dramShare)
	}
}

func TestEnergyMonotonicInTraffic(t *testing.T) {
	p := DefaultParams()
	cfg := sim.BaselineConfig()
	lo := baselineStats()
	hi := baselineStats()
	hi.GPURXBytes *= 2
	hi.InternalBytes *= 2
	hi.DRAMActivations *= 2
	if Compute(hi, cfg, p).Total() <= Compute(lo, cfg, p).Total() {
		t.Error("more traffic must cost more energy")
	}
}

func TestLeakageScalesWithTime(t *testing.T) {
	p := DefaultParams()
	cfg := sim.BaselineConfig()
	fast := baselineStats()
	slow := baselineStats()
	slow.Cycles *= 3
	f, s := Compute(fast, cfg, p), Compute(slow, cfg, p)
	if s.SMs <= f.SMs {
		t.Error("longer runs must burn more static SM energy")
	}
}

func TestIdleLinkEnergyNonNegative(t *testing.T) {
	st := baselineStats()
	// Pathological: more active bytes than capacity must not go negative.
	st.GPURXBytes = 1 << 40
	b := Compute(st, sim.BaselineConfig(), DefaultParams())
	if b.Links <= 0 {
		t.Errorf("link energy %v must stay positive", b.Links)
	}
}
