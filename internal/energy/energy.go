// Package energy implements the paper's energy model (§5.1): GPUWattch-like
// SM energy (leakage + per-instruction dynamic), off-chip link energy at
// 2 pJ/bit transferred and 1.5 pJ/bit/cycle idle [27], and 3D-DRAM energy
// from the Rambus model — 11.8 nJ per 4 KB row activation and 4 pJ/bit for
// row-buffer reads [57, 29, 8].
package energy

import "repro/internal/sim"

// Params holds the model constants. Defaults carry the paper's published
// numbers; the SM constants are calibrated so the baseline's energy split
// lands near the paper's (≈77% SMs / 7% links / 16% DRAM, Fig. 10).
type Params struct {
	ClockGHz float64

	// SM model.
	SMLeakageWatts    float64 // static power per SM
	SMDynamicNJ       float64 // per thread-instruction
	SharedOverheadPct float64 // interconnect/L2 folded into SM share

	// Off-chip links [27].
	LinkPJPerBit     float64
	LinkIdlePJPerBit float64 // per bit-lane per idle cycle

	// 3D-stacked DRAM [57, 29, 8].
	RowActivationNJ float64 // per 4 KB row activation
	DRAMPJPerBit    float64 // row-buffer read/write energy
}

// DefaultParams returns the paper-derived constants.
func DefaultParams() Params {
	return Params{
		ClockGHz:         1.4,
		SMLeakageWatts:   0.60,
		SMDynamicNJ:      0.20,
		LinkPJPerBit:     2.0,
		LinkIdlePJPerBit: 1.5,
		RowActivationNJ:  11.8,
		DRAMPJPerBit:     4.0,
	}
}

// Breakdown is the Fig. 10 decomposition, in joules.
type Breakdown struct {
	SMs   float64
	Links float64
	DRAM  float64
}

// Total sums the components.
func (b Breakdown) Total() float64 { return b.SMs + b.Links + b.DRAM }

// Compute derives the energy breakdown from run statistics.
func Compute(st *sim.Stats, cfg sim.Config, p Params) Breakdown {
	seconds := float64(st.Cycles) / (p.ClockGHz * 1e9)
	nSMs := float64(cfg.MainSMs + cfg.Stacks*cfg.StackSMs)

	var b Breakdown
	// SMs: leakage over the whole run plus dynamic per thread-instruction.
	b.SMs = p.SMLeakageWatts*nSMs*seconds +
		p.SMDynamicNJ*1e-9*float64(st.ThreadInstrs)

	// Links: active bits at 2 pJ/bit; idle lanes at 1.5 pJ/bit/cycle.
	// Widths in bits/cycle equal bytes-per-cycle x 8.
	activeBits := float64(st.OffChipBytes()+st.PCIeBytes) * 8
	b.Links = p.LinkPJPerBit * 1e-12 * activeBits
	gpuLinkBits := cfg.GPUStackBW * 8
	crossLinkBits := cfg.CrossStackBW * 8
	totalWidth := float64(2*cfg.Stacks)*gpuLinkBits +
		float64(cfg.Stacks*(cfg.Stacks-1))*crossLinkBits
	// Idle fraction approximated from aggregate utilization.
	capacity := totalWidth * float64(st.Cycles)
	idleBits := capacity - activeBits
	if idleBits < 0 {
		idleBits = 0
	}
	b.Links += p.LinkIdlePJPerBit * 1e-12 * idleBits

	// DRAM: activations plus row-buffer transfer energy on moved bytes.
	b.DRAM = p.RowActivationNJ*1e-9*float64(st.DRAMActivations) +
		p.DRAMPJPerBit*1e-12*float64(st.InternalBytes)*8

	return b
}
