package workloads

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
)

// RAY is ray tracing (GPGPU-Sim's benchmark): one thread per pixel tests a
// sphere list with divergent hit handling, then shades from a scattered
// texture — mixed cache-friendly loads, control divergence inside the
// candidate loop, and an irregular final gather.
func RAY() Workload {
	return Workload{
		Name: "RAY Tracing",
		Abbr: "RAY",
		Desc: "sphere-list intersection with divergent hits + texture gather",
		Build: func(scale float64) (*Instance, error) {
			pixels := scaled(49152, scale, 256, 128)
			spheres := 48
			texWords := 1 << 16
			return buildRAY(pixels, spheres, texWords)
		},
	}
}

func rayKernel(texMask int64) *isa.Kernel {
	b := isa.NewBuilder("ray", 5) // r0=spheres, r1=tex, r2=img, r3=S, r4=P
	b.Mov(5, isa.Sp(isa.SpGtid))
	// Ray direction from pixel id.
	b.CvtIF(6, isa.R(5)) // fx
	b.MovI(7, 0)         // s
	b.MovF(8, 3.0e38)    // closest t
	b.MovI(9, 0)         // hit id
	b.Label("sphere")
	// Load sphere record (x, y, z, radius) — 16 B stride, cache friendly.
	b.Shl(10, isa.R(7), isa.Imm(4))
	b.Add(10, isa.R(0), isa.R(10))
	b.Ld(11, isa.R(10), 0)  // x
	b.Ld(12, isa.R(10), 4)  // y
	b.Ld(13, isa.R(10), 8)  // z
	b.Ld(14, isa.R(10), 12) // r
	// Fake intersection math: t = |x - fx*0.001| * y + z.
	b.FMA(15, isa.R(6), isa.ImmF(-0.001), isa.R(11))
	b.FMul(15, isa.R(15), isa.R(15)) // squared (positive)
	b.FMA(15, isa.R(15), isa.R(12), isa.R(13))
	// Divergent hit test: if t < r and t < closest -> update.
	b.FSetp(16, isa.CmpLT, isa.R(15), isa.R(14))
	b.BraIfNot(isa.R(16), "miss")
	b.FSetp(17, isa.CmpLT, isa.R(15), isa.R(8))
	b.Selp(8, isa.R(15), isa.R(8), isa.R(17))
	b.Selp(9, isa.R(7), isa.R(9), isa.R(17))
	b.Label("miss")
	b.Add(7, isa.R(7), isa.Imm(1))
	b.Setp(18, isa.CmpLT, isa.R(7), isa.R(3))
	b.BraIf(isa.R(18), "sphere")
	// Shade: scattered texture fetch indexed by a hash of (pixel, hit).
	b.Mul(19, isa.R(5), isa.Imm(2654435761))
	b.Add(19, isa.R(19), isa.R(9))
	b.And(19, isa.R(19), isa.Imm(texMask))
	b.Shl(19, isa.R(19), isa.Imm(2))
	b.Add(19, isa.R(1), isa.R(19))
	b.Ld(20, isa.R(19), 0)
	b.Shl(21, isa.R(5), isa.Imm(2))
	b.Add(21, isa.R(2), isa.R(21))
	b.St(isa.R(21), 0, isa.R(20))
	b.Exit()
	return b.MustBuild()
}

func buildRAY(pixels, spheres, texWords int) (*Instance, error) {
	texMask := int64(texWords - 1)
	k := rayKernel(texMask)
	m := mem.NewFlat()
	at := mem.NewAllocTable()
	sph := at.Alloc("spheres", uint64(16*spheres))
	tex := at.Alloc("tex", uint64(4*texWords))
	img := at.Alloc("img", uint64(4*pixels))
	r := newRNG(99)
	for s := 0; s < spheres; s++ {
		storeF32(m, sph+uint64(16*s+0), r.f32()*20)
		storeF32(m, sph+uint64(16*s+4), r.f32())
		storeF32(m, sph+uint64(16*s+8), r.f32()*5)
		storeF32(m, sph+uint64(16*s+12), 2+r.f32()*8)
	}
	for i := 0; i < texWords; i++ {
		m.Store4(tex+uint64(4*i), uint32(r.next()))
	}
	inst := &Instance{
		Mem: m, Alloc: at,
		Launches: []exec.Launch{{
			Kernel: k, Grid: pixels / 128, Block: 128,
			Params: []uint64{sph, tex, img, uint64(spheres), uint64(pixels)},
		}},
	}
	inst.Check = func(fm *mem.Flat) error {
		for _, t := range []int{0, pixels - 1} {
			closest, hit := float32(3.0e38), 0
			fx := float32(t)
			for s := 0; s < spheres; s++ {
				x := loadF32(fm, sph+uint64(16*s+0))
				y := loadF32(fm, sph+uint64(16*s+4))
				z := loadF32(fm, sph+uint64(16*s+8))
				rad := loadF32(fm, sph+uint64(16*s+12))
				tt := fx*-0.001 + x
				tt = tt * tt
				tt = tt*y + z
				if tt < rad && tt < closest {
					closest, hit = tt, s
				}
			}
			idx := (uint32(t)*2654435761 + uint32(hit)) & uint32(texMask)
			want := fm.Load4(tex + uint64(4*idx))
			if got := fm.Load4(img + uint64(4*t)); got != want {
				return fmt.Errorf("RAY: img[%d] = %#x, want %#x", t, got, want)
			}
		}
		return nil
	}
	return inst, nil
}
