package workloads

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
)

// FWT is Fast Walsh Transform (CUDA SDK): one launch per butterfly stage;
// each thread processes a run of pairs whose partner sits at a power-of-two
// byte offset — the canonical fixed-offset-with-power-of-two-factor access
// pattern that TOM's consecutive-bit mapping captures perfectly.
func FWT() Workload {
	return Workload{
		Name: "Fast Walsh Transform",
		Abbr: "FWT",
		Desc: "butterfly stages with power-of-two partner offsets",
		Build: func(scale float64) (*Instance, error) {
			n := scaled(1<<22, scale, 1<<14, 1<<14)
			// Round to a power of two.
			p := 1
			for p*2 <= n {
				p *= 2
			}
			return buildFWT(p, 6)
		},
	}
}

// fwtKernel processes `pairsPerThread` butterflies at the given stride:
// for q: p = t*ppt + q; i = 2*(p &^ (stride-1)) + (p & (stride-1));
// j = i + stride; (a[i], a[j]) = (a[i]+a[j], a[i]-a[j]).
func fwtKernel() *isa.Kernel {
	b := isa.NewBuilder("fwt", 4) // r0=a, r1=stride, r2=ppt, r3=T
	b.Mov(4, isa.Sp(isa.SpGtid))
	b.Mov(5, isa.R(4))             // p = t (strided by T per trip: coalesced)
	b.MovI(6, 0)                   // q
	b.Sub(7, isa.R(1), isa.Imm(1)) // mask = stride-1
	b.Shl(8, isa.R(1), isa.Imm(2)) // byte stride
	b.Label("top")
	b.And(9, isa.R(5), isa.R(7))  // low = p & mask
	b.Sub(10, isa.R(5), isa.R(9)) // p &^ mask
	b.Shl(10, isa.R(10), isa.Imm(1))
	b.Add(10, isa.R(10), isa.R(9)) // i
	b.Shl(10, isa.R(10), isa.Imm(2))
	b.Add(10, isa.R(0), isa.R(10)) // &a[i]
	b.Add(11, isa.R(10), isa.R(8)) // &a[j]
	b.Ld(12, isa.R(10), 0)
	b.Ld(13, isa.R(11), 0)
	b.FAdd(14, isa.R(12), isa.R(13))
	b.FSub(15, isa.R(12), isa.R(13))
	b.St(isa.R(10), 0, isa.R(14))
	b.St(isa.R(11), 0, isa.R(15))
	b.Add(5, isa.R(5), isa.R(3)) // p += T
	b.Add(6, isa.R(6), isa.Imm(1))
	b.Setp(16, isa.CmpLT, isa.R(6), isa.R(2))
	b.BraIf(isa.R(16), "top")
	b.Exit()
	return b.MustBuild()
}

func buildFWT(n, stages int) (*Instance, error) {
	k := fwtKernel()
	m := mem.NewFlat()
	at := mem.NewAllocTable()
	a := at.Alloc("a", uint64(4*n))
	r := newRNG(111)
	host := make([]float32, n)
	for i := 0; i < n; i++ {
		host[i] = r.f32() - 0.5
		storeF32(m, a+uint64(4*i), host[i])
	}
	pairs := n / 2
	ppt := 16
	threads := pairs / ppt
	var launches []exec.Launch
	stride := 1
	for s := 0; s < stages; s++ {
		launches = append(launches, exec.Launch{
			Kernel: k, Grid: threads / 128, Block: 128,
			Params: []uint64{a, uint64(stride), uint64(ppt), uint64(threads)},
		})
		stride *= 2
	}
	// Host reference.
	stride = 1
	for s := 0; s < stages; s++ {
		for p := 0; p < pairs; p++ {
			low := p & (stride - 1)
			i := (p-low)*2 + low
			j := i + stride
			x, y := host[i], host[j]
			host[i], host[j] = x+y, x-y
		}
		stride *= 2
	}
	inst := &Instance{Mem: m, Alloc: at, Launches: launches}
	inst.Check = func(fm *mem.Flat) error {
		for _, i := range []int{0, 1, n / 3, n - 1} {
			got := loadF32(fm, a+uint64(4*i))
			if math.Abs(float64(got-host[i])) > 1e-4 {
				return fmt.Errorf("FWT: a[%d] = %v, want %v", i, got, host[i])
			}
		}
		return nil
	}
	return inst, nil
}
