package workloads

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
)

// SP is Scalar Product (CUDA SDK): each thread grid-strides over two
// streamed arrays — the archetypal bandwidth-bound kernel with one big
// conditional loop candidate and perfectly fixed inter-array offsets.
func SP() Workload {
	return Workload{
		Name: "Scalar Product",
		Abbr: "SP",
		Desc: "streaming dot products, grid-stride (coalesced) per thread",
		Build: func(scale float64) (*Instance, error) {
			threads := scaled(49152, scale, 256, 128)
			chunk := 256
			return buildSP(threads, chunk)
		},
	}
}

// spKernel: grid-stride loop so warp lanes access consecutive words:
// acc += a[t + k*T] * b[t + k*T].
func spKernel() *isa.Kernel {
	b := isa.NewBuilder("sp", 5) // r0=a, r1=b, r2=out, r3=chunk, r4=T
	b.Mov(5, isa.Sp(isa.SpGtid))
	b.Mov(6, isa.R(5)) // idx
	b.MovI(7, 0)       // k
	b.MovF(8, 0)       // acc
	b.Label("top")
	b.Shl(9, isa.R(6), isa.Imm(2))
	b.Add(10, isa.R(0), isa.R(9))
	b.Ld(11, isa.R(10), 0)
	b.Add(12, isa.R(1), isa.R(9))
	b.Ld(13, isa.R(12), 0)
	b.FMA(8, isa.R(11), isa.R(13), isa.R(8))
	b.Add(6, isa.R(6), isa.R(4)) // idx += T
	b.Add(7, isa.R(7), isa.Imm(1))
	b.Setp(14, isa.CmpLT, isa.R(7), isa.R(3))
	b.BraIf(isa.R(14), "top")
	b.Shl(15, isa.R(5), isa.Imm(2))
	b.Add(15, isa.R(2), isa.R(15))
	b.St(isa.R(15), 0, isa.R(8))
	b.Exit()
	return b.MustBuild()
}

func buildSP(threads, chunk int) (*Instance, error) {
	k := spKernel()
	n := threads * chunk
	m := mem.NewFlat()
	at := mem.NewAllocTable()
	a := at.Alloc("a", uint64(4*n))
	bb := at.Alloc("b", uint64(4*n))
	out := at.Alloc("out", uint64(4*threads))
	r := newRNG(11)
	for i := 0; i < n; i++ {
		storeF32(m, a+uint64(4*i), r.f32())
		storeF32(m, bb+uint64(4*i), r.f32())
	}
	inst := &Instance{
		Mem: m, Alloc: at,
		Launches: []exec.Launch{{
			Kernel: k, Grid: threads / 128, Block: 128,
			Params: []uint64{a, bb, out, uint64(chunk), uint64(threads)},
		}},
	}
	inst.Check = func(fm *mem.Flat) error {
		// Spot-check a few threads against a float32 reference.
		for _, t := range []int{0, 1, threads / 2, threads - 1} {
			var acc float32
			for k := 0; k < chunk; k++ {
				i := t + k*threads
				acc = loadF32(fm, a+uint64(4*i))*loadF32(fm, bb+uint64(4*i)) + acc
			}
			if got := loadF32(fm, out+uint64(4*t)); got != acc {
				return fmt.Errorf("SP: out[%d] = %v, want %v", t, got, acc)
			}
		}
		return nil
	}
	return inst, nil
}
