package workloads

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
)

// BP is Back Propagation (Rodinia): a layer forward pass (each thread
// reduces one weight row against a small, cache-resident input vector)
// followed by the weight-update kernel (read-modify-write of the weight
// matrix) — both strided, fixed-offset loop candidates.
func BP() Workload {
	return Workload{
		Name: "Back Propagation",
		Abbr: "BP",
		Desc: "layer forward pass + weight update over a big weight matrix",
		Build: func(scale float64) (*Instance, error) {
			outUnits := scaled(49152, scale, 256, 128)
			inUnits := 128
			return buildBP(outUnits, inUnits)
		},
	}
}

// bpForwardKernel: out[t] = sum_k w[k*T+t] * in[k]. The weight matrix is
// stored output-unit-major (transposed) so warp lanes coalesce, exactly as
// the Rodinia kernel lays it out.
func bpForwardKernel() *isa.Kernel {
	b := isa.NewBuilder("bp_forward", 5) // r0=w, r1=in, r2=out, r3=K, r4=T
	b.Mov(5, isa.Sp(isa.SpGtid))
	b.MovI(6, 0)       // k
	b.MovF(7, 0)       // acc
	b.Mov(8, isa.R(5)) // widx = t
	b.Label("top")
	b.Shl(9, isa.R(8), isa.Imm(2))
	b.Add(9, isa.R(0), isa.R(9))
	b.Ld(10, isa.R(9), 0) // w[k*T+t]
	b.Shl(11, isa.R(6), isa.Imm(2))
	b.Add(11, isa.R(1), isa.R(11))
	b.Ld(12, isa.R(11), 0) // in[k] (cache resident)
	b.FMA(7, isa.R(10), isa.R(12), isa.R(7))
	b.Add(8, isa.R(8), isa.R(4)) // widx += T
	b.Add(6, isa.R(6), isa.Imm(1))
	b.Setp(13, isa.CmpLT, isa.R(6), isa.R(3))
	b.BraIf(isa.R(13), "top")
	b.Shl(14, isa.R(5), isa.Imm(2))
	b.Add(14, isa.R(2), isa.R(14))
	b.St(isa.R(14), 0, isa.R(7))
	b.Exit()
	return b.MustBuild()
}

// bpUpdateKernel: w[k*T+t] += (lr * delta[t]) * in[k], transposed layout.
func bpUpdateKernel() *isa.Kernel {
	b := isa.NewBuilder("bp_update", 6) // r0=w, r1=in, r2=delta, r3=K, r4=lr, r5=T
	b.Mov(6, isa.Sp(isa.SpGtid))
	b.Shl(7, isa.R(6), isa.Imm(2))
	b.Add(7, isa.R(2), isa.R(7))
	b.Ld(8, isa.R(7), 0) // delta[t]
	b.FMul(8, isa.R(8), isa.R(4))
	b.MovI(9, 0)        // k
	b.Mov(10, isa.R(6)) // widx = t
	b.Label("top")
	b.Shl(11, isa.R(10), isa.Imm(2))
	b.Add(11, isa.R(0), isa.R(11))
	b.Ld(12, isa.R(11), 0) // w
	b.Shl(13, isa.R(9), isa.Imm(2))
	b.Add(13, isa.R(1), isa.R(13))
	b.Ld(14, isa.R(13), 0) // in[k]
	b.FMA(12, isa.R(8), isa.R(14), isa.R(12))
	b.St(isa.R(11), 0, isa.R(12))
	b.Add(10, isa.R(10), isa.R(5)) // widx += T
	b.Add(9, isa.R(9), isa.Imm(1))
	b.Setp(15, isa.CmpLT, isa.R(9), isa.R(3))
	b.BraIf(isa.R(15), "top")
	b.Exit()
	return b.MustBuild()
}

func buildBP(outUnits, inUnits int) (*Instance, error) {
	n := outUnits * inUnits
	m := mem.NewFlat()
	at := mem.NewAllocTable()
	w := at.Alloc("w", uint64(4*n))
	in := at.Alloc("in", uint64(4*inUnits))
	out := at.Alloc("out", uint64(4*outUnits))
	delta := at.Alloc("delta", uint64(4*outUnits))
	r := newRNG(44)
	for i := 0; i < n; i++ {
		storeF32(m, w+uint64(4*i), r.f32()-0.5)
	}
	for i := 0; i < inUnits; i++ {
		storeF32(m, in+uint64(4*i), r.f32())
	}
	for i := 0; i < outUnits; i++ {
		storeF32(m, delta+uint64(4*i), r.f32()-0.5)
	}
	lr := float32(0.25)
	inst := &Instance{
		Mem: m, Alloc: at,
		Launches: []exec.Launch{
			{Kernel: bpForwardKernel(), Grid: outUnits / 128, Block: 128,
				Params: []uint64{w, in, out, uint64(inUnits), uint64(outUnits)}},
			{Kernel: bpUpdateKernel(), Grid: outUnits / 128, Block: 128,
				Params: []uint64{w, in, delta, uint64(inUnits), isa.F32Bits(lr), uint64(outUnits)}},
		},
	}
	inst.Check = func(fm *mem.Flat) error {
		// Forward result of thread 7 (weights were updated afterwards,
		// so recompute from the *updated* weights minus the update).
		t := 7
		d := loadF32(fm, delta+uint64(4*t)) * lr
		var acc float32
		for k := 0; k < inUnits; k++ {
			ik := loadF32(fm, in+uint64(4*k))
			wUpd := loadF32(fm, w+uint64(4*(k*outUnits+t)))
			// wUpd = wOrig + d*ik  =>  wOrig = wUpd - d*ik (float32
			// rounding makes this approximate; tolerance below).
			acc = (wUpd-d*ik)*ik + acc
		}
		got := loadF32(fm, out+uint64(4*t))
		if math.Abs(float64(got-acc)) > 1e-2 {
			return fmt.Errorf("BP: out[%d] = %v, want ~%v", t, got, acc)
		}
		return nil
	}
	return inst, nil
}
