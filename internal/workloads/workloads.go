// Package workloads provides the ten memory-intensive GPU applications of
// the paper's Table 2 (BP, BFS, KM, CFD, HW, LIB, RAY, FWT, SP, RD) as
// deterministic kernels in the project's PTX-like ISA. Each reproduces the
// memory-access structure of the original (strides, indirection through a
// synthetic graph, XOR butterflies, reduction trees, divergence, compute
// intensity) — the properties TOM's mechanisms key on — at sizes that keep
// a full-system simulation tractable.
package workloads

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Instance is a ready-to-run workload: initialized memory, the driver's
// allocation table, and the kernel launch sequence.
type Instance struct {
	Mem      *mem.Flat
	Alloc    *mem.AllocTable
	Launches []exec.Launch
	// Check validates final memory contents (nil = no self-check).
	Check func(m *mem.Flat) error
}

// Clone duplicates the instance's initial state so multiple configurations
// can run from identical inputs.
func (in *Instance) Clone() *Instance {
	m := in.Mem.Clone()
	at := mem.NewAllocTable()
	for _, r := range in.Alloc.Ranges {
		at.Alloc(r.Name, r.Size)
	}
	return &Instance{Mem: m, Alloc: at, Launches: in.Launches, Check: in.Check}
}

// Workload is a named builder.
type Workload struct {
	Name string // full name, as in Table 2
	Abbr string
	Desc string
	// Build creates an instance; scale multiplies the default problem
	// size (1.0 = benchmark default; tests use smaller values).
	Build func(scale float64) (*Instance, error)
}

// All returns the ten workloads in the paper's presentation order.
func All() []Workload {
	return []Workload{
		BP(), BFS(), KM(), CFD(), HW(), LIB(), RAY(), FWT(), SP(), RD(),
	}
}

// ByAbbr finds a workload by its abbreviation (case-sensitive, e.g. "LIB").
func ByAbbr(abbr string) (Workload, error) {
	for _, w := range All() {
		if w.Abbr == abbr {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown abbreviation %q", abbr)
}

// --- shared helpers ---

// rng is a small deterministic SplitMix64 generator for input synthesis.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) f32() float32 { return float32(r.next()%1000) / 1000.0 }

func storeF32(m *mem.Flat, addr uint64, v float32) {
	m.Store4(addr, uint32(isa.F32Bits(v)))
}

func loadF32(m *mem.Flat, addr uint64) float32 {
	return isa.F32FromBits(uint64(m.Load4(addr)))
}

// scaled returns max(lo, int(v*scale)) rounded down to a multiple of m.
func scaled(v int, scale float64, lo, m int) int {
	n := int(float64(v) * scale)
	if n < lo {
		n = lo
	}
	n -= n % m
	if n < m {
		n = m
	}
	return n
}
