package workloads

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
)

// RD is Parallel Reduction (CUDA SDK): a grid-stride sum with an ALU-rich
// loop body (the original applies an operator per element), followed by a
// shared-memory tree combine. The first kernel's loop is an offload
// candidate whose ALU density reproduces the paper's §6.4 observation that
// RD slows down at 4x stack-SM warp capacity (the stack SM's compute
// pipeline saturates).
func RD() Workload {
	return Workload{
		Name: "Parallel Reduction",
		Abbr: "RD",
		Desc: "grid-stride reduction with ALU-heavy element operator",
		Build: func(scale float64) (*Instance, error) {
			threads := scaled(49152, scale, 256, 128)
			iters := 256
			return buildRD(threads, iters)
		},
	}
}

// rdMainKernel: acc over in[t + k*T] with extra integer mixing per element.
func rdMainKernel() *isa.Kernel {
	b := isa.NewBuilder("rd_main", 4) // r0=in, r1=part, r2=T, r3=iters
	b.Mov(4, isa.Sp(isa.SpGtid))
	b.MovI(5, 0)       // k
	b.MovI(6, 0)       // acc (integer mix to keep the check exact)
	b.Mov(7, isa.R(4)) // idx = t
	b.Label("top")
	b.Shl(8, isa.R(7), isa.Imm(2))
	b.Add(8, isa.R(0), isa.R(8))
	b.Ld(9, isa.R(8), 0)
	// Element operator: dependent integer mixes (ALU-heavy body). The
	// mask keeps 32-bit semantics so the host reference can match.
	b.Mul(9, isa.R(9), isa.Imm(2654435761))
	b.And(9, isa.R(9), isa.Imm(0xFFFFFFFF))
	b.Xor(9, isa.R(9), isa.R(4))
	b.Shr(10, isa.R(9), isa.Imm(7))
	b.Add(9, isa.R(9), isa.R(10))
	b.Add(6, isa.R(6), isa.R(9))
	b.Add(7, isa.R(7), isa.R(2)) // idx += T (grid stride)
	b.Add(5, isa.R(5), isa.Imm(1))
	b.Setp(11, isa.CmpLT, isa.R(5), isa.R(3))
	b.BraIf(isa.R(11), "top")
	b.And(6, isa.R(6), isa.Imm(0xFFFFFFFF))
	b.Shl(12, isa.R(4), isa.Imm(2))
	b.Add(12, isa.R(1), isa.R(12))
	b.St(isa.R(12), 0, isa.R(6))
	b.Exit()
	return b.MustBuild()
}

// rdCombineKernel: shared-memory tree over 128 partials per CTA.
func rdCombineKernel() *isa.Kernel {
	b := isa.NewBuilder("rd_combine", 2) // r0=part, r1=out
	b.SetShared(4 * 128)
	b.Mov(2, isa.Sp(isa.SpTid))
	b.Shl(3, isa.R(2), isa.Imm(2)) // shared offset
	b.Mov(4, isa.Sp(isa.SpGtid))
	b.Shl(4, isa.R(4), isa.Imm(2))
	b.Add(4, isa.R(0), isa.R(4))
	b.Ld(5, isa.R(4), 0)
	b.StShared(isa.R(3), 0, isa.R(5))
	b.Bar()
	b.MovI(6, 64)
	b.Label("loop")
	b.Setp(7, isa.CmpGE, isa.R(2), isa.R(6))
	b.BraIf(isa.R(7), "skip")
	b.Add(8, isa.R(2), isa.R(6))
	b.Shl(8, isa.R(8), isa.Imm(2))
	b.LdShared(9, isa.R(8), 0)
	b.LdShared(10, isa.R(3), 0)
	b.Add(10, isa.R(10), isa.R(9))
	b.StShared(isa.R(3), 0, isa.R(10))
	b.Label("skip")
	b.Bar()
	b.Shr(6, isa.R(6), isa.Imm(1))
	b.Setp(11, isa.CmpGT, isa.R(6), isa.Imm(0))
	b.BraIf(isa.R(11), "loop")
	b.Setp(12, isa.CmpNE, isa.R(2), isa.Imm(0))
	b.BraIf(isa.R(12), "done")
	b.LdShared(13, isa.R(3), 0)
	b.Shl(14, isa.Sp(isa.SpCtaid), isa.Imm(2))
	b.Add(14, isa.R(1), isa.R(14))
	b.St(isa.R(14), 0, isa.R(13))
	b.Label("done")
	b.Exit()
	return b.MustBuild()
}

func buildRD(threads, iters int) (*Instance, error) {
	n := threads * iters
	m := mem.NewFlat()
	at := mem.NewAllocTable()
	in := at.Alloc("in", uint64(4*n))
	part := at.Alloc("part", uint64(4*threads))
	out := at.Alloc("out", uint64(4*threads/128))
	r := newRNG(22)
	for i := 0; i < n; i++ {
		m.Store4(in+uint64(4*i), uint32(r.next()))
	}
	inst := &Instance{
		Mem: m, Alloc: at,
		Launches: []exec.Launch{
			{Kernel: rdMainKernel(), Grid: threads / 128, Block: 128,
				Params: []uint64{in, part, uint64(threads), uint64(iters)}},
			{Kernel: rdCombineKernel(), Grid: threads / 128, Block: 128,
				Params: []uint64{part, out}},
		},
	}
	inst.Check = func(fm *mem.Flat) error {
		// Reference for CTA 0's final sum.
		var want uint32
		for t := 0; t < 128; t++ {
			var acc uint32
			for k := 0; k < iters; k++ {
				v := fm.Load4(in + uint64(4*(t+k*threads)))
				v *= 2654435761
				v ^= uint32(t)
				v += v >> 7
				acc += v
			}
			want += acc
		}
		if got := fm.Load4(out); got != want {
			return fmt.Errorf("RD: out[0] = %d, want %d", got, want)
		}
		return nil
	}
	return inst, nil
}
