package workloads

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
)

// HW is Heartwall (Rodinia): template tracking with heavy per-pixel
// arithmetic. Each loaded sample feeds a long dependent FMA chain, so the
// kernel is compute-bound; its loop is still an offload candidate, but
// offloading buys little — reproducing HW's small speedup in the paper.
func HW() Workload {
	return Workload{
		Name: "Heartwall",
		Abbr: "HW",
		Desc: "template correlation: one load feeding eight dependent FMAs",
		Build: func(scale float64) (*Instance, error) {
			pixels := scaled(49152, scale, 256, 128)
			taps := 96
			return buildHW(pixels, taps)
		},
	}
}

func hwKernel() *isa.Kernel {
	b := isa.NewBuilder("hw", 4) // r0=frame, r1=out, r2=P, r3=taps
	b.Mov(4, isa.Sp(isa.SpGtid))
	b.MovI(5, 0)       // k
	b.MovF(6, 0)       // acc
	b.Mov(7, isa.R(4)) // idx
	b.Label("top")
	b.Shl(8, isa.R(7), isa.Imm(2))
	b.Add(8, isa.R(0), isa.R(8))
	b.Ld(9, isa.R(8), 0)
	// Dependent FMA chain: the compute body that dominates HW.
	for i := 0; i < 8; i++ {
		b.FMA(6, isa.R(9), isa.ImmF(0.501), isa.R(6))
		b.FMul(6, isa.R(6), isa.ImmF(0.993))
	}
	b.Add(7, isa.R(7), isa.R(2)) // idx += P
	b.Add(5, isa.R(5), isa.Imm(1))
	b.Setp(10, isa.CmpLT, isa.R(5), isa.R(3))
	b.BraIf(isa.R(10), "top")
	b.Shl(11, isa.R(4), isa.Imm(2))
	b.Add(11, isa.R(1), isa.R(11))
	b.St(isa.R(11), 0, isa.R(6))
	b.Exit()
	return b.MustBuild()
}

func buildHW(pixels, taps int) (*Instance, error) {
	k := hwKernel()
	n := pixels * taps
	m := mem.NewFlat()
	at := mem.NewAllocTable()
	frame := at.Alloc("frame", uint64(4*n))
	out := at.Alloc("out", uint64(4*pixels))
	r := newRNG(88)
	for i := 0; i < n; i++ {
		storeF32(m, frame+uint64(4*i), r.f32())
	}
	inst := &Instance{
		Mem: m, Alloc: at,
		Launches: []exec.Launch{{
			Kernel: k, Grid: pixels / 128, Block: 128,
			Params: []uint64{frame, out, uint64(pixels), uint64(taps)},
		}},
	}
	inst.Check = func(fm *mem.Flat) error {
		for _, t := range []int{3, pixels - 1} {
			var acc float32
			for kk := 0; kk < taps; kk++ {
				v := loadF32(fm, frame+uint64(4*(t+kk*pixels)))
				for i := 0; i < 8; i++ {
					acc = v*0.501 + acc
					acc = acc * 0.993
				}
			}
			got := loadF32(fm, out+uint64(4*t))
			if math.Abs(float64(got-acc)) > 1e-3*math.Abs(float64(acc))+1e-6 {
				return fmt.Errorf("HW: out[%d] = %v, want %v", t, got, acc)
			}
		}
		return nil
	}
	return inst, nil
}
