package workloads

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TestAllocationsCoverAllAccesses: every global access of every workload
// must land inside a driver allocation (no wild addresses).
func TestAllocationsCoverAllAccesses(t *testing.T) {
	for _, w := range All() {
		inst, err := w.Build(0.03)
		if err != nil {
			t.Fatalf("%s: %v", w.Abbr, err)
		}
		c := inst.Clone()
		bad := 0
		var firstBad uint64
		hook := func(wp *exec.Warp, res exec.StepResult) {
			for _, a := range res.Accesses {
				if c.Alloc.Find(a.Addr) == nil {
					if bad == 0 {
						firstBad = a.Addr
					}
					bad++
				}
			}
		}
		for _, l := range c.Launches {
			if err := exec.RunInstrumented(c.Mem, l, hook); err != nil {
				t.Fatalf("%s: %v", w.Abbr, err)
			}
		}
		if bad > 0 {
			t.Errorf("%s: %d accesses outside allocations (first %#x)", w.Abbr, bad, firstBad)
		}
	}
}

// TestWarpCoalescingQuality: the workloads are written with interleaved
// layouts; the average number of 128B lines per warp memory instruction
// must stay low (uncoalesced kernels would swamp the MSHRs, see docs/ISA.md).
func TestWarpCoalescingQuality(t *testing.T) {
	for _, w := range All() {
		inst, err := w.Build(0.03)
		if err != nil {
			t.Fatalf("%s: %v", w.Abbr, err)
		}
		c := inst.Clone()
		var memInstrs, lines uint64
		hook := func(wp *exec.Warp, res exec.StepResult) {
			if res.Kind != exec.StepMem {
				return
			}
			memInstrs++
			seen := map[uint64]bool{}
			for _, a := range res.Accesses {
				seen[a.Addr>>7] = true
			}
			lines += uint64(len(seen))
		}
		for _, l := range c.Launches {
			if err := exec.RunInstrumented(c.Mem, l, hook); err != nil {
				t.Fatalf("%s: %v", w.Abbr, err)
			}
		}
		if memInstrs == 0 {
			t.Fatalf("%s: no memory instructions", w.Abbr)
		}
		avg := float64(lines) / float64(memInstrs)
		t.Logf("%s: %.2f lines per warp memory instruction", w.Abbr, avg)
		// BFS/CFD gathers are legitimately scattered; everything else
		// should coalesce tightly.
		limit := 4.0
		if w.Abbr == "BFS" || w.Abbr == "CFD" || w.Abbr == "RAY" {
			limit = 24.0
		}
		if avg > limit {
			t.Errorf("%s: %.2f lines/mem-instr exceeds %v (uncoalesced layout?)", w.Abbr, avg, limit)
		}
	}
}

// TestKernelsFitHardwareTables: every workload kernel must fit the paper's
// provisioned metadata table and the register-file limits.
func TestKernelsFitHardwareTables(t *testing.T) {
	for _, w := range All() {
		inst, err := w.Build(0.03)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, l := range inst.Launches {
			k := l.Kernel
			if seen[k.Name] {
				continue
			}
			seen[k.Name] = true
			if k.NumRegs > isa.MaxRegs {
				t.Errorf("%s/%s: %d registers", w.Abbr, k.Name, k.NumRegs)
			}
			md, err := compiler.Analyze(k, compiler.DefaultCostParams())
			if err != nil {
				t.Fatal(err)
			}
			if len(md.Candidates) > 40 {
				t.Errorf("%s/%s: %d candidates exceed the metadata table", w.Abbr, k.Name, len(md.Candidates))
			}
		}
	}
}

// TestTinyTimingRunEveryWorkload: a fast end-to-end smoke of the timing
// simulator across all ten workloads at the smallest usable scale, with
// verification (complements the larger integration test in internal/sim).
func TestTinyTimingRunEveryWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("timing runs")
	}
	for _, w := range All() {
		inst, err := w.Build(0.02)
		if err != nil {
			t.Fatal(err)
		}
		ref := inst.Clone()
		if err := exec.RunFunctionalAll(ref.Mem, ref.Launches); err != nil {
			t.Fatalf("%s: %v", w.Abbr, err)
		}
		c := inst.Clone()
		cfg := sim.BaselineConfig()
		cfg.MaxCycles = 100_000_000
		sys := sim.New(cfg, c.Mem, c.Alloc)
		if err := sys.Run(c.Launches); err != nil {
			t.Fatalf("%s: %v", w.Abbr, err)
		}
		if ok, addr := mem.Equal(ref.Mem, c.Mem); !ok {
			t.Errorf("%s: diverged at %#x", w.Abbr, addr)
		}
	}
}
