package workloads

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
)

const bfsInf = 0x7FFFFFFF

// BFS is level-synchronous breadth-first search (Rodinia) over a synthetic
// graph in CSR form: one kernel launch per level, one thread per vertex,
// data-dependent gathers through the column array. Its irregularity gives
// it the paper's anomalous tmap behavior — the mapping learned from early
// instances is not the best one for the whole run.
func BFS() Workload {
	return Workload{
		Name: "BFS Graph Traversal",
		Abbr: "BFS",
		Desc: "level-synchronous BFS over a synthetic CSR graph",
		Build: func(scale float64) (*Instance, error) {
			vertices := scaled(196608, scale, 2048, 128)
			degree := 6
			levels := 10
			return buildBFS(vertices, degree, levels)
		},
	}
}

// bfsKernel processes one level: threads whose vertex is on the frontier
// (dist == level) relax their neighbors.
func bfsKernel() *isa.Kernel {
	b := isa.NewBuilder("bfs", 5) // r0=rowptr, r1=col, r2=dist, r3=level, r4=V
	b.Mov(5, isa.Sp(isa.SpGtid))
	b.Setp(6, isa.CmpGE, isa.R(5), isa.R(4))
	b.BraIf(isa.R(6), "done")
	b.Shl(7, isa.R(5), isa.Imm(2))
	b.Add(8, isa.R(2), isa.R(7))
	b.Ld(9, isa.R(8), 0) // dist[v]
	b.Setp(10, isa.CmpNE, isa.R(9), isa.R(3))
	b.BraIf(isa.R(10), "done")
	b.Add(11, isa.R(0), isa.R(7))
	b.Ld(12, isa.R(11), 0)          // e = rowptr[v]
	b.Ld(13, isa.R(11), 4)          // end = rowptr[v+1]
	b.Add(14, isa.R(3), isa.Imm(1)) // level+1
	// Guard the do-while edge loop against empty adjacency lists.
	b.Setp(15, isa.CmpGE, isa.R(12), isa.R(13))
	b.BraIf(isa.R(15), "done")
	b.Label("edge")
	b.Shl(16, isa.R(12), isa.Imm(2))
	b.Add(16, isa.R(1), isa.R(16))
	b.Ld(17, isa.R(16), 0) // nbr = col[e]
	b.Shl(18, isa.R(17), isa.Imm(2))
	b.Add(18, isa.R(2), isa.R(18))
	b.Ld(19, isa.R(18), 0) // dist[nbr]
	b.Setp(20, isa.CmpNE, isa.R(19), isa.Imm(bfsInf))
	b.BraIf(isa.R(20), "next")
	b.St(isa.R(18), 0, isa.R(14))
	b.Label("next")
	b.Add(12, isa.R(12), isa.Imm(1))
	b.Setp(21, isa.CmpLT, isa.R(12), isa.R(13))
	b.BraIf(isa.R(21), "edge")
	b.Label("done")
	b.Exit()
	return b.MustBuild()
}

// bfsHost is the reference level-synchronous BFS.
func bfsHost(rowptr, col []uint32, src, levels int) []uint32 {
	dist := make([]uint32, len(rowptr)-1)
	for i := range dist {
		dist[i] = bfsInf
	}
	dist[src] = 0
	for lvl := 0; lvl < levels; lvl++ {
		for v := range dist {
			if dist[v] != uint32(lvl) {
				continue
			}
			for e := rowptr[v]; e < rowptr[v+1]; e++ {
				n := col[e]
				if dist[n] == bfsInf {
					dist[n] = uint32(lvl + 1)
				}
			}
		}
	}
	return dist
}

func buildBFS(vertices, degree, levels int) (*Instance, error) {
	// Synthetic graph: per vertex, `degree` edges — half local (v±small),
	// half uniform random. Deterministic.
	r := newRNG(66)
	rowptr := make([]uint32, vertices+1)
	var col []uint32
	for v := 0; v < vertices; v++ {
		rowptr[v] = uint32(len(col))
		for d := 0; d < degree; d++ {
			var n int
			if d%2 == 0 {
				n = (v + 1 + r.intn(8)) % vertices
			} else {
				n = r.intn(vertices)
			}
			col = append(col, uint32(n))
		}
	}
	rowptr[vertices] = uint32(len(col))

	m := mem.NewFlat()
	at := mem.NewAllocTable()
	rp := at.Alloc("rowptr", uint64(4*(vertices+1)))
	cl := at.Alloc("col", uint64(4*len(col)))
	dist := at.Alloc("dist", uint64(4*vertices))
	for i, v := range rowptr {
		m.Store4(rp+uint64(4*i), v)
	}
	for i, v := range col {
		m.Store4(cl+uint64(4*i), v)
	}
	src := 0
	for i := 0; i < vertices; i++ {
		m.Store4(dist+uint64(4*i), bfsInf)
	}
	m.Store4(dist, 0)

	var launches []exec.Launch
	k := bfsKernel()
	grid := (vertices + 127) / 128
	for lvl := 0; lvl < levels; lvl++ {
		launches = append(launches, exec.Launch{
			Kernel: k, Grid: grid, Block: 128,
			Params: []uint64{rp, cl, dist, uint64(lvl), uint64(vertices)},
		})
	}
	want := bfsHost(rowptr, col, src, levels)
	inst := &Instance{Mem: m, Alloc: at, Launches: launches}
	inst.Check = func(fm *mem.Flat) error {
		for v := 0; v < vertices; v++ {
			if got := fm.Load4(dist + uint64(4*v)); got != want[v] {
				return fmt.Errorf("BFS: dist[%d] = %d, want %d", v, got, want[v])
			}
		}
		return nil
	}
	return inst, nil
}
