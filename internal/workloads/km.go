package workloads

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
)

// KM is K-means (Rodinia, with Rogers et al.'s global-memory variant): one
// thread per point scans all centroids over all dimensions; point features
// stream from memory with fixed strides, centroids stay cache resident.
func KM() Workload {
	return Workload{
		Name: "K-means",
		Abbr: "KM",
		Desc: "assignment step: nearest centroid per point",
		Build: func(scale float64) (*Instance, error) {
			points := scaled(49152, scale, 256, 128)
			dims := 16
			clusters := 12
			return buildKM(points, dims, clusters)
		},
	}
}

// kmKernel: for each centroid c: dist = sum_j (p[j*P+t]-cent[c*D+j])^2;
// track argmin; store assignment. Points are dimension-major so warp lanes
// coalesce (Rodinia's feature-transposed layout).
func kmKernel() *isa.Kernel {
	b := isa.NewBuilder("km", 6) // r0=pts, r1=cent, r2=assign, r3=D, r4=K, r5=P
	b.Mov(6, isa.Sp(isa.SpGtid))
	b.MovI(8, 0)      // c
	b.MovF(9, 3.0e38) // best distance
	b.MovI(10, 0)     // best cluster
	b.Label("cluster")
	b.Mul(11, isa.R(8), isa.R(3)) // centroid base index
	b.MovI(12, 0)                 // j
	b.MovF(13, 0)                 // dist
	b.Mov(7, isa.R(6))            // pidx = t
	b.Label("dim")
	b.Shl(14, isa.R(7), isa.Imm(2))
	b.Add(14, isa.R(0), isa.R(14))
	b.Ld(15, isa.R(14), 0) // p[j*P+t]
	b.Add(16, isa.R(11), isa.R(12))
	b.Shl(16, isa.R(16), isa.Imm(2))
	b.Add(16, isa.R(1), isa.R(16))
	b.Ld(17, isa.R(16), 0) // cent[c*D+j]
	b.FSub(18, isa.R(15), isa.R(17))
	b.FMA(13, isa.R(18), isa.R(18), isa.R(13))
	b.Add(7, isa.R(7), isa.R(5)) // pidx += P
	b.Add(12, isa.R(12), isa.Imm(1))
	b.Setp(19, isa.CmpLT, isa.R(12), isa.R(3))
	b.BraIf(isa.R(19), "dim")
	// if dist < best { best = dist; bestc = c }
	b.FSetp(20, isa.CmpLT, isa.R(13), isa.R(9))
	b.Selp(9, isa.R(13), isa.R(9), isa.R(20))
	b.Selp(10, isa.R(8), isa.R(10), isa.R(20))
	b.Add(8, isa.R(8), isa.Imm(1))
	b.Setp(21, isa.CmpLT, isa.R(8), isa.R(4))
	b.BraIf(isa.R(21), "cluster")
	b.Shl(22, isa.R(6), isa.Imm(2))
	b.Add(22, isa.R(2), isa.R(22))
	b.St(isa.R(22), 0, isa.R(10))
	b.Exit()
	return b.MustBuild()
}

func buildKM(points, dims, clusters int) (*Instance, error) {
	k := kmKernel()
	m := mem.NewFlat()
	at := mem.NewAllocTable()
	pts := at.Alloc("points", uint64(4*points*dims))
	cent := at.Alloc("centroids", uint64(4*clusters*dims))
	assign := at.Alloc("assign", uint64(4*points))
	r := newRNG(55)
	for i := 0; i < points*dims; i++ {
		storeF32(m, pts+uint64(4*i), r.f32()*10)
	}
	for i := 0; i < clusters*dims; i++ {
		storeF32(m, cent+uint64(4*i), r.f32()*10)
	}
	inst := &Instance{
		Mem: m, Alloc: at,
		Launches: []exec.Launch{{
			Kernel: k, Grid: points / 128, Block: 128,
			Params: []uint64{pts, cent, assign, uint64(dims), uint64(clusters), uint64(points)},
		}},
	}
	inst.Check = func(fm *mem.Flat) error {
		for _, t := range []int{0, points / 2, points - 1} {
			best, bestc := float32(3.0e38), 0
			for c := 0; c < clusters; c++ {
				var d float32
				for j := 0; j < dims; j++ {
					p := loadF32(fm, pts+uint64(4*(j*points+t)))
					q := loadF32(fm, cent+uint64(4*(c*dims+j)))
					diff := p - q
					d = diff*diff + d
				}
				if d < best {
					best, bestc = d, c
				}
			}
			if got := fm.Load4(assign + uint64(4*t)); got != uint32(bestc) {
				return fmt.Errorf("KM: assign[%d] = %d, want %d", t, got, bestc)
			}
		}
		return nil
	}
	return inst, nil
}
