package workloads

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/exec"
)

const testScale = 0.05

func buildAll(t *testing.T, scale float64) map[string]*Instance {
	t.Helper()
	out := map[string]*Instance{}
	for _, w := range All() {
		inst, err := w.Build(scale)
		if err != nil {
			t.Fatalf("%s: %v", w.Abbr, err)
		}
		out[w.Abbr] = inst
	}
	return out
}

func TestRegistry(t *testing.T) {
	ws := All()
	if len(ws) != 10 {
		t.Fatalf("got %d workloads, want 10 (Table 2)", len(ws))
	}
	want := []string{"BP", "BFS", "KM", "CFD", "HW", "LIB", "RAY", "FWT", "SP", "RD"}
	for i, w := range ws {
		if w.Abbr != want[i] {
			t.Errorf("workload %d = %s, want %s", i, w.Abbr, want[i])
		}
		if w.Name == "" || w.Desc == "" {
			t.Errorf("%s missing name/description", w.Abbr)
		}
	}
	if _, err := ByAbbr("LIB"); err != nil {
		t.Error(err)
	}
	if _, err := ByAbbr("nope"); err == nil {
		t.Error("unknown abbreviation should fail")
	}
}

func TestFunctionalCorrectness(t *testing.T) {
	for abbr, inst := range buildAll(t, testScale) {
		if err := exec.RunFunctionalAll(inst.Mem, inst.Launches); err != nil {
			t.Fatalf("%s: run: %v", abbr, err)
		}
		if inst.Check == nil {
			t.Fatalf("%s: no self-check", abbr)
		}
		if err := inst.Check(inst.Mem); err != nil {
			t.Errorf("self-check failed: %v", err)
		}
	}
}

func TestEveryWorkloadHasOffloadCandidates(t *testing.T) {
	for abbr, inst := range buildAll(t, testScale) {
		total := 0
		loops := 0
		seen := map[string]bool{}
		for _, l := range inst.Launches {
			if seen[l.Kernel.Name] {
				continue
			}
			seen[l.Kernel.Name] = true
			md, err := compiler.Analyze(l.Kernel, compiler.DefaultCostParams())
			if err != nil {
				t.Fatalf("%s/%s: %v", abbr, l.Kernel.Name, err)
			}
			total += len(md.Candidates)
			for _, c := range md.Candidates {
				if c.IsLoop {
					loops++
				}
				t.Logf("%s/%s: %v", abbr, l.Kernel.Name, c)
			}
		}
		if total == 0 {
			t.Errorf("%s: no offload candidates at all", abbr)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	w, err := ByAbbr("SP")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Build(testScale)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := inst.Clone(), inst.Clone()
	if err := exec.RunFunctionalAll(c1.Mem, c1.Launches); err != nil {
		t.Fatal(err)
	}
	// c2 must still be pristine: running it fresh must pass its check,
	// and the original alloc table must not carry flags.
	if err := exec.RunFunctionalAll(c2.Mem, c2.Launches); err != nil {
		t.Fatal(err)
	}
	if err := c2.Check(c2.Mem); err != nil {
		t.Error(err)
	}
	for _, r := range inst.Alloc.Ranges {
		if r.CandidateTouched || r.OffloadMapped {
			t.Errorf("original alloc table mutated: %+v", r)
		}
	}
}

func TestScaleControlsSize(t *testing.T) {
	w, _ := ByAbbr("SP")
	small, err := w.Build(0.02)
	if err != nil {
		t.Fatal(err)
	}
	big, err := w.Build(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if small.Launches[0].Grid >= big.Launches[0].Grid {
		t.Errorf("scale had no effect: %d vs %d CTAs", small.Launches[0].Grid, big.Launches[0].Grid)
	}
}

func TestDeterministicBuilds(t *testing.T) {
	w, _ := ByAbbr("BFS")
	a, err := w.Build(testScale)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Build(testScale)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Mem.Snapshot(), b.Mem.Snapshot()
	if len(sa) != len(sb) {
		t.Fatalf("nondeterministic build: %d vs %d words", len(sa), len(sb))
	}
	for addr, v := range sa {
		if sb[addr] != v {
			t.Fatalf("nondeterministic at %#x", addr)
		}
	}
}
