package workloads

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
)

// CFD is the Rodinia unstructured-mesh Euler solver's flux step: each cell
// reads its four neighbor indices from the element array, gathers two field
// values per neighbor, and writes a flux — a straight-line block candidate
// with many loads and a mix of fixed-offset (index array, own fields) and
// quasi-regular gathered accesses.
func CFD() Workload {
	return Workload{
		Name: "CFD Solver",
		Abbr: "CFD",
		Desc: "flux computation with neighbor gathers over a structured-ish mesh",
		Build: func(scale float64) (*Instance, error) {
			cells := scaled(262144, scale, 2048, 128)
			width := 256
			return buildCFD(cells, width)
		},
	}
}

// cfdKernel: unrolled over the 4 neighbors.
func cfdKernel() *isa.Kernel {
	b := isa.NewBuilder("cfd", 5) // r0=elem, r1=density, r2=energy, r3=flux, r4=V
	b.Mov(5, isa.Sp(isa.SpGtid))
	b.Setp(6, isa.CmpGE, isa.R(5), isa.R(4))
	b.BraIf(isa.R(6), "done")
	b.Shl(7, isa.R(5), isa.Imm(2))
	b.Add(8, isa.R(1), isa.R(7))
	b.Ld(9, isa.R(8), 0) // own density
	b.Add(10, isa.R(2), isa.R(7))
	b.Ld(11, isa.R(10), 0)          // own energy
	b.MovF(12, 0)                   // flux accumulator
	b.Shl(13, isa.R(5), isa.Imm(4)) // elem row = 4 neighbors * 4 bytes
	b.Add(13, isa.R(0), isa.R(13))
	for nb := 0; nb < 4; nb++ {
		off := int64(4 * nb)
		idx := isa.Reg(14)
		b.Ld(idx, isa.R(13), off) // neighbor index
		b.Shl(15, isa.R(idx), isa.Imm(2))
		b.Add(16, isa.R(1), isa.R(15))
		b.Ld(17, isa.R(16), 0) // density[nbr]
		b.Add(18, isa.R(2), isa.R(15))
		b.Ld(19, isa.R(18), 0) // energy[nbr]
		b.FSub(20, isa.R(17), isa.R(9))
		b.FSub(21, isa.R(19), isa.R(11))
		b.FMA(12, isa.R(20), isa.ImmF(0.3), isa.R(12))
		b.FMA(12, isa.R(21), isa.ImmF(0.7), isa.R(12))
	}
	b.Add(22, isa.R(3), isa.R(7))
	b.St(isa.R(22), 0, isa.R(12))
	b.Label("done")
	b.Exit()
	return b.MustBuild()
}

func buildCFD(cells, width int) (*Instance, error) {
	k := cfdKernel()
	m := mem.NewFlat()
	at := mem.NewAllocTable()
	elem := at.Alloc("elem", uint64(16*cells))
	density := at.Alloc("density", uint64(4*cells))
	energy := at.Alloc("energy", uint64(4*cells))
	flux := at.Alloc("flux", uint64(4*cells))
	nbrs := func(v int) [4]int {
		return [4]int{
			(v + 1) % cells,
			(v - 1 + cells) % cells,
			(v + width) % cells,
			(v - width + cells) % cells,
		}
	}
	r := newRNG(77)
	for v := 0; v < cells; v++ {
		for j, n := range nbrs(v) {
			m.Store4(elem+uint64(16*v+4*j), uint32(n))
		}
		storeF32(m, density+uint64(4*v), r.f32())
		storeF32(m, energy+uint64(4*v), r.f32())
	}
	inst := &Instance{
		Mem: m, Alloc: at,
		Launches: []exec.Launch{{
			Kernel: k, Grid: cells / 128, Block: 128,
			Params: []uint64{elem, density, energy, flux, uint64(cells)},
		}},
	}
	inst.Check = func(fm *mem.Flat) error {
		for _, v := range []int{0, cells / 2, cells - 1} {
			d0 := loadF32(fm, density+uint64(4*v))
			e0 := loadF32(fm, energy+uint64(4*v))
			var acc float32
			for _, n := range nbrs(v) {
				dn := loadF32(fm, density+uint64(4*n))
				en := loadF32(fm, energy+uint64(4*n))
				acc = (dn-d0)*0.3 + acc
				acc = (en-e0)*0.7 + acc
			}
			got := loadF32(fm, flux+uint64(4*v))
			if math.Abs(float64(got-acc)) > 1e-4 {
				return fmt.Errorf("CFD: flux[%d] = %v, want %v", v, got, acc)
			}
		}
		return nil
	}
	return inst, nil
}
