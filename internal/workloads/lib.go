package workloads

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
)

// LIB is LIBOR Monte Carlo (the paper's running example, Fig. 4): each
// thread owns one path's forward-rate vector L and adjoint L_b and runs the
// two portfolio_b loops — both conditional offloading candidates with five
// live-ins, one load and one store per trip.
func LIB() Workload {
	return Workload{
		Name: "LIBOR Monte Carlo",
		Abbr: "LIB",
		Desc: "two adjoint loops per path (the paper's Fig. 4 candidates)",
		Build: func(scale float64) (*Instance, error) {
			paths := scaled(65536, scale, 256, 128)
			nmat := 32
			nTotal := 64
			return buildLIB(paths, nmat, nTotal)
		},
	}
}

func libKernel() *isa.Kernel {
	// Rate-major layout (L[n*paths + t]) keeps warp lanes coalesced, as
	// the CUDA original does.
	b := isa.NewBuilder("lib", 6) // r0=L, r1=L_b, r2=Nmat, r3=N, r4=vd, r5=paths
	b.Mov(6, isa.Sp(isa.SpGtid))
	// Loop 1: for n in [0,Nmat): L_b[n*P+t] = vd / (1 + 0.05*L[n*P+t])
	b.MovI(7, 0)       // n
	b.Mov(8, isa.R(6)) // idx = t
	b.Label("loop1")
	b.Shl(9, isa.R(8), isa.Imm(2))
	b.Add(10, isa.R(0), isa.R(9))
	b.Ld(11, isa.R(10), 0)
	b.FMA(11, isa.R(11), isa.ImmF(0.05), isa.ImmF(1.0))
	b.FDiv(11, isa.R(4), isa.R(11))
	b.Add(12, isa.R(1), isa.R(9))
	b.St(isa.R(12), 0, isa.R(11))
	b.Add(8, isa.R(8), isa.R(5)) // idx += paths
	b.Add(7, isa.R(7), isa.Imm(1))
	b.Setp(13, isa.CmpLT, isa.R(7), isa.R(2))
	b.BraIf(isa.R(13), "loop1")
	// Loop 2: for n in [Nmat,N): L_b[n*P+t] *= 0.9
	b.Label("loop2")
	b.Shl(9, isa.R(8), isa.Imm(2))
	b.Add(12, isa.R(1), isa.R(9))
	b.Ld(14, isa.R(12), 0)
	b.FMul(14, isa.R(14), isa.ImmF(0.9))
	b.St(isa.R(12), 0, isa.R(14))
	b.Add(8, isa.R(8), isa.R(5))
	b.Add(7, isa.R(7), isa.Imm(1))
	b.Setp(15, isa.CmpLT, isa.R(7), isa.R(3))
	b.BraIf(isa.R(15), "loop2")
	b.Exit()
	return b.MustBuild()
}

func buildLIB(paths, nmat, nTotal int) (*Instance, error) {
	k := libKernel()
	n := paths * nTotal
	m := mem.NewFlat()
	at := mem.NewAllocTable()
	l := at.Alloc("L", uint64(4*n))
	lb := at.Alloc("L_b", uint64(4*n))
	r := newRNG(33)
	for i := 0; i < n; i++ {
		storeF32(m, l+uint64(4*i), 0.02+r.f32()*0.05)
		storeF32(m, lb+uint64(4*i), r.f32())
	}
	vd := float32(-0.73)
	inst := &Instance{
		Mem: m, Alloc: at,
		Launches: []exec.Launch{{
			Kernel: k, Grid: paths / 128, Block: 128,
			Params: []uint64{l, lb, uint64(nmat), uint64(nTotal), isa.F32Bits(vd), uint64(paths)},
		}},
	}
	inst.Check = func(fm *mem.Flat) error {
		for _, t := range []int{0, paths / 3, paths - 1} {
			for nn := 0; nn < nmat; nn++ {
				i := nn*paths + t
				lv := loadF32(fm, l+uint64(4*i))
				want := vd / (lv*0.05 + 1.0)
				got := loadF32(fm, lb+uint64(4*i))
				if float32(math.Abs(float64(got-want))) > 1e-6 {
					return fmt.Errorf("LIB: L_b[%d] = %v, want %v", i, got, want)
				}
			}
		}
		return nil
	}
	return inst, nil
}
