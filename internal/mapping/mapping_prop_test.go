package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// TestAllPoliciesCoverAllStacks: every mapping policy must reach every
// stack over a modest address sweep (no stack can be unreachable).
func TestAllPoliciesCoverAllStacks(t *testing.T) {
	policies := []Policy{Baseline{Stacks: 4}}
	for b := MinBit; b <= MaxBit; b++ {
		policies = append(policies, ConsecutiveBits{Stacks: 4, Bit: b})
	}
	for _, p := range policies {
		seen := map[int]bool{}
		for i := uint64(0); i < 1<<12; i++ {
			s := p.Stack(i << 7) // line strides vary every candidate bit
			if s < 0 || s > 3 {
				t.Fatalf("%s: stack %d out of range", p.Name(), s)
			}
			seen[s] = true
		}
		if len(seen) != 4 {
			t.Errorf("%s reaches only %d stacks", p.Name(), len(seen))
		}
	}
}

// TestHybridNeverPanicsOnArbitraryAddresses includes addresses far outside
// any allocation.
func TestHybridNeverPanicsOnArbitraryAddresses(t *testing.T) {
	at := mem.NewAllocTable()
	at.Alloc("a", 1<<16)
	r, _ := at.Lookup("a")
	r.OffloadMapped = true
	h := Hybrid{Table: at, Default: Baseline{Stacks: 4}, Offload: ConsecutiveBits{Stacks: 4, Bit: 9}}
	f := func(addr uint64) bool {
		s := h.Stack(addr)
		return s >= 0 && s < 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAnalyzerBestBitIsArgmax: the analyzer's chosen bit must maximize its
// own selection score (co-location x load-balance guard).
func TestAnalyzerBestBitIsArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewAnalyzer(4, nil)
	for inst := 0; inst < 300; inst++ {
		var addrs []uint64
		base := uint64(rng.Intn(1<<20)) << 8
		for k := 0; k < 12; k++ {
			addrs = append(addrs, base+uint64(k)*uint64(1+rng.Intn(3))*512)
		}
		a.ObserveInstance(addrs)
	}
	best := a.BestBit()
	bestScore := a.ScoreOf(best)
	for _, b := range a.Bits() {
		if a.ScoreOf(b) > bestScore+1e-12 {
			t.Fatalf("bit %d score %.4f beats chosen bit %d (%.4f)",
				b, a.ScoreOf(b), best, bestScore)
		}
	}
	if bl := a.BaselineCoLocation(); bl < 0 || bl > 1 {
		t.Fatalf("baseline co-location %v out of range", bl)
	}
}

// TestOffsetTrackerMixedPairs: one stable pair plus one unstable pair gives
// a fraction strictly between 0 and 1.
func TestOffsetTrackerMixedPairs(t *testing.T) {
	tr := NewOffsetTracker()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		tr.ObserveInstance([]InstanceAccess{
			{PC: 1, Addr: uint64(i) * 256},
			{PC: 2, Addr: uint64(i)*256 + 0x100000},  // fixed delta
			{PC: 3, Addr: uint64(rng.Intn(1 << 30))}, // random delta
		})
	}
	frac, ok := tr.FixedFraction()
	if !ok {
		t.Fatal("tracker should have data")
	}
	if frac <= 0.3 || frac >= 0.9 {
		t.Errorf("mixed fraction = %v, want strictly between the extremes", frac)
	}
	if b := Bucket(frac); b == BucketAllFixed || b == BucketNone {
		t.Errorf("mixed candidate classified as %v", b)
	}
}
