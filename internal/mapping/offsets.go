package mapping

// OffsetTracker implements the access-pattern analysis behind Fig. 5 of the
// paper: how many of an offloading candidate's memory accesses sit at a
// fixed offset from each other. Two accesses are "fixed offset" when the
// static instruction pair that produced them is always separated by the
// same address delta, across every dynamic instance of the candidate —
// e.g. A[i] and B[i] are separated by &B - &A regardless of i (§3.2.1).
//
// One tracker instance serves one static candidate block. Feed it the
// (pc, leader-lane address) sequence of every candidate instance.
type OffsetTracker struct {
	pairs map[pairKey]*pairStat
	// total counts dynamic accesses that participated in a pair (i.e.
	// all but the first access of each instance).
	total uint64
}

type pairKey struct{ fromPC, toPC int }

type pairStat struct {
	delta uint64
	count uint64
	mixed bool
}

// NewOffsetTracker returns an empty tracker.
func NewOffsetTracker() *OffsetTracker {
	return &OffsetTracker{pairs: map[pairKey]*pairStat{}}
}

// InstanceAccess is one warp-level memory access of a candidate instance.
type InstanceAccess struct {
	PC   int
	Addr uint64
}

// ObserveInstance records the ordered access stream of one instance.
func (t *OffsetTracker) ObserveInstance(seq []InstanceAccess) {
	for i := 1; i < len(seq); i++ {
		k := pairKey{seq[i-1].PC, seq[i].PC}
		d := seq[i].Addr - seq[i-1].Addr
		s := t.pairs[k]
		if s == nil {
			t.pairs[k] = &pairStat{delta: d, count: 1}
		} else {
			if s.delta != d {
				s.mixed = true
			}
			s.count++
		}
		t.total++
	}
}

// FixedFraction returns the fraction of observed accesses whose
// instruction pair kept a constant offset. Returns ok=false when the
// candidate produced no pairable accesses.
func (t *OffsetTracker) FixedFraction() (frac float64, ok bool) {
	if t.total == 0 {
		return 0, false
	}
	var fixed uint64
	for _, s := range t.pairs {
		if !s.mixed {
			fixed += s.count
		}
	}
	return float64(fixed) / float64(t.total), true
}

// OffsetBucket classifies a candidate for the Fig. 5 histogram.
type OffsetBucket int

// Fig. 5 buckets.
const (
	BucketAllFixed OffsetBucket = iota // all accesses fixed offset
	Bucket75to99
	Bucket50to75
	Bucket25to50
	Bucket0to25
	BucketNone // no access fixed offset
	NumOffsetBuckets
)

var bucketNames = [...]string{
	"All accesses fixed offset", "75%-99% fixed offset", "50%-75% fixed offset",
	"25%-50% fixed offset", "0%-25% fixed offset", "No access fixed offset",
}

// String returns the paper's legend label.
func (b OffsetBucket) String() string { return bucketNames[b] }

// Bucket maps a fixed fraction to its Fig. 5 bucket.
func Bucket(frac float64) OffsetBucket {
	switch {
	case frac >= 1.0:
		return BucketAllFixed
	case frac >= 0.75:
		return Bucket75to99
	case frac >= 0.50:
		return Bucket50to75
	case frac >= 0.25:
		return Bucket25to50
	case frac > 0:
		return Bucket0to25
	default:
		return BucketNone
	}
}
