package mapping

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/mem"
)

// StructureID digests the data-structure identity of a workload instance:
// the name, base, and size of every allocation, in allocation order. Two
// instances with the same ID expose the same address layout to the mapping
// machinery, so a bit learned on one is valid for the other — the key the
// persistent mapping registry ("map once, stay resident") uses to decide
// whether a stored mapping still describes the data it was learned on.
//
// Learning-time flags (CandidateTouched, OffloadMapped) are deliberately
// excluded: they are outputs of a run, not identity of the data structures.
func StructureID(t *mem.AllocTable) string {
	h := sha256.New()
	for _, r := range t.Ranges {
		fmt.Fprintf(h, "%s@%#x+%#x;", r.Name, r.Base, r.Size)
	}
	return hex.EncodeToString(h.Sum(nil))
}
