// Package mapping implements the physical-address-to-memory-stack mapping
// policies of the paper: the baseline bandwidth-maximizing XOR-permuted
// cache-line interleave ([9, 61] in the paper), the simple consecutive-bit
// mappings TOM's data-mapping mechanism chooses among (§3.2.1), the hybrid
// per-range policy that applies the learned mapping only to ranges touched
// by offloading candidates (§3.2.3), and the Memory Map Analyzer hardware
// unit that learns the best mapping from early candidate instances (§4.3).
package mapping

import (
	"fmt"

	"repro/internal/mem"
)

// CacheLineBytes is the transfer granularity; stack mapping never uses bits
// below it (§3.2.1: choosing bits from the line offset would hurt link
// efficiency and row locality).
const CacheLineBytes = 128

// LineShift is log2(CacheLineBytes).
const LineShift = 7

// MinBit and MaxBit bound the consecutive-bit positions the analyzer
// sweeps: bit 7 (128 B lines) through bit 16 (64 KB chunks), the paper's
// 10 mapping options for a 4-stack system.
const (
	MinBit = 7
	MaxBit = 16
)

// Policy maps addresses to memory stacks.
type Policy interface {
	Stack(addr uint64) int
	Name() string
}

// Baseline is the GPU's default mapping: consecutive cache lines spread
// round-robin over stacks, with higher-order bits XOR-folded into the
// stack index to avoid pathological strides (Zhang et al.-style
// permutation), maximizing bandwidth for main-GPU execution.
type Baseline struct {
	Stacks int
}

// Stack implements Policy.
func (b Baseline) Stack(addr uint64) int {
	line := addr >> LineShift
	return int((line ^ (line >> 6) ^ (line >> 11)) & uint64(b.Stacks-1))
}

// Name implements Policy.
func (b Baseline) Name() string { return "bmap" }

// ConsecutiveBits maps with a naked bit field: stack = addr[Bit+k-1 : Bit]
// for 2^k stacks — the simple mapping family of §3.2.1.
type ConsecutiveBits struct {
	Stacks int
	Bit    int
}

// Stack implements Policy.
func (c ConsecutiveBits) Stack(addr uint64) int {
	return int((addr >> uint(c.Bit)) & uint64(c.Stacks-1))
}

// Name implements Policy.
func (c ConsecutiveBits) Name() string { return fmt.Sprintf("bits[%d]", c.Bit) }

// Hybrid applies Offload to ranges the learning phase flagged (and that the
// delayed copy has re-placed), and Default to everything else — the
// programmer-transparent data mapping of §3.2.3.
type Hybrid struct {
	Table   *mem.AllocTable
	Default Policy
	Offload Policy
}

// Stack implements Policy.
func (h Hybrid) Stack(addr uint64) int {
	if r := h.Table.Find(addr); r != nil && r.OffloadMapped {
		return h.Offload.Stack(addr)
	}
	return h.Default.Stack(addr)
}

// Name implements Policy.
func (h Hybrid) Name() string { return "tmap(" + h.Offload.Name() + ")" }

// VaultOf spreads cache lines over the vaults within a stack. All policies
// share it: the paper only remaps the stack-index bits.
func VaultOf(addr uint64, vaults int) int {
	line := addr >> LineShift
	return int((line ^ (line >> 5) ^ (line >> 9)) & uint64(vaults-1))
}
