package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestBaselineSpreadsLines(t *testing.T) {
	b := Baseline{Stacks: 4}
	counts := make([]int, 4)
	for i := 0; i < 1<<14; i++ {
		addr := uint64(i) * CacheLineBytes
		s := b.Stack(addr)
		if s < 0 || s >= 4 {
			t.Fatalf("stack %d out of range", s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < (1<<14)/4-64 || c > (1<<14)/4+64 {
			t.Errorf("stack %d gets %d lines, want ~%d", s, c, (1<<14)/4)
		}
	}
}

func TestBaselineStableWithinLine(t *testing.T) {
	f := func(addr uint64) bool {
		b := Baseline{Stacks: 4}
		base := addr &^ uint64(CacheLineBytes-1)
		return b.Stack(base) == b.Stack(base+CacheLineBytes-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConsecutiveBitsMapping(t *testing.T) {
	c := ConsecutiveBits{Stacks: 4, Bit: 12}
	// Addresses within one 4 KB chunk land on one stack...
	s0 := c.Stack(0)
	for a := uint64(0); a < 4096; a += 128 {
		if c.Stack(a) != s0 {
			t.Fatalf("addr %#x left home stack", a)
		}
	}
	// ...and the four consecutive chunks cover all stacks.
	seen := map[int]bool{}
	for chunk := uint64(0); chunk < 4; chunk++ {
		seen[c.Stack(chunk*4096)] = true
	}
	if len(seen) != 4 {
		t.Errorf("4 consecutive chunks cover %d stacks, want 4", len(seen))
	}
}

func TestHybridDispatch(t *testing.T) {
	at := mem.NewAllocTable()
	a := at.Alloc("a", 1<<20)
	b := at.Alloc("b", 1<<20)
	r, err := at.Lookup("a")
	if err != nil {
		t.Fatal(err)
	}
	r.OffloadMapped = true
	h := Hybrid{
		Table:   at,
		Default: Baseline{Stacks: 4},
		Offload: ConsecutiveBits{Stacks: 4, Bit: 14},
	}
	for off := uint64(0); off < 1<<20; off += 4096 {
		if got, want := h.Stack(a+off), (ConsecutiveBits{Stacks: 4, Bit: 14}).Stack(a+off); got != want {
			t.Fatalf("offload-mapped range used wrong policy at +%#x", off)
		}
		if got, want := h.Stack(b+off), (Baseline{Stacks: 4}).Stack(b+off); got != want {
			t.Fatalf("default range used wrong policy at +%#x", off)
		}
	}
}

func TestVaultOfInRangeAndBalanced(t *testing.T) {
	counts := make([]int, 16)
	for i := 0; i < 1<<14; i++ {
		v := VaultOf(uint64(i)*CacheLineBytes, 16)
		if v < 0 || v >= 16 {
			t.Fatalf("vault %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < (1<<14)/16-64 || c > (1<<14)/16+64 {
			t.Errorf("vault %d gets %d lines", v, c)
		}
	}
}

// Plant a workload whose accesses share bit-12-aligned structure: two
// arrays at a 2^20 distance accessed with the same index. The analyzer
// must find a bit that achieves perfect co-location, and prefer it over
// the baseline.
func TestAnalyzerFindsPlantedMapping(t *testing.T) {
	at := mem.NewAllocTable()
	a := at.Alloc("a", 1<<20)
	bAddr := at.Alloc("b", 1<<20)
	an := NewAnalyzer(4, at)
	rng := rand.New(rand.NewSource(7))
	for inst := 0; inst < 200; inst++ {
		idx := uint64(rng.Intn(1 << 18))
		// Instance touches a[idx..idx+31] and b[idx..idx+31] (words).
		var addrs []uint64
		for l := uint64(0); l < 32; l++ {
			addrs = append(addrs, a+4*(idx+l))
		}
		for l := uint64(0); l < 32; l++ {
			addrs = append(addrs, bAddr+4*(idx+l))
		}
		an.ObserveInstance(addrs)
	}
	best := an.BestBit()
	if co := an.CoLocation(best); co < 0.99 {
		t.Errorf("best bit %d co-location = %v, want ~1.0", best, co)
	}
	if an.BaselineCoLocation() > 0.6 {
		t.Errorf("baseline co-location = %v, unexpectedly high", an.BaselineCoLocation())
	}
	// Both ranges must be flagged as candidate-touched.
	for _, name := range []string{"a", "b"} {
		r, err := at.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if !r.CandidateTouched {
			t.Errorf("range %q not flagged", name)
		}
	}
	if an.Instances() != 200 {
		t.Errorf("instances = %d", an.Instances())
	}
}

func TestAnalyzerStorageBits(t *testing.T) {
	// Paper §6.6: 40 bits per instance x 48 warps = 1,920 bits per SM.
	if got := StorageBitsPerSM(48); got != 1920 {
		t.Errorf("analyzer storage = %d bits, want 1920", got)
	}
}

func TestOffsetTrackerFixed(t *testing.T) {
	tr := NewOffsetTracker()
	// ld A[i]; st B[i] with constant &B-&A: all accesses fixed.
	for i := 0; i < 50; i++ {
		tr.ObserveInstance([]InstanceAccess{
			{PC: 4, Addr: 0x1000_0000 + uint64(128*i)},
			{PC: 7, Addr: 0x2000_0000 + uint64(128*i)},
		})
	}
	frac, ok := tr.FixedFraction()
	if !ok || frac != 1.0 {
		t.Errorf("fixed fraction = %v (%v), want 1.0", frac, ok)
	}
	if Bucket(frac) != BucketAllFixed {
		t.Errorf("bucket = %v", Bucket(frac))
	}
}

func TestOffsetTrackerIrregular(t *testing.T) {
	tr := NewOffsetTracker()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		tr.ObserveInstance([]InstanceAccess{
			{PC: 4, Addr: uint64(rng.Intn(1 << 28))},
			{PC: 7, Addr: uint64(rng.Intn(1 << 28))},
		})
	}
	frac, ok := tr.FixedFraction()
	if !ok || frac > 0.1 {
		t.Errorf("irregular fixed fraction = %v, want ~0", frac)
	}
}

func TestOffsetBuckets(t *testing.T) {
	cases := []struct {
		frac float64
		want OffsetBucket
	}{
		{1.0, BucketAllFixed}, {0.8, Bucket75to99}, {0.6, Bucket50to75},
		{0.3, Bucket25to50}, {0.1, Bucket0to25}, {0, BucketNone},
	}
	for _, c := range cases {
		if got := Bucket(c.frac); got != c.want {
			t.Errorf("Bucket(%v) = %v, want %v", c.frac, got, c.want)
		}
	}
	for b := BucketAllFixed; b < NumOffsetBuckets; b++ {
		if b.String() == "" {
			t.Errorf("bucket %d has no label", b)
		}
	}
}

func TestOffsetTrackerEmpty(t *testing.T) {
	tr := NewOffsetTracker()
	if _, ok := tr.FixedFraction(); ok {
		t.Error("empty tracker should report !ok")
	}
	tr.ObserveInstance([]InstanceAccess{{PC: 1, Addr: 0}})
	if _, ok := tr.FixedFraction(); ok {
		t.Error("single-access instances produce no pairs")
	}
}
