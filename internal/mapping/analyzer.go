package mapping

import (
	"repro/internal/mem"
)

// Analyzer is the Memory Map Analyzer (§4.1 ❸, §4.3): during the learning
// phase it watches each offloading-candidate instance's memory accesses and
// scores every candidate consecutive-bit mapping by compute/data
// co-location — the fraction of an instance's accesses that land on the
// instance's home stack (the stack of its first access, where the offload
// would execute). It also flags accessed allocation ranges in the driver's
// allocation table.
type Analyzer struct {
	Stacks int
	Table  *mem.AllocTable // may be nil (pure measurement)

	bits []int
	// homeFrac[i] accumulates the per-instance co-location fraction for
	// bit option i; baselineFrac does the same for the baseline mapping.
	homeFrac     []float64
	baselineFrac float64
	baseline     Policy
	instances    int

	// Temporal load-balance tracking: under a candidate mapping, if
	// consecutive candidate instances keep homing to the same stack, the
	// offload stream arrives as single-stack waves that serialize on one
	// logic-layer SM. prevHome/adjSame measure that.
	prevHome []int
	adjSame  []int

	lines []uint64 // scratch: deduplicated line addresses of one instance
}

// NewAnalyzer returns an analyzer sweeping all bit positions
// [MinBit, MaxBit] for a system with the given stack count.
func NewAnalyzer(stacks int, table *mem.AllocTable) *Analyzer {
	a := &Analyzer{Stacks: stacks, Table: table, baseline: Baseline{Stacks: stacks}}
	for b := MinBit; b <= MaxBit; b++ {
		a.bits = append(a.bits, b)
	}
	a.homeFrac = make([]float64, len(a.bits))
	a.prevHome = make([]int, len(a.bits))
	a.adjSame = make([]int, len(a.bits))
	for i := range a.prevHome {
		a.prevHome[i] = -1
	}
	return a
}

// Bits returns the candidate bit positions under evaluation.
func (a *Analyzer) Bits() []int { return a.bits }

// Instances returns how many candidate instances have been observed.
func (a *Analyzer) Instances() int { return a.instances }

// ObserveInstance records one offloading-candidate instance's accesses
// (byte addresses, any order; the first element must be the instance's
// first access, which determines the home stack).
func (a *Analyzer) ObserveInstance(addrs []uint64) {
	if len(addrs) == 0 {
		return
	}
	// Deduplicate to cache-line granularity, preserving first position.
	a.lines = a.lines[:0]
	for _, addr := range addrs {
		line := addr >> LineShift << LineShift
		dup := false
		for _, l := range a.lines {
			if l == line {
				dup = true
				break
			}
		}
		if !dup {
			a.lines = append(a.lines, line)
		}
	}
	for i, bit := range a.bits {
		p := ConsecutiveBits{Stacks: a.Stacks, Bit: bit}
		a.homeFrac[i] += Colocation(p, a.lines)
		home := p.Stack(a.lines[0])
		if home == a.prevHome[i] {
			a.adjSame[i]++
		}
		a.prevHome[i] = home
	}
	a.baselineFrac += Colocation(a.baseline, a.lines)
	a.instances++

	if a.Table != nil {
		for _, l := range a.lines {
			if r := a.Table.Find(l); r != nil {
				r.CandidateTouched = true
			}
		}
	}
}

// Colocation returns the fraction of lines on the home (first line's)
// stack under p. The analyzer scores candidate mappings with it, and the
// co-location-aware offload policy (CODA) reuses it to drop candidates
// whose data splits across stacks. lines must be non-empty.
func Colocation(p Policy, lines []uint64) float64 {
	home := p.Stack(lines[0])
	n := 0
	for _, l := range lines {
		if p.Stack(l) == home {
			n++
		}
	}
	return float64(n) / float64(len(lines))
}

// BestBit returns the bit position with the highest score: average
// co-location (§4.3 step 4: the mapping that leads to the most accesses to
// the stack the offloaded block executes on) discounted by a temporal
// load-balance guard. A mapping whose chunk size exceeds the GPU's active
// footprint makes consecutive instances home to one stack, serializing the
// offload stream on a single logic-layer SM; the guard steers the choice
// toward the smallest-granularity mapping with equivalent co-location.
func (a *Analyzer) BestBit() int {
	best, bestV := a.bits[0], -1.0
	for _, bit := range a.bits {
		if v := a.ScoreOf(bit); v > bestV {
			best, bestV = bit, v
		}
	}
	return best
}

// ScoreOf returns the selection score of a bit position: accumulated
// co-location discounted by the load-balance guard.
func (a *Analyzer) ScoreOf(bit int) float64 {
	for i, b := range a.bits {
		if b == bit {
			return a.homeFrac[i] * BalanceFactor(a.adjSame[i], a.instances, a.Stacks)
		}
	}
	return 0
}

// BalanceFactor maps the fraction of consecutive instances homing to the
// same stack to a [0,1] discount: uniform spreading (1/stacks) costs
// nothing, perfect waves (always the same stack) zero the score.
func BalanceFactor(adjSame, instances, stacks int) float64 {
	if instances <= 1 {
		return 1
	}
	same := float64(adjSame) / float64(instances-1)
	uniform := 1.0 / float64(stacks)
	if same <= uniform {
		return 1
	}
	return 1 - (same-uniform)/(1-uniform)
}

// CoLocation returns the average per-instance co-location probability for
// the given bit position.
func (a *Analyzer) CoLocation(bit int) float64 {
	if a.instances == 0 {
		return 0
	}
	for i, b := range a.bits {
		if b == bit {
			return a.homeFrac[i] / float64(a.instances)
		}
	}
	return 0
}

// BaselineCoLocation returns the average co-location under the baseline
// mapping (the Fig. 6 reference bar).
func (a *Analyzer) BaselineCoLocation() float64 {
	if a.instances == 0 {
		return 0
	}
	return a.baselineFrac / float64(a.instances)
}

// StorageBitsPerSM is the paper's §6.6 hardware cost of the analyzer: 40
// bits per candidate instance (10 mappings × 4 bits) × 48 concurrent warps.
func StorageBitsPerSM(warpsPerSM int) int {
	return 4 * (MaxBit - MinBit + 1) * warpsPerSM
}
