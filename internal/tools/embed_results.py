# embed_results.py — fold the experiment tables printed by the benchmark
# harness (bench_output.txt) into EXPERIMENTS.md at the <!-- RESULTS -->
# marker. Development helper; not part of the Go module.
#
#   python3 internal/tools/embed_results.py bench_output.txt EXPERIMENTS.md
import re
import sys


def main() -> None:
    bench, target = sys.argv[1], sys.argv[2]
    text = open(bench).read()
    blocks = []
    cur = None
    for line in text.splitlines():
        if line.startswith("== "):
            cur = [line]
            blocks.append(cur)
        elif cur is not None:
            # Table body lines are indented or start with a label/note.
            if line.strip() == "" or re.match(r"^(Benchmark|PASS|ok\s)", line):
                cur = None
            else:
                cur.append(line)
    seen = set()
    rendered = []
    for b in blocks:
        key = b[0]
        if key in seen:
            continue
        seen.add(key)
        rendered.append("```text\n" + "\n".join(b) + "\n```\n")
    doc = open(target).read()
    out = doc.replace("<!-- RESULTS -->", "\n".join(rendered))
    open(target, "w").write(out)
    print(f"embedded {len(rendered)} tables into {target}")


if __name__ == "__main__":
    main()
