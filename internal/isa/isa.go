// Package isa defines the miniature PTX-like instruction set used by the
// TOM reproduction: a register machine executed in lock-step by 32-lane
// warps. Kernels written in this ISA stand in for the CUDA/PTX workloads the
// paper evaluates; the compiler pass (internal/compiler) performs the
// paper's offload-candidate selection directly on this representation.
//
// Design constraints that the rest of the system relies on:
//
//   - A kernel may use at most MaxRegs (64) general registers, so register
//     sets fit in a uint64 bitmask (liveness, scoreboards, live-in transfer).
//   - All memory accesses move 4-byte words; addresses are 64-bit.
//   - Floating-point instructions operate on the float32 interpretation of
//     a register's low 32 bits.
//   - Control flow uses explicit instruction-index targets after assembly;
//     divergence is handled by the executor's SIMT reconvergence stack.
package isa

import "fmt"

// MaxRegs is the maximum number of general registers a kernel may use.
// Keeping it at 64 lets register sets be represented as uint64 bitmasks
// throughout the compiler and the timing simulator.
const MaxRegs = 64

// WarpSize is the number of threads executed in lock-step, matching the
// paper's SW = 32.
const WarpSize = 32

// WordBytes is the size of every register and memory word.
const WordBytes = 4

// Reg names a general-purpose register (r0 .. r63).
type Reg uint8

// Op enumerates instruction opcodes.
type Op uint8

// Opcode values. Arithmetic ops treat registers as unsigned 64-bit values
// unless prefixed with F (float32 on the low 32 bits) or documented as
// signed (Div, Rem, Min, Max use signed interpretation of the low 32 bits).
const (
	OpNop      Op = iota
	OpMov         // Dst = A
	OpAdd         // Dst = A + B
	OpSub         // Dst = A - B
	OpMul         // Dst = A * B
	OpDiv         // Dst = A / B (signed 32-bit; B==0 yields 0)
	OpRem         // Dst = A % B (signed 32-bit; B==0 yields 0)
	OpMin         // Dst = min(A, B) (signed 32-bit)
	OpMax         // Dst = max(A, B) (signed 32-bit)
	OpAnd         // Dst = A & B
	OpOr          // Dst = A | B
	OpXor         // Dst = A ^ B
	OpShl         // Dst = A << (B & 63)
	OpShr         // Dst = A >> (B & 63) (logical)
	OpFAdd        // float32
	OpFSub        // float32
	OpFMul        // float32
	OpFDiv        // float32 (B==0 yields +Inf per IEEE)
	OpFMA         // Dst = A*B + C (float32)
	OpFNeg        // Dst = -A (float32)
	OpCvtIF       // Dst = float32(int32(A))
	OpCvtFI       // Dst = int32(float32bits(A))
	OpSetp        // Dst = 1 if Cmp(A, B) else 0 (signed 32-bit compare)
	OpFSetp       // Dst = 1 if Cmp(A, B) else 0 (float32 compare)
	OpSelp        // Dst = A if C != 0 else B
	OpLdGlobal    // Dst = mem32[A + Imm]
	OpStGlobal    // mem32[A + Imm] = B
	OpLdShared    // Dst = shared32[A + Imm]
	OpStShared    // shared32[A + Imm] = B
	OpAtomAdd     // Dst = old mem32[A + Imm]; mem32[A+Imm] += B (global, atomic)
	OpBra         // if predicate (A, optionally negated) then goto Target
	OpBar         // CTA-wide barrier
	OpExit        // thread terminates
	opCount
)

var opNames = [...]string{
	OpNop: "nop", OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpRem: "rem", OpMin: "min", OpMax: "max", OpAnd: "and",
	OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFMA: "fma", OpFNeg: "fneg", OpCvtIF: "cvt.if", OpCvtFI: "cvt.fi",
	OpSetp: "setp", OpFSetp: "fsetp", OpSelp: "selp",
	OpLdGlobal: "ld.global", OpStGlobal: "st.global",
	OpLdShared: "ld.shared", OpStShared: "st.shared",
	OpAtomAdd: "atom.add", OpBra: "bra", OpBar: "bar.sync", OpExit: "exit",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMemory reports whether the opcode accesses global memory (loads, stores
// and atomics). Shared-memory accesses are not "memory" in the paper's
// bandwidth cost model and are reported separately.
func (o Op) IsMemory() bool {
	switch o {
	case OpLdGlobal, OpStGlobal, OpAtomAdd:
		return true
	}
	return false
}

// IsLoad reports whether the opcode reads global memory into a register.
func (o Op) IsLoad() bool { return o == OpLdGlobal }

// IsStore reports whether the opcode writes global memory.
func (o Op) IsStore() bool { return o == OpStGlobal }

// IsShared reports whether the opcode accesses on-chip shared memory.
func (o Op) IsShared() bool { return o == OpLdShared || o == OpStShared }

// IsFloat reports whether the opcode's ALU work is floating point. The
// timing model charges FP instructions a longer pipeline occupancy.
func (o Op) IsFloat() bool {
	switch o {
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFMA, OpFNeg, OpFSetp, OpCvtIF, OpCvtFI:
		return true
	}
	return false
}

// Cmp enumerates comparison operators for OpSetp / OpFSetp.
type Cmp uint8

// Comparison operators.
const (
	CmpEQ Cmp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

var cmpNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

// String returns the PTX-style suffix for the comparison.
func (c Cmp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("cmp(%d)", uint8(c))
}

// Special enumerates special read-only values available to every thread,
// mirroring PTX's %tid/%ctaid/%ntid special registers (1-D grids).
type Special uint8

// Special register values.
const (
	SpNone   Special = iota
	SpLane           // lane index within the warp [0, 32)
	SpTid            // thread index within the CTA
	SpCtaid          // CTA index within the grid
	SpNtid           // threads per CTA
	SpNctaid         // CTAs in the grid
	SpGtid           // global thread id = Ctaid*Ntid + Tid
	SpWarpid         // warp index within the CTA
)

var spNames = [...]string{"%none", "%lane", "%tid", "%ctaid", "%ntid", "%nctaid", "%gtid", "%warpid"}

// String returns the PTX-style name of the special value.
func (s Special) String() string {
	if int(s) < len(spNames) {
		return spNames[s]
	}
	return fmt.Sprintf("%%sp(%d)", uint8(s))
}

// OperandKind discriminates Operand.
type OperandKind uint8

// Operand kinds.
const (
	OpdNone OperandKind = iota
	OpdReg
	OpdImm
	OpdSpecial
)

// Operand is an instruction source: a register, an immediate, a special
// value, or absent.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int64
	Sp   Special
}

// R returns a register operand.
func R(r Reg) Operand { return Operand{Kind: OpdReg, Reg: r} }

// Imm returns an immediate operand.
func Imm(v int64) Operand { return Operand{Kind: OpdImm, Imm: v} }

// ImmF returns an immediate operand holding the bit pattern of a float32.
func ImmF(v float32) Operand { return Operand{Kind: OpdImm, Imm: int64(f32bits(v))} }

// Sp returns a special-value operand.
func Sp(s Special) Operand { return Operand{Kind: OpdSpecial, Sp: s} }

// None returns an absent operand.
func None() Operand { return Operand{Kind: OpdNone} }

// String formats the operand in assembly syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OpdReg:
		return fmt.Sprintf("r%d", o.Reg)
	case OpdImm:
		return fmt.Sprintf("%d", o.Imm)
	case OpdSpecial:
		return o.Sp.String()
	}
	return "_"
}

// Instr is a single instruction. Field use by opcode:
//
//   - ALU ops: Dst, A, B (and C for FMA/Selp).
//   - Setp/FSetp: Dst, Cmp, A, B.
//   - Ld*: Dst = [A + Imm].    St*: [A + Imm] = B.
//   - AtomAdd: Dst = fetch-add([A+Imm], B).
//   - Bra: conditional on A (PredNeg negates; A absent = unconditional),
//     jumps to Target (instruction index).
//   - Bar, Exit, Nop: no operands.
type Instr struct {
	Op      Op
	Cmp     Cmp
	Dst     Reg
	HasDst  bool
	A, B, C Operand
	Imm     int64 // address offset for memory ops
	Target  int   // branch target (instruction index)
	PredNeg bool  // negate branch predicate
}

// String formats the instruction in assembly-like syntax.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpBar, OpExit:
		return in.Op.String()
	case OpBra:
		if in.A.Kind == OpdNone {
			return fmt.Sprintf("bra @%d", in.Target)
		}
		neg := ""
		if in.PredNeg {
			neg = "!"
		}
		return fmt.Sprintf("bra %s%s, @%d", neg, in.A, in.Target)
	case OpSetp, OpFSetp:
		return fmt.Sprintf("%s.%s r%d, %s, %s", in.Op, in.Cmp, in.Dst, in.A, in.B)
	case OpLdGlobal, OpLdShared:
		return fmt.Sprintf("%s r%d, [%s+%d]", in.Op, in.Dst, in.A, in.Imm)
	case OpStGlobal, OpStShared:
		return fmt.Sprintf("%s [%s+%d], %s", in.Op, in.A, in.Imm, in.B)
	case OpAtomAdd:
		return fmt.Sprintf("%s r%d, [%s+%d], %s", in.Op, in.Dst, in.A, in.Imm, in.B)
	case OpFMA, OpSelp:
		return fmt.Sprintf("%s r%d, %s, %s, %s", in.Op, in.Dst, in.A, in.B, in.C)
	case OpMov, OpFNeg, OpCvtIF, OpCvtFI:
		return fmt.Sprintf("%s r%d, %s", in.Op, in.Dst, in.A)
	default:
		return fmt.Sprintf("%s r%d, %s, %s", in.Op, in.Dst, in.A, in.B)
	}
}

// SrcRegs returns the bitmask of general registers the instruction reads.
func (in Instr) SrcRegs() uint64 {
	var m uint64
	for _, o := range [...]Operand{in.A, in.B, in.C} {
		if o.Kind == OpdReg {
			m |= 1 << o.Reg
		}
	}
	return m
}

// DstRegs returns the bitmask of general registers the instruction writes.
func (in Instr) DstRegs() uint64 {
	if in.HasDst {
		return 1 << in.Dst
	}
	return 0
}

// Kernel is an assembled program plus its static metadata.
type Kernel struct {
	Name string
	// Instrs is the instruction sequence; branch targets index into it.
	Instrs []Instr
	// NumRegs is the number of general registers used (registers are
	// r0 .. NumRegs-1). Kernel parameters occupy r0 .. NumParams-1 at
	// launch.
	NumRegs   int
	NumParams int
	// SharedBytes is the CTA shared-memory allocation.
	SharedBytes int
	// Labels maps label names to instruction indices (populated by the
	// builder/assembler; informational).
	Labels map[string]int
}

// Validate checks structural invariants: register bounds, branch targets in
// range, presence of a terminating Exit, and operand well-formedness.
func (k *Kernel) Validate() error {
	if k.NumRegs < 1 || k.NumRegs > MaxRegs {
		return fmt.Errorf("isa: kernel %q: NumRegs %d out of range [1,%d]", k.Name, k.NumRegs, MaxRegs)
	}
	if k.NumParams > k.NumRegs {
		return fmt.Errorf("isa: kernel %q: NumParams %d exceeds NumRegs %d", k.Name, k.NumParams, k.NumRegs)
	}
	if len(k.Instrs) == 0 {
		return fmt.Errorf("isa: kernel %q: empty instruction list", k.Name)
	}
	sawExit := false
	checkOpd := func(i int, o Operand) error {
		if o.Kind == OpdReg && int(o.Reg) >= k.NumRegs {
			return fmt.Errorf("isa: kernel %q: instr %d (%s): register r%d out of range", k.Name, i, k.Instrs[i], o.Reg)
		}
		return nil
	}
	for i, in := range k.Instrs {
		if in.Op >= opCount {
			return fmt.Errorf("isa: kernel %q: instr %d: bad opcode %d", k.Name, i, in.Op)
		}
		if in.HasDst && int(in.Dst) >= k.NumRegs {
			return fmt.Errorf("isa: kernel %q: instr %d (%s): dst r%d out of range", k.Name, i, in, in.Dst)
		}
		for _, o := range [...]Operand{in.A, in.B, in.C} {
			if err := checkOpd(i, o); err != nil {
				return err
			}
		}
		if in.Op == OpBra {
			if in.Target < 0 || in.Target >= len(k.Instrs) {
				return fmt.Errorf("isa: kernel %q: instr %d: branch target %d out of range", k.Name, i, in.Target)
			}
		}
		if in.Op == OpExit {
			sawExit = true
		}
		if (in.Op == OpLdShared || in.Op == OpStShared) && k.SharedBytes == 0 {
			return fmt.Errorf("isa: kernel %q: instr %d uses shared memory but SharedBytes is 0", k.Name, i)
		}
	}
	if !sawExit {
		return fmt.Errorf("isa: kernel %q: no exit instruction", k.Name)
	}
	return nil
}

// CountOps returns the number of instructions matching pred.
func (k *Kernel) CountOps(pred func(Op) bool) int {
	n := 0
	for _, in := range k.Instrs {
		if pred(in.Op) {
			n++
		}
	}
	return n
}
