package isa

import "math"

// f32bits returns the IEEE-754 bit pattern of v.
func f32bits(v float32) uint32 { return math.Float32bits(v) }

// F32Bits converts a float32 to the register bit pattern used by the ISA.
func F32Bits(v float32) uint64 { return uint64(math.Float32bits(v)) }

// F32FromBits interprets the low 32 bits of a register as a float32.
func F32FromBits(v uint64) float32 { return math.Float32frombits(uint32(v)) }
