package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual assembly syntax and returns the kernels it
// defines. The syntax, one instruction per line ("#" or ";" start comments):
//
//	.kernel <name>
//	.params <n>          # r0..r(n-1) are parameters
//	.shared <bytes>      # optional CTA shared memory
//	<label>:
//	  mov   r2, %gtid
//	  add   r3, r0, r2
//	  ld.global r4, [r3+16]
//	  st.global [r3+0], r4
//	  setp.lt r5, r2, r1
//	  bra   r5, loop     # conditional; "!r5" negates; bare label = always
//	  fadd  r4, r4, 1.5  # literals with '.' are float32 immediates
//	  exit
//
// Multiple .kernel sections may appear in one source.
func Assemble(src string) ([]*Kernel, error) {
	var kernels []*Kernel
	var b *Builder
	flush := func() error {
		if b == nil {
			return nil
		}
		k, err := b.Build()
		if err != nil {
			return err
		}
		kernels = append(kernels, k)
		b = nil
		return nil
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("isa: line %d: %s: %q", lineNo+1, fmt.Sprintf(format, args...), strings.TrimSpace(raw))
		}
		if strings.HasPrefix(line, ".kernel") {
			if err := flush(); err != nil {
				return nil, err
			}
			name := strings.TrimSpace(strings.TrimPrefix(line, ".kernel"))
			if name == "" {
				return nil, fail("missing kernel name")
			}
			b = NewBuilder(name, 0)
			continue
		}
		if b == nil {
			return nil, fail("directive or instruction outside .kernel")
		}
		if strings.HasPrefix(line, ".params") {
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, ".params")))
			if err != nil {
				return nil, fail("bad .params")
			}
			b.numParams = n
			continue
		}
		if strings.HasPrefix(line, ".shared") {
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, ".shared")))
			if err != nil {
				return nil, fail("bad .shared")
			}
			b.SetShared(n)
			continue
		}
		if strings.HasSuffix(line, ":") {
			b.Label(strings.TrimSuffix(line, ":"))
			continue
		}
		if err := asmInstr(b, line); err != nil {
			return nil, fail("%v", err)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(kernels) == 0 {
		return nil, fmt.Errorf("isa: no kernels in source")
	}
	return kernels, nil
}

// asmInstr parses a single instruction line into the builder.
func asmInstr(b *Builder, line string) error {
	mnem := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	args := splitArgs(rest)

	switch mnem {
	case "nop":
		b.Nop()
		return nil
	case "bar.sync", "bar":
		b.Bar()
		return nil
	case "exit":
		b.Exit()
		return nil
	case "bra":
		switch len(args) {
		case 1:
			b.Bra(args[0])
			return nil
		case 2:
			pred := args[0]
			if strings.HasPrefix(pred, "!") {
				o, err := parseOperand(pred[1:])
				if err != nil {
					return err
				}
				b.BraIfNot(o, args[1])
				return nil
			}
			o, err := parseOperand(pred)
			if err != nil {
				return err
			}
			b.BraIf(o, args[1])
			return nil
		}
		return fmt.Errorf("bra needs 1 or 2 args")
	}

	// setp.<cmp> / fsetp.<cmp>
	if strings.HasPrefix(mnem, "setp.") || strings.HasPrefix(mnem, "fsetp.") {
		parts := strings.SplitN(mnem, ".", 2)
		c, err := parseCmp(parts[1])
		if err != nil {
			return err
		}
		dst, a, bo, err := dstAB(args)
		if err != nil {
			return err
		}
		if parts[0] == "setp" {
			b.Setp(dst, c, a, bo)
		} else {
			b.FSetp(dst, c, a, bo)
		}
		return nil
	}

	switch mnem {
	case "ld.global", "ld.shared":
		if len(args) != 2 {
			return fmt.Errorf("%s needs dst, [addr+off]", mnem)
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		addr, off, err := parseMemRef(args[1])
		if err != nil {
			return err
		}
		if mnem == "ld.global" {
			b.Ld(dst, addr, off)
		} else {
			b.LdShared(dst, addr, off)
		}
		return nil
	case "st.global", "st.shared":
		if len(args) != 2 {
			return fmt.Errorf("%s needs [addr+off], src", mnem)
		}
		addr, off, err := parseMemRef(args[0])
		if err != nil {
			return err
		}
		val, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		if mnem == "st.global" {
			b.St(addr, off, val)
		} else {
			b.StShared(addr, off, val)
		}
		return nil
	case "atom.add":
		if len(args) != 3 {
			return fmt.Errorf("atom.add needs dst, [addr+off], src")
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		addr, off, err := parseMemRef(args[1])
		if err != nil {
			return err
		}
		val, err := parseOperand(args[2])
		if err != nil {
			return err
		}
		b.AtomAdd(dst, addr, off, val)
		return nil
	case "fma", "selp":
		if len(args) != 4 {
			return fmt.Errorf("%s needs dst and 3 sources", mnem)
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		var ops [3]Operand
		for i, s := range args[1:] {
			if ops[i], err = parseOperand(s); err != nil {
				return err
			}
		}
		if mnem == "fma" {
			b.FMA(dst, ops[0], ops[1], ops[2])
		} else {
			b.Selp(dst, ops[0], ops[1], ops[2])
		}
		return nil
	case "mov", "fneg", "cvt.if", "cvt.fi":
		if len(args) != 2 {
			return fmt.Errorf("%s needs dst, src", mnem)
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		a, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		switch mnem {
		case "mov":
			b.Mov(dst, a)
		case "fneg":
			b.FNeg(dst, a)
		case "cvt.if":
			b.CvtIF(dst, a)
		case "cvt.fi":
			b.CvtFI(dst, a)
		}
		return nil
	}

	binops := map[string]func(Reg, Operand, Operand) *Builder{
		"add": b.Add, "sub": b.Sub, "mul": b.Mul, "div": b.Div, "rem": b.Rem,
		"min": b.Min, "max": b.Max, "and": b.And, "or": b.Or, "xor": b.Xor,
		"shl": b.Shl, "shr": b.Shr, "fadd": b.FAdd, "fsub": b.FSub,
		"fmul": b.FMul, "fdiv": b.FDiv,
	}
	if fn, ok := binops[mnem]; ok {
		dst, a, bo, err := dstAB(args)
		if err != nil {
			return err
		}
		fn(dst, a, bo)
		return nil
	}
	return fmt.Errorf("unknown mnemonic %q", mnem)
}

func dstAB(args []string) (Reg, Operand, Operand, error) {
	if len(args) != 3 {
		return 0, Operand{}, Operand{}, fmt.Errorf("need dst and 2 sources")
	}
	dst, err := parseReg(args[0])
	if err != nil {
		return 0, Operand{}, Operand{}, err
	}
	a, err := parseOperand(args[1])
	if err != nil {
		return 0, Operand{}, Operand{}, err
	}
	bo, err := parseOperand(args[2])
	if err != nil {
		return 0, Operand{}, Operand{}, err
	}
	return dst, a, bo, nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseCmp(s string) (Cmp, error) {
	for i, n := range cmpNames {
		if n == s {
			return Cmp(i), nil
		}
	}
	return 0, fmt.Errorf("unknown comparison %q", s)
}

func parseReg(s string) (Reg, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= MaxRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parseOperand(s string) (Operand, error) {
	switch {
	case s == "":
		return Operand{}, fmt.Errorf("empty operand")
	case strings.HasPrefix(s, "%"):
		for i, n := range spNames {
			if n == s {
				return Sp(Special(i)), nil
			}
		}
		return Operand{}, fmt.Errorf("unknown special %q", s)
	case strings.HasPrefix(s, "r") && len(s) > 1 && s[1] >= '0' && s[1] <= '9':
		r, err := parseReg(s)
		if err != nil {
			return Operand{}, err
		}
		return R(r), nil
	case strings.Contains(s, "."):
		f, err := strconv.ParseFloat(s, 32)
		if err != nil {
			return Operand{}, fmt.Errorf("bad float literal %q", s)
		}
		return ImmF(float32(f)), nil
	default:
		v, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("bad operand %q", s)
		}
		return Imm(v), nil
	}
}

// parseMemRef parses "[rN+off]" or "[rN]" (off may be negative).
func parseMemRef(s string) (Operand, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return Operand{}, 0, fmt.Errorf("expected [addr+off], got %q", s)
	}
	inner := s[1 : len(s)-1]
	off := int64(0)
	base := inner
	if i := strings.IndexAny(inner[1:], "+-"); i >= 0 {
		base = inner[:i+1]
		var err error
		off, err = strconv.ParseInt(inner[i+1:], 0, 64)
		if err != nil {
			return Operand{}, 0, fmt.Errorf("bad offset in %q", s)
		}
	}
	o, err := parseOperand(strings.TrimSpace(base))
	if err != nil {
		return Operand{}, 0, err
	}
	return o, off, nil
}

// Disassemble renders the kernel back to assembly text accepted by Assemble.
func Disassemble(k *Kernel) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".kernel %s\n.params %d\n", k.Name, k.NumParams)
	if k.SharedBytes > 0 {
		fmt.Fprintf(&sb, ".shared %d\n", k.SharedBytes)
	}
	// Invert labels; synthesize for any branch target without one.
	labelAt := map[int]string{}
	for name, pc := range k.Labels {
		labelAt[pc] = name
	}
	for _, in := range k.Instrs {
		if in.Op == OpBra {
			if _, ok := labelAt[in.Target]; !ok {
				labelAt[in.Target] = fmt.Sprintf("L%d", in.Target)
			}
		}
	}
	for pc, in := range k.Instrs {
		if l, ok := labelAt[pc]; ok {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		if in.Op == OpBra {
			pred := ""
			if in.A.Kind != OpdNone {
				if in.PredNeg {
					pred = "!" + in.A.String() + ", "
				} else {
					pred = in.A.String() + ", "
				}
			}
			fmt.Fprintf(&sb, "  bra %s%s\n", pred, labelAt[in.Target])
			continue
		}
		fmt.Fprintf(&sb, "  %s\n", in)
	}
	return sb.String()
}
