package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStringCoverage(t *testing.T) {
	for op := OpNop; op < opCount; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
}

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op                   Op
		mem, load, store, sh bool
	}{
		{OpLdGlobal, true, true, false, false},
		{OpStGlobal, true, false, true, false},
		{OpAtomAdd, true, false, false, false},
		{OpLdShared, false, false, false, true},
		{OpStShared, false, false, false, true},
		{OpAdd, false, false, false, false},
		{OpBra, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsMemory() != c.mem {
			t.Errorf("%s IsMemory = %v, want %v", c.op, c.op.IsMemory(), c.mem)
		}
		if c.op.IsLoad() != c.load {
			t.Errorf("%s IsLoad = %v, want %v", c.op, c.op.IsLoad(), c.load)
		}
		if c.op.IsStore() != c.store {
			t.Errorf("%s IsStore = %v, want %v", c.op, c.op.IsStore(), c.store)
		}
		if c.op.IsShared() != c.sh {
			t.Errorf("%s IsShared = %v, want %v", c.op, c.op.IsShared(), c.sh)
		}
	}
}

func TestSrcDstRegMasks(t *testing.T) {
	in := Instr{Op: OpFMA, Dst: 5, HasDst: true, A: R(1), B: Imm(3), C: R(2)}
	if got, want := in.SrcRegs(), uint64(1<<1|1<<2); got != want {
		t.Errorf("SrcRegs = %#x, want %#x", got, want)
	}
	if got, want := in.DstRegs(), uint64(1<<5); got != want {
		t.Errorf("DstRegs = %#x, want %#x", got, want)
	}
	st := Instr{Op: OpStGlobal, A: R(3), B: R(4)}
	if st.DstRegs() != 0 {
		t.Errorf("store should have no dst regs")
	}
	if got, want := st.SrcRegs(), uint64(1<<3|1<<4); got != want {
		t.Errorf("store SrcRegs = %#x, want %#x", got, want)
	}
}

func TestBuilderForwardAndBackwardLabels(t *testing.T) {
	b := NewBuilder("loops", 1)
	b.MovI(1, 0)
	b.Label("top")
	b.Add(1, R(1), Imm(1))
	b.Setp(2, CmpLT, R(1), R(0))
	b.BraIf(R(2), "top")
	b.BraIfNot(R(2), "done")
	b.Nop()
	b.Label("done")
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if k.Instrs[3].Target != 1 {
		t.Errorf("backward target = %d, want 1", k.Instrs[3].Target)
	}
	if k.Instrs[4].Target != 6 {
		t.Errorf("forward target = %d, want 6", k.Instrs[4].Target)
	}
	if k.NumRegs != 3 {
		t.Errorf("NumRegs = %d, want 3", k.NumRegs)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("x", 0).Bra("nowhere").Exit().Build(); err == nil {
		t.Error("undefined label should fail")
	}
	b := NewBuilder("x", 0)
	b.Label("l")
	b.Label("l")
	b.Exit()
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label should fail")
	}
	if _, err := NewBuilder("x", 0).Nop().Build(); err == nil {
		t.Error("kernel without exit should fail")
	}
}

func TestValidateCatchesBadKernels(t *testing.T) {
	bad := []*Kernel{
		{Name: "regs", NumRegs: 0, Instrs: []Instr{{Op: OpExit}}},
		{Name: "regs2", NumRegs: MaxRegs + 1, Instrs: []Instr{{Op: OpExit}}},
		{Name: "empty", NumRegs: 1},
		{Name: "target", NumRegs: 1, Instrs: []Instr{{Op: OpBra, Target: 9}, {Op: OpExit}}},
		{Name: "shared", NumRegs: 2, Instrs: []Instr{{Op: OpLdShared, Dst: 1, HasDst: true, A: R(0)}, {Op: OpExit}}},
		{Name: "oobdst", NumRegs: 2, Instrs: []Instr{{Op: OpMov, Dst: 7, HasDst: true, A: Imm(0)}, {Op: OpExit}}},
		{Name: "oobsrc", NumRegs: 2, Instrs: []Instr{{Op: OpMov, Dst: 1, HasDst: true, A: R(9)}, {Op: OpExit}}},
	}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("kernel %q should fail validation", k.Name)
		}
	}
}

const sampleAsm = `
.kernel saxpy
.params 3          # r0=x base, r1=y base, r2=n
  mov r3, %gtid
  setp.ge r4, r3, r2
  bra r4, done
  shl r5, r3, 2
  add r6, r0, r5
  add r7, r1, r5
  ld.global r8, [r6+0]
  ld.global r9, [r7+0]
  fma r9, r8, 2.0, r9
  st.global [r7+0], r9
done:
  exit
`

func TestAssembleSample(t *testing.T) {
	ks, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 1 {
		t.Fatalf("got %d kernels, want 1", len(ks))
	}
	k := ks[0]
	if k.Name != "saxpy" || k.NumParams != 3 {
		t.Errorf("name/params = %s/%d", k.Name, k.NumParams)
	}
	if n := k.CountOps(Op.IsLoad); n != 2 {
		t.Errorf("loads = %d, want 2", n)
	}
	if n := k.CountOps(Op.IsStore); n != 1 {
		t.Errorf("stores = %d, want 1", n)
	}
	if k.Instrs[2].Target != k.Labels["done"] {
		t.Errorf("branch target mismatch")
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	ks, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(ks[0])
	ks2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	k1, k2 := ks[0], ks2[0]
	if len(k1.Instrs) != len(k2.Instrs) {
		t.Fatalf("instr count %d != %d", len(k1.Instrs), len(k2.Instrs))
	}
	for i := range k1.Instrs {
		a, b := k1.Instrs[i], k2.Instrs[i]
		if a.Op != b.Op || a.Dst != b.Dst || a.A != b.A || a.B != b.B || a.C != b.C ||
			a.Imm != b.Imm || a.Target != b.Target || a.PredNeg != b.PredNeg {
			t.Errorf("instr %d differs: %v vs %v", i, a, b)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"mov r1, r2",                       // outside .kernel
		".kernel k\n  frobnicate r1\nexit", // unknown mnemonic
		".kernel k\n  bra r1\n  exit",      // bra with 1 arg = label "r1" undefined
		".kernel k\n  ld.global r1, r2\n  exit",
		".kernel k\n  mov r99, 0\n  exit",
		"",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembling %q should fail", src)
		}
	}
}

func TestFloatBitsRoundTrip(t *testing.T) {
	f := func(v float32) bool {
		if v != v { // NaN payloads are not preserved bit-exactly through quick's generator
			return true
		}
		return F32FromBits(F32Bits(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemRefParsing(t *testing.T) {
	src := ".kernel k\n  ld.global r1, [r0-8]\n  st.global [r0+12], r1\n  exit"
	ks, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if ks[0].Instrs[0].Imm != -8 {
		t.Errorf("negative offset = %d, want -8", ks[0].Instrs[0].Imm)
	}
	if ks[0].Instrs[1].Imm != 12 {
		t.Errorf("positive offset = %d, want 12", ks[0].Instrs[1].Imm)
	}
}
