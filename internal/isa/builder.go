package isa

import "fmt"

// Builder assembles kernels programmatically. It tracks labels and resolves
// forward branch references at Build time, and records the highest register
// used so NumRegs need not be maintained by hand.
//
//	b := isa.NewBuilder("saxpy", 2) // r0, r1 are parameters
//	i := isa.Reg(2)
//	b.Mov(i, isa.Sp(isa.SpGtid))
//	...
//	k, err := b.Build()
type Builder struct {
	name      string
	numParams int
	shared    int
	instrs    []Instr
	labels    map[string]int
	fixups    []fixup
	maxReg    Reg
	err       error
}

type fixup struct {
	instr int
	label string
}

// NewBuilder returns a Builder for a kernel whose first numParams registers
// are parameters loaded at launch.
func NewBuilder(name string, numParams int) *Builder {
	return &Builder{name: name, numParams: numParams, labels: map[string]int{}}
}

// SetShared declares the kernel's CTA shared-memory size in bytes.
func (b *Builder) SetShared(bytes int) *Builder { b.shared = bytes; return b }

func (b *Builder) note(r Reg) {
	if r > b.maxReg {
		b.maxReg = r
	}
}

func (b *Builder) noteOpd(o Operand) {
	if o.Kind == OpdReg {
		b.note(o.Reg)
	}
}

func (b *Builder) emit(in Instr) *Builder {
	if in.HasDst {
		b.note(in.Dst)
	}
	b.noteOpd(in.A)
	b.noteOpd(in.B)
	b.noteOpd(in.C)
	b.instrs = append(b.instrs, in)
	return b
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup && b.err == nil {
		b.err = fmt.Errorf("isa: duplicate label %q in kernel %q", name, b.name)
	}
	b.labels[name] = len(b.instrs)
	return b
}

// PC returns the index the next emitted instruction will have.
func (b *Builder) PC() int { return len(b.instrs) }

func (b *Builder) alu(op Op, dst Reg, a, bo Operand) *Builder {
	return b.emit(Instr{Op: op, Dst: dst, HasDst: true, A: a, B: bo})
}

// Mov emits dst = a.
func (b *Builder) Mov(dst Reg, a Operand) *Builder {
	return b.emit(Instr{Op: OpMov, Dst: dst, HasDst: true, A: a})
}

// MovI emits dst = immediate.
func (b *Builder) MovI(dst Reg, v int64) *Builder { return b.Mov(dst, Imm(v)) }

// MovF emits dst = float32 immediate (bit pattern).
func (b *Builder) MovF(dst Reg, v float32) *Builder { return b.Mov(dst, ImmF(v)) }

// Add emits dst = a + bo.
func (b *Builder) Add(dst Reg, a, bo Operand) *Builder { return b.alu(OpAdd, dst, a, bo) }

// Sub emits dst = a - bo.
func (b *Builder) Sub(dst Reg, a, bo Operand) *Builder { return b.alu(OpSub, dst, a, bo) }

// Mul emits dst = a * bo.
func (b *Builder) Mul(dst Reg, a, bo Operand) *Builder { return b.alu(OpMul, dst, a, bo) }

// Div emits dst = a / bo (signed 32-bit).
func (b *Builder) Div(dst Reg, a, bo Operand) *Builder { return b.alu(OpDiv, dst, a, bo) }

// Rem emits dst = a % bo (signed 32-bit).
func (b *Builder) Rem(dst Reg, a, bo Operand) *Builder { return b.alu(OpRem, dst, a, bo) }

// Min emits dst = min(a, bo) (signed 32-bit).
func (b *Builder) Min(dst Reg, a, bo Operand) *Builder { return b.alu(OpMin, dst, a, bo) }

// Max emits dst = max(a, bo) (signed 32-bit).
func (b *Builder) Max(dst Reg, a, bo Operand) *Builder { return b.alu(OpMax, dst, a, bo) }

// And emits dst = a & bo.
func (b *Builder) And(dst Reg, a, bo Operand) *Builder { return b.alu(OpAnd, dst, a, bo) }

// Or emits dst = a | bo.
func (b *Builder) Or(dst Reg, a, bo Operand) *Builder { return b.alu(OpOr, dst, a, bo) }

// Xor emits dst = a ^ bo.
func (b *Builder) Xor(dst Reg, a, bo Operand) *Builder { return b.alu(OpXor, dst, a, bo) }

// Shl emits dst = a << bo.
func (b *Builder) Shl(dst Reg, a, bo Operand) *Builder { return b.alu(OpShl, dst, a, bo) }

// Shr emits dst = a >> bo (logical).
func (b *Builder) Shr(dst Reg, a, bo Operand) *Builder { return b.alu(OpShr, dst, a, bo) }

// FAdd emits dst = a + bo (float32).
func (b *Builder) FAdd(dst Reg, a, bo Operand) *Builder { return b.alu(OpFAdd, dst, a, bo) }

// FSub emits dst = a - bo (float32).
func (b *Builder) FSub(dst Reg, a, bo Operand) *Builder { return b.alu(OpFSub, dst, a, bo) }

// FMul emits dst = a * bo (float32).
func (b *Builder) FMul(dst Reg, a, bo Operand) *Builder { return b.alu(OpFMul, dst, a, bo) }

// FDiv emits dst = a / bo (float32).
func (b *Builder) FDiv(dst Reg, a, bo Operand) *Builder { return b.alu(OpFDiv, dst, a, bo) }

// FNeg emits dst = -a (float32).
func (b *Builder) FNeg(dst Reg, a Operand) *Builder {
	return b.emit(Instr{Op: OpFNeg, Dst: dst, HasDst: true, A: a})
}

// FMA emits dst = a*bo + c (float32).
func (b *Builder) FMA(dst Reg, a, bo, c Operand) *Builder {
	return b.emit(Instr{Op: OpFMA, Dst: dst, HasDst: true, A: a, B: bo, C: c})
}

// CvtIF emits dst = float32(int32(a)).
func (b *Builder) CvtIF(dst Reg, a Operand) *Builder {
	return b.emit(Instr{Op: OpCvtIF, Dst: dst, HasDst: true, A: a})
}

// CvtFI emits dst = int32(float32(a)).
func (b *Builder) CvtFI(dst Reg, a Operand) *Builder {
	return b.emit(Instr{Op: OpCvtFI, Dst: dst, HasDst: true, A: a})
}

// Setp emits dst = (a cmp bo) ? 1 : 0 (signed 32-bit).
func (b *Builder) Setp(dst Reg, c Cmp, a, bo Operand) *Builder {
	return b.emit(Instr{Op: OpSetp, Cmp: c, Dst: dst, HasDst: true, A: a, B: bo})
}

// FSetp emits dst = (a cmp bo) ? 1 : 0 (float32).
func (b *Builder) FSetp(dst Reg, c Cmp, a, bo Operand) *Builder {
	return b.emit(Instr{Op: OpFSetp, Cmp: c, Dst: dst, HasDst: true, A: a, B: bo})
}

// Selp emits dst = c != 0 ? a : bo.
func (b *Builder) Selp(dst Reg, a, bo, c Operand) *Builder {
	return b.emit(Instr{Op: OpSelp, Dst: dst, HasDst: true, A: a, B: bo, C: c})
}

// Ld emits dst = global[addr + off].
func (b *Builder) Ld(dst Reg, addr Operand, off int64) *Builder {
	return b.emit(Instr{Op: OpLdGlobal, Dst: dst, HasDst: true, A: addr, Imm: off})
}

// St emits global[addr + off] = val.
func (b *Builder) St(addr Operand, off int64, val Operand) *Builder {
	return b.emit(Instr{Op: OpStGlobal, A: addr, B: val, Imm: off})
}

// LdShared emits dst = shared[addr + off].
func (b *Builder) LdShared(dst Reg, addr Operand, off int64) *Builder {
	return b.emit(Instr{Op: OpLdShared, Dst: dst, HasDst: true, A: addr, Imm: off})
}

// StShared emits shared[addr + off] = val.
func (b *Builder) StShared(addr Operand, off int64, val Operand) *Builder {
	return b.emit(Instr{Op: OpStShared, A: addr, B: val, Imm: off})
}

// AtomAdd emits dst = fetch-and-add(global[addr+off], val).
func (b *Builder) AtomAdd(dst Reg, addr Operand, off int64, val Operand) *Builder {
	return b.emit(Instr{Op: OpAtomAdd, Dst: dst, HasDst: true, A: addr, B: val, Imm: off})
}

// Bra emits an unconditional branch to label.
func (b *Builder) Bra(label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.instrs), label})
	return b.emit(Instr{Op: OpBra})
}

// BraIf emits a branch to label taken by lanes where pred != 0.
func (b *Builder) BraIf(pred Operand, label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.instrs), label})
	return b.emit(Instr{Op: OpBra, A: pred})
}

// BraIfNot emits a branch to label taken by lanes where pred == 0.
func (b *Builder) BraIfNot(pred Operand, label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.instrs), label})
	return b.emit(Instr{Op: OpBra, A: pred, PredNeg: true})
}

// Bar emits a CTA-wide barrier.
func (b *Builder) Bar() *Builder { return b.emit(Instr{Op: OpBar}) }

// Exit emits a thread-exit.
func (b *Builder) Exit() *Builder { return b.emit(Instr{Op: OpExit}) }

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: OpNop}) }

// Build resolves labels, validates, and returns the kernel.
func (b *Builder) Build() (*Kernel, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		pc, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: kernel %q: undefined label %q", b.name, f.label)
		}
		b.instrs[f.instr].Target = pc
	}
	numRegs := int(b.maxReg) + 1
	if b.numParams > numRegs {
		numRegs = b.numParams
	}
	k := &Kernel{
		Name:        b.name,
		Instrs:      b.instrs,
		NumRegs:     numRegs,
		NumParams:   b.numParams,
		SharedBytes: b.shared,
		Labels:      b.labels,
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// MustBuild is Build that panics on error; intended for static kernels whose
// correctness is covered by tests.
func (b *Builder) MustBuild() *Kernel {
	k, err := b.Build()
	if err != nil {
		panic(err)
	}
	return k
}
