// Warpcapacity: walk the §6.4 design space — how much warp capacity should
// a memory-stack SM have? More capacity lets dynamic control admit more
// offloads (saving more off-chip traffic), but ALU-heavy offloaded blocks
// can turn the stack SM's compute pipeline into the new bottleneck (the
// paper's RD anomaly).
//
//	go run ./examples/warpcapacity [ABBR]   (default RD)
package main

import (
	"fmt"
	"log"
	"os"

	tom "repro"
	"repro/internal/core"
)

func main() {
	abbr := "RD"
	if len(os.Args) > 1 {
		abbr = os.Args[1]
	}
	const scale = 0.25

	r := tom.NewRunner(scale)
	base, err := r.Run(abbr, tom.Baseline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: stack-SM warp capacity sweep (baseline: %d cycles)\n\n", abbr, base.Stats.Cycles)
	fmt.Printf("%-14s %10s %10s %14s %12s\n", "capacity", "speedup", "offloads", "stack-instr%", "traffic vs base")
	for _, cfg := range []struct {
		label string
		name  core.ConfigName
	}{
		{"1x (48 warps)", tom.TOM},
		{"2x (96)", core.CfgWarp2x},
		{"4x (192)", core.CfgWarp4x},
	} {
		res, err := r.Run(abbr, cfg.name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %9.2fx %10d %13.1f%% %14.0f%%\n",
			cfg.label,
			res.Stats.IPC()/base.Stats.IPC(),
			res.Stats.OffloadsSent,
			100*res.Stats.OffloadedInstrFraction(),
			100*float64(res.Stats.OffChipBytes())/float64(base.Stats.OffChipBytes()))
	}
	fmt.Println("\npaper: 4x capacity keeps the speedup while cutting traffic 34%;")
	fmt.Println("RD regresses at 4x because its offloaded blocks are ALU-heavy.")
}
