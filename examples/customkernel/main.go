// Customkernel: write a GPU kernel in the project's PTX-like assembly, run
// TOM's offload-candidate compiler pass over it, inspect the metadata table,
// and execute it on the simulated NDP system.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// A y[i] = alpha*x[i] + y[i] kernel with a grid-stride loop, written in the
// textual assembly accepted by isa.Assemble (and cmd/tomcc).
const src = `
.kernel axpy
.params 5            # r0=x, r1=y, r2=n-per-thread, r3=alpha, r4=total-threads
  mov r5, %gtid
  mov r6, r5         # idx
  mov r7, 0          # k
top:
  shl r8, r6, 2
  add r9, r0, r8
  ld.global r10, [r9+0]
  add r11, r1, r8
  ld.global r12, [r11+0]
  fma r12, r10, r3, r12
  st.global [r11+0], r12
  add r6, r6, r4
  add r7, r7, 1
  setp.lt r13, r7, r2
  bra r13, top
  exit
`

func main() {
	kernels, err := isa.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	k := kernels[0]

	// 1. Compiler pass: find the offloading candidates (§3.1).
	md, err := compiler.Analyze(k, compiler.DefaultCostParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %q: %d instructions, %d offload candidates\n",
		k.Name, len(k.Instrs), len(md.Candidates))
	for _, c := range md.Candidates {
		fmt.Printf("  %v\n", c)
		if c.Conditional() {
			fmt.Printf("    -> hardware offloads only when the loop runs >= %d trips\n",
				c.Trip.Cond.MinTrips)
		}
	}

	// 2. Build inputs through the driver allocation table.
	const threads, perThread = 8192, 64
	n := threads * perThread
	m := mem.NewFlat()
	at := mem.NewAllocTable()
	x := at.Alloc("x", uint64(4*n))
	y := at.Alloc("y", uint64(4*n))
	for i := 0; i < n; i++ {
		m.Store4(x+uint64(4*i), uint32(isa.F32Bits(float32(i%100))))
		m.Store4(y+uint64(4*i), uint32(isa.F32Bits(1.0)))
	}
	launch := exec.Launch{
		Kernel: k, Grid: threads / 128, Block: 128,
		Params: []uint64{x, y, perThread, isa.F32Bits(0.5), threads},
	}

	// 3. Run on the simulated NDP GPU with TOM enabled.
	sys := sim.New(sim.DefaultConfig(), m, at)
	if err := sys.Run([]exec.Launch{launch}); err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("\nTOM run: %d cycles, IPC %.1f, %d offloads, %.1f MB off-chip\n",
		st.Cycles, st.IPC(), st.OffloadsSent, float64(st.OffChipBytes())/(1<<20))
	fmt.Printf("learned mapping bit %d; %d dirty lines invalidated by coherence\n",
		st.LearnedBit, st.CoherenceInvalidates)

	// 4. Verify the result numerically.
	for _, i := range []int{0, 1, n / 2, n - 1} {
		got := isa.F32FromBits(uint64(m.Load4(y + uint64(4*i))))
		want := 0.5*float32(i%100) + 1.0
		if got != want {
			log.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
	fmt.Println("result verified: y = 0.5*x + 1 everywhere")
}
