// Quickstart: run the Scalar Product workload on the baseline GPU and on
// the full TOM system, and print the headline comparison. (Try "LIB" — the
// paper's running example — or any other Table 2 abbreviation by editing
// the Run calls.)
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tom "repro"
)

func main() {
	const scale = 0.5 // keep the example snappy; 1.0 = benchmark size

	runner := tom.NewRunner(scale)
	runner.Progress = log.Printf

	base, err := runner.Run("SP", tom.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	ndp, err := runner.Run("SP", tom.TOM)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Scalar Product under TOM (Transparent Offloading and Mapping)")
	fmt.Printf("  baseline (68 SMs, no NDP):  %8d cycles, IPC %6.1f\n",
		base.Stats.Cycles, base.Stats.IPC())
	fmt.Printf("  TOM (ctrl offload + tmap):  %8d cycles, IPC %6.1f\n",
		ndp.Stats.Cycles, ndp.Stats.IPC())
	fmt.Printf("  speedup:                    %8.2fx\n", ndp.Stats.IPC()/base.Stats.IPC())
	fmt.Printf("  off-chip traffic:           %8.1f MB -> %.1f MB (%.0f%%)\n",
		mb(base.Stats.OffChipBytes()), mb(ndp.Stats.OffChipBytes()),
		100*float64(ndp.Stats.OffChipBytes())/float64(base.Stats.OffChipBytes()))
	fmt.Printf("  offloads sent:              %8d (%.1f%% of instructions ran in-stack)\n",
		ndp.Stats.OffloadsSent, 100*ndp.Stats.OffloadedInstrFraction())
	fmt.Printf("  learned mapping:            bit %d from %d candidate instances\n",
		ndp.Stats.LearnedBit, ndp.Stats.LearnInstances)
	fmt.Printf("  energy:                     %8.2f mJ -> %.2f mJ\n",
		base.Energy.Total()*1e3, ndp.Energy.Total()*1e3)
}

func mb(b uint64) float64 { return float64(b) / (1 << 20) }
