// Mappingstudy: reproduce the §3.2 data-mapping analysis on one workload —
// sweep every consecutive-bit stack mapping, compare compute/data
// co-location against the baseline XOR mapping, and show how little of the
// access stream the learning phase needs to observe (Fig. 6's insight).
//
//	go run ./examples/mappingstudy [ABBR]   (default FWT)
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	abbr := "FWT"
	if len(os.Args) > 1 {
		abbr = os.Args[1]
	}
	w, err := workloads.ByAbbr(abbr)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := w.Build(0.25)
	if err != nil {
		log.Fatal(err)
	}
	c := inst.Clone()
	p, err := sim.RunProfile(c.Mem, c.Alloc, c.Launches)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s (%s): %d offloading-candidate instances observed\n\n",
		w.Name, w.Abbr, p.Instances)

	fmt.Println("co-location probability by consecutive-bit mapping:")
	oBit, oCo := p.OracleBit()
	for _, bit := range p.Bits {
		co := p.CoLocationOfBit(bit)
		marker := ""
		if bit == oBit {
			marker = "  <- oracle best"
		}
		fmt.Printf("  bits [%2d:%2d]  %5.1f%%%s\n", bit+1, bit, co*100, marker)
	}
	fmt.Printf("  baseline map %5.1f%%\n\n", p.BaselineCoLocation()*100)

	fmt.Println("mapping learned from a prefix of candidate instances (Fig. 6):")
	for _, frac := range []float64{0.001, 0.005, 0.01, 1.0} {
		bit, co := p.BestBitFromFraction(frac)
		fmt.Printf("  first %5.1f%% of instances -> bit %2d, co-location %5.1f%%\n",
			frac*100, bit, co*100)
	}
	fmt.Printf("\noracle: bit %d at %.1f%% co-location (paper: ~75%% avg; baseline ~38%%)\n",
		oBit, oCo*100)

	fmt.Println("\nfixed-offset structure of the candidates (Fig. 5):")
	buckets := p.OffsetBuckets()
	for b, n := range buckets {
		if n > 0 {
			fmt.Printf("  %-28s %d candidate(s)\n", fmt.Sprint(bucketName(b)), n)
		}
	}
}

func bucketName(b int) string {
	names := []string{
		"all accesses fixed offset", "75-99% fixed offset", "50-75% fixed offset",
		"25-50% fixed offset", "0-25% fixed offset", "no fixed-offset accesses",
	}
	return names[b]
}
